package reinit

import (
	"fmt"
	"testing"

	"match/internal/fault"
	"match/internal/fti"
	"match/internal/mpi"
	"match/internal/simnet"
	"match/internal/storage"
)

// miniApp is an iterative BSP kernel used to exercise recovery: every
// iteration allreduces a value and accumulates it; the final sum has a
// closed-form reference, and FTI protects (iter, sum).
func miniApp(rt **Runtime, st *storage.System, execID string, n, iters, stride int,
	inj *fault.Injector, sums []float64) func(*mpi.Rank, State) error {
	return func(r *mpi.Rank, state State) error {
		world := (*rt).World()
		f, err := fti.Init(fti.Config{ExecID: execID}, r, world, st)
		if err != nil {
			return err
		}
		iter := 0
		sum := 0.0
		f.Protect(0, fti.Int{P: &iter})
		f.Protect(1, fti.F64{P: &sum})
		if f.Status() != fti.StatusFresh {
			if err := f.Recover(); err != nil {
				return err
			}
		}
		for ; iter < iters; iter++ {
			inj.MaybeFail(r, world, iter)
			if iter%stride == 0 {
				if err := f.Checkpoint(int64(iter)); err != nil {
					return err
				}
			}
			v, err := mpi.AllreduceF64Scalar(r, world, float64(r.Rank(world)+iter), mpi.OpSum)
			if err != nil {
				return err
			}
			sum += v
			r.Compute(simnet.Millisecond)
		}
		sums[r.Rank(world)] = sum
		return f.Finalize()
	}
}

// reference computes the failure-free sum.
func reference(n, iters int) float64 {
	total := 0.0
	for it := 0; it < iters; it++ {
		for rk := 0; rk < n; rk++ {
			total += float64(rk + it)
		}
	}
	return total
}

func runReinit(t *testing.T, n, iters, stride int, plan fault.Plan, execID string) (*Runtime, []float64) {
	t.Helper()
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	c.Scheduler().SetDeadline(10 * 60 * simnet.Second)
	st := storage.New(c, storage.Config{})
	inj := fault.NewInjector(plan)
	sums := make([]float64, n)
	var rt *Runtime
	main := miniApp(&rt, st, execID, n, iters, stride, inj, sums)
	job := mpi.Launch(c, n, 0, func(r *mpi.Rank) {
		if err := rt.Run(r); err != nil {
			t.Errorf("rank: %v", err)
		}
	})
	rt = NewRuntime(job, Config{}, main)
	c.Run()
	return rt, sums
}

func TestReinitNoFailurePassesThrough(t *testing.T) {
	rt, sums := runReinit(t, 4, 12, 3, fault.Plan{}, "reinit-nofail")
	want := reference(4, 12)
	for i, s := range sums {
		if s != want {
			t.Fatalf("rank %d sum = %v, want %v", i, s, want)
		}
	}
	if len(rt.Recoveries) != 0 || rt.Resets() != 0 {
		t.Fatalf("unexpected recoveries: %+v", rt.Recoveries)
	}
}

func TestReinitRecoversProcessFailure(t *testing.T) {
	plan := fault.Plan{Enabled: true, TargetRank: 2, TargetIter: 7}
	rt, sums := runReinit(t, 4, 12, 3, plan, "reinit-fail")
	want := reference(4, 12)
	for i, s := range sums {
		if s != want {
			t.Fatalf("rank %d sum = %v, want %v (recovery corrupted state)", i, s, want)
		}
	}
	if len(rt.Recoveries) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(rt.Recoveries))
	}
	rec := rt.Recoveries[0]
	if rec.FailedRank != 2 {
		t.Fatalf("failed rank = %d", rec.FailedRank)
	}
	if rec.Duration() <= 0 {
		t.Fatalf("non-positive recovery duration %v", rec.Duration())
	}
	// Reinit recovery should be detection + respawn, well under a second
	// with the default model.
	if rec.Duration() > simnet.Second {
		t.Fatalf("reinit recovery took %v, expected sub-second", rec.Duration())
	}
}

// Recovery cost must not grow with the number of ranks (the paper's central
// Reinit finding, Figure 7).
func TestReinitRecoveryScaleIndependent(t *testing.T) {
	var durs []simnet.Time
	for _, n := range []int{4, 16} {
		plan := fault.Plan{Enabled: true, TargetRank: 1, TargetIter: 5}
		rt, _ := runReinit(t, n, 10, 3, plan, fmt.Sprintf("reinit-scale-%d", n))
		if len(rt.Recoveries) != 1 {
			t.Fatalf("n=%d: recoveries = %d", n, len(rt.Recoveries))
		}
		durs = append(durs, rt.Recoveries[0].Duration())
	}
	small, big := durs[0], durs[1]
	if big > small*3/2 {
		t.Fatalf("recovery grew with scale: %v -> %v", small, big)
	}
}

func TestReinitFailureAtCheckpointIteration(t *testing.T) {
	// Failure on an iteration where a checkpoint is due: the rank dies at
	// the injection point before checkpointing; survivors block inside the
	// commit collective and must be unwound cleanly.
	plan := fault.Plan{Enabled: true, TargetRank: 0, TargetIter: 6}
	rt, sums := runReinit(t, 4, 12, 3, plan, "reinit-ckptfail")
	want := reference(4, 12)
	for i, s := range sums {
		if s != want {
			t.Fatalf("rank %d sum = %v, want %v", i, s, want)
		}
	}
	if len(rt.Recoveries) != 1 {
		t.Fatalf("recoveries = %d", len(rt.Recoveries))
	}
}

func TestReinitEarlyFailureBeforeFirstCheckpoint(t *testing.T) {
	// Failure at iteration 1, before any checkpoint beyond iter 0 exists;
	// recovery must restart from the iter-0 checkpoint and still converge.
	plan := fault.Plan{Enabled: true, TargetRank: 3, TargetIter: 1}
	rt, sums := runReinit(t, 4, 8, 4, plan, "reinit-early")
	want := reference(4, 8)
	for i, s := range sums {
		if s != want {
			t.Fatalf("rank %d sum = %v, want %v", i, s, want)
		}
	}
	if rt.Resets() != 1 {
		t.Fatalf("resets = %d", rt.Resets())
	}
}

func TestTreeDepth(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 1, 3: 2, 6: 2, 7: 3, 100: 6}
	for rank, want := range cases {
		if got := treeDepth(rank); got != want {
			t.Fatalf("treeDepth(%d) = %d, want %d", rank, got, want)
		}
	}
}
