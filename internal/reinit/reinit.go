// Package reinit implements the Reinit global-restart recovery framework
// (Laguna et al.; Georgakoudis et al., "Reinit++", ISC'20): MPI recovery
// performed *inside the MPI runtime*, transparently to the application.
//
// The application wraps its main in a resilient function (the paper's
// Figure 2). On a process failure the runtime: detects the failure through
// its daemons (the shared internal/detect Tree strategy), flushes all
// communication state, respawns the failed process on its node, rebuilds
// the world communicator, and unwinds every survivor back into the
// resilient function with state Restarted — the runtime-level equivalent
// of longjmp. Because everything happens in the runtime with small control
// messages, recovery cost is low and independent of both the process count
// and the problem size, which is exactly the behavior the paper measures
// (Figures 7 and 10).
package reinit

import (
	"fmt"

	"match/internal/detect"
	"match/internal/mpi"
	"match/internal/obs"
	"match/internal/simnet"
	"match/internal/trace"
)

// State tells the resilient function whether it is a fresh start or a
// post-failure re-entry, like OMPI_reinit_state_t.
type State int

const (
	// StateNew is the first invocation.
	StateNew State = iota
	// StateRestarted marks re-entry after a global restart.
	StateRestarted
)

func (s State) String() string {
	if s == StateRestarted {
		return "restarted"
	}
	return "new"
}

// restartSignal unwinds a survivor rank out of whatever it was doing back
// to the resilient-main boundary.
type restartSignal struct{ reset int }

// Config tunes the runtime's failure detection and respawn model. The
// defaults reflect Reinit++'s design: detection via the runtime daemon tree
// (fast, local) and a fork/exec respawn of the failed rank.
type Config struct {
	DetectPeriod  simnet.Time // daemon supervision period
	DetectTimeout simnet.Time // time from death to confirmed detection
	RespawnDelay  simnet.Time // fork/exec + MPI init of the replacement
	ResetHop      simnet.Time // per-tree-level latency of the reset broadcast

	// Detect overrides the failure-detection strategy entirely (ablation:
	// run Reinit's global restart under a ring or instant launcher
	// detector). The zero value keeps the calibrated daemon-tree preset
	// assembled from DetectPeriod/DetectTimeout above.
	Detect detect.Config
}

// DefaultConfig returns the Reinit++ cost model used in the experiments.
func DefaultConfig() Config {
	return Config{
		DetectPeriod:  25 * simnet.Millisecond,
		DetectTimeout: 100 * simnet.Millisecond,
		RespawnDelay:  250 * simnet.Millisecond,
		ResetHop:      2 * simnet.Millisecond,
	}
}

// fillDefaults replaces zero fields with the calibrated defaults.
func (c *Config) fillDefaults() {
	def := DefaultConfig()
	if c.DetectPeriod == 0 {
		c.DetectPeriod = def.DetectPeriod
	}
	if c.DetectTimeout == 0 {
		c.DetectTimeout = def.DetectTimeout
	}
	if c.RespawnDelay == 0 {
		c.RespawnDelay = def.RespawnDelay
	}
	if c.ResetHop == 0 {
		c.ResetHop = def.ResetHop
	}
}

// Resolved returns the configuration with every zero field replaced by its
// calibrated default — the exact cost model a run of this configuration
// uses. Canonicalization (core.CellKey) hashes the resolved form, so an
// empty Config and an explicit DefaultConfig() are the same cache entry.
func (c Config) Resolved() Config {
	c.fillDefaults()
	return c
}

// DetectPreset is Reinit's calibrated detection model — the daemon
// supervision tree — expressed as a detect.Config. core.Run resolves
// Config.Detect against this.
func (c Config) DetectPreset() detect.Config {
	c.fillDefaults()
	return detect.Config{
		Kind:            detect.Tree,
		HeartbeatPeriod: c.DetectPeriod,
		DetectTimeout:   c.DetectTimeout,
	}
}

// Recovery records one global restart, for the harness's recovery-time
// breakdown.
type Recovery struct {
	FailedRank  int
	FailedAt    simnet.Time
	DetectedAt  simnet.Time
	CompletedAt simnet.Time // replacement up, world rebuilt
}

// Duration is the MPI recovery time for this event.
func (rec Recovery) Duration() simnet.Time { return rec.CompletedAt - rec.FailedAt }

// Runtime is the per-job Reinit runtime: failure monitor plus global-reset
// machinery. One Runtime serves all ranks of a job.
type Runtime struct {
	job  *mpi.Job
	cfg  Config
	det  detect.Detector
	main func(*mpi.Rank, State) error

	world  *mpi.Comm
	resets int

	// Recoveries lists completed global restarts.
	Recoveries []Recovery
	// Errs collects resilient-main errors (diagnosed by the harness).
	Errs []error
}

// NewRuntime installs the Reinit runtime on a job. main is the resilient
// function every rank (including future replacements) executes; ranks
// enter it through Run. The failure monitor (cfg.Detect, preset: the
// daemon tree) starts immediately. An invalid explicit detector
// configuration panics; validate with detect.Config.Validate (core.Run
// does) before constructing.
func NewRuntime(job *mpi.Job, cfg Config, main func(*mpi.Rank, State) error) *Runtime {
	cfg.fillDefaults()
	rt := &Runtime{
		job:   job,
		cfg:   cfg,
		main:  main,
		world: job.World(),
	}
	rt.det = detect.MustNew(detect.Resolve(cfg.Detect, cfg.DetectPreset()), job, rt.onFailure)
	rt.det.SetWorld(rt.world)
	return rt
}

// World returns the current world communicator; it changes on every global
// restart (the worldc swap of the paper's Figure 3, done by the runtime).
func (rt *Runtime) World() *mpi.Comm { return rt.world }

// Detector exposes the failure detector (the harness reads its confirmed
// failures for the detection-latency breakdown).
func (rt *Runtime) Detector() detect.Detector { return rt.det }

// Resets returns how many global restarts have happened.
func (rt *Runtime) Resets() int { return rt.resets }

// Stop halts the failure monitor (job teardown).
func (rt *Runtime) Stop() { rt.det.Stop() }

// onFailure is the detector's confirmation callback: every confirmed
// process failure triggers one global restart.
func (rt *Runtime) onFailure(f detect.Failure) {
	rank := rt.world.RankOf(f.GID)
	if rank < 0 {
		return // already replaced by an earlier restart this round
	}
	rt.globalRestart(rt.world.Member(rank), f.FailedAt, f.DetectedAt)
}

// globalRestart is the runtime's recovery path: flush communication,
// respawn the failed rank in place, rebuild the world, and unwind all
// survivors back into resilient main.
func (rt *Runtime) globalRestart(failed *mpi.Process, failedAt, detectedAt simnet.Time) {
	rt.resets++
	reset := rt.resets
	cl := rt.job.Cluster()
	now := cl.Now()

	// 1. Flush all in-flight and queued messages.
	rt.job.BumpEpoch()
	rt.job.DropSubComms()

	// 2. Respawn the failed rank on its node (fork/exec + MPI init).
	oldRank := rt.world.RankOf(failed.GID())
	members := append([]*mpi.Process(nil), rt.world.Members()...)
	repl := rt.job.AddProcess(failed.NodeID(), nil)
	members[oldRank] = repl
	sp := cl.StartProc(failed.NodeID(), rt.cfg.RespawnDelay, func(sp *simnet.Proc) {
		r := mpi.Bind(rt.job, repl, sp)
		if err := rt.runLoop(r, StateRestarted); err != nil {
			rt.Errs = append(rt.Errs, fmt.Errorf("reinit: respawned rank %d: %w", oldRank, err))
		}
	})
	repl.SetSimProc(sp)

	// 3. Rebuild the world communicator; the daemons supervise it.
	rt.world = rt.job.NewComm(members)
	rt.det.SetWorld(rt.world)

	// 4. Unwind survivors via the daemon tree: rank i learns about the
	// reset after depth(i) hops.
	for i, p := range members {
		if p == repl || p.Failed() {
			continue
		}
		spv := p.SimProc()
		if spv == nil || spv.Exited() {
			continue
		}
		depth := treeDepth(i)
		spv.Signal(now+simnet.Time(depth)*rt.cfg.ResetHop, restartSignal{reset: reset})
	}

	rec := Recovery{
		FailedRank:  oldRank,
		FailedAt:    failedAt,
		DetectedAt:  detectedAt,
		CompletedAt: now + rt.cfg.RespawnDelay,
	}
	rt.Recoveries = append(rt.Recoveries, rec)
	rt.job.Cluster().Metrics().Inc(obs.CRepairs)
	if tr := rt.job.Cluster().Tracer(); tr.Wants(trace.CatRepair) {
		tr.Emit(trace.Span{Cat: trace.CatRepair, Rank: int32(oldRank),
			Job: tr.JobOf(rt.job), Start: int64(rec.CompletedAt), Aux: 1})
	}
}

// treeDepth returns the level of rank in a binomial broadcast tree.
func treeDepth(rank int) int {
	d := 0
	for rank > 0 {
		rank = (rank - 1) / 2
		d++
	}
	return d
}

// Run executes the resilient function for the calling rank, re-entering it
// with StateRestarted after every global restart — the analog of
// OMPI_Reinit(argc, argv, resilient_main) in the paper's Figure 2.
func (rt *Runtime) Run(r *mpi.Rank) error {
	return rt.runLoop(r, StateNew)
}

func (rt *Runtime) runLoop(r *mpi.Rank, state State) error {
	for {
		restarted, err := rt.protectedCall(r, state)
		if restarted {
			state = StateRestarted
			continue
		}
		return err
	}
}

// protectedCall invokes resilient main, converting a restartSignal unwind
// into a re-entry request.
func (rt *Runtime) protectedCall(r *mpi.Rank, state State) (restarted bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			if _, ok := v.(restartSignal); ok {
				restarted = true
				return
			}
			panic(v)
		}
	}()
	return false, rt.main(r, state)
}
