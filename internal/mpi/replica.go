package mpi

// Replica-aware communicators: the MPI-layer half of the ReplicaFTI design
// (process replication à la rMPI / FTHP-MPI, with partial replication in
// the style of PartRePer-MPI).
//
// A replica communicator presents Size() logical ranks while each logical
// rank is backed by a *replica group* of one or more physical processes
// that all execute the same SPMD code on the same deterministic problem.
// Point-to-point semantics:
//
//   - duplication: every live replica of the sending rank transmits one
//     physical copy to every current member of the receiving group, so a
//     message survives any single replica failure without retransmission
//     or rollback;
//   - suppression: each copy carries a per-(comm, src, dst) sequence
//     number; the receiver accepts the first copy of each sequence number
//     and discards the rest at delivery (collective dedup falls out for
//     free, since collectives are built from Send/Recv).
//
// Because replicas of a rank execute identical code, they emit identical
// sequence-numbered streams; per-pair non-overtaking delivery then makes
// the accepted stream identical to a failure-free single-copy stream, no
// matter how far the replicas drift apart in virtual time or which of them
// dies. No failure detector is needed on the datapath — that is the whole
// selling point of replication, and exactly what the checkpoint/restart
// designs cannot offer.

// replicaInfo is the replica-group structure attached to a Comm.
type replicaInfo struct {
	groups [][]*Process // current members per logical rank, leader first
	idx    map[int]int  // gid -> replica index at creation (stable identity)
}

// NewReplicaComm builds a communicator of len(groups) logical ranks, each
// backed by the given replica group (first member is the initial leader).
// Every physical process maps to its group's logical rank.
func (j *Job) NewReplicaComm(groups [][]*Process) *Comm {
	members := make([]*Process, len(groups))
	for i, g := range groups {
		members[i] = g[0]
	}
	c := j.NewComm(members)
	info := &replicaInfo{
		groups: make([][]*Process, len(groups)),
		idx:    make(map[int]int),
	}
	for i, g := range groups {
		info.groups[i] = append([]*Process(nil), g...)
		for k, m := range g {
			c.rankOf[m.gid] = i
			info.idx[m.gid] = k
		}
	}
	c.repl = info
	return c
}

// Replicated reports whether the communicator is replica-aware.
func (c *Comm) Replicated() bool { return c.repl != nil }

// ReplicaGroup returns the current members of logical rank's group (do not
// mutate). For a plain communicator it returns the single member.
func (c *Comm) ReplicaGroup(rank int) []*Process {
	if c.repl == nil {
		return c.members[rank : rank+1]
	}
	return c.repl.groups[rank]
}

// ReplicaDegree returns how many replicas currently back the logical rank.
func (c *Comm) ReplicaDegree(rank int) int { return len(c.ReplicaGroup(rank)) }

// ReplicaIndexOf returns the replica index of process gid within its group
// (0 for primaries and for plain communicators).
func (c *Comm) ReplicaIndexOf(gid int) int {
	if c.repl == nil {
		return 0
	}
	return c.repl.idx[gid]
}

// PruneReplica removes a (failed) process from its replica group so that
// senders stop duplicating onto it. The replica runtime calls this once a
// failover's membership update completes; until then copies to the dead
// replica still consume wire time and are dropped at delivery, modeling
// the window in which survivors do not yet know about the failure.
func (c *Comm) PruneReplica(gid int) {
	if c.repl == nil {
		return
	}
	rank, ok := c.rankOf[gid]
	if !ok {
		return
	}
	g := c.repl.groups[rank]
	for i, m := range g {
		if m.gid == gid {
			c.repl.groups[rank] = append(append([]*Process(nil), g[:i]...), g[i+1:]...)
			break
		}
	}
}

// AddReplica joins a freshly spawned process to the logical rank's replica
// group under the given stable replica index: senders start duplicating
// every copy onto it immediately. The hot-spare runtime calls this once a
// spare's state transfer completes; the spare then receives the same
// sequenced stream as its twins, which is what keeps it in lockstep.
func (c *Comm) AddReplica(rank int, p *Process, idx int) {
	if c.repl == nil {
		return
	}
	c.repl.groups[rank] = append(c.repl.groups[rank], p)
	c.rankOf[p.gid] = rank
	c.repl.idx[p.gid] = idx
}

// SetReplicaIndex reassigns a member's stable replica index. The
// hot-spare runtime uses it during a takeover's identity swap: the
// executing survivor carries on in the consumed spare's slot, so the
// victim's slot is the one left empty for the next respawn to refill.
func (c *Comm) SetReplicaIndex(gid, idx int) {
	if c.repl != nil {
		c.repl.idx[gid] = idx
	}
}

// PromoteLeader points Member(rank) at the first surviving member of the
// rank's group (leader election outcome). Matching and routing are
// unaffected — only leadership-based reporting changes.
func (c *Comm) PromoteLeader(rank int) {
	if c.repl == nil {
		return
	}
	for _, m := range c.repl.groups[rank] {
		if !m.failed {
			c.members[rank] = m
			return
		}
	}
}

// seqKey packs (communicator context, logical peer rank) into one map key
// for the replica sequence tables.
func seqKey(ctx, rank int) int64 { return int64(ctx)<<32 | int64(uint32(rank)) }

// sendReplicated is the duplication half of the replica protocol: stamp the
// logical message with the next sequence number for (comm, dst) and fan one
// physical copy out to every current member of the destination group. A
// send to the caller's own logical rank delivers only to the caller — its
// twin replicas execute the identical self-send themselves.
func (r *Rank) sendReplicated(c *Comm, dst, tag int, data []byte) error {
	key := seqKey(c.ctx, dst)
	seq := r.proc.sendSeq[key]
	r.proc.sendSeq[key] = seq + 1
	srcRank := c.RankOf(r.proc.gid)
	if dst == srcRank {
		return r.sendCopy(c, r.proc, srcRank, tag, data, true, seq)
	}
	for _, to := range c.repl.groups[dst] {
		if err := r.sendCopy(c, to, srcRank, tag, data, true, seq); err != nil {
			return err
		}
	}
	return nil
}

// replicaGroupGone classifies a silent source group for Recv: it returns
// ErrRankExited when every member has exited normally with no copies in
// flight (a protocol bug — fail fast like the plain path), and no error
// while any member is alive or the group died entirely (an exhausted group
// hangs until the replica runtime's checkpoint fallback aborts the job).
func (r *Rank) replicaGroupGone(c *Comm, src int) error {
	okExit := false
	inflight := 0
	for _, m := range c.repl.groups[src] {
		sp := m.proc
		if !m.failed && (sp == nil || !sp.Exited()) {
			return nil // still running
		}
		if !m.failed && sp != nil && sp.Exited() {
			okExit = true
		}
		inflight += r.proc.inflight[m.gid]
	}
	if okExit && inflight == 0 {
		return ErrRankExited
	}
	return nil
}
