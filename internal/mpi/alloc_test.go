package mpi

import (
	"testing"
)

// The per-message cost of the point-to-point path must be allocation-free
// in steady state: delivery records are pooled on the Job and mailboxes
// hold Message values. Launch/cluster setup does allocate, so the test
// measures the *marginal* cost of 1000 extra ping-pong rounds (2000 extra
// messages) between two otherwise identical runs. Skipped under -short:
// CI's race job runs -short, and the race detector perturbs allocation
// counts.
func TestMessagePathSteadyStateAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is unreliable under -race (-short)")
	}
	payload := make([]byte, 64)
	short := testing.AllocsPerRun(5, func() { benchPingPong(100, payload) })
	long := testing.AllocsPerRun(5, func() { benchPingPong(1100, payload) })
	perMsg := (long - short) / 2000
	if perMsg > 0.05 {
		t.Fatalf("message path allocates in steady state: %.3f allocs/message "+
			"(run 100 rounds: %.0f allocs, 1100 rounds: %.0f allocs)", perMsg, short, long)
	}
}
