package mpi

import (
	"match/internal/simnet"
	"match/internal/trace"
)

// Send posts a point-to-point message to rank dst of comm. Sends are eager:
// the runtime buffers the payload, so Send never blocks waiting for the
// receiver (it only charges the sender-side overhead and NIC time). A send
// to a failed process succeeds silently unless the failure has been
// detected — exactly MPI's fail-stop ambiguity.
//
// On a replica-aware communicator, dst is a logical rank: one sequenced
// copy goes to every current member of its replica group (see replica.go).
func Send(r *Rank, c *Comm, dst, tag int, data []byte) error {
	r.chargeOverheads()
	if err := r.opError(c); err != nil {
		return err
	}
	if c.repl != nil {
		return r.sendReplicated(c, dst, tag, data)
	}
	to := c.Member(dst)
	if to.failed && r.job.Detected(to.gid) {
		return ErrProcFailed
	}
	return r.sendCopy(c, to, c.RankOf(r.proc.gid), tag, data, false, 0)
}

// sendCopy puts one physical copy on the wire: sender overhead, NIC and
// latency charging, non-overtaking ordering, and the delivery event. For
// replicated copies the delivery event also runs duplicate suppression.
func (r *Rank) sendCopy(c *Comm, to *Process, srcRank, tag int, data []byte, replicated bool, seq int64) error {
	cl := r.job.cluster
	cfg := cl.Config()
	r.sp.Compute(cfg.SendOverhead)

	now := r.sp.Now()
	wireBytes := len(data)
	if r.job.BytesScale > 1 {
		wireBytes = int(float64(wireBytes) * r.job.BytesScale)
	}
	var arrive simnet.Time
	if to.gid == r.proc.gid {
		arrive = now + cfg.IntraLatency
	} else {
		arrive = cl.SendArrival(r.proc.node, to.node, wireBytes, now)
	}
	if f := r.job.DeliveryFactor; f > 0 {
		arrive += simnet.Time(f * float64(arrive-now))
	}
	// Enforce MPI's non-overtaking order per (sender, receiver).
	if last := r.proc.lastArr[to.gid]; arrive < last {
		arrive = last
	}
	r.proc.lastArr[to.gid] = arrive

	msg := &Message{
		Ctx:        c.ctx,
		SrcGID:     r.proc.gid,
		SrcRank:    srcRank,
		Tag:        tag,
		Data:       data,
		arrival:    arrive,
		epoch:      r.job.epoch,
		replicated: replicated,
		seq:        seq,
	}
	j := r.job
	to.inflight[r.proc.gid]++
	cl.Scheduler().At(arrive, func() {
		to.inflight[msg.SrcGID]--
		if msg.epoch != j.epoch {
			return // flushed by a Reinit reset
		}
		if to.failed || to.proc == nil || to.proc.Exited() {
			return // dropped on the floor, like a real NIC
		}
		if msg.replicated {
			key := seqKey(msg.Ctx, msg.SrcRank)
			if msg.seq < to.recvSeq[key] {
				j.Stats.Suppressed++
				if tr := cl.Tracer(); tr.Wants(trace.CatDedup) {
					tr.Emit(trace.Span{Cat: trace.CatDedup, Rank: int32(msg.SrcRank),
						Job: tr.JobOf(j), Start: int64(arrive), Aux: int64(msg.seq)})
				}
				return // duplicate copy from a twin replica
			}
			to.recvSeq[key] = msg.seq + 1
		}
		to.mbox = append(to.mbox, msg)
		if to.blocked {
			to.proc.Unblock(arrive)
		}
		// A rank blocked in Recv may be woken by unrelated events; waking on
		// every delivery keeps the wait loop simple and correct.
	})
	j.Stats.Messages++
	j.Stats.Bytes += int64(len(data))
	if tr := cl.Tracer(); tr.Wants(trace.CatSend) {
		tr.Emit(trace.Span{Cat: trace.CatSend, Rank: int32(srcRank), Job: tr.JobOf(j),
			Start: int64(now), Dur: int64(arrive - now),
			Level: int32(tag), Aux: int64(len(data))})
	}
	return nil
}

// match removes and returns the first mailbox message matching the
// (comm, src, tag) triple, or nil.
func (p *Process) match(ctx, srcRank, tag int) *Message {
	for i, m := range p.mbox {
		if m.Ctx != ctx {
			continue
		}
		if srcRank != AnySource && m.SrcRank != srcRank {
			continue
		}
		if tag != AnyTag && m.Tag != tag {
			continue
		}
		p.mbox = append(p.mbox[:i], p.mbox[i+1:]...)
		return m
	}
	return nil
}

// Recv blocks until a message matching (src, tag) arrives on comm. src may
// be AnySource and tag may be AnyTag. If the communicator is revoked while
// waiting, Recv returns ErrRevoked; if the awaited sender's failure is
// detected, ErrProcFailed. An undetected failure hangs — that is the
// whole point of failure detectors.
func Recv(r *Rank, c *Comm, src, tag int) (*Message, error) {
	r.chargeOverheads()
	for {
		if err := r.opError(c); err != nil {
			return nil, err
		}
		if m := r.proc.match(c.ctx, src, tag); m != nil {
			r.sp.Compute(r.job.cluster.Config().RecvOverhead)
			return m, nil
		}
		if src != AnySource {
			if c.repl != nil {
				// Replica groups have no failure detector: as long as any
				// member lives it will produce the awaited copy; a fully
				// dead group hangs until the replica runtime's checkpoint
				// fallback aborts the job.
				if err := r.replicaGroupGone(c, src); err != nil {
					return nil, err
				}
			} else {
				from := c.Member(src)
				if from.failed && r.job.Detected(from.gid) {
					return nil, ErrProcFailed
				}
				if !from.failed && from.proc != nil && from.proc.Exited() &&
					r.proc.inflight[from.gid] == 0 {
					// Peer finished the program without sending: protocol bug,
					// or a rank outliving its peers. Fail fast instead of
					// deadlocking the simulation.
					return nil, ErrRankExited
				}
			}
		} else if c.repl == nil && anyDetectedFailure(c, r.job) {
			return nil, ErrProcFailed
		}
		r.proc.blocked = true
		r.sp.Block()
		r.proc.blocked = false
	}
}

func anyDetectedFailure(c *Comm, j *Job) bool {
	for _, m := range c.members {
		if m.failed && j.Detected(m.gid) {
			return true
		}
	}
	return false
}

// Iprobe reports whether a matching message is already available, without
// receiving it.
func Iprobe(r *Rank, c *Comm, src, tag int) bool {
	for _, m := range r.proc.mbox {
		if m.Ctx != c.ctx {
			continue
		}
		if src != AnySource && m.SrcRank != src {
			continue
		}
		if tag != AnyTag && m.Tag != tag {
			continue
		}
		return true
	}
	return false
}

// Sendrecv posts a send to dst and then receives from src; because sends
// are eager this is deadlock-free in any order across ranks (the standard
// halo-exchange primitive).
func Sendrecv(r *Rank, c *Comm, dst, sendTag int, data []byte, src, recvTag int) (*Message, error) {
	if err := Send(r, c, dst, sendTag, data); err != nil {
		return nil, err
	}
	return Recv(r, c, src, recvTag)
}
