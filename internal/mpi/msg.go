package mpi

import (
	"match/internal/obs"
	"match/internal/simnet"
	"match/internal/trace"
)

// delivery is the runtime's send record: one rides the scheduler per
// physical copy on the wire. Records are pooled on the Job and recycled
// the moment the copy is delivered, suppressed, or dropped, and the
// delivery event itself is a static function with the record as its
// argument — so the steady-state message path performs no allocation.
type delivery struct {
	to  *Process
	msg Message
}

// getDelivery takes a send record from the free list.
func (j *Job) getDelivery() *delivery {
	if n := len(j.freeDel); n > 0 {
		d := j.freeDel[n-1]
		j.freeDel = j.freeDel[:n-1]
		j.cluster.Metrics().Inc(obs.CDeliveriesPooled)
		return d
	}
	j.cluster.Metrics().Inc(obs.CDeliveriesAlloc)
	return &delivery{}
}

// putDelivery recycles a send record, dropping its payload reference.
func (j *Job) putDelivery(d *delivery) {
	d.to = nil
	d.msg = Message{}
	j.freeDel = append(j.freeDel, d)
}

// Send posts a point-to-point message to rank dst of comm. Sends are eager:
// the runtime buffers the payload, so Send never blocks waiting for the
// receiver (it only charges the sender-side overhead and NIC time). A send
// to a failed process succeeds silently unless the failure has been
// detected — exactly MPI's fail-stop ambiguity.
//
// On a replica-aware communicator, dst is a logical rank: one sequenced
// copy goes to every current member of its replica group (see replica.go).
func Send(r *Rank, c *Comm, dst, tag int, data []byte) error {
	r.chargeOverheads()
	if err := r.opError(c); err != nil {
		return err
	}
	if c.repl != nil {
		return r.sendReplicated(c, dst, tag, data)
	}
	to := c.Member(dst)
	if to.failed && r.job.Detected(to.gid) {
		return ErrProcFailed
	}
	return r.sendCopy(c, to, c.RankOf(r.proc.gid), tag, data, false, 0)
}

// sendCopy puts one physical copy on the wire: sender overhead, NIC and
// latency charging, non-overtaking ordering, and the delivery event. For
// replicated copies the delivery event also runs duplicate suppression.
func (r *Rank) sendCopy(c *Comm, to *Process, srcRank, tag int, data []byte, replicated bool, seq int64) error {
	cl := r.job.cluster
	cfg := cl.Config()
	r.sp.Compute(cfg.SendOverhead)

	now := r.sp.Now()
	wireBytes := len(data)
	if r.job.BytesScale > 1 {
		wireBytes = int(float64(wireBytes) * r.job.BytesScale)
	}
	var arrive simnet.Time
	if to.gid == r.proc.gid {
		arrive = now + cfg.IntraLatency
	} else {
		arrive = cl.SendArrival(r.proc.node, to.node, wireBytes, now)
	}
	if f := r.job.DeliveryFactor; f > 0 {
		arrive += simnet.Time(f * float64(arrive-now))
	}
	// Enforce MPI's non-overtaking order per (sender, receiver).
	if last := r.proc.lastArr[to.gid]; arrive < last {
		arrive = last
	}
	r.proc.lastArr[to.gid] = arrive

	j := r.job
	d := j.getDelivery()
	d.to = to
	d.msg = Message{
		Ctx:        c.ctx,
		SrcGID:     r.proc.gid,
		SrcRank:    srcRank,
		Tag:        tag,
		Data:       data,
		arrival:    arrive,
		epoch:      j.epoch,
		replicated: replicated,
		seq:        seq,
	}
	to.inflight[r.proc.gid]++
	cl.Scheduler().AtFunc(arrive, deliverMessage, d, 0)
	j.Stats.Messages++
	j.Stats.Bytes += int64(len(data))
	if m := cl.Metrics(); m != nil {
		m.Inc(obs.CMessages)
		m.Add(obs.CMsgBytes, int64(len(data)))
		m.Observe(obs.HMsgBytes, int64(len(data)))
		m.IncRankSend(srcRank)
	}
	if tr := cl.Tracer(); tr.Wants(trace.CatSend) {
		tr.Emit(trace.Span{Cat: trace.CatSend, Rank: int32(srcRank), Job: tr.JobOf(j),
			Start: int64(now), Dur: int64(arrive - now),
			Level: int32(tag), Aux: int64(len(data))})
	}
	return nil
}

// deliverMessage is the static delivery-event body: it lands one physical
// copy at its receiver (or drops it) and recycles the send record.
func deliverMessage(a any, _ int64) {
	d := a.(*delivery)
	to := d.to
	j := to.job
	msg := &d.msg
	to.inflight[msg.SrcGID]--
	if msg.epoch != j.epoch {
		j.putDelivery(d)
		return // flushed by a Reinit reset
	}
	if to.failed || to.proc == nil || to.proc.Exited() {
		j.putDelivery(d)
		return // dropped on the floor, like a real NIC
	}
	arrive := msg.arrival
	if msg.replicated {
		key := seqKey(msg.Ctx, msg.SrcRank)
		if msg.seq < to.recvSeq[key] {
			j.Stats.Suppressed++
			j.cluster.Metrics().Inc(obs.CDedupDrops)
			if tr := j.cluster.Tracer(); tr.Wants(trace.CatDedup) {
				tr.Emit(trace.Span{Cat: trace.CatDedup, Rank: int32(msg.SrcRank),
					Job: tr.JobOf(j), Start: int64(arrive), Aux: int64(msg.seq)})
			}
			j.putDelivery(d)
			return // duplicate copy from a twin replica
		}
		to.recvSeq[key] = msg.seq + 1
	}
	to.mbox = append(to.mbox, d.msg)
	j.putDelivery(d)
	if to.blocked {
		to.proc.Unblock(arrive)
	}
	// A rank blocked in Recv may be woken by unrelated events; waking on
	// every delivery keeps the wait loop simple and correct.
}

// match removes and returns the first mailbox message matching the
// (comm, src, tag) triple.
func (p *Process) match(ctx, srcRank, tag int) (Message, bool) {
	for i := range p.mbox {
		m := &p.mbox[i]
		if m.Ctx != ctx {
			continue
		}
		if srcRank != AnySource && m.SrcRank != srcRank {
			continue
		}
		if tag != AnyTag && m.Tag != tag {
			continue
		}
		out := *m
		n := len(p.mbox) - 1
		copy(p.mbox[i:], p.mbox[i+1:])
		p.mbox[n] = Message{}
		p.mbox = p.mbox[:n]
		return out, true
	}
	return Message{}, false
}

// Recv blocks until a message matching (src, tag) arrives on comm. src may
// be AnySource and tag may be AnyTag. If the communicator is revoked while
// waiting, Recv returns ErrRevoked; if the awaited sender's failure is
// detected, ErrProcFailed. An undetected failure hangs — that is the
// whole point of failure detectors.
func Recv(r *Rank, c *Comm, src, tag int) (Message, error) {
	r.chargeOverheads()
	for {
		if err := r.opError(c); err != nil {
			return Message{}, err
		}
		if m, ok := r.proc.match(c.ctx, src, tag); ok {
			r.sp.Compute(r.job.cluster.Config().RecvOverhead)
			return m, nil
		}
		if src != AnySource {
			if c.repl != nil {
				// Replica groups have no failure detector: as long as any
				// member lives it will produce the awaited copy; a fully
				// dead group hangs until the replica runtime's checkpoint
				// fallback aborts the job.
				if err := r.replicaGroupGone(c, src); err != nil {
					return Message{}, err
				}
			} else {
				from := c.Member(src)
				if from.failed && r.job.Detected(from.gid) {
					return Message{}, ErrProcFailed
				}
				if !from.failed && from.proc != nil && from.proc.Exited() &&
					r.proc.inflight[from.gid] == 0 {
					// Peer finished the program without sending: protocol bug,
					// or a rank outliving its peers. Fail fast instead of
					// deadlocking the simulation.
					return Message{}, ErrRankExited
				}
			}
		} else if c.repl == nil && anyDetectedFailure(c, r.job) {
			return Message{}, ErrProcFailed
		}
		r.proc.blocked = true
		r.sp.Block()
		r.proc.blocked = false
	}
}

func anyDetectedFailure(c *Comm, j *Job) bool {
	for _, m := range c.members {
		if m.failed && j.Detected(m.gid) {
			return true
		}
	}
	return false
}

// Iprobe reports whether a matching message is already available, without
// receiving it.
func Iprobe(r *Rank, c *Comm, src, tag int) bool {
	for i := range r.proc.mbox {
		m := &r.proc.mbox[i]
		if m.Ctx != c.ctx {
			continue
		}
		if src != AnySource && m.SrcRank != src {
			continue
		}
		if tag != AnyTag && m.Tag != tag {
			continue
		}
		return true
	}
	return false
}

// Sendrecv posts a send to dst and then receives from src; because sends
// are eager this is deadlock-free in any order across ranks (the standard
// halo-exchange primitive).
func Sendrecv(r *Rank, c *Comm, dst, sendTag int, data []byte, src, recvTag int) (Message, error) {
	if err := Send(r, c, dst, sendTag, data); err != nil {
		return Message{}, err
	}
	return Recv(r, c, src, recvTag)
}
