package mpi

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"match/internal/enc"
	"match/internal/simnet"
)

// runJob launches n ranks running body and drives the simulation; it fails
// the test if any rank panicked or did not exit.
func runJob(t *testing.T, n int, body func(*Rank)) *Job {
	t.Helper()
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	j := Launch(c, n, 0, body)
	c.Run()
	for i, p := range j.World().Members() {
		if p.proc.Status() == simnet.ExitPanic {
			t.Fatalf("rank %d panicked: %v", i, p.proc.PanicValue())
		}
		if !p.proc.Exited() {
			t.Fatalf("rank %d did not exit (deadlock)", i)
		}
	}
	return j
}

func TestLaunchRanksAndPlacement(t *testing.T) {
	ranks := make([]int, 8)
	nodes := make([]int, 8)
	runJob(t, 8, func(r *Rank) {
		w := r.Job().World()
		ranks[r.Rank(w)] = r.Rank(w)
		nodes[r.Rank(w)] = r.Process().NodeID()
		if r.Size(w) != 8 {
			t.Errorf("size = %d", r.Size(w))
		}
	})
	for i := 0; i < 8; i++ {
		if ranks[i] != i {
			t.Fatalf("rank %d missing", i)
		}
		if nodes[i] != i/2 { // 8 ranks over 4 nodes, block placement
			t.Fatalf("rank %d on node %d, want %d", i, nodes[i], i/2)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	var got []byte
	runJob(t, 2, func(r *Rank) {
		w := r.Job().World()
		switch r.Rank(w) {
		case 0:
			if err := Send(r, w, 1, 7, []byte("hello")); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			m, err := Recv(r, w, 0, 7)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = m.Data
			if m.SrcRank != 0 || m.Tag != 7 {
				t.Errorf("bad envelope: src=%d tag=%d", m.SrcRank, m.Tag)
			}
		}
	})
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestMessageOrderNonOvertaking(t *testing.T) {
	var order []int
	runJob(t, 2, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			// A large message followed by a small one: the small one must
			// not overtake despite shorter transfer time.
			Send(r, w, 1, 1, make([]byte, 1<<20))
			Send(r, w, 1, 1, []byte{42})
		} else {
			for i := 0; i < 2; i++ {
				m, err := Recv(r, w, 0, 1)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				order = append(order, len(m.Data))
			}
		}
	})
	if len(order) != 2 || order[0] != 1<<20 || order[1] != 1 {
		t.Fatalf("order = %v, want [1048576 1]", order)
	}
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	seen := map[int]bool{}
	runJob(t, 4, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			for i := 0; i < 3; i++ {
				m, err := Recv(r, w, AnySource, AnyTag)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				seen[m.SrcRank] = true
			}
		} else {
			Send(r, w, 0, 100+r.Rank(w), []byte{byte(r.Rank(w))})
		}
	})
	if len(seen) != 3 {
		t.Fatalf("saw senders %v, want 3 distinct", seen)
	}
}

func TestRecvTagSelectivity(t *testing.T) {
	runJob(t, 2, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			Send(r, w, 1, 5, []byte("five"))
			Send(r, w, 1, 6, []byte("six"))
		} else {
			m6, err := Recv(r, w, 0, 6) // out of arrival order, by tag
			if err != nil || string(m6.Data) != "six" {
				t.Errorf("tag 6: %v %q", err, m6.Data)
				return
			}
			m5, err := Recv(r, w, 0, 5)
			if err != nil || string(m5.Data) != "five" {
				t.Errorf("tag 5: %v %q", err, m5.Data)
			}
		}
	})
}

func TestIprobe(t *testing.T) {
	runJob(t, 2, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			Send(r, w, 1, 9, []byte("x"))
		} else {
			if Iprobe(r, w, 0, 9) {
				t.Error("probe true before arrival possible at t=0")
			}
			r.Sim().Sleep(simnet.Second) // let it arrive
			if !Iprobe(r, w, 0, 9) {
				t.Error("probe false after arrival")
			}
			Recv(r, w, 0, 9)
			if Iprobe(r, w, 0, 9) {
				t.Error("probe true after consuming")
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	after := make([]simnet.Time, 4)
	runJob(t, 4, func(r *Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		r.Sim().Sleep(simnet.Time(me) * simnet.Millisecond) // skewed arrival
		if err := Barrier(r, w); err != nil {
			t.Errorf("barrier: %v", err)
		}
		after[me] = r.Now()
	})
	// Everyone leaves the barrier no earlier than the last arrival (3ms).
	for i, tm := range after {
		if tm < 3*simnet.Millisecond {
			t.Fatalf("rank %d left barrier at %v, before last arrival", i, tm)
		}
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for root := 0; root < 5; root++ {
		got := make([][]int64, 5)
		runJob(t, 5, func(r *Rank) {
			w := r.Job().World()
			var in []int64
			if r.Rank(w) == root {
				in = []int64{int64(root) * 11, 7}
			}
			out, err := BcastI64(r, w, root, in)
			if err != nil {
				t.Errorf("bcast: %v", err)
				return
			}
			got[r.Rank(w)] = out
		})
		for i, v := range got {
			if len(v) != 2 || v[0] != int64(root)*11 || v[1] != 7 {
				t.Fatalf("root %d: rank %d got %v", root, i, v)
			}
		}
	}
}

func TestAllreduceOps(t *testing.T) {
	n := 6
	tests := []struct {
		op   Op
		want float64
	}{
		{OpSum, 15}, {OpMax, 5}, {OpMin, 0}, {OpProd, 0},
	}
	for _, tc := range tests {
		results := make([]float64, n)
		runJob(t, n, func(r *Rank) {
			w := r.Job().World()
			v, err := AllreduceF64Scalar(r, w, float64(r.Rank(w)), tc.op)
			if err != nil {
				t.Errorf("%v: %v", tc.op, err)
				return
			}
			results[r.Rank(w)] = v
		})
		for i, v := range results {
			if v != tc.want {
				t.Fatalf("op %v rank %d = %v, want %v", tc.op, i, v, tc.want)
			}
		}
	}
}

func TestAllreduceI64Bitwise(t *testing.T) {
	n := 4
	vals := []int64{0b1111, 0b1101, 0b0111, 0b0101}
	ands := make([]int64, n)
	ors := make([]int64, n)
	runJob(t, n, func(r *Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		a, err := AllreduceI64Scalar(r, w, vals[me], OpBAnd)
		if err != nil {
			t.Errorf("band: %v", err)
		}
		o, err := AllreduceI64Scalar(r, w, vals[me], OpBOr)
		if err != nil {
			t.Errorf("bor: %v", err)
		}
		ands[me], ors[me] = a, o
	})
	for i := 0; i < n; i++ {
		if ands[i] != 0b0101 || ors[i] != 0b1111 {
			t.Fatalf("rank %d: and=%b or=%b", i, ands[i], ors[i])
		}
	}
}

func TestReduceToRoot(t *testing.T) {
	var rootGot []float64
	runJob(t, 7, func(r *Rank) {
		w := r.Job().World()
		out, err := ReduceF64(r, w, 3, []float64{1, float64(r.Rank(w))}, OpSum)
		if err != nil {
			t.Errorf("reduce: %v", err)
			return
		}
		if r.Rank(w) == 3 {
			rootGot = out
		} else if out != nil {
			t.Errorf("non-root got %v", out)
		}
	})
	if rootGot[0] != 7 || rootGot[1] != 21 {
		t.Fatalf("root got %v, want [7 21]", rootGot)
	}
}

func TestGathervAndAllgatherv(t *testing.T) {
	n := 5
	all := make([][][]byte, n)
	runJob(t, n, func(r *Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		payload := make([]byte, me+1) // variable sizes
		for i := range payload {
			payload[i] = byte(me)
		}
		out, err := Allgatherv(r, w, payload)
		if err != nil {
			t.Errorf("allgatherv: %v", err)
			return
		}
		all[me] = out
	})
	for me := 0; me < n; me++ {
		for i := 0; i < n; i++ {
			if len(all[me][i]) != i+1 || all[me][i][0] != byte(i) {
				t.Fatalf("rank %d slot %d = %v", me, i, all[me][i])
			}
		}
	}
}

func TestScatterv(t *testing.T) {
	n := 4
	got := make([]string, n)
	runJob(t, n, func(r *Rank) {
		w := r.Job().World()
		var parts [][]byte
		if r.Rank(w) == 0 {
			parts = [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), []byte("dddd")}
		}
		p, err := Scatterv(r, w, 0, parts)
		if err != nil {
			t.Errorf("scatterv: %v", err)
			return
		}
		got[r.Rank(w)] = string(p)
	})
	want := []string{"a", "bb", "ccc", "dddd"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestAlltoallv(t *testing.T) {
	n := 4
	ok := make([]bool, n)
	runJob(t, n, func(r *Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		send := make([][]byte, n)
		for i := range send {
			send[i] = []byte{byte(me*10 + i)} // unique per (src,dst)
		}
		recv, err := Alltoallv(r, w, send)
		if err != nil {
			t.Errorf("alltoallv: %v", err)
			return
		}
		good := true
		for i := range recv {
			if len(recv[i]) != 1 || recv[i][0] != byte(i*10+me) {
				good = false
			}
		}
		ok[me] = good
	})
	for i, g := range ok {
		if !g {
			t.Fatalf("rank %d got wrong alltoallv payloads", i)
		}
	}
}

// Property: Allreduce(sum) over random vectors equals the serial sum on
// every rank.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		k := 1 + rng.Intn(8)
		vecs := make([][]float64, n)
		want := make([]float64, k)
		for i := range vecs {
			vecs[i] = make([]float64, k)
			for j := range vecs[i] {
				vecs[i][j] = float64(rng.Intn(1000))
				want[j] += vecs[i][j]
			}
		}
		pass := true
		c := simnet.NewCluster(simnet.Config{Nodes: 2})
		j := Launch(c, n, 0, func(r *Rank) {
			w := r.Job().World()
			out, err := AllreduceF64(r, w, vecs[r.Rank(w)], OpSum)
			if err != nil {
				pass = false
				return
			}
			for i := range want {
				if math.Abs(out[i]-want[i]) > 1e-9 {
					pass = false
				}
			}
		})
		c.Run()
		_ = j
		return pass
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRecvFromFailedHangsUntilDetected(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	var recvErr error
	done := false
	j := Launch(c, 2, 0, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			r.Sim().Sleep(10 * simnet.Millisecond)
			r.Die()
		} else {
			_, recvErr = Recv(r, w, 0, 1)
			done = true
		}
	})
	c.Run()
	if done {
		t.Fatal("recv returned before failure detection")
	}
	// A failure detector notices and marks the failure; the blocked recv
	// must now fail with ErrProcFailed.
	j.MarkDetected(j.World().Member(0).GID())
	c.Run()
	if !done {
		t.Fatal("recv still blocked after detection")
	}
	if !errors.Is(recvErr, ErrProcFailed) {
		t.Fatalf("err = %v, want ErrProcFailed", recvErr)
	}
}

func TestSendToDetectedFailedErrors(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	var sendErr error
	j := Launch(c, 2, 0, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			r.Die()
		} else {
			r.Sim().Sleep(simnet.Millisecond)
			r.Job().MarkDetected(w.Member(0).GID())
			sendErr = Send(r, w, 0, 1, []byte("x"))
		}
	})
	c.Run()
	_ = j
	if !errors.Is(sendErr, ErrProcFailed) {
		t.Fatalf("err = %v, want ErrProcFailed", sendErr)
	}
}

func TestRevokeInterruptsBlockedRecv(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	var recvErr error
	j := Launch(c, 2, 0, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			r.Sim().Sleep(5 * simnet.Millisecond)
			w.Revoke()
			// Our own subsequent ops fail too.
			if err := Send(r, w, 1, 1, nil); !errors.Is(err, ErrRevoked) {
				t.Errorf("send on revoked = %v", err)
			}
		} else {
			_, recvErr = Recv(r, w, 0, 99)
		}
	})
	c.Run()
	_ = j
	if !errors.Is(recvErr, ErrRevoked) {
		t.Fatalf("err = %v, want ErrRevoked", recvErr)
	}
}

func TestEpochBumpFlushesInflight(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	delivered := false
	j := Launch(c, 2, 0, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			Send(r, w, 1, 1, make([]byte, 1<<20)) // slow message
		} else {
			r.Sim().Sleep(10 * simnet.Second)
			delivered = Iprobe(r, w, 0, 1)
		}
	})
	// Bump the epoch after the send is posted but before the 1 MiB message
	// lands (transfer takes ~100 µs at 10 GB/s).
	c.Scheduler().At(10*simnet.Microsecond, func() { j.BumpEpoch() })
	c.Run()
	if delivered {
		t.Fatal("stale-epoch message was delivered")
	}
}

func TestAbortKillsJob(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	finished := 0
	j := Launch(c, 4, 0, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			r.Sim().Sleep(simnet.Millisecond)
			r.Job().Abort()
			return
		}
		r.Sim().Sleep(simnet.Second)
		finished++
	})
	c.Run()
	if finished != 0 {
		t.Fatalf("%d ranks survived abort", finished)
	}
	if !j.Aborted() {
		t.Fatal("job not marked aborted")
	}
}

func TestPerOpOverheadCharged(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	var elapsed simnet.Time
	j := Launch(c, 2, 0, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			start := r.Now()
			Send(r, w, 1, 1, []byte("x"))
			elapsed = r.Now() - start
		} else {
			Recv(r, w, 0, 1)
		}
	})
	j.PerOpOverhead = simnet.Millisecond
	c.Run()
	if elapsed < simnet.Millisecond {
		t.Fatalf("send took %v, want >= 1ms per-op overhead", elapsed)
	}
}

func TestStealChargedAtNextOp(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	var elapsed simnet.Time
	j := Launch(c, 2, 0, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			r.Job().Steal(r.Process().GID(), 7*simnet.Millisecond)
			start := r.Now()
			Send(r, w, 1, 1, nil)
			elapsed = r.Now() - start
		} else {
			Recv(r, w, 0, 1)
		}
	})
	_ = j
	c.Run()
	if elapsed < 7*simnet.Millisecond {
		t.Fatalf("stolen time not charged: %v", elapsed)
	}
}

func TestStatsCounted(t *testing.T) {
	j := runJob(t, 2, func(r *Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			Send(r, w, 1, 1, make([]byte, 100))
		} else {
			Recv(r, w, 0, 1)
		}
	})
	if j.Stats.Messages != 1 || j.Stats.Bytes != 100 {
		t.Fatalf("stats = %+v", j.Stats)
	}
}

func TestEncRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		got := enc.BytesToFloat64s(enc.Float64sToBytes(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(v []int64) bool {
		got := enc.BytesToInt64s(enc.Int64sToBytes(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}
