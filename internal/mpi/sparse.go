package mpi

import (
	"sort"

	"match/internal/enc"
)

// SparseExchange delivers a payload to an arbitrary, possibly empty, set
// of destination ranks and returns the payloads addressed to the caller,
// keyed by source rank. It is the irregular-neighborhood counterpart of
// Alltoallv: the in-degree of every rank is agreed through one summed
// allreduce over a counts vector (O(P) bytes, O(log P) messages), then
// only real payloads travel — the pattern distributed graph codes such as
// miniVite use for ghost and aggregate exchange.
//
// Collective: every rank of comm must call it, even with an empty send map.
func SparseExchange(r *Rank, c *Comm, send map[int][]byte) (map[int][]byte, error) {
	size := c.Size()
	counts := make([]int64, size)
	dsts := make([]int, 0, len(send))
	for d := range send {
		counts[d]++
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	inCounts, err := AllreduceI64(r, c, counts, OpSum)
	if err != nil {
		return nil, err
	}
	tag := r.nextCollTag(c) - 7 // dedicated slot within this call's block
	me := r.Rank(c)
	for _, d := range dsts {
		if err := Send(r, c, d, tag, send[d]); err != nil {
			return nil, err
		}
	}
	out := make(map[int][]byte, inCounts[me])
	for i := int64(0); i < inCounts[me]; i++ {
		m, err := Recv(r, c, AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[m.SrcRank] = m.Data
	}
	return out, nil
}

// SparseExchangeI64 is SparseExchange for int64 payloads.
func SparseExchangeI64(r *Rank, c *Comm, send map[int][]int64) (map[int][]int64, error) {
	raw := make(map[int][]byte, len(send))
	for d, v := range send {
		raw[d] = enc.Int64sToBytes(v)
	}
	got, err := SparseExchange(r, c, raw)
	if err != nil {
		return nil, err
	}
	out := make(map[int][]int64, len(got))
	for s, b := range got {
		out[s] = enc.BytesToInt64s(b)
	}
	return out, nil
}
