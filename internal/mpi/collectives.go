package mpi

import (
	"fmt"

	"match/internal/enc"
	"match/internal/obs"
	"match/internal/trace"
)

// Op is a reduction operator.
type Op int

// Reduction operators (the subset the proxy applications and the recovery
// protocols need).
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
	OpBAnd // bitwise and (int64 only) — used by the ULFM agreement
	OpBOr  // bitwise or (int64 only)
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpProd:
		return "prod"
	case OpBAnd:
		return "band"
	case OpBOr:
		return "bor"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

func reduceF64(op Op, acc, in []float64) {
	switch op {
	case OpSum:
		for i, v := range in {
			acc[i] += v
		}
	case OpMax:
		for i, v := range in {
			if v > acc[i] {
				acc[i] = v
			}
		}
	case OpMin:
		for i, v := range in {
			if v < acc[i] {
				acc[i] = v
			}
		}
	case OpProd:
		for i, v := range in {
			acc[i] *= v
		}
	default:
		panic("mpi: operator not defined for float64: " + op.String())
	}
}

func reduceI64(op Op, acc, in []int64) {
	switch op {
	case OpSum:
		for i, v := range in {
			acc[i] += v
		}
	case OpMax:
		for i, v := range in {
			if v > acc[i] {
				acc[i] = v
			}
		}
	case OpMin:
		for i, v := range in {
			if v < acc[i] {
				acc[i] = v
			}
		}
	case OpProd:
		for i, v := range in {
			acc[i] *= v
		}
	case OpBAnd:
		for i, v := range in {
			acc[i] &= v
		}
	case OpBOr:
		for i, v := range in {
			acc[i] |= v
		}
	}
}

// Combiner tables: one merge function per (operator, element type), built
// once at init. reduceTree used to take a fresh closure per collective
// call; indexing a package-level table keeps the collective hot path from
// allocating for the combiner.
var (
	f64Combiners = [...]func(acc, in []byte) []byte{
		OpSum:  f64CombinerFor(OpSum),
		OpMax:  f64CombinerFor(OpMax),
		OpMin:  f64CombinerFor(OpMin),
		OpProd: f64CombinerFor(OpProd),
	}
	i64Combiners = [...]func(acc, in []byte) []byte{
		OpSum:  i64CombinerFor(OpSum),
		OpMax:  i64CombinerFor(OpMax),
		OpMin:  i64CombinerFor(OpMin),
		OpProd: i64CombinerFor(OpProd),
		OpBAnd: i64CombinerFor(OpBAnd),
		OpBOr:  i64CombinerFor(OpBOr),
	}
	// keepAcc ignores the contribution: the degenerate combiner Barrier
	// uses (a barrier is a reduction of nothing).
	keepAcc = func(acc, _ []byte) []byte { return acc }
)

func f64CombinerFor(op Op) func(acc, in []byte) []byte {
	return func(acc, in []byte) []byte {
		a := enc.BytesToFloat64s(acc)
		reduceF64(op, a, enc.BytesToFloat64s(in))
		return enc.Float64sToBytes(a)
	}
}

func i64CombinerFor(op Op) func(acc, in []byte) []byte {
	return func(acc, in []byte) []byte {
		a := enc.BytesToInt64s(acc)
		reduceI64(op, a, enc.BytesToInt64s(in))
		return enc.Int64sToBytes(a)
	}
}

// f64Combiner returns the float64 merge function for op, panicking on
// operators not defined for float64 (same contract as reduceF64).
func f64Combiner(op Op) func(acc, in []byte) []byte {
	if int(op) < len(f64Combiners) {
		if cb := f64Combiners[op]; cb != nil {
			return cb
		}
	}
	panic("mpi: operator not defined for float64: " + op.String())
}

// i64Combiner returns the int64 merge function for op.
func i64Combiner(op Op) func(acc, in []byte) []byte {
	if int(op) < len(i64Combiners) {
		if cb := i64Combiners[op]; cb != nil {
			return cb
		}
	}
	panic("mpi: unknown operator: " + op.String())
}

// collective tag space: negative tags derived from a per-comm sequence
// number that advances identically on every rank (collectives are SPMD).
const collTagBase = -1000

const collSlots = 8

// nextCollTag reserves a tag block for one collective call on comm.
func (r *Rank) nextCollTag(c *Comm) int {
	seq := r.proc.collSeq[c.ctx]
	r.proc.collSeq[c.ctx] = seq + 1
	r.job.Stats.Collective++
	r.job.cluster.Metrics().Inc(obs.CCollectives)
	if tr := r.job.cluster.Tracer(); tr.Wants(trace.CatCollective) {
		tr.Emit(trace.Span{Cat: trace.CatCollective, Rank: int32(r.Rank(c)),
			Job: tr.JobOf(r.job), Start: int64(r.sp.Now()), Aux: int64(seq)})
	}
	return collTagBase - seq*collSlots
}

// bcastTree runs a binomial-tree broadcast of data from root; every rank
// returns the payload.
func bcastTree(r *Rank, c *Comm, root, tag int, data []byte) ([]byte, error) {
	size := c.Size()
	rank := r.Rank(c)
	rel := (rank - root + size) % size
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := (rel - mask + root) % size
			m, err := Recv(r, c, src, tag)
			if err != nil {
				return nil, err
			}
			data = m.Data
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < size {
			dst := (rel + mask + root) % size
			if err := Send(r, c, dst, tag, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// reduceTree runs a binomial-tree reduction to root. Every rank passes its
// contribution as bytes; combine merges a received contribution into the
// accumulator. Root returns the final accumulator; others return nil.
func reduceTree(r *Rank, c *Comm, root, tag int, local []byte, combine func(acc, in []byte) []byte) ([]byte, error) {
	size := c.Size()
	rank := r.Rank(c)
	rel := (rank - root + size) % size
	acc := local
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask == 0 {
			peer := rel | mask
			if peer < size {
				src := (peer + root) % size
				m, err := Recv(r, c, src, tag)
				if err != nil {
					return nil, err
				}
				acc = combine(acc, m.Data)
			}
		} else {
			dst := (rel - mask + root) % size
			if err := Send(r, c, dst, tag, acc); err != nil {
				return nil, err
			}
			return nil, nil
		}
	}
	return acc, nil
}

// Barrier blocks until every rank of comm has entered it.
func Barrier(r *Rank, c *Comm) error {
	tag := r.nextCollTag(c)
	_, err := reduceTree(r, c, 0, tag, nil, keepAcc)
	if err != nil {
		return err
	}
	_, err = bcastTree(r, c, 0, tag-1, nil)
	return err
}

// Bcast broadcasts root's payload to every rank and returns it.
func Bcast(r *Rank, c *Comm, root int, data []byte) ([]byte, error) {
	return bcastTree(r, c, root, r.nextCollTag(c), data)
}

// BcastI64 broadcasts an int64 slice from root.
func BcastI64(r *Rank, c *Comm, root int, vals []int64) ([]int64, error) {
	var payload []byte
	if r.Rank(c) == root {
		payload = enc.Int64sToBytes(vals)
	}
	out, err := Bcast(r, c, root, payload)
	if err != nil {
		return nil, err
	}
	return enc.BytesToInt64s(out), nil
}

// BcastF64 broadcasts a float64 slice from root.
func BcastF64(r *Rank, c *Comm, root int, vals []float64) ([]float64, error) {
	var payload []byte
	if r.Rank(c) == root {
		payload = enc.Float64sToBytes(vals)
	}
	out, err := Bcast(r, c, root, payload)
	if err != nil {
		return nil, err
	}
	return enc.BytesToFloat64s(out), nil
}

// ReduceF64 reduces element-wise to root; root gets the result, others nil.
func ReduceF64(r *Rank, c *Comm, root int, vals []float64, op Op) ([]float64, error) {
	tag := r.nextCollTag(c)
	local := enc.Float64sToBytes(vals)
	out, err := reduceTree(r, c, root, tag, local, f64Combiner(op))
	if err != nil || out == nil {
		return nil, err
	}
	return enc.BytesToFloat64s(out), nil
}

// AllreduceF64 reduces element-wise across ranks; every rank gets the result.
func AllreduceF64(r *Rank, c *Comm, vals []float64, op Op) ([]float64, error) {
	tag := r.nextCollTag(c)
	local := enc.Float64sToBytes(vals)
	out, err := reduceTree(r, c, 0, tag, local, f64Combiner(op))
	if err != nil {
		return nil, err
	}
	res, err := bcastTree(r, c, 0, tag-1, out)
	if err != nil {
		return nil, err
	}
	return enc.BytesToFloat64s(res), nil
}

// AllreduceI64 is AllreduceF64 for int64 payloads.
func AllreduceI64(r *Rank, c *Comm, vals []int64, op Op) ([]int64, error) {
	tag := r.nextCollTag(c)
	local := enc.Int64sToBytes(vals)
	out, err := reduceTree(r, c, 0, tag, local, i64Combiner(op))
	if err != nil {
		return nil, err
	}
	res, err := bcastTree(r, c, 0, tag-1, out)
	if err != nil {
		return nil, err
	}
	return enc.BytesToInt64s(res), nil
}

// AllreduceF64Scalar reduces a single float64.
func AllreduceF64Scalar(r *Rank, c *Comm, v float64, op Op) (float64, error) {
	out, err := AllreduceF64(r, c, []float64{v}, op)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// AllreduceI64Scalar reduces a single int64.
func AllreduceI64Scalar(r *Rank, c *Comm, v int64, op Op) (int64, error) {
	out, err := AllreduceI64(r, c, []int64{v}, op)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// Gatherv gathers variable-size payloads to root; root receives them in
// rank order (its own contribution included), others get nil.
func Gatherv(r *Rank, c *Comm, root int, data []byte) ([][]byte, error) {
	tag := r.nextCollTag(c)
	rank := r.Rank(c)
	if rank != root {
		return nil, Send(r, c, root, tag, data)
	}
	out := make([][]byte, c.Size())
	out[root] = data
	for i := 0; i < c.Size(); i++ {
		if i == root {
			continue
		}
		m, err := Recv(r, c, i, tag)
		if err != nil {
			return nil, err
		}
		out[i] = m.Data
	}
	return out, nil
}

// Allgatherv gathers every rank's payload to all ranks, in rank order.
func Allgatherv(r *Rank, c *Comm, data []byte) ([][]byte, error) {
	tag := r.nextCollTag(c)
	parts, err := Gatherv(r, c, 0, data)
	if err != nil {
		return nil, err
	}
	// Root flattens with length prefixes, broadcasts, everyone unpacks.
	var flat []byte
	if r.Rank(c) == 0 {
		for _, p := range parts {
			flat = enc.AppendBytes(flat, p)
		}
	}
	flat, err = bcastTree(r, c, 0, tag-1, flat)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, c.Size())
	rest := flat
	for i := range out {
		out[i], rest = enc.NextBytes(rest)
	}
	return out, nil
}

// AllgatherI64 gathers one int64 slice per rank (equal lengths not
// required) and returns all contributions.
func AllgatherI64(r *Rank, c *Comm, vals []int64) ([][]int64, error) {
	parts, err := Allgatherv(r, c, enc.Int64sToBytes(vals))
	if err != nil {
		return nil, err
	}
	out := make([][]int64, len(parts))
	for i, p := range parts {
		out[i] = enc.BytesToInt64s(p)
	}
	return out, nil
}

// Scatterv sends parts[i] from root to rank i; every rank returns its part.
func Scatterv(r *Rank, c *Comm, root int, parts [][]byte) ([]byte, error) {
	tag := r.nextCollTag(c)
	rank := r.Rank(c)
	if rank == root {
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			if err := Send(r, c, i, tag, parts[i]); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	m, err := Recv(r, c, root, tag)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Alltoallv exchanges send[i] with every rank i; returns recv where recv[i]
// is the payload rank i sent to us. Uses a pairwise-shift schedule (P-1
// phases), the standard algorithm for irregular all-to-all.
func Alltoallv(r *Rank, c *Comm, send [][]byte) ([][]byte, error) {
	tag := r.nextCollTag(c)
	size := c.Size()
	rank := r.Rank(c)
	recv := make([][]byte, size)
	recv[rank] = send[rank]
	for s := 1; s < size; s++ {
		dst := (rank + s) % size
		src := (rank - s + size) % size
		m, err := Sendrecv(r, c, dst, tag, send[dst], src, tag)
		if err != nil {
			return nil, err
		}
		recv[src] = m.Data
	}
	return recv, nil
}
