// Package mpi implements a simulated MPI runtime over the simnet cluster:
// jobs, communicators, point-to-point messaging with tag/source matching,
// binomial-tree collectives, process spawning, and the failure semantics
// (MPIX-style error classes, revocation, failure detection state) that the
// ULFM and Reinit recovery frameworks build on.
//
// The simulation follows MPI semantics where they matter for fault
// tolerance research: sends are eager and non-blocking (buffered by the
// runtime), receives block until a matching message arrives, message order
// is non-overtaking per (sender, receiver, communicator), and an operation
// involving a failed process raises ErrProcFailed only once the failure has
// been *detected* — before detection, the operation simply hangs, exactly
// the behavior that makes MPI fault tolerance hard.
package mpi

import (
	"errors"
	"fmt"

	"match/internal/simnet"
)

// Error classes mirroring MPI/ULFM error codes.
var (
	// ErrProcFailed corresponds to MPIX_ERR_PROC_FAILED: a process involved
	// in the operation has failed and the failure has been detected.
	ErrProcFailed = errors.New("mpi: process failed (MPIX_ERR_PROC_FAILED)")
	// ErrRevoked corresponds to MPIX_ERR_REVOKED: the communicator has been
	// revoked by MPIX_Comm_revoke.
	ErrRevoked = errors.New("mpi: communicator revoked (MPIX_ERR_REVOKED)")
	// ErrAborted is returned when the job has been aborted (MPI_Abort).
	ErrAborted = errors.New("mpi: job aborted")
	// ErrRankExited is an internal error: a message was addressed to a rank
	// that completed normally. Usually indicates a protocol bug.
	ErrRankExited = errors.New("mpi: peer rank exited")
)

// AnySource matches any sender in Recv, like MPI_ANY_SOURCE.
const AnySource = -1

// AnyTag matches any tag in Recv, like MPI_ANY_TAG.
const AnyTag = -1 << 30

// Process is one MPI process: the runtime-level entity addressable by
// communicators. A Process is distinct from simnet.Proc so that spawned
// replacements (ULFM non-shrinking recovery) and restarted ranks get fresh
// identities while the underlying node model persists.
type Process struct {
	gid    int // unique within the Job, never reused
	node   int
	job    *Job
	proc   *simnet.Proc
	failed bool

	mbox     []Message   // delivered, unmatched messages (values: no per-message allocation)
	blocked  bool        // parked inside a messaging wait
	inflight map[int]int // srcGID -> messages sent but not yet delivered

	collSeq map[int]int // comm ctx -> collective sequence number
	lastArr map[int]simnet.Time

	// Replica-layer sequencing (see replica.go): sendSeq numbers every
	// logical message this process emits per (comm, logical dst); recvSeq is
	// the next sequence number this process will accept per (comm, logical
	// src). Duplicate copies carrying an already-accepted sequence number
	// are suppressed at delivery.
	sendSeq map[int64]int64
	recvSeq map[int64]int64

	// stolen accumulates runtime-interference time (e.g. the ULFM failure
	// detector's periodic agreement) to be charged at the next MPI call.
	stolen simnet.Time
}

// GID returns the process's unique id within the job.
func (p *Process) GID() int { return p.gid }

// NodeID returns the node the process runs on.
func (p *Process) NodeID() int { return p.node }

// Failed reports whether the process has failed.
func (p *Process) Failed() bool { return p.failed }

// SimProc returns the simnet process backing this MPI process (nil until
// bound or started).
func (p *Process) SimProc() *simnet.Proc { return p.proc }

// SetSimProc binds the simnet process early (before the body runs), so
// runtime components can watch its exit.
func (p *Process) SetSimProc(sp *simnet.Proc) { p.proc = sp }

// Message is a delivered point-to-point message.
type Message struct {
	Ctx     int // communicator context id
	SrcGID  int
	SrcRank int // rank of sender in the communicator
	Tag     int
	Data    []byte
	arrival simnet.Time
	epoch   int

	// replicated marks a copy emitted by a replica-aware communicator; seq
	// is its logical sequence number within the (comm, src, dst) stream,
	// used to suppress duplicate copies at delivery.
	replicated bool
	seq        int64
}

// Stats aggregates message-layer counters for reporting.
type Stats struct {
	Messages   int64
	Bytes      int64
	Collective int64
	// Suppressed counts duplicate replica copies discarded at delivery —
	// the receiver-side half of replication's duplication/suppression
	// protocol. Suppressed copies still paid wire time.
	Suppressed int64
}

// Job is a launched MPI job: a set of processes on the cluster plus the
// communicator table and failure-detection state. Restart-based recovery
// creates a brand-new Job; Reinit bumps the Job epoch in place.
type Job struct {
	cluster *simnet.Cluster
	procs   map[int]*Process // by gid
	nextGID int
	nextCtx int
	world   *Comm
	epoch   int
	aborted bool

	detected  map[int]bool // gid -> failure detected
	detectSub []func(gid int)
	subcomms  map[string]*Comm

	// PerOpOverhead is added to every point-to-point operation; the ULFM
	// runtime sets it to model its amended (failure-checking) interfaces.
	PerOpOverhead simnet.Time

	// BytesScale multiplies message sizes for *time accounting only* (the
	// payload itself is untouched). The harness runs scaled-down problem
	// instances but charges network time as if the paper-scale problem's
	// messages were on the wire; see DESIGN.md §6.
	BytesScale float64

	// DeliveryFactor inflates every message's in-flight time by the given
	// fraction. The ULFM runtime sets it to model its interposed progress
	// engine (revoke checks, failure piggybacking) on the message path;
	// the resulting application slowdown then grows with the application's
	// communication share, i.e. with scale and input size — the trend the
	// paper reports for ULFM-FTI.
	DeliveryFactor float64

	// freeDel is the free list of in-flight delivery records: one record
	// rides the scheduler per physical copy on the wire and is recycled as
	// soon as the copy is delivered (or dropped), so the steady-state
	// message path allocates nothing per send.
	freeDel []*delivery

	Stats Stats
}

// NewJob creates an empty job on the cluster.
func NewJob(c *simnet.Cluster) *Job {
	return &Job{
		cluster:  c,
		procs:    make(map[int]*Process),
		detected: make(map[int]bool),
		subcomms: make(map[string]*Comm),
	}
}

// Cluster returns the underlying simulated cluster.
func (j *Job) Cluster() *simnet.Cluster { return j.cluster }

// Epoch returns the current job epoch (bumped by Reinit resets).
func (j *Job) Epoch() int { return j.epoch }

// Aborted reports whether MPI_Abort has been called.
func (j *Job) Aborted() bool { return j.aborted }

// AddProcess registers a new MPI process bound to a simnet process on the
// given node. Used by Launch and by ULFM spawn.
func (j *Job) AddProcess(node int, proc *simnet.Proc) *Process {
	p := &Process{
		gid:      j.nextGID,
		node:     node,
		job:      j,
		proc:     proc,
		collSeq:  make(map[int]int),
		lastArr:  make(map[int]simnet.Time),
		inflight: make(map[int]int),
		sendSeq:  make(map[int64]int64),
		recvSeq:  make(map[int64]int64),
	}
	j.nextGID++
	j.procs[p.gid] = p
	return p
}

// NewComm builds a communicator over the given processes; member order
// defines ranks.
func (j *Job) NewComm(members []*Process) *Comm {
	c := &Comm{job: j, ctx: j.nextCtx, members: append([]*Process(nil), members...)}
	j.nextCtx++
	c.rankOf = make(map[int]int, len(members))
	for i, m := range members {
		c.rankOf[m.gid] = i
	}
	return c
}

// World returns the world communicator of the job.
func (j *Job) World() *Comm { return j.world }

// SetWorld installs the world communicator (used at launch and after
// recovery rebuilds it).
func (j *Job) SetWorld(c *Comm) { j.world = c }

// MarkFailed records a process failure (fail-stop). Detection is separate:
// operations keep hanging until MarkDetected is called by a failure
// detector.
func (j *Job) MarkFailed(gid int) {
	if p, ok := j.procs[gid]; ok {
		p.failed = true
	}
}

// MarkDetected records that the failure of gid is now globally known and
// wakes every blocked process so pending operations can fail with
// ErrProcFailed. Failure-detection subscribers (error handlers) fire first.
func (j *Job) MarkDetected(gid int) {
	if j.detected[gid] {
		return
	}
	j.detected[gid] = true
	for _, f := range j.detectSub {
		f(gid)
	}
	j.wakeAllBlocked()
}

// Detected reports whether gid's failure has been detected.
func (j *Job) Detected(gid int) bool { return j.detected[gid] }

// OnDetect registers a callback invoked (in scheduler context) when a
// failure is detected. ULFM uses this to trigger error handlers.
func (j *Job) OnDetect(f func(gid int)) { j.detectSub = append(j.detectSub, f) }

// wakeAllBlocked wakes every process parked in a messaging wait so it can
// re-check revocation/failure conditions.
func (j *Job) wakeAllBlocked() {
	now := j.cluster.Now()
	for i := 0; i < j.nextGID; i++ {
		p, ok := j.procs[i]
		if !ok || p.failed || p.proc == nil {
			continue
		}
		if p.blocked {
			p.proc.Unblock(now)
		}
	}
}

// Abort kills every process in the job (MPI_Abort). Safe to call from rank
// context: the kills are delivered via a scheduler event at the current
// virtual time, once the caller has yielded. A rank calling Abort should
// not expect to survive past its next yield point.
func (j *Job) Abort() {
	if j.aborted {
		return
	}
	j.aborted = true
	j.cluster.Scheduler().After(0, func() {
		for i := 0; i < j.nextGID; i++ {
			p, ok := j.procs[i]
			if !ok || p.proc == nil {
				continue
			}
			if !p.proc.Exited() && !p.proc.Dead() {
				p.proc.Kill()
			}
		}
	})
}

// BumpEpoch invalidates all in-flight messages and clears mailboxes:
// Reinit's global reset uses this to flush communication state. Mailbox
// capacity is retained for reuse across incarnations; the flushed entries
// are zeroed so their payloads can be collected.
func (j *Job) BumpEpoch() {
	j.epoch++
	for _, p := range j.procs {
		for i := range p.mbox {
			p.mbox[i] = Message{}
		}
		p.mbox = p.mbox[:0]
	}
}

// Steal adds runtime-interference time to a process, charged at its next
// MPI call. This models background runtime activity (the ULFM detector's
// periodic agreement rounds) preempting the application.
func (j *Job) Steal(gid int, d simnet.Time) {
	if p, ok := j.procs[gid]; ok {
		p.stolen += d
	}
}

// SubComm returns the communicator memoized under key, creating it over
// members on first use. Because ranks execute one at a time, every member
// calling SubComm with the same key and member list shares one Comm
// instance with a single matching context, which is how SPMD code splits
// communicators without a central coordinator.
func (j *Job) SubComm(key string, members []*Process) *Comm {
	if c, ok := j.subcomms[key]; ok {
		return c
	}
	c := j.NewComm(members)
	j.subcomms[key] = c
	return c
}

// DropSubComms clears memoized sub-communicators (stale after recovery
// rebuilds the world).
func (j *Job) DropSubComms() { j.subcomms = make(map[string]*Comm) }

// Comm is a communicator: an ordered process group plus a matching context.
type Comm struct {
	job     *Job
	ctx     int
	members []*Process
	rankOf  map[int]int
	revoked bool
	repl    *replicaInfo // non-nil for replica-aware communicators
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.members) }

// Ctx returns the matching context id (unique per communicator).
func (c *Comm) Ctx() int { return c.ctx }

// Member returns the process at the given rank.
func (c *Comm) Member(rank int) *Process { return c.members[rank] }

// Members returns the process group (do not mutate).
func (c *Comm) Members() []*Process { return c.members }

// RankOf returns the rank of process gid, or -1 if not a member.
func (c *Comm) RankOf(gid int) int {
	if r, ok := c.rankOf[gid]; ok {
		return r
	}
	return -1
}

// Revoked reports whether the communicator has been revoked.
func (c *Comm) Revoked() bool { return c.revoked }

// Revoke marks the communicator revoked and interrupts all pending
// communication on it (the semantics of MPIX_Comm_revoke; the propagation
// cost is charged by the ulfm package, which owns the protocol).
func (c *Comm) Revoke() {
	if c.revoked {
		return
	}
	c.revoked = true
	c.job.wakeAllBlocked()
}

// FailedMembers returns the ranks of members whose processes have failed.
func (c *Comm) FailedMembers() []int {
	var out []int
	for i, m := range c.members {
		if m.failed {
			out = append(out, i)
		}
	}
	return out
}

// AliveMembers returns the processes that have not failed, in rank order.
func (c *Comm) AliveMembers() []*Process {
	var out []*Process
	for _, m := range c.members {
		if !m.failed {
			out = append(out, m)
		}
	}
	return out
}

// Rank is the handle rank code uses for all MPI operations. It binds a
// Process to its simnet execution context.
type Rank struct {
	job  *Job
	proc *Process
	sp   *simnet.Proc
}

// Bind creates a Rank handle for process p executing on sp.
func Bind(j *Job, p *Process, sp *simnet.Proc) *Rank {
	p.proc = sp
	return &Rank{job: j, proc: p, sp: sp}
}

// Job returns the owning job.
func (r *Rank) Job() *Job { return r.job }

// Process returns the underlying MPI process.
func (r *Rank) Process() *Process { return r.proc }

// Sim returns the simnet process (for Compute, Now, etc.).
func (r *Rank) Sim() *simnet.Proc { return r.sp }

// Now returns the current virtual time.
func (r *Rank) Now() simnet.Time { return r.sp.Now() }

// Compute charges d of virtual CPU time.
func (r *Rank) Compute(d simnet.Time) { r.sp.Compute(d) }

// Rank returns this process's rank in comm (-1 if not a member).
func (r *Rank) Rank(c *Comm) int { return c.RankOf(r.proc.gid) }

// Size returns comm's size.
func (r *Rank) Size(c *Comm) int { return c.Size() }

// Die makes the calling rank fail-stop immediately (fault injection).
func (r *Rank) Die() {
	r.proc.failed = true
	r.sp.Die()
}

// chargeOverheads applies the per-op overhead plus any stolen runtime time.
func (r *Rank) chargeOverheads() {
	d := r.job.PerOpOverhead + r.proc.stolen
	r.proc.stolen = 0
	if d > 0 {
		r.sp.Compute(d)
	}
}

// opError checks for conditions that must fail an operation on comm.
func (r *Rank) opError(c *Comm) error {
	if r.job.aborted {
		return ErrAborted
	}
	if c.revoked {
		return ErrRevoked
	}
	return nil
}

// String implements fmt.Stringer for diagnostics.
func (r *Rank) String() string {
	return fmt.Sprintf("rank(gid=%d,node=%d)", r.proc.gid, r.proc.node)
}

// Launch starts an n-process MPI job on the cluster with block placement
// over the cluster's nodes (ranks are distributed round-robin in contiguous
// blocks, matching typical mpirun --map-by node:block behavior). The main
// function runs once per rank. Launch returns the Job; the caller then runs
// the cluster's scheduler.
func Launch(c *simnet.Cluster, n int, startDelay simnet.Time, main func(*Rank)) *Job {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i * c.NumNodes() / n // block placement
	}
	return LaunchPlaced(c, nodes, startDelay, main)
}

// LaunchPlaced is Launch with an explicit rank-to-node placement.
func LaunchPlaced(c *simnet.Cluster, nodes []int, startDelay simnet.Time, main func(*Rank)) *Job {
	j := NewJob(c)
	n := len(nodes)
	members := make([]*Process, n)
	for i := 0; i < n; i++ {
		members[i] = j.AddProcess(nodes[i], nil)
	}
	j.SetWorld(j.NewComm(members))
	for i := 0; i < n; i++ {
		p := members[i]
		sp := c.StartProc(p.node, startDelay, func(sp *simnet.Proc) {
			main(Bind(j, p, sp))
		})
		p.proc = sp
		sp.OnExit(func(s *simnet.Proc) {
			if s.Status() == simnet.ExitKilled {
				p.failed = true
			}
		})
	}
	return j
}

// PlacementNode returns the node a given rank of an n-rank job lands on.
func PlacementNode(c *simnet.Cluster, rank, n int) int {
	return rank * c.NumNodes() / n
}
