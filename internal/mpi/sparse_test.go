package mpi

import (
	"math/rand"
	"testing"

	"match/internal/simnet"
)

func TestSparseExchangeBasic(t *testing.T) {
	n := 6
	got := make([]map[int][]int64, n)
	runJob(t, n, func(r *Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		// Each rank sends its id to (me+1)%n and (me+2)%n.
		send := map[int][]int64{
			(me + 1) % n: {int64(me * 10)},
			(me + 2) % n: {int64(me*10 + 1)},
		}
		out, err := SparseExchangeI64(r, w, send)
		if err != nil {
			t.Errorf("exchange: %v", err)
			return
		}
		got[me] = out
	})
	for me := 0; me < n; me++ {
		from1 := (me - 1 + n) % n
		from2 := (me - 2 + n) % n
		if len(got[me]) != 2 {
			t.Fatalf("rank %d received from %d peers, want 2", me, len(got[me]))
		}
		if got[me][from1][0] != int64(from1*10) {
			t.Fatalf("rank %d from %d: %v", me, from1, got[me][from1])
		}
		if got[me][from2][0] != int64(from2*10+1) {
			t.Fatalf("rank %d from %d: %v", me, from2, got[me][from2])
		}
	}
}

func TestSparseExchangeEmptySenders(t *testing.T) {
	n := 4
	received := make([]int, n)
	runJob(t, n, func(r *Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		var send map[int][]byte
		if me == 0 {
			send = map[int][]byte{3: []byte("only")}
		}
		out, err := SparseExchange(r, w, send)
		if err != nil {
			t.Errorf("exchange: %v", err)
			return
		}
		received[me] = len(out)
	})
	for me, n := range received {
		want := 0
		if me == 3 {
			want = 1
		}
		if n != want {
			t.Fatalf("rank %d received %d payloads, want %d", me, n, want)
		}
	}
}

// Property: for a random sparse pattern, everything sent is received
// exactly once with correct attribution.
func TestSparseExchangeRandomPatterns(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		plan := make([]map[int][]int64, n)
		for me := 0; me < n; me++ {
			plan[me] = map[int][]int64{}
			for d := 0; d < n; d++ {
				if rng.Intn(3) == 0 {
					plan[me][d] = []int64{int64(me*1000 + d)}
				}
			}
		}
		got := make([]map[int][]int64, n)
		c := simnet.NewCluster(simnet.Config{Nodes: 2})
		mpi := Launch(c, n, 0, func(r *Rank) {
			w := r.Job().World()
			me := r.Rank(w)
			out, err := SparseExchangeI64(r, w, plan[me])
			if err != nil {
				t.Errorf("seed %d rank %d: %v", seed, me, err)
				return
			}
			got[me] = out
		})
		_ = mpi
		c.Run()
		for src := 0; src < n; src++ {
			for dst, payload := range plan[src] {
				if len(got[dst][src]) != 1 || got[dst][src][0] != payload[0] {
					t.Fatalf("seed %d: %d->%d payload %v arrived as %v",
						seed, src, dst, payload, got[dst][src])
				}
			}
		}
	}
}
