package mpi

import (
	"testing"

	"match/internal/simnet"
)

// benchPingPong runs rounds of a two-rank ping-pong and returns the
// cluster's final virtual time. Each round is two sends and two receives —
// the minimal closed loop through the full message path (overheads, NIC
// charging, delivery event, mailbox match, block/unblock).
func benchPingPong(rounds int, payload []byte) simnet.Time {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	Launch(c, 2, 0, func(r *Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		for k := 0; k < rounds; k++ {
			if me == 0 {
				if err := Send(r, w, 1, 1, payload); err != nil {
					panic(err)
				}
				if _, err := Recv(r, w, 1, 2); err != nil {
					panic(err)
				}
			} else {
				if _, err := Recv(r, w, 0, 1); err != nil {
					panic(err)
				}
				if err := Send(r, w, 0, 2, payload); err != nil {
					panic(err)
				}
			}
		}
	})
	return c.Run()
}

// BenchmarkMessagePath measures the host cost of the point-to-point hot
// path: 1000 ping-pong rounds (2000 messages) per op, so per-message cost
// is allocs/op divided by 2000. Run with -benchmem; the steady-state
// message path must not allocate (launch and mailbox growth amortize).
func BenchmarkMessagePath(b *testing.B) {
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPingPong(1000, payload)
	}
}

// BenchmarkAllreducePath measures the collective path: 64 ranks on 8
// nodes, ten scalar allreduces each, exercising the binomial reduce and
// broadcast trees over the message layer.
func BenchmarkAllreducePath(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := simnet.NewCluster(simnet.Config{Nodes: 8})
		Launch(c, 64, 0, func(r *Rank) {
			w := r.Job().World()
			for k := 0; k < 10; k++ {
				if _, err := AllreduceF64Scalar(r, w, 1.0, OpSum); err != nil {
					panic(err)
				}
			}
		})
		c.Run()
	}
}
