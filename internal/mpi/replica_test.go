package mpi

import (
	"testing"

	"match/internal/simnet"
)

// launchReplicated starts n logical ranks, each backed by degree replicas
// (primary on node rank%nodes, twins offset by half the cluster), running
// body with (rank handle, replica world, logical rank, replica index).
func launchReplicated(c *simnet.Cluster, n, degree int, body func(*Rank, *Comm, int, int)) *Job {
	j := NewJob(c)
	groups := make([][]*Process, n)
	for i := 0; i < n; i++ {
		groups[i] = []*Process{j.AddProcess(i%c.NumNodes(), nil)}
	}
	for k := 1; k < degree; k++ {
		for i := 0; i < n; i++ {
			groups[i] = append(groups[i], j.AddProcess((i+c.NumNodes()/2)%c.NumNodes(), nil))
		}
	}
	world := j.NewReplicaComm(groups)
	j.SetWorld(world)
	for i := 0; i < n; i++ {
		for k, p := range groups[i] {
			i, k, p := i, k, p
			sp := c.StartProc(p.NodeID(), 0, func(sp *simnet.Proc) {
				body(Bind(j, p, sp), world, i, k)
			})
			p.SetSimProc(sp)
			sp.OnExit(func(sp *simnet.Proc) {
				if sp.Status() == simnet.ExitKilled {
					p.failed = true
				}
			})
		}
	}
	return j
}

// Duplication and suppression: every replica of the sender transmits one
// copy per destination replica, and each receiver accepts exactly one copy
// of every logical message.
func TestReplicaSendDuplicatesAndSuppresses(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	got := make(map[int][]string) // receiving gid -> payloads in order
	j := launchReplicated(c, 2, 2, func(r *Rank, w *Comm, rank, idx int) {
		if rank == 0 {
			for _, pay := range []string{"a", "b"} {
				if err := Send(r, w, 1, 7, []byte(pay)); err != nil {
					t.Errorf("send: %v", err)
				}
			}
			return
		}
		for i := 0; i < 2; i++ {
			m, err := Recv(r, w, 0, 7)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			if m.SrcRank != 0 {
				t.Errorf("SrcRank = %d, want logical 0", m.SrcRank)
			}
			got[r.Process().GID()] = append(got[r.Process().GID()], string(m.Data))
		}
	})
	c.Run()
	// 2 sender replicas x 2 receiver replicas x 2 messages = 8 copies.
	if j.Stats.Messages != 8 {
		t.Errorf("physical messages = %d, want 8", j.Stats.Messages)
	}
	// Each receiver suppressed one duplicate per logical message.
	if j.Stats.Suppressed != 4 {
		t.Errorf("suppressed = %d, want 4", j.Stats.Suppressed)
	}
	for gid, msgs := range got {
		if len(msgs) != 2 || msgs[0] != "a" || msgs[1] != "b" {
			t.Errorf("gid %d received %v, want [a b]", gid, msgs)
		}
	}
	if len(got) != 2 {
		t.Errorf("receivers = %d, want both replicas of rank 1", len(got))
	}
}

// A collective over a replica communicator must complete on every replica
// with the logical-world result, including after one replica dies mid-run.
func TestReplicaCollectiveSurvivesReplicaDeath(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	const n = 4
	results := make(map[int]float64)
	launchReplicated(c, n, 2, func(r *Rank, w *Comm, rank, idx int) {
		for round := 0; round < 3; round++ {
			if round == 1 && rank == 2 && idx == 0 {
				r.Die() // kill one replica between collectives
			}
			sum, err := AllreduceF64Scalar(r, w, float64(rank+1), OpSum)
			if err != nil {
				t.Errorf("rank %d replica %d round %d: %v", rank, idx, round, err)
				return
			}
			if sum != 10 { // 1+2+3+4
				t.Errorf("rank %d replica %d round %d: sum = %v, want 10", rank, idx, round, sum)
			}
		}
		results[r.Process().GID()] = float64(rank)
	})
	c.Run()
	if len(results) != 2*n-1 {
		t.Fatalf("finishers = %d, want %d (all but the killed replica)", len(results), 2*n-1)
	}
}

// Partial replication: unreplicated ranks (group size 1) interoperate with
// replicated ones on the same communicator.
func TestReplicaPartialGroups(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	j := NewJob(c)
	groups := [][]*Process{
		{j.AddProcess(0, nil), j.AddProcess(2, nil)}, // rank 0 replicated
		{j.AddProcess(1, nil)},                       // rank 1 not
	}
	world := j.NewReplicaComm(groups)
	j.SetWorld(world)
	sums := make(map[int]float64)
	for i, g := range groups {
		for _, p := range g {
			i, p := i, p
			sp := c.StartProc(p.NodeID(), 0, func(sp *simnet.Proc) {
				r := Bind(j, p, sp)
				sum, err := AllreduceF64Scalar(r, world, float64(i+1), OpSum)
				if err != nil {
					t.Errorf("rank %d: %v", i, err)
					return
				}
				sums[p.GID()] = sum
			})
			p.SetSimProc(sp)
		}
	}
	c.Run()
	if len(sums) != 3 {
		t.Fatalf("finishers = %d, want 3", len(sums))
	}
	for gid, s := range sums {
		if s != 3 {
			t.Errorf("gid %d: sum = %v, want 3", gid, s)
		}
	}
	if world.ReplicaDegree(0) != 2 || world.ReplicaDegree(1) != 1 {
		t.Errorf("degrees = %d,%d want 2,1", world.ReplicaDegree(0), world.ReplicaDegree(1))
	}
}

// PruneReplica must stop the duplication onto a removed member, and
// PromoteLeader must repoint Member() at a survivor.
func TestReplicaPruneAndPromote(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	j := NewJob(c)
	groups := [][]*Process{
		{j.AddProcess(0, nil)},
		{j.AddProcess(1, nil), j.AddProcess(3, nil)},
	}
	world := j.NewReplicaComm(groups)
	j.SetWorld(world)
	primary := groups[1][0]
	shadow := groups[1][1]
	if world.Member(1) != primary {
		t.Fatal("initial leader is not the primary")
	}
	j.MarkFailed(primary.GID())
	world.PruneReplica(primary.GID())
	world.PromoteLeader(1)
	if world.Member(1) != shadow {
		t.Fatal("leader not promoted to the shadow")
	}
	if d := world.ReplicaDegree(1); d != 1 {
		t.Fatalf("degree after prune = %d, want 1", d)
	}
	if world.ReplicaIndexOf(shadow.GID()) != 1 {
		t.Fatal("replica identity must be stable across promotion")
	}
}
