package core

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"match/internal/store"
)

// tinyCampaign is a fast-but-real campaign: one app at a small scale, a
// failure-free and a single-failure cell per design (8 cells).
func tinyCampaign() CampaignRequest {
	return CampaignRequest{Apps: []string{"HPCCG"}, Procs: 8, MaxFaults: 1, Seed: 7}
}

// A warm rerun of an identical campaign must simulate nothing and still be
// byte-identical on every deterministic output stream.
func TestCampaignColdWarmByteIdentical(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	req := tinyCampaign()
	rn := CampaignRunner{Workers: 4, Store: st}

	var cold bytes.Buffer
	coldRes, err := rn.Run(req, &cold)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(req.Configs())
	cs := st.Stats()
	if cs.Misses != int64(cells) || cs.Puts != int64(cells) || cs.Hits != 0 {
		t.Fatalf("cold stats = %+v, want %d misses/puts", cs, cells)
	}

	var warm bytes.Buffer
	warmRes, err := rn.Run(req, &warm)
	if err != nil {
		t.Fatal(err)
	}
	ws := st.Stats()
	if ws.Misses != cs.Misses || ws.Puts != cs.Puts {
		t.Fatalf("warm run simulated cells: %+v", ws)
	}
	if ws.Hits != int64(cells) {
		t.Fatalf("warm run hit %d of %d cells", ws.Hits, cells)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Fatalf("warm table diverged:\n--- cold ---\n%s\n--- warm ---\n%s", &cold, &warm)
	}
	if !reflect.DeepEqual(coldRes, warmRes) {
		t.Fatal("warm results diverged from cold results")
	}
	var coldCSV, warmCSV bytes.Buffer
	WriteCSV(&coldCSV, coldRes)
	WriteCSV(&warmCSV, warmRes)
	if !bytes.Equal(coldCSV.Bytes(), warmCSV.Bytes()) {
		t.Fatal("warm CSV diverged from cold CSV")
	}
}

// An LRU front far smaller than the campaign still serves a fully warm
// rerun: evicted entries come back as disk hits.
func TestCampaignWarmUnderTinyLRU(t *testing.T) {
	st, err := store.Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	req := tinyCampaign()
	rn := CampaignRunner{Workers: 2, Store: st}
	var cold bytes.Buffer
	if _, err := rn.Run(req, &cold); err != nil {
		t.Fatal(err)
	}
	cs := st.Stats()
	if cs.Evictions == 0 {
		t.Fatalf("campaign of %d cells never overflowed a 2-entry LRU: %+v", len(req.Configs()), cs)
	}
	var warm bytes.Buffer
	if _, err := rn.Run(req, &warm); err != nil {
		t.Fatal(err)
	}
	ws := st.Stats()
	if ws.Misses != cs.Misses {
		t.Fatalf("warm run missed despite disk backing: %+v", ws)
	}
	if ws.DiskHits == 0 {
		t.Fatalf("no disk hits under a tiny LRU: %+v", ws)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Fatal("warm table diverged under a tiny LRU")
	}
}

// A cacheVersion bump must orphan every prior entry: the rerun misses and
// re-simulates everything.
func TestCampaignVersionStampInvalidates(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	req := CampaignRequest{Apps: []string{"HPCCG"}, Designs: []Design{RestartFTI},
		Procs: 8, MaxFaults: 0, Seed: 7}
	rn := CampaignRunner{Store: st}
	if _, err := rn.Run(req, nil); err != nil {
		t.Fatal(err)
	}
	before := st.Stats()
	old := cacheVersion
	defer func() { cacheVersion = old }()
	cacheVersion++
	if _, err := rn.Run(req, nil); err != nil {
		t.Fatal(err)
	}
	after := st.Stats()
	if after.Hits != before.Hits {
		t.Fatalf("stale entry served across a version bump: %+v -> %+v", before, after)
	}
	if after.Misses <= before.Misses || after.Puts <= before.Puts {
		t.Fatalf("version bump did not force a re-run: %+v -> %+v", before, after)
	}
}

// Concurrent campaigns may share one store (matchserve's worker pool
// does); results must be identical and race-free.
func TestConcurrentCampaignsSharedStore(t *testing.T) {
	st, err := store.Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	req := CampaignRequest{Apps: []string{"HPCCG"}, Procs: 8, MaxFaults: 1, Seed: 7,
		Designs: []Design{RestartFTI, UlfmFTI}}
	const n = 3
	outs := make([][]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rn := CampaignRunner{Workers: 2, Store: st}
			outs[g], errs[g] = rn.Run(req, nil)
		}(g)
	}
	wg.Wait()
	for g := 0; g < n; g++ {
		if errs[g] != nil {
			t.Fatalf("campaign %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(outs[g], outs[0]) {
			t.Fatalf("campaign %d diverged from campaign 0", g)
		}
	}
	cells := int64(len(req.Configs()))
	cs := st.Stats()
	// Concurrency can race the same cell to a duplicate simulation, but
	// never past one simulation per cell per campaign, and the combined
	// lookups must balance.
	if cs.Hits+cs.Misses != cells*n {
		t.Fatalf("lookup count %d, want %d: %+v", cs.Hits+cs.Misses, cells*n, cs)
	}
	if cs.Misses < cells || cs.Misses > cells*n {
		t.Fatalf("implausible miss count: %+v", cs)
	}
}

// A corrupt cache entry is a miss, not an error: the cell re-runs and the
// entry is repaired.
func TestCorruptCacheEntryFallsBackToRun(t *testing.T) {
	st := store.NewMemory(0)
	cfg := Config{App: "HPCCG", Procs: 8, Design: RestartFTI}
	key, err := CellKey(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(key, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	results, err := runConfigs([]Config{cfg}, 1, runEnv{workers: 1, store: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Breakdown.Completed {
		t.Fatalf("corrupt entry did not fall back to a run: %+v", results)
	}
	// The rerun repaired the entry: a fresh lookup decodes.
	raw, ok := st.Get(key)
	if !ok {
		t.Fatal("repaired entry missing")
	}
	if _, err := decodeCachedCell(raw); err != nil {
		t.Fatalf("repaired entry undecodable: %v", err)
	}
	if got, want := results[0].Breakdown, mustDecode(t, raw); got != want {
		t.Fatalf("stored breakdown diverges:\n%+v\n%+v", got, want)
	}
}

func mustDecode(t *testing.T, raw []byte) Breakdown {
	t.Helper()
	bd, err := decodeCachedCell(raw)
	if err != nil {
		t.Fatal(err)
	}
	return bd
}

// The cached value must reproduce the Breakdown exactly — every field,
// including the float fingerprint — or warm runs would not be
// byte-identical.
func TestCachedBreakdownRoundTrip(t *testing.T) {
	params := tinyParams("HPCCG")
	params.CkptStride = 3
	bd, err := Run(Config{App: "HPCCG", Design: UlfmFTI, Procs: 8, Nodes: 4,
		Params: params, InjectFault: true, FaultSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := encodeCachedCell(bd)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeCachedCell(enc)
	if err != nil {
		t.Fatal(err)
	}
	if bd != back {
		t.Fatalf("breakdown did not round-trip:\n%+v\n%+v", bd, back)
	}
}
