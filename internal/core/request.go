package core

// Campaign-as-a-service: CampaignRequest is the canonical, serializable
// description of a campaign — pure data, no callbacks, no I/O — and
// CampaignRunner is the execution environment that runs one. The split is
// what lets a campaign travel: the same request JSON drives the in-process
// runner (cmd/matchsuite), the HTTP service (cmd/matchserve), and the
// content-addressed result cache (internal/store), whose keys are the
// SHA-256 of the canonical encoding defined here.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"match/internal/apps"
	"match/internal/apps/appkit"
	"match/internal/ckpt"
	"match/internal/detect"
	"match/internal/fault"
	"match/internal/fti"
	"match/internal/obs"
	"match/internal/reinit"
	"match/internal/replica"
	"match/internal/restart"
	"match/internal/store"
	"match/internal/ulfm"
)

// cacheVersion stamps every canonical encoding (campaign requests, cell
// keys, and cached cell values). Bump it whenever a simulator change makes
// previously cached Breakdowns stale — calibration constants, scheduling
// order, new cost components — so every old cache entry misses cleanly
// instead of serving results the current simulator would not produce.
var cacheVersion = 1

// CampaignRequest is the canonical campaign description: the sweep axes of
// CampaignOptions as pure data. Its canonical JSON encoding (defaults
// filled, version-stamped) is the campaign's identity — two requests that
// run the same cells hash identically even when one spells the defaults
// out and the other leaves them zero.
type CampaignRequest struct {
	// Apps lists the proxy applications (default: all of Table I).
	Apps []string `json:"apps,omitempty"`
	// Designs lists the fault-tolerance designs (default: all four).
	Designs []Design  `json:"designs,omitempty"`
	Procs   int       `json:"procs,omitempty"` // default: DefaultProcs
	Input   InputSize `json:"input,omitempty"`
	// MaxFaults is K: the sweep covers k = 0..K failures per run. Zero is
	// meaningful — a failure-free baseline-only sweep; negative selects the
	// default of 3. Deliberately not omitempty: an explicit zero must
	// survive the wire.
	MaxFaults int   `json:"max_faults"`
	Reps      int   `json:"reps,omitempty"` // repetitions per cell (default 1)
	Seed      int64 `json:"seed,omitempty"` // fault seed (default 1)
	// Detectors multiplies the matrix by the detection axis; empty keeps
	// the per-design calibrated presets.
	Detectors []detect.Config `json:"detectors,omitempty"`
	// Policies multiplies the matrix by the checkpoint-placement axis;
	// empty keeps fixed-stride placement.
	Policies []ckpt.Config `json:"ckpt_policies,omitempty"`
	// ReplicaFactors adds the replication axis and restricts Designs to
	// the replica design (the factor means nothing elsewhere).
	ReplicaFactors []float64 `json:"replica_factors,omitempty"`
	// HotSpares sweeps the replica design's respawn switch.
	HotSpares []bool `json:"hot_spares,omitempty"`
	// ModelIngress switches receiver-NIC serialization on for every run.
	ModelIngress bool `json:"model_ingress,omitempty"`
}

// Canonical returns the request with every default filled — the exact
// sweep a run of this request performs, and the form whose encoding is
// hashed. Mirrors CampaignOptions' historical fill rules.
func (r CampaignRequest) Canonical() CampaignRequest {
	if len(r.Apps) == 0 {
		r.Apps = TableIApps()
	}
	if len(r.Designs) == 0 {
		r.Designs = Designs()
	}
	if r.Procs == 0 {
		r.Procs = DefaultProcs
	}
	if r.MaxFaults < 0 {
		r.MaxFaults = 3
	}
	if r.Reps <= 0 {
		r.Reps = 1
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if len(r.Detectors) == 0 {
		r.Detectors = []detect.Config{{}} // per-design preset
	}
	if len(r.Policies) == 0 {
		r.Policies = []ckpt.Config{{}} // fixed-stride placement
	}
	if len(r.ReplicaFactors) > 0 {
		r.Designs = []Design{ReplicaFTI}
	}
	r.HotSpares = dedupeBools(r.HotSpares)
	if len(r.HotSpares) == 0 {
		r.HotSpares = []bool{false}
	}
	return r
}

// versioned wraps a canonical encoding with the cache version, so a
// simulator change invalidates every previously issued identity.
type versioned struct {
	V   int         `json:"v"`
	Req interface{} `json:"req"`
}

// CanonicalJSON is the request's canonical encoding: defaults filled,
// fields in declaration order (encoding/json is deterministic for
// structs), version-stamped.
func (r CampaignRequest) CanonicalJSON() ([]byte, error) {
	return json.Marshal(versioned{V: cacheVersion, Req: r.Canonical()})
}

// Hash is the hex SHA-256 of CanonicalJSON — the campaign's identity
// (matchserve uses it as the campaign ID, so resubmitting an equivalent
// request is idempotent).
func (r CampaignRequest) Hash() (string, error) {
	b, err := r.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Validate rejects requests that could never run: unknown applications,
// out-of-range axes, and detector/policy configurations every cell would
// fail on. The HTTP service turns the error into a 400 before queueing.
func (r CampaignRequest) Validate() error {
	c := r.Canonical()
	if c.Procs < 1 {
		return fmt.Errorf("core: campaign procs %d out of range", c.Procs)
	}
	if c.Input < Small || c.Input > Large {
		return fmt.Errorf("core: bad input size %v", c.Input)
	}
	for _, app := range c.Apps {
		if _, err := apps.Lookup(app); err != nil {
			return err
		}
	}
	for _, f := range c.ReplicaFactors {
		if f < 0 || f > 1 {
			return fmt.Errorf("core: replica factor %g outside [0,1]", f)
		}
	}
	for _, pc := range c.Policies {
		if _, err := ResolvedCkptPolicy(Config{CkptPolicy: pc}); err != nil {
			return err
		}
	}
	// A detector must be valid against every design's preset it will run
	// under (the resolve differs per design).
	for _, d := range c.Designs {
		for _, dc := range c.Detectors {
			if _, err := ResolvedDetector(Config{Design: d, Detector: dc}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Configs enumerates the campaign run matrix: app x detector x policy x
// factor x k x design (x hot-spare for the replica design), k =
// 0..MaxFaults. A k=1 cell is configured exactly like the paper's
// single-failure runs (same seed, same draw), so campaign output embeds
// the calibrated Figure 6/9 numbers verbatim.
func (r CampaignRequest) Configs() []Config {
	r = r.Canonical()
	factors := r.ReplicaFactors
	if len(factors) == 0 {
		factors = []float64{-1} // sentinel: leave Config.Replica alone
	}
	var out []Config
	for _, app := range r.Apps {
		for _, dc := range r.Detectors {
			for _, pc := range r.Policies {
				for _, rf := range factors {
					for k := 0; k <= r.MaxFaults; k++ {
						for _, d := range r.Designs {
							// Respawn is a replica-only axis: the other
							// designs run each cell exactly once, whatever
							// the swept variant list contains.
							variants := []bool{false}
							if d == ReplicaFTI {
								variants = r.HotSpares
							}
							for _, hs := range variants {
								cfg := Config{
									App:          app,
									Design:       d,
									Procs:        r.Procs,
									Input:        r.Input,
									InjectFault:  k > 0,
									Faults:       k,
									FaultSeed:    r.Seed,
									Detector:     dc,
									CkptPolicy:   pc,
									HotSpare:     hs,
									ModelIngress: r.ModelIngress,
								}
								if rf >= 0 {
									cfg.Replica = replicaConfigFor(rf)
								}
								out = append(out, cfg)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// CampaignRunner is the execution environment a CampaignRequest runs in —
// everything CampaignOptions carried that is not campaign identity. The
// zero value runs in-process on GOMAXPROCS workers with no observers and
// no cache.
type CampaignRunner struct {
	// Workers bounds the sweep worker pool; 0 means GOMAXPROCS.
	Workers int
	// Progress observes every completed cell (side channel only; campaign
	// stdout and CSV are diffed by the determinism gate).
	Progress Progress
	// Meter aggregates per-cell metric registries into the live sweep
	// meter behind /metrics and /status.
	Meter *obs.SweepMeter
	// Log receives cell lifecycle and in-run structured events.
	Log *obs.Log
	// Store, when non-nil, memoizes cells: before simulating a cell the
	// runner looks its CellKey up and reuses the stored Breakdown on a
	// hit; every simulated cell is stored back. Overlapping sweeps sharing
	// a store skip already-simulated cells; a warm rerun of an identical
	// campaign simulates nothing and is byte-identical to the cold run.
	Store *store.Store
}

// Run executes the request's matrix on the runner's worker pool, writes
// the per-app campaign tables to w (unless w is nil), and returns the raw
// results, ordered like Configs regardless of worker count or cache hits.
func (rn CampaignRunner) Run(req CampaignRequest, w io.Writer) ([]Result, error) {
	req = req.Canonical()
	results, err := runConfigs(req.Configs(), req.Reps, runEnv{
		workers:  rn.Workers,
		progress: rn.Progress,
		meter:    rn.Meter,
		log:      rn.Log,
		store:    rn.Store,
	})
	if err != nil {
		return results, err
	}
	if w != nil {
		WriteCampaign(w, results)
	}
	return results, nil
}

// dedupeBools keeps the first occurrence of each variant, in order, so a
// repeated axis entry cannot duplicate campaign cells.
func dedupeBools(vs []bool) []bool {
	var out []bool
	seen := map[bool]bool{}
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// canonicalCell is the hashed identity of one campaign cell: a Config with
// every default filled and every run-irrelevant field dropped, plus the
// repetition count (reps change the averaged Breakdown) and the cache
// version. Only the active design's resolved sub-configuration is
// included, so an ablation knob on a design that is not running cannot
// split the cache.
type canonicalCell struct {
	V          int             `json:"v"`
	Reps       int             `json:"reps"`
	App        string          `json:"app"`
	Design     Design          `json:"design"`
	Procs      int             `json:"procs"`
	Nodes      int             `json:"nodes"`
	Input      InputSize       `json:"input"`
	Faults     int             `json:"faults"`
	Seed       int64           `json:"seed,omitempty"`
	Kind       fault.Kind      `json:"fault_kind,omitempty"`
	Schedule   string          `json:"schedule,omitempty"`
	FTILevel   fti.Level       `json:"fti_level"`
	CkptStride int             `json:"ckpt_stride"`
	Detector   detect.Config   `json:"detector"`
	Policy     ckpt.Config     `json:"ckpt_policy"`
	Ingress    bool            `json:"model_ingress,omitempty"`
	Ulfm       *ulfm.Config    `json:"ulfm,omitempty"`
	Reinit     *reinit.Config  `json:"reinit,omitempty"`
	Restart    *restart.Config `json:"restart,omitempty"`
	Replica    *replica.Config `json:"replica,omitempty"`
	Params     appkit.Params   `json:"params"`
}

// canonicalCellOf normalizes one cell exactly the way Run resolves it:
// prelude defaults filled, detector resolved against the active design's
// preset, placement policy resolved and validated, the active design's
// sub-configuration resolved (with the harness-level HotSpare switch
// folded in for the replica design), and ignored inputs zeroed (the fault
// seed of a failure-free cell, the seed and kind under an explicit
// schedule, inactive designs' sub-configurations).
func canonicalCellOf(cfg Config, reps int) (canonicalCell, error) {
	if reps <= 0 {
		reps = 1
	}
	cc := canonicalCell{
		V:          cacheVersion,
		Reps:       reps,
		App:        cfg.App,
		Design:     cfg.Design,
		Procs:      cfg.Procs,
		Nodes:      cfg.Nodes,
		Input:      cfg.Input,
		Faults:     cfg.FaultCount(),
		Seed:       cfg.FaultSeed,
		Kind:       cfg.FaultKind,
		FTILevel:   cfg.FTILevel,
		CkptStride: cfg.CkptStride,
		Ingress:    cfg.ModelIngress,
	}
	// The prelude defaults Run fills before anything else.
	if cc.Nodes == 0 {
		cc.Nodes = 32
	}
	if cc.Procs == 0 {
		cc.Procs = 64
	}
	if cc.FTILevel == 0 {
		cc.FTILevel = fti.L1
	}
	if cc.CkptStride == 0 {
		cc.CkptStride = 10
	}
	// An explicit schedule overrides the random draw entirely; a
	// failure-free cell never draws. Either way the seed and kind are
	// ignored, so they must not split the cache.
	if cfg.Schedule != nil {
		cc.Schedule = cfg.Schedule.String()
		cc.Seed, cc.Kind = 0, 0
	} else if cc.Faults == 0 {
		cc.Seed, cc.Kind = 0, 0
	}
	det, err := resolveDetector(cfg)
	if err != nil {
		return canonicalCell{}, err
	}
	cc.Detector = det
	pcfg := ckpt.Resolve(cfg.CkptPolicy, cc.CkptStride)
	if err := pcfg.Validate(); err != nil {
		return canonicalCell{}, err
	}
	cc.Policy = pcfg
	// Only the active design's sub-configuration, resolved to the exact
	// cost model the run uses (Run injects the resolved detector into it;
	// mirror that so the encoding matches what actually executes).
	switch cfg.Design {
	case UlfmFTI:
		u := cfg.Ulfm
		u.Detect = det
		u = u.Resolved()
		cc.Ulfm = &u
	case ReinitFTI:
		ri := cfg.Reinit
		ri.Detect = det
		ri = ri.Resolved()
		cc.Reinit = &ri
	case RestartFTI:
		rs := cfg.Restart
		rs.Detect = det
		rs = rs.Resolved()
		cc.Restart = &rs
	case ReplicaFTI:
		rp := cfg.Replica
		rp.Detect = det
		rp.HotSpare = HotSpareOf(cfg) // fold the harness-level switch in
		rp = rp.Resolved()
		cc.Replica = &rp
	}
	// Params overrides Table I only when MaxIter is set; otherwise it is
	// ignored wholesale. When set, mirror ResolveParams' fill.
	if cfg.Params.MaxIter != 0 {
		cc.Params = cfg.Params
		if cc.Params.WorkScale == 0 {
			cc.Params.WorkScale = 1
		}
		if cc.Params.Seed == 0 {
			cc.Params.Seed = appSeed
		}
	}
	return cc, nil
}

// CellKey is the content address of one campaign cell: the hex SHA-256 of
// its canonical encoding (see canonicalCellOf). Two configurations that
// Run identically — one spelling defaults out, one leaving them zero —
// produce the same key; any change to an axis the simulation consumes, to
// the repetition count, or to cacheVersion produces a different one.
func CellKey(cfg Config, reps int) (string, error) {
	cc, err := canonicalCellOf(cfg, reps)
	if err != nil {
		return "", err
	}
	b, err := json.Marshal(cc)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// cachedCell is the stored value of one cell: the averaged Breakdown,
// version-stamped (belt and braces — the version is already in the key).
type cachedCell struct {
	V         int       `json:"v"`
	Breakdown Breakdown `json:"breakdown"`
}

func encodeCachedCell(bd Breakdown) ([]byte, error) {
	return json.Marshal(cachedCell{V: cacheVersion, Breakdown: bd})
}

func decodeCachedCell(b []byte) (Breakdown, error) {
	var c cachedCell
	if err := json.Unmarshal(b, &c); err != nil {
		return Breakdown{}, err
	}
	if c.V != cacheVersion {
		return Breakdown{}, fmt.Errorf("core: cached cell version %d, want %d", c.V, cacheVersion)
	}
	return c.Breakdown, nil
}

// MarshalJSON renders a design as its canonical CLI spelling ("ulfm"), so
// campaign requests and results read naturally on the wire. An
// out-of-range value falls back to its number.
func (d Design) MarshalJSON() ([]byte, error) {
	for _, v := range Designs() {
		if v == d {
			return json.Marshal(d.ShortName())
		}
	}
	return json.Marshal(int(d))
}

// UnmarshalJSON accepts both spellings ParseDesign does, plus the numeric
// form for compatibility with mechanically generated requests.
func (d *Design) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, perr := ParseDesign(s)
		if perr != nil {
			return perr
		}
		*d = v
		return nil
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("core: design must be a name or a number, got %s", b)
	}
	*d = Design(n)
	return nil
}

// ParseInputSize resolves a problem-size name case-insensitively.
func ParseInputSize(name string) (InputSize, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "small", "s":
		return Small, nil
	case "medium", "m":
		return Medium, nil
	case "large", "l":
		return Large, nil
	}
	return 0, fmt.Errorf("core: unknown input size %q (valid: Small, Medium, Large)", name)
}

// MarshalJSON renders an input size by name ("Small").
func (s InputSize) MarshalJSON() ([]byte, error) {
	if s >= Small && s <= Large {
		return json.Marshal(s.String())
	}
	return json.Marshal(int(s))
}

// UnmarshalJSON accepts names (any case) and numbers.
func (s *InputSize) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err == nil {
		v, perr := ParseInputSize(str)
		if perr != nil {
			return perr
		}
		*s = v
		return nil
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("core: input size must be a name or a number, got %s", b)
	}
	*s = InputSize(n)
	return nil
}
