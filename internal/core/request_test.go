package core

import (
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"

	"match/internal/ckpt"
	"match/internal/detect"
	"match/internal/fault"
	"match/internal/fti"
	"match/internal/obs"
	"match/internal/replica"
	"match/internal/restart"
	"match/internal/simnet"
	"match/internal/ulfm"
)

// The default-expansion invisibility fix: an empty request and one that
// spells every default out are the same campaign, so they must share one
// identity.
func TestRequestHashEmptyEqualsExplicitDefaults(t *testing.T) {
	empty := CampaignRequest{}
	explicit := CampaignRequest{
		Apps:      TableIApps(),
		Designs:   Designs(),
		Procs:     DefaultProcs,
		Input:     Small,
		MaxFaults: 0,
		Reps:      1,
		Seed:      1,
		Detectors: []detect.Config{{}},
		Policies:  []ckpt.Config{{}},
		HotSpares: []bool{false},
	}
	he, err := empty.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hx, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if he != hx {
		t.Fatalf("hash(empty) = %s, hash(explicit defaults) = %s", he, hx)
	}
}

func TestRequestHashChangesPerAxis(t *testing.T) {
	base, err := (CampaignRequest{}).Hash()
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]CampaignRequest{
		"apps":       {Apps: []string{"HPCCG"}},
		"designs":    {Designs: []Design{UlfmFTI}},
		"procs":      {Procs: 128},
		"input":      {Input: Medium},
		"max_faults": {MaxFaults: 2},
		"reps":       {Reps: 3},
		"seed":       {Seed: 2},
		"detectors":  {Detectors: []detect.Config{{Kind: detect.Ring}}},
		"policies":   {Policies: []ckpt.Config{{Kind: ckpt.MultiLevel}}},
		"factors":    {ReplicaFactors: []float64{0.5}},
		"hot_spares": {HotSpares: []bool{false, true}},
		"ingress":    {ModelIngress: true},
	}
	for name, req := range variants {
		h, err := req.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == base {
			t.Errorf("%s axis does not change the request hash", name)
		}
	}
}

func TestRequestHashVersionStamp(t *testing.T) {
	h1, err := (CampaignRequest{}).Hash()
	if err != nil {
		t.Fatal(err)
	}
	old := cacheVersion
	defer func() { cacheVersion = old }()
	cacheVersion++
	h2, err := (CampaignRequest{}).Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("bumping cacheVersion did not change the request hash")
	}
}

func TestRequestJSONRoundTrip(t *testing.T) {
	req := CampaignRequest{
		Apps:      []string{"HPCCG", "CoMD"},
		Designs:   []Design{UlfmFTI, ReplicaFTI},
		Procs:     16,
		Input:     Medium,
		MaxFaults: 2,
		Seed:      9,
		Detectors: []detect.Config{{Kind: detect.Ring, HeartbeatPeriod: 50 * simnet.Millisecond}},
		HotSpares: []bool{false, true},
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back CampaignRequest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Fatalf("round trip:\n%+v\n%+v", req, back)
	}
	// The wire form uses friendly names, not enum numbers.
	if want := `"designs":["ulfm","replica"]`; !strings.Contains(string(b), want) {
		t.Fatalf("designs not rendered by name: %s", b)
	}
	if want := `"input":"Medium"`; !strings.Contains(string(b), want) {
		t.Fatalf("input not rendered by name: %s", b)
	}
}

func TestRequestValidate(t *testing.T) {
	if err := (CampaignRequest{}).Validate(); err != nil {
		t.Fatalf("default request invalid: %v", err)
	}
	bad := []CampaignRequest{
		{Apps: []string{"NoSuchApp"}},
		{ReplicaFactors: []float64{2}},
		{Procs: -1},
		{Detectors: []detect.Config{{Kind: detect.Ring,
			HeartbeatPeriod: 100 * simnet.Millisecond, DetectTimeout: simnet.Millisecond}}},
	}
	for i, req := range bad {
		if err := req.Validate(); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}

func TestRequestConfigsMatrix(t *testing.T) {
	opts := CampaignOptions{Apps: []string{"HPCCG", "CoMD"}, MaxFaults: 2,
		Seed: 3, HotSpares: []bool{false, true}}
	cfgs := opts.Request().Configs()
	if !reflect.DeepEqual(cfgs, CampaignConfigs(opts)) {
		t.Fatal("CampaignConfigs diverges from Request().Configs()")
	}
	// 2 apps x (k=0..2) x (3 designs x 1 variant + replica x 2 variants).
	if want := 2 * 3 * (3 + 2); len(cfgs) != want {
		t.Fatalf("matrix size = %d, want %d", len(cfgs), want)
	}
	// The replication axis restricts the design list to replica.
	fac := CampaignRequest{ReplicaFactors: []float64{0, 1}, MaxFaults: 0}
	for _, c := range fac.Configs() {
		if c.Design != ReplicaFTI {
			t.Fatalf("replica-factor sweep produced %v cell", c.Design)
		}
	}
}

// An empty cell configuration and one that spells out every default Run
// would fill must share one cache key, for every design.
func TestCellKeyEmptyEqualsExplicitDefaults(t *testing.T) {
	explicit := map[Design]Config{
		RestartFTI: {Design: RestartFTI, Restart: restart.DefaultConfig(),
			Detector: detect.LauncherConfig()},
		ReinitFTI:  {Design: ReinitFTI},
		UlfmFTI:    {Design: UlfmFTI, Ulfm: ulfm.DefaultConfig()},
		ReplicaFTI: {Design: ReplicaFTI, Replica: replica.DefaultConfig()},
	}
	for d, ex := range explicit {
		bare := Config{App: "HPCCG", Design: d}
		ex.App = "HPCCG"
		ex.Procs = 64
		ex.Nodes = 32
		ex.FTILevel = fti.L1
		ex.CkptStride = 10
		kb, err := CellKey(bare, 1)
		if err != nil {
			t.Fatalf("%v bare: %v", d, err)
		}
		ke, err := CellKey(ex, 1)
		if err != nil {
			t.Fatalf("%v explicit: %v", d, err)
		}
		if kb != ke {
			t.Errorf("%v: key(bare) != key(explicit defaults)", d)
		}
	}
}

func TestCellKeySeedIgnoredWithoutFaults(t *testing.T) {
	a := Config{App: "HPCCG", FaultSeed: 1}
	b := Config{App: "HPCCG", FaultSeed: 99, FaultKind: fault.NodeFailure}
	ka, _ := CellKey(a, 1)
	kb, _ := CellKey(b, 1)
	if ka != kb {
		t.Fatal("fault seed/kind split the cache for a failure-free cell")
	}
	a.Faults, b.Faults = 1, 1
	ka, _ = CellKey(a, 1)
	kb, _ = CellKey(b, 1)
	if ka == kb {
		t.Fatal("fault seed ignored for an injecting cell")
	}
	// An explicit schedule overrides the draw: the seed is ignored again.
	sched, err := fault.ParseSchedule("0@1")
	if err != nil {
		t.Fatal(err)
	}
	a.Schedule, b.Schedule = &sched, &sched
	ka, _ = CellKey(a, 1)
	kb, _ = CellKey(b, 1)
	if ka != kb {
		t.Fatal("fault seed split the cache under an explicit schedule")
	}
}

func TestCellKeyObserversExcluded(t *testing.T) {
	plain := Config{App: "HPCCG"}
	observed := plain
	observed.Metrics = obs.New()
	observed.Log = obs.NewLog(io.Discard)
	kp, _ := CellKey(plain, 1)
	ko, _ := CellKey(observed, 1)
	if kp != ko {
		t.Fatal("observers leaked into the cache key")
	}
}

func TestCellKeyInactiveDesignExcluded(t *testing.T) {
	plain := Config{App: "HPCCG", Design: RestartFTI}
	noisy := plain
	noisy.Ulfm = ulfm.Config{SpawnDelay: 123 * simnet.Second}
	noisy.Replica = replica.Config{DupDegree: 7}
	kp, _ := CellKey(plain, 1)
	kn, _ := CellKey(noisy, 1)
	if kp != kn {
		t.Fatal("an inactive design's configuration split the cache")
	}
}

func TestCellKeyHotSpareFolding(t *testing.T) {
	// The harness-level and replica-level switches are one knob.
	a := Config{App: "HPCCG", Design: ReplicaFTI, HotSpare: true}
	b := Config{App: "HPCCG", Design: ReplicaFTI, Replica: replica.Config{HotSpare: true}}
	ka, _ := CellKey(a, 1)
	kb, _ := CellKey(b, 1)
	if ka != kb {
		t.Fatal("equivalent hot-spare spellings hash differently")
	}
	off := Config{App: "HPCCG", Design: ReplicaFTI}
	ko, _ := CellKey(off, 1)
	if ko == ka {
		t.Fatal("hot-spare switch ignored for the replica design")
	}
	// The knob means nothing outside the replica design.
	ra := Config{App: "HPCCG", Design: RestartFTI, HotSpare: true}
	rb := Config{App: "HPCCG", Design: RestartFTI}
	ka, _ = CellKey(ra, 1)
	kb, _ = CellKey(rb, 1)
	if ka != kb {
		t.Fatal("hot-spare switch split the cache for a non-replica design")
	}
}

func TestCellKeyRepsAndVersion(t *testing.T) {
	cfg := Config{App: "HPCCG"}
	k1, _ := CellKey(cfg, 1)
	k3, _ := CellKey(cfg, 3)
	if k1 == k3 {
		t.Fatal("repetition count ignored (averaged breakdowns differ)")
	}
	old := cacheVersion
	defer func() { cacheVersion = old }()
	cacheVersion++
	k1v, _ := CellKey(cfg, 1)
	if k1v == k1 {
		t.Fatal("bumping cacheVersion did not change the cell key")
	}
}

func TestDesignJSON(t *testing.T) {
	for _, d := range Designs() {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != `"`+d.ShortName()+`"` {
			t.Fatalf("%v marshals as %s", d, b)
		}
		var back Design
		if err := json.Unmarshal(b, &back); err != nil || back != d {
			t.Fatalf("%v round trip: %v, %v", d, back, err)
		}
	}
	var d Design
	if err := json.Unmarshal([]byte(`"ULFM-FTI"`), &d); err != nil || d != UlfmFTI {
		t.Fatalf("full spelling: %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1`), &d); err != nil || d != ReinitFTI {
		t.Fatalf("numeric form: %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"frobnicate"`), &d); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestInputSizeJSON(t *testing.T) {
	for _, s := range InputSizes() {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back InputSize
		if err := json.Unmarshal(b, &back); err != nil || back != s {
			t.Fatalf("%v round trip: %v, %v", s, back, err)
		}
	}
	if v, err := ParseInputSize("medium"); err != nil || v != Medium {
		t.Fatalf("ParseInputSize(medium) = %v, %v", v, err)
	}
	if _, err := ParseInputSize("gigantic"); err == nil {
		t.Fatal("unknown input size accepted")
	}
}

// A result survives the wire: the JSON the service returns re-renders
// byte-identically on the client because the decoded Result is identical.
func TestResultJSONRoundTrip(t *testing.T) {
	params := tinyParams("HPCCG")
	params.CkptStride = 3
	cfg := Config{App: "HPCCG", Design: UlfmFTI, Procs: 8, Nodes: 4,
		Params: params, InjectFault: true, FaultSeed: 7}
	bd, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := []Result{{Config: cfg, Breakdown: bd}}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back []Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatalf("result round trip diverged:\n%+v\n%+v", res, back)
	}
}
