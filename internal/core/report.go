package core

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"match/internal/ckpt"
	"match/internal/detect"
	"match/internal/obs"
	"match/internal/simnet"
	"match/internal/store"
)

// Result pairs a configuration with its measured breakdown.
type Result struct {
	Config    Config
	Breakdown Breakdown
}

// Key renders the identifying columns of a result.
func (r Result) Key() string {
	return fmt.Sprintf("%s/%s/p%d/%s", r.Config.App, r.Config.Design, r.Config.Procs, r.Config.Input)
}

// RunAveraged executes cfg reps times (distinct fault seeds when injection
// is on, mirroring the paper's five repetitions) and returns the mean
// breakdown plus the individual results. Every component — the times and
// the counts alike — is divided by reps, so the averaged breakdown
// describes one run (counts round half-up to the nearest integer).
func RunAveraged(cfg Config, reps int) (Breakdown, []Result, error) {
	if reps <= 0 {
		reps = 1
	}
	if cfg.Trace != nil && reps > 1 {
		return Breakdown{}, nil, fmt.Errorf("core: one trace recorder serves one run; tracing with %d repetitions would interleave their timelines (trace a single rep instead)", reps)
	}
	var acc Breakdown
	acc.Completed = true // AND over reps (Run errors on incompletion today)
	var results []Result
	for i := 0; i < reps; i++ {
		c := cfg
		c.FaultSeed = cfg.FaultSeed + int64(i)*1009
		// Each rep runs (and reconciles) against its own fresh registry,
		// which is then merged into the caller's — so a registry, unlike a
		// trace recorder, may serve a multi-rep cell.
		if cfg.Metrics.Enabled() {
			c.Metrics = obs.New()
		}
		bd, err := Run(c)
		if cfg.Metrics.Enabled() {
			cfg.Metrics.Merge(c.Metrics)
		}
		if err != nil {
			return Breakdown{}, results, fmt.Errorf("%s rep %d: %w", Result{Config: c}.Key(), i, err)
		}
		results = append(results, Result{Config: c, Breakdown: bd})
		acc.Completed = acc.Completed && bd.Completed
		acc.Total += bd.Total
		acc.App += bd.App
		acc.Ckpt += bd.Ckpt
		acc.Recovery += bd.Recovery
		acc.DetectLatency += bd.DetectLatency
		acc.DetectedFailures += bd.DetectedFailures
		acc.Recoveries += bd.Recoveries
		acc.FaultsInjected += bd.FaultsInjected
		acc.CkptCount += bd.CkptCount
		acc.CkptBytes += bd.CkptBytes
		for l := range bd.CkptCountAt {
			acc.CkptCountAt[l] += bd.CkptCountAt[l]
			acc.CkptBytesAt[l] += bd.CkptBytesAt[l]
		}
		acc.CkptAvoided += bd.CkptAvoided
		acc.Messages += bd.Messages
		acc.NetBytes += bd.NetBytes
		acc.Respawns += bd.Respawns
		acc.SpawnTime += bd.SpawnTime
		acc.LeakedEvents += bd.LeakedEvents
	}
	n := simnet.Time(reps)
	acc.Total /= n
	acc.App /= n
	acc.Ckpt /= n
	acc.Recovery /= n
	acc.DetectLatency /= n
	acc.DetectedFailures = int(divRound(int64(acc.DetectedFailures), reps))
	acc.Recoveries = int(divRound(int64(acc.Recoveries), reps))
	acc.FaultsInjected = int(divRound(int64(acc.FaultsInjected), reps))
	acc.CkptCount = int(divRound(int64(acc.CkptCount), reps))
	acc.CkptBytes = divRound(acc.CkptBytes, reps)
	for l := range acc.CkptCountAt {
		acc.CkptCountAt[l] = int(divRound(int64(acc.CkptCountAt[l]), reps))
		acc.CkptBytesAt[l] = divRound(acc.CkptBytesAt[l], reps)
	}
	acc.CkptAvoided = int(divRound(int64(acc.CkptAvoided), reps))
	acc.Messages = divRound(acc.Messages, reps)
	acc.NetBytes = divRound(acc.NetBytes, reps)
	acc.Respawns = int(divRound(int64(acc.Respawns), reps))
	acc.SpawnTime /= n
	acc.LeakedEvents = int(divRound(int64(acc.LeakedEvents), reps))
	acc.Signature = results[0].Breakdown.Signature
	return acc, results, nil
}

// divRound divides a summed count by the repetition count, rounding half
// up, so averaged breakdowns keep integer-typed fields.
func divRound(sum int64, reps int) int64 {
	return (sum + int64(reps)/2) / int64(reps)
}

// SuiteOptions shapes a figure sweep.
type SuiteOptions struct {
	Apps   []string // default: all six
	Scales []int    // default: Table I scales (filtered per app)
	Inputs []InputSize
	Reps   int // default 1 (the paper used 5)
	Seed   int64
	// Workers bounds the worker pool the sweep runs on; 0 means
	// GOMAXPROCS. Result ordering is independent of the worker count.
	Workers int
	// Detector applies one detection strategy to every run of the sweep
	// (ablation); the zero value keeps the per-design calibrated presets.
	Detector detect.Config
	// CkptPolicy applies one checkpoint-placement policy to every run of
	// the sweep; the zero value keeps fixed-stride placement.
	CkptPolicy ckpt.Config
	// ModelIngress switches receiver-NIC serialization on for every run.
	ModelIngress bool
	// Progress, when set, observes every completed cell (see Progress).
	// Implementations must write to stderr or another side channel: the
	// sweep's stdout/CSV streams are diffed by the determinism gate.
	Progress Progress
	// Meter, when non-nil, aggregates each cell's metrics registry into the
	// live sweep meter the /metrics and /status endpoints serve. Side
	// channel only, like Progress: metering never touches the deterministic
	// output streams.
	Meter *obs.SweepMeter
	// Log, when non-nil, receives cell_start/cell_finish host events plus
	// each run's structured lifecycle events (see Config.Log). Cells run
	// concurrently, so events from different cells interleave; every line
	// carries its cell index.
	Log *obs.Log
}

func (o *SuiteOptions) fill() {
	if len(o.Apps) == 0 {
		o.Apps = TableIApps()
	}
	if len(o.Inputs) == 0 {
		o.Inputs = InputSizes()
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// FigureConfigs enumerates the run matrix behind one of the paper's
// figures (5-10). Figures 7 and 10 reuse the runs of 6 and 9.
func FigureConfigs(fig int, opts SuiteOptions) ([]Config, error) {
	opts.fill()
	var out []Config
	scaleSweep := fig == 5 || fig == 6 || fig == 7
	fault := fig == 6 || fig == 7 || fig == 9 || fig == 10
	if fig < 5 || fig > 10 {
		return nil, fmt.Errorf("core: figure %d is not an evaluation figure (5-10)", fig)
	}
	for _, app := range opts.Apps {
		var scales []int
		if scaleSweep {
			scales = ProcCounts(app)
			if len(opts.Scales) > 0 {
				scales = intersect(scales, opts.Scales)
				if app == "LULESH" {
					scales = filterCubes(scales)
				}
			}
		} else {
			scales = []int{DefaultProcs}
			if len(opts.Scales) == 1 {
				scales = opts.Scales
			}
		}
		inputs := []InputSize{Small}
		if !scaleSweep {
			inputs = opts.Inputs
		}
		for _, procs := range scales {
			for _, in := range inputs {
				for _, d := range Designs() {
					out = append(out, Config{
						App:          app,
						Design:       d,
						Procs:        procs,
						Input:        in,
						InjectFault:  fault,
						FaultSeed:    opts.Seed,
						Detector:     opts.Detector,
						CkptPolicy:   opts.CkptPolicy,
						ModelIngress: opts.ModelIngress,
					})
				}
			}
		}
	}
	return out, nil
}

func intersect(a, b []int) []int {
	set := map[int]bool{}
	for _, x := range b {
		set[x] = true
	}
	var out []int
	for _, x := range a {
		if set[x] {
			out = append(out, x)
		}
	}
	return out
}

func filterCubes(s []int) []int {
	var out []int
	for _, x := range s {
		for c := 1; c*c*c <= x; c++ {
			if c*c*c == x {
				out = append(out, x)
			}
		}
	}
	return out
}

// Progress observes a sweep as it runs: invoked once per completed cell
// with the completion count so far, the total cell count, the cell's
// result, and its host wall-clock duration. Calls are serialized (safe to
// write a status line from) but arrive in completion order, not config
// order. Wall-clock is host time — a throughput diagnostic, never part of
// the measured (virtual-time) results, so progress consumers must keep it
// off the deterministic output streams.
type Progress func(done, total int, r Result, wall time.Duration)

// RunConfigs executes configurations on a bounded worker pool (workers <= 0
// means GOMAXPROCS) with reps repetitions each. The result slice is ordered
// like cfgs regardless of the worker count or completion order, so sweep
// output is deterministic. An error stops new runs from starting (in-flight
// ones finish); the successful prefix — every configuration before the
// lowest-indexed failing one — is returned with that error.
func RunConfigs(cfgs []Config, reps, workers int) ([]Result, error) {
	return runConfigs(cfgs, reps, runEnv{workers: workers})
}

// runEnv is the sweep execution environment: the worker pool bound plus
// the observability hooks the campaign/suite CLIs report through (per-cell
// progress callback, live sweep meter behind /metrics and /status,
// structured event log) and the optional content-addressed result store.
type runEnv struct {
	workers  int
	progress Progress
	meter    *obs.SweepMeter
	log      *obs.Log
	store    *store.Store
}

// runConfigs is RunConfigs over a full runEnv. With a store attached, each
// cell is looked up by its CellKey before simulating: a hit reuses the
// cached Breakdown (byte-identical results, zero simulation), a miss runs
// the cell and stores it back. Cache traffic is invisible on the
// deterministic output streams — only the store's Stats and the side
// channels see it.
func runConfigs(cfgs []Config, reps int, env runEnv) ([]Result, error) {
	workers := env.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	env.meter.AddTotal(len(cfgs))
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	done := make([]bool, len(cfgs)) // distinguishes success from fail-fast skip
	next := make(chan int)
	var failed atomic.Bool // fail fast: don't start new runs after an error
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	completed := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if failed.Load() {
					continue
				}
				cfg := cfgs[i]
				if env.log.Enabled() {
					cfg.Log = env.log.With("cell", i)
					cfg.Log.HostEvent("cell_start", "app", cfg.App,
						"design", cfg.Design.ShortName(), "procs", cfg.Procs,
						"input", cfg.Input.String(), "faults", cfg.FaultCount())
				}
				start := time.Now()
				// Consult the store first: a hit skips the simulation
				// entirely. A key error (invalid detector/policy) falls
				// through to the run, which reports it properly; a corrupt
				// or stale cached value counts as a miss and is re-run.
				key := ""
				cached := false
				var bd Breakdown
				if env.store.Enabled() {
					if k, kerr := CellKey(cfg, reps); kerr == nil {
						key = k
						if raw, ok := env.store.Get(key); ok {
							if dec, derr := decodeCachedCell(raw); derr == nil {
								bd, cached = dec, true
							}
						}
					}
				}
				if !cached {
					if env.meter.Enabled() {
						cfg.Metrics = obs.New()
					}
					var err error
					bd, _, err = RunAveraged(cfg, reps)
					if err != nil {
						errs[i] = err
						failed.Store(true)
						continue
					}
					if key != "" {
						if enc, eerr := encodeCachedCell(bd); eerr == nil {
							// Best-effort: a failed write only costs a
							// future rerun, never the sweep.
							_ = env.store.Put(key, enc)
						}
					}
				}
				env.meter.CellDone(cfg.Design.ShortName(), cfg.Metrics)
				if cfg.Log.Enabled() {
					cfg.Log.HostEvent("cell_finish", "app", cfg.App,
						"design", cfg.Design.ShortName(), "procs", cfg.Procs,
						"wall_ms", time.Since(start).Milliseconds(),
						"total_s", bd.Total.Seconds(), "recoveries", bd.Recoveries,
						"cached", cached)
				}
				res := Result{Config: cfgs[i], Breakdown: bd}
				results[i] = res
				done[i] = true
				if env.progress != nil {
					progressMu.Lock()
					completed++
					env.progress(completed, len(cfgs), res, time.Since(start))
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range cfgs {
		next <- i
	}
	close(next)
	wg.Wait()
	if !failed.Load() {
		return results, nil
	}
	// The returned prefix holds only configurations that actually ran: it
	// ends at the first error, skip, or still-zero slot.
	n := 0
	for n < len(cfgs) && done[n] {
		n++
	}
	var err error
	for _, e := range errs[n:] { // failed => at least one non-nil entry
		if e != nil {
			err = e
			break
		}
	}
	return results[:n], err
}

// RunFigure executes a figure's run matrix on the sweep worker pool and
// writes the paper-style table to w. It returns the raw results for
// further analysis.
func RunFigure(fig int, opts SuiteOptions, w io.Writer) ([]Result, error) {
	cfgs, err := FigureConfigs(fig, opts)
	if err != nil {
		return nil, err
	}
	opts.fill()
	results, err := runConfigs(cfgs, opts.Reps, runEnv{
		workers:  opts.Workers,
		progress: opts.Progress,
		meter:    opts.Meter,
		log:      opts.Log,
	})
	if err != nil {
		return results, err
	}
	WriteFigure(w, fig, results)
	return results, nil
}

var figureTitles = map[int]string{
	5:  "Execution time breakdown in different scaling sizes, no process failures (Fig. 5)",
	6:  "Execution time breakdown recovering from a process failure, scaling sizes (Fig. 6)",
	7:  "Recovery time for different scaling sizes (Fig. 7)",
	8:  "Execution time breakdown in different input problem sizes, no failures (Fig. 8)",
	9:  "Execution time breakdown recovering from a process failure, input sizes (Fig. 9)",
	10: "Recovery time for different input problem sizes (Fig. 10)",
}

// WriteFigure renders results in the layout of the paper's figure: one
// block per application, one row per (x-axis value, design).
func WriteFigure(w io.Writer, fig int, results []Result) {
	fmt.Fprintf(w, "== %s ==\n", figureTitles[fig])
	scaleSweep := fig <= 7
	recoveryOnly := fig == 7 || fig == 10
	byApp := map[string][]Result{}
	var apps []string
	for _, r := range results {
		if _, ok := byApp[r.Config.App]; !ok {
			apps = append(apps, r.Config.App)
		}
		byApp[r.Config.App] = append(byApp[r.Config.App], r)
	}
	sort.Strings(apps)
	for _, app := range apps {
		fmt.Fprintf(w, "\n-- %s --\n", app)
		if recoveryOnly {
			fmt.Fprintf(w, "%-8s %-12s %10s\n", xLabel(scaleSweep), "design", "recovery(s)")
		} else {
			fmt.Fprintf(w, "%-8s %-12s %12s %12s %12s %12s\n",
				xLabel(scaleSweep), "design", "app(s)", "ckpt(s)", "recovery(s)", "total(s)")
		}
		for _, r := range byApp[app] {
			x := fmt.Sprintf("%d", r.Config.Procs)
			if !scaleSweep {
				x = r.Config.Input.String()
			}
			bd := r.Breakdown
			if recoveryOnly {
				fmt.Fprintf(w, "%-8s %-12s %10.3f\n", x, r.Config.Design, bd.Recovery.Seconds())
			} else {
				fmt.Fprintf(w, "%-8s %-12s %12.3f %12.3f %12.3f %12.3f\n",
					x, r.Config.Design, bd.App.Seconds(), bd.Ckpt.Seconds(),
					bd.Recovery.Seconds(), bd.Total.Seconds())
			}
		}
	}
	fmt.Fprintln(w)
}

// WriteCSV emits results as CSV for external plotting. The faults column
// is the scheduled failure count of the configuration (campaign sweeps
// vary it; the paper's figures have it at 0 or 1); ckpt_policy, rfactor,
// and hot_spare label the placement, replication, and respawn axes; the
// ckpt_l* columns split the checkpoint count by FTI level, ckpt_avoided
// counts the checkpoints the placement policy skipped relative to fixed
// placement, and respawns/spawn_s report the hot spares that went live
// and their summed spawn latency.
func WriteCSV(w io.Writer, results []Result) {
	fmt.Fprintln(w, "app,design,procs,input,faults,detector,ckpt_policy,rfactor,hot_spare,app_s,ckpt_s,recovery_s,detect_s,total_s,recoveries,respawns,spawn_s,ckpts,ckpt_l1,ckpt_l2,ckpt_l3,ckpt_l4,ckpt_avoided,messages,net_bytes")
	for _, r := range results {
		bd := r.Breakdown
		hs := 0
		if HotSpareOf(r.Config) {
			hs = 1
		}
		fmt.Fprintf(w, "%s,%s,%d,%s,%d,%s,%s,%g,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d,%.6f,%d,%d,%d,%d,%d,%d,%d,%d\n",
			r.Config.App, r.Config.Design, r.Config.Procs, r.Config.Input,
			r.Config.FaultCount(), csvField(r.Config.Detector.String()),
			csvField(r.Config.CkptPolicy.String()), ReplicaFactorOf(r.Config), hs,
			bd.App.Seconds(), bd.Ckpt.Seconds(),
			bd.Recovery.Seconds(), bd.DetectLatency.Seconds(), bd.Total.Seconds(), bd.Recoveries,
			bd.Respawns, bd.SpawnTime.Seconds(),
			bd.CkptCount, bd.CkptCountAt[1], bd.CkptCountAt[2], bd.CkptCountAt[3], bd.CkptCountAt[4],
			bd.CkptAvoided, bd.Messages, bd.NetBytes)
	}
}

// csvField quotes a rendered label when it would otherwise split the row:
// detector and placement strings carry their tuning in parentheses with
// comma separators (e.g. "multi-level(s=10,l2=3,l4=10)").
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteTableI renders the paper's Table I along with the reproduction's
// scaled-down equivalents.
func WriteTableI(w io.Writer) {
	fmt.Fprintln(w, "== Table I: experimentation configuration (paper input -> scaled reproduction) ==")
	fmt.Fprintf(w, "%-10s %-8s %-26s %-28s %-10s %s\n",
		"app", "input", "paper parameters", "reproduction parameters", "bytes x", "procs")
	for _, e := range TableI() {
		repro := describeParams(e)
		procs := strings.Trim(strings.Join(strings.Fields(fmt.Sprint(e.ProcCounts)), ","), "[]")
		fmt.Fprintf(w, "%-10s %-8s %-26s %-28s %-10.1f %s\n",
			e.App, e.Input, e.PaperInput, repro, e.BytesScale, procs)
	}
}

func describeParams(e TableIEntry) string {
	p := e.Params
	switch {
	case e.App == "LULESH":
		return fmt.Sprintf("-s %d, %d steps", p.S, p.MaxIter)
	case e.App == "miniVite":
		return fmt.Sprintf("-n %d, %d sweeps", p.NVerts, p.MaxIter)
	default:
		return fmt.Sprintf("%dx%dx%d, %d iters", p.NX, p.NY, p.NZ, p.MaxIter)
	}
}

func xLabel(scaleSweep bool) string {
	if scaleSweep {
		return "procs"
	}
	return "input"
}
