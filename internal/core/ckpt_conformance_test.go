package core

import (
	"testing"

	"match/internal/ckpt"
	"match/internal/fti"
	"match/internal/replica"
)

// TestCkptPolicyPresetMatchesExplicit pins the refactoring invariant
// behind the calibrated numbers: the default (zero-value) placement is
// literally the fixed policy at the configured stride, so spelling it out
// explicitly reproduces the default run byte-for-byte — with and without
// a failure, for every design.
func TestCkptPolicyPresetMatchesExplicit(t *testing.T) {
	if testing.Short() {
		t.Skip("16-run equality matrix")
	}
	for _, fault := range []bool{false, true} {
		for _, d := range Designs() {
			base := Config{App: "HPCCG", Design: d, Procs: 8, Nodes: 4, Input: Small,
				InjectFault: fault, FaultSeed: 9}
			want, err := Run(base)
			if err != nil {
				t.Fatalf("%s default (fault=%v): %v", d, fault, err)
			}
			exp := base
			exp.CkptPolicy = ckpt.Config{Kind: ckpt.Fixed, Stride: 10}
			got, err := Run(exp)
			if err != nil {
				t.Fatalf("%s explicit (fault=%v): %v", d, fault, err)
			}
			if want != got {
				t.Fatalf("%s (fault=%v) explicit fixed placement diverged:\ndefault:  %+v\nexplicit: %+v",
					d, fault, want, got)
			}
		}
	}
}

// TestCkptAvoidedIdenticalAcrossDesigns is the cross-design placement
// contract: under the same deterministic policy and no failures, every
// design reports the identical checkpoint count and avoided count — the
// policy, not the design, owns placement. The adaptive policy with an
// empty fault schedule is the sharpest case: Young-Daly degenerates to a
// single iteration-0 checkpoint everywhere.
func TestCkptAvoidedIdenticalAcrossDesigns(t *testing.T) {
	var ref *Breakdown
	for _, d := range Designs() {
		bd, err := Run(Config{App: "HPCCG", Design: d, Procs: 8, Nodes: 4, Input: Small,
			CkptPolicy: ckpt.Config{Kind: ckpt.Adaptive}})
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if bd.CkptCount != 1 || bd.CkptCountAt[fti.L1] != 1 {
			t.Fatalf("%s: fault-free adaptive took %d checkpoints (%v), want the single iteration-0 one",
				d, bd.CkptCount, bd.CkptCountAt)
		}
		if bd.CkptAvoided <= 0 {
			t.Fatalf("%s: avoided = %d, want > 0", d, bd.CkptAvoided)
		}
		if ref == nil {
			bd := bd
			ref = &bd
			continue
		}
		if bd.CkptAvoided != ref.CkptAvoided || bd.CkptCount != ref.CkptCount || bd.Signature != ref.Signature {
			t.Fatalf("%s: avoided=%d count=%d sig=%v diverges from %s's avoided=%d count=%d sig=%v",
				d, bd.CkptAvoided, bd.CkptCount, bd.Signature,
				Designs()[0], ref.CkptAvoided, ref.CkptCount, ref.Signature)
		}
	}
}

// TestMultiLevelPlacementRecoversEverywhere runs the FTI-style interleave
// (L1 every stride, L2 every 3rd checkpoint, L4 every 10th) through every
// design with an injected failure: checkpoints must actually spread
// across levels, recovery must restore from whatever level the newest
// commit used, and the recovered answer must stay bitwise identical to
// the failure-free run.
func TestMultiLevelPlacementRecoversEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("full design matrix")
	}
	ref, err := Run(Config{App: "HPCCG", Design: ReinitFTI, Procs: 8, Nodes: 4, Input: Small})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for _, d := range Designs() {
		bd, err := Run(Config{App: "HPCCG", Design: d, Procs: 8, Nodes: 4, Input: Small,
			InjectFault: true, FaultSeed: 9,
			CkptPolicy: ckpt.Config{Kind: ckpt.MultiLevel}})
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if bd.Recoveries < 1 {
			t.Fatalf("%s: no recovery", d)
		}
		if bd.CkptCountAt[fti.L2] == 0 {
			t.Fatalf("%s: no checkpoint escalated to L2: %v", d, bd.CkptCountAt)
		}
		if bd.CkptCount != bd.CkptCountAt[fti.L1]+bd.CkptCountAt[fti.L2]+bd.CkptCountAt[fti.L3]+bd.CkptCountAt[fti.L4] {
			t.Fatalf("%s: per-level counts %v do not sum to %d", d, bd.CkptCountAt, bd.CkptCount)
		}
		if bd.Signature != ref.Signature {
			t.Fatalf("%s: recovered answer %v != failure-free %v under multi-level placement",
				d, bd.Signature, ref.Signature)
		}
	}
}

// TestReplicaAwareRearmsAfterFailover pins the re-arming semantics end to
// end, with the skip-protected variant making it sharply observable:
// while full replication protects every rank no checkpoints are taken at
// all; the injected failure degrades one group to degree 1 via failover,
// after which the policy re-arms to the base stride and checkpoints
// resume. The run must therefore show BOTH skipped and taken checkpoints,
// and still recover the exact answer.
func TestReplicaAwareRearmsAfterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("six-run re-arming matrix")
	}
	ref, err := Run(Config{App: "HPCCG", Design: ReinitFTI, Procs: 8, Nodes: 4, Input: Small})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	bd, err := Run(Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4, Input: Small,
		InjectFault: true, FaultSeed: 9,
		CkptPolicy: ckpt.Config{Kind: ckpt.ReplicaAware, SkipProtected: true}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if bd.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1 failover", bd.Recoveries)
	}
	if bd.CkptAvoided == 0 {
		t.Fatal("no checkpoints avoided while fully protected")
	}
	if bd.CkptCount == 0 {
		t.Fatal("no checkpoints after degradation: the policy did not re-arm to the base stride")
	}
	if bd.Signature != ref.Signature {
		t.Fatalf("signature %v != failure-free %v", bd.Signature, ref.Signature)
	}
	// The same policy on a failure-free fully-replicated run never
	// re-arms: zero checkpoints, everything avoided.
	clean, err := Run(Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4, Input: Small,
		CkptPolicy: ckpt.Config{Kind: ckpt.ReplicaAware, SkipProtected: true}})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if clean.CkptCount != 0 || clean.CkptAvoided == 0 {
		t.Fatalf("fully-protected run took %d checkpoints (avoided %d), want 0 (all avoided)",
			clean.CkptCount, clean.CkptAvoided)
	}
	// Under partial replication some rank is always unprotected, so the
	// policy runs at the base stride from the start.
	partial, err := Run(Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4, Input: Small,
		Replica:    replica.Config{ReplicaFactor: 0.5},
		CkptPolicy: ckpt.Config{Kind: ckpt.ReplicaAware, SkipProtected: true}})
	if err != nil {
		t.Fatalf("partial run: %v", err)
	}
	fixed, err := Run(Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4, Input: Small,
		Replica: replica.Config{ReplicaFactor: 0.5}})
	if err != nil {
		t.Fatalf("partial fixed run: %v", err)
	}
	if partial.CkptCount != fixed.CkptCount {
		t.Fatalf("partial replication: replica-aware took %d checkpoints, fixed took %d (want equal)",
			partial.CkptCount, fixed.CkptCount)
	}
}

// TestAdaptivePlacementRecomputesAcrossIncarnations pins the adaptive
// policy's incarnation behavior in a real run: with a scheduled failure
// the first incarnation runs at the base stride (nothing measured yet),
// and the post-recovery incarnation recomputes a Young-Daly interval from
// the observed checkpoint/step costs — visible as a second entry in the
// run's stride history that differs from a pure base-stride replay. The
// answer stays exact either way.
func TestAdaptivePlacementRecomputesAcrossIncarnations(t *testing.T) {
	ref, err := Run(Config{App: "HPCCG", Design: RestartFTI, Procs: 8, Nodes: 4, Input: Small})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	fixed, err := Run(Config{App: "HPCCG", Design: RestartFTI, Procs: 8, Nodes: 4, Input: Small,
		InjectFault: true, FaultSeed: 9})
	if err != nil {
		t.Fatalf("fixed: %v", err)
	}
	bd, err := Run(Config{App: "HPCCG", Design: RestartFTI, Procs: 8, Nodes: 4, Input: Small,
		InjectFault: true, FaultSeed: 9,
		CkptPolicy: ckpt.Config{Kind: ckpt.Adaptive}})
	if err != nil {
		t.Fatalf("adaptive: %v", err)
	}
	if bd.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", bd.Recoveries)
	}
	if bd.Signature != ref.Signature {
		t.Fatalf("adaptive signature %v != failure-free %v", bd.Signature, ref.Signature)
	}
	// The recomputed interval must have changed placement relative to the
	// fixed replay of the same failure (a longer interval shows up as
	// avoided checkpoints, a shorter one as extra checkpoints).
	if bd.CkptCount == fixed.CkptCount && bd.CkptAvoided == 0 {
		t.Fatalf("adaptive run indistinguishable from fixed (count=%d avoided=%d): no recomputation happened",
			bd.CkptCount, bd.CkptAvoided)
	}
}

// TestCampaignPolicyAndReplicaSweepDimensions pins the campaign matrix's
// two new axes: placement policies multiply the grid, and a ReplicaFactor
// sweep restricts it to the replica design with factor 0 encoded as
// dup-degree 1 (replication off).
func TestCampaignPolicyAndReplicaSweepDimensions(t *testing.T) {
	opts := CampaignOptions{Apps: []string{"HPCCG"}, MaxFaults: 1,
		Policies:       []ckpt.Config{{}, {Kind: ckpt.ReplicaAware}},
		ReplicaFactors: []float64{0, 0.5, 1}}
	cfgs := CampaignConfigs(opts)
	// 1 app x 1 detector x 2 policies x 3 factors x k=0,1 x 1 design.
	if len(cfgs) != 12 {
		t.Fatalf("configs = %d, want 12", len(cfgs))
	}
	factors := map[float64]bool{}
	for _, c := range cfgs {
		if c.Design != ReplicaFTI {
			t.Fatalf("factor sweep produced a %s config", c.Design)
		}
		factors[ReplicaFactorOf(c)] = true
	}
	for _, f := range []float64{0, 0.5, 1} {
		if !factors[f] {
			t.Fatalf("factor %g missing from sweep: %v", f, factors)
		}
	}
	// Without a factor sweep the design list stays as given.
	plain := CampaignConfigs(CampaignOptions{Apps: []string{"HPCCG"}, MaxFaults: 0})
	if len(plain) != len(Designs()) {
		t.Fatalf("plain campaign configs = %d, want %d", len(plain), len(Designs()))
	}
}

// TestReplicaTradeoffCurve runs a miniature ReplicaFactor sweep end to end
// and checks the PartRePer shape: recovery per failure shrinks as the
// replicated fraction grows (failover replaces relaunch), and under
// replica-aware placement the fully-replicated point avoids checkpoints
// the unreplicated point must take.
func TestReplicaTradeoffCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("four-run sweep")
	}
	pol := ckpt.Config{Kind: ckpt.ReplicaAware}
	var results []Result
	for _, factor := range []float64{0, 1} {
		for k := 0; k <= 1; k++ {
			cfg := Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4, Input: Small,
				InjectFault: k > 0, Faults: k, FaultSeed: 9,
				Replica: replicaConfigFor(factor), CkptPolicy: pol}
			bd, err := Run(cfg)
			if err != nil {
				t.Fatalf("factor %g k=%d: %v", factor, k, err)
			}
			results = append(results, Result{Config: cfg, Breakdown: bd})
		}
	}
	rows := ComputeReplicaTradeoff(results)
	if len(rows) != 2 {
		t.Fatalf("tradeoff rows = %d, want 2: %+v", len(rows), rows)
	}
	r0, r1 := rows[0], rows[1]
	if r0.Factor != 0 || r1.Factor != 1 {
		t.Fatalf("row factors = %g, %g", r0.Factor, r1.Factor)
	}
	if r0.OverheadPct != 0 {
		t.Fatalf("factor-0 overhead = %g%%, want 0 (it is its own baseline)", r0.OverheadPct)
	}
	if r1.RecoveryPerFailure >= r0.RecoveryPerFailure {
		t.Fatalf("replication did not cut recovery: %g >= %g",
			r1.RecoveryPerFailure, r0.RecoveryPerFailure)
	}
	if r0.CkptAvoided != 0 || r1.CkptAvoided == 0 {
		t.Fatalf("avoided checkpoints: factor0=%d factor1=%d (want 0 and >0)",
			r0.CkptAvoided, r1.CkptAvoided)
	}
	if r1.CkptCount >= r0.CkptCount {
		t.Fatalf("replica-aware placement did not reduce checkpoints: %d >= %d",
			r1.CkptCount, r0.CkptCount)
	}
}
