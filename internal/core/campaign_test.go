package core

import (
	"strings"
	"testing"

	"match/internal/detect"
	"match/internal/fault"
	"match/internal/simnet"
)

// A k=1 campaign cell must reproduce today's single-failure run
// byte-for-byte: same schedule draw, same breakdown. This is the
// compatibility contract that keeps every calibrated figure valid under
// the campaign generalization.
func TestCampaignK1MatchesLegacySingleFailure(t *testing.T) {
	for _, d := range Designs() {
		params := tinyParams("HPCCG")
		params.CkptStride = 3
		legacy := Config{App: "HPCCG", Design: d, Procs: 8, Nodes: 4,
			Params: params, InjectFault: true, FaultSeed: 7}
		viaK := legacy
		viaK.Faults = 1
		a, err := Run(legacy)
		if err != nil {
			t.Fatalf("%v legacy: %v", d, err)
		}
		b, err := Run(viaK)
		if err != nil {
			t.Fatalf("%v k=1: %v", d, err)
		}
		if a != b {
			t.Fatalf("%v: k=1 campaign diverges from legacy single failure:\n%+v\n%+v", d, a, b)
		}
	}
}

// Multi-failure campaigns must complete on every design with every scheduled
// failure recovered and a deterministic breakdown.
func TestMultiFailureEveryDesign(t *testing.T) {
	for _, app := range []string{"HPCCG", "CoMD"} {
		for _, d := range Designs() {
			for _, k := range []int{2, 3} {
				params := tinyParams(app)
				params.CkptStride = 3
				cfg := Config{App: app, Design: d, Procs: 8, Nodes: 4,
					Params: params, Faults: k, FaultSeed: 5}
				a, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%v k=%d: %v", app, d, k, err)
				}
				if !a.Completed {
					t.Fatalf("%s/%v k=%d did not complete", app, d, k)
				}
				if a.FaultsInjected != k {
					t.Fatalf("%s/%v k=%d: only %d faults fired", app, d, k, a.FaultsInjected)
				}
				// Recoveries can merge (a restart absorbs a failure that
				// lands inside its detect window) but never exceed the
				// failure count, and at least one must have happened.
				if a.Recoveries < 1 || a.Recoveries > k {
					t.Fatalf("%s/%v k=%d: %d recoveries", app, d, k, a.Recoveries)
				}
				b, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%v k=%d rerun: %v", app, d, k, err)
				}
				if a != b {
					t.Fatalf("%s/%v k=%d not deterministic:\n%+v\n%+v", app, d, k, a, b)
				}
			}
		}
	}
}

// The multi-failure answer must still be the failure-free answer.
func TestMultiFailureRecoversExactAnswer(t *testing.T) {
	params := tinyParams("miniFE")
	params.CkptStride = 3
	ref, err := Run(Config{App: "miniFE", Design: ReinitFTI, Procs: 8, Nodes: 4, Params: params})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for _, d := range Designs() {
		bd, err := Run(Config{App: "miniFE", Design: d, Procs: 8, Nodes: 4,
			Params: params, Faults: 3, FaultSeed: 2})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if bd.Signature != ref.Signature {
			t.Fatalf("%v: recovered signature %v != failure-free %v", d, bd.Signature, ref.Signature)
		}
	}
}

// RunCampaign output must be independent of the worker count: the sweep
// pool must not change result ordering or values.
func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := CampaignOptions{
		Apps:      []string{"HPCCG"},
		Procs:     8,
		MaxFaults: 2,
		Seed:      3,
	}
	// 8-rank override for speed: campaign cells resolve Table I params at
	// Procs=8 via ResolveParams, which works for HPCCG.
	var out1, out8 strings.Builder
	opts.Workers = 1
	r1, err := RunCampaign(opts, &out1)
	if err != nil {
		t.Fatalf("-j 1: %v", err)
	}
	opts.Workers = 8
	r8, err := RunCampaign(opts, &out8)
	if err != nil {
		t.Fatalf("-j 8: %v", err)
	}
	if out1.String() != out8.String() {
		t.Fatalf("campaign table differs between -j 1 and -j 8:\n%s\n---\n%s", out1.String(), out8.String())
	}
	var csv1, csv8 strings.Builder
	WriteCSV(&csv1, r1)
	WriteCSV(&csv8, r8)
	if csv1.String() != csv8.String() {
		t.Fatalf("campaign CSV differs between -j 1 and -j 8:\n%s\n---\n%s", csv1.String(), csv8.String())
	}
	if len(r1) != 3*len(Designs()) { // k = 0,1,2 x designs
		t.Fatalf("campaign results = %d, want %d", len(r1), 3*len(Designs()))
	}
	cr := ComputeCrossover(r1)
	if len(cr.Ks) != 3 || cr.Ks[0] != 0 || cr.Ks[2] != 2 {
		t.Fatalf("crossover ks = %v", cr.Ks)
	}
	var sb strings.Builder
	cr.Write(&sb)
	if !strings.Contains(sb.String(), "crossover") {
		t.Fatalf("crossover report malformed:\n%s", sb.String())
	}
}

// TestCampaignAllAppsK3Small64 pins the campaign acceptance bar: a k=3
// campaign completes on every app x design pair at the paper-scale
// default configuration (64 procs, Small input), with every scheduled
// failure fired.
func TestCampaignAllAppsK3Small64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-proc campaign matrix skipped in -short mode")
	}
	var cfgs []Config
	for _, app := range allApps {
		for _, d := range Designs() {
			cfgs = append(cfgs, Config{App: app, Design: d, Procs: 64,
				Input: Small, Faults: 3, FaultSeed: 1})
		}
	}
	results, err := RunConfigs(cfgs, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Breakdown.Completed {
			t.Errorf("%s: did not complete", r.Key())
		}
		if r.Breakdown.FaultsInjected != 3 {
			t.Errorf("%s: %d faults fired, want 3", r.Key(), r.Breakdown.FaultsInjected)
		}
		if r.Breakdown.Recoveries < 1 {
			t.Errorf("%s: no recovery recorded", r.Key())
		}
	}
}

// TestCampaignDetectorSweepDimension pins the detection axis of the
// campaign matrix: every detector configuration multiplies the cells, the
// sweep completes, and the trade-off analysis yields one row per
// (design, detector) with the slower ring reporting the larger detection
// latency.
func TestCampaignDetectorSweepDimension(t *testing.T) {
	detectors := []detect.Config{
		detect.Resolve(detect.Config{Kind: detect.Ring, HeartbeatPeriod: 50 * simnet.Millisecond}, detect.Config{}),
		detect.Resolve(detect.Config{Kind: detect.Ring, HeartbeatPeriod: 150 * simnet.Millisecond}, detect.Config{}),
	}
	opts := CampaignOptions{
		Apps:      []string{"HPCCG"},
		Procs:     8,
		MaxFaults: 1,
		Seed:      3,
		Detectors: detectors,
	}
	if got, want := len(CampaignConfigs(opts)), 2*2*len(Designs()); got != want {
		t.Fatalf("sweep size = %d, want %d (detectors x k x designs)", got, want)
	}
	var out strings.Builder
	results, err := RunCampaign(opts, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "detector") {
		t.Fatalf("campaign table misses the detector column:\n%s", out.String())
	}
	rows := ComputeDetectionTradeoff(results)
	if len(rows) != 2*len(Designs()) {
		t.Fatalf("tradeoff rows = %d, want %d", len(rows), 2*len(Designs()))
	}
	perDesign := map[Design][]DetectionTradeoff{}
	for _, r := range rows {
		perDesign[r.Design] = append(perDesign[r.Design], r)
	}
	for d, rs := range perDesign {
		if len(rs) != 2 {
			t.Fatalf("%s: %d tradeoff rows, want 2", d, len(rs))
		}
		// Sweep order is preserved: rs[0] is the 50ms ring, rs[1] the 150ms
		// one; detection latency must grow with the period for every design.
		if rs[0].DetectPerFailure >= rs[1].DetectPerFailure {
			t.Fatalf("%s: detect/fail not monotonic in period: %+v", d, rs)
		}
	}
	var sb strings.Builder
	WriteDetectionTradeoff(&sb, rows)
	if !strings.Contains(sb.String(), "interference") {
		t.Fatalf("tradeoff table malformed:\n%s", sb.String())
	}
}

// TestInWindowFailureRegime pins the regime only in-band detection can
// express: two replica deaths in one group landing inside a single
// detection window. Under the instant launcher preset the first death is
// handled by a failover before the second arrives (two recoveries); under
// a ring detector the second death beats the first confirmation, so the
// group is already exhausted when the runtime finally learns of it and
// the run goes straight to the checkpoint fallback (one recovery).
func TestInWindowFailureRegime(t *testing.T) {
	params := tinyParams("HPCCG")
	params.CkptStride = 3
	sched := fault.Schedule{Events: []fault.Event{
		{TargetRank: 2, TargetIter: 2, TargetReplica: 1},
		{TargetRank: 2, TargetIter: 4, TargetReplica: 0},
	}}
	base := Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4,
		Params: params, Schedule: &sched}

	launcher, err := Run(base)
	if err != nil {
		t.Fatalf("launcher preset: %v", err)
	}
	ring := base
	ring.Detector = detect.Config{Kind: detect.Ring, HeartbeatPeriod: 50 * simnet.Millisecond}
	inband, err := Run(ring)
	if err != nil {
		t.Fatalf("ring detector: %v", err)
	}
	if launcher.Recoveries != 2 {
		t.Fatalf("launcher recoveries = %d, want 2 (failover then fallback)", launcher.Recoveries)
	}
	if inband.Recoveries != 1 {
		t.Fatalf("in-band recoveries = %d, want 1 (second death inside the window exhausts the group before confirmation)", inband.Recoveries)
	}
	if launcher.Signature != inband.Signature {
		t.Fatalf("answers diverge: %v vs %v", launcher.Signature, inband.Signature)
	}
}

// An explicit schedule drives failures exactly where it says, including a
// second hit on the already-degraded replica group (forcing the
// checkpoint-only fallback) and an AfterRecoveries-gated event.
func TestExplicitScheduleDegradedGroupFallback(t *testing.T) {
	params := tinyParams("HPCCG")
	params.CkptStride = 3
	// Kill the shadow replica of rank 2 first (stable replica index 1),
	// then — after that failover — the primary (index 0): the group is
	// exhausted and the run must fall back to checkpoint-only relaunch.
	sched := fault.Schedule{Events: []fault.Event{
		{TargetRank: 2, TargetIter: 2, TargetReplica: 1},
		{TargetRank: 2, TargetIter: 6, TargetReplica: 0, AfterRecoveries: 1},
	}}
	cfg := Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4,
		Params: params, Schedule: &sched}
	ref, err := Run(Config{App: "HPCCG", Design: ReinitFTI, Procs: 8, Nodes: 4, Params: params})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2 (failover + fallback relaunch)", a.Recoveries)
	}
	if a.Signature != ref.Signature {
		t.Fatalf("signature %v != failure-free %v", a.Signature, ref.Signature)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if a != b {
		t.Fatalf("explicit schedule not deterministic:\n%+v\n%+v", a, b)
	}
}
