package core

import (
	"fmt"

	"match/internal/apps/appkit"
)

// TableIEntry is one row of the paper's Table I, with the reproduction's
// scaled-down equivalents attached.
type TableIEntry struct {
	App        string
	Input      InputSize
	PaperInput string // the paper's command-line fragment
	Params     appkit.Params
	BytesScale float64 // paper data volume / our data volume
	ProcCounts []int
}

// row couples a scaled-down configuration with its calibration constants.
type row struct {
	paper  string
	p      appkit.Params
	bscale float64
}

// appSeed fixes application-level randomness so all designs, seeds, and
// fault plans see the identical problem instance.
const appSeed = 42

// tableI is the paper's Table I mapped to laptop-scale instances. The
// paper's problems cannot run at full size inside a discrete-event
// simulator, so each configuration keeps the paper's *shape* (which
// dimension grows, per-process vs. global semantics, iteration structure)
// at reduced size; WorkScale and BytesScale then charge virtual time as if
// the paper-scale computation and data were being processed, calibrated
// against the magnitudes in Figures 5-10 (see EXPERIMENTS.md).
var tableI = map[string][3]row{
	"AMG": {
		{paper: "-problem 2 -n 20 20 20", p: appkit.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 25, WorkScale: 190000}, bscale: 15.6},
		{paper: "-problem 2 -n 40 40 40", p: appkit.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 25, WorkScale: 280000}, bscale: 125},
		{paper: "-problem 2 -n 60 60 60", p: appkit.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 25, WorkScale: 390000}, bscale: 422},
	},
	"CoMD": {
		{paper: "-nx 128 -ny 128 -nz 128", p: appkit.Params{NX: 12, NY: 12, NZ: 12, MaxIter: 40, WorkScale: 52000}, bscale: 1214},
		{paper: "-nx 256 -ny 256 -nz 256", p: appkit.Params{NX: 14, NY: 14, NZ: 14, MaxIter: 40, WorkScale: 52000}, bscale: 6114},
		{paper: "-nx 512 -ny 512 -nz 512", p: appkit.Params{NX: 16, NY: 16, NZ: 16, MaxIter: 40, WorkScale: 940000}, bscale: 32768},
	},
	"HPCCG": {
		{paper: "64 64 64", p: appkit.Params{NX: 12, NY: 12, NZ: 12, MaxIter: 60, WorkScale: 900}, bscale: 151},
		{paper: "128 128 128", p: appkit.Params{NX: 14, NY: 14, NZ: 14, MaxIter: 60, WorkScale: 4500}, bscale: 764},
		{paper: "192 192 192", p: appkit.Params{NX: 16, NY: 16, NZ: 16, MaxIter: 60, WorkScale: 10200}, bscale: 1728},
	},
	"LULESH": {
		{paper: "-s 30 -p", p: appkit.Params{S: 6, MaxIter: 60, WorkScale: 560000}, bscale: 125},
		{paper: "-s 40 -p", p: appkit.Params{S: 7, MaxIter: 60, WorkScale: 700000}, bscale: 187},
		{paper: "-s 50 -p", p: appkit.Params{S: 8, MaxIter: 60, WorkScale: 1000000}, bscale: 244},
	},
	"miniFE": {
		{paper: "-nx 20 -ny 20 -nz 20", p: appkit.Params{NX: 20, NY: 20, NZ: 20, MaxIter: 40, WorkScale: 5400}, bscale: 1},
		{paper: "-nx 40 -ny 40 -nz 40", p: appkit.Params{NX: 40, NY: 40, NZ: 40, MaxIter: 40, WorkScale: 1260}, bscale: 1},
		{paper: "-nx 60 -ny 60 -nz 60", p: appkit.Params{NX: 60, NY: 60, NZ: 60, MaxIter: 40, WorkScale: 550}, bscale: 1},
	},
	"miniVite": {
		{paper: "-p 3 -l -n 128000", p: appkit.Params{NVerts: 8192, MaxIter: 20, WorkScale: 17000}, bscale: 15.6},
		{paper: "-p 3 -l -n 256000", p: appkit.Params{NVerts: 16384, MaxIter: 20, WorkScale: 17000}, bscale: 15.6},
		{paper: "-p 3 -l -n 512000", p: appkit.Params{NVerts: 32768, MaxIter: 20, WorkScale: 17000}, bscale: 15.6},
	},
}

// ProcCounts returns the process counts Table I prescribes for an app.
func ProcCounts(app string) []int {
	if app == "LULESH" {
		return []int{64, 512} // cube process counts only, as in the paper
	}
	return []int{64, 128, 256, 512}
}

// DefaultProcs is the paper's default scaling size.
const DefaultProcs = 64

// ResolveParams maps (app, input size) to runnable parameters and the
// BytesScale calibration. Config.Params overrides everything when set.
func ResolveParams(cfg Config) (appkit.Params, float64, error) {
	if cfg.Params.MaxIter != 0 {
		p := cfg.Params
		if p.WorkScale == 0 {
			p.WorkScale = 1
		}
		if p.Seed == 0 {
			p.Seed = appSeed
		}
		return p, 1, nil
	}
	rows, ok := tableI[cfg.App]
	if !ok {
		return appkit.Params{}, 0, fmt.Errorf("core: no Table I entry for %q", cfg.App)
	}
	if cfg.Input < Small || cfg.Input > Large {
		return appkit.Params{}, 0, fmt.Errorf("core: bad input size %v", cfg.Input)
	}
	r := rows[cfg.Input]
	p := r.p
	p.Seed = appSeed
	return p, r.bscale, nil
}

// TableIApps lists the paper's six proxy applications in Table I order —
// the default app set of every sweep (figures, campaigns, verification).
func TableIApps() []string {
	return []string{"AMG", "CoMD", "HPCCG", "LULESH", "miniFE", "miniVite"}
}

// TableI returns every (app, input) entry for printing and testing.
func TableI() []TableIEntry {
	var out []TableIEntry
	for _, app := range TableIApps() {
		rows := tableI[app]
		for i, r := range rows {
			out = append(out, TableIEntry{
				App:        app,
				Input:      InputSize(i),
				PaperInput: r.paper,
				Params:     r.p,
				BytesScale: r.bscale,
				ProcCounts: ProcCounts(app),
			})
		}
	}
	return out
}
