package core

import (
	"strings"
	"testing"

	"match/internal/apps/appkit"
)

// tinyParams returns a fast configuration for an app, suitable for the
// 8-rank integration matrix.
func tinyParams(app string) appkit.Params {
	switch app {
	case "AMG":
		return appkit.Params{NX: 4, NY: 4, NZ: 4, MaxIter: 8, WorkScale: 50}
	case "CoMD":
		return appkit.Params{NX: 6, NY: 6, NZ: 6, MaxIter: 8, WorkScale: 5}
	case "HPCCG":
		return appkit.Params{NX: 6, NY: 6, NZ: 6, MaxIter: 10, WorkScale: 20}
	case "LULESH":
		return appkit.Params{S: 4, MaxIter: 8, WorkScale: 10}
	case "miniFE":
		return appkit.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 10, WorkScale: 20}
	case "miniVite":
		return appkit.Params{NVerts: 512, MaxIter: 8, WorkScale: 10}
	}
	return appkit.Params{}
}

var allApps = []string{"AMG", "CoMD", "HPCCG", "LULESH", "miniFE", "miniVite"}

// The headline correctness property of the whole system: for every proxy
// application and every fault-tolerance design, a run that suffers an
// injected process failure recovers and produces a signature bitwise
// identical to the failure-free run.
func TestEveryAppEveryDesignRecoversExactly(t *testing.T) {
	for _, app := range allApps {
		app := app
		t.Run(app, func(t *testing.T) {
			params := tinyParams(app)
			params.CkptStride = 3
			base := Config{
				App:    app,
				Procs:  8,
				Nodes:  4,
				Params: params,
			}
			// Failure-free reference (REINIT has no steady-state impact).
			ref := base
			ref.Design = ReinitFTI
			refBd, err := Run(ref)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if refBd.Recoveries != 0 {
				t.Fatalf("reference run recovered %d times", refBd.Recoveries)
			}
			for _, d := range Designs() {
				d := d
				t.Run(d.String(), func(t *testing.T) {
					cfg := base
					cfg.Design = d
					cfg.InjectFault = true
					cfg.FaultSeed = 7
					bd, err := Run(cfg)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					if !bd.Completed {
						t.Fatal("run did not complete")
					}
					if bd.Recoveries != 1 {
						t.Fatalf("recoveries = %d, want 1", bd.Recoveries)
					}
					if bd.Signature != refBd.Signature {
						t.Fatalf("signature %v != failure-free %v: recovery corrupted the answer",
							bd.Signature, refBd.Signature)
					}
					if bd.Recovery <= 0 {
						t.Fatal("no recovery time recorded")
					}
				})
			}
		})
	}
}

// Without failures, all designs must produce the identical answer (they
// share the same deterministic problem instance).
func TestDesignsAgreeWithoutFailure(t *testing.T) {
	for _, app := range allApps {
		params := tinyParams(app)
		var sigs []float64
		for _, d := range Designs() {
			bd, err := Run(Config{App: app, Design: d, Procs: 8, Nodes: 4, Params: params})
			if err != nil {
				t.Fatalf("%s/%s: %v", app, d, err)
			}
			sigs = append(sigs, bd.Signature)
		}
		for i, s := range sigs {
			if s != sigs[0] {
				t.Fatalf("%s: %s disagrees with %s: %v", app, Designs()[i], Designs()[0], sigs)
			}
		}
	}
}

// Recovery-cost ordering must reproduce the paper's central finding —
// Reinit < ULFM < Restart — and place replication's rollback-free failover
// below all three.
func TestRecoveryOrdering(t *testing.T) {
	params := tinyParams("HPCCG")
	params.CkptStride = 3
	recov := map[Design]float64{}
	for _, d := range Designs() {
		cfg := Config{App: "HPCCG", Design: d, Procs: 8, Nodes: 4,
			Params: params, InjectFault: true, FaultSeed: 3}
		bd, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		recov[d] = bd.Recovery.Seconds()
	}
	if !(recov[ReinitFTI] < recov[UlfmFTI] && recov[UlfmFTI] < recov[RestartFTI]) {
		t.Fatalf("recovery ordering violated: reinit=%.3f ulfm=%.3f restart=%.3f",
			recov[ReinitFTI], recov[UlfmFTI], recov[RestartFTI])
	}
	if !(recov[ReplicaFTI] < recov[ReinitFTI]) {
		t.Fatalf("replica failover %.3f not below reinit %.3f",
			recov[ReplicaFTI], recov[ReinitFTI])
	}
}

// ULFM must slow down the application even without failures (the paper's
// first conclusion); Reinit must not.
func TestUlfmSteadyStateOverhead(t *testing.T) {
	params := tinyParams("HPCCG")
	times := map[Design]float64{}
	for _, d := range Designs() {
		bd, err := Run(Config{App: "HPCCG", Design: d, Procs: 8, Nodes: 4, Params: params})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		times[d] = bd.App.Seconds()
	}
	if times[UlfmFTI] <= times[RestartFTI] {
		t.Errorf("ULFM app time %.4f not above baseline %.4f", times[UlfmFTI], times[RestartFTI])
	}
	// Reinit within 2% of the restart baseline.
	if diff := times[ReinitFTI] - times[RestartFTI]; diff > 0.02*times[RestartFTI] {
		t.Errorf("Reinit app time %.4f deviates from baseline %.4f", times[ReinitFTI], times[RestartFTI])
	}
}

func TestResolveParamsTableI(t *testing.T) {
	for _, e := range TableI() {
		cfg := Config{App: e.App, Input: e.Input}
		p, scale, err := ResolveParams(cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", e.App, e.Input, err)
		}
		if p.MaxIter <= 0 || p.WorkScale <= 0 {
			t.Fatalf("%s/%s: bad params %+v", e.App, e.Input, p)
		}
		if scale < 1 {
			t.Fatalf("%s/%s: bytes scale %v < 1", e.App, e.Input, scale)
		}
		if p.Seed == 0 {
			t.Fatalf("%s/%s: unseeded", e.App, e.Input)
		}
	}
	if len(TableI()) != 18 { // 6 apps x 3 inputs
		t.Fatalf("Table I has %d rows, want 18", len(TableI()))
	}
}

func TestProcCounts(t *testing.T) {
	if got := ProcCounts("LULESH"); len(got) != 2 || got[0] != 64 || got[1] != 512 {
		t.Fatalf("LULESH proc counts %v (must be cubes only)", got)
	}
	if got := ProcCounts("AMG"); len(got) != 4 {
		t.Fatalf("AMG proc counts %v", got)
	}
}

func TestFigureConfigs(t *testing.T) {
	opts := SuiteOptions{Apps: []string{"HPCCG"}, Scales: []int{64, 128}}
	cfgs, err := FigureConfigs(5, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 2 scales x 4 designs, no fault.
	if len(cfgs) != 8 {
		t.Fatalf("fig5 configs = %d, want 8", len(cfgs))
	}
	for _, c := range cfgs {
		if c.InjectFault {
			t.Fatal("fig5 must not inject faults")
		}
	}
	cfgs, err = FigureConfigs(9, SuiteOptions{Apps: []string{"AMG"}})
	if err != nil {
		t.Fatal(err)
	}
	// 3 inputs x 4 designs with fault at the default scale.
	if len(cfgs) != 12 {
		t.Fatalf("fig9 configs = %d, want 12", len(cfgs))
	}
	for _, c := range cfgs {
		if !c.InjectFault || c.Procs != DefaultProcs {
			t.Fatalf("bad fig9 config %+v", c)
		}
	}
	if _, err := FigureConfigs(3, opts); err == nil {
		t.Fatal("figure 3 accepted")
	}
}

func TestRunAveragedAndReports(t *testing.T) {
	params := tinyParams("HPCCG")
	params.CkptStride = 3
	cfg := Config{App: "HPCCG", Design: ReinitFTI, Procs: 8, Nodes: 4,
		Params: params, InjectFault: true, FaultSeed: 11}
	bd, results, err := RunAveraged(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Config.FaultSeed == results[1].Config.FaultSeed {
		t.Fatal("reps reused the fault seed")
	}
	if bd.Total <= 0 {
		t.Fatal("empty average")
	}
	var sb strings.Builder
	WriteFigure(&sb, 7, results)
	if !strings.Contains(sb.String(), "HPCCG") || !strings.Contains(sb.String(), "recovery") {
		t.Fatalf("figure output malformed:\n%s", sb.String())
	}
	sb.Reset()
	WriteCSV(&sb, results)
	if lines := strings.Count(sb.String(), "\n"); lines != 3 {
		t.Fatalf("csv lines = %d, want 3", lines)
	}
	sb.Reset()
	WriteTableI(&sb)
	for _, app := range allApps {
		if !strings.Contains(sb.String(), app) {
			t.Fatalf("table I missing %s", app)
		}
	}
}

func TestComputeRatios(t *testing.T) {
	params := tinyParams("HPCCG")
	params.CkptStride = 3
	var results []Result
	for _, d := range Designs() {
		cfg := Config{App: "HPCCG", Design: d, Procs: 8, Nodes: 4,
			Params: params, InjectFault: true, FaultSeed: 3}
		bd, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		results = append(results, Result{Config: cfg, Breakdown: bd})
	}
	r := ComputeRatios(results)
	if r.Samples != 1 {
		t.Fatalf("samples = %d", r.Samples)
	}
	if r.UlfmOverReinitAvg <= 1 {
		t.Errorf("ULFM/Reinit = %.2f, want > 1", r.UlfmOverReinitAvg)
	}
	if r.RestartOverReinitAvg <= r.UlfmOverReinitAvg {
		t.Errorf("Restart/Reinit %.2f not above ULFM/Reinit %.2f",
			r.RestartOverReinitAvg, r.UlfmOverReinitAvg)
	}
	if r.ReinitOverReplicaAvg <= 1 {
		t.Errorf("Reinit/Replica = %.2f, want > 1 (failover must beat global restart)",
			r.ReinitOverReplicaAvg)
	}
	if r.ReplicaOverReinitTotalAvg <= 0 {
		t.Errorf("Replica/Reinit total = %.2f, want > 0", r.ReplicaOverReinitTotalAvg)
	}
	var sb strings.Builder
	r.Write(&sb)
	if !strings.Contains(sb.String(), "ULFM / Reinit") {
		t.Fatal("ratio report malformed")
	}
}
