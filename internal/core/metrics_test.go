package core

import (
	"strings"
	"testing"

	"match/internal/obs"
	"match/internal/trace"
)

// The metrics registry must be a pure observer: a metered run and an
// unmetered run of the same configuration produce byte-identical
// breakdowns on every design under a multi-failure schedule. Running with
// a full-detail trace recorder alongside additionally exercises the
// registry/trace cross-check — Run fails hard if the two observers
// counted different events, so a passing metered+traced run proves three
// independent accountings (registry, breakdown, spans) agree exactly.
func TestMetricsOffByteIdentity(t *testing.T) {
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			params := tinyParams("HPCCG")
			params.CkptStride = 3
			cfg := Config{App: "HPCCG", Design: d, Procs: 8, Nodes: 4,
				Params: params, Faults: 2, FaultSeed: 9}
			plain, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v unmetered: %v", d, err)
			}
			metered := cfg
			metered.Metrics = obs.New()
			metered.Trace = trace.New()
			metered.Trace.SetDetail(trace.DetailAll)
			got, err := Run(metered)
			if err != nil {
				t.Fatalf("%v metered: %v", d, err)
			}
			if got != plain {
				t.Errorf("%v: metering perturbed the run:\nunmetered %+v\nmetered   %+v", d, plain, got)
			}
			m := metered.Metrics
			for _, c := range []struct {
				name string
				c    obs.Counter
			}{
				{"events-fired", obs.CEventsFired},
				{"messages", obs.CMessages},
				{"msg-bytes", obs.CMsgBytes},
				{"collectives", obs.CCollectives},
				{"checkpoints", obs.CCheckpoints},
				{"injections", obs.CInjections},
				{"detections", obs.CDetections},
				{"recoveries", obs.CRecoveries},
			} {
				if m.Get(c.c) == 0 {
					t.Errorf("%v: counter %s is zero after a 2-failure run", d, c.name)
				}
			}
			if g := m.Gauge(obs.GHeapHighWater); g == 0 {
				t.Errorf("%v: heap high-water gauge never rose", d)
			}
			if d == ReplicaFTI && m.Get(obs.CFailovers) == 0 {
				t.Errorf("replica: no failovers counted in a 2-failure run")
			}
		})
	}
}

// One registry serves one Run: a second Run against a registry that
// already holds a previous run's counts must trip the reconciliation
// self-check (the write-time totals can no longer match the fresh
// breakdown). RunAveraged relies on this by giving every rep a fresh
// registry and merging afterwards.
func TestMetricsReconcileCatchesReuse(t *testing.T) {
	params := tinyParams("HPCCG")
	params.CkptStride = 3
	cfg := Config{App: "HPCCG", Design: UlfmFTI, Procs: 8, Nodes: 4,
		Params: params, InjectFault: true, FaultSeed: 9,
		Metrics: obs.New()}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("clean metered run: %v", err)
	}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("reconciliation accepted a dirty (reused) registry")
	}
	if !strings.Contains(err.Error(), "divergence") {
		t.Errorf("reuse error does not name the divergence: %v", err)
	}
}

// RunAveraged meters multi-rep cells (unlike tracing, which it rejects):
// each rep reconciles against its own fresh registry and the caller's
// registry receives the merged totals — the sum of the per-rep breakdown
// counts.
func TestMetricsAveragedMerge(t *testing.T) {
	params := tinyParams("HPCCG")
	params.CkptStride = 3
	cfg := Config{App: "HPCCG", Design: ReinitFTI, Procs: 8, Nodes: 4,
		Params: params, InjectFault: true, FaultSeed: 9,
		Metrics: obs.New()}
	_, results, err := RunAveraged(cfg, 3)
	if err != nil {
		t.Fatalf("metered RunAveraged: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d reps, want 3", len(results))
	}
	var msgs, recov int64
	for _, r := range results {
		msgs += r.Breakdown.Messages
		recov += int64(r.Breakdown.Recoveries)
	}
	if got := cfg.Metrics.Get(obs.CMessages); got != msgs {
		t.Errorf("merged messages = %d, want sum over reps %d", got, msgs)
	}
	if got := cfg.Metrics.Get(obs.CRecoveries); got != recov {
		t.Errorf("merged recoveries = %d, want sum over reps %d", got, recov)
	}
}
