package core

import (
	"testing"

	"match/internal/detect"
	"match/internal/reinit"
	"match/internal/simnet"
	"match/internal/ulfm"
)

// TestDetectorConformanceAcrossDesigns is the detection-axis contract: a
// table of detector configurations, run under every design on the same
// failure draw, asserting
//   - the Launcher strategy has exactly zero detection latency everywhere,
//   - a given Ring configuration yields the identical detection latency
//     for all four designs (the detector, not the design, owns it), and
//   - ring detection latency is monotonic in the heartbeat period.
func TestDetectorConformanceAcrossDesigns(t *testing.T) {
	base := Config{App: "HPCCG", Procs: 8, Nodes: 4, Input: Small, InjectFault: true, FaultSeed: 9}
	cases := []struct {
		name     string
		detector detect.Config
		// wantExact < 0 means "no single expected value"; >= 0 asserts
		// DetectLatency equals it for every design.
		wantExact simnet.Time
	}{
		{"launcher", detect.Config{Kind: detect.Launcher}, 0},
		{"ring-50ms", detect.Config{Kind: detect.Ring, HeartbeatPeriod: 50 * simnet.Millisecond}, 150 * simnet.Millisecond},
		{"ring-150ms", detect.Config{Kind: detect.Ring, HeartbeatPeriod: 150 * simnet.Millisecond}, 450 * simnet.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, d := range Designs() {
				cfg := base
				cfg.Design = d
				cfg.Detector = tc.detector
				bd, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s: %v", d, err)
				}
				if !bd.Completed || bd.Recoveries < 1 {
					t.Fatalf("%s: bad breakdown %+v", d, bd)
				}
				if bd.DetectLatency != tc.wantExact {
					t.Fatalf("%s: DetectLatency = %v, want %v (identical across designs)",
						d, bd.DetectLatency, tc.wantExact)
				}
			}
		})
	}
}

// TestRingPeriodMovesLatencyAndInterference is the acceptance bar of the
// detection subsystem: running the same design under a Ring detector at
// two heartbeat periods must change the reported detection latency AND the
// total overhead (the faster ring heartbeats more, stealing more CPU and
// NIC time), while leaving the computed answer untouched.
func TestRingPeriodMovesLatencyAndInterference(t *testing.T) {
	run := func(period simnet.Time) Breakdown {
		bd, err := Run(Config{
			App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4, Input: Small,
			InjectFault: true, FaultSeed: 9,
			Detector: detect.Config{Kind: detect.Ring, HeartbeatPeriod: period},
		})
		if err != nil {
			t.Fatalf("period %v: %v", period, err)
		}
		return bd
	}
	fast := run(25 * simnet.Millisecond)
	slow := run(150 * simnet.Millisecond)
	if fast.DetectLatency >= slow.DetectLatency {
		t.Fatalf("detection latency not monotonic in period: fast %v, slow %v",
			fast.DetectLatency, slow.DetectLatency)
	}
	if fast.Signature != slow.Signature {
		t.Fatalf("answer changed with the detector: %v vs %v", fast.Signature, slow.Signature)
	}
	// Interference: the fast ring must cost more in failure-free steady
	// state. Compare k=0 runs so recovery-time differences cannot mask it.
	base := func(period simnet.Time) simnet.Time {
		bd, err := Run(Config{
			App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4, Input: Small,
			Detector: detect.Config{Kind: detect.Ring, HeartbeatPeriod: period},
		})
		if err != nil {
			t.Fatalf("baseline period %v: %v", period, err)
		}
		return bd.Total
	}
	if fastT, slowT := base(25*simnet.Millisecond), base(150*simnet.Millisecond); fastT <= slowT {
		t.Fatalf("fast ring (total %v) not costlier than slow ring (total %v) in steady state", fastT, slowT)
	}
}

// TestDetectorPresetMatchesExplicit pins the refactoring invariant behind
// the calibrated numbers: each design's Preset detection is literally the
// shared implementation under the calibrated parameters, so spelling the
// preset out explicitly reproduces the default run byte-for-byte.
func TestDetectorPresetMatchesExplicit(t *testing.T) {
	base := Config{App: "HPCCG", Procs: 8, Nodes: 4, Input: Small, InjectFault: true, FaultSeed: 9}
	cases := []struct {
		design   Design
		explicit detect.Config
	}{
		{UlfmFTI, ulfm.Config{}.DetectPreset()},
		{ReinitFTI, reinit.Config{}.DetectPreset()},
		{RestartFTI, detect.Config{Kind: detect.Launcher}},
		{ReplicaFTI, detect.Config{Kind: detect.Launcher}},
	}
	for _, tc := range cases {
		def := base
		def.Design = tc.design
		want, err := Run(def)
		if err != nil {
			t.Fatalf("%s default: %v", tc.design, err)
		}
		exp := def
		exp.Detector = tc.explicit
		got, err := Run(exp)
		if err != nil {
			t.Fatalf("%s explicit: %v", tc.design, err)
		}
		if want != got {
			t.Fatalf("%s explicit preset diverged:\ndefault:  %+v\nexplicit: %+v", tc.design, want, got)
		}
	}
}

// TestRunRejectsInvalidDetector pins that validation happens before any
// simulation state exists, with a clear error.
func TestRunRejectsInvalidDetector(t *testing.T) {
	_, err := Run(Config{
		App: "HPCCG", Design: ReinitFTI, Procs: 8, Nodes: 4, Input: Small,
		Detector: detect.Config{Kind: detect.Ring, HeartbeatPeriod: 100 * simnet.Millisecond, DetectTimeout: 10 * simnet.Millisecond},
	})
	if err == nil {
		t.Fatal("Run accepted timeout < period")
	}
}

// TestIngressKnob pins the ingress-NIC gating satellite: the knob is off
// by default for every design, and switching it on changes replica
// timings (duplicated inbound streams start paying queueing delay) while
// never changing the computed answer.
func TestIngressKnob(t *testing.T) {
	off, err := Run(Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4,
		Input: Small, InjectFault: true, FaultSeed: 9})
	if err != nil {
		t.Fatalf("ingress off: %v", err)
	}
	on, err := Run(Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4,
		Input: Small, InjectFault: true, FaultSeed: 9, ModelIngress: true})
	if err != nil {
		t.Fatalf("ingress on: %v", err)
	}
	if on.Total <= off.Total {
		t.Fatalf("ingress modeling did not slow the replicated run: on %v <= off %v", on.Total, off.Total)
	}
	if on.Signature != off.Signature {
		t.Fatalf("ingress modeling changed the answer: %v vs %v", on.Signature, off.Signature)
	}
}
