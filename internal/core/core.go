// Package core is MATCH's measurement harness — the paper's primary
// contribution. It composes a proxy application with one of the four
// fault-tolerance designs (RESTART-FTI, REINIT-FTI, ULFM-FTI from the
// paper, plus the replication-based REPLICA-FTI extension the paper's
// §V-E invites), runs it on the simulated cluster at a Table I
// configuration with or without an injected process failure, and reports
// the execution-time breakdown the paper's figures plot: Application /
// Write Checkpoints / Recovery.
package core

import (
	"fmt"
	"strings"

	"match/internal/apps"
	"match/internal/apps/appkit"
	"match/internal/ckpt"
	"match/internal/detect"
	"match/internal/fault"
	"match/internal/fti"
	"match/internal/mpi"
	"match/internal/obs"
	"match/internal/reinit"
	"match/internal/replica"
	"match/internal/restart"
	"match/internal/simnet"
	"match/internal/storage"
	"match/internal/trace"
	"match/internal/ulfm"
)

// Design selects the fault-tolerance composition.
type Design int

// The three designs the paper evaluates plus the replication-based fourth.
const (
	RestartFTI Design = iota
	ReinitFTI
	UlfmFTI
	ReplicaFTI
)

func (d Design) String() string {
	switch d {
	case RestartFTI:
		return "RESTART-FTI"
	case ReinitFTI:
		return "REINIT-FTI"
	case UlfmFTI:
		return "ULFM-FTI"
	case ReplicaFTI:
		return "REPLICA-FTI"
	}
	return fmt.Sprintf("design(%d)", int(d))
}

// Designs lists all four in plotting order: the paper's three followed by
// the replication extension.
func Designs() []Design { return []Design{RestartFTI, ReinitFTI, UlfmFTI, ReplicaFTI} }

// ShortName returns the design's canonical CLI spelling ("replica").
func (d Design) ShortName() string {
	return strings.ToLower(strings.TrimSuffix(d.String(), "-FTI"))
}

// DesignNames returns the canonical CLI spellings in plotting order.
func DesignNames() []string {
	names := make([]string, 0, len(Designs()))
	for _, d := range Designs() {
		names = append(names, d.ShortName())
	}
	return names
}

// ParseDesign resolves a design name case-insensitively, accepting both
// the short form ("replica") and the full form ("REPLICA-FTI"). Unknown
// names get an error that lists every valid spelling.
func ParseDesign(name string) (Design, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	want = strings.TrimSuffix(want, "-fti")
	for _, d := range Designs() {
		if want == d.ShortName() {
			return d, nil
		}
	}
	return 0, fmt.Errorf("core: unknown design %q (valid: %s)", name, strings.Join(DesignNames(), ", "))
}

// InputSize is the paper's Small/Medium/Large problem selector.
type InputSize int

// Problem sizes of Table I.
const (
	Small InputSize = iota
	Medium
	Large
)

func (s InputSize) String() string {
	switch s {
	case Small:
		return "Small"
	case Medium:
		return "Medium"
	case Large:
		return "Large"
	}
	return fmt.Sprintf("input(%d)", int(s))
}

// InputSizes lists all three.
func InputSizes() []InputSize { return []InputSize{Small, Medium, Large} }

// Config describes one benchmark run.
type Config struct {
	App    string
	Design Design
	Procs  int // 64, 128, 256, 512 in the paper
	Nodes  int // 32 in the paper
	Input  InputSize

	InjectFault bool
	FaultSeed   int64
	FaultKind   fault.Kind
	// Faults is the campaign size: the number of failures injected per
	// run, drawn deterministically from FaultSeed. Zero with InjectFault
	// set means one (the paper's single-failure experiments); event 0 of a
	// k-failure schedule is always the legacy single-failure draw, so k=1
	// reproduces the calibrated results byte-for-byte.
	Faults int
	// Schedule, when non-nil, overrides the random draw entirely with an
	// explicit failure schedule (see fault.ParseSchedule for the DSL).
	Schedule *fault.Schedule

	FTILevel   fti.Level // default L1, as the paper benchmarks
	CkptStride int       // default 10, as the paper

	// CkptPolicy selects and tunes the checkpoint-placement strategy
	// shared by all four designs (internal/ckpt). The zero value is the
	// classic fixed-stride placement over CkptStride at FTILevel —
	// reproducing the calibrated numbers byte-for-byte. The multi-level,
	// replica-aware, and adaptive policies make placement a sweepable
	// axis: how much checkpoint overhead replication actually buys off is
	// the PartRePer trade-off the campaign harness plots.
	CkptPolicy ckpt.Config

	// Detector selects and tunes the failure-detection strategy shared by
	// all four designs (internal/detect). The zero value keeps each
	// design's calibrated preset: ULFM's ring heartbeat, Reinit's daemon
	// tree, and the instant SIGCHLD-style launcher for Restart/Replica —
	// reproducing the calibrated Figure 6/9 numbers byte-for-byte. An
	// explicit kind (detect.Ring, detect.Tree, detect.Launcher) runs every
	// design under the same detection model, making detection latency and
	// heartbeat interference a sweepable axis.
	Detector detect.Config

	// ModelIngress additionally serializes traffic on receiver NICs (see
	// simnet.Config.ModelIngress). Default off for every design, keeping
	// the seed's egress-only calibration; turning it on charges realistic
	// queueing delay for duplicated inbound streams (most visible under
	// ReplicaFTI, which used to force it on) at the cost of shifting all
	// calibrated timings slightly.
	ModelIngress bool

	// HotSpare enables FTHP-MPI-style background respawn for the replica
	// design: after a failover degrades a replica group, a fresh shadow is
	// spawned in the background (replica.Config.SpawnDelay plus a state
	// transfer sized by the rank's live FTI-protected footprint) and, once
	// live, restores the group to full degree — so the group absorbs a
	// second failure by failover, falling back to checkpoints only when
	// the second hit lands inside the respawn window. Ignored by the other
	// designs. Equivalent to setting Replica.HotSpare; spawn-cost knobs
	// live on Config.Replica.
	HotSpare bool

	// Overrides for ablation studies; zero values select the calibrated
	// defaults.
	Ulfm    ulfm.Config
	Reinit  reinit.Config
	Restart restart.Config
	Replica replica.Config

	// Params overrides the Table I parameter resolution entirely when
	// MaxIter is non-zero (used by custom applications).
	Params appkit.Params

	// Trace, when non-nil, records a per-rank event timeline of the run:
	// compute/checkpoint spans on every rank's track plus injector,
	// detector, and recovery activity (export with trace.WriteChrome, or
	// summarize with trace.WriteMetrics). The recorder only observes — it
	// never schedules or charges time — so a traced run is byte-identical
	// to an untraced one; Run additionally self-checks the recorded spans
	// against the returned Breakdown and fails hard on divergence. One
	// recorder serves exactly one Run: it is not safe to share across the
	// concurrent runs of a sweep (RunAveraged rejects Trace with reps > 1).
	// Observers are runtime wiring, not configuration: all three are
	// excluded from serialization and canonical hashing (CellKey).
	Trace *trace.Recorder `json:"-"`

	// Metrics, when non-nil, accumulates the run's operational counters
	// (messages, checkpoints per level, detections, failovers, respawns,
	// scheduler events — see internal/obs) into the registry. Like Trace it
	// is a pure observer: a metered run is byte-identical to an unmetered
	// one, and Run self-checks the registry against the returned Breakdown
	// (and, when both are attached, against the trace's span counts),
	// failing hard on divergence. Unlike Trace, a registry may be reused
	// across the reps of RunAveraged: each rep gets a fresh registry that is
	// merged in afterwards.
	Metrics *obs.Registry `json:"-"`

	// Log, when non-nil, receives structured lifecycle events (inject,
	// detect, failover, respawn, fallback, node-fail) as JSON lines with
	// virtual timestamps. Observer-only, like Trace and Metrics.
	Log *obs.Log `json:"-"`
}

// FaultCount is the number of failures this configuration injects: the
// explicit schedule's length when one is set, else Faults, else one when
// the legacy InjectFault switch is on.
func (c Config) FaultCount() int {
	switch {
	case c.Schedule != nil:
		return len(c.Schedule.Events)
	case c.Faults > 0:
		return c.Faults
	case c.InjectFault:
		return 1
	}
	return 0
}

// Breakdown is the measured result of one run: the stacked components of
// the paper's Figures 5/6/8/9 plus bookkeeping.
type Breakdown struct {
	Total    simnet.Time // wall time of the whole run (max over ranks)
	App      simnet.Time // Total - Ckpt - Recovery
	Ckpt     simnet.Time // time inside FTI_Checkpoint (rank 0)
	Recovery simnet.Time // MPI recovery time (framework-reported)
	// DetectLatency measures the detection share of Recovery: the sum over
	// confirmed failures of how long the active detector took from its
	// first observation of the death to confirmation. It is contained
	// within Recovery, not additional to it — do not add the two when
	// summing components. Exactly zero under the Launcher strategy (the
	// SIGCHLD chain is instant; any launcher reaction delay is recovery
	// logistics, not detection).
	DetectLatency simnet.Time
	// DetectedFailures counts the failures the detection subsystem
	// confirmed (teardown kills excluded) — the denominator for
	// per-failure detection latency. It can exceed Recoveries when one
	// repair absorbs several deaths, and FaultsInjected when a node
	// failure kills several processes.
	DetectedFailures int

	Signature  float64 // collective answer fingerprint (rank 0)
	Recoveries int
	// FaultsInjected counts the schedule events that actually fired. An
	// AfterRecoveries-gated event whose window never opens (e.g. under
	// rollback-free failover, which never revisits an iteration) can leave
	// this below the scheduled count.
	FaultsInjected int
	Completed      bool
	CkptCount      int
	CkptBytes      int64
	// CkptCountAt / CkptBytesAt split CkptCount/CkptBytes by the FTI level
	// each checkpoint was written at (index by fti.Level; slot 0 unused).
	// Under fixed placement only the configured level's slot is populated;
	// the multi-level policy spreads checkpoints across several.
	CkptCountAt [5]int
	CkptBytesAt [5]int64
	// CkptAvoided counts the placement points where the base fixed-stride
	// policy would have checkpointed but the active placement policy
	// skipped — the checkpoints replication (or a longer adaptive
	// interval) saved. Zero under fixed placement.
	CkptAvoided int
	Messages    int64
	NetBytes    int64
	// Respawns counts the hot spares that went live during the run (zero
	// unless Config.HotSpare); SpawnTime sums their spawn latency (dynamic
	// spawn plus state transfer). Spawning happens in the background, so
	// SpawnTime is a resource metric, not a component of Total.
	Respawns  int
	SpawnTime simnet.Time
	// LeakedEvents counts scheduler events still pending when the run's
	// event loop went quiescent — timers and deliveries that were scheduled
	// but never fired. A clean run drains to zero; a non-zero count means
	// some component kept re-arming past job completion (or the deadline
	// net tripped) and its virtual-time costs are missing from Total. The
	// trace recorder logs the earliest leaked timestamp alongside.
	LeakedEvents int
}

// recorder accumulates per-rank results across job incarnations.
type recorder struct {
	sigs        map[int]float64
	finish      map[int]simnet.Time
	ckptTime    map[int]simnet.Time
	ckptCount   int
	ckptBytes   int64
	ckptCountAt [5]int
	ckptBytesAt [5]int64
	// liveFTI holds each rank's most recent FTI instance; the hot-spare
	// runtime sizes its state transfers from the instance's live protected
	// footprint (all replicas of a rank register identical objects, so any
	// instance answers for the rank).
	liveFTI map[int]*fti.FTI
	errs    []error

	// Raw (un-deduplicated, all-rank) FTI sums across every instance that
	// ran, mirroring what the metrics registry counts at write time. The
	// Breakdown's checkpoint figures are rank-0 (and, for the replica
	// design, per-job-best) views, so reconciliation needs this independent
	// teardown-time total.
	rawCkptCount   int64
	rawCkptBytes   int64
	rawCkptCountAt [5]int64
	rawCkptBytesAt [5]int64
	rawRestores    int64
}

func newRecorder() *recorder {
	return &recorder{
		sigs:     make(map[int]float64),
		finish:   make(map[int]simnet.Time),
		ckptTime: make(map[int]simnet.Time),
		liveFTI:  make(map[int]*fti.FTI),
	}
}

// addFTIStats accumulates one rank-instance's FTI stats (the single-
// process-per-rank designs call it directly from runApp's defer).
func (rec *recorder) addFTIStats(rank int, st fti.Stats) {
	rec.ckptTime[rank] += st.CkptTime
	if rank == 0 {
		rec.ckptCount += st.CkptCount
		rec.ckptBytes += st.CkptBytes
		for l := range st.CkptCountAt {
			rec.ckptCountAt[l] += st.CkptCountAt[l]
			rec.ckptBytesAt[l] += st.CkptBytesAt[l]
		}
	}
}

// addRaw accumulates one instance's FTI stats into the raw all-instance
// sums (every instance of every rank, replicas not deduplicated).
func (rec *recorder) addRaw(st fti.Stats) {
	rec.rawCkptCount += int64(st.CkptCount)
	rec.rawCkptBytes += st.CkptBytes
	for l := range st.CkptCountAt {
		rec.rawCkptCountAt[l] += int64(st.CkptCountAt[l])
		rec.rawCkptBytesAt[l] += st.CkptBytesAt[l]
	}
	rec.rawRestores += int64(st.RecoverOps)
}

// Run executes one configuration to completion and returns its breakdown.
// It is safe to call concurrently (the sweep harness runs configurations on
// a worker pool): each run owns its cluster, storage, and injector.
func Run(cfg Config) (Breakdown, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 32
	}
	if cfg.Procs == 0 {
		cfg.Procs = 64
	}
	if cfg.FTILevel == 0 {
		cfg.FTILevel = fti.L1
	}
	if cfg.CkptStride == 0 {
		cfg.CkptStride = 10
	}
	factory, err := apps.Lookup(cfg.App)
	if err != nil {
		return Breakdown{}, err
	}
	params, scale, err := ResolveParams(cfg)
	if err != nil {
		return Breakdown{}, err
	}
	params.CkptStride = cfg.CkptStride

	// Resolve the detection strategy against the design's calibrated
	// preset and reject configurations that could never detect, before any
	// simulation state exists.
	dcfg, err := resolveDetector(cfg)
	if err != nil {
		return Breakdown{}, err
	}
	cfg.Ulfm.Detect = dcfg
	cfg.Reinit.Detect = dcfg
	cfg.Restart.Detect = dcfg
	cfg.Replica.Detect = dcfg

	// Resolve and validate the checkpoint-placement policy the same way —
	// a bad placement configuration fails loudly here, not ten simulated
	// minutes in.
	pcfg := ckpt.Resolve(cfg.CkptPolicy, cfg.CkptStride)
	if err := pcfg.Validate(); err != nil {
		return Breakdown{}, err
	}

	// Ingress-NIC serialization is one knob for all designs (default off,
	// matching the seed's egress-only calibration). ReplicaFTI historically
	// forced it on; see the README's detection/calibration notes.
	cluster := simnet.NewCluster(simnet.Config{Nodes: cfg.Nodes, ModelIngress: cfg.ModelIngress})
	cluster.Scheduler().SetDeadline(200000 * simnet.Second) // deadlock net
	cluster.SetTracer(cfg.Trace)
	cluster.SetMetrics(cfg.Metrics)
	cluster.SetLog(cfg.Log)
	cfg.Metrics.EnsureRanks(cfg.Procs)
	st := storage.New(cluster, storage.Config{BytesScale: scale})

	var sched fault.Schedule
	k := cfg.FaultCount()
	switch {
	case cfg.Schedule != nil:
		sched = *cfg.Schedule
		if err := validateSchedule(sched, cfg, params.MaxIter); err != nil {
			return Breakdown{}, err
		}
	case k > 0 && cfg.Design == ReplicaFTI:
		// Same (rank, iteration) draws as the other designs for the same
		// seed, plus which replica of each target rank dies.
		lay := replica.NewLayout(cfg.Procs, cfg.Nodes, cfg.Replica)
		sched = fault.NewReplicatedSchedule(cfg.FaultSeed, k, cfg.Procs, params.MaxIter, cfg.FaultKind, lay.DegreeOf)
	case k > 0:
		sched = fault.NewSchedule(cfg.FaultSeed, k, cfg.Procs, params.MaxIter, cfg.FaultKind)
	}
	inj := fault.NewScheduleInjector(sched)

	// The placement planner is shared by every rank across incarnations,
	// like the injector: each runtime feeds it the recovery count it
	// re-arms policies on (and, for the replica design, the live group
	// degree the replica-aware policy consults).
	planner, err := ckpt.NewPlanner(pcfg, params.MaxIter, k)
	if err != nil {
		return Breakdown{}, err
	}
	planner.Trace = cfg.Trace
	planner.Now = cluster.Now
	planner.Metrics = cfg.Metrics

	// The execution id only needs to be stable across the incarnations of
	// this one run (each run owns its cluster and storage), so it is derived
	// from the configuration rather than a process-wide counter — which
	// keeps Run free of global state and safe to call concurrently.
	execID := fmt.Sprintf("%s-%s-p%d-%s-k%d-s%d", cfg.App, cfg.Design, cfg.Procs, cfg.Input, k, cfg.FaultSeed)
	rec := newRecorder()

	// runApp is the shared resilient main: FTI + the Figure-1 loop.
	// record receives the rank's FTI stats when it stops running (normally
	// or by teardown); designs that run one process per rank accumulate
	// directly, while the replica design deduplicates across the replicas
	// of a rank first.
	runApp := func(r *mpi.Rank, world *mpi.Comm, record func(rank int, st fti.Stats)) error {
		f, ferr := fti.Init(fti.Config{
			Level:      cfg.FTILevel,
			ExecID:     execID,
			BytesScale: scale,
		}, r, world, st)
		if ferr != nil {
			return ferr
		}
		rank := r.Rank(world)
		rec.liveFTI[rank] = f
		defer func() {
			rec.addRaw(f.Stats)
			record(rank, f.Stats)
		}()
		ctx := &appkit.Context{R: r, World: world, FTI: f, Inject: inj, Params: params,
			Ckpt: planner.Policy()}
		sig, aerr := appkit.RunMainLoop(ctx, factory())
		if aerr != nil {
			return aerr
		}
		rec.sigs[rank] = sig
		rec.finish[rank] = r.Now()
		// Mirror the finish-map write exactly: Totals takes the last
		// CatFinish write per rank, so emission order must match map
		// assignment order (it does — the simulation is single-threaded).
		if tr := cfg.Trace; tr.Wants(trace.CatFinish) {
			var rep int32
			if world.Replicated() {
				rep = int32(world.ReplicaIndexOf(r.Process().GID()))
			}
			tr.Emit(trace.Span{Cat: trace.CatFinish, Rank: int32(rank),
				Replica: rep, Job: tr.JobOf(r.Job()), Start: int64(r.Now())})
		}
		return nil
	}

	var bd Breakdown
	switch cfg.Design {
	case RestartFTI:
		err = runRestart(cfg, cluster, rec, runApp, inj, planner, scale, &bd)
	case ReinitFTI:
		err = runReinit(cfg, cluster, rec, runApp, inj, planner, scale, &bd)
	case UlfmFTI:
		err = runUlfm(cfg, cluster, rec, runApp, inj, planner, scale, &bd)
	case ReplicaFTI:
		err = runReplica(cfg, cluster, rec, runApp, inj, planner, scale, &bd)
	default:
		return Breakdown{}, fmt.Errorf("core: unknown design %v", cfg.Design)
	}
	if err != nil {
		return bd, err
	}

	// A drained scheduler is the quiescence invariant; pending events after
	// Run mean some component's virtual-time costs never landed. Count them
	// (cheap queue scan, traced or not) so reports can surface the leak.
	if n, at := cluster.Scheduler().Leaked(); n > 0 {
		bd.LeakedEvents = n
		cfg.Metrics.Add(obs.CLeakedEvents, int64(n))
		if tr := cfg.Trace; tr.Wants(trace.CatLeak) {
			tr.Emit(trace.Span{Cat: trace.CatLeak, Rank: -1, Start: int64(at), Aux: int64(n)})
		}
	}

	for _, t := range rec.finish {
		if t > bd.Total {
			bd.Total = t
		}
	}
	bd.Ckpt = rec.ckptTime[0]
	bd.App = bd.Total - bd.Ckpt - bd.Recovery
	bd.FaultsInjected = inj.FiredCount()
	bd.Signature = rec.sigs[0]
	bd.Completed = len(rec.sigs) == cfg.Procs
	bd.CkptCount = rec.ckptCount
	bd.CkptBytes = rec.ckptBytes
	bd.CkptCountAt = rec.ckptCountAt
	bd.CkptBytesAt = rec.ckptBytesAt
	bd.CkptAvoided = planner.Avoided()
	if !bd.Completed {
		return bd, fmt.Errorf("core: only %d/%d ranks completed (%v)", len(rec.sigs), cfg.Procs, firstErr(rec.errs))
	}
	for r, s := range rec.sigs {
		if s != rec.sigs[0] {
			return bd, fmt.Errorf("core: rank %d signature %v != rank 0 signature %v", r, s, rec.sigs[0])
		}
	}
	// Self-check: the trace's own phase accounting must reproduce the
	// breakdown exactly. A divergence means an instrumentation point
	// drifted from the measurement it mirrors — fail the run rather than
	// report a timeline that disagrees with the numbers.
	if tr := cfg.Trace; tr.Enabled() {
		if rerr := tr.Reconcile(TraceTotalsOf(bd), cfg.Design == ReplicaFTI); rerr != nil {
			return bd, fmt.Errorf("core: %w", rerr)
		}
	}
	// The same discipline for the metrics registry: its write-time counts
	// must agree exactly with the teardown-time accounting the Breakdown
	// (and the recorder's raw FTI sums) arrived at independently — and, when
	// a trace recorder ran alongside, with the span counts it captured.
	if m := cfg.Metrics; m.Enabled() {
		if rerr := m.Reconcile(obs.Expect{
			Messages:     bd.Messages,
			MsgBytes:     bd.NetBytes,
			Injections:   int64(bd.FaultsInjected),
			Detections:   int64(bd.DetectedFailures),
			Recoveries:   int64(bd.Recoveries),
			Respawns:     int64(bd.Respawns),
			PolicyAvoids: int64(bd.CkptAvoided),
			LeakedEvents: int64(bd.LeakedEvents),
			Checkpoints:  rec.rawCkptCount,
			CkptBytes:    rec.rawCkptBytes,
			CkptCountAt:  rec.rawCkptCountAt,
			CkptBytesAt:  rec.rawCkptBytesAt,
			Restores:     rec.rawRestores,
		}); rerr != nil {
			return bd, fmt.Errorf("core: %w", rerr)
		}
		if tr := cfg.Trace; tr.Enabled() {
			if rerr := metricsTraceCrossCheck(m, tr); rerr != nil {
				return bd, fmt.Errorf("core: %w", rerr)
			}
		}
	}
	return bd, nil
}

// metricsTraceCrossCheck verifies that the metrics registry and the trace
// recorder — two independent observers of the same run — counted the same
// discrete events. Detail-gated categories (sends, collectives, dedup
// drops, heartbeats) participate only when the recorder's detail mask
// captured them.
func metricsTraceCrossCheck(m *obs.Registry, tr *trace.Recorder) error {
	spans := make(map[trace.Cat]int64)
	var respawns, aborted int64
	for _, s := range tr.Spans() {
		spans[s.Cat]++
		if s.Cat == trace.CatSpawn {
			if s.Level == 0 {
				respawns++
			} else {
				aborted++
			}
		}
	}
	var diffs []string
	check := func(name string, got int64, cat trace.Cat, want int64) {
		if !tr.Wants(cat) {
			return
		}
		if got != want {
			diffs = append(diffs, fmt.Sprintf("%s: registry %d != trace %d", name, got, want))
		}
	}
	check("injections", m.Get(obs.CInjections), trace.CatInject, spans[trace.CatInject])
	check("node-failures", m.Get(obs.CNodeFailures), trace.CatNodeFail, spans[trace.CatNodeFail])
	check("detections", m.Get(obs.CDetections), trace.CatDetect, spans[trace.CatDetect])
	check("recoveries", m.Get(obs.CRecoveries), trace.CatRecovery, spans[trace.CatRecovery])
	check("failovers", m.Get(obs.CFailovers), trace.CatFailover, spans[trace.CatFailover])
	check("absorbs", m.Get(obs.CAbsorbs), trace.CatAbsorb, spans[trace.CatAbsorb])
	check("fallbacks", m.Get(obs.CFallbacks), trace.CatFallback, spans[trace.CatFallback])
	check("repairs", m.Get(obs.CRepairs), trace.CatRepair, spans[trace.CatRepair])
	check("respawns", m.Get(obs.CRespawns), trace.CatSpawn, respawns)
	check("respawns-aborted", m.Get(obs.CRespawnsAborted), trace.CatSpawn, aborted)
	check("policy-arms", m.Get(obs.CPolicyArms), trace.CatPolicyArm, spans[trace.CatPolicyArm])
	check("policy-avoids", m.Get(obs.CPolicyAvoids), trace.CatPolicyAvoid, spans[trace.CatPolicyAvoid])
	check("checkpoints", m.Get(obs.CCheckpoints), trace.CatCkpt, spans[trace.CatCkpt])
	check("restores", m.Get(obs.CRestores), trace.CatRestore, spans[trace.CatRestore])
	check("messages", m.Get(obs.CMessages), trace.CatSend, spans[trace.CatSend])
	check("collectives", m.Get(obs.CCollectives), trace.CatCollective, spans[trace.CatCollective])
	check("dedup-drops", m.Get(obs.CDedupDrops), trace.CatDedup, spans[trace.CatDedup])
	check("heartbeats", m.Get(obs.CHeartbeats), trace.CatHeartbeat, spans[trace.CatHeartbeat])
	if diffs != nil {
		return fmt.Errorf("obs: registry/trace divergence: %s", strings.Join(diffs, "; "))
	}
	return nil
}

// TraceTotalsOf converts a Breakdown's phase components into the trace
// package's totals form — the reference side of trace.Reconcile and
// trace.WriteMetrics. Pass dedupCkpt = (Design == ReplicaFTI) wherever the
// trace side is recomputed: replicated runs keep the furthest replica's
// checkpoint time per rank rather than the sum.
func TraceTotalsOf(bd Breakdown) trace.Totals {
	return trace.Totals{
		Total:            int64(bd.Total),
		App:              int64(bd.App),
		Ckpt:             int64(bd.Ckpt),
		Recovery:         int64(bd.Recovery),
		DetectLatency:    int64(bd.DetectLatency),
		DetectedFailures: bd.DetectedFailures,
	}
}

// ResolvedDetector reports the detection configuration a Run of cfg will
// actually use: cfg.Detector merged with the design's calibrated preset
// (e.g. the ULFM ring parameters for a default ULFM run). Reporting code
// uses it to label measurements with the real strategy instead of
// "preset".
func ResolvedDetector(cfg Config) (detect.Config, error) { return resolveDetector(cfg) }

// ResolvedCkptPolicy reports the checkpoint-placement configuration a Run
// of cfg will actually use: cfg.CkptPolicy with its zero fields filled
// (stride from CkptStride, kind defaults), validated. Reporting code uses
// it to label measurements with the real placement parameters.
func ResolvedCkptPolicy(cfg Config) (ckpt.Config, error) {
	pcfg := ckpt.Resolve(cfg.CkptPolicy, cfg.CkptStride)
	if err := pcfg.Validate(); err != nil {
		return ckpt.Config{}, err
	}
	return pcfg, nil
}

// resolveDetector merges cfg.Detector with the design's calibrated preset
// and validates the result (e.g. rejecting zero-period ring detectors and
// timeouts shorter than the heartbeat period).
func resolveDetector(cfg Config) (detect.Config, error) {
	var preset detect.Config
	switch cfg.Design {
	case UlfmFTI:
		preset = cfg.Ulfm.DetectPreset()
	case ReinitFTI:
		preset = cfg.Reinit.DetectPreset()
	case RestartFTI:
		preset = cfg.Restart.DetectPreset()
	case ReplicaFTI:
		preset = cfg.Replica.DetectPreset()
	}
	d := detect.Resolve(cfg.Detector, preset)
	if err := d.Validate(); err != nil {
		return detect.Config{}, err
	}
	return d, nil
}

// validateSchedule rejects explicit schedule events that could never fire
// — a silent no-op failure would report a failure-free run as a campaign.
func validateSchedule(s fault.Schedule, cfg Config, maxIter int) error {
	degreeOf := func(int) int { return 1 }
	if cfg.Design == ReplicaFTI {
		degreeOf = replica.NewLayout(cfg.Procs, cfg.Nodes, cfg.Replica).DegreeOf
	}
	for i, ev := range s.Events {
		if ev.TargetRank < 0 || ev.TargetRank >= cfg.Procs {
			return fmt.Errorf("core: schedule event %d (%s) targets rank %d, outside 0..%d",
				i, ev, ev.TargetRank, cfg.Procs-1)
		}
		if ev.TargetIter < 0 || ev.TargetIter >= maxIter {
			return fmt.Errorf("core: schedule event %d (%s) targets iteration %d, outside 0..%d (%s main loop)",
				i, ev, ev.TargetIter, maxIter-1, cfg.App)
		}
		// Unreplicated designs ignore the replica selector (the injector
		// matches any), so only the replica design constrains it.
		if cfg.Design == ReplicaFTI && ev.TargetReplica >= degreeOf(ev.TargetRank) {
			return fmt.Errorf("core: schedule event %d (%s) targets replica %d of rank %d, which has degree %d",
				i, ev, ev.TargetReplica, ev.TargetRank, degreeOf(ev.TargetRank))
		}
	}
	return nil
}

func firstErr(errs []error) error {
	if len(errs) == 0 {
		return nil
	}
	return errs[0]
}

func runRestart(cfg Config, cluster *simnet.Cluster, rec *recorder,
	runApp func(*mpi.Rank, *mpi.Comm, func(int, fti.Stats)) error, inj *fault.Injector,
	planner *ckpt.Planner, scale float64, bd *Breakdown) error {
	rcfg := cfg.Restart
	rcfg.OnLaunch = func(j *mpi.Job) { j.BytesScale = scale }
	sup := restart.Supervise(cluster, rcfg, cfg.Procs, 0, func(r *mpi.Rank) {
		if err := runApp(r, r.Job().World(), rec.addFTIStats); err != nil {
			// Teardown-induced errors are expected on doomed incarnations.
			rec.errs = append(rec.errs, err)
		}
	})
	// AfterRecoveries-gated events arm once the launcher has restarted the
	// job that many times; the placement planner re-arms its policy on the
	// same count.
	inj.Recoveries = func() int { return len(sup.Recoveries) }
	planner.Epoch = inj.Recoveries
	cluster.Run()
	for _, rcv := range sup.Recoveries {
		bd.Recovery += rcv.Duration()
		if m := cluster.Metrics(); m != nil {
			m.Inc(obs.CRecoveries)
			m.Observe(obs.HRecoveryNs, int64(rcv.Duration()))
		}
		if tr := cfg.Trace; tr.Wants(trace.CatRecovery) {
			tr.Emit(trace.Span{Cat: trace.CatRecovery, Rank: int32(rcv.FailedRanks[0]),
				Start: int64(rcv.FailedAt), Dur: int64(rcv.Duration())})
		}
	}
	bd.Recoveries = len(sup.Recoveries)
	bd.DetectLatency, bd.DetectedFailures = detect.Totals(sup.Detectors...)
	for _, j := range sup.Jobs {
		bd.Messages += j.Stats.Messages
		bd.NetBytes += j.Stats.Bytes
	}
	return nil
}

func runReinit(cfg Config, cluster *simnet.Cluster, rec *recorder,
	runApp func(*mpi.Rank, *mpi.Comm, func(int, fti.Stats)) error, inj *fault.Injector,
	planner *ckpt.Planner, scale float64, bd *Breakdown) error {
	var rt *reinit.Runtime
	job := mpi.Launch(cluster, cfg.Procs, 0, func(r *mpi.Rank) {
		if err := rt.Run(r); err != nil {
			rec.errs = append(rec.errs, err)
		}
	})
	job.BytesScale = scale
	rt = reinit.NewRuntime(job, cfg.Reinit, func(r *mpi.Rank, state reinit.State) error {
		return runApp(r, rt.World(), rec.addFTIStats)
	})
	inj.Recoveries = func() int { return len(rt.Recoveries) }
	planner.Epoch = inj.Recoveries
	cluster.Run()
	rt.Stop()
	rec.errs = append(rec.errs, rt.Errs...)
	for _, rcv := range rt.Recoveries {
		bd.Recovery += rcv.Duration()
		if m := cluster.Metrics(); m != nil {
			m.Inc(obs.CRecoveries)
			m.Observe(obs.HRecoveryNs, int64(rcv.Duration()))
		}
		if tr := cfg.Trace; tr.Wants(trace.CatRecovery) {
			tr.Emit(trace.Span{Cat: trace.CatRecovery, Rank: int32(rcv.FailedRank),
				Start: int64(rcv.FailedAt), Dur: int64(rcv.Duration())})
		}
	}
	bd.Recoveries = len(rt.Recoveries)
	bd.DetectLatency, bd.DetectedFailures = detect.Totals(rt.Detector())
	bd.Messages = job.Stats.Messages
	bd.NetBytes = job.Stats.Bytes
	return nil
}

func runUlfm(cfg Config, cluster *simnet.Cluster, rec *recorder,
	runApp func(*mpi.Rank, *mpi.Comm, func(int, fti.Stats)) error, inj *fault.Injector,
	planner *ckpt.Planner, scale float64, bd *Breakdown) error {
	var rt *ulfm.Runtime
	job := mpi.Launch(cluster, cfg.Procs, 0, func(r *mpi.Rank) {
		if err := rt.RunResilient(r); err != nil {
			rec.errs = append(rec.errs, err)
		}
	})
	job.BytesScale = scale
	rt = ulfm.NewRuntime(job, cfg.Ulfm, func(r *mpi.Rank, world *mpi.Comm, restarted bool) error {
		return runApp(r, world, rec.addFTIStats)
	})
	inj.Recoveries = func() int { return len(rt.Recoveries) }
	planner.Epoch = inj.Recoveries
	cluster.Run()
	rt.Stop()
	rec.errs = append(rec.errs, rt.Errs...)
	for _, rcv := range rt.Recoveries {
		bd.Recovery += rcv.Duration()
		if m := cluster.Metrics(); m != nil {
			m.Inc(obs.CRecoveries)
			m.Observe(obs.HRecoveryNs, int64(rcv.Duration()))
		}
		if tr := cfg.Trace; tr.Wants(trace.CatRecovery) {
			rank := int32(-1)
			if len(rcv.FailedRanks) > 0 {
				rank = int32(rcv.FailedRanks[0])
			}
			tr.Emit(trace.Span{Cat: trace.CatRecovery, Rank: rank,
				Start: int64(rcv.FailedAt), Dur: int64(rcv.Duration()),
				Aux: int64(len(rcv.FailedRanks))})
		}
	}
	bd.Recoveries = len(rt.Recoveries)
	bd.DetectLatency, bd.DetectedFailures = detect.Totals(rt.Detector())
	bd.Messages = job.Stats.Messages
	bd.NetBytes = job.Stats.Bytes
	return nil
}

func runReplica(cfg Config, cluster *simnet.Cluster, rec *recorder,
	runApp func(*mpi.Rank, *mpi.Comm, func(int, fti.Stats)) error, inj *fault.Injector,
	planner *ckpt.Planner, scale float64, bd *Breakdown) error {
	rcfg := cfg.Replica
	rcfg.OnLaunch = func(j *mpi.Job) { j.BytesScale = scale }
	rcfg.HotSpare = rcfg.HotSpare || cfg.HotSpare
	// Hot-spare state transfers are sized by the rank's live protected
	// footprint (the data a survivor actually clones onto the spare).
	rcfg.StateBytes = func(rank int) int64 {
		if f := rec.liveFTI[rank]; f != nil {
			return f.ProtectedBytes()
		}
		return 0
	}
	// All replicas of a rank run the identical checkpoints, so their FTI
	// stats must be deduplicated, not summed: per incarnation and rank,
	// keep the stats of the replica that got furthest (the one that
	// finished, or ran longest before dying), then accumulate across
	// incarnations like the restart design does.
	perJob := make(map[*mpi.Job]map[int]fti.Stats)
	sup := replica.Supervise(cluster, rcfg, cfg.Procs, func(r *mpi.Rank, world *mpi.Comm, idx int) {
		job := r.Job()
		if err := runApp(r, world, func(rank int, st fti.Stats) {
			best := perJob[job]
			if best == nil {
				best = make(map[int]fti.Stats)
				perJob[job] = best
			}
			if st.CkptTime >= best[rank].CkptTime {
				best[rank] = st
			}
		}); err != nil {
			// Teardown-induced errors are expected on doomed incarnations.
			rec.errs = append(rec.errs, err)
		}
	})
	inj.Recoveries = func() int { return len(sup.Recoveries) }
	// A fired kill is absorbed — the executing victim survives as its
	// lockstep spare — when the rank has a live hot spare; a kill inside
	// the respawn window falls through to the normal death and exhausts
	// the group.
	inj.Redirect = func(r *mpi.Rank, comm *mpi.Comm, _ fault.Event) bool {
		return sup.AbsorbFailure(r, comm)
	}
	// The planner re-arms on fallback relaunches and, through the live
	// degree feed, lets the replica-aware policy see a group degrade the
	// moment a failover prunes it — and recover once a spare goes live.
	planner.Epoch = inj.Recoveries
	planner.Degree = sup.MinLiveDegree
	cluster.Run()
	for _, j := range sup.Jobs {
		for rank := 0; rank < cfg.Procs; rank++ {
			rec.addFTIStats(rank, perJob[j][rank])
		}
	}
	for _, rcv := range sup.Recoveries {
		bd.Recovery += rcv.Duration()
		if m := cluster.Metrics(); m != nil {
			m.Inc(obs.CRecoveries)
			m.Observe(obs.HRecoveryNs, int64(rcv.Duration()))
		}
		if tr := cfg.Trace; tr.Wants(trace.CatRecovery) {
			tr.Emit(trace.Span{Cat: trace.CatRecovery, Rank: int32(rcv.Rank),
				Replica: int32(rcv.Replica), Level: int32(rcv.Kind),
				Start: int64(rcv.FailedAt), Dur: int64(rcv.Duration())})
		}
	}
	bd.Recoveries = len(sup.Recoveries)
	bd.DetectLatency, bd.DetectedFailures = detect.Totals(sup.Detectors...)
	bd.Respawns = sup.Respawns()
	bd.SpawnTime = sup.SpawnTime()
	for _, j := range sup.Jobs {
		bd.Messages += j.Stats.Messages
		bd.NetBytes += j.Stats.Bytes
	}
	if sup.GaveUp {
		return fmt.Errorf("replica: gave up after %d relaunches", sup.Relaunches())
	}
	return nil
}
