package core

import (
	"strings"
	"testing"

	"match/internal/ckpt"
	"match/internal/fault"
	"match/internal/replica"
	"match/internal/simnet"
)

// doubleHit is an explicit schedule that kills one replica of a rank and
// later the other: the repeat-failure scenario hot-spare respawn exists
// for. The second event targets the survivor of the first.
func doubleHit(t *testing.T) *fault.Schedule {
	t.Helper()
	sched, err := fault.ParseSchedule("5@20:replica=0,5@45:replica=1")
	if err != nil {
		t.Fatal(err)
	}
	return &sched
}

// A second failure on a degraded group lands after the respawn window:
// with hot-spare the live spare absorbs it by failover; without, the group
// is exhausted and the run pays a checkpoint-fallback relaunch. Both
// recover to the failure-free answer.
func TestHotSpareSecondFailureFailsOverNotFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("three-run repeat-failure matrix")
	}
	ref, err := Run(Config{App: "HPCCG", Design: ReinitFTI, Procs: 8, Nodes: 4, Input: Small})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	base := Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4, Input: Small,
		Schedule: doubleHit(t)}

	with := base
	with.HotSpare = true
	bdWith, err := Run(with)
	if err != nil {
		t.Fatalf("hot-spare run: %v", err)
	}
	if bdWith.Signature != ref.Signature {
		t.Fatalf("hot-spare signature %v != failure-free %v", bdWith.Signature, ref.Signature)
	}
	if bdWith.Recoveries != 2 {
		t.Fatalf("hot-spare recoveries = %d, want 2 failovers", bdWith.Recoveries)
	}
	if bdWith.Respawns == 0 || bdWith.SpawnTime == 0 {
		t.Fatalf("respawns = %d, spawn time = %v; want both nonzero", bdWith.Respawns, bdWith.SpawnTime)
	}
	// Two failovers cost tens of milliseconds; a fallback relaunch costs
	// seconds. The margin separates the paths unambiguously.
	if bdWith.Recovery >= simnet.Second {
		t.Fatalf("hot-spare recovery = %v, smells like a relaunch (want failover-scale)", bdWith.Recovery)
	}

	bdWithout, err := Run(base)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if bdWithout.Signature != ref.Signature {
		t.Fatalf("baseline signature %v != failure-free %v", bdWithout.Signature, ref.Signature)
	}
	if bdWithout.Respawns != 0 || bdWithout.SpawnTime != 0 {
		t.Fatalf("baseline reported respawns = %d, spawn time = %v; want zero with hot-spare off",
			bdWithout.Respawns, bdWithout.SpawnTime)
	}
	if bdWithout.Recovery < simnet.Second {
		t.Fatalf("baseline recovery = %v, want a relaunch-scale fallback (group exhausted)", bdWithout.Recovery)
	}
}

// The same double hit with a spawn delay longer than the run keeps the
// second failure inside the respawn window: the spare is not yet live, so
// the group exhausts and the checkpoint fallback runs even with hot-spare
// enabled.
func TestHotSpareRespawnWindowFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size fallback run")
	}
	cfg := Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4, Input: Small,
		Schedule: doubleHit(t), HotSpare: true,
		Replica: replica.Config{SpawnDelay: 3600 * simnet.Second}}
	bd, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if bd.Respawns != 0 || bd.SpawnTime != 0 {
		t.Fatalf("respawns = %d, spawn time = %v; the spare must not go live inside the window",
			bd.Respawns, bd.SpawnTime)
	}
	if bd.Recovery < simnet.Second {
		t.Fatalf("recovery = %v, want a relaunch-scale fallback (second hit inside the window)", bd.Recovery)
	}
	if !bd.Completed {
		t.Fatal("run did not complete after the fallback")
	}
}

// Once a spare restores full degree, the replica-aware placement policy
// must re-arm back to stretched strides: the run avoids more checkpoints
// than the same failure without a spare, which stays degraded (base
// stride) to the end.
func TestHotSpareReplicaAwareRearmsToStretched(t *testing.T) {
	if testing.Short() {
		t.Skip("two-run placement comparison")
	}
	sched, err := fault.ParseSchedule("5@20:replica=0")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{App: "HPCCG", Design: ReplicaFTI, Procs: 8, Nodes: 4, Input: Small,
		Schedule:   &sched,
		CkptPolicy: ckpt.Config{Kind: ckpt.ReplicaAware}}
	with := base
	with.HotSpare = true
	bdWith, err := Run(with)
	if err != nil {
		t.Fatalf("hot-spare run: %v", err)
	}
	bdWithout, err := Run(base)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if bdWith.CkptAvoided <= bdWithout.CkptAvoided {
		t.Fatalf("avoided with spare = %d, without = %d; restoring full degree must resume the stretched stride",
			bdWith.CkptAvoided, bdWithout.CkptAvoided)
	}
	if bdWith.CkptCount >= bdWithout.CkptCount {
		t.Fatalf("ckpts with spare = %d, without = %d; want fewer once protection returns",
			bdWith.CkptCount, bdWithout.CkptCount)
	}
}

// The campaign hot-spare axis doubles only the replica design's cells, and
// HotSpareCrossovers splits a swept result set into per-variant crossovers
// that share the unreplicated designs.
func TestCampaignHotSpareAxis(t *testing.T) {
	opts := CampaignOptions{Apps: []string{"HPCCG"}, MaxFaults: 1, HotSpares: []bool{false, true}}
	cfgs := CampaignConfigs(opts)
	// k = 0,1 x (3 unreplicated + 2 replica variants).
	if want := 2 * (len(Designs()) + 1); len(cfgs) != want {
		t.Fatalf("campaign cells = %d, want %d", len(cfgs), want)
	}
	nOn := 0
	for _, c := range cfgs {
		if HotSpareOf(c) {
			nOn++
			if c.Design != ReplicaFTI {
				t.Fatalf("hot-spare cell for %s; the axis is replica-only", c.Design)
			}
		}
	}
	if nOn != 2 {
		t.Fatalf("hot-spare cells = %d, want 2 (k=0 and k=1)", nOn)
	}
	// Degenerate variant lists must not distort coverage: an on-only sweep
	// still runs every unreplicated design once per k, and repeated
	// entries cannot duplicate cells.
	onOnly := CampaignConfigs(CampaignOptions{Apps: []string{"HPCCG"}, MaxFaults: 1, HotSpares: []bool{true}})
	if want := 2 * len(Designs()); len(onOnly) != want {
		t.Fatalf("on-only sweep cells = %d, want %d (non-replica designs once per k)", len(onOnly), want)
	}
	dup := CampaignConfigs(CampaignOptions{Apps: []string{"HPCCG"}, MaxFaults: 1, HotSpares: []bool{false, false}})
	if want := 2 * len(Designs()); len(dup) != want {
		t.Fatalf("duplicated-variant sweep cells = %d, want %d (no duplicate cells)", len(dup), want)
	}

	// Synthetic results: the split must pair each variant with the shared
	// Reinit cells and key them into the same crossover cells.
	mk := func(d Design, k int, hs bool, total simnet.Time) Result {
		return Result{
			Config:    Config{App: "HPCCG", Design: d, Procs: 8, Faults: k, InjectFault: k > 0, HotSpare: hs},
			Breakdown: Breakdown{Total: total, Recovery: simnet.Millisecond, Recoveries: k},
		}
	}
	results := []Result{
		mk(ReinitFTI, 0, false, 10*simnet.Second), mk(ReinitFTI, 1, false, 12*simnet.Second),
		mk(ReplicaFTI, 0, false, 11*simnet.Second), mk(ReplicaFTI, 1, false, 13*simnet.Second),
		mk(ReplicaFTI, 0, true, 11*simnet.Second), mk(ReplicaFTI, 1, true, 11500*simnet.Millisecond),
	}
	off, on, swept := HotSpareCrossovers(results)
	if !swept {
		t.Fatal("sweep not detected")
	}
	if len(off.Ks) != 2 || len(on.Ks) != 2 {
		t.Fatalf("crossover ks: off=%v on=%v, want two failure counts each", off.Ks, on.Ks)
	}
	if off.ReplicaOverReinitTotal[1] <= on.ReplicaOverReinitTotal[1] {
		t.Fatalf("k=1 replica/reinit: off=%v on=%v; the on-variant was built cheaper",
			off.ReplicaOverReinitTotal[1], on.ReplicaOverReinitTotal[1])
	}
	if _, _, swept := HotSpareCrossovers(results[:4]); swept {
		t.Fatal("single-variant results misreported as a sweep")
	}

	// The campaign table labels the axis when it is swept.
	var sb strings.Builder
	WriteCampaign(&sb, results)
	if !strings.Contains(sb.String(), "hot-spare") {
		t.Fatalf("campaign table missing hot-spare column:\n%s", sb.String())
	}
}
