package core

import (
	"fmt"
	"io"
	"sort"
)

// ReplicaTradeoff is one point of the PartRePer-style combined-overhead
// curve: a (app, placement policy, ReplicaFactor) cell of a campaign that
// swept the replication axis, with the steady-state cost of replication
// plus checkpointing on one side and the recovery speed it buys on the
// other. The interesting regime is the combination: partial replication
// with replica-aware placement pays for its duplicated processes partly
// out of the checkpoints it no longer takes.
type ReplicaTradeoff struct {
	App    string
	Policy string
	// Factor is the fraction of replicated ranks (0 = replication off).
	Factor float64
	// CkptS and CkptCount describe the failure-free (k=0) checkpoint
	// spend; CkptAvoided counts the checkpoints the placement policy
	// skipped relative to fixed placement.
	CkptS       float64
	CkptCount   int
	CkptAvoided int
	// TotalS is the failure-free total; OverheadPct is its overhead over
	// the failure-free run at the sweep's lowest factor under the same
	// policy (factor 0 — replication off — when the sweep includes it).
	TotalS      float64
	OverheadPct float64
	// RecoveryPerFailure averages the recovery time per recovery event
	// over every k>0 cell (seconds).
	RecoveryPerFailure float64
	Cells              int
}

// ComputeReplicaTradeoff derives the combined overhead-vs-ReplicaFactor
// curve from campaign results that swept the replication axis
// (CampaignOptions.ReplicaFactors): for every app and placement policy,
// how total overhead grows and recovery time shrinks as the replicated
// fraction rises. Non-replica results are ignored.
func ComputeReplicaTradeoff(results []Result) []ReplicaTradeoff {
	type key struct {
		app    string
		policy string
		factor float64
	}
	type acc struct {
		row         ReplicaTradeoff
		recoverySum float64
		recoveries  int
		haveBase    bool
	}
	accs := map[key]*acc{}
	var order []key
	for _, r := range results {
		if r.Config.Design != ReplicaFTI {
			continue
		}
		k := key{r.Config.App, r.Config.CkptPolicy.String(), ReplicaFactorOf(r.Config)}
		a := accs[k]
		if a == nil {
			a = &acc{row: ReplicaTradeoff{App: k.app, Policy: k.policy, Factor: k.factor}}
			accs[k] = a
			order = append(order, k)
		}
		a.row.Cells++
		bd := r.Breakdown
		if r.Config.FaultCount() == 0 {
			a.row.CkptS = bd.Ckpt.Seconds()
			a.row.CkptCount = bd.CkptCount
			a.row.CkptAvoided = bd.CkptAvoided
			a.row.TotalS = bd.Total.Seconds()
			a.haveBase = true
		} else if bd.Recoveries > 0 {
			a.recoverySum += bd.Recovery.Seconds()
			a.recoveries += bd.Recoveries
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].app != order[j].app {
			return order[i].app < order[j].app
		}
		if order[i].policy != order[j].policy {
			return order[i].policy < order[j].policy
		}
		return order[i].factor < order[j].factor
	})
	// Overhead is relative to the same app+policy's lowest-factor cell —
	// the curve's origin (the unreplicated baseline when the sweep
	// includes factor 0). A hard-coded factor-0 lookup would silently
	// report 0% everywhere on sweeps like "0.5,1.0".
	baseFor := map[[2]string]float64{}
	for _, k := range order { // order is sorted: first factor per (app, policy) is lowest
		bk := [2]string{k.app, k.policy}
		if _, ok := baseFor[bk]; !ok && accs[k].haveBase {
			baseFor[bk] = accs[k].row.TotalS
		}
	}
	out := make([]ReplicaTradeoff, 0, len(order))
	for _, k := range order {
		a := accs[k]
		if a.recoveries > 0 {
			a.row.RecoveryPerFailure = a.recoverySum / float64(a.recoveries)
		}
		if base, ok := baseFor[[2]string{k.app, k.policy}]; ok && base > 0 {
			a.row.OverheadPct = 100 * (a.row.TotalS - base) / base
		}
		out = append(out, a.row)
	}
	return out
}

// WriteReplicaTradeoff renders the combined overhead-vs-ReplicaFactor
// curve.
func WriteReplicaTradeoff(w io.Writer, rows []ReplicaTradeoff) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintln(w, "== ReplicaFactor sweep: combined overhead vs replicated fraction (PartRePer trade-off) ==")
	fmt.Fprintf(w, "%-10s %8s %-24s %10s %8s %8s %15s %10s %12s\n",
		"app", "rfactor", "placement", "ckpt(s)", "ckpts", "avoided", "recover/fail(s)", "total(s)", "overhead(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8.2f %-24s %10.3f %8d %8d %15.3f %10.3f %11.1f%%\n",
			r.App, r.Factor, r.Policy, r.CkptS, r.CkptCount, r.CkptAvoided,
			r.RecoveryPerFailure, r.TotalS, r.OverheadPct)
	}
	fmt.Fprintln(w)
}
