package core

import (
	"fmt"
	"io"
	"sort"

	"match/internal/ckpt"
	"match/internal/detect"
	"match/internal/obs"
	"match/internal/replica"
)

// CampaignOptions shapes a multi-failure sweep: for every app and design,
// run campaigns of k = 0..MaxFaults scheduled failures and measure how
// recovery time and total overhead grow with the failure count. This is
// the experiment the paper's single-failure protocol (Figure 4) cannot
// express, and the axis on which replication's rollback-free failover is
// expected to pull away from the checkpoint/restart designs.
type CampaignOptions struct {
	Apps    []string // default: all six
	Designs []Design // default: all four
	Procs   int      // default: DefaultProcs
	Input   InputSize
	// MaxFaults is K: the sweep covers k = 0..K failures per run. Zero is
	// meaningful — a failure-free baseline-only sweep; negative selects
	// the default of 3.
	MaxFaults int
	Reps      int // repetitions per cell (default 1)
	Seed      int64
	// Detectors adds the detection axis: every entry multiplies the
	// campaign matrix, running each (app, k, design) cell under that
	// detection strategy. Empty keeps the per-design calibrated presets.
	// Sweeping e.g. a ring detector at several heartbeat periods measures
	// the detection-latency/interference trade-off — including the regime
	// where a failure lands inside the previous failure's detection
	// window, which only exists under in-band detection.
	Detectors []detect.Config
	// Policies adds the checkpoint-placement axis: every entry multiplies
	// the campaign matrix, running each cell under that placement policy.
	// Empty keeps fixed-stride placement.
	Policies []ckpt.Config
	// ReplicaFactors adds the replication axis (the ROADMAP's PartRePer
	// trade-off figure): every entry runs the matrix at that fraction of
	// replicated ranks, with 0 meaning replication off (dup-degree 1).
	// Setting it restricts Designs to the replica design — the factor
	// means nothing elsewhere — and the results feed
	// ComputeReplicaTradeoff's combined overhead-vs-ReplicaFactor curve.
	ReplicaFactors []float64
	// HotSpares adds the respawn axis: every entry runs the replica
	// design's cells with hot-spare respawn on or off (the other designs
	// have no respawn and run each cell once). Sweeping {false, true}
	// measures what background respawn buys a degraded group — both the
	// fallbacks it converts into failovers and, combined with the
	// replica-aware placement policy, the stretched checkpoint strides it
	// restores once a spare brings a group back to full degree. Empty
	// keeps hot-spare off everywhere (the calibrated behavior).
	HotSpares []bool
	// ModelIngress switches receiver-NIC serialization on for every run.
	ModelIngress bool
	// Workers bounds the sweep worker pool; 0 means GOMAXPROCS. Campaign
	// matrices multiply the figure run count by K+1, so they always run on
	// the pool.
	Workers int
	// Progress, when set, observes every completed cell (see Progress) —
	// campaign matrices are the longest sweeps, and used to run silently
	// until the final table. Implementations must write to stderr or
	// another side channel: campaign stdout and CSV are diffed by the
	// determinism gate.
	Progress Progress
	// Meter aggregates per-cell metric registries into the live sweep meter
	// the /metrics and /status endpoints serve (see SuiteOptions.Meter).
	Meter *obs.SweepMeter
	// Log receives cell lifecycle and in-run structured events (see
	// SuiteOptions.Log).
	Log *obs.Log
}

// Request extracts the campaign's identity — the pure-data sweep axes —
// as a CampaignRequest. CampaignOptions survives as a convenience bundle
// (and for compatibility); new code should hold a CampaignRequest and a
// CampaignRunner separately.
func (o CampaignOptions) Request() CampaignRequest {
	return CampaignRequest{
		Apps:           o.Apps,
		Designs:        o.Designs,
		Procs:          o.Procs,
		Input:          o.Input,
		MaxFaults:      o.MaxFaults,
		Reps:           o.Reps,
		Seed:           o.Seed,
		Detectors:      o.Detectors,
		Policies:       o.Policies,
		ReplicaFactors: o.ReplicaFactors,
		HotSpares:      o.HotSpares,
		ModelIngress:   o.ModelIngress,
	}
}

// Runner extracts the campaign's execution environment (no result store;
// set CampaignRunner.Store for cell memoization).
func (o CampaignOptions) Runner() CampaignRunner {
	return CampaignRunner{
		Workers:  o.Workers,
		Progress: o.Progress,
		Meter:    o.Meter,
		Log:      o.Log,
	}
}

// CampaignConfigs enumerates the campaign run matrix: app x k x design,
// k = 0..MaxFaults. A k=1 cell is configured exactly like the paper's
// single-failure runs (same seed, same draw), so campaign output embeds
// the calibrated Figure 6/9 numbers verbatim.
func CampaignConfigs(opts CampaignOptions) []Config {
	return opts.Request().Configs()
}

// replicaConfigFor encodes a swept ReplicaFactor: 0 turns replication off
// entirely (an explicit dup-degree of 1 — the unprotected baseline of the
// PartRePer curve), anything else selects that fraction of replicated
// ranks at the default degree.
func replicaConfigFor(factor float64) replica.Config {
	if factor == 0 {
		return replica.Config{DupDegree: 1}
	}
	return replica.Config{ReplicaFactor: factor}
}

// ReplicaFactorOf reports the effective replication fraction of a
// configuration: 0 for the unreplicated designs and for a replica run
// forced to dup-degree 1, the configured factor (default 1, full
// replication) otherwise.
func ReplicaFactorOf(c Config) float64 {
	if c.Design != ReplicaFTI || c.Replica.DupDegree == 1 {
		return 0
	}
	if f := c.Replica.ReplicaFactor; f > 0 && f <= 1 {
		return f
	}
	return 1
}

// HotSpareOf reports whether a configuration runs with hot-spare respawn:
// true only for the replica design (the knob means nothing elsewhere) with
// either the harness-level or the replica-level switch set.
func HotSpareOf(c Config) bool {
	return c.Design == ReplicaFTI && (c.HotSpare || c.Replica.HotSpare)
}

// RunCampaign executes the campaign matrix on the sweep worker pool,
// writes the per-app tables (recovery time and total overhead vs failure
// count, per design) to w, and returns the raw results. It is the
// in-process compatibility wrapper over the CampaignRequest/CampaignRunner
// split: opts.Runner().Run(opts.Request(), w).
func RunCampaign(opts CampaignOptions, w io.Writer) ([]Result, error) {
	return opts.Runner().Run(opts.Request(), w)
}

// WriteCampaign renders campaign results: one block per application, one
// row per (failure count, design) — and per detector, placement policy,
// or replica factor, when the campaign sweeps those axes — with the
// execution-time breakdown and the total overhead relative to that
// design's own failure-free (k=0) campaign cell under the same detector,
// policy, and factor.
func WriteCampaign(w io.Writer, results []Result) {
	fmt.Fprintln(w, "== Multi-failure campaign: recovery time and total overhead vs failure count ==")
	byApp := map[string][]Result{}
	var apps []string
	base := map[string]baseTotal{}
	detectorSweep, policySweep, factorSweep, spareSweep := false, false, false, false
	for _, r := range results {
		if _, ok := byApp[r.Config.App]; !ok {
			apps = append(apps, r.Config.App)
		}
		byApp[r.Config.App] = append(byApp[r.Config.App], r)
		if r.Config.FaultCount() == 0 {
			base[baselineKey(r.Config)] = baseTotal{t: r.Breakdown.Total.Seconds(), ok: true}
		}
		if r.Config.Detector.Kind != detect.Preset {
			detectorSweep = true
		}
		if r.Config.CkptPolicy != (ckpt.Config{}) {
			policySweep = true
		}
		if r.Config.Design == ReplicaFTI && ReplicaFactorOf(r.Config) != 1 {
			factorSweep = true
		}
		if HotSpareOf(r.Config) {
			spareSweep = true
		}
	}
	sort.Strings(apps)
	for _, app := range apps {
		rs := byApp[app]
		sort.SliceStable(rs, func(i, j int) bool {
			if a, b := rs[i].Config.FaultCount(), rs[j].Config.FaultCount(); a != b {
				return a < b
			}
			if a, b := rs[i].Config.Design, rs[j].Config.Design; a != b {
				return a < b
			}
			if a, b := ReplicaFactorOf(rs[i].Config), ReplicaFactorOf(rs[j].Config); a != b {
				return a < b
			}
			if a, b := rs[i].Config.CkptPolicy.String(), rs[j].Config.CkptPolicy.String(); a != b {
				return a < b
			}
			if a, b := HotSpareOf(rs[i].Config), HotSpareOf(rs[j].Config); a != b {
				return !a // hot-spare off sorts first (the baseline)
			}
			return rs[i].Config.Detector.String() < rs[j].Config.Detector.String()
		})
		fmt.Fprintf(w, "\n-- %s --\n", app)
		fmt.Fprintf(w, "%-8s %-12s", "faults", "design")
		if detectorSweep {
			fmt.Fprintf(w, " %-22s", "detector")
		}
		if policySweep {
			fmt.Fprintf(w, " %-24s", "placement")
		}
		if factorSweep {
			fmt.Fprintf(w, " %8s", "rfactor")
		}
		if spareSweep {
			fmt.Fprintf(w, " %9s %8s", "hot-spare", "respawns")
		}
		fmt.Fprintf(w, " %10s %12s", "recovered", "recovery(s)")
		if detectorSweep {
			fmt.Fprintf(w, " %10s", "detect(s)")
		}
		fmt.Fprintf(w, " %12s %12s %12s\n", "total(s)", "overhead(s)", "overhead(%)")
		for _, r := range rs {
			bd := r.Breakdown
			over, overPct := "", ""
			if b := base[baselineKey(r.Config)]; b.ok {
				d := bd.Total.Seconds() - b.t
				over = fmt.Sprintf("%12.3f", d)
				if b.t > 0 {
					overPct = fmt.Sprintf("%11.1f%%", 100*d/b.t)
				}
			}
			fmt.Fprintf(w, "%-8d %-12s", r.Config.FaultCount(), r.Config.Design)
			if detectorSweep {
				fmt.Fprintf(w, " %-22s", r.Config.Detector)
			}
			if policySweep {
				fmt.Fprintf(w, " %-24s", r.Config.CkptPolicy)
			}
			if factorSweep {
				fmt.Fprintf(w, " %8.2f", ReplicaFactorOf(r.Config))
			}
			if spareSweep {
				hs := "off"
				if HotSpareOf(r.Config) {
					hs = "on"
				}
				fmt.Fprintf(w, " %9s %8d", hs, bd.Respawns)
			}
			fmt.Fprintf(w, " %10d %12.3f", bd.Recoveries, bd.Recovery.Seconds())
			if detectorSweep {
				fmt.Fprintf(w, " %10.3f", bd.DetectLatency.Seconds())
			}
			fmt.Fprintf(w, " %12.3f %12s %12s\n", bd.Total.Seconds(), over, overPct)
		}
	}
	fmt.Fprintln(w)
}

// baseTotal is a present/absent failure-free total (seconds).
type baseTotal struct {
	t  float64
	ok bool
}

func baselineKey(c Config) string {
	return fmt.Sprintf("%s/%s/p%d/%s/%s/%s/rf%g/hs%t", c.App, c.Design, c.Procs, c.Input,
		c.Detector, c.CkptPolicy, ReplicaFactorOf(c), HotSpareOf(c))
}

// DetectionTradeoff is one point of the detection-vs-interference curve: a
// (design, detector) pair with its measured detection latency, recovery
// time, and the steady-state cost of running that detector at all —
// failure-free total time relative to the sweep's first detector
// configuration for the same design and app.
type DetectionTradeoff struct {
	Design   Design
	Detector string
	// DetectPerFailure and RecoveryPerFailure average over every failure
	// of every k>0 campaign cell (seconds).
	DetectPerFailure   float64
	RecoveryPerFailure float64
	// InterferencePct is the failure-free (k=0) total-time overhead of
	// this detector vs the sweep's baseline detector, averaged over apps.
	InterferencePct float64
	Cells           int
}

// ComputeDetectionTradeoff derives the per-design trade-off curve from
// campaign results that swept the detection axis: how buying a shorter
// detection latency (faster heartbeats) raises steady-state interference,
// and vice versa. The baseline for interference is the first detector
// configuration seen per (app, design) — the sweep's first entry.
func ComputeDetectionTradeoff(results []Result) []DetectionTradeoff {
	type key struct {
		design   Design
		detector string
	}
	type acc struct {
		detectSum, recoverySum float64
		failures               int
		interfSum              float64
		interfN                int
		cells                  int
	}
	// Failure-free baseline per (app, design, placement policy, replica
	// config): first detector seen. Keying the non-detector axes keeps a
	// combined sweep (e.g. -detector ring -ckpt-policy fixed,never) from
	// charging placement effects to the detector's interference column.
	type adKey struct {
		app    string
		design Design
		policy string
		dup    int
		factor float64
	}
	keyOf := func(c Config) adKey {
		return adKey{c.App, c.Design, c.CkptPolicy.String(), c.Replica.DupDegree, c.Replica.ReplicaFactor}
	}
	baseTotal := map[adKey]float64{}
	for _, r := range results {
		if r.Config.FaultCount() != 0 {
			continue
		}
		k := keyOf(r.Config)
		if _, ok := baseTotal[k]; !ok {
			baseTotal[k] = r.Breakdown.Total.Seconds()
		}
	}
	accs := map[key]*acc{}
	var order []key
	for _, r := range results {
		k := key{r.Config.Design, r.Config.Detector.String()}
		a := accs[k]
		if a == nil {
			a = &acc{}
			accs[k] = a
			order = append(order, k)
		}
		a.cells++
		if r.Config.FaultCount() == 0 {
			if b, ok := baseTotal[keyOf(r.Config)]; ok && b > 0 {
				a.interfSum += 100 * (r.Breakdown.Total.Seconds() - b) / b
				a.interfN++
			}
			continue
		}
		// Denominator: failures the detector confirmed — not recoveries,
		// which can absorb several deaths in one repair and would inflate
		// the per-failure latency.
		if n := r.Breakdown.DetectedFailures; n > 0 {
			a.detectSum += r.Breakdown.DetectLatency.Seconds()
			a.recoverySum += r.Breakdown.Recovery.Seconds()
			a.failures += n
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].design != order[j].design {
			return order[i].design < order[j].design
		}
		return false // keep sweep order within a design
	})
	out := make([]DetectionTradeoff, 0, len(order))
	for _, k := range order {
		a := accs[k]
		row := DetectionTradeoff{Design: k.design, Detector: k.detector, Cells: a.cells}
		if a.failures > 0 {
			row.DetectPerFailure = a.detectSum / float64(a.failures)
			row.RecoveryPerFailure = a.recoverySum / float64(a.failures)
		}
		if a.interfN > 0 {
			row.InterferencePct = a.interfSum / float64(a.interfN)
		}
		out = append(out, row)
	}
	return out
}

// WriteDetectionTradeoff renders the detection-vs-interference curve.
func WriteDetectionTradeoff(w io.Writer, rows []DetectionTradeoff) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintln(w, "== Detection latency vs steady-state interference (per design) ==")
	fmt.Fprintf(w, "%-12s %-22s %15s %15s %16s\n",
		"design", "detector", "detect/fail(s)", "recover/fail(s)", "interference(%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-22s %15.3f %15.3f %15.2f%%\n",
			r.Design, r.Detector, r.DetectPerFailure, r.RecoveryPerFailure, r.InterferencePct)
	}
	fmt.Fprintln(w)
}
