package core

import (
	"fmt"
	"io"
	"sort"
)

// CampaignOptions shapes a multi-failure sweep: for every app and design,
// run campaigns of k = 0..MaxFaults scheduled failures and measure how
// recovery time and total overhead grow with the failure count. This is
// the experiment the paper's single-failure protocol (Figure 4) cannot
// express, and the axis on which replication's rollback-free failover is
// expected to pull away from the checkpoint/restart designs.
type CampaignOptions struct {
	Apps    []string // default: all six
	Designs []Design // default: all four
	Procs   int      // default: DefaultProcs
	Input   InputSize
	// MaxFaults is K: the sweep covers k = 0..K failures per run. Zero is
	// meaningful — a failure-free baseline-only sweep; negative selects
	// the default of 3.
	MaxFaults int
	Reps      int // repetitions per cell (default 1)
	Seed      int64
	// Workers bounds the sweep worker pool; 0 means GOMAXPROCS. Campaign
	// matrices multiply the figure run count by K+1, so they always run on
	// the pool.
	Workers int
}

func (o *CampaignOptions) fill() {
	if len(o.Apps) == 0 {
		o.Apps = TableIApps()
	}
	if len(o.Designs) == 0 {
		o.Designs = Designs()
	}
	if o.Procs == 0 {
		o.Procs = DefaultProcs
	}
	if o.MaxFaults < 0 {
		o.MaxFaults = 3
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// CampaignConfigs enumerates the campaign run matrix: app x k x design,
// k = 0..MaxFaults. A k=1 cell is configured exactly like the paper's
// single-failure runs (same seed, same draw), so campaign output embeds
// the calibrated Figure 6/9 numbers verbatim.
func CampaignConfigs(opts CampaignOptions) []Config {
	opts.fill()
	var out []Config
	for _, app := range opts.Apps {
		for k := 0; k <= opts.MaxFaults; k++ {
			for _, d := range opts.Designs {
				out = append(out, Config{
					App:         app,
					Design:      d,
					Procs:       opts.Procs,
					Input:       opts.Input,
					InjectFault: k > 0,
					Faults:      k,
					FaultSeed:   opts.Seed,
				})
			}
		}
	}
	return out
}

// RunCampaign executes the campaign matrix on the sweep worker pool,
// writes the per-app tables (recovery time and total overhead vs failure
// count, per design) to w, and returns the raw results.
func RunCampaign(opts CampaignOptions, w io.Writer) ([]Result, error) {
	cfgs := CampaignConfigs(opts) // fills defaults on its own copy
	results, err := RunConfigs(cfgs, opts.Reps, opts.Workers)
	if err != nil {
		return results, err
	}
	WriteCampaign(w, results)
	return results, nil
}

// WriteCampaign renders campaign results: one block per application, one
// row per (failure count, design), with the execution-time breakdown and
// the total overhead relative to that design's own failure-free (k=0)
// campaign cell.
func WriteCampaign(w io.Writer, results []Result) {
	fmt.Fprintln(w, "== Multi-failure campaign: recovery time and total overhead vs failure count ==")
	byApp := map[string][]Result{}
	var apps []string
	base := map[string]baseTotal{}
	for _, r := range results {
		if _, ok := byApp[r.Config.App]; !ok {
			apps = append(apps, r.Config.App)
		}
		byApp[r.Config.App] = append(byApp[r.Config.App], r)
		if r.Config.FaultCount() == 0 {
			base[baselineKey(r.Config)] = baseTotal{t: r.Breakdown.Total.Seconds(), ok: true}
		}
	}
	sort.Strings(apps)
	for _, app := range apps {
		rs := byApp[app]
		sort.SliceStable(rs, func(i, j int) bool {
			if a, b := rs[i].Config.FaultCount(), rs[j].Config.FaultCount(); a != b {
				return a < b
			}
			return rs[i].Config.Design < rs[j].Config.Design
		})
		fmt.Fprintf(w, "\n-- %s --\n", app)
		fmt.Fprintf(w, "%-8s %-12s %10s %12s %12s %12s %12s\n",
			"faults", "design", "recovered", "recovery(s)", "total(s)", "overhead(s)", "overhead(%)")
		for _, r := range rs {
			bd := r.Breakdown
			over, overPct := "", ""
			if b := base[baselineKey(r.Config)]; b.ok {
				d := bd.Total.Seconds() - b.t
				over = fmt.Sprintf("%12.3f", d)
				if b.t > 0 {
					overPct = fmt.Sprintf("%11.1f%%", 100*d/b.t)
				}
			}
			fmt.Fprintf(w, "%-8d %-12s %10d %12.3f %12.3f %12s %12s\n",
				r.Config.FaultCount(), r.Config.Design, bd.Recoveries,
				bd.Recovery.Seconds(), bd.Total.Seconds(), over, overPct)
		}
	}
	fmt.Fprintln(w)
}

// baseTotal is a present/absent failure-free total (seconds).
type baseTotal struct {
	t  float64
	ok bool
}

func baselineKey(c Config) string {
	return fmt.Sprintf("%s/%s/p%d/%s", c.App, c.Design, c.Procs, c.Input)
}
