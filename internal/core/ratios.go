package core

import (
	"fmt"
	"io"
	"sort"
)

// Ratios are the paper's §V-C headline comparisons, derived from
// with-failure runs (Figures 6/7 data), extended with the replication
// design's trade-off: recovery even cheaper than Reinit, bought with
// steady-state slowdown and doubled resources.
type Ratios struct {
	UlfmOverReinitAvg    float64 // paper: ~4x
	UlfmOverReinitMax    float64 // paper: up to 13x
	RestartOverReinitAvg float64 // paper: ~16x
	RestartOverReinitMax float64 // paper: up to 22x
	RestartOverUlfmAvg   float64 // paper: 2-3x
	CkptShareAvg         float64 // checkpoint share of total time; paper: ~13%

	// ReplicaFTI extension (no paper analog).
	ReinitOverReplicaAvg      float64 // rollback-free failover vs the fastest rollback design
	ReinitOverReplicaMax      float64
	ReplicaOverReinitTotalAvg float64 // replica total / reinit total on the failure runs;
	// below 1 means rollback-free failover beat the fastest rollback design
	// end-to-end despite replication's duplication overhead

	Samples int
}

// ComputeRatios derives the headline ratios from a result set containing
// the designs for matching (app, procs, input) cells.
func ComputeRatios(results []Result) Ratios {
	type cell struct {
		app, input string
		procs      int
	}
	rec := map[cell]map[Design]Breakdown{}
	var order []cell // first-seen order: deterministic float summation
	var ratios Ratios
	var ckptShareSum float64
	var ckptN int
	for _, r := range results {
		c := cell{r.Config.App, r.Config.Input.String(), r.Config.Procs}
		if rec[c] == nil {
			rec[c] = map[Design]Breakdown{}
			order = append(order, c)
		}
		rec[c][r.Config.Design] = r.Breakdown
		if r.Breakdown.Total > 0 && r.Breakdown.Ckpt > 0 {
			ckptShareSum += r.Breakdown.Ckpt.Seconds() / r.Breakdown.Total.Seconds()
			ckptN++
		}
	}
	var ur, rr, ru, rpr, rps []float64
	for _, c := range order {
		m := rec[c]
		re, haveRe := m[ReinitFTI]
		ul, haveUl := m[UlfmFTI]
		rs, haveRs := m[RestartFTI]
		rp, haveRp := m[ReplicaFTI]
		if haveRe && haveUl && re.Recovery > 0 {
			ur = append(ur, ul.Recovery.Seconds()/re.Recovery.Seconds())
		}
		if haveRe && haveRs && re.Recovery > 0 {
			rr = append(rr, rs.Recovery.Seconds()/re.Recovery.Seconds())
		}
		if haveUl && haveRs && ul.Recovery > 0 {
			ru = append(ru, rs.Recovery.Seconds()/ul.Recovery.Seconds())
		}
		if haveRe && haveRp && rp.Recovery > 0 {
			rpr = append(rpr, re.Recovery.Seconds()/rp.Recovery.Seconds())
		}
		if haveRe && haveRp && re.Total > 0 {
			rps = append(rps, rp.Total.Seconds()/re.Total.Seconds())
		}
	}
	ratios.UlfmOverReinitAvg, ratios.UlfmOverReinitMax = avgMax(ur)
	ratios.RestartOverReinitAvg, ratios.RestartOverReinitMax = avgMax(rr)
	ratios.RestartOverUlfmAvg, _ = avgMax(ru)
	ratios.ReinitOverReplicaAvg, ratios.ReinitOverReplicaMax = avgMax(rpr)
	ratios.ReplicaOverReinitTotalAvg, _ = avgMax(rps)
	if ckptN > 0 {
		ratios.CkptShareAvg = ckptShareSum / float64(ckptN)
	}
	ratios.Samples = len(ur)
	return ratios
}

// Crossover is the campaign-level headline: how the Replica/Reinit
// end-to-end comparison moves as failures accumulate. For each failure
// count k it averages, over the (app, procs, input) cells that ran both
// designs, the ratio of Replica's total time to Reinit's; CrossoverK is
// the smallest k where replication wins end-to-end (ratio < 1) — the point
// where paying replication's steady-state duplication is cheaper than
// paying Reinit's k rollbacks — or -1 if it never does.
type Crossover struct {
	Ks                        []int
	ReplicaOverReinitTotal    []float64 // per k, avg Replica total / Reinit total
	ReinitOverReplicaRecovery []float64 // per k, avg Reinit recovery / Replica recovery
	CrossoverK                int
	Samples                   int
}

// ComputeCrossover derives the crossover analysis from campaign results.
// Cells are additionally keyed by the swept axes (detector, placement
// policy, replica factor), so a multi-axis campaign compares designs
// within matching configurations instead of overwriting across the sweep.
func ComputeCrossover(results []Result) Crossover {
	type cell struct {
		app, input       string
		procs, k         int
		detector, policy string
		dup              int
		rfactor          float64
		hotSpare         bool
	}
	rec := map[cell]map[Design]Breakdown{}
	var order []cell // first-seen order: deterministic float summation
	for _, r := range results {
		// The replica knobs are keyed raw (not via ReplicaFactorOf, which
		// is design-dependent) so every design of one sweep point shares a
		// cell. Hot-spare, being replica-only, is keyed effective: a sweep
		// of both variants must not overwrite the replica breakdown, and
		// the on-variant cells are compared via HotSpareCrossovers.
		c := cell{r.Config.App, r.Config.Input.String(), r.Config.Procs, r.Config.FaultCount(),
			r.Config.Detector.String(), r.Config.CkptPolicy.String(),
			r.Config.Replica.DupDegree, r.Config.Replica.ReplicaFactor, HotSpareOf(r.Config)}
		if rec[c] == nil {
			rec[c] = map[Design]Breakdown{}
			order = append(order, c)
		}
		rec[c][r.Config.Design] = r.Breakdown
	}
	totals := map[int][]float64{}
	recovs := map[int][]float64{}
	samples := 0
	for _, c := range order {
		m := rec[c]
		re, haveRe := m[ReinitFTI]
		rp, haveRp := m[ReplicaFTI]
		if !haveRe || !haveRp {
			continue
		}
		samples++
		if re.Total > 0 {
			totals[c.k] = append(totals[c.k], rp.Total.Seconds()/re.Total.Seconds())
		}
		if rp.Recovery > 0 {
			recovs[c.k] = append(recovs[c.k], re.Recovery.Seconds()/rp.Recovery.Seconds())
		}
	}
	var ks []int
	for k := range totals {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	cr := Crossover{CrossoverK: -1, Samples: samples}
	for _, k := range ks {
		tAvg, _ := avgMax(totals[k])
		rAvg, _ := avgMax(recovs[k])
		cr.Ks = append(cr.Ks, k)
		cr.ReplicaOverReinitTotal = append(cr.ReplicaOverReinitTotal, tAvg)
		cr.ReinitOverReplicaRecovery = append(cr.ReinitOverReplicaRecovery, rAvg)
		if cr.CrossoverK < 0 && tAvg > 0 && tAvg < 1 {
			cr.CrossoverK = k
		}
	}
	return cr
}

// HotSpareCrossovers splits a campaign that swept the respawn axis
// (CampaignOptions.HotSpares) into one Replica-vs-Reinit crossover per
// hot-spare variant: the replica design's cells of that variant, compared
// against the shared unreplicated designs. The on-variant shows where
// background respawn moves the crossover — each spare that absorbs a
// repeat hit converts a checkpoint rollback into a failover, and, under
// replica-aware placement, restores the stretched checkpoint stride.
// swept is false when the results hold only one variant (plain campaigns);
// callers then fall back to the single ComputeCrossover.
func HotSpareCrossovers(results []Result) (off, on Crossover, swept bool) {
	haveOff, haveOn := false, false
	for _, r := range results {
		if r.Config.Design != ReplicaFTI {
			continue
		}
		if HotSpareOf(r.Config) {
			haveOn = true
		} else {
			haveOff = true
		}
	}
	if !haveOff || !haveOn {
		return Crossover{}, Crossover{}, false
	}
	variant := func(want bool) []Result {
		var out []Result
		for _, r := range results {
			if r.Config.Design != ReplicaFTI || HotSpareOf(r.Config) == want {
				// Neutralize the flag so the variant's replica cells land in
				// the same crossover cells as the shared unreplicated runs.
				r.Config.HotSpare = false
				r.Config.Replica.HotSpare = false
				out = append(out, r)
			}
		}
		return out
	}
	return ComputeCrossover(variant(false)), ComputeCrossover(variant(true)), true
}

// Write renders the crossover table.
func (c Crossover) Write(w io.Writer) {
	fmt.Fprintln(w, "== Replica vs Reinit crossover (campaign) ==")
	fmt.Fprintf(w, "%-8s %28s %28s\n", "faults", "Replica/Reinit total (avg)", "Reinit/Replica recovery (avg)")
	for i, k := range c.Ks {
		recov := fmt.Sprintf("%28s", "-") // no recoveries at this k (k=0 row)
		if c.ReinitOverReplicaRecovery[i] > 0 {
			recov = fmt.Sprintf("%27.1fx", c.ReinitOverReplicaRecovery[i])
		}
		fmt.Fprintf(w, "%-8d %27.3fx %s\n", k, c.ReplicaOverReinitTotal[i], recov)
	}
	switch {
	case c.CrossoverK < 0:
		fmt.Fprintln(w, "no crossover: checkpointing+Reinit stays ahead end-to-end on this matrix")
	case c.CrossoverK == 0:
		fmt.Fprintln(w, "replication is ahead end-to-end even without failures on this matrix")
	default:
		fmt.Fprintf(w, "crossover at k=%d: from %d failures on, replication wins end-to-end\n", c.CrossoverK, c.CrossoverK)
	}
	fmt.Fprintf(w, "(over %d design-comparable cells)\n\n", c.Samples)
}

func avgMax(v []float64) (avg, max float64) {
	if len(v) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, x := range v {
		sum += x
		if x > max {
			max = x
		}
	}
	return sum / float64(len(v)), max
}

// Write renders the ratios next to the paper's claims.
func (r Ratios) Write(w io.Writer) {
	fmt.Fprintln(w, "== Headline ratios (paper §V-C) ==")
	fmt.Fprintf(w, "%-34s %10s %12s\n", "metric", "measured", "paper")
	fmt.Fprintf(w, "%-34s %10.1fx %12s\n", "ULFM / Reinit recovery (avg)", r.UlfmOverReinitAvg, "~4x")
	fmt.Fprintf(w, "%-34s %10.1fx %12s\n", "ULFM / Reinit recovery (max)", r.UlfmOverReinitMax, "up to 13x")
	fmt.Fprintf(w, "%-34s %10.1fx %12s\n", "Restart / Reinit recovery (avg)", r.RestartOverReinitAvg, "~16x")
	fmt.Fprintf(w, "%-34s %10.1fx %12s\n", "Restart / Reinit recovery (max)", r.RestartOverReinitMax, "up to 22x")
	fmt.Fprintf(w, "%-34s %10.1fx %12s\n", "Restart / ULFM recovery (avg)", r.RestartOverUlfmAvg, "2-3x")
	fmt.Fprintf(w, "%-34s %9.1f%% %12s\n", "checkpoint share of runtime (avg)", 100*r.CkptShareAvg, "~13%")
	fmt.Fprintf(w, "%-34s %10.1fx %12s\n", "Reinit / Replica recovery (avg)", r.ReinitOverReplicaAvg, "(extension)")
	fmt.Fprintf(w, "%-34s %10.1fx %12s\n", "Reinit / Replica recovery (max)", r.ReinitOverReplicaMax, "(extension)")
	fmt.Fprintf(w, "%-34s %10.2fx %12s\n", "Replica / Reinit total w/ failure", r.ReplicaOverReinitTotalAvg, "(extension)")
	fmt.Fprintf(w, "(over %d design-comparable cells)\n\n", r.Samples)
}
