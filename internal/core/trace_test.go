package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"match/internal/trace"
)

// The recorder must be a pure observer: a traced run and an untraced run
// of the same configuration produce byte-identical breakdowns on every
// design under a multi-failure schedule. This doubles as the acceptance
// check for reconciliation — Run self-checks the trace's phase totals
// against the breakdown and errors on divergence, so a passing traced run
// proves the two accountings agree exactly.
func TestTraceOffByteIdentity(t *testing.T) {
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			params := tinyParams("HPCCG")
			params.CkptStride = 3
			cfg := Config{App: "HPCCG", Design: d, Procs: 8, Nodes: 4,
				Params: params, Faults: 2, FaultSeed: 9}
			plain, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v untraced: %v", d, err)
			}
			traced := cfg
			traced.Trace = trace.New()
			traced.Trace.SetDetail(trace.DetailAll)
			got, err := Run(traced)
			if err != nil {
				t.Fatalf("%v traced: %v", d, err)
			}
			if got != plain {
				t.Errorf("%v: tracing perturbed the run:\nuntraced %+v\ntraced   %+v", d, plain, got)
			}
			if traced.Trace.Len() == 0 {
				t.Errorf("%v: traced run recorded no spans", d)
			}
		})
	}
}

// Corrupting a single recorded span must trip the reconciliation
// self-check: the trace is an independent re-derivation of the breakdown,
// so any drift between the two is a hard error, not a warning.
func TestTraceReconcileCatchesCorruption(t *testing.T) {
	params := tinyParams("HPCCG")
	params.CkptStride = 3
	cfg := Config{App: "HPCCG", Design: UlfmFTI, Procs: 8, Nodes: 4,
		Params: params, InjectFault: true, FaultSeed: 9}
	cfg.Trace = trace.New()
	bd, err := Run(cfg)
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	if err := cfg.Trace.Reconcile(TraceTotalsOf(bd), false); err != nil {
		t.Fatalf("clean trace failed reconciliation: %v", err)
	}
	spans := cfg.Trace.Spans()
	corrupted := false
	for i := range spans {
		if spans[i].Cat == trace.CatCkpt && spans[i].Rank == 0 {
			spans[i].Dur += 12345
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no rank-0 checkpoint span to corrupt")
	}
	err = cfg.Trace.Reconcile(TraceTotalsOf(bd), false)
	if err == nil {
		t.Fatal("reconciliation accepted a corrupted checkpoint span")
	}
	if !strings.Contains(err.Error(), "ckpt") {
		t.Errorf("divergence error does not name the ckpt phase: %v", err)
	}
}

// The Chrome export of a real 2-rank ULFM run with one injected failure
// must be well-formed trace-event JSON with the schema Perfetto expects:
// a traceEvents array of M/X/i events carrying pid/tid/ts, one named
// thread per rank plus the runtime bookkeeping tracks, and at least one
// checkpoint, recovery, and injection event.
func TestTraceChromeSchema(t *testing.T) {
	params := tinyParams("HPCCG")
	params.CkptStride = 3
	cfg := Config{App: "HPCCG", Design: UlfmFTI, Procs: 2, Nodes: 2,
		Params: params, InjectFault: true, FaultSeed: 9}
	cfg.Trace = trace.New()
	if _, err := Run(cfg); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  *int           `json:"pid"`
			TID  *int           `json:"tid"`
			TS   *float64       `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	threadNames := map[string]bool{}
	sawCat := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %d (%s): missing pid/tid", i, ev.Name)
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				name, _ := ev.Args["name"].(string)
				threadNames[name] = true
			}
		case "X", "i":
			if ev.TS == nil {
				t.Fatalf("event %d (%s): %s event without ts", i, ev.Name, ev.Ph)
			}
			sawCat[ev.Name] = true
		default:
			t.Fatalf("event %d (%s): unexpected phase %q", i, ev.Name, ev.Ph)
		}
	}
	for _, want := range []string{"rank 0", "rank 1", "fault injector", "detector", "recovery"} {
		if !threadNames[want] {
			t.Errorf("no thread named %q (have %v)", want, threadNames)
		}
	}
	for _, want := range []string{"compute", "checkpoint", "recovery", "inject", "finish"} {
		if !sawCat[want] {
			t.Errorf("no %q event in a faulted ULFM run", want)
		}
	}
}
