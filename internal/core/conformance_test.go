package core

import (
	"testing"

	"match/internal/apps"
	"match/internal/fault"
)

// TestDesignConformanceMatrix is the contract future designs must keep:
// every registered application under every Designs() entry, on the Small
// Table I input with an injected process failure, must produce a valid
// breakdown — completed, positive total, checkpoints written, the
// failure recovered, and (spot-checked on one design per app below and on
// every cell by the replica determinism test) byte-identical reruns.
// A design added to Designs() without passing this sweep cannot silently
// break an app.
func TestDesignConformanceMatrix(t *testing.T) {
	for _, app := range apps.Names() {
		app := app
		t.Run(app, func(t *testing.T) {
			for _, d := range Designs() {
				d := d
				t.Run(d.String(), func(t *testing.T) {
					cfg := Config{
						App: app, Design: d, Procs: 8, Nodes: 4,
						Input: Small, InjectFault: true, FaultSeed: 9,
					}
					bd, err := Run(cfg)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					if !bd.Completed {
						t.Fatal("run did not complete")
					}
					if bd.Total <= 0 {
						t.Fatalf("total = %v", bd.Total)
					}
					if bd.Ckpt <= 0 || bd.CkptCount <= 0 {
						t.Fatalf("no checkpoints recorded: ckpt=%v count=%d", bd.Ckpt, bd.CkptCount)
					}
					if bd.Recoveries < 1 || bd.Recovery <= 0 {
						t.Fatalf("failure not recovered: recoveries=%d recovery=%v", bd.Recoveries, bd.Recovery)
					}
					if bd.Messages <= 0 || bd.NetBytes <= 0 {
						t.Fatalf("no traffic recorded: %d msgs, %d bytes", bd.Messages, bd.NetBytes)
					}
				})
			}
		})
	}
}

// TestDesignConformanceDeterministic reruns one cell per app (rotating
// through the designs) and requires byte-identical breakdowns — the
// property every figure, ratio, and regression comparison rests on.
func TestDesignConformanceDeterministic(t *testing.T) {
	designs := Designs()
	for i, app := range apps.Names() {
		d := designs[i%len(designs)]
		cfg := Config{
			App: app, Design: d, Procs: 8, Nodes: 4,
			Input: Small, InjectFault: true, FaultSeed: 9,
		}
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s/%s first run: %v", app, d, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s/%s second run: %v", app, d, err)
		}
		if a != b {
			t.Fatalf("%s/%s not deterministic:\n%+v\n%+v", app, d, a, b)
		}
	}
}

// TestCampaignConformanceMatrix extends the conformance contract to
// multi-failure campaigns: every design must survive a k=2 schedule whose
// second event arms only after the first recovery — a failure landing in
// the catch-up window — and produce a valid, deterministic breakdown.
func TestCampaignConformanceMatrix(t *testing.T) {
	sched := fault.Schedule{Events: []fault.Event{
		{TargetRank: 3, TargetIter: 4},
		{TargetRank: 5, TargetIter: 7, AfterRecoveries: 1},
	}}
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			cfg := Config{
				App: "HPCCG", Design: d, Procs: 8, Nodes: 4,
				Input: Small, Schedule: &sched,
			}
			a, err := Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !a.Completed || a.Total <= 0 {
				t.Fatalf("invalid breakdown: %+v", a)
			}
			if a.FaultsInjected != 2 {
				t.Fatalf("faults fired = %d, want 2", a.FaultsInjected)
			}
			if a.Recoveries < 1 || a.Recovery <= 0 {
				t.Fatalf("failures not recovered: recoveries=%d recovery=%v", a.Recoveries, a.Recovery)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatalf("rerun: %v", err)
			}
			if a != b {
				t.Fatalf("not deterministic:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestReplicaAllAppsSmall64 pins the acceptance bar of the ReplicaFTI
// extension: the paper-scale default configuration (64 procs, Small input)
// must run under replication for all six proxy applications, and rerun to
// a byte-identical breakdown.
func TestReplicaAllAppsSmall64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-proc sweep skipped in -short mode")
	}
	for _, app := range apps.Names() {
		app := app
		t.Run(app, func(t *testing.T) {
			cfg := Config{App: app, Design: ReplicaFTI, Procs: 64, Input: Small,
				InjectFault: true, FaultSeed: 1}
			a, err := Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !a.Completed || a.Recoveries < 1 {
				t.Fatalf("bad breakdown: %+v", a)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatalf("rerun: %v", err)
			}
			if a != b {
				t.Fatalf("not byte-identical:\n%+v\n%+v", a, b)
			}
		})
	}
}
