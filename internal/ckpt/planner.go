package ckpt

import (
	"math"

	"match/internal/fti"
	"match/internal/obs"
	"match/internal/simnet"
	"match/internal/trace"
)

// Planner owns checkpoint placement for one benchmark run. It is shared by
// every rank across every job incarnation (like the fault injector): each
// incarnation acquires its policy through Policy(), which re-arms — and,
// for the adaptive strategy, recomputes the interval from the costs
// observed so far — whenever the run's recovery count has advanced since
// the previous acquisition. The harness reads the avoided-checkpoint
// counter and the per-incarnation stride history back out for reporting.
type Planner struct {
	cfg     Config
	maxIter int
	faults  int

	// Epoch reports the completed recovery count — the incarnation marker
	// policies re-arm on. The harness points it at the active design's
	// recovery log (the same feed the fault injector uses); nil pins a
	// single incarnation.
	Epoch func() int
	// Degree reports the minimum live replica-group degree across logical
	// ranks — the replica-aware policy's protection signal. The replica
	// runtime feeds it; nil means unreplicated (degree 1), under which
	// replica-aware placement degenerates to the base stride.
	Degree func() int

	// Trace receives placement-decision events (policy re-arms and avoided
	// checkpoints) when the harness runs with a recorder attached; Now
	// supplies the virtual clock for them. Both nil by default — the
	// planner itself is clock-free.
	Trace *trace.Recorder
	Now   func() simnet.Time
	// Metrics receives the same placement-decision events as counters
	// (policy re-arms and avoided checkpoints); nil — the default — is
	// inert. The planner is not cluster-attached, so the harness wires it
	// directly, like Trace.
	Metrics *obs.Registry

	pol      *policy
	polEpoch int
	avoided  int
	strides  []int

	ckptN, stepN     int64
	ckptSum, stepSum simnet.Time
}

// NewPlanner validates a resolved configuration and returns the planner
// for one run of maxIter iterations with faults scheduled failures.
func NewPlanner(cfg Config, maxIter, faults int) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Planner{cfg: cfg, maxIter: maxIter, faults: faults}, nil
}

// Config returns the resolved configuration in use.
func (pl *Planner) Config() Config { return pl.cfg }

// Policy returns the placement policy for the current incarnation,
// re-arming (and recomputing the adaptive interval) when the epoch has
// advanced since the last acquisition. Every rank of an incarnation gets
// the same instance, which is what keeps decisions collective-safe.
func (pl *Planner) Policy() Policy {
	e := 0
	if pl.Epoch != nil {
		e = pl.Epoch()
	}
	if pl.pol == nil || e != pl.polEpoch {
		pl.polEpoch = e
		pl.pol = pl.build()
		pl.strides = append(pl.strides, pl.pol.stride)
		pl.Metrics.Inc(obs.CPolicyArms)
		if pl.Trace.Wants(trace.CatPolicyArm) && pl.Now != nil {
			pl.Trace.Emit(trace.Span{Cat: trace.CatPolicyArm, Rank: -1,
				Start: int64(pl.Now()), Level: int32(e), Aux: int64(pl.pol.stride)})
		}
	}
	return pl.pol
}

// Avoided counts the placement points where the base fixed-stride policy
// would have checkpointed but the active policy skipped — the checkpoints
// replication (or a longer adaptive interval) saved. Counted once per
// decided iteration, accumulated across incarnations.
func (pl *Planner) Avoided() int { return pl.avoided }

// Strides lists the effective base stride of every incarnation so far
// (diagnostics; the adaptive-recomputation tests read it).
func (pl *Planner) Strides() []int { return append([]int(nil), pl.strides...) }

func (pl *Planner) degree() int {
	if pl.Degree == nil {
		return 1
	}
	return pl.Degree()
}

func (pl *Planner) observe(what Obs, cost simnet.Time) {
	switch what {
	case ObsCkpt:
		pl.ckptN++
		pl.ckptSum += cost
	case ObsStep:
		pl.stepN++
		pl.stepSum += cost
	}
}

// adaptiveStride is the Young–Daly interval in iteration units:
// sqrt(2 * C * M), with the checkpoint cost C measured in steps
// (mean checkpoint duration over mean step duration) and the mean time
// between failures M taken from the fault schedule's density over the
// main loop. With nothing scheduled to fail the optimum degenerates to
// "never pay": one checkpoint at iteration 0. Before any costs have been
// measured (the first incarnation) the base stride stands in.
func (pl *Planner) adaptiveStride() int {
	if pl.faults <= 0 {
		return pl.maxIter
	}
	if pl.ckptN == 0 || pl.stepN == 0 || pl.stepSum == 0 {
		return pl.cfg.Stride
	}
	c := float64(pl.ckptSum) / float64(pl.ckptN) / (float64(pl.stepSum) / float64(pl.stepN))
	m := float64(pl.maxIter) / float64(pl.faults)
	s := int(math.Round(math.Sqrt(2 * c * m)))
	if s < 1 {
		s = 1
	}
	if s > pl.maxIter {
		s = pl.maxIter
	}
	return s
}

// build constructs the policy for the incarnation that is starting.
func (pl *Planner) build() *policy {
	p := &policy{pl: pl, memo: make(map[int]Decision), stride: pl.cfg.Stride}
	switch pl.cfg.Kind {
	case Never:
		p.stride = 0
		p.decide = func(int) Decision { return Decision{} }
	case Fixed:
		p.decide = func(iter int) Decision { return every(iter, pl.cfg.Stride) }
	case MultiLevel:
		p.decide = func(iter int) Decision {
			d := every(iter, pl.cfg.Stride)
			if !d.Take {
				return d
			}
			// 1-based index of the checkpoint about to be taken this
			// incarnation; the highest due escalation wins.
			n := p.taken + 1
			switch {
			case pl.cfg.L4Every > 0 && n%pl.cfg.L4Every == 0:
				d.Level = fti.L4
			case pl.cfg.L3Every > 0 && n%pl.cfg.L3Every == 0:
				d.Level = fti.L3
			case pl.cfg.L2Every > 0 && n%pl.cfg.L2Every == 0:
				d.Level = fti.L2
			}
			return d
		}
	case ReplicaAware:
		p.decide = func(iter int) Decision {
			if pl.degree() >= 2 {
				// Every rank's state survives a process failure: replication
				// recovers without rollback, so checkpoints are (mostly)
				// redundant here.
				if pl.cfg.SkipProtected {
					return Decision{}
				}
				return every(iter, pl.cfg.Stride*pl.cfg.Stretch)
			}
			// A group degraded to degree 1 (or partial replication left
			// some rank unprotected): re-arm to the base stride.
			return every(iter, pl.cfg.Stride)
		}
	case Adaptive:
		stride := pl.adaptiveStride()
		p.stride = stride
		p.decide = func(iter int) Decision { return every(iter, stride) }
	}
	return p
}

func every(iter, stride int) Decision {
	return Decision{Take: stride > 0 && iter%stride == 0}
}

// policy is the shared implementation of every strategy: a per-iteration
// decision memo around a strategy-specific decide function.
type policy struct {
	pl     *Planner
	memo   map[int]Decision
	decide func(iter int) Decision
	taken  int
	stride int // effective base stride this incarnation (0 = never)
}

func (p *policy) Kind() Kind { return p.pl.cfg.Kind }

func (p *policy) Next(s State) Decision {
	if d, ok := p.memo[s.Iter]; ok {
		return d
	}
	d := p.decide(s.Iter)
	if d.Take {
		p.taken++
	} else if p.pl.cfg.Stride > 0 && s.Iter%p.pl.cfg.Stride == 0 {
		p.pl.avoided++
		p.pl.Metrics.Inc(obs.CPolicyAvoids)
		if p.pl.Trace.Wants(trace.CatPolicyAvoid) && p.pl.Now != nil {
			p.pl.Trace.Emit(trace.Span{Cat: trace.CatPolicyAvoid, Rank: -1,
				Start: int64(p.pl.Now()), Aux: int64(s.Iter)})
		}
	}
	p.memo[s.Iter] = d
	return d
}

func (p *policy) Observe(what Obs, cost simnet.Time) { p.pl.observe(what, cost) }

// FixedPolicy is a standalone stride-N policy at the run's configured
// level — the fallback the shared main loop installs when a Context was
// built without a planner (custom harnesses, app tests). A stride < 1
// keeps the historical default of 10.
func FixedPolicy(stride int) Policy {
	if stride < 1 {
		stride = 10
	}
	pl, err := NewPlanner(Config{Kind: Fixed, Stride: stride}, 0, 0)
	if err != nil {
		panic(err) // unreachable: the config is valid by construction
	}
	return pl.Policy()
}

// NeverPolicy takes no checkpoints — the explicit spelling of what tests
// used to fake with an astronomically large stride.
func NeverPolicy() Policy {
	pl, err := NewPlanner(Config{Kind: Never}, 0, 0)
	if err != nil {
		panic(err) // unreachable: the config is valid by construction
	}
	return pl.Policy()
}
