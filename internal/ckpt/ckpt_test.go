package ckpt

import (
	"strings"
	"testing"

	"match/internal/fti"
	"match/internal/simnet"
)

func mustPlanner(t *testing.T, cfg Config, maxIter, faults int) *Planner {
	t.Helper()
	pl, err := NewPlanner(Resolve(cfg, 0), maxIter, faults)
	if err != nil {
		t.Fatalf("planner: %v", err)
	}
	return pl
}

// decisions replays a policy over the whole iteration space and returns
// the iterations it checkpoints at, keyed to their levels.
func decisions(p Policy, maxIter int) map[int]fti.Level {
	out := map[int]fti.Level{}
	for i := 0; i < maxIter; i++ {
		if d := p.Next(State{Iter: i}); d.Take {
			out[i] = d.Level
		}
	}
	return out
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseKind(""); err != nil || k != Fixed {
		t.Fatalf("empty name = %v, %v (want fixed)", k, err)
	}
	if k, err := ParseKind("Replica-Aware"); err != nil || k != ReplicaAware {
		t.Fatalf("case-insensitive parse = %v, %v", k, err)
	}
	if _, err := ParseKind("bogus"); err == nil || !strings.Contains(err.Error(), "fixed") {
		t.Fatalf("unknown name error %v must list valid kinds", err)
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	bad := []Config{
		{Kind: Fixed, Stride: 0},                       // unresolved stride
		{Kind: Fixed, Stride: -3},                      // negative stride
		{Kind: Fixed, Stride: 10, L2Every: 2},          // escalation on fixed
		{Kind: MultiLevel, Stride: 10},                 // multi-level with no levels
		{Kind: MultiLevel, Stride: 10, L2Every: -1},    // negative interleave
		{Kind: Adaptive, Stride: 10, Stretch: 2},       // stretch on adaptive
		{Kind: ReplicaAware, Stride: 10},               // unresolved stretch
		{Kind: Fixed, Stride: 10, SkipProtected: true}, // skip on fixed
		{Kind: Kind(42), Stride: 10},                   // unknown kind
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", c)
		}
	}
	// Resolve must repair every resolvable case.
	for _, k := range Kinds() {
		if err := Resolve(Config{Kind: k}, 0).Validate(); err != nil {
			t.Errorf("resolved %v invalid: %v", k, err)
		}
	}
}

func TestResolveFillsStrideAndDefaults(t *testing.T) {
	c := Resolve(Config{}, 7)
	if c.Kind != Fixed || c.Stride != 7 {
		t.Fatalf("resolved zero config = %+v", c)
	}
	if c := Resolve(Config{}, 0); c.Stride != 10 {
		t.Fatalf("fallback stride = %d, want 10", c.Stride)
	}
	ml := Resolve(Config{Kind: MultiLevel}, 0)
	if ml.L2Every != 3 || ml.L4Every != 10 || ml.L3Every != 0 {
		t.Fatalf("multi-level defaults = %+v", ml)
	}
	// An explicit partial interleave is kept, not overwritten.
	ml = Resolve(Config{Kind: MultiLevel, L3Every: 5}, 0)
	if ml.L2Every != 0 || ml.L3Every != 5 || ml.L4Every != 0 {
		t.Fatalf("explicit interleave clobbered: %+v", ml)
	}
	if ra := Resolve(Config{Kind: ReplicaAware}, 0); ra.Stretch != 4 {
		t.Fatalf("replica-aware default stretch = %d", ra.Stretch)
	}
}

// The refactoring invariant: the fixed policy is the old iter%stride loop.
func TestFixedMatchesStrideArithmetic(t *testing.T) {
	pl := mustPlanner(t, Config{Stride: 10}, 95, 0)
	got := decisions(pl.Policy(), 95)
	for i := 0; i < 95; i++ {
		lvl, take := got[i]
		if take != (i%10 == 0) {
			t.Fatalf("iter %d: take=%v, want %v", i, take, i%10 == 0)
		}
		if take && lvl != 0 {
			t.Fatalf("iter %d: fixed placement overrode the level to %v", i, lvl)
		}
	}
	if pl.Avoided() != 0 {
		t.Fatalf("fixed placement avoided %d checkpoints", pl.Avoided())
	}
}

func TestNeverPolicy(t *testing.T) {
	p := NeverPolicy()
	if len(decisions(p, 200)) != 0 {
		t.Fatal("never policy checkpointed")
	}
	if p.Kind() != Never {
		t.Fatalf("kind = %v", p.Kind())
	}
}

func TestMultiLevelInterleave(t *testing.T) {
	pl := mustPlanner(t, Config{Kind: MultiLevel, Stride: 10, L2Every: 2, L4Every: 4}, 100, 0)
	got := decisions(pl.Policy(), 100)
	// Checkpoints land on the stride; levels cycle 1-based: L1, L2, L1, L4...
	want := map[int]fti.Level{0: 0, 10: fti.L2, 20: 0, 30: fti.L4, 40: 0, 50: fti.L2, 60: 0, 70: fti.L4, 80: 0, 90: fti.L2}
	if len(got) != len(want) {
		t.Fatalf("got %d checkpoints, want %d (%v)", len(got), len(want), got)
	}
	for i, lvl := range want {
		if got[i] != lvl {
			t.Fatalf("iter %d: level %v, want %v", i, got[i], lvl)
		}
	}
}

func TestReplicaAwareStretchAndRearm(t *testing.T) {
	degree := 2
	pl := mustPlanner(t, Config{Kind: ReplicaAware, Stretch: 4}, 100, 0)
	pl.Degree = func() int { return degree }
	p := pl.Policy()
	// Fully protected: stride 10 stretched to 40.
	for i := 0; i < 50; i++ {
		if d := p.Next(State{Iter: i}); d.Take != (i%40 == 0) {
			t.Fatalf("protected iter %d: take=%v", i, d.Take)
		}
	}
	// A failover degrades a group: the policy re-arms to the base stride
	// for iterations not yet decided.
	degree = 1
	for i := 50; i < 100; i++ {
		if d := p.Next(State{Iter: i}); d.Take != (i%10 == 0) {
			t.Fatalf("degraded iter %d: take=%v", i, d.Take)
		}
	}
	// Avoided counts the base-stride points skipped while protected
	// (10, 20, 30 — iter 0 and 40 were taken).
	if pl.Avoided() != 3 {
		t.Fatalf("avoided = %d, want 3", pl.Avoided())
	}
	// Memoized decisions stay sticky: re-asking about a protected-era
	// iteration after degradation returns the original decision.
	if d := p.Next(State{Iter: 20}); d.Take {
		t.Fatal("iter 20 decision changed on replay")
	}
}

func TestReplicaAwareSkipProtected(t *testing.T) {
	pl := mustPlanner(t, Config{Kind: ReplicaAware, SkipProtected: true}, 60, 0)
	pl.Degree = func() int { return 2 }
	if got := decisions(pl.Policy(), 60); len(got) != 0 {
		t.Fatalf("skip-protected checkpointed at %v", got)
	}
	if pl.Avoided() != 6 {
		t.Fatalf("avoided = %d, want 6", pl.Avoided())
	}
}

func TestReplicaAwareUnreplicatedDegeneratesToFixed(t *testing.T) {
	// No degree feed (an unreplicated design): identical to fixed.
	pl := mustPlanner(t, Config{Kind: ReplicaAware}, 50, 0)
	got := decisions(pl.Policy(), 50)
	for i := 0; i < 50; i++ {
		if _, take := got[i]; take != (i%10 == 0) {
			t.Fatalf("iter %d take=%v", i, take)
		}
	}
}

// Decisions must be identical across ranks however their clocks
// interleave: the first consultation decides, replays agree — even when
// the live input changed in between.
func TestDecisionsMemoizedAcrossRanks(t *testing.T) {
	degree := 2
	pl := mustPlanner(t, Config{Kind: ReplicaAware, Stretch: 2}, 40, 0)
	pl.Degree = func() int { return degree }
	p := pl.Policy()
	first := p.Next(State{Iter: 20})  // rank A reaches iter 20 while protected
	degree = 1                        // failover lands
	second := p.Next(State{Iter: 20}) // rank B reaches iter 20 after it
	if first != second {
		t.Fatalf("ranks diverged at iter 20: %+v vs %+v (collective deadlock)", first, second)
	}
}

func TestAdaptiveNoFaultsCheckpointsOnce(t *testing.T) {
	pl := mustPlanner(t, Config{Kind: Adaptive}, 120, 0)
	got := decisions(pl.Policy(), 120)
	if len(got) != 1 {
		t.Fatalf("fault-free adaptive took %d checkpoints, want 1 (iter 0 only): %v", len(got), got)
	}
	if _, ok := got[0]; !ok {
		t.Fatalf("missing iteration-0 checkpoint: %v", got)
	}
	// Every skipped base-stride point counts as avoided: 10..110.
	if pl.Avoided() != 11 {
		t.Fatalf("avoided = %d, want 11", pl.Avoided())
	}
}

func TestAdaptiveRecomputesPerIncarnation(t *testing.T) {
	epoch := 0
	pl := mustPlanner(t, Config{Kind: Adaptive}, 100, 1)
	pl.Epoch = func() int { return epoch }
	p0 := pl.Policy()
	// First incarnation: nothing measured yet, base stride stands in.
	if s := pl.Strides(); len(s) != 1 || s[0] != 10 {
		t.Fatalf("first-incarnation strides = %v, want [10]", s)
	}
	// Feed measurements: checkpoints cost 2 steps, MTBF = 100 iters, so
	// Young-Daly says sqrt(2*2*100) = 20.
	p0.Observe(ObsCkpt, 2*simnet.Second)
	p0.Observe(ObsStep, 1*simnet.Second)
	epoch = 1 // a recovery happened; the next incarnation re-arms
	p1 := pl.Policy()
	if p1 == p0 {
		t.Fatal("policy not re-armed on epoch change")
	}
	if s := pl.Strides(); len(s) != 2 || s[1] != 20 {
		t.Fatalf("recomputed strides = %v, want [10 20]", s)
	}
	got := decisions(p1, 100)
	for i := 0; i < 100; i++ {
		if _, take := got[i]; take != (i%20 == 0) {
			t.Fatalf("iter %d take=%v under recomputed stride", i, take)
		}
	}
	// Same epoch: the same policy instance is handed to every rank.
	if pl.Policy() != p1 {
		t.Fatal("policy rebuilt without an epoch change")
	}
}

func TestMultiLevelCounterResetsPerIncarnation(t *testing.T) {
	epoch := 0
	pl := mustPlanner(t, Config{Kind: MultiLevel, L2Every: 2}, 40, 1)
	pl.Epoch = func() int { return epoch }
	first := decisions(pl.Policy(), 40)
	epoch = 1
	second := decisions(pl.Policy(), 40)
	// A fresh incarnation replays the same escalation pattern from its
	// own counter, not the previous incarnation's.
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("iter %d: %v then %v across incarnations", i, first[i], second[i])
		}
	}
}

func TestConfigString(t *testing.T) {
	cases := map[string]Config{
		"fixed":                        {},
		"fixed(s=10)":                  {Kind: Fixed, Stride: 10},
		"multi-level(s=10,l2=3,l4=10)": Resolve(Config{Kind: MultiLevel}, 0),
		"replica-aware(s=10,x4)":       Resolve(Config{Kind: ReplicaAware}, 0),
		"replica-aware(s=10,skip)":     Resolve(Config{Kind: ReplicaAware, SkipProtected: true}, 0),
		"adaptive(s=10)":               Resolve(Config{Kind: Adaptive}, 0),
		"never":                        Resolve(Config{Kind: Never}, 0),
	}
	for want, c := range cases {
		if got := c.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", c, got, want)
		}
	}
}
