// Package ckpt is MATCH's checkpoint-placement subsystem: it decides, per
// main-loop iteration, whether a checkpoint is taken and at which FTI
// level. Placement used to be a hardcoded iter%stride inside the shared
// main loop, which made the interesting questions — FTI-style multi-level
// interleaving, replication-aware stride stretching (PartRePer/FTHP-MPI's
// "replicated ranks should pay less checkpoint overhead"), Young–Daly
// interval selection — unmeasurable. This package factors placement into a
// Policy interface with five strategies, so any design can run under any
// placement and the checkpoint-overhead axis becomes sweepable everywhere:
//
//   - Fixed: the classic stride-N placement at the run's configured level,
//     byte-identical to the historical iter%stride main loop.
//   - MultiLevel: FTI-style interleaving — L1 every stride, with every
//     L2Every-th checkpoint escalated to a partner copy, every L3Every-th
//     to Reed–Solomon, every L4Every-th to the PFS.
//   - ReplicaAware: while every rank's state survives a process failure
//     (minimum live replica-group degree >= 2), checkpoints run at a
//     stretched stride — or are skipped entirely — since replication
//     already provides rollback-free recovery; the moment any group
//     degrades to degree 1 (a failover, or partial replication) the policy
//     re-arms to the base stride.
//   - Adaptive: a Young–Daly-style interval derived from the fault
//     schedule's density and the measured per-checkpoint cost, recomputed
//     at every incarnation.
//   - Never: no checkpoints at all (the explicit spelling of what tests
//     used to fake with a 1<<30 stride).
//
// A placement decision must be identical on every rank of an iteration —
// FTI's checkpoint commit is collective, so a rank that checkpoints while
// another skips would deadlock the job. Policies therefore memoize one
// decision per iteration (the first rank to reach the iteration computes
// it, everyone else replays it), which also keeps live inputs like the
// replica-group degree consistent however rank clocks interleave.
package ckpt

import (
	"fmt"
	"strings"

	"match/internal/fti"
	"match/internal/simnet"
)

// Kind selects a placement strategy. Fixed is the zero value so untouched
// configurations reproduce the historical stride placement byte-for-byte.
type Kind int

const (
	// Fixed checkpoints every Stride iterations at the run's level.
	Fixed Kind = iota
	// MultiLevel interleaves FTI levels: L1 every stride, periodic
	// escalations to L2/L3/L4.
	MultiLevel
	// ReplicaAware stretches (or skips) the stride while replication
	// protects every rank, re-arming to the base stride on degradation.
	ReplicaAware
	// Adaptive recomputes a Young–Daly interval per incarnation.
	Adaptive
	// Never takes no checkpoints at all.
	Never
)

func (k Kind) String() string {
	switch k {
	case Fixed:
		return "fixed"
	case MultiLevel:
		return "multi-level"
	case ReplicaAware:
		return "replica-aware"
	case Adaptive:
		return "adaptive"
	case Never:
		return "never"
	}
	return fmt.Sprintf("ckpt.Kind(%d)", int(k))
}

// Kinds lists every strategy, Fixed first.
func Kinds() []Kind { return []Kind{Fixed, MultiLevel, ReplicaAware, Adaptive, Never} }

// ParseKind resolves a strategy name case-insensitively ("" means Fixed).
func ParseKind(name string) (Kind, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	if want == "" {
		return Fixed, nil
	}
	for _, k := range Kinds() {
		if want == k.String() {
			return k, nil
		}
	}
	names := make([]string, 0, len(Kinds()))
	for _, k := range Kinds() {
		names = append(names, k.String())
	}
	return 0, fmt.Errorf("ckpt: unknown placement policy %q (valid: %s)", name, strings.Join(names, ", "))
}

// Config tunes a placement policy. Zero fields are filled by Resolve from
// the kind's defaults; Validate itself is strict and rejects
// configurations that are internally inconsistent or could never place a
// checkpoint sensibly.
type Config struct {
	Kind Kind
	// Stride is the base checkpoint period in iterations (the L1 period
	// for MultiLevel; the un-stretched period for ReplicaAware; the
	// first-incarnation fallback for Adaptive). Zero resolves to the run's
	// CkptStride (the paper's 10).
	Stride int
	// L2Every / L3Every / L4Every escalate every Nth checkpoint to that
	// level (MultiLevel only; zero disables the level). When several apply
	// to the same checkpoint the highest level wins.
	L2Every, L3Every, L4Every int
	// Stretch multiplies the stride while every rank's state is
	// replica-protected (ReplicaAware only; default 4).
	Stretch int
	// SkipProtected skips checkpoints entirely — not just stretches —
	// while every rank is replica-protected (ReplicaAware only).
	SkipProtected bool
}

// Defaults returns the calibrated default configuration for a kind.
func Defaults(k Kind) Config {
	switch k {
	case MultiLevel:
		// FTI-flavored interleave: a partner copy every 3rd checkpoint and
		// a PFS flush every 10th; L3 erasure coding stays opt-in.
		return Config{Kind: MultiLevel, L2Every: 3, L4Every: 10}
	case ReplicaAware:
		return Config{Kind: ReplicaAware, Stretch: 4}
	default:
		return Config{Kind: k}
	}
}

// Resolve merges a user-supplied configuration with the run's base stride:
// a zero Stride becomes baseStride (itself defaulting to the paper's 10),
// and the kind's remaining zero fields are filled from Defaults. The
// result of Resolve always passes Validate when the inputs are sane.
func Resolve(user Config, baseStride int) Config {
	out := user
	if out.Stride == 0 {
		out.Stride = baseStride
	}
	if out.Stride == 0 {
		out.Stride = 10
	}
	def := Defaults(out.Kind)
	if out.Kind == MultiLevel && out.L2Every == 0 && out.L3Every == 0 && out.L4Every == 0 {
		out.L2Every, out.L3Every, out.L4Every = def.L2Every, def.L3Every, def.L4Every
	}
	if out.Kind == ReplicaAware && out.Stretch == 0 {
		out.Stretch = def.Stretch
	}
	return out
}

// Validate rejects configurations that are internally inconsistent. It is
// strict: call it (or NewPlanner, which calls it) on resolved
// configurations.
func (c Config) Validate() error {
	if c.Kind < Fixed || c.Kind > Never {
		return fmt.Errorf("ckpt: unknown placement kind %d", int(c.Kind))
	}
	if c.Kind != Never && c.Stride < 1 {
		return fmt.Errorf("ckpt: %s placement with stride %d would never checkpoint (want >= 1, or the never policy)", c.Kind, c.Stride)
	}
	if c.L2Every < 0 || c.L3Every < 0 || c.L4Every < 0 {
		return fmt.Errorf("ckpt: negative level interleave (l2=%d l3=%d l4=%d)", c.L2Every, c.L3Every, c.L4Every)
	}
	if c.Kind != MultiLevel && (c.L2Every != 0 || c.L3Every != 0 || c.L4Every != 0) {
		return fmt.Errorf("ckpt: level interleaving only applies to the multi-level policy (got %s)", c.Kind)
	}
	if c.Kind == MultiLevel && c.L2Every == 0 && c.L3Every == 0 && c.L4Every == 0 {
		return fmt.Errorf("ckpt: multi-level placement with no escalation levels is just fixed placement (set l2/l3/l4-every, or use fixed)")
	}
	if c.Kind != ReplicaAware && (c.Stretch != 0 || c.SkipProtected) {
		return fmt.Errorf("ckpt: stretch/skip-protected only apply to the replica-aware policy (got %s)", c.Kind)
	}
	if c.Kind == ReplicaAware && c.Stretch < 1 {
		return fmt.Errorf("ckpt: replica-aware placement with stretch %d (want >= 1)", c.Stretch)
	}
	return nil
}

// String renders the configuration for tables and CSV output.
func (c Config) String() string {
	switch c.Kind {
	case MultiLevel:
		s := fmt.Sprintf("%s(s=%d", c.Kind, c.Stride)
		if c.L2Every > 0 {
			s += fmt.Sprintf(",l2=%d", c.L2Every)
		}
		if c.L3Every > 0 {
			s += fmt.Sprintf(",l3=%d", c.L3Every)
		}
		if c.L4Every > 0 {
			s += fmt.Sprintf(",l4=%d", c.L4Every)
		}
		return s + ")"
	case ReplicaAware:
		if c.SkipProtected {
			return fmt.Sprintf("%s(s=%d,skip)", c.Kind, c.Stride)
		}
		return fmt.Sprintf("%s(s=%d,x%d)", c.Kind, c.Stride, c.Stretch)
	case Never:
		return c.Kind.String()
	case Fixed, Adaptive:
		if c.Stride == 0 {
			return c.Kind.String() // unresolved zero value: the default
		}
		return fmt.Sprintf("%s(s=%d)", c.Kind, c.Stride)
	}
	return c.Kind.String()
}

// State is the per-iteration input to a placement decision.
type State struct {
	// Iter is the main-loop iteration about to execute.
	Iter int
}

// Decision is the outcome of one placement consultation.
type Decision struct {
	// Take requests a checkpoint before this iteration's step.
	Take bool
	// Level overrides the FTI level for this checkpoint; zero keeps the
	// run's configured level.
	Level fti.Level
}

// Obs labels a measured cost sample fed back to a policy.
type Obs int

const (
	// ObsCkpt is the duration of one completed checkpoint.
	ObsCkpt Obs = iota
	// ObsStep is the duration of one application step.
	ObsStep
)

// Policy decides checkpoint placement for one job incarnation. The main
// loop consults Next once per rank per iteration and feeds measured costs
// back through Observe. Implementations memoize per iteration, so every
// rank of an iteration sees the identical decision (the collective-commit
// requirement) and Next is cheap on replay. Policies run entirely on the
// simulated cluster's single-threaded scheduler; they are not
// goroutine-safe.
type Policy interface {
	// Kind reports the strategy.
	Kind() Kind
	// Next returns the placement decision for the iteration.
	Next(s State) Decision
	// Observe feeds a measured cost sample back (the adaptive policy
	// recomputes its interval from these at the next incarnation).
	Observe(what Obs, cost simnet.Time)
}
