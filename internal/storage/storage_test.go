package storage

import (
	"errors"
	"testing"

	"match/internal/simnet"
)

func withProc(t *testing.T, nodes int, body func(c *simnet.Cluster, s *System, p *simnet.Proc)) {
	t.Helper()
	c := simnet.NewCluster(simnet.Config{Nodes: nodes})
	s := New(c, Config{})
	c.StartProc(0, 0, func(p *simnet.Proc) { body(c, s, p) })
	c.Run()
}

func TestWriteReadRoundTrip(t *testing.T) {
	withProc(t, 2, func(c *simnet.Cluster, s *System, p *simnet.Proc) {
		for _, tier := range []Tier{RAMFS, SSD, PFS} {
			if err := s.Write(p, tier, 0, "a/b", []byte("payload")); err != nil {
				t.Errorf("%v write: %v", tier, err)
				continue
			}
			got, err := s.Read(p, tier, 0, "a/b")
			if err != nil || string(got) != "payload" {
				t.Errorf("%v read: %q %v", tier, got, err)
			}
			if !s.Exists(tier, 0, "a/b") {
				t.Errorf("%v exists false", tier)
			}
			if s.Size(tier, 0, "a/b") != 7 {
				t.Errorf("%v size = %d", tier, s.Size(tier, 0, "a/b"))
			}
			s.Delete(tier, 0, "a/b")
			if _, err := s.Read(p, tier, 0, "a/b"); !errors.Is(err, ErrNotFound) {
				t.Errorf("%v read-after-delete: %v", tier, err)
			}
		}
	})
}

func TestWriteCopiesData(t *testing.T) {
	withProc(t, 1, func(c *simnet.Cluster, s *System, p *simnet.Proc) {
		buf := []byte{1, 2, 3}
		s.Write(p, RAMFS, 0, "x", buf)
		buf[0] = 99
		got, _ := s.Read(p, RAMFS, 0, "x")
		if got[0] != 1 {
			t.Error("storage aliased caller's buffer")
		}
	})
}

func TestTierSpeedOrdering(t *testing.T) {
	withProc(t, 1, func(c *simnet.Cluster, s *System, p *simnet.Proc) {
		data := make([]byte, 1<<20)
		times := map[Tier]simnet.Time{}
		for _, tier := range []Tier{RAMFS, SSD} {
			t0 := p.Now()
			s.Write(p, tier, 0, "f", data)
			times[tier] = p.Now() - t0
		}
		if times[RAMFS] >= times[SSD] {
			t.Errorf("ramfs %v not faster than ssd %v", times[RAMFS], times[SSD])
		}
	})
}

func TestPFSContention(t *testing.T) {
	// Two procs flushing 10 MB each at the same instant: the second finishes
	// roughly twice as late as a lone writer would.
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	s := New(c, Config{})
	var done []simnet.Time
	for i := 0; i < 2; i++ {
		i := i
		c.StartProc(i, 0, func(p *simnet.Proc) {
			s.Write(p, PFS, i, "big", make([]byte, 10<<20))
			done = append(done, p.Now())
		})
	}
	c.Run()
	if len(done) != 2 {
		t.Fatal("procs did not finish")
	}
	first, second := done[0], done[1]
	if second < first {
		first, second = second, first
	}
	// 10 MB at the 20 GB/s aggregate takes 500 µs; the loser queues behind
	// the winner for one full transfer.
	xfer := simnet.Time(float64(10<<20) / s.Config().PFSBWBps * 1e9)
	if second-first < xfer*9/10 {
		t.Errorf("no PFS contention: first %v second %v (xfer %v)", first, second, xfer)
	}
}

func TestNodeFailureLosesLocalTiers(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	s := New(c, Config{})
	c.StartProc(0, 0, func(p *simnet.Proc) {
		s.Write(p, RAMFS, 0, "r", []byte("x"))
		s.Write(p, SSD, 0, "s", []byte("x"))
		s.Write(p, PFS, 0, "p", []byte("x"))
	})
	c.Run()
	c.FailNode(0)
	c.StartProc(1, 0, func(p *simnet.Proc) {
		if _, err := s.Read(p, RAMFS, 0, "r"); !errors.Is(err, ErrNodeDown) {
			t.Errorf("ramfs on dead node: %v", err)
		}
		if _, err := s.Read(p, SSD, 0, "s"); !errors.Is(err, ErrNodeDown) {
			t.Errorf("ssd on dead node: %v", err)
		}
		if _, err := s.Read(p, PFS, 1, "p"); err != nil {
			t.Errorf("pfs should survive node failure: %v", err)
		}
	})
	c.Run()
}

func TestRemoteWriteAndRead(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	s := New(c, Config{})
	c.StartProc(0, 0, func(p *simnet.Proc) {
		t0 := p.Now()
		if err := s.WriteRemote(p, RAMFS, 0, 1, "remote", make([]byte, 1<<20)); err != nil {
			t.Errorf("remote write: %v", err)
		}
		remoteCost := p.Now() - t0
		t1 := p.Now()
		s.Write(p, RAMFS, 0, "local", make([]byte, 1<<20))
		localCost := p.Now() - t1
		if remoteCost <= localCost {
			t.Errorf("remote write %v not slower than local %v", remoteCost, localCost)
		}
		got, err := s.ReadRemote(p, RAMFS, 1, 0, "remote")
		if err != nil || len(got) != 1<<20 {
			t.Errorf("remote read: %v len=%d", err, len(got))
		}
	})
	c.Run()
}

func TestList(t *testing.T) {
	withProc(t, 1, func(c *simnet.Cluster, s *System, p *simnet.Proc) {
		s.Write(p, RAMFS, 0, "dir/a", nil)
		s.Write(p, RAMFS, 0, "dir/b", nil)
		s.Write(p, RAMFS, 0, "other/c", nil)
		got := s.List(RAMFS, 0, "dir/")
		if len(got) != 2 || got[0] != "dir/a" || got[1] != "dir/b" {
			t.Errorf("list = %v", got)
		}
	})
}

func TestWriteFreeChargesNothing(t *testing.T) {
	withProc(t, 1, func(c *simnet.Cluster, s *System, p *simnet.Proc) {
		t0 := p.Now()
		s.WriteFree(PFS, 0, "free", make([]byte, 1<<24))
		if p.Now() != t0 {
			t.Error("WriteFree charged time")
		}
		if s.Size(PFS, 0, "free") != 1<<24 {
			t.Error("WriteFree did not store data")
		}
	})
}
