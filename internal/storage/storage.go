// Package storage simulates the cluster's storage hierarchy: per-node RAMFS
// (/dev/shm, where the paper stores L1 checkpoints), per-node local SSD,
// and a shared parallel file system (PFS). Reads and writes charge virtual
// time to the calling process according to per-tier latency and bandwidth;
// PFS traffic additionally serializes on shared PFS servers, so concurrent
// flushes from many ranks contend, just like a real Lustre partition.
//
// Failure semantics mirror the hardware: a *process* failure leaves all
// files intact (files in /dev/shm belong to the node, not the process — the
// property FTI L1 recovery relies on), while a *node* failure makes the
// node's RAMFS and SSD unreachable. The PFS survives everything.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"match/internal/simnet"
)

// Tier identifies a storage tier.
type Tier int

const (
	// RAMFS is node-local memory-backed storage (/dev/shm).
	RAMFS Tier = iota
	// SSD is node-local flash storage.
	SSD
	// PFS is the shared parallel file system.
	PFS
)

func (t Tier) String() string {
	switch t {
	case RAMFS:
		return "ramfs"
	case SSD:
		return "ssd"
	case PFS:
		return "pfs"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// ErrNotFound is returned when a path does not exist in the selected store.
var ErrNotFound = errors.New("storage: not found")

// ErrNodeDown is returned when accessing local storage of a failed node.
var ErrNodeDown = errors.New("storage: node down")

// Config sets the performance model for each tier.
type Config struct {
	RAMBWBps float64     // RAMFS bandwidth (bytes/s)
	RAMLat   simnet.Time // RAMFS per-op latency
	SSDBWBps float64
	SSDLat   simnet.Time
	PFSBWBps float64 // aggregate PFS bandwidth, shared by all clients
	PFSLat   simnet.Time
	// BytesScale multiplies sizes for time accounting only, so scaled-down
	// checkpoints charge paper-scale I/O time (DESIGN.md §6). Zero means 1.
	BytesScale float64
}

// DefaultConfig approximates the paper's testbed: fast shm, a local SSD,
// and a shared parallel file system.
func DefaultConfig() Config {
	return Config{
		RAMBWBps: 8e9, // 8 GB/s memcpy-bound
		RAMLat:   2 * simnet.Microsecond,
		SSDBWBps: 1e9, // 1 GB/s NVMe-ish
		SSDLat:   80 * simnet.Microsecond,
		PFSBWBps: 20e9, // 20 GB/s aggregate
		PFSLat:   2 * simnet.Millisecond,
	}
}

type nodeStore struct {
	ramfs map[string][]byte
	ssd   map[string][]byte
}

// System is the cluster-wide storage fabric.
type System struct {
	cfg     Config
	cluster *simnet.Cluster
	nodes   []*nodeStore
	pfs     map[string][]byte
	pfsFree simnet.Time // busy horizon of the shared PFS servers
}

// New builds the storage system for a cluster.
func New(c *simnet.Cluster, cfg Config) *System {
	def := DefaultConfig()
	if cfg.RAMBWBps == 0 {
		cfg.RAMBWBps = def.RAMBWBps
	}
	if cfg.RAMLat == 0 {
		cfg.RAMLat = def.RAMLat
	}
	if cfg.SSDBWBps == 0 {
		cfg.SSDBWBps = def.SSDBWBps
	}
	if cfg.SSDLat == 0 {
		cfg.SSDLat = def.SSDLat
	}
	if cfg.PFSBWBps == 0 {
		cfg.PFSBWBps = def.PFSBWBps
	}
	if cfg.PFSLat == 0 {
		cfg.PFSLat = def.PFSLat
	}
	s := &System{cfg: cfg, cluster: c, pfs: make(map[string][]byte)}
	for i := 0; i < c.NumNodes(); i++ {
		s.nodes = append(s.nodes, &nodeStore{
			ramfs: make(map[string][]byte),
			ssd:   make(map[string][]byte),
		})
	}
	return s
}

// Config returns the storage performance model.
func (s *System) Config() Config { return s.cfg }

func (s *System) local(tier Tier, node int) (map[string][]byte, error) {
	if !s.cluster.Node(node).Alive() {
		return nil, ErrNodeDown
	}
	switch tier {
	case RAMFS:
		return s.nodes[node].ramfs, nil
	case SSD:
		return s.nodes[node].ssd, nil
	}
	return nil, fmt.Errorf("storage: %v is not node-local", tier)
}

func (s *System) scaled(size int) float64 {
	b := float64(size)
	if s.cfg.BytesScale > 1 {
		b *= s.cfg.BytesScale
	}
	return b
}

// chargeLocal charges p for moving size bytes through a local tier.
func (s *System) chargeLocal(p *simnet.Proc, tier Tier, size int) {
	var bw float64
	var lat simnet.Time
	switch tier {
	case RAMFS:
		bw, lat = s.cfg.RAMBWBps, s.cfg.RAMLat
	case SSD:
		bw, lat = s.cfg.SSDBWBps, s.cfg.SSDLat
	}
	p.Sleep(lat + simnet.Time(s.scaled(size)/bw*1e9))
}

// chargePFS charges p for a PFS transfer, serializing on the shared
// servers: concurrent clients queue, so flush time grows with the number
// of ranks writing at once.
func (s *System) chargePFS(p *simnet.Proc, size int) {
	now := p.Now()
	start := now
	if s.pfsFree > start {
		start = s.pfsFree
	}
	xfer := simnet.Time(s.scaled(size) / s.cfg.PFSBWBps * 1e9)
	s.pfsFree = start + xfer
	p.Sleep((start - now) + xfer + s.cfg.PFSLat)
}

// Write stores data at path in the given tier of node (node is ignored for
// PFS) and charges the calling process. The data is copied.
func (s *System) Write(p *simnet.Proc, tier Tier, node int, path string, data []byte) error {
	cp := append([]byte(nil), data...)
	if tier == PFS {
		s.chargePFS(p, len(cp))
		s.pfs[path] = cp
		return nil
	}
	m, err := s.local(tier, node)
	if err != nil {
		return err
	}
	s.chargeLocal(p, tier, len(cp))
	m[path] = cp
	return nil
}

// WriteRemote stores data in a *remote* node's local tier, charging both
// the network transfer (via the sender's NIC) and the remote write. This is
// FTI L2's partner copy.
func (s *System) WriteRemote(p *simnet.Proc, tier Tier, fromNode, toNode int, path string, data []byte) error {
	arrive := s.cluster.SendArrival(fromNode, toNode, len(data), p.Now())
	p.Sleep(arrive - p.Now())
	return s.Write(p, tier, toNode, path, data)
}

// WriteFree installs data at path without charging any time. Used by
// differential checkpointing, where only the dirty blocks cross the wire
// but the logical file content is complete.
func (s *System) WriteFree(tier Tier, node int, path string, data []byte) error {
	cp := append([]byte(nil), data...)
	if tier == PFS {
		s.pfs[path] = cp
		return nil
	}
	m, err := s.local(tier, node)
	if err != nil {
		return err
	}
	m[path] = cp
	return nil
}

// Read returns the data at path, charging the calling process.
func (s *System) Read(p *simnet.Proc, tier Tier, node int, path string) ([]byte, error) {
	if tier == PFS {
		data, ok := s.pfs[path]
		if !ok {
			return nil, ErrNotFound
		}
		s.chargePFS(p, len(data))
		return append([]byte(nil), data...), nil
	}
	m, err := s.local(tier, node)
	if err != nil {
		return nil, err
	}
	data, ok := m[path]
	if !ok {
		return nil, ErrNotFound
	}
	s.chargeLocal(p, tier, len(data))
	return append([]byte(nil), data...), nil
}

// ReadRemote fetches a file from a remote node's local tier, charging the
// remote read plus the network transfer back. Used by FTI L2/L3 recovery.
func (s *System) ReadRemote(p *simnet.Proc, tier Tier, fromNode, toNode int, path string) ([]byte, error) {
	data, err := s.Read(p, tier, fromNode, path)
	if err != nil {
		return nil, err
	}
	arrive := s.cluster.SendArrival(fromNode, toNode, len(data), p.Now())
	p.Sleep(arrive - p.Now())
	return data, nil
}

// Delete removes a path; missing paths are ignored. No time is charged
// (metadata operations are negligible at checkpoint granularity).
func (s *System) Delete(tier Tier, node int, path string) {
	if tier == PFS {
		delete(s.pfs, path)
		return
	}
	if m, err := s.local(tier, node); err == nil {
		delete(m, path)
	}
}

// Exists reports whether path exists without charging time (a stat call).
func (s *System) Exists(tier Tier, node int, path string) bool {
	if tier == PFS {
		_, ok := s.pfs[path]
		return ok
	}
	m, err := s.local(tier, node)
	if err != nil {
		return false
	}
	_, ok := m[path]
	return ok
}

// List returns the sorted paths with the given prefix in a tier.
func (s *System) List(tier Tier, node int, prefix string) []string {
	var m map[string][]byte
	if tier == PFS {
		m = s.pfs
	} else {
		var err error
		m, err = s.local(tier, node)
		if err != nil {
			return nil
		}
	}
	var out []string
	for k := range m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the byte size of path or -1 if absent.
func (s *System) Size(tier Tier, node int, path string) int {
	if tier == PFS {
		if d, ok := s.pfs[path]; ok {
			return len(d)
		}
		return -1
	}
	m, err := s.local(tier, node)
	if err != nil {
		return -1
	}
	if d, ok := m[path]; ok {
		return len(d)
	}
	return -1
}
