package depanal

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// traceCG builds a trace for a miniature CG-like kernel:
//
//	x, r, p   — allocated before the loop, read+written, values vary  -> keep
//	b         — allocated before, read-only with constant values      -> drop (principle 3)
//	iter      — scalar counter, varies                                -> keep
//	tmp       — allocated inside the loop                             -> drop (principle 1)
func traceCG() *Trace {
	tc := NewTracer()
	tc.Alloc("x", 1000, 32, 10)
	tc.Alloc("r", 2000, 32, 11)
	tc.Alloc("p", 3000, 32, 12)
	tc.Alloc("b", 4000, 32, 13)
	tc.Alloc("iter", 5000, 8, 14)
	tc.LoopBegin(20)
	for it := 0; it < 3; it++ {
		tc.NextIter(it)
		tc.Alloc("tmp", 9000, 32, 21) // loop-local scratch
		for off := uint64(0); off < 32; off += 8 {
			tc.Load(4000+off, 77, 22)                     // b: same value every iteration
			tc.Load(1000+off, uint64(100+it)+off, 23)     // x varies
			tc.Store(1000+off, uint64(200+it)+off, 24)    //
			tc.Store(2000+off, uint64(300+it*3)+off, 25)  // r varies
			tc.Load(3000+off, uint64(400+it*7)+off, 26)   // p varies
			tc.Store(9000+off, uint64(500+it*11)+off, 27) // tmp varies but is loop-local
		}
		tc.Load(5000, uint64(it), 28)
		tc.Store(5000, uint64(it+1), 28)
	}
	tc.LoopEnd()
	return tc.Trace()
}

func TestAlgorithm1FindsCGState(t *testing.T) {
	res := Analyze(traceCG())
	var names []string
	for _, o := range res.Checkpoint {
		names = append(names, o.Name)
	}
	want := []string{"x", "r", "p", "iter"}
	if len(names) != len(want) {
		t.Fatalf("checkpoint objects = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("checkpoint objects = %v, want %v", names, want)
		}
	}
	if res.ExcludedConstant == 0 {
		t.Fatal("read-only b was not excluded by principle 3")
	}
	if res.ExcludedLoopLocal == 0 {
		t.Fatal("loop-local tmp was not excluded by principle 1")
	}
}

func TestAlgorithm1EmptyLoop(t *testing.T) {
	tc := NewTracer()
	tc.Alloc("x", 100, 8, 1)
	tc.LoopBegin(2)
	tc.LoopEnd()
	res := Analyze(tc.Trace())
	if len(res.Checkpoint) != 0 {
		t.Fatalf("empty loop produced %v", res.Checkpoint)
	}
}

func TestAlgorithm1BeforeLoopOnlyAccess(t *testing.T) {
	// Accesses before the loop must not mark objects.
	tc := NewTracer()
	tc.Alloc("x", 100, 8, 1)
	tc.Load(100, 1, 2)
	tc.Store(100, 2, 3)
	tc.LoopBegin(4)
	tc.NextIter(0)
	tc.LoopEnd()
	res := Analyze(tc.Trace())
	if len(res.Checkpoint) != 0 {
		t.Fatalf("pre-loop accesses selected %v", res.Checkpoint)
	}
}

func TestTraceFormatRoundTrip(t *testing.T) {
	tr := traceCG()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("events %d != %d", len(back.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back.Events[i], tr.Events[i])
		}
	}
	// Analysis of the round-tripped trace is identical.
	a, b := Analyze(tr), Analyze(back)
	if len(a.Checkpoint) != len(b.Checkpoint) {
		t.Fatal("round-trip changed the analysis")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("BOGUS addr=1\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWriteReport(t *testing.T) {
	var sb strings.Builder
	WriteReport(&sb, Analyze(traceCG()))
	out := sb.String()
	for _, want := range []string{"x", "iter", "principle 3", "principle 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// Property: objects whose in-loop values are all identical are never
// selected, regardless of access pattern shape.
func TestConstantNeverSelected(t *testing.T) {
	f := func(accesses uint8, iters uint8) bool {
		tc := NewTracer()
		tc.Alloc("c", 100, 64, 1)
		tc.LoopBegin(2)
		n := int(iters%5) + 1
		for it := 0; it < n; it++ {
			tc.NextIter(it)
			for a := 0; a < int(accesses%10)+1; a++ {
				tc.Load(100+uint64(a%8)*8, 42, 3) // constant value
			}
		}
		tc.LoopEnd()
		return len(Analyze(tc.Trace()).Checkpoint) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
