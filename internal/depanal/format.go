package depanal

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTrace serializes a trace in the tool's line format (one event per
// line, key=value fields), the analog of an LLVM-Tracer dump:
//
//	ALLOC name=x addr=4096 size=80 line=12
//	LOOPBEGIN line=20
//	ITER n=0
//	LOAD addr=4096 val=42 line=22
//	STORE addr=4104 val=7 line=23
//	LOOPEND
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	for _, e := range tr.Events {
		var err error
		switch e.Kind {
		case EvAlloc:
			_, err = fmt.Fprintf(bw, "ALLOC name=%s addr=%d size=%d line=%d\n", e.Name, e.Addr, e.Size, e.Line)
		case EvLoad:
			_, err = fmt.Fprintf(bw, "LOAD addr=%d val=%d line=%d\n", e.Addr, e.Value, e.Line)
		case EvStore:
			_, err = fmt.Fprintf(bw, "STORE addr=%d val=%d line=%d\n", e.Addr, e.Value, e.Line)
		case EvLoopBegin:
			_, err = fmt.Fprintf(bw, "LOOPBEGIN line=%d\n", e.Line)
		case EvLoopIter:
			_, err = fmt.Fprintf(bw, "ITER n=%d\n", e.Iter)
		case EvLoopEnd:
			_, err = fmt.Fprintln(bw, "LOOPEND")
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses the line format back into a trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		kv := map[string]string{}
		for _, f := range fields[1:] {
			if i := strings.IndexByte(f, '='); i > 0 {
				kv[f[:i]] = f[i+1:]
			}
		}
		get := func(k string) uint64 {
			v, _ := strconv.ParseUint(kv[k], 10, 64)
			return v
		}
		geti := func(k string) int {
			v, _ := strconv.Atoi(kv[k])
			return v
		}
		var e Event
		switch fields[0] {
		case "ALLOC":
			e = Event{Kind: EvAlloc, Name: kv["name"], Addr: get("addr"), Size: get("size"), Line: geti("line")}
		case "LOAD":
			e = Event{Kind: EvLoad, Addr: get("addr"), Value: get("val"), Line: geti("line")}
		case "STORE":
			e = Event{Kind: EvStore, Addr: get("addr"), Value: get("val"), Line: geti("line")}
		case "LOOPBEGIN":
			e = Event{Kind: EvLoopBegin, Line: geti("line")}
		case "ITER":
			e = Event{Kind: EvLoopIter, Iter: geti("n")}
		case "LOOPEND":
			e = Event{Kind: EvLoopEnd}
		default:
			return nil, fmt.Errorf("depanal: line %d: unknown record %q", lineNo, fields[0])
		}
		tr.Events = append(tr.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// WriteReport renders an analysis result for humans.
func WriteReport(w io.Writer, res Result) {
	fmt.Fprintln(w, "== Data objects to checkpoint (Algorithm 1) ==")
	if len(res.Checkpoint) == 0 {
		fmt.Fprintln(w, "(none found)")
	}
	for _, o := range res.Checkpoint {
		fmt.Fprintf(w, "  %-16s addr=%-8d size=%-8d line=%-5d (%d in-loop locations)\n",
			o.Name, o.Addr, o.Size, o.Line, len(o.Locations))
	}
	fmt.Fprintf(w, "excluded: %d constant-valued locations (principle 3), %d loop-local locations (principle 1)\n",
		res.ExcludedConstant, res.ExcludedLoopLocal)
}
