// Package depanal implements the paper's data-dependency analysis tool
// (§III-A, Algorithm 1): given a dynamic execution trace, it identifies
// the data objects that must be checkpointed for the application to resume
// correctly — and nothing more. The three principles:
//
//  1. checkpointable objects are defined/allocated *before* the main
//     computation loop (loop-local temporaries are excluded);
//  2. they are used (read or written) *inside* the loop;
//  3. their values *vary* across loop iterations (constants and read-only
//     inputs are excluded — they can be rebuilt from initialization).
//
// The paper generates traces with LLVM-Tracer; this package defines an
// equivalent trace format (package depanal/trace events), a Tracer API that
// instrumented kernels emit through, and the analysis itself.
package depanal

import (
	"fmt"
	"sort"
)

// EventKind discriminates trace records.
type EventKind int

// Trace record kinds.
const (
	EvAlloc EventKind = iota
	EvLoad
	EvStore
	EvLoopBegin
	EvLoopIter
	EvLoopEnd
)

func (k EventKind) String() string {
	switch k {
	case EvAlloc:
		return "ALLOC"
	case EvLoad:
		return "LOAD"
	case EvStore:
		return "STORE"
	case EvLoopBegin:
		return "LOOPBEGIN"
	case EvLoopIter:
		return "ITER"
	case EvLoopEnd:
		return "LOOPEND"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one dynamic trace record, the equivalent of an LLVM-Tracer
// instruction entry: location (register name or memory address), observed
// value, and source line.
type Event struct {
	Kind  EventKind
	Name  string // object name (allocs) or register name
	Addr  uint64
	Size  uint64 // allocation size in bytes
	Value uint64 // observed value bits (loads/stores)
	Line  int
	Iter  int // iteration index for ITER events
}

// Trace is an ordered dynamic execution trace.
type Trace struct {
	Events []Event
}

// Tracer records events; kernels under analysis call its methods at
// allocation sites, memory accesses, and loop boundaries.
type Tracer struct {
	tr   Trace
	iter int
	in   bool
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{iter: -1} }

// Alloc records an object definition/allocation.
func (t *Tracer) Alloc(name string, addr, size uint64, line int) {
	t.tr.Events = append(t.tr.Events, Event{Kind: EvAlloc, Name: name, Addr: addr, Size: size, Line: line})
}

// Load records a memory read of value at addr.
func (t *Tracer) Load(addr, value uint64, line int) {
	t.tr.Events = append(t.tr.Events, Event{Kind: EvLoad, Addr: addr, Value: value, Line: line})
}

// Store records a memory write of value to addr.
func (t *Tracer) Store(addr, value uint64, line int) {
	t.tr.Events = append(t.tr.Events, Event{Kind: EvStore, Addr: addr, Value: value, Line: line})
}

// LoopBegin marks the start of the main computation loop.
func (t *Tracer) LoopBegin(line int) {
	t.in = true
	t.tr.Events = append(t.tr.Events, Event{Kind: EvLoopBegin, Line: line})
}

// NextIter marks the start of loop iteration n.
func (t *Tracer) NextIter(n int) {
	t.iter = n
	t.tr.Events = append(t.tr.Events, Event{Kind: EvLoopIter, Iter: n})
}

// LoopEnd marks the end of the main computation loop.
func (t *Tracer) LoopEnd() {
	t.in = false
	t.tr.Events = append(t.tr.Events, Event{Kind: EvLoopEnd})
}

// Trace returns the recorded trace.
func (t *Tracer) Trace() *Trace { return &t.tr }

// Object is an identified checkpointable data object.
type Object struct {
	Name string
	Addr uint64
	Size uint64
	Line int
	// Locations are the in-loop addresses that matched this object.
	Locations []uint64
}

// Result of Algorithm 1.
type Result struct {
	// Checkpoint is the minimal set of data objects to protect, sorted by
	// allocation order.
	Checkpoint []Object
	// ExcludedConstant lists in-loop locations filtered by principle 3
	// (values never varied across iterations).
	ExcludedConstant int
	// ExcludedLoopLocal lists in-loop locations with no before-loop
	// allocation match (principle 1).
	ExcludedLoopLocal int
}

// alloc is one before-loop allocation.
type alloc struct {
	Object
	order int
}

// Analyze runs Algorithm 1 over the trace.
func Analyze(tr *Trace) Result {
	// Pass 1 (the "traverse the instruction trace once" of the paper):
	// gather before-loop allocations and in-loop location accesses with
	// their per-iteration invocation values.
	var allocs []alloc
	type locInfo struct {
		values map[uint64]bool
		seen   int
	}
	inLoop := map[uint64]*locInfo{}
	in := false
	order := 0
	for _, e := range tr.Events {
		switch e.Kind {
		case EvLoopBegin:
			in = true
		case EvLoopEnd:
			in = false
		case EvAlloc:
			if !in {
				allocs = append(allocs, alloc{Object: Object{Name: e.Name, Addr: e.Addr, Size: e.Size, Line: e.Line}, order: order})
				order++
			}
			// In-loop allocations are loop-local: principle 1 excludes them
			// by simply not entering the before-loop set.
		case EvLoad, EvStore:
			if !in {
				continue
			}
			li := inLoop[e.Addr]
			if li == nil {
				li = &locInfo{values: map[uint64]bool{}}
				inLoop[e.Addr] = li
			}
			li.values[e.Value] = true
			li.seen++
		}
	}

	// Check values of locations in Locs_in_loop: keep only locations whose
	// invocation values are not all the same (principle 3). The map
	// already de-duplicates both location sets (the algorithm's "remove
	// repetition" steps).
	varying := make([]uint64, 0, len(inLoop))
	constant := 0
	for addr, li := range inLoop {
		if len(li.values) > 1 {
			varying = append(varying, addr)
		} else {
			constant++
		}
	}
	sort.Slice(varying, func(i, j int) bool { return varying[i] < varying[j] })

	// Match in-loop locations against before-loop allocations.
	byObj := map[int][]uint64{}
	loopLocal := 0
	for _, addr := range varying {
		matched := false
		for i := range allocs {
			a := &allocs[i]
			if addr >= a.Addr && addr < a.Addr+a.Size {
				byObj[i] = append(byObj[i], addr)
				matched = true
				break
			}
		}
		if !matched {
			loopLocal++
		}
	}

	res := Result{ExcludedConstant: constant, ExcludedLoopLocal: loopLocal}
	idxs := make([]int, 0, len(byObj))
	for i := range byObj {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		o := allocs[i].Object
		o.Locations = byObj[i]
		res.Checkpoint = append(res.Checkpoint, o)
	}
	return res
}
