// Package rs implements Reed–Solomon erasure coding over GF(2^8), the
// encoding FTI's L3 checkpointing level uses to survive the loss of up to
// half the nodes in an encoding group (Bautista-Gomez et al., SC'11).
//
// The code is systematic: k data shards are stored verbatim and m parity
// shards are produced from a Cauchy matrix, which guarantees that any k of
// the k+m shards reconstruct the originals.
package rs

import (
	"errors"
	"fmt"
)

// GF(2^8) arithmetic with the 0x11d primitive polynomial.

var (
	gfExp [512]byte
	gfLog [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("rs: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]-gfLog[b]+255]
}

func gfInv(a byte) byte { return gfDiv(1, a) }

// Code is an (k data, m parity) erasure code.
type Code struct {
	k, m   int
	parity [][]byte // m x k Cauchy coefficients
}

// New builds a code with k data shards and m parity shards. k+m must not
// exceed 128 so the Cauchy construction has distinct points.
func New(k, m int) (*Code, error) {
	if k <= 0 || m < 0 || k+m > 128 {
		return nil, fmt.Errorf("rs: invalid geometry k=%d m=%d", k, m)
	}
	// Cauchy matrix: rows indexed by x_i = k+i, columns by y_j = j, entry
	// 1/(x_i XOR y_j). All points distinct => every square submatrix of the
	// stacked [I; C] matrix is invertible.
	c := &Code{k: k, m: m, parity: make([][]byte, m)}
	for i := 0; i < m; i++ {
		c.parity[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			c.parity[i][j] = gfInv(byte(k+i) ^ byte(j))
		}
	}
	return c, nil
}

// K returns the number of data shards.
func (c *Code) K() int { return c.k }

// M returns the number of parity shards.
func (c *Code) M() int { return c.m }

// Encode computes the m parity shards for k equal-length data shards.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("rs: got %d data shards, want %d", len(data), c.k)
	}
	size := len(data[0])
	for _, d := range data {
		if len(d) != size {
			return nil, errors.New("rs: data shards have unequal lengths")
		}
	}
	out := make([][]byte, c.m)
	for i := 0; i < c.m; i++ {
		p := make([]byte, size)
		for j := 0; j < c.k; j++ {
			coef := c.parity[i][j]
			if coef == 0 {
				continue
			}
			src := data[j]
			for b := 0; b < size; b++ {
				p[b] ^= gfMul(coef, src[b])
			}
		}
		out[i] = p
	}
	return out, nil
}

// Reconstruct fills in missing (nil) shards. shards must have length k+m:
// the k data shards followed by the m parity shards. At least k shards must
// be present. On success every data shard is non-nil (parity shards are
// also recomputed if missing).
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("rs: got %d shards, want %d", len(shards), c.k+c.m)
	}
	present := 0
	size := -1
	for _, s := range shards {
		if s != nil {
			present++
			if size == -1 {
				size = len(s)
			} else if len(s) != size {
				return errors.New("rs: present shards have unequal lengths")
			}
		}
	}
	if present < c.k {
		return fmt.Errorf("rs: only %d shards present, need %d", present, c.k)
	}
	// Row i of the full generator G (size (k+m) x k): identity for i<k,
	// parity coefficients for i>=k. Pick the first k present shards, invert
	// the corresponding k x k submatrix, and multiply.
	rows := make([]int, 0, c.k)
	for i := range shards {
		if shards[i] != nil {
			rows = append(rows, i)
			if len(rows) == c.k {
				break
			}
		}
	}
	sub := make([][]byte, c.k)
	for r, i := range rows {
		sub[r] = make([]byte, c.k)
		if i < c.k {
			sub[r][i] = 1
		} else {
			copy(sub[r], c.parity[i-c.k])
		}
	}
	inv, err := invertMatrix(sub)
	if err != nil {
		return err
	}
	// data[j] = sum_r inv[j][r] * shards[rows[r]]
	data := make([][]byte, c.k)
	for j := 0; j < c.k; j++ {
		if shards[j] != nil {
			data[j] = shards[j]
			continue
		}
		d := make([]byte, size)
		for r := 0; r < c.k; r++ {
			coef := inv[j][r]
			if coef == 0 {
				continue
			}
			src := shards[rows[r]]
			for b := 0; b < size; b++ {
				d[b] ^= gfMul(coef, src[b])
			}
		}
		data[j] = d
	}
	copy(shards, data)
	// Recompute any missing parity from the (now complete) data.
	needParity := false
	for i := c.k; i < c.k+c.m; i++ {
		if shards[i] == nil {
			needParity = true
		}
	}
	if needParity {
		par, err := c.Encode(shards[:c.k])
		if err != nil {
			return err
		}
		for i := 0; i < c.m; i++ {
			if shards[c.k+i] == nil {
				shards[c.k+i] = par[i]
			}
		}
	}
	return nil
}

// invertMatrix inverts a square GF(256) matrix via Gauss–Jordan.
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	a := make([][]byte, n)
	inv := make([][]byte, n)
	for i := range m {
		a[i] = append([]byte(nil), m[i]...)
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, errors.New("rs: singular matrix")
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		// Scale pivot row.
		pv := gfInv(a[col][col])
		for j := 0; j < n; j++ {
			a[col][j] = gfMul(a[col][j], pv)
			inv[col][j] = gfMul(inv[col][j], pv)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := 0; j < n; j++ {
				a[r][j] ^= gfMul(f, a[col][j])
				inv[r][j] ^= gfMul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}

// Pad returns b zero-padded to size (a copy if padding is needed).
func Pad(b []byte, size int) []byte {
	if len(b) >= size {
		return b
	}
	out := make([]byte, size)
	copy(out, b)
	return out
}
