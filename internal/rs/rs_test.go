package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// Multiplicative inverses and distributivity on a sample of the field.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("inv(%d) broken", a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity broken at %d %d %d", a, b, c)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity broken at %d %d", a, b)
		}
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	for _, g := range [][2]int{{0, 1}, {-1, 2}, {100, 100}, {5, -1}} {
		if _, err := New(g[0], g[1]); err == nil {
			t.Fatalf("New(%d,%d) succeeded", g[0], g[1])
		}
	}
}

func makeShards(rng *rand.Rand, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	return data
}

func TestEncodeReconstructAllErasurePatterns(t *testing.T) {
	k, m := 4, 4
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	data := makeShards(rng, k, 128)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)

	// Erase every subset of exactly m shards; reconstruction must succeed
	// and reproduce the data exactly.
	n := k + m
	var patterns [][]int
	var gen func(start int, cur []int)
	gen = func(start int, cur []int) {
		if len(cur) == m {
			patterns = append(patterns, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			gen(i+1, append(cur, i))
		}
	}
	gen(0, nil)
	for _, pat := range patterns {
		shards := make([][]byte, n)
		for i := range full {
			shards[i] = append([]byte(nil), full[i]...)
		}
		for _, e := range pat {
			shards[e] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("pattern %v: %v", pat, err)
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shards[i], data[i]) {
				t.Fatalf("pattern %v: data shard %d mismatch", pat, i)
			}
		}
		for i := 0; i < m; i++ {
			if !bytes.Equal(shards[k+i], parity[i]) {
				t.Fatalf("pattern %v: parity shard %d mismatch", pat, i)
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c, _ := New(4, 2)
	rng := rand.New(rand.NewSource(3))
	data := makeShards(rng, 4, 32)
	parity, _ := c.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	shards[0], shards[1], shards[2] = nil, nil, nil // 3 erasures > m=2
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("reconstruction succeeded with too few shards")
	}
}

func TestEncodeRejectsUnequalLengths(t *testing.T) {
	c, _ := New(2, 1)
	if _, err := c.Encode([][]byte{make([]byte, 4), make([]byte, 5)}); err == nil {
		t.Fatal("unequal shard lengths accepted")
	}
}

// Property: for random geometry, payloads, and erasure patterns of up to m
// shards, reconstruction recovers all data shards exactly.
func TestReconstructProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		m := 1 + rng.Intn(6)
		size := 1 + rng.Intn(256)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		data := makeShards(rng, k, size)
		parity, err := c.Encode(data)
		if err != nil {
			return false
		}
		shards := append(append([][]byte{}, data...), parity...)
		// Erase a random subset of size <= m.
		erase := rng.Perm(k + m)[:rng.Intn(m+1)]
		for _, e := range erase {
			shards[e] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shards[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPad(t *testing.T) {
	b := []byte{1, 2, 3}
	p := Pad(b, 5)
	if len(p) != 5 || p[0] != 1 || p[4] != 0 {
		t.Fatalf("pad = %v", p)
	}
	if &Pad(b, 3)[0] != &b[0] {
		t.Fatal("pad copied unnecessarily")
	}
}

func BenchmarkEncode4x2_64KB(b *testing.B) {
	c, _ := New(4, 2)
	rng := rand.New(rand.NewSource(1))
	data := makeShards(rng, 4, 64<<10)
	b.SetBytes(4 * 64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}
