// Package minife reproduces the miniFE proxy application: assembly of an
// unstructured-implicit finite-element system (trilinear hex-8 elements,
// Poisson operator, 2x2x2 Gauss quadrature) over a global NX x NY x NZ
// element mesh, followed by a conjugate-gradient solve. Nodes are
// decomposed in 3D; each rank assembles the rows of its owned nodes from
// all adjacent elements (ghost-element redundant assembly, a standard
// distributed FE technique that needs no assembly communication) and the
// solve exchanges node halos per SpMV through the corner-aware three-phase
// exchange.
package minife

import (
	"fmt"

	"match/internal/apps/appkit"
	"match/internal/fti"
)

// App is the miniFE state for one rank.
type App struct {
	d          *appkit.Decomp3D // decomposition of the node grid
	gx, gy, gz int              // global node dims

	stencil [][]float64 // per-node 27 coefficients (local node-major)
	xb      []float64   // rhs per local node

	x, r, p *appkit.Field3D
	ap      *appkit.Field3D
	xFlat   []float64
	rFlat   []float64
	pFlat   []float64
	rho     float64
}

// New returns a miniFE instance.
func New() *App { return &App{} }

// Name implements appkit.App.
func (a *App) Name() string { return "miniFE" }

// elementK returns the 8x8 element stiffness matrix for the Poisson
// operator on a unit cube trilinear element, via 2x2x2 Gauss quadrature.
func elementK() [8][8]float64 {
	// Reference nodes at (+-1)^3 order: x fastest.
	var nodes [8][3]float64
	for i := 0; i < 8; i++ {
		nodes[i] = [3]float64{float64(2*(i&1) - 1), float64(2*((i>>1)&1) - 1), float64(2*((i>>2)&1) - 1)}
	}
	g := 1.0 / 1.7320508075688772 // 1/sqrt(3)
	var K [8][8]float64
	for gp := 0; gp < 8; gp++ {
		q := [3]float64{g * float64(2*(gp&1)-1), g * float64(2*((gp>>1)&1)-1), g * float64(2*((gp>>2)&1)-1)}
		// Shape function gradients on the reference element; the physical
		// element is a unit cube, so the Jacobian is diag(1/2) each axis.
		var grad [8][3]float64
		for i := 0; i < 8; i++ {
			nx, ny, nz := nodes[i][0], nodes[i][1], nodes[i][2]
			grad[i][0] = nx * (1 + ny*q[1]) * (1 + nz*q[2]) / 8 * 2
			grad[i][1] = ny * (1 + nx*q[0]) * (1 + nz*q[2]) / 8 * 2
			grad[i][2] = nz * (1 + nx*q[0]) * (1 + ny*q[1]) / 8 * 2
		}
		w := 1.0 / 8 // det(J) = 1/8, unit weights
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				K[i][j] += w * (grad[i][0]*grad[j][0] + grad[i][1]*grad[j][1] + grad[i][2]*grad[j][2])
			}
		}
	}
	return K
}

// Init implements appkit.App: assemble the stiffness stencils and start CG.
func (a *App) Init(ctx *appkit.Context) error {
	p := ctx.Params
	if p.NX <= 0 {
		return fmt.Errorf("minife: bad mesh %dx%dx%d", p.NX, p.NY, p.NZ)
	}
	// Node grid is elements+1 per axis.
	a.gx, a.gy, a.gz = p.NX+1, p.NY+1, p.NZ+1
	a.d = appkit.NewDecomp3D(ctx.Rank(), ctx.Size(), a.gx, a.gy, a.gz)
	d := a.d
	nLocal := d.LX * d.LY * d.LZ

	K := elementK()
	a.stencil = make([][]float64, nLocal)
	a.xb = make([]float64, nLocal)
	li := 0
	for z := 1; z <= d.LZ; z++ {
		for y := 1; y <= d.LY; y++ {
			for x := 1; x <= d.LX; x++ {
				coeff := make([]float64, 27)
				gxp, gyp, gzp := d.OX+x-1, d.OY+y-1, d.OZ+z-1
				onBoundary := gxp == 0 || gxp == a.gx-1 || gyp == 0 || gyp == a.gy-1 || gzp == 0 || gzp == a.gz-1
				if onBoundary {
					// Dirichlet row: identity.
					coeff[13] = 1
					a.stencil[li] = coeff
					a.xb[li] = 0
					li++
					continue
				}
				// Assemble from the 8 adjacent elements: element at corner
				// (ex,ey,ez) in {-1,0} offset; within it, this node is local
				// corner (cx,cy,cz) = -(offset).
				for ez := -1; ez <= 0; ez++ {
					for ey := -1; ey <= 0; ey++ {
						for ex := -1; ex <= 0; ex++ {
							// Element exists iff within the element mesh.
							if gxp+ex < 0 || gxp+ex >= p.NX || gyp+ey < 0 || gyp+ey >= p.NY || gzp+ez < 0 || gzp+ez >= p.NZ {
								continue
							}
							ci := (-ex) + 2*(-ey) + 4*(-ez) // this node's corner index
							for cj := 0; cj < 8; cj++ {
								// Neighbor node offset relative to this node.
								dx := (cj & 1) + ex
								dy := ((cj >> 1) & 1) + ey
								dz := ((cj >> 2) & 1) + ez
								coeff[(dx+1)+3*(dy+1)+9*(dz+1)] += K[ci][cj]
							}
						}
					}
				}
				a.stencil[li] = coeff
				a.xb[li] = 1 // unit body load, as miniFE's default
				li++
			}
		}
	}
	ctx.Charge(float64(nLocal) * 8 * 64 * 3) // assembly flops

	a.x = appkit.NewField3D(d)
	a.r = appkit.NewField3D(d)
	a.p = appkit.NewField3D(d)
	a.ap = appkit.NewField3D(d)
	// x=0, r=b, p=r.
	a.rFlat = append([]float64(nil), a.xb...)
	a.pFlat = append([]float64(nil), a.xb...)
	a.xFlat = make([]float64, nLocal)
	local := 0.0
	for _, v := range a.rFlat {
		local += v * v
	}
	var err error
	a.rho, err = appkit.SumAll(ctx, local)
	if err != nil {
		return err
	}

	ctx.FTI.Protect(1, fti.F64s{P: &a.xFlat})
	ctx.FTI.Protect(2, fti.F64s{P: &a.rFlat})
	ctx.FTI.Protect(3, fti.F64s{P: &a.pFlat})
	ctx.FTI.Protect(4, fti.F64{P: &a.rho})
	return nil
}

// spmv computes ap = A*p using the assembled stencils; p's ghosts must be
// current.
func (a *App) spmv() {
	d := a.d
	li := 0
	for z := 1; z <= d.LZ; z++ {
		for y := 1; y <= d.LY; y++ {
			for x := 1; x <= d.LX; x++ {
				coeff := a.stencil[li]
				sum := 0.0
				ci := 0
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							c := coeff[ci]
							ci++
							if c != 0 {
								sum += c * a.p.At(x+dx, y+dy, z+dz)
							}
						}
					}
				}
				a.ap.Set(x, y, z, sum)
				li++
			}
		}
	}
}

// Step implements appkit.App: one CG iteration on the assembled system.
func (a *App) Step(ctx *appkit.Context, iter int) error {
	n := float64(len(a.xb))
	a.p.SetInterior(a.pFlat)
	if err := a.p.Exchange(ctx); err != nil {
		return err
	}
	a.spmv()
	ctx.Charge(n * 54)
	apFlat := a.ap.Interior()
	pap := 0.0
	for i := range a.pFlat {
		pap += a.pFlat[i] * apFlat[i]
	}
	ctx.Charge(n * 2)
	papG, err := appkit.SumAll(ctx, pap)
	if err != nil {
		return err
	}
	if papG == 0 {
		return fmt.Errorf("minife: CG breakdown at iter %d", iter)
	}
	alpha := a.rho / papG
	local := 0.0
	for i := range a.xFlat {
		a.xFlat[i] += alpha * a.pFlat[i]
		a.rFlat[i] -= alpha * apFlat[i]
		local += a.rFlat[i] * a.rFlat[i]
	}
	ctx.Charge(n * 6)
	rhoNew, err := appkit.SumAll(ctx, local)
	if err != nil {
		return err
	}
	beta := rhoNew / a.rho
	a.rho = rhoNew
	for i := range a.pFlat {
		a.pFlat[i] = a.rFlat[i] + beta*a.pFlat[i]
	}
	ctx.Charge(n * 2)
	return nil
}

// Signature implements appkit.App.
func (a *App) Signature(ctx *appkit.Context) (float64, error) {
	local := 0.0
	for _, v := range a.xFlat {
		local += v * v
	}
	xx, err := appkit.SumAll(ctx, local)
	if err != nil {
		return 0, err
	}
	return a.rho + xx, nil
}

// Residual returns the current global squared residual.
func (a *App) Residual() float64 { return a.rho }
