package minife_test

import (
	"testing"

	"match/internal/apps/appkit"
	"match/internal/apps/apptest"
	"match/internal/apps/minife"
)

func run(t *testing.T, n, mesh, iters int) apptest.Result {
	t.Helper()
	return apptest.Run(t, n, appkit.Params{NX: mesh, NY: mesh, NZ: mesh, MaxIter: iters},
		func() appkit.App { return minife.New() })
}

func TestCGReducesResidual(t *testing.T) {
	short := run(t, 4, 8, 2)
	long := run(t, 4, 8, 40)
	r0 := short.Apps[0].(*minife.App).Residual()
	r1 := long.Apps[0].(*minife.App).Residual()
	if !(r1 < r0/100) {
		t.Fatalf("FE CG stalls: residual %v after 2 iters, %v after 40", r0, r1)
	}
}

func TestSignatureAgreesAcrossRanks(t *testing.T) {
	res := run(t, 8, 8, 10)
	for i, s := range res.Sigs {
		if s != res.Sigs[0] {
			t.Fatalf("rank %d signature %v != %v", i, s, res.Sigs[0])
		}
	}
}

// The assembled operator must be consistent across decompositions: the
// same problem on 1 rank and 8 ranks converges to the same answer.
func TestDecompositionInvariance(t *testing.T) {
	a := run(t, 1, 6, 30)
	b := run(t, 8, 6, 30)
	// CG trajectories differ in reduction order; compare converged
	// solutions loosely.
	diff := a.Sigs[0] - b.Sigs[0]
	if diff < 0 {
		diff = -diff
	}
	rel := diff / a.Sigs[0]
	if rel > 1e-6 {
		t.Fatalf("1-rank vs 8-rank solutions differ: %v vs %v (rel %v)", a.Sigs[0], b.Sigs[0], rel)
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, 4, 6, 10)
	b := run(t, 4, 6, 10)
	if a.Sigs[0] != b.Sigs[0] {
		t.Fatalf("non-deterministic: %v vs %v", a.Sigs[0], b.Sigs[0])
	}
}
