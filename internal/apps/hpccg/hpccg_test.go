package hpccg_test

import (
	"math"
	"testing"

	"match/internal/apps/appkit"
	"match/internal/apps/apptest"
	"match/internal/apps/hpccg"
)

func TestCGConverges(t *testing.T) {
	res := apptest.Run(t, 4, appkit.Params{NX: 6, NY: 6, NZ: 6, MaxIter: 25},
		func() appkit.App { return hpccg.New() })
	for i, a := range res.Apps {
		app := a.(*hpccg.App)
		if app.Residual() > 1e-8 {
			t.Fatalf("rank %d residual %v after 25 iters (b=A*ones must converge)", i, app.Residual())
		}
	}
}

func TestSignatureAgreesAcrossRanks(t *testing.T) {
	res := apptest.Run(t, 4, appkit.Params{NX: 4, NY: 4, NZ: 4, MaxIter: 8},
		func() appkit.App { return hpccg.New() })
	for i, s := range res.Sigs {
		if s != res.Sigs[0] {
			t.Fatalf("rank %d signature %v != %v", i, s, res.Sigs[0])
		}
	}
}

// The solution of A x = A*ones is ones; CG must find it.
func TestSolvesToOnes(t *testing.T) {
	res := apptest.Run(t, 2, appkit.Params{NX: 5, NY: 5, NZ: 5, MaxIter: 40},
		func() appkit.App { return hpccg.New() })
	// Signature = rho + x.x; with x == ones, x.x = global unknowns.
	want := float64(5 * 5 * 5 * 2)
	if math.Abs(res.Sigs[0]-want) > 1e-6 {
		t.Fatalf("signature %v, want ~%v (x=ones)", res.Sigs[0], want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := appkit.Params{NX: 4, NY: 4, NZ: 4, MaxIter: 10}
	a := apptest.Run(t, 4, p, func() appkit.App { return hpccg.New() })
	b := apptest.Run(t, 4, p, func() appkit.App { return hpccg.New() })
	if a.Sigs[0] != b.Sigs[0] {
		t.Fatalf("non-deterministic: %v vs %v", a.Sigs[0], b.Sigs[0])
	}
}

func TestSingleRank(t *testing.T) {
	res := apptest.Run(t, 1, appkit.Params{NX: 4, NY: 4, NZ: 4, MaxIter: 20},
		func() appkit.App { return hpccg.New() })
	if res.Apps[0].(*hpccg.App).Residual() > 1e-8 {
		t.Fatal("single-rank CG did not converge")
	}
}
