// Package hpccg reproduces the HPCCG proxy application: a conjugate
// gradient solver on a 27-point stencil over a 3D grid in a chimney
// domain. As in the original, each process owns an NX x NY x NZ local grid
// and processes are stacked along z (1D decomposition), so only the top
// and bottom XY planes are exchanged.
package hpccg

import (
	"errors"
	"fmt"

	"match/internal/apps/appkit"
	"match/internal/enc"
	"match/internal/fti"
	"match/internal/mpi"
)

// App is the HPCCG solver state for one rank.
type App struct {
	nx, ny, nz int
	n          int // local unknowns
	rank, size int

	x, r, p, ap []float64
	b           []float64
	rho         float64

	loGhost, hiGhost []float64 // z ghost planes of p
}

// New returns an HPCCG instance; dimensions are the per-process local grid
// (the meaning of HPCCG's command-line triplet, as in Table I).
func New() *App { return &App{} }

// Name implements appkit.App.
func (a *App) Name() string { return "HPCCG" }

// Init implements appkit.App: allocate CG state and protect it.
func (a *App) Init(ctx *appkit.Context) error {
	p := ctx.Params
	a.nx, a.ny, a.nz = p.NX, p.NY, p.NZ
	if a.nx <= 0 || a.ny <= 0 || a.nz <= 0 {
		return fmt.Errorf("hpccg: bad local grid %dx%dx%d", a.nx, a.ny, a.nz)
	}
	a.rank, a.size = ctx.Rank(), ctx.Size()
	a.n = a.nx * a.ny * a.nz
	a.x = make([]float64, a.n)
	a.b = make([]float64, a.n)
	a.ap = make([]float64, a.n)
	a.loGhost = make([]float64, a.nx*a.ny)
	a.hiGhost = make([]float64, a.nx*a.ny)

	// b = A * ones: the canonical HPCCG right-hand side.
	ones := make([]float64, a.n)
	for i := range ones {
		ones[i] = 1
	}
	loOnes := make([]float64, a.nx*a.ny)
	hiOnes := make([]float64, a.nx*a.ny)
	if a.rank > 0 {
		for i := range loOnes {
			loOnes[i] = 1
		}
	}
	if a.rank < a.size-1 {
		for i := range hiOnes {
			hiOnes[i] = 1
		}
	}
	a.spmv(a.b, ones, loOnes, hiOnes)

	// CG start: x=0, r=b, p=r.
	a.r = append([]float64(nil), a.b...)
	a.p = append([]float64(nil), a.b...)
	rho := 0.0
	for _, v := range a.r {
		rho += v * v
	}
	var err error
	a.rho, err = appkit.SumAll(ctx, rho)
	if err != nil {
		return err
	}

	ctx.FTI.Protect(1, fti.F64s{P: &a.x})
	ctx.FTI.Protect(2, fti.F64s{P: &a.r})
	ctx.FTI.Protect(3, fti.F64s{P: &a.p})
	ctx.FTI.Protect(4, fti.F64{P: &a.rho})
	return nil
}

func (a *App) idx(i, j, k int) int { return i + a.nx*(j+a.ny*k) }

// spmv computes out = A*v for the 27-point operator with the given z ghost
// planes. Diagonal 27, off-diagonals -1 (rows at domain boundaries have
// fewer neighbors, keeping A diagonally dominant and SPD).
func (a *App) spmv(out, v, lo, hi []float64) {
	at := func(i, j, k int) float64 {
		if i < 0 || i >= a.nx || j < 0 || j >= a.ny {
			return 0
		}
		switch {
		case k < 0:
			return lo[i+a.nx*j]
		case k >= a.nz:
			return hi[i+a.nx*j]
		default:
			return v[a.idx(i, j, k)]
		}
	}
	for k := 0; k < a.nz; k++ {
		for j := 0; j < a.ny; j++ {
			for i := 0; i < a.nx; i++ {
				sum := 27 * v[a.idx(i, j, k)]
				for dk := -1; dk <= 1; dk++ {
					for dj := -1; dj <= 1; dj++ {
						for di := -1; di <= 1; di++ {
							if di == 0 && dj == 0 && dk == 0 {
								continue
							}
							sum -= at(i+di, j+dj, k+dk)
						}
					}
				}
				out[a.idx(i, j, k)] = sum
			}
		}
	}
}

const (
	tagDown = 2001
	tagUp   = 2002
)

// exchange refreshes the z ghost planes of vec from the stack neighbors.
func (a *App) exchange(ctx *appkit.Context, vec []float64) error {
	plane := a.nx * a.ny
	if a.rank > 0 {
		low := enc.Float64sToBytes(vec[:plane])
		if err := mpi.Send(ctx.R, ctx.World, a.rank-1, tagDown, low); err != nil {
			return err
		}
	}
	if a.rank < a.size-1 {
		high := enc.Float64sToBytes(vec[a.n-plane:])
		if err := mpi.Send(ctx.R, ctx.World, a.rank+1, tagUp, high); err != nil {
			return err
		}
	}
	for i := range a.loGhost {
		a.loGhost[i] = 0
		a.hiGhost[i] = 0
	}
	if a.rank > 0 {
		m, err := mpi.Recv(ctx.R, ctx.World, a.rank-1, tagUp)
		if err != nil {
			return err
		}
		enc.FillFloat64s(a.loGhost, m.Data)
	}
	if a.rank < a.size-1 {
		m, err := mpi.Recv(ctx.R, ctx.World, a.rank+1, tagDown)
		if err != nil {
			return err
		}
		enc.FillFloat64s(a.hiGhost, m.Data)
	}
	return nil
}

// ErrBreakdown indicates CG breakdown (should not happen on this SPD
// operator; kept as a guard).
var ErrBreakdown = errors.New("hpccg: pAp vanished, CG breakdown")

// Step implements appkit.App: one CG iteration.
func (a *App) Step(ctx *appkit.Context, iter int) error {
	if err := a.exchange(ctx, a.p); err != nil {
		return err
	}
	a.spmv(a.ap, a.p, a.loGhost, a.hiGhost)
	ctx.Charge(float64(a.n) * 54) // 27-pt stencil: ~2 flops per nonzero
	pap, err := appkit.Dot(ctx, a.p, a.ap)
	if err != nil {
		return err
	}
	if pap == 0 {
		return ErrBreakdown
	}
	alpha := a.rho / pap
	localRho := 0.0
	for i := range a.x {
		a.x[i] += alpha * a.p[i]
		a.r[i] -= alpha * a.ap[i]
		localRho += a.r[i] * a.r[i]
	}
	ctx.Charge(float64(a.n) * 6)
	rhoNew, err := appkit.SumAll(ctx, localRho)
	if err != nil {
		return err
	}
	beta := rhoNew / a.rho
	a.rho = rhoNew
	for i := range a.p {
		a.p[i] = a.r[i] + beta*a.p[i]
	}
	ctx.Charge(float64(a.n) * 2)
	return nil
}

// Signature implements appkit.App: the final residual plus solution norm,
// both computed with deterministic reductions, so recovered runs must match
// failure-free runs exactly.
func (a *App) Signature(ctx *appkit.Context) (float64, error) {
	xx, err := appkit.Dot(ctx, a.x, a.x)
	if err != nil {
		return 0, err
	}
	return a.rho + xx, nil
}

// Residual returns the current global squared residual.
func (a *App) Residual() float64 { return a.rho }
