// Package comd reproduces the CoMD proxy application: classical molecular
// dynamics with a Lennard-Jones potential on an FCC lattice in a periodic
// box, 3D spatial decomposition, per-step ghost-atom exchange, and atom
// migration between ranks as particles move. The integrator is the
// symplectic kick-drift form, which keeps the checkpointable state to
// positions and velocities only (forces are recomputed), exactly what the
// paper's data-object analysis selects for checkpointing.
package comd

import (
	"fmt"
	"math"

	"match/internal/apps/appkit"
	"match/internal/enc"
	"match/internal/fti"
	"match/internal/mpi"
)

// Model constants (reduced LJ units).
const (
	lat     = 1.5874 // FCC lattice parameter
	cutoff  = 1.45   // LJ cutoff: first-neighbor shell
	dt      = 0.004  // timestep
	epsilon = 1.0
	sigma   = 1.0
)

// App is the CoMD state for one rank.
type App struct {
	d          *appkit.Decomp3D // decomposition of the cell grid
	glob       [3]float64       // global box edge lengths
	lo, hi     [3]float64       // local box bounds
	x, y, z    []float64        // positions (protected)
	vx, vy, vz []float64        // velocities (protected)
	fx, fy, fz []float64        // forces (recomputed)
	gx, gy, gz []float64        // ghost positions

	pe, ke float64
	energy float64 // last total energy (protected)
}

// New returns a CoMD instance.
func New() *App { return &App{} }

// Name implements appkit.App.
func (a *App) Name() string { return "CoMD" }

// hash64 is a deterministic mixer for initial velocities.
func hash64(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Init implements appkit.App: place FCC atoms in the local box.
func (a *App) Init(ctx *appkit.Context) error {
	p := ctx.Params
	if p.NX <= 0 {
		return fmt.Errorf("comd: bad lattice %dx%dx%d", p.NX, p.NY, p.NZ)
	}
	a.d = appkit.NewDecomp3D(ctx.Rank(), ctx.Size(), p.NX, p.NY, p.NZ)
	a.glob = [3]float64{float64(p.NX) * lat, float64(p.NY) * lat, float64(p.NZ) * lat}
	a.lo = [3]float64{float64(a.d.OX) * lat, float64(a.d.OY) * lat, float64(a.d.OZ) * lat}
	a.hi = [3]float64{float64(a.d.OX+a.d.LX) * lat, float64(a.d.OY+a.d.LY) * lat, float64(a.d.OZ+a.d.LZ) * lat}

	basis := [4][3]float64{{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}}
	a.x, a.y, a.z = nil, nil, nil
	a.vx, a.vy, a.vz = nil, nil, nil
	for cz := a.d.OZ; cz < a.d.OZ+a.d.LZ; cz++ {
		for cy := a.d.OY; cy < a.d.OY+a.d.LY; cy++ {
			for cx := a.d.OX; cx < a.d.OX+a.d.LX; cx++ {
				for b, off := range basis {
					px := (float64(cx) + off[0]) * lat
					py := (float64(cy) + off[1]) * lat
					pz := (float64(cz) + off[2]) * lat
					id := uint64(((cz*p.NY+cy)*p.NX+cx)*4 + b)
					h := hash64(id ^ uint64(p.Seed))
					// Small deterministic thermal velocities.
					sv := func(bits uint64) float64 {
						return (float64(bits&0xffff)/65535 - 0.5) * 0.2
					}
					a.x = append(a.x, px)
					a.y = append(a.y, py)
					a.z = append(a.z, pz)
					a.vx = append(a.vx, sv(h))
					a.vy = append(a.vy, sv(h>>16))
					a.vz = append(a.vz, sv(h>>32))
				}
			}
		}
	}
	ctx.FTI.Protect(1, fti.F64s{P: &a.x})
	ctx.FTI.Protect(2, fti.F64s{P: &a.y})
	ctx.FTI.Protect(3, fti.F64s{P: &a.z})
	ctx.FTI.Protect(4, fti.F64s{P: &a.vx})
	ctx.FTI.Protect(5, fti.F64s{P: &a.vy})
	ctx.FTI.Protect(6, fti.F64s{P: &a.vz})
	ctx.FTI.Protect(7, fti.F64{P: &a.energy})
	return nil
}

const (
	tagGhostLo = 3100 + iota
	tagGhostHi
	tagMigLo
	tagMigHi
)

// axisVals returns pointers to the coordinate slices for an axis.
func (a *App) axisVals(ax int) []float64 {
	switch ax {
	case 0:
		return a.x
	case 1:
		return a.y
	default:
		return a.z
	}
}

// exchangeGhosts rebuilds ghost positions from the six neighbors with the
// three-phase scheme; coordinates crossing the periodic boundary are
// shifted so receivers see continuous positions.
func (a *App) exchangeGhosts(ctx *appkit.Context) error {
	a.gx, a.gy, a.gz = a.gx[:0], a.gy[:0], a.gz[:0]
	dims := [3][3]int{{-1, 0, 0}, {0, -1, 0}, {0, 0, -1}}
	for ax := 0; ax < 3; ax++ {
		loNbr := a.d.NeighborWrap(dims[ax][0], dims[ax][1], dims[ax][2])
		hiNbr := a.d.NeighborWrap(-dims[ax][0], -dims[ax][1], -dims[ax][2])
		if loNbr == ctx.Rank() && hiNbr == ctx.Rank() {
			continue // single rank in this axis: minimum image handles it
		}
		// Collect border atoms from locals plus already-received ghosts.
		collect := func(takeLo bool) []float64 {
			var out []float64
			vals := a.axisVals(ax)
			push := func(px, py, pz, c float64) {
				if takeLo {
					if c < a.lo[ax]+cutoff {
						shift := 0.0
						if a.loEdge(ax) {
							shift = a.glob[ax]
						}
						out = a.appendShifted(out, px, py, pz, ax, shift)
					}
				} else if c >= a.hi[ax]-cutoff {
					shift := 0.0
					if a.hiEdge(ax) {
						shift = -a.glob[ax]
					}
					out = a.appendShifted(out, px, py, pz, ax, shift)
				}
			}
			for i := range a.x {
				push(a.x[i], a.y[i], a.z[i], vals[i])
			}
			gvals := a.ghostAxis(ax)
			for i := range a.gx {
				push(a.gx[i], a.gy[i], a.gz[i], gvals[i])
			}
			return out
		}
		loPayload := collect(true)
		hiPayload := collect(false)
		if err := mpi.Send(ctx.R, ctx.World, loNbr, tagGhostLo, enc.Float64sToBytes(loPayload)); err != nil {
			return err
		}
		if err := mpi.Send(ctx.R, ctx.World, hiNbr, tagGhostHi, enc.Float64sToBytes(hiPayload)); err != nil {
			return err
		}
		ml, err := mpi.Recv(ctx.R, ctx.World, loNbr, tagGhostHi)
		if err != nil {
			return err
		}
		mh, err := mpi.Recv(ctx.R, ctx.World, hiNbr, tagGhostLo)
		if err != nil {
			return err
		}
		for _, m := range []mpi.Message{ml, mh} {
			vals := enc.BytesToFloat64s(m.Data)
			for i := 0; i+2 < len(vals); i += 3 {
				a.gx = append(a.gx, vals[i])
				a.gy = append(a.gy, vals[i+1])
				a.gz = append(a.gz, vals[i+2])
			}
		}
	}
	return nil
}

func (a *App) loEdge(ax int) bool {
	switch ax {
	case 0:
		return a.d.CX == 0
	case 1:
		return a.d.CY == 0
	default:
		return a.d.CZ == 0
	}
}

func (a *App) hiEdge(ax int) bool {
	switch ax {
	case 0:
		return a.d.CX == a.d.PX-1
	case 1:
		return a.d.CY == a.d.PY-1
	default:
		return a.d.CZ == a.d.PZ-1
	}
}

func (a *App) appendShifted(out []float64, px, py, pz float64, ax int, shift float64) []float64 {
	switch ax {
	case 0:
		px += shift
	case 1:
		py += shift
	default:
		pz += shift
	}
	return append(out, px, py, pz)
}

func (a *App) ghostAxis(ax int) []float64 {
	switch ax {
	case 0:
		return a.gx
	case 1:
		return a.gy
	default:
		return a.gz
	}
}

// minImage wraps a displacement to the nearest periodic image.
func (a *App) minImage(d float64, ax int) float64 {
	L := a.glob[ax]
	if d > L/2 {
		d -= L
	} else if d < -L/2 {
		d += L
	}
	return d
}

// forces computes LJ forces and potential energy; ghosts must be current.
func (a *App) forces(ctx *appkit.Context) {
	n := len(a.x)
	a.fx = grow(a.fx, n)
	a.fy = grow(a.fy, n)
	a.fz = grow(a.fz, n)
	for i := 0; i < n; i++ {
		a.fx[i], a.fy[i], a.fz[i] = 0, 0, 0
	}
	a.pe = 0
	rc2 := cutoff * cutoff
	// Shifted potential so e(cutoff)=0.
	s6 := math.Pow(sigma/cutoff, 6)
	eShift := 4 * epsilon * (s6*s6 - s6)
	pairs := 0
	pair := func(i int, xj, yj, zj float64, half bool) {
		dx := a.minImage(a.x[i]-xj, 0)
		dy := a.minImage(a.y[i]-yj, 1)
		dz := a.minImage(a.z[i]-zj, 2)
		r2 := dx*dx + dy*dy + dz*dz
		if r2 >= rc2 || r2 == 0 {
			return
		}
		inv2 := sigma * sigma / r2
		inv6 := inv2 * inv2 * inv2
		f := 24 * epsilon * inv6 * (2*inv6 - 1) / r2
		a.fx[i] += f * dx
		a.fy[i] += f * dy
		a.fz[i] += f * dz
		e := 4*epsilon*inv6*(inv6-1) - eShift
		if half {
			a.pe += e / 2
		} else {
			a.pe += e
		}
		pairs++
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j != i {
				pair(i, a.x[j], a.y[j], a.z[j], true)
			}
		}
		for g := range a.gx {
			pair(i, a.gx[g], a.gy[g], a.gz[g], true)
		}
	}
	ctx.Charge(float64(n*(n+len(a.gx))) * 0.6)
	_ = pairs
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// migrate moves atoms that left the local box to the owning neighbor,
// three-phase, with periodic wrapping.
func (a *App) migrate(ctx *appkit.Context) error {
	for ax := 0; ax < 3; ax++ {
		dx, dy, dz := 0, 0, 0
		switch ax {
		case 0:
			dx = 1
		case 1:
			dy = 1
		default:
			dz = 1
		}
		loNbr := a.d.NeighborWrap(-dx, -dy, -dz)
		hiNbr := a.d.NeighborWrap(dx, dy, dz)
		vals := a.axisVals(ax)
		var stayIdx []int
		var loOut, hiOut []float64
		for i := range a.x {
			c := vals[i]
			switch {
			case c < a.lo[ax]:
				p := [3]float64{a.x[i], a.y[i], a.z[i]}
				if a.loEdge(ax) {
					p[ax] += a.glob[ax]
				}
				loOut = append(loOut, p[0], p[1], p[2], a.vx[i], a.vy[i], a.vz[i])
			case c >= a.hi[ax]:
				p := [3]float64{a.x[i], a.y[i], a.z[i]}
				if a.hiEdge(ax) {
					p[ax] -= a.glob[ax]
				}
				hiOut = append(hiOut, p[0], p[1], p[2], a.vx[i], a.vy[i], a.vz[i])
			default:
				stayIdx = append(stayIdx, i)
			}
		}
		if loNbr == ctx.Rank() && hiNbr == ctx.Rank() {
			// Single rank on this axis: wrap in place, nothing to send.
			for i := range a.x {
				if vals[i] < 0 {
					vals[i] += a.glob[ax]
				} else if vals[i] >= a.glob[ax] {
					vals[i] -= a.glob[ax]
				}
			}
			continue
		}
		keep := func(src []float64) []float64 {
			out := make([]float64, 0, len(stayIdx))
			for _, i := range stayIdx {
				out = append(out, src[i])
			}
			return out
		}
		a.x, a.y, a.z = keep(a.x), keep(a.y), keep(a.z)
		a.vx, a.vy, a.vz = keep(a.vx), keep(a.vy), keep(a.vz)
		if err := mpi.Send(ctx.R, ctx.World, loNbr, tagMigLo, enc.Float64sToBytes(loOut)); err != nil {
			return err
		}
		if err := mpi.Send(ctx.R, ctx.World, hiNbr, tagMigHi, enc.Float64sToBytes(hiOut)); err != nil {
			return err
		}
		ml, err := mpi.Recv(ctx.R, ctx.World, loNbr, tagMigHi)
		if err != nil {
			return err
		}
		mh, err := mpi.Recv(ctx.R, ctx.World, hiNbr, tagMigLo)
		if err != nil {
			return err
		}
		for _, m := range []mpi.Message{ml, mh} {
			vals := enc.BytesToFloat64s(m.Data)
			for i := 0; i+5 < len(vals); i += 6 {
				a.x = append(a.x, vals[i])
				a.y = append(a.y, vals[i+1])
				a.z = append(a.z, vals[i+2])
				a.vx = append(a.vx, vals[i+3])
				a.vy = append(a.vy, vals[i+4])
				a.vz = append(a.vz, vals[i+5])
			}
		}
	}
	return nil
}

// Step implements appkit.App: one kick-drift MD step plus the global
// energy reduction CoMD reports every iteration.
func (a *App) Step(ctx *appkit.Context, iter int) error {
	if err := a.exchangeGhosts(ctx); err != nil {
		return err
	}
	a.forces(ctx)
	a.ke = 0
	for i := range a.x {
		a.vx[i] += dt * a.fx[i]
		a.vy[i] += dt * a.fy[i]
		a.vz[i] += dt * a.fz[i]
		a.x[i] += dt * a.vx[i]
		a.y[i] += dt * a.vy[i]
		a.z[i] += dt * a.vz[i]
		a.ke += 0.5 * (a.vx[i]*a.vx[i] + a.vy[i]*a.vy[i] + a.vz[i]*a.vz[i])
	}
	ctx.Charge(float64(len(a.x)) * 12)
	if err := a.migrate(ctx); err != nil {
		return err
	}
	e, err := appkit.SumAll(ctx, a.ke+a.pe)
	if err != nil {
		return err
	}
	a.energy = e
	return nil
}

// Signature implements appkit.App: total energy plus global atom count
// (conservation check built in).
func (a *App) Signature(ctx *appkit.Context) (float64, error) {
	count, err := appkit.SumAll(ctx, float64(len(a.x)))
	if err != nil {
		return 0, err
	}
	return a.energy + count, nil
}

// Energy returns the last total system energy.
func (a *App) Energy() float64 { return a.energy }
