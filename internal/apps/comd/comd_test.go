package comd_test

import (
	"math"
	"testing"

	"match/internal/apps/appkit"
	"match/internal/apps/apptest"
	"match/internal/apps/comd"
)

func run(t *testing.T, n, cells, steps int) apptest.Result {
	t.Helper()
	return apptest.Run(t, n, appkit.Params{NX: cells, NY: cells, NZ: cells, MaxIter: steps},
		func() appkit.App { return comd.New() })
}

// Atoms must never be lost or duplicated by migration: the signature
// embeds the global atom count.
func TestAtomCountConserved(t *testing.T) {
	short := run(t, 8, 6, 1)
	long := run(t, 8, 6, 25)
	// signature = energy + count; energies are small; count dominates and
	// must not drift by even one atom.
	want := float64(6 * 6 * 6 * 4)
	for _, res := range []apptest.Result{short, long} {
		count := math.Round(res.Sigs[0] - energyOf(res))
		if count != want {
			t.Fatalf("atom count %v, want %v", count, want)
		}
	}
}

func energyOf(res apptest.Result) float64 {
	return res.Apps[0].(*comd.App).Energy()
}

// Total energy must be approximately conserved by the symplectic
// integrator over a modest trajectory.
func TestEnergyApproximatelyConserved(t *testing.T) {
	short := run(t, 8, 6, 2)
	long := run(t, 8, 6, 30)
	e0 := energyOf(short)
	e1 := energyOf(long)
	scale := math.Abs(e0)
	if scale < 1 {
		scale = 1
	}
	if math.Abs(e1-e0)/scale > 0.05 {
		t.Fatalf("energy drifted: %v -> %v", e0, e1)
	}
}

func TestSignatureAgreesAcrossRanks(t *testing.T) {
	res := run(t, 8, 6, 5)
	for i, s := range res.Sigs {
		if s != res.Sigs[0] {
			t.Fatalf("rank %d signature %v != %v", i, s, res.Sigs[0])
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, 4, 6, 8)
	b := run(t, 4, 6, 8)
	if a.Sigs[0] != b.Sigs[0] {
		t.Fatalf("non-deterministic: %v vs %v", a.Sigs[0], b.Sigs[0])
	}
}

// Single-rank runs exercise the periodic minimum-image path with no
// neighbor exchange at all.
func TestSingleRankPeriodic(t *testing.T) {
	res := run(t, 1, 4, 15)
	if res.Apps[0].(*comd.App).Energy() == 0 {
		t.Fatal("no energy computed")
	}
}
