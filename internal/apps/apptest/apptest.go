// Package apptest provides the shared fixture for testing proxy
// applications directly: it runs an app's Init/Step/Signature cycle on a
// small simulated job without fault injection and exposes the per-rank
// instances for physics assertions.
package apptest

import (
	"testing"

	"match/internal/apps/appkit"
	"match/internal/ckpt"
	"match/internal/fault"
	"match/internal/fti"
	"match/internal/mpi"
	"match/internal/simnet"
	"match/internal/storage"
)

// Result of a run: per-rank app instances and signatures.
type Result struct {
	Apps []appkit.App
	Sigs []float64
}

// Run executes the app over n ranks for params.MaxIter steps and returns
// the per-rank instances. The test fails on any error.
func Run(t *testing.T, n int, params appkit.Params, factory func() appkit.App) Result {
	t.Helper()
	if params.WorkScale == 0 {
		params.WorkScale = 1
	}
	if params.Seed == 0 {
		params.Seed = 42
	}
	// App tests exercise physics, not checkpointing: placement is off
	// unless the test asked for a stride. One policy instance is shared by
	// all ranks, as the harness does.
	pol := ckpt.NeverPolicy()
	if params.CkptStride > 0 {
		pol = ckpt.FixedPolicy(params.CkptStride)
	}
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	c.Scheduler().SetDeadline(3600 * simnet.Second)
	st := storage.New(c, storage.Config{})
	res := Result{Apps: make([]appkit.App, n), Sigs: make([]float64, n)}
	inj := fault.NewInjector(fault.Plan{})
	job := mpi.Launch(c, n, 0, func(r *mpi.Rank) {
		world := r.Job().World()
		f, err := fti.Init(fti.Config{ExecID: "apptest"}, r, world, st)
		if err != nil {
			t.Errorf("fti init: %v", err)
			return
		}
		app := factory()
		ctx := &appkit.Context{R: r, World: world, FTI: f, Inject: inj, Params: params, Ckpt: pol}
		sig, err := appkit.RunMainLoop(ctx, app)
		if err != nil {
			t.Errorf("rank %d: %v", r.Rank(world), err)
			return
		}
		res.Apps[r.Rank(world)] = app
		res.Sigs[r.Rank(world)] = sig
	})
	c.Run()
	for i, a := range res.Apps {
		if a == nil {
			t.Fatalf("rank %d did not finish", i)
		}
	}
	_ = job
	return res
}
