package minivite_test

import (
	"testing"

	"match/internal/apps/appkit"
	"match/internal/apps/apptest"
	"match/internal/apps/minivite"
)

func run(t *testing.T, n, verts, iters int) apptest.Result {
	t.Helper()
	return apptest.Run(t, n, appkit.Params{NVerts: verts, MaxIter: iters},
		func() appkit.App { return minivite.New() })
}

// Louvain must find community structure in the locality-biased graph:
// modularity well above the singleton partition's (which is negative).
func TestModularityImproves(t *testing.T) {
	res := run(t, 4, 512, 12)
	mod := res.Apps[0].(*minivite.App).Modularity()
	if mod < 0.1 {
		t.Fatalf("modularity %v after 12 sweeps; expected structure to emerge", mod)
	}
	if mod > 1 {
		t.Fatalf("modularity %v out of range", mod)
	}
}

func TestSignatureAgreesAcrossRanks(t *testing.T) {
	res := run(t, 8, 512, 6)
	for i, s := range res.Sigs {
		if s != res.Sigs[0] {
			t.Fatalf("rank %d signature %v != %v", i, s, res.Sigs[0])
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, 4, 256, 8)
	b := run(t, 4, 256, 8)
	if a.Sigs[0] != b.Sigs[0] {
		t.Fatalf("non-deterministic: %v vs %v", a.Sigs[0], b.Sigs[0])
	}
}

// Modularity must be invariant to the process count (same graph, same
// sweeps — only the partitioning of work differs).
func TestDecompositionInvariance(t *testing.T) {
	a := run(t, 2, 512, 8)
	b := run(t, 8, 512, 8)
	am := a.Apps[0].(*minivite.App).Modularity()
	bm := b.Apps[0].(*minivite.App).Modularity()
	diff := am - bm
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-9 {
		t.Fatalf("modularity depends on decomposition: %v vs %v", am, bm)
	}
}

func TestSingleRank(t *testing.T) {
	res := run(t, 1, 256, 8)
	if res.Apps[0].(*minivite.App).Modularity() <= 0 {
		t.Fatal("single-rank Louvain found no structure")
	}
}
