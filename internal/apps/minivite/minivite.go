// Package minivite reproduces the miniVite proxy application: the first
// phase of the distributed Louvain method for graph community detection.
// Vertices are block-distributed; every iteration exchanges boundary
// community labels and community weight aggregates with alltoallv-style
// traffic, applies the best modularity-gain moves, and reduces the global
// modularity — the structure of miniVite's main loop.
//
// The input graph is a deterministic synthetic generator (ring plus seeded
// random long-range edges), standing in for miniVite's -l (random
// geometric) generator at reduced scale.
package minivite

import (
	"fmt"

	"match/internal/apps/appkit"
	"match/internal/enc"
	"match/internal/fti"
	"match/internal/mpi"
)

const extraDegree = 4 // random edges added per vertex

// App is the miniVite state for one rank.
type App struct {
	n          int // global vertices
	lo, hi     int // owned range [lo, hi)
	rank, size int

	adj [][]int // local adjacency (global vertex ids)
	deg []float64
	m2  float64 // 2m: total edge weight doubled

	comm     []int64   // community label per owned vertex (protected)
	sigmaTot []float64 // per owned *community label*: sum of member degrees (protected)
	mod      float64   // last modularity (protected)

	// plan: for each peer rank, which of our owned vertices they need
	// labels for (their boundary neighbors), precomputed in Init.
	pushPlan [][]int64
	// remote neighbor labels cache: global id -> community.
	remote map[int]int64
}

// New returns a miniVite instance.
func New() *App { return &App{} }

// Name implements appkit.App.
func (a *App) Name() string { return "miniVite" }

func (a *App) owner(v int) int {
	return v * a.size / a.n
}

func (a *App) ownedRange(rank int) (int, int) {
	lo := (rank*a.n + a.size - 1) / a.size
	_ = lo
	// Block partition consistent with owner().
	loV := 0
	for v := 0; v < a.n; v++ {
		if a.owner(v) == rank {
			loV = v
			break
		}
	}
	hiV := loV
	for v := loV; v < a.n && a.owner(v) == rank; v++ {
		hiV = v + 1
	}
	return loV, hiV
}

func hash64(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Init implements appkit.App: build the distributed graph and initial
// singleton communities.
func (a *App) Init(ctx *appkit.Context) error {
	p := ctx.Params
	a.n = p.NVerts
	if a.n <= 0 {
		return fmt.Errorf("minivite: bad vertex count %d", a.n)
	}
	a.rank, a.size = ctx.Rank(), ctx.Size()
	a.lo, a.hi = a.ownedRange(a.rank)
	nLocal := a.hi - a.lo

	// Generate edges: ring + extraDegree seeded random per vertex, drawn
	// from a local window around the vertex — the spatial locality of
	// miniVite's -l random geometric graphs, which also gives the graph
	// community structure for Louvain to find. Each rank generates draws
	// for its owned vertices and ships the mirror endpoints to their
	// owners so adjacency is symmetric.
	window := a.n / 16
	if window < 8 {
		window = 8
	}
	outbound := make(map[int][]int64)
	addLocal := func(v, u int) {
		a.adj[v-a.lo] = append(a.adj[v-a.lo], u)
	}
	a.adj = make([][]int, nLocal)
	for v := a.lo; v < a.hi; v++ {
		next := (v + 1) % a.n
		prev := (v - 1 + a.n) % a.n
		addLocal(v, next)
		addLocal(v, prev)
		for t := 0; t < extraDegree; t++ {
			off := int(hash64(uint64(v)*31+uint64(t)+uint64(p.Seed)*1e6)%uint64(window)) - window/2
			u := ((v+off)%a.n + a.n) % a.n
			if u == v {
				continue
			}
			addLocal(v, u)
			o := a.owner(u)
			outbound[o] = append(outbound[o], int64(u), int64(v))
		}
	}
	recv, err := mpi.SparseExchangeI64(ctx.R, ctx.World, outbound)
	if err != nil {
		return err
	}
	for _, src := range sortedKeys(recv) {
		vals := recv[src]
		for i := 0; i+1 < len(vals); i += 2 {
			u, v := int(vals[i]), int(vals[i+1])
			addLocal(u, v) // mirror edge u->v for owned u
		}
	}
	a.deg = make([]float64, nLocal)
	localEdges := 0.0
	for i, nb := range a.adj {
		a.deg[i] = float64(len(nb))
		localEdges += a.deg[i]
	}
	a.m2, err = appkit.SumAll(ctx, localEdges)
	if err != nil {
		return err
	}

	// Singleton communities; sigmaTot for community label v (owned by the
	// same rank as vertex v) starts at deg(v).
	a.comm = make([]int64, nLocal)
	a.sigmaTot = make([]float64, nLocal)
	for i := range a.comm {
		a.comm[i] = int64(a.lo + i)
		a.sigmaTot[i] = a.deg[i]
	}
	a.remote = make(map[int]int64)

	// Push plan: peers that neighbor our owned vertices.
	subs := make([]map[int]bool, a.size)
	for i, nb := range a.adj {
		for _, u := range nb {
			o := a.owner(u)
			if o != a.rank {
				if subs[o] == nil {
					subs[o] = make(map[int]bool)
				}
				subs[o][a.lo+i] = true
			}
		}
	}
	a.pushPlan = make([][]int64, a.size)
	for o, set := range subs {
		if set == nil {
			continue
		}
		for v := a.lo; v < a.hi; v++ {
			if set[v] {
				a.pushPlan[o] = append(a.pushPlan[o], int64(v))
			}
		}
	}

	ctx.FTI.Protect(1, fti.I64s{P: &a.comm})
	ctx.FTI.Protect(2, fti.F64s{P: &a.sigmaTot})
	ctx.FTI.Protect(3, fti.F64{P: &a.mod})
	return nil
}

// refreshRemote pushes our boundary vertices' labels to subscribers and
// rebuilds the remote label cache (one sparse exchange, like miniVite's
// ghost communication).
func (a *App) refreshRemote(ctx *appkit.Context) error {
	send := make(map[int][]int64)
	for o, list := range a.pushPlan {
		if len(list) == 0 {
			continue
		}
		payload := make([]int64, 0, 2*len(list))
		for _, v := range list {
			payload = append(payload, v, a.comm[int(v)-a.lo])
		}
		send[o] = payload
	}
	recv, err := mpi.SparseExchangeI64(ctx.R, ctx.World, send)
	if err != nil {
		return err
	}
	for _, src := range sortedKeys(recv) {
		vals := recv[src]
		for i := 0; i+1 < len(vals); i += 2 {
			a.remote[int(vals[i])] = vals[i+1]
		}
	}
	return nil
}

func sortedKeys(m map[int][]int64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// communityOf returns the current community of any vertex we can see.
func (a *App) communityOf(v int) int64 {
	if v >= a.lo && v < a.hi {
		return a.comm[v-a.lo]
	}
	return a.remote[v]
}

// fetchSigma gathers sigmaTot for a set of community labels from their
// owners (request/response, two sparse exchanges).
func (a *App) fetchSigma(ctx *appkit.Context, labels map[int64]bool) (map[int64]float64, error) {
	reqs := make(map[int][]int64)
	for c := range labels {
		o := a.owner(int(c))
		reqs[o] = append(reqs[o], c)
	}
	for _, v := range reqs {
		sortI64(v)
	}
	got, err := mpi.SparseExchangeI64(ctx.R, ctx.World, reqs)
	if err != nil {
		return nil, err
	}
	resp := make(map[int][]byte)
	for o, asked := range got {
		vals := make([]float64, len(asked))
		for i, c := range asked {
			vals[i] = a.sigmaTot[int(c)-a.lo]
		}
		resp[o] = enc.Float64sToBytes(vals)
	}
	back, err := mpi.SparseExchange(ctx.R, ctx.World, resp)
	if err != nil {
		return nil, err
	}
	out := make(map[int64]float64, len(labels))
	for o, b := range back {
		vals := enc.BytesToFloat64s(b)
		for i, c := range reqs[o] {
			out[c] = vals[i]
		}
	}
	return out, nil
}

func sortI64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Step implements appkit.App: one Louvain phase-1 sweep. All move
// decisions read the sweep-start snapshot of community labels (local and
// remote alike), so the result is independent of how vertices are
// distributed across ranks.
func (a *App) Step(ctx *appkit.Context, iter int) error {
	if err := a.refreshRemote(ctx); err != nil {
		return err
	}
	snapshot := append([]int64(nil), a.comm...)
	commAt := func(v int) int64 {
		if v >= a.lo && v < a.hi {
			return snapshot[v-a.lo]
		}
		return a.remote[v]
	}
	// Communities of interest: neighbors' communities plus our own.
	need := make(map[int64]bool)
	for i, nb := range a.adj {
		need[snapshot[i]] = true
		for _, u := range nb {
			need[commAt(u)] = true
		}
	}
	sigma, err := a.fetchSigma(ctx, need)
	if err != nil {
		return err
	}
	// Best-gain moves. Only even (odd) vertices move on even (odd)
	// iterations, the standard trick against label oscillation.
	deltas := make(map[int64]float64) // community -> sigmaTot delta
	moves := 0
	for i, nb := range a.adj {
		v := a.lo + i
		if v%2 != iter%2 {
			continue
		}
		cur := snapshot[i]
		// Links from v to each candidate community.
		links := make(map[int64]float64)
		for _, u := range nb {
			links[commAt(u)]++
		}
		ki := a.deg[i]
		best, bestGain := cur, 0.0
		for c, kin := range links {
			if c == cur {
				continue
			}
			sc := sigma[c]
			scur := sigma[cur] - ki // community totals without v
			gain := kin - links[cur] - ki*(sc-scur)/a.m2
			if gain > bestGain || (gain == bestGain && gain > 0 && c < best) {
				best, bestGain = c, gain
			}
		}
		if best != cur {
			deltas[cur] -= ki
			deltas[best] += ki
			a.comm[i] = best
			moves++
		}
	}
	ctx.Charge(float64(len(a.adj)) * (2*extraDegree + 8))
	// Ship sigmaTot deltas to the community owners.
	out := make(map[int][]int64)
	for c, dv := range deltas {
		o := a.owner(int(c))
		out[o] = append(out[o], c, int64(dv*1024)) // fixed-point to stay in int64 lanes
	}
	for _, v := range out {
		sortPairsI64(v)
	}
	recv, err := mpi.SparseExchangeI64(ctx.R, ctx.World, out)
	if err != nil {
		return err
	}
	for _, src := range sortedKeys(recv) {
		vals := recv[src]
		for i := 0; i+1 < len(vals); i += 2 {
			c := int(vals[i])
			a.sigmaTot[c-a.lo] += float64(vals[i+1]) / 1024
		}
	}
	// Global modularity: sum of in-community link fractions minus expected.
	if err := a.refreshRemote(ctx); err != nil {
		return err
	}
	localIn := 0.0
	for i, nb := range a.adj {
		for _, u := range nb {
			if a.communityOf(u) == a.comm[i] {
				localIn++
			}
		}
	}
	localSq := 0.0
	for _, s := range a.sigmaTot {
		localSq += s * s
	}
	in, err := appkit.SumAll(ctx, localIn)
	if err != nil {
		return err
	}
	sq, err := appkit.SumAll(ctx, localSq)
	if err != nil {
		return err
	}
	a.mod = in/a.m2 - sq/(a.m2*a.m2)
	return nil
}

// Signature implements appkit.App: final modularity plus the global
// community-label checksum.
func (a *App) Signature(ctx *appkit.Context) (float64, error) {
	local := 0.0
	for i, c := range a.comm {
		local += float64(c) * float64(a.lo+i+1)
	}
	sum, err := appkit.SumAll(ctx, local)
	if err != nil {
		return 0, err
	}
	return a.mod*1e6 + sum, nil
}

// Modularity returns the last computed global modularity.
func (a *App) Modularity() float64 { return a.mod }

func sortPairsI64(s []int64) {
	for i := 2; i < len(s); i += 2 {
		for j := i; j > 0 && s[j] < s[j-2]; j -= 2 {
			s[j], s[j-2] = s[j-2], s[j]
			s[j+1], s[j-1] = s[j-1], s[j+1]
		}
	}
}
