// Package lulesh reproduces the LULESH proxy application's problem and
// execution structure: an explicit shock-hydrodynamics solve of the Sedov
// blast on a 3D structured mesh with cube process counts, face halo
// exchanges every step, and the global Courant timestep reduction that
// dominates LULESH's collective traffic.
//
// Substitution note (DESIGN.md): the original integrates Lagrangian hex
// elements with hourglass control; this implementation solves the same
// Sedov problem with a finite-volume Euler scheme (Rusanov fluxes, ideal
// gas EOS). The iteration structure, data volumes, communication pattern,
// and checkpointable state (the five conserved fields) are preserved,
// which is what the fault-tolerance benchmark exercises.
package lulesh

import (
	"fmt"
	"math"

	"match/internal/apps/appkit"
	"match/internal/fti"
)

const (
	gamma  = 1.4
	cfl    = 0.3
	eBase  = 1e-4 // background specific total energy
	eBlast = 50.0
)

// App is the hydro state for one rank.
type App struct {
	d    *appkit.Decomp3D
	h    float64            // cell size
	flds [5]*appkit.Field3D // rho, mx, my, mz, E
	flat [5][]float64       // checkpoint views
	t    float64            // simulated physical time (protected)
	news [5][]float64       // scratch updates
}

// New returns a LULESH instance.
func New() *App { return &App{} }

// Name implements appkit.App.
func (a *App) Name() string { return "LULESH" }

// Init implements appkit.App. Params.S is the per-process edge (LULESH -s).
func (a *App) Init(ctx *appkit.Context) error {
	s := ctx.Params.S
	if s <= 0 {
		return fmt.Errorf("lulesh: bad -s %d", s)
	}
	size := ctx.Size()
	px, py, pz := appkit.Factor3D(size)
	if px != py || py != pz {
		return fmt.Errorf("lulesh: needs a cube process count, got %d (=%dx%dx%d)", size, px, py, pz)
	}
	g := s * px
	a.d = appkit.NewDecomp3D(ctx.Rank(), size, g, g, g)
	a.h = 1.0 / float64(g)
	for i := range a.flds {
		a.flds[i] = appkit.NewField3D(a.d)
	}
	d := a.d
	for z := 1; z <= d.LZ; z++ {
		for y := 1; y <= d.LY; y++ {
			for x := 1; x <= d.LX; x++ {
				a.flds[0].Set(x, y, z, 1.0)   // density
				a.flds[4].Set(x, y, z, eBase) // energy
			}
		}
	}
	// Sedov: deposit blast energy in the global origin cell.
	if d.OX == 0 && d.OY == 0 && d.OZ == 0 {
		a.flds[4].Set(1, 1, 1, eBlast)
	}
	a.t = 0
	for i := range a.flds {
		a.flat[i] = a.flds[i].Interior()
		ctx.FTI.Protect(1+i, fti.F64s{P: &a.flat[i]})
	}
	ctx.FTI.Protect(6, fti.F64{P: &a.t})
	return nil
}

// pressure computes p from conserved values.
func pressure(rho, mx, my, mz, e float64) float64 {
	if rho <= 0 {
		return 0
	}
	kin := 0.5 * (mx*mx + my*my + mz*mz) / rho
	p := (gamma - 1) * (e - kin)
	if p < 0 {
		p = 0
	}
	return p
}

// reflectBoundaries fills domain-boundary ghosts with outflow copies.
func (a *App) reflectBoundaries() {
	d := a.d
	for fi, f := range a.flds {
		_ = fi
		if d.CX == 0 {
			for z := 0; z < f.SZ; z++ {
				for y := 0; y < f.SY; y++ {
					f.Set(0, y, z, f.At(1, y, z))
				}
			}
		}
		if d.CX == d.PX-1 {
			for z := 0; z < f.SZ; z++ {
				for y := 0; y < f.SY; y++ {
					f.Set(d.LX+1, y, z, f.At(d.LX, y, z))
				}
			}
		}
		if d.CY == 0 {
			for z := 0; z < f.SZ; z++ {
				for x := 0; x < f.SX; x++ {
					f.Set(x, 0, z, f.At(x, 1, z))
				}
			}
		}
		if d.CY == d.PY-1 {
			for z := 0; z < f.SZ; z++ {
				for x := 0; x < f.SX; x++ {
					f.Set(x, d.LY+1, z, f.At(x, d.LY, z))
				}
			}
		}
		if d.CZ == 0 {
			for y := 0; y < f.SY; y++ {
				for x := 0; x < f.SX; x++ {
					f.Set(x, y, 0, f.At(x, y, 1))
				}
			}
		}
		if d.CZ == d.PZ-1 {
			for y := 0; y < f.SY; y++ {
				for x := 0; x < f.SX; x++ {
					f.Set(x, y, d.LZ+1, f.At(x, y, d.LZ))
				}
			}
		}
	}
}

// wavespeed returns |u|+c for a cell.
func (a *App) wavespeed(x, y, z int) float64 {
	rho := a.flds[0].At(x, y, z)
	if rho <= 0 {
		return 0
	}
	mx, my, mz := a.flds[1].At(x, y, z), a.flds[2].At(x, y, z), a.flds[3].At(x, y, z)
	e := a.flds[4].At(x, y, z)
	p := pressure(rho, mx, my, mz, e)
	u := math.Sqrt(mx*mx+my*my+mz*mz) / rho
	c := math.Sqrt(gamma * p / rho)
	return u + c
}

// flux computes the Rusanov flux across the face between cells L and R in
// direction dir (0,1,2), returning the 5 components.
func (a *App) flux(lx, ly, lz, rx, ry, rz, dir int, smax float64) [5]float64 {
	var out [5]float64
	side := func(x, y, z int) ([5]float64, [5]float64) {
		var u, f [5]float64
		u[0] = a.flds[0].At(x, y, z)
		u[1] = a.flds[1].At(x, y, z)
		u[2] = a.flds[2].At(x, y, z)
		u[3] = a.flds[3].At(x, y, z)
		u[4] = a.flds[4].At(x, y, z)
		p := pressure(u[0], u[1], u[2], u[3], u[4])
		vel := 0.0
		if u[0] > 0 {
			vel = u[1+dir] / u[0]
		}
		f[0] = u[1+dir]
		for k := 0; k < 3; k++ {
			f[1+k] = u[1+k] * vel
		}
		f[1+dir] += p
		f[4] = (u[4] + p) * vel
		return u, f
	}
	ul, fl := side(lx, ly, lz)
	ur, fr := side(rx, ry, rz)
	for k := 0; k < 5; k++ {
		out[k] = 0.5*(fl[k]+fr[k]) - 0.5*smax*(ur[k]-ul[k])
	}
	return out
}

// Step implements appkit.App: halo exchange, global Courant dt, one
// finite-volume update.
func (a *App) Step(ctx *appkit.Context, iter int) error {
	// Restore field interiors from the checkpoint views (no-ops except
	// right after recovery).
	for i := range a.flds {
		a.flds[i].SetInterior(a.flat[i])
	}
	for i := range a.flds {
		if err := a.flds[i].Exchange(ctx); err != nil {
			return err
		}
	}
	a.reflectBoundaries()
	d := a.d
	// Courant condition: global max wavespeed (LULESH's per-step allreduce).
	smax := 1e-12
	for z := 1; z <= d.LZ; z++ {
		for y := 1; y <= d.LY; y++ {
			for x := 1; x <= d.LX; x++ {
				if s := a.wavespeed(x, y, z); s > smax {
					smax = s
				}
			}
		}
	}
	gmax, err := appkit.MaxAll(ctx, smax)
	if err != nil {
		return err
	}
	dt := cfl * a.h / gmax

	n := d.LX * d.LY * d.LZ
	for i := range a.news {
		a.news[i] = grow(a.news[i], n)
	}
	li := 0
	dirs := [3][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for z := 1; z <= d.LZ; z++ {
		for y := 1; y <= d.LY; y++ {
			for x := 1; x <= d.LX; x++ {
				var u [5]float64
				for k := 0; k < 5; k++ {
					u[k] = a.flds[k].At(x, y, z)
				}
				for dir := 0; dir < 3; dir++ {
					dx, dy, dz := dirs[dir][0], dirs[dir][1], dirs[dir][2]
					fp := a.flux(x, y, z, x+dx, y+dy, z+dz, dir, gmax)
					fm := a.flux(x-dx, y-dy, z-dz, x, y, z, dir, gmax)
					for k := 0; k < 5; k++ {
						u[k] -= dt / a.h * (fp[k] - fm[k])
					}
				}
				if u[0] < 1e-10 {
					u[0] = 1e-10
				}
				for k := 0; k < 5; k++ {
					a.news[k][li] = u[k]
				}
				li++
			}
		}
	}
	ctx.Charge(float64(n) * 180)
	for k := 0; k < 5; k++ {
		copy(a.flat[k], a.news[k])
		a.flds[k].SetInterior(a.flat[k])
	}
	a.t += dt
	return nil
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Signature implements appkit.App: conserved total energy plus the maximum
// density (shock position proxy) plus elapsed physical time.
func (a *App) Signature(ctx *appkit.Context) (float64, error) {
	localE, localRhoMax := 0.0, 0.0
	for i, e := range a.flat[4] {
		localE += e
		if a.flat[0][i] > localRhoMax {
			localRhoMax = a.flat[0][i]
		}
	}
	totE, err := appkit.SumAll(ctx, localE)
	if err != nil {
		return 0, err
	}
	rhoMax, err := appkit.MaxAll(ctx, localRhoMax)
	if err != nil {
		return 0, err
	}
	return totE + rhoMax + a.t, nil
}

// Time returns the simulated physical time.
func (a *App) Time() float64 { return a.t }
