package lulesh_test

import (
	"testing"

	"match/internal/apps/appkit"
	"match/internal/apps/apptest"
	"match/internal/apps/lulesh"
	"match/internal/mpi"
	"match/internal/simnet"
)

func run(t *testing.T, n, s, steps int) apptest.Result {
	t.Helper()
	return apptest.Run(t, n, appkit.Params{S: s, MaxIter: steps},
		func() appkit.App { return lulesh.New() })
}

func TestBlastAdvancesTime(t *testing.T) {
	res := run(t, 8, 4, 20)
	app := res.Apps[0].(*lulesh.App)
	if app.Time() <= 0 {
		t.Fatal("physical time did not advance (dt collapsed)")
	}
}

// The blast must form a shock: density rises above the background.
func TestShockForms(t *testing.T) {
	res := run(t, 8, 4, 30)
	// signature = totE + rhoMax + t; subtract knowns loosely: just check
	// it differs from the t=0 configuration signature.
	init := run(t, 8, 4, 1)
	if res.Sigs[0] == init.Sigs[0] {
		t.Fatal("no dynamics")
	}
}

func TestSignatureAgreesAcrossRanks(t *testing.T) {
	res := run(t, 8, 4, 10)
	for i, s := range res.Sigs {
		if s != res.Sigs[0] {
			t.Fatalf("rank %d signature %v != %v", i, s, res.Sigs[0])
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, 8, 4, 12)
	b := run(t, 8, 4, 12)
	if a.Sigs[0] != b.Sigs[0] {
		t.Fatalf("non-deterministic: %v vs %v", a.Sigs[0], b.Sigs[0])
	}
}

func TestSingleRank(t *testing.T) {
	res := run(t, 1, 6, 15)
	if res.Apps[0].(*lulesh.App).Time() <= 0 {
		t.Fatal("single-rank hydro stalled")
	}
}

// LULESH requires cube process counts, as the paper notes (64 and 512).
func TestRejectsNonCubeProcs(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	var got error
	mpi.Launch(c, 6, 0, func(r *mpi.Rank) {
		ctx := &appkit.Context{R: r, World: r.Job().World(),
			Params: appkit.Params{S: 4, MaxIter: 1, WorkScale: 1}}
		err := lulesh.New().Init(ctx)
		if r.Rank(r.Job().World()) == 0 {
			got = err
		}
	})
	c.Run()
	if got == nil {
		t.Fatal("non-cube process count accepted")
	}
}
