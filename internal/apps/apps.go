// Package apps aggregates the six MATCH proxy applications behind a
// registry the harness instantiates from.
package apps

import (
	"fmt"
	"sort"

	"match/internal/apps/amg"
	"match/internal/apps/appkit"
	"match/internal/apps/comd"
	"match/internal/apps/hpccg"
	"match/internal/apps/lulesh"
	"match/internal/apps/minife"
	"match/internal/apps/minivite"
)

// Factory creates a fresh per-rank application instance.
type Factory func() appkit.App

var registry = map[string]Factory{
	"AMG":      func() appkit.App { return amg.New() },
	"CoMD":     func() appkit.App { return comd.New() },
	"HPCCG":    func() appkit.App { return hpccg.New() },
	"LULESH":   func() appkit.App { return lulesh.New() },
	"miniFE":   func() appkit.App { return minife.New() },
	"miniVite": func() appkit.App { return minivite.New() },
}

// Names returns the registered application names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the factory for a registered application.
func Lookup(name string) (Factory, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	return f, nil
}

// Register adds a user-provided application to the suite, enabling the
// paper's §V-E extension path ("we encourage programmers to add new HPC
// applications to MATCH").
func Register(name string, f Factory) error {
	if _, dup := registry[name]; dup {
		return fmt.Errorf("apps: %q already registered", name)
	}
	registry[name] = f
	return nil
}
