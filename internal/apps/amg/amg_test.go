package amg_test

import (
	"testing"

	"match/internal/apps/amg"
	"match/internal/apps/appkit"
	"match/internal/apps/apptest"
	"match/internal/mpi"
	"match/internal/simnet"
)

func TestVCyclesReduceResidual(t *testing.T) {
	short := apptest.Run(t, 8, appkit.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 2},
		func() appkit.App { return amg.New() })
	long := apptest.Run(t, 8, appkit.Params{NX: 8, NY: 8, NZ: 8, MaxIter: 12},
		func() appkit.App { return amg.New() })
	r2 := short.Apps[0].(*amg.App).Residual()
	r12 := long.Apps[0].(*amg.App).Residual()
	if !(r12 < r2/10) {
		t.Fatalf("multigrid stalls: residual %v after 2 cycles, %v after 12", r2, r12)
	}
}

func TestSignatureAgreesAcrossRanks(t *testing.T) {
	res := apptest.Run(t, 8, appkit.Params{NX: 4, NY: 4, NZ: 4, MaxIter: 4},
		func() appkit.App { return amg.New() })
	for i, s := range res.Sigs {
		if s != res.Sigs[0] {
			t.Fatalf("rank %d signature %v != %v", i, s, res.Sigs[0])
		}
	}
}

func TestDeterministic(t *testing.T) {
	p := appkit.Params{NX: 4, NY: 4, NZ: 4, MaxIter: 5}
	a := apptest.Run(t, 4, p, func() appkit.App { return amg.New() })
	b := apptest.Run(t, 4, p, func() appkit.App { return amg.New() })
	if a.Sigs[0] != b.Sigs[0] {
		t.Fatalf("non-deterministic: %v vs %v", a.Sigs[0], b.Sigs[0])
	}
}

func TestSingleRankMultilevel(t *testing.T) {
	res := apptest.Run(t, 1, appkit.Params{NX: 16, NY: 16, NZ: 16, MaxIter: 10},
		func() appkit.App { return amg.New() })
	app := res.Apps[0].(*amg.App)
	if app.Residual() <= 0 {
		t.Fatal("residual not tracked")
	}
}

// Odd local dims cannot coarsen; Init must reject them with an error.
func TestRejectsOddDims(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 1})
	var got error
	mpi.Launch(c, 1, 0, func(r *mpi.Rank) {
		ctx := &appkit.Context{R: r, World: r.Job().World(),
			Params: appkit.Params{NX: 5, NY: 5, NZ: 5, MaxIter: 1, WorkScale: 1}}
		got = amg.New().Init(ctx)
	})
	c.Run()
	if got == nil {
		t.Fatal("odd dims accepted")
	}
}
