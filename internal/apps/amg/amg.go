// Package amg reproduces the AMG proxy application: a multigrid solver for
// the paper's default problem (-problem 2), an anisotropic diffusion
// problem in the Laplace domain. Where the original applies algebraic
// multigrid through HYPRE's BoomerAMG, this implementation uses geometric
// multigrid on the structured grid — same V-cycle structure, smoothers,
// transfer operators, and halo-exchange communication pattern, with the
// anisotropy expressed in the 7-point operator coefficients
// (cz << cx = cy, the classic hard case for point smoothers).
//
// Each process owns an NX x NY x NZ block (AMG's -n semantics); one Step is
// one V-cycle.
package amg

import (
	"fmt"
	"math"

	"match/internal/apps/appkit"
	"match/internal/fti"
)

// Anisotropy coefficients for -problem 2.
const (
	cx = 1.0
	cy = 1.0
	cz = 0.001
)

// jacobiOmega is the damped-Jacobi relaxation weight.
const jacobiOmega = 0.8

type level struct {
	d       *appkit.Decomp3D
	x, b, r *appkit.Field3D
	czEff   float64 // effective z coupling: grows 4x per semicoarsened level
}

// App is the AMG solver state for one rank.
type App struct {
	levels []*level
	xFlat  []float64 // checkpoint view of the finest solution
	rho    float64   // latest global residual norm^2
}

// New returns an AMG instance.
func New() *App { return &App{} }

// Name implements appkit.App.
func (a *App) Name() string { return "AMG" }

// Init implements appkit.App: build the grid hierarchy and the right-hand
// side, and protect the finest-level solution.
func (a *App) Init(ctx *appkit.Context) error {
	p := ctx.Params
	if p.NX <= 0 || p.NX%2 != 0 {
		return fmt.Errorf("amg: local dims must be positive and even, got %d", p.NX)
	}
	rank, size := ctx.Rank(), ctx.Size()
	px, py, pz := appkit.Factor3D(size)
	gx, gy, gz := p.NX*px, p.NY*py, p.NZ*pz

	// Semicoarsening in x and y only: with cz << cx the point smoother
	// cannot damp z-oscillatory error, so z stays fine — the standard
	// multigrid treatment of this anisotropy (what BoomerAMG's strength-of-
	// connection coarsening finds algebraically).
	a.levels = nil
	czEff := cz
	lx, ly, lz := gx, gy, gz
	for {
		d := appkit.NewDecomp3D(rank, size, lx, ly, lz)
		lv := &level{d: d, x: appkit.NewField3D(d), b: appkit.NewField3D(d), r: appkit.NewField3D(d), czEff: czEff}
		a.levels = append(a.levels, lv)
		if lx%(2*px) != 0 || ly%(2*py) != 0 {
			break
		}
		if d.LX <= 2 || d.LY <= 2 || len(a.levels) >= 6 {
			break
		}
		lx, ly = lx/2, ly/2
		czEff *= 4 // x/y spacing doubled: z coupling strengthens relatively
	}

	// RHS: a smooth deterministic source plus a point load, mirroring the
	// anisotropy test's forcing.
	fine := a.levels[0]
	d := fine.d
	for z := 1; z <= d.LZ; z++ {
		for y := 1; y <= d.LY; y++ {
			for x := 1; x <= d.LX; x++ {
				gxp := float64(d.OX+x-1) / float64(gx)
				gyp := float64(d.OY+y-1) / float64(gy)
				gzp := float64(d.OZ+z-1) / float64(gz)
				fine.b.Set(x, y, z, math.Sin(math.Pi*gxp)*math.Sin(math.Pi*gyp)+0.3*gzp)
			}
		}
	}
	a.xFlat = fine.x.Interior()
	ctx.FTI.Protect(1, fti.F64s{P: &a.xFlat})
	ctx.FTI.Protect(2, fti.F64{P: &a.rho})
	// Recovery note: FTI restores xFlat; Step copies it back into the
	// ghosted field before smoothing, so the field and the checkpoint view
	// stay coherent.
	return nil
}

// applyResidual computes r = b - A*x at a level (x ghosts must be current).
func (lv *level) applyResidual() {
	d := lv.d
	diag := 2 * (cx + cy + lv.czEff)
	for z := 1; z <= d.LZ; z++ {
		for y := 1; y <= d.LY; y++ {
			for x := 1; x <= d.LX; x++ {
				ax := diag*lv.x.At(x, y, z) -
					cx*(lv.x.At(x-1, y, z)+lv.x.At(x+1, y, z)) -
					cy*(lv.x.At(x, y-1, z)+lv.x.At(x, y+1, z)) -
					lv.czEff*(lv.x.At(x, y, z-1)+lv.x.At(x, y, z+1))
				lv.r.Set(x, y, z, lv.b.At(x, y, z)-ax)
			}
		}
	}
}

// smooth runs one damped-Jacobi sweep (x ghosts must be current).
func (lv *level) smooth() {
	d := lv.d
	diag := 2 * (cx + cy + lv.czEff)
	lv.applyResidual()
	for z := 1; z <= d.LZ; z++ {
		for y := 1; y <= d.LY; y++ {
			for x := 1; x <= d.LX; x++ {
				lv.x.Set(x, y, z, lv.x.At(x, y, z)+jacobiOmega*lv.r.At(x, y, z)/diag)
			}
		}
	}
}

func (lv *level) cells() float64 {
	return float64(lv.d.LX * lv.d.LY * lv.d.LZ)
}

// vcycle runs the multigrid V-cycle from level i downward.
func (a *App) vcycle(ctx *appkit.Context, i int) error {
	lv := a.levels[i]
	if i == len(a.levels)-1 {
		// Coarsest: a handful of smoothing sweeps.
		for s := 0; s < 8; s++ {
			if err := lv.x.Exchange(ctx); err != nil {
				return err
			}
			lv.smooth()
			ctx.Charge(lv.cells() * 14)
		}
		return nil
	}
	// Pre-smooth.
	if err := lv.x.Exchange(ctx); err != nil {
		return err
	}
	lv.smooth()
	ctx.Charge(lv.cells() * 14)
	// Residual and full-weighting restriction to the coarse level.
	if err := lv.x.Exchange(ctx); err != nil {
		return err
	}
	lv.applyResidual()
	ctx.Charge(lv.cells() * 10)
	coarse := a.levels[i+1]
	for z := 1; z <= coarse.d.LZ; z++ {
		for y := 1; y <= coarse.d.LY; y++ {
			for x := 1; x <= coarse.d.LX; x++ {
				sum := 0.0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						sum += lv.r.At(2*x-1+dx, 2*y-1+dy, z)
					}
				}
				coarse.b.Set(x, y, z, sum) // 2x2x1 FW restriction with h^2 rescale (x4/4)
				coarse.x.Set(x, y, z, 0)
			}
		}
	}
	ctx.Charge(coarse.cells() * 5)
	if err := a.vcycle(ctx, i+1); err != nil {
		return err
	}
	// Prolongate bilinearly in the coarsened (x,y) axes and correct.
	// Piecewise-constant interpolation is insufficient for cell-centered
	// multigrid (interpolation + restriction orders must exceed the
	// operator order); bilinear weights (9,3,3,1)/16 restore convergence.
	// Coarse ghosts are refreshed first; domain-boundary ghosts stay zero,
	// which is exactly the homogeneous Dirichlet extension.
	if err := coarse.x.Exchange(ctx); err != nil {
		return err
	}
	for fz := 1; fz <= lv.d.LZ; fz++ {
		for fy := 1; fy <= lv.d.LY; fy++ {
			cy0 := (fy + 1) / 2
			sy := 1
			if fy == 2*cy0-1 {
				sy = -1
			}
			for fx := 1; fx <= lv.d.LX; fx++ {
				cx0 := (fx + 1) / 2
				sx := 1
				if fx == 2*cx0-1 {
					sx = -1
				}
				c := (9*coarse.x.At(cx0, cy0, fz) +
					3*coarse.x.At(cx0+sx, cy0, fz) +
					3*coarse.x.At(cx0, cy0+sy, fz) +
					coarse.x.At(cx0+sx, cy0+sy, fz)) / 16
				lv.x.Set(fx, fy, fz, lv.x.At(fx, fy, fz)+c)
			}
		}
	}
	ctx.Charge(lv.cells())
	// Post-smooth.
	if err := lv.x.Exchange(ctx); err != nil {
		return err
	}
	lv.smooth()
	ctx.Charge(lv.cells() * 14)
	return nil
}

// Step implements appkit.App: one V-cycle plus the global residual check
// AMG performs each iteration.
func (a *App) Step(ctx *appkit.Context, iter int) error {
	fine := a.levels[0]
	// Re-install the (possibly just recovered) checkpoint view.
	fine.x.SetInterior(a.xFlat)
	if err := a.vcycle(ctx, 0); err != nil {
		return err
	}
	if err := fine.x.Exchange(ctx); err != nil {
		return err
	}
	fine.applyResidual()
	local := 0.0
	for _, v := range fine.r.Interior() {
		local += v * v
	}
	ctx.Charge(fine.cells() * 12)
	rho, err := appkit.SumAll(ctx, local)
	if err != nil {
		return err
	}
	a.rho = rho
	a.xFlat = fine.x.Interior()
	return nil
}

// Signature implements appkit.App.
func (a *App) Signature(ctx *appkit.Context) (float64, error) {
	local := 0.0
	for _, v := range a.xFlat {
		local += v * v
	}
	xx, err := appkit.SumAll(ctx, local)
	if err != nil {
		return 0, err
	}
	return a.rho + xx, nil
}

// Residual returns the latest global squared residual.
func (a *App) Residual() float64 { return a.rho }
