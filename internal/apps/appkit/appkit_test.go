package appkit

import (
	"testing"
	"testing/quick"

	"match/internal/fault"
	"match/internal/fti"
	"match/internal/mpi"
	"match/internal/simnet"
	"match/internal/storage"
)

func TestFactor3DProperties(t *testing.T) {
	f := func(raw uint8) bool {
		p := int(raw)%512 + 1
		a, b, c := Factor3D(p)
		return a*b*c == p && a <= b && b <= c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Cubes factor to cubes.
	for _, p := range []int{8, 27, 64, 512} {
		a, b, c := Factor3D(p)
		if a != b || b != c {
			t.Fatalf("Factor3D(%d) = %d,%d,%d, want a cube", p, a, b, c)
		}
	}
}

func TestDecompPartitionsExactly(t *testing.T) {
	// Every global cell is owned by exactly one rank.
	nx, ny, nz, size := 13, 7, 9, 12
	owned := map[[3]int]int{}
	for rank := 0; rank < size; rank++ {
		d := NewDecomp3D(rank, size, nx, ny, nz)
		if d.LX <= 0 || d.LY <= 0 || d.LZ <= 0 {
			t.Fatalf("rank %d has empty block %s", rank, d)
		}
		for z := d.OZ; z < d.OZ+d.LZ; z++ {
			for y := d.OY; y < d.OY+d.LY; y++ {
				for x := d.OX; x < d.OX+d.LX; x++ {
					owned[[3]int{x, y, z}]++
				}
			}
		}
		if d.RankAt(d.CX, d.CY, d.CZ) != rank {
			t.Fatalf("rank %d coordinate roundtrip failed", rank)
		}
	}
	if len(owned) != nx*ny*nz {
		t.Fatalf("covered %d cells, want %d", len(owned), nx*ny*nz)
	}
	for cell, n := range owned {
		if n != 1 {
			t.Fatalf("cell %v owned %d times", cell, n)
		}
	}
}

func TestNeighborWrap(t *testing.T) {
	d := NewDecomp3D(0, 8, 8, 8, 8) // 2x2x2 grid, corner rank
	if d.Neighbor(-1, 0, 0) != -1 {
		t.Fatal("non-periodic neighbor off the grid should be -1")
	}
	if d.NeighborWrap(-1, 0, 0) != d.RankAt(1, 0, 0) {
		t.Fatal("periodic wrap wrong")
	}
}

// Halo exchange must reproduce neighbor interior values in ghosts,
// including edge/corner ghosts via the three-phase scheme.
func TestExchangeFillsGhostsIncludingCorners(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	st := storage.New(c, storage.Config{})
	size := 8
	gn := 8 // global 8^3 over a 2x2x2 process grid
	fail := false
	mpi.Launch(c, size, 0, func(r *mpi.Rank) {
		world := r.Job().World()
		f, _ := fti.Init(fti.Config{ExecID: "halo"}, r, world, st)
		ctx := &Context{R: r, World: world, FTI: f,
			Inject: fault.NewInjector(fault.Plan{}), Params: Params{WorkScale: 1}}
		d := NewDecomp3D(r.Rank(world), size, gn, gn, gn)
		fld := NewField3D(d)
		val := func(gx, gy, gz int) float64 {
			return float64(gx + 100*gy + 10000*gz)
		}
		for z := 1; z <= d.LZ; z++ {
			for y := 1; y <= d.LY; y++ {
				for x := 1; x <= d.LX; x++ {
					fld.Set(x, y, z, val(d.OX+x-1, d.OY+y-1, d.OZ+z-1))
				}
			}
		}
		if err := fld.Exchange(ctx); err != nil {
			t.Errorf("exchange: %v", err)
			return
		}
		// Every ghost cell inside the global domain must hold the global
		// value — faces, edges, and corners alike.
		for z := 0; z <= d.LZ+1; z++ {
			for y := 0; y <= d.LY+1; y++ {
				for x := 0; x <= d.LX+1; x++ {
					gx, gy, gz := d.OX+x-1, d.OY+y-1, d.OZ+z-1
					if gx < 0 || gx >= gn || gy < 0 || gy >= gn || gz < 0 || gz >= gn {
						continue
					}
					if got := fld.At(x, y, z); got != val(gx, gy, gz) {
						fail = true
						t.Errorf("rank %d ghost (%d,%d,%d) = %v, want %v",
							r.Rank(world), gx, gy, gz, got, val(gx, gy, gz))
						return
					}
				}
			}
		}
	})
	c.Run()
	if fail {
		t.FailNow()
	}
}

func TestFieldInteriorRoundTrip(t *testing.T) {
	d := NewDecomp3D(0, 1, 3, 4, 5)
	f := NewField3D(d)
	vals := make([]float64, 3*4*5)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	f.SetInterior(vals)
	got := f.Interior()
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("interior roundtrip mismatch at %d", i)
		}
	}
}

func TestChargeAdvancesTime(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 1})
	var elapsed simnet.Time
	mpi.Launch(c, 1, 0, func(r *mpi.Rank) {
		ctx := &Context{R: r, Params: Params{WorkScale: 100}}
		start := r.Now()
		ctx.Charge(1000) // 1000 units x 100ns
		elapsed = r.Now() - start
	})
	c.Run()
	if elapsed != 100*simnet.Microsecond {
		t.Fatalf("charge advanced %v, want 100µs", elapsed)
	}
}
