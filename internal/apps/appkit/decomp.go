package appkit

import (
	"fmt"

	"match/internal/enc"
	"match/internal/mpi"
)

// Decomp3D is a 3D Cartesian domain decomposition: P processes arranged in
// a PXxPYxPZ grid, each owning a block of a global NXxNYxNZ mesh.
type Decomp3D struct {
	PX, PY, PZ int // process grid
	CX, CY, CZ int // this rank's coordinates
	NX, NY, NZ int // global mesh
	LX, LY, LZ int // local block extent
	OX, OY, OZ int // global offset of the local block
	rank, size int
}

// Factor3D splits p into the most cubic px*py*pz factorization.
func Factor3D(p int) (px, py, pz int) {
	best := [3]int{p, 1, 1}
	bestScore := p * p
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b != 0 {
				continue
			}
			c := q / b
			score := (c - a) + (c - b) // prefer near-cubic
			if score < bestScore {
				bestScore = score
				best = [3]int{a, b, c}
			}
		}
	}
	return best[0], best[1], best[2]
}

// NewDecomp3D builds the decomposition for the calling rank. The global
// extents need not divide evenly; remainders go to the low-coordinate
// blocks.
func NewDecomp3D(rank, size, nx, ny, nz int) *Decomp3D {
	px, py, pz := Factor3D(size)
	d := &Decomp3D{PX: px, PY: py, PZ: pz, NX: nx, NY: ny, NZ: nz, rank: rank, size: size}
	d.CX = rank % px
	d.CY = (rank / px) % py
	d.CZ = rank / (px * py)
	split := func(n, parts, coord int) (lo, ln int) {
		base := n / parts
		rem := n % parts
		lo = coord*base + min(coord, rem)
		ln = base
		if coord < rem {
			ln++
		}
		return lo, ln
	}
	d.OX, d.LX = split(nx, px, d.CX)
	d.OY, d.LY = split(ny, py, d.CY)
	d.OZ, d.LZ = split(nz, pz, d.CZ)
	return d
}

// RankAt returns the rank at process coordinates (cx,cy,cz), or -1 when
// outside the process grid.
func (d *Decomp3D) RankAt(cx, cy, cz int) int {
	if cx < 0 || cx >= d.PX || cy < 0 || cy >= d.PY || cz < 0 || cz >= d.PZ {
		return -1
	}
	return cx + d.PX*(cy+d.PY*cz)
}

// Neighbor returns the rank offset by (dx,dy,dz) in the process grid
// (non-periodic), or -1.
func (d *Decomp3D) Neighbor(dx, dy, dz int) int {
	return d.RankAt(d.CX+dx, d.CY+dy, d.CZ+dz)
}

// NeighborWrap is Neighbor with periodic wraparound.
func (d *Decomp3D) NeighborWrap(dx, dy, dz int) int {
	wrap := func(c, p int) int { return ((c % p) + p) % p }
	return d.RankAt(wrap(d.CX+dx, d.PX), wrap(d.CY+dy, d.PY), wrap(d.CZ+dz, d.PZ))
}

// Field3D is a local scalar field with one ghost layer on each side:
// storage extents (LX+2) x (LY+2) x (LZ+2); interior indices run 1..L.
type Field3D struct {
	D          *Decomp3D
	SX, SY, SZ int // storage extents
	V          []float64
}

// NewField3D allocates a ghosted field over the decomposition.
func NewField3D(d *Decomp3D) *Field3D {
	f := &Field3D{D: d, SX: d.LX + 2, SY: d.LY + 2, SZ: d.LZ + 2}
	f.V = make([]float64, f.SX*f.SY*f.SZ)
	return f
}

// Idx converts ghosted coordinates (0..L+1 in each axis) to a flat index.
func (f *Field3D) Idx(x, y, z int) int { return x + f.SX*(y+f.SY*z) }

// At returns the value at ghosted coordinates.
func (f *Field3D) At(x, y, z int) float64 { return f.V[f.Idx(x, y, z)] }

// Set stores the value at ghosted coordinates.
func (f *Field3D) Set(x, y, z int, v float64) { f.V[f.Idx(x, y, z)] = v }

// Interior returns a copy of the interior (non-ghost) values in x-fastest
// order; used for checkpoint payloads and reductions.
func (f *Field3D) Interior() []float64 {
	out := make([]float64, f.D.LX*f.D.LY*f.D.LZ)
	i := 0
	for z := 1; z <= f.D.LZ; z++ {
		for y := 1; y <= f.D.LY; y++ {
			for x := 1; x <= f.D.LX; x++ {
				out[i] = f.At(x, y, z)
				i++
			}
		}
	}
	return out
}

// SetInterior writes interior values from a flat x-fastest slice.
func (f *Field3D) SetInterior(vals []float64) {
	i := 0
	for z := 1; z <= f.D.LZ; z++ {
		for y := 1; y <= f.D.LY; y++ {
			for x := 1; x <= f.D.LX; x++ {
				f.Set(x, y, z, vals[i])
				i++
			}
		}
	}
}

// halo exchange tags; each axis uses two (one per direction).
const (
	tagHaloXLo = 1100 + iota
	tagHaloXHi
	tagHaloYLo
	tagHaloYHi
	tagHaloZLo
	tagHaloZHi
)

// Exchange fills the ghost layers from the six face neighbors using the
// three-phase (x, then y, then z) scheme, which also propagates edge and
// corner values — sufficient for 27-point stencils. Missing neighbors
// (non-periodic domain boundary) leave ghosts untouched.
func (f *Field3D) Exchange(ctx *Context) error {
	d := f.D
	type phase struct {
		loNbr, hiNbr   int
		tagLo, tagHi   int
		packLo, packHi func() []float64
		fillLo, fillHi func([]float64)
	}
	planeYZ := func(x int) []float64 {
		out := make([]float64, 0, f.SY*f.SZ)
		for z := 0; z < f.SZ; z++ {
			for y := 0; y < f.SY; y++ {
				out = append(out, f.At(x, y, z))
			}
		}
		return out
	}
	setPlaneYZ := func(x int, vals []float64) {
		i := 0
		for z := 0; z < f.SZ; z++ {
			for y := 0; y < f.SY; y++ {
				f.Set(x, y, z, vals[i])
				i++
			}
		}
	}
	planeXZ := func(y int) []float64 {
		out := make([]float64, 0, f.SX*f.SZ)
		for z := 0; z < f.SZ; z++ {
			for x := 0; x < f.SX; x++ {
				out = append(out, f.At(x, y, z))
			}
		}
		return out
	}
	setPlaneXZ := func(y int, vals []float64) {
		i := 0
		for z := 0; z < f.SZ; z++ {
			for x := 0; x < f.SX; x++ {
				f.Set(x, y, z, vals[i])
				i++
			}
		}
	}
	planeXY := func(z int) []float64 {
		out := make([]float64, 0, f.SX*f.SY)
		for y := 0; y < f.SY; y++ {
			for x := 0; x < f.SX; x++ {
				out = append(out, f.At(x, y, z))
			}
		}
		return out
	}
	setPlaneXY := func(z int, vals []float64) {
		i := 0
		for y := 0; y < f.SY; y++ {
			for x := 0; x < f.SX; x++ {
				f.Set(x, y, z, vals[i])
				i++
			}
		}
	}
	phases := []phase{
		{
			loNbr: d.Neighbor(-1, 0, 0), hiNbr: d.Neighbor(1, 0, 0),
			tagLo: tagHaloXLo, tagHi: tagHaloXHi,
			packLo: func() []float64 { return planeYZ(1) },
			packHi: func() []float64 { return planeYZ(d.LX) },
			fillLo: func(v []float64) { setPlaneYZ(0, v) },
			fillHi: func(v []float64) { setPlaneYZ(d.LX+1, v) },
		},
		{
			loNbr: d.Neighbor(0, -1, 0), hiNbr: d.Neighbor(0, 1, 0),
			tagLo: tagHaloYLo, tagHi: tagHaloYHi,
			packLo: func() []float64 { return planeXZ(1) },
			packHi: func() []float64 { return planeXZ(d.LY) },
			fillLo: func(v []float64) { setPlaneXZ(0, v) },
			fillHi: func(v []float64) { setPlaneXZ(d.LY+1, v) },
		},
		{
			loNbr: d.Neighbor(0, 0, -1), hiNbr: d.Neighbor(0, 0, 1),
			tagLo: tagHaloZLo, tagHi: tagHaloZHi,
			packLo: func() []float64 { return planeXY(1) },
			packHi: func() []float64 { return planeXY(d.LZ) },
			fillLo: func(v []float64) { setPlaneXY(0, v) },
			fillHi: func(v []float64) { setPlaneXY(d.LZ+1, v) },
		},
	}
	for _, ph := range phases {
		// Post both sends first (eager), then receive; deadlock-free.
		if ph.loNbr >= 0 {
			if err := mpi.Send(ctx.R, ctx.World, ph.loNbr, ph.tagLo, enc.Float64sToBytes(ph.packLo())); err != nil {
				return err
			}
		}
		if ph.hiNbr >= 0 {
			if err := mpi.Send(ctx.R, ctx.World, ph.hiNbr, ph.tagHi, enc.Float64sToBytes(ph.packHi())); err != nil {
				return err
			}
		}
		if ph.loNbr >= 0 {
			m, err := mpi.Recv(ctx.R, ctx.World, ph.loNbr, ph.tagHi)
			if err != nil {
				return err
			}
			ph.fillLo(enc.BytesToFloat64s(m.Data))
		}
		if ph.hiNbr >= 0 {
			m, err := mpi.Recv(ctx.R, ctx.World, ph.hiNbr, ph.tagLo)
			if err != nil {
				return err
			}
			ph.fillHi(enc.BytesToFloat64s(m.Data))
		}
	}
	return nil
}

// String describes the decomposition (diagnostics).
func (d *Decomp3D) String() string {
	return fmt.Sprintf("decomp %dx%dx%d procs, local %dx%dx%d at (%d,%d,%d)",
		d.PX, d.PY, d.PZ, d.LX, d.LY, d.LZ, d.OX, d.OY, d.OZ)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
