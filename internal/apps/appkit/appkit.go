// Package appkit defines the contract between the MATCH proxy applications
// and the fault-tolerance harness, plus the distributed-computing toolkit
// the applications share: 1D/3D domain decomposition, face and corner-aware
// halo exchange, distributed reductions, and the Figure-1 checkpointed main
// loop every design (RESTART-FTI, REINIT-FTI, ULFM-FTI) wraps.
package appkit

import (
	"fmt"

	"match/internal/ckpt"
	"match/internal/fault"
	"match/internal/fti"
	"match/internal/mpi"
	"match/internal/simnet"
	"match/internal/trace"
)

// Params is one Table I configuration: application input plus run shape.
type Params struct {
	// NX, NY, NZ are grid dimensions; their meaning is per-app (HPCCG:
	// local grid per process, AMG/miniFE/CoMD: global grid).
	NX, NY, NZ int
	// S is LULESH's -s (edge elements per process).
	S int
	// NVerts is miniVite's -n (global vertex count).
	NVerts int
	// MaxIter is the main-loop trip count.
	MaxIter int
	// CkptStride is the base checkpoint period in iterations (paper: 10).
	// It only takes effect when the Context carries no placement policy:
	// RunMainLoop then installs a fixed-stride policy over it.
	CkptStride int
	// WorkScale converts one abstract work unit (roughly a flop) into
	// virtual nanoseconds; it encodes the documented scale-down factor.
	WorkScale float64
	// Seed drives any randomized initialization deterministically.
	Seed int64
}

// Context is the per-rank execution context handed to applications.
type Context struct {
	R      *mpi.Rank
	World  *mpi.Comm
	FTI    *fti.FTI
	Inject *fault.Injector
	Params Params
	// Ckpt decides checkpoint placement for the main loop. The harness
	// installs the per-incarnation policy of the run's placement planner;
	// nil falls back to a fixed-stride policy over Params.CkptStride.
	Ckpt ckpt.Policy
}

// Rank returns this rank's index in the world.
func (c *Context) Rank() int { return c.R.Rank(c.World) }

// Size returns the world size.
func (c *Context) Size() int { return c.R.Size(c.World) }

// Charge converts work units into virtual compute time.
func (c *Context) Charge(units float64) {
	if units <= 0 {
		return
	}
	c.R.Compute(simnet.Time(units * c.Params.WorkScale))
}

// App is a MATCH proxy application. Init allocates per-rank state and
// registers it with FTI (object ids must be >= 1; id 0 is the loop
// counter). Step runs one main-loop iteration and must propagate MPI
// errors upward so the recovery frameworks can act on them. Signature
// returns a collectively-computed scalar fingerprint of the final answer,
// used to verify that recovered runs match failure-free runs bit-for-bit.
type App interface {
	Name() string
	Init(ctx *Context) error
	Step(ctx *Context, iter int) error
	Signature(ctx *Context) (float64, error)
}

// RunMainLoop drives an App through the paper's Figure 1 structure:
//
//	FTI_Protect(...)            (app.Init)
//	if FTI_Status() != 0: FTI_Recover()
//	loop: inject; consult the placement policy; checkpoint; compute step
//
// It returns the application's signature. All four fault-tolerance
// designs call this; only what surrounds it differs. Checkpoint placement
// comes entirely from the Context's ckpt.Policy — the loop itself holds
// no stride arithmetic — and the measured checkpoint/step durations are
// fed back to the policy for adaptive interval selection.
func RunMainLoop(ctx *Context, app App) (float64, error) {
	if err := app.Init(ctx); err != nil {
		return 0, fmt.Errorf("%s init: %w", app.Name(), err)
	}
	iter := 0
	ctx.FTI.Protect(0, fti.Int{P: &iter})
	if ctx.FTI.Status() != fti.StatusFresh {
		if err := ctx.FTI.Recover(); err != nil {
			return 0, fmt.Errorf("%s recover: %w", app.Name(), err)
		}
	}
	pol := ctx.Ckpt
	if pol == nil {
		pol = ckpt.FixedPolicy(ctx.Params.CkptStride)
	}
	// Trace identity of this rank's main loop, captured once: one compute
	// span per step lands on the rank's own timeline track.
	tr := ctx.R.Job().Cluster().Tracer()
	var trRank, trReplica, trJob int32
	if tr.Enabled() {
		trRank = int32(ctx.Rank())
		trJob = tr.JobOf(ctx.R.Job())
		if ctx.World.Replicated() {
			trReplica = int32(ctx.World.ReplicaIndexOf(ctx.R.Process().GID()))
		}
	}
	for ; iter < ctx.Params.MaxIter; iter++ {
		ctx.Inject.MaybeFail(ctx.R, ctx.World, iter)
		if d := pol.Next(ckpt.State{Iter: iter}); d.Take {
			start := ctx.R.Now()
			if err := ctx.FTI.CheckpointAt(int64(iter), d.Level); err != nil {
				return 0, err
			}
			pol.Observe(ckpt.ObsCkpt, ctx.R.Now()-start)
		}
		start := ctx.R.Now()
		if err := app.Step(ctx, iter); err != nil {
			return 0, err
		}
		stepDur := ctx.R.Now() - start
		if tr.Wants(trace.CatCompute) {
			tr.Emit(trace.Span{Cat: trace.CatCompute,
				Rank: trRank, Replica: trReplica, Job: trJob,
				Start: int64(start), Dur: int64(stepDur), Aux: int64(iter)})
		}
		pol.Observe(ckpt.ObsStep, stepDur)
	}
	sig, err := app.Signature(ctx)
	if err != nil {
		return 0, err
	}
	return sig, ctx.FTI.Finalize()
}

// Dot computes a distributed dot product over the world.
func Dot(ctx *Context, a, b []float64) (float64, error) {
	local := 0.0
	for i := range a {
		local += a[i] * b[i]
	}
	ctx.Charge(2 * float64(len(a)))
	return mpi.AllreduceF64Scalar(ctx.R, ctx.World, local, mpi.OpSum)
}

// SumAll reduces a scalar with OpSum over the world.
func SumAll(ctx *Context, v float64) (float64, error) {
	return mpi.AllreduceF64Scalar(ctx.R, ctx.World, v, mpi.OpSum)
}

// MinAll reduces a scalar with OpMin over the world.
func MinAll(ctx *Context, v float64) (float64, error) {
	return mpi.AllreduceF64Scalar(ctx.R, ctx.World, v, mpi.OpMin)
}

// MaxAll reduces a scalar with OpMax over the world.
func MaxAll(ctx *Context, v float64) (float64, error) {
	return mpi.AllreduceF64Scalar(ctx.R, ctx.World, v, mpi.OpMax)
}
