package simnet

import (
	"container/heap"
	"math/rand"
	"testing"
)

// Cancelled events must leave the queue immediately — the old tombstone
// implementation retained every cancelled event's closure until its pop
// time, so a long-lived scheduler leaked arbitrary state.
func TestCancelRemovesEventImmediately(t *testing.T) {
	s := NewScheduler()
	var timers []Timer
	for i := 0; i < 100; i++ {
		timers = append(timers, s.At(Time(1000+i), func() {}))
	}
	if got := s.Pending(); got != 100 {
		t.Fatalf("Pending() = %d, want 100", got)
	}
	for i, tm := range timers {
		if !s.Cancel(tm) {
			t.Fatalf("Cancel(#%d) reported nothing removed", i)
		}
		if got, want := s.Pending(), 100-i-1; got != want {
			t.Fatalf("Pending() = %d after %d cancels, want %d (eager removal)", got, i+1, want)
		}
	}
	if n, _ := s.Leaked(); n != 0 {
		t.Fatalf("Leaked() = %d after cancelling everything, want 0", n)
	}
}

// Cancel must be a no-op (and say so) on timers whose event already fired,
// was already cancelled, or never existed (the zero Timer).
func TestCancelStaleTimers(t *testing.T) {
	s := NewScheduler()
	fired := 0
	tm := s.At(10, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Cancel(tm) {
		t.Fatal("Cancel of an already-fired timer reported removal")
	}
	tm2 := s.At(20, func() { fired++ })
	if !s.Cancel(tm2) || s.Cancel(tm2) {
		t.Fatal("double Cancel: want (true, false)")
	}
	if s.Cancel(Timer{}) {
		t.Fatal("Cancel of the zero Timer reported removal")
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after Run, want 1", fired)
	}
}

// Slot reuse after a fire must not let a stale Timer cancel the new
// occupant of the slot.
func TestTimerSlotReuseAfterFire(t *testing.T) {
	s := NewScheduler()
	stale := s.At(10, func() {})
	s.Run() // fires; slot freed
	fired := false
	fresh := s.At(20, func() { fired = true }) // reuses the slot
	if s.Cancel(stale) {
		t.Fatal("stale timer cancelled a reused slot's event")
	}
	s.Run()
	if !fired {
		t.Fatal("event lost: stale timer interfered with reused slot")
	}
	_ = fresh
}

// Slot reuse after a cancel: same property, via the cancellation path.
func TestTimerSlotReuseAfterCancel(t *testing.T) {
	s := NewScheduler()
	stale := s.At(10, func() { t.Error("cancelled event fired") })
	s.Cancel(stale)
	fired := false
	s.At(20, func() { fired = true }) // reuses the freed slot
	if s.Cancel(stale) {
		t.Fatal("stale timer cancelled a reused slot's event")
	}
	s.Run()
	if !fired {
		t.Fatal("event lost after slot reuse")
	}
}

// Scheduling into the past is silently clamped by default but must panic
// under the strict-past assertion, so protocol bugs that would be silently
// reordered become catchable.
func TestStrictPastPanics(t *testing.T) {
	s := NewScheduler()
	s.SetStrictPast(true)
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic under SetStrictPast")
			}
		}()
		s.At(10, func() {})
	})
	s.Run()
}

func TestStrictPastOffClamps(t *testing.T) {
	s := NewScheduler()
	var at Time = -1
	s.At(100, func() {
		s.At(10, func() { at = s.Now() })
	})
	s.Run()
	if at != 100 {
		t.Fatalf("past event fired at %v, want clamped to 100", at)
	}
}

// refEvent/refHeap reimplement the previous container/heap scheduler
// (pointer events, dead-flag tombstones) as the fuzz oracle: the pooled
// value heap must produce the identical fire order under any interleaving
// of schedules and cancellations.
type refEvent struct {
	t    Time
	seq  uint64
	id   int
	dead bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *refHeap) popLive() (int, bool) {
	for h.Len() > 0 {
		e := heap.Pop(h).(*refEvent)
		if !e.dead {
			return e.id, true
		}
	}
	return 0, false
}

// Fuzz-style interleaving: random schedules (including ties and nested
// scheduling) and random cancellations, checked against the tombstone
// reference for identical (t, seq) fire order.
func TestFireOrderMatchesHeapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		s := NewScheduler()
		ref := &refHeap{}
		var refSeq uint64
		var got, want []int

		type pending struct {
			tm Timer
			re *refEvent
		}
		var live []pending
		id := 0
		schedule := func(at Time) {
			eid := id
			id++
			tm := s.At(at, func() { got = append(got, eid) })
			// Mirror the clamp the real scheduler applies.
			rt := at
			if rt < s.Now() {
				rt = s.Now()
			}
			re := &refEvent{t: rt, seq: refSeq, id: eid}
			refSeq++
			heap.Push(ref, re)
			live = append(live, pending{tm, re})
		}
		for i := 0; i < 50; i++ {
			schedule(Time(rng.Intn(40)))
		}
		// Cancel a random subset (some twice, some after more scheduling).
		for i := 0; i < 25; i++ {
			p := live[rng.Intn(len(live))]
			s.Cancel(p.tm)
			p.re.dead = true
			if rng.Intn(4) == 0 {
				schedule(Time(rng.Intn(40)))
			}
		}
		s.Run()
		for {
			eid, ok := ref.popLive()
			if !ok {
				break
			}
			want = append(want, eid)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: fire order diverged at %d: got %v, want %v", trial, i, got, want)
			}
		}
	}
}

// The scheduler hot path must be allocation-free once slots and heap
// capacity are warm. Skipped under -short: the race detector (which CI
// runs with -short) changes allocation behavior.
func TestSchedulerSteadyStateAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is unreliable under -race (-short)")
	}
	s := NewScheduler()
	fn := func() {}
	// Warm: grow heap capacity and the slot table.
	for i := 0; i < 512; i++ {
		s.At(s.Now()+Time(i), fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.At(s.Now()+1, fn)
		s.At(s.Now()+2, fn)
		s.Cancel(s.At(s.Now()+3, fn))
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("scheduler hot path allocates: %.1f allocs per schedule/cancel/run cycle, want 0", allocs)
	}
}
