package simnet

import "fmt"

// wake carries the reason a parked process is being resumed.
type wake struct {
	kill   bool
	signal any // non-nil: deliver as a panic value (runtime-level unwinding)
}

// Killed is the panic value unwound through a simulated process when it is
// killed by fault injection or a node failure. Runtime layers (Reinit, the
// job launcher) recover it at the rank boundary.
type Killed struct{ ProcID int }

func (k Killed) Error() string { return fmt.Sprintf("simnet: process %d killed", k.ProcID) }

// ExitStatus describes how a simulated process terminated.
type ExitStatus int

const (
	// ExitOK means the process body returned normally.
	ExitOK ExitStatus = iota
	// ExitKilled means the process was destroyed by fault injection.
	ExitKilled
	// ExitPanic means the process body panicked with an application error.
	ExitPanic
)

// Proc is a simulated OS process pinned to a node. Its body runs on a
// dedicated goroutine but only while the scheduler has handed it control;
// it yields back at every virtual-time-consuming call.
//
// Every park records a generation number; scheduled wakeups capture the
// generation they intend to resume and become no-ops if the process has
// been resumed by other means in the meantime (e.g. a runtime signal
// unwound it out of a sleep). This prevents stale timers from corrupting
// the process's timeline after recovery.
type Proc struct {
	ID   int
	c    *Cluster
	node *Node

	resume  chan wake
	yielded chan struct{}

	dead     bool
	started  bool
	exited   bool
	status   ExitStatus
	panicVal any

	parked bool
	gen    uint64
	onExit []func(*Proc)
}

// StartProc creates a process on the given node and schedules its body to
// begin at the current virtual time plus delay.
func (c *Cluster) StartProc(node int, delay Time, body func(*Proc)) *Proc {
	p := &Proc{
		ID:      c.next,
		c:       c,
		node:    c.nodes[node],
		resume:  make(chan wake),
		yielded: make(chan struct{}),
	}
	c.next++
	c.procs[p.ID] = p
	go p.top(body)
	c.sched.AfterFunc(delay, procStart, p, 0)
	return p
}

// procStart is the static first-dispatch event body (see StartProc).
func procStart(a any, _ int64) {
	p := a.(*Proc)
	if p.dead || p.exited {
		return
	}
	p.started = true
	p.dispatch(wake{})
}

// top is the goroutine body: it waits for the first dispatch, runs the user
// body, and translates panics into exit statuses.
func (p *Proc) top(body func(*Proc)) {
	w := <-p.resume
	defer func() {
		r := recover()
		p.exited = true
		switch v := r.(type) {
		case nil:
			p.status = ExitOK
		case Killed:
			p.status = ExitKilled
		default:
			p.status = ExitPanic
			p.panicVal = v
		}
		for _, f := range p.onExit {
			f(p)
		}
		p.yielded <- struct{}{}
	}()
	if w.kill {
		panic(Killed{ProcID: p.ID})
	}
	body(p)
}

// dispatch hands control to the process goroutine and waits for it to yield
// again. Must only be called from the scheduler context.
func (p *Proc) dispatch(w wake) {
	p.parked = false
	p.gen++
	p.resume <- w
	<-p.yielded
}

// park yields control back to the scheduler and blocks until resumed.
func (p *Proc) park() wake {
	p.parked = true
	p.yielded <- struct{}{}
	w := <-p.resume
	if w.kill {
		panic(Killed{ProcID: p.ID})
	}
	if w.signal != nil {
		panic(w.signal)
	}
	return w
}

// Cluster returns the owning cluster.
func (p *Proc) Cluster() *Cluster { return p.c }

// Node returns the node this process runs on.
func (p *Proc) Node() *Node { return p.node }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.c.sched.Now() }

// Dead reports whether the process has been killed.
func (p *Proc) Dead() bool { return p.dead }

// Exited reports whether the process body has finished.
func (p *Proc) Exited() bool { return p.exited }

// Status returns how the process terminated (valid once Exited).
func (p *Proc) Status() ExitStatus { return p.status }

// PanicValue returns the panic payload when Status is ExitPanic.
func (p *Proc) PanicValue() any { return p.panicVal }

// OnExit registers a callback invoked (in scheduler context) when the
// process body terminates for any reason.
func (p *Proc) OnExit(f func(*Proc)) { p.onExit = append(p.onExit, f) }

// wakeAt schedules a resume at time t for the park of generation g. The
// generation rides in the event's aux word, so the single most frequent
// scheduling call in the simulator builds no closure.
func (p *Proc) wakeAt(t Time, g uint64) {
	p.c.sched.AtFunc(t, procWake, p, int64(g))
}

// procWake is the static wakeup event body (see wakeAt).
func procWake(a any, g int64) {
	p := a.(*Proc)
	if p.dead || p.exited || !p.parked || p.gen != uint64(g) {
		return
	}
	p.dispatch(wake{})
}

// Sleep advances this process's virtual time by d. It models both sleeping
// and computing (the caller is descheduled either way).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.wakeAt(p.Now()+d, p.gen)
	p.park()
}

// Compute charges d nanoseconds of virtual CPU time to the process.
func (p *Proc) Compute(d Time) { p.Sleep(d) }

// Yield lets all events at the current instant fire before continuing.
func (p *Proc) Yield() { p.Sleep(0) }

// Block parks the process indefinitely; something else must call Unblock
// (or Kill/Signal). Used by the messaging layer for condition waits.
// Spurious wakeups are possible; callers must re-check their condition.
func (p *Proc) Block() {
	p.park()
}

// Unblock schedules a resume of a Block()ed process at time t (clamped to
// now). Must be called while the process is parked; the wake is dropped if
// the process has been resumed by other means before t.
func (p *Proc) Unblock(t Time) {
	if !p.parked {
		return
	}
	p.wakeAt(t, p.gen)
}

// Signal forces the process to panic with v at time t (clamped to now).
// This models runtime-level preemption: Reinit's global reset unwinding a
// rank out of whatever it was doing, like the longjmp in the paper's
// Figure 3. The panic is delivered whether the process is sleeping,
// computing, or blocked; it is dropped if the process exits first.
func (p *Proc) Signal(t Time, v any) {
	p.c.sched.At(t, func() {
		if p.dead || p.exited || !p.started {
			return
		}
		p.dispatch(wake{signal: v})
	})
}

// Kill destroys the process at the current virtual time: a fail-stop
// process failure, as delivered by the fault injector or a node failure.
// Must be called from scheduler context (the process is parked).
func (p *Proc) Kill() {
	if p.dead || p.exited {
		return
	}
	p.dead = true
	if !p.started {
		p.exited = true
		p.status = ExitKilled
		return
	}
	p.dispatch(wake{kill: true})
}

// Die terminates the calling process immediately, from its own goroutine.
// This is the simulation analog of raise(SIGTERM) in Figure 4 of the paper.
func (p *Proc) Die() {
	p.dead = true
	panic(Killed{ProcID: p.ID})
}

// Procs returns all processes ever started, in id order.
func (c *Cluster) Procs() []*Proc {
	out := make([]*Proc, 0, len(c.procs))
	for i := 0; i < c.next; i++ {
		if p, ok := c.procs[i]; ok {
			out = append(out, p)
		}
	}
	return out
}
