// Package simnet provides a deterministic discrete-event simulation of an
// HPC cluster: a virtual clock, an event scheduler, compute nodes with
// serializing network interfaces, and cooperative simulated processes.
//
// All higher layers (the simulated MPI runtime, the FTI checkpointing
// library, the recovery frameworks, and the proxy applications) run on top
// of this package. Exactly one simulated process executes at any instant;
// control is handed between the scheduler and process goroutines over
// unbuffered channels, so the simulation is deterministic and free of data
// races by construction.
package simnet

import (
	"fmt"
	"sort"

	"match/internal/obs"
	"match/internal/trace"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Common durations, as virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders t as seconds with millisecond precision, e.g. "12.345s".
func (t Time) String() string {
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (seq breaks ties), which keeps runs reproducible.
//
// Events are stored by value in the scheduler's heap slice, so scheduling
// does not allocate in the steady state. An event carries either a plain
// closure (fn) or a static function plus its argument pair (fnA, arg, aux);
// the latter lets hot callers — process wakeups, message deliveries,
// detector ticks — schedule without building a closure per call.
type event struct {
	t    Time
	seq  uint64
	fn   func()
	fnA  func(arg any, aux int64)
	arg  any
	aux  int64
	slot int32 // index into Scheduler.slots, for cancellation
}

// slotState maps a stable slot id to the event's current heap index. The
// generation counter is bumped every time the slot is freed, so a Timer
// held across its event's firing (or cancellation) can never cancel an
// unrelated later event that reused the slot.
type slotState struct {
	index int32 // heap index; -1 while the slot is free
	gen   uint32
}

// Timer identifies a scheduled event. The zero Timer is valid and refers
// to no event (Cancel on it is a no-op). Timers are plain values: holding
// or dropping one costs nothing.
type Timer struct {
	slot int32
	gen  uint32
}

// Scheduler owns the virtual clock and the event queue. The queue is a
// value-based binary heap with a slot table for O(log n) cancellation;
// slots and heap capacity are recycled, so the schedule/fire/cancel hot
// path is allocation-free once warm.
type Scheduler struct {
	now        Time
	q          []event
	slots      []slotState
	freeSlots  []int32
	seq        uint64
	running    bool
	maxTime    Time // 0 means unlimited
	stopped    bool
	strictPast bool
	tracer     *trace.Recorder
	metrics    *obs.Registry
}

// NewScheduler returns an empty scheduler at virtual time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// SetDeadline aborts Run once virtual time exceeds d (a safety net against
// livelock in buggy protocols). Zero disables the deadline.
func (s *Scheduler) SetDeadline(d Time) { s.maxTime = d }

// SetStrictPast toggles the past-scheduling assertion. By default At
// silently clamps a past target time to now, which keeps buggy protocols
// running but reorders their events; with strict mode on, scheduling into
// the past panics with the offending times, so the bug is caught at its
// source. Tests and debugging harnesses turn this on.
func (s *Scheduler) SetStrictPast(on bool) { s.strictPast = on }

// At schedules fn to run at virtual time t (clamped to now; see
// SetStrictPast). The returned Timer cancels the event via Cancel.
func (s *Scheduler) At(t Time, fn func()) Timer {
	return s.schedule(t, event{fn: fn})
}

// After schedules fn to run d nanoseconds of virtual time from now.
func (s *Scheduler) After(d Time, fn func()) Timer {
	return s.At(s.now+d, fn)
}

// AtFunc schedules fn(arg, aux) at virtual time t. Unlike At, it takes a
// static function plus its argument, so hot paths that would otherwise
// build a closure per call (process wakeups, message deliveries) can
// schedule without allocating.
func (s *Scheduler) AtFunc(t Time, fn func(arg any, aux int64), arg any, aux int64) Timer {
	return s.schedule(t, event{fnA: fn, arg: arg, aux: aux})
}

// AfterFunc is AtFunc relative to now.
func (s *Scheduler) AfterFunc(d Time, fn func(arg any, aux int64), arg any, aux int64) Timer {
	return s.AtFunc(s.now+d, fn, arg, aux)
}

// schedule stamps the event and pushes it onto the heap.
func (s *Scheduler) schedule(t Time, e event) Timer {
	if t < s.now {
		if s.strictPast {
			panic(fmt.Sprintf("simnet: event scheduled into the past: t=%v, now=%v (%v late)", t, s.now, s.now-t))
		}
		t = s.now
	}
	slot := s.allocSlot()
	e.t, e.seq, e.slot = t, s.seq, slot
	s.seq++
	s.q = append(s.q, e)
	s.siftUp(len(s.q) - 1)
	if m := s.metrics; m != nil {
		m.Inc(obs.CEventsScheduled)
		m.SetMax(obs.GHeapHighWater, int64(len(s.q)))
	}
	return Timer{slot: slot, gen: s.slots[slot].gen}
}

// Cancel removes the event identified by tm from the queue, eagerly and in
// O(log n). It reports whether an event was removed: false means the timer
// already fired, was already cancelled, or is the zero Timer. Cancelled
// events leave the queue immediately — no tombstones accumulate, and their
// closures are released for collection at once.
func (s *Scheduler) Cancel(tm Timer) bool {
	if tm.gen == 0 || tm.slot < 0 || int(tm.slot) >= len(s.slots) {
		return false
	}
	st := &s.slots[tm.slot]
	if st.gen != tm.gen || st.index < 0 {
		return false
	}
	s.removeAt(int(st.index))
	s.metrics.Inc(obs.CEventsCancelled)
	return true
}

// allocSlot takes a slot id from the free list, growing the table only
// when every slot is live.
func (s *Scheduler) allocSlot() int32 {
	if n := len(s.freeSlots); n > 0 {
		slot := s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		s.metrics.Inc(obs.CSlotsReused)
		return slot
	}
	s.slots = append(s.slots, slotState{gen: 1, index: -1})
	s.metrics.Inc(obs.CSlotsGrown)
	return int32(len(s.slots) - 1)
}

// freeSlot retires a slot: bump the generation (invalidating outstanding
// Timers) and recycle the id.
func (s *Scheduler) freeSlot(slot int32) {
	st := &s.slots[slot]
	st.gen++
	st.index = -1
	s.freeSlots = append(s.freeSlots, slot)
}

// eventLess orders events by (time, sequence) — a strict total order, so
// the fire order is independent of heap shape and byte-identical to the
// previous container/heap implementation.
func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// siftUp restores the heap property from index i toward the root, using a
// hole instead of pairwise swaps.
func (s *Scheduler) siftUp(i int) {
	e := s.q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if eventLess(&s.q[parent], &e) {
			break
		}
		s.q[i] = s.q[parent]
		s.slots[s.q[i].slot].index = int32(i)
		i = parent
	}
	s.q[i] = e
	s.slots[e.slot].index = int32(i)
}

// siftDown restores the heap property from index i toward the leaves and
// reports whether the element moved.
func (s *Scheduler) siftDown(i int) bool {
	e := s.q[i]
	start := i
	n := len(s.q)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && eventLess(&s.q[r], &s.q[child]) {
			child = r
		}
		if eventLess(&e, &s.q[child]) {
			break
		}
		s.q[i] = s.q[child]
		s.slots[s.q[i].slot].index = int32(i)
		i = child
	}
	s.q[i] = e
	s.slots[e.slot].index = int32(i)
	return i != start
}

// popMin removes and returns the earliest event.
func (s *Scheduler) popMin() event {
	e := s.q[0]
	s.freeSlot(e.slot)
	n := len(s.q) - 1
	if n > 0 {
		s.q[0] = s.q[n]
	}
	s.q[n] = event{} // release fn/arg references
	s.q = s.q[:n]
	if n > 0 {
		s.siftDown(0)
	}
	return e
}

// removeAt deletes the event at heap index i (cancellation path).
func (s *Scheduler) removeAt(i int) {
	s.freeSlot(s.q[i].slot)
	n := len(s.q) - 1
	if i != n {
		s.q[i] = s.q[n]
		s.q[n] = event{}
		s.q = s.q[:n]
		if !s.siftDown(i) {
			s.siftUp(i)
		}
		return
	}
	s.q[n] = event{}
	s.q = s.q[:n]
}

// Stop makes Run return after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run fires events in time order until the queue drains, Stop is called, or
// the deadline passes. It returns the final virtual time.
//
// The tracing check is hoisted out of the drain loop: attach the tracer
// (Cluster.SetTracer) before Run, not during it.
func (s *Scheduler) Run() Time {
	s.running = true
	defer func() { s.running = false }()
	traceEvents := s.tracer.Wants(trace.CatEvent)
	metrics := s.metrics
	for len(s.q) > 0 && !s.stopped {
		e := s.popMin()
		if metrics != nil {
			metrics.Inc(obs.CEventsFired)
		}
		if s.maxTime > 0 && e.t > s.maxTime {
			panic(fmt.Sprintf("simnet: virtual deadline %v exceeded (event at %v); likely deadlock or livelock", s.maxTime, e.t))
		}
		if e.t > s.now {
			s.now = e.t
		}
		if traceEvents {
			s.tracer.Emit(trace.Span{Cat: trace.CatEvent, Rank: -1, Start: int64(e.t), Aux: int64(e.seq)})
		}
		if e.fnA != nil {
			e.fnA(e.arg, e.aux)
		} else {
			e.fn()
		}
	}
	return s.now
}

// Pending reports the number of events that have not fired. Cancelled
// events are removed eagerly, so they never count.
func (s *Scheduler) Pending() int { return len(s.q) }

// Leaked reports the events still pending in the queue — work Run walked
// away from when it returned via Stop or a deadline — as a count plus the
// earliest scheduled time. A clean run that drained its queue reports
// zero. The harness surfaces this as Breakdown.LeakedEvents so hung-run
// bugs stop masquerading as clean completions.
func (s *Scheduler) Leaked() (n int, earliest Time) {
	for i := range s.q {
		if n == 0 || s.q[i].t < earliest {
			earliest = s.q[i].t
		}
		n++
	}
	return n, earliest
}

// Config describes the simulated cluster hardware. The defaults approximate
// the paper's testbed: 32 dual-socket Haswell nodes with a fat-tree
// interconnect, node-local storage, and a parallel file system.
type Config struct {
	Nodes        int     // number of compute nodes
	CoresPerNode int     // informational; procs beyond this share the node
	InterLatency Time    // one-way network latency between nodes
	IntraLatency Time    // latency between procs on one node (shared memory)
	InterBWBps   float64 // inter-node NIC bandwidth, bytes per second
	IntraBWBps   float64 // intra-node copy bandwidth, bytes per second
	SendOverhead Time    // per-message CPU cost on the sender
	RecvOverhead Time    // per-message CPU cost on the receiver

	// ModelIngress additionally serializes traffic on the *receiver's* NIC.
	// The seed model charges egress only, which makes duplicate inbound
	// flows free at their destination; replication-based fault tolerance
	// (ReplicaFTI) turns this on so the duplicated message streams arriving
	// at replicated ranks pay realistic queueing delay. Off by default so
	// the checkpoint/restart designs keep the original calibrated timings.
	ModelIngress bool
}

// DefaultConfig mirrors the paper's cluster at §V-A: 32 nodes, 28 cores per
// node, EDR-class interconnect.
func DefaultConfig() Config {
	return Config{
		Nodes:        32,
		CoresPerNode: 28,
		InterLatency: 2 * Microsecond,
		IntraLatency: 500 * Nanosecond,
		InterBWBps:   10e9, // 10 GB/s
		IntraBWBps:   40e9, // 40 GB/s
		SendOverhead: 300 * Nanosecond,
		RecvOverhead: 300 * Nanosecond,
	}
}

// Node is one compute node. Its NIC serializes egress traffic: concurrent
// sends queue behind each other, which is how background protocol traffic
// (e.g. ULFM heartbeats) slows applications down in this model.
type Node struct {
	ID      int
	nicFree Time // time at which the egress NIC becomes idle
	rxFree  Time // time at which the ingress NIC becomes idle (ModelIngress)
	alive   bool
}

// Alive reports whether the node has not suffered a node failure.
func (n *Node) Alive() bool { return n.alive }

// Cluster combines the scheduler, the node set, and the process table.
type Cluster struct {
	cfg     Config
	sched   *Scheduler
	nodes   []*Node
	procs   map[int]*Proc
	next    int // next process id
	tracer  *trace.Recorder
	metrics *obs.Registry
	elog    *obs.Log
}

// NewCluster builds a cluster with cfg (zero fields replaced by defaults).
func NewCluster(cfg Config) *Cluster {
	def := DefaultConfig()
	if cfg.Nodes == 0 {
		cfg.Nodes = def.Nodes
	}
	if cfg.CoresPerNode == 0 {
		cfg.CoresPerNode = def.CoresPerNode
	}
	if cfg.InterLatency == 0 {
		cfg.InterLatency = def.InterLatency
	}
	if cfg.IntraLatency == 0 {
		cfg.IntraLatency = def.IntraLatency
	}
	if cfg.InterBWBps == 0 {
		cfg.InterBWBps = def.InterBWBps
	}
	if cfg.IntraBWBps == 0 {
		cfg.IntraBWBps = def.IntraBWBps
	}
	if cfg.SendOverhead == 0 {
		cfg.SendOverhead = def.SendOverhead
	}
	if cfg.RecvOverhead == 0 {
		cfg.RecvOverhead = def.RecvOverhead
	}
	c := &Cluster{
		cfg:   cfg,
		sched: NewScheduler(),
		procs: make(map[int]*Proc),
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &Node{ID: i, alive: true})
	}
	return c
}

// Config returns the cluster hardware description.
func (c *Cluster) Config() Config { return c.cfg }

// Scheduler exposes the event scheduler (used by runtime components that
// need timers, e.g. heartbeat detectors).
func (c *Cluster) Scheduler() *Scheduler { return c.sched }

// SetTracer attaches a trace recorder to the cluster (and its scheduler).
// Every layer running on the cluster reaches the recorder through
// Tracer(); nil — the default — disables all recording.
func (c *Cluster) SetTracer(r *trace.Recorder) {
	c.tracer = r
	c.sched.tracer = r
}

// Tracer returns the attached trace recorder; nil means tracing is off,
// and a nil *trace.Recorder is safe to emit into.
func (c *Cluster) Tracer() *trace.Recorder { return c.tracer }

// SetMetrics attaches a metrics registry to the cluster (and its
// scheduler). Every layer running on the cluster reaches the registry
// through Metrics(); nil — the default — disables all counting.
func (c *Cluster) SetMetrics(m *obs.Registry) {
	c.metrics = m
	c.sched.metrics = m
}

// Metrics returns the attached registry; nil means metrics are off, and a
// nil *obs.Registry is safe to increment.
func (c *Cluster) Metrics() *obs.Registry { return c.metrics }

// SetLog attaches a structured event log. Layers reach it through Log();
// nil — the default — disables all event emission.
func (c *Cluster) SetLog(l *obs.Log) { c.elog = l }

// Log returns the attached event log; nil means logging is off, and a nil
// *obs.Log is safe to emit into.
func (c *Cluster) Log() *obs.Log { return c.elog }

// Now returns the current virtual time.
func (c *Cluster) Now() Time { return c.sched.Now() }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// NumNodes returns the number of nodes.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Run drives the simulation to completion and returns the final time.
func (c *Cluster) Run() Time { return c.sched.Run() }

// FailNode marks a node dead and kills every live process on it. RAMFS
// contents on the node are lost by the storage layer, which consults
// Node.Alive.
func (c *Cluster) FailNode(id int) {
	n := c.nodes[id]
	if !n.alive {
		return
	}
	n.alive = false
	c.metrics.Inc(obs.CNodeFailures)
	c.elog.Event(int64(c.sched.now), "node_fail", "node", id)
	if c.tracer.Wants(trace.CatNodeFail) {
		c.tracer.Emit(trace.Span{Cat: trace.CatNodeFail, Rank: -1, Start: int64(c.sched.now), Aux: int64(id)})
	}
	// Deterministic kill order.
	var victims []*Proc
	for _, p := range c.procs {
		if p.node == n && !p.dead {
			victims = append(victims, p)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	for _, p := range victims {
		p.Kill()
	}
}

// transferCost returns the NIC departure and arrival times for a message of
// size bytes from node f to node t, issued at virtual time now. It mutates
// the sender NIC's busy horizon, which is what creates queueing delay.
func (c *Cluster) transferCost(f, t *Node, size int, now Time) (depart, arrive Time) {
	var lat Time
	var bw float64
	if f == t {
		lat, bw = c.cfg.IntraLatency, c.cfg.IntraBWBps
	} else {
		lat, bw = c.cfg.InterLatency, c.cfg.InterBWBps
	}
	xfer := Time(float64(size) / bw * 1e9)
	depart = now
	if f != t {
		if f.nicFree > depart {
			depart = f.nicFree
		}
		f.nicFree = depart + xfer
		if c.cfg.ModelIngress {
			start := depart
			if t.rxFree > start {
				start = t.rxFree
			}
			t.rxFree = start + xfer
			arrive = start + xfer + lat
			return depart, arrive
		}
	}
	arrive = depart + xfer + lat
	return depart, arrive
}

// SendArrival computes (and charges to the sender's NIC) the arrival time of
// a message of size bytes from node from to node to, sent at virtual now.
func (c *Cluster) SendArrival(from, to int, size int, now Time) Time {
	depart, arrive := c.transferCost(c.nodes[from], c.nodes[to], size, now)
	if c.tracer.Wants(trace.CatTransfer) {
		c.tracer.Emit(trace.Span{Cat: trace.CatTransfer, Rank: -1,
			Start: int64(depart), Dur: int64(arrive - depart),
			Level: int32(from), Aux: int64(size)})
	}
	return arrive
}
