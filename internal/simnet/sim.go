// Package simnet provides a deterministic discrete-event simulation of an
// HPC cluster: a virtual clock, an event scheduler, compute nodes with
// serializing network interfaces, and cooperative simulated processes.
//
// All higher layers (the simulated MPI runtime, the FTI checkpointing
// library, the recovery frameworks, and the proxy applications) run on top
// of this package. Exactly one simulated process executes at any instant;
// control is handed between the scheduler and process goroutines over
// unbuffered channels, so the simulation is deterministic and free of data
// races by construction.
package simnet

import (
	"container/heap"
	"fmt"
	"sort"

	"match/internal/trace"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Common durations, as virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders t as seconds with millisecond precision, e.g. "12.345s".
func (t Time) String() string {
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (seq breaks ties), which keeps runs reproducible.
type event struct {
	t     Time
	seq   uint64
	fire  func()
	index int
	dead  bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler owns the virtual clock and the event queue.
type Scheduler struct {
	now     Time
	q       eventHeap
	seq     uint64
	running bool
	maxTime Time // 0 means unlimited
	stopped bool
	tracer  *trace.Recorder
}

// NewScheduler returns an empty scheduler at virtual time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// SetDeadline aborts Run once virtual time exceeds d (a safety net against
// livelock in buggy protocols). Zero disables the deadline.
func (s *Scheduler) SetDeadline(d Time) { s.maxTime = d }

// At schedules fn to run at virtual time t (clamped to now). The returned
// cancel function removes the event if it has not fired.
func (s *Scheduler) At(t Time, fn func()) (cancel func()) {
	if t < s.now {
		t = s.now
	}
	e := &event{t: t, seq: s.seq, fire: fn}
	s.seq++
	heap.Push(&s.q, e)
	return func() { e.dead = true }
}

// After schedules fn to run d nanoseconds of virtual time from now.
func (s *Scheduler) After(d Time, fn func()) (cancel func()) {
	return s.At(s.now+d, fn)
}

// Stop makes Run return after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run fires events in time order until the queue drains, Stop is called, or
// the deadline passes. It returns the final virtual time.
func (s *Scheduler) Run() Time {
	s.running = true
	defer func() { s.running = false }()
	for s.q.Len() > 0 && !s.stopped {
		e := heap.Pop(&s.q).(*event)
		if e.dead {
			continue
		}
		if s.maxTime > 0 && e.t > s.maxTime {
			panic(fmt.Sprintf("simnet: virtual deadline %v exceeded (event at %v); likely deadlock or livelock", s.maxTime, e.t))
		}
		if e.t > s.now {
			s.now = e.t
		}
		if s.tracer.Wants(trace.CatEvent) {
			s.tracer.Emit(trace.Span{Cat: trace.CatEvent, Rank: -1, Start: int64(e.t), Aux: int64(e.seq)})
		}
		e.fire()
	}
	return s.now
}

// Pending reports the number of events that have not fired.
func (s *Scheduler) Pending() int {
	n := 0
	for _, e := range s.q {
		if !e.dead {
			n++
		}
	}
	return n
}

// Leaked reports the events still pending in the queue — work Run walked
// away from when it returned via Stop or a deadline — as a count plus the
// earliest scheduled time. A clean run that drained its queue reports
// zero. The harness surfaces this as Breakdown.LeakedEvents so hung-run
// bugs stop masquerading as clean completions.
func (s *Scheduler) Leaked() (n int, earliest Time) {
	for _, e := range s.q {
		if e.dead {
			continue
		}
		if n == 0 || e.t < earliest {
			earliest = e.t
		}
		n++
	}
	return n, earliest
}

// Config describes the simulated cluster hardware. The defaults approximate
// the paper's testbed: 32 dual-socket Haswell nodes with a fat-tree
// interconnect, node-local storage, and a parallel file system.
type Config struct {
	Nodes        int     // number of compute nodes
	CoresPerNode int     // informational; procs beyond this share the node
	InterLatency Time    // one-way network latency between nodes
	IntraLatency Time    // latency between procs on one node (shared memory)
	InterBWBps   float64 // inter-node NIC bandwidth, bytes per second
	IntraBWBps   float64 // intra-node copy bandwidth, bytes per second
	SendOverhead Time    // per-message CPU cost on the sender
	RecvOverhead Time    // per-message CPU cost on the receiver

	// ModelIngress additionally serializes traffic on the *receiver's* NIC.
	// The seed model charges egress only, which makes duplicate inbound
	// flows free at their destination; replication-based fault tolerance
	// (ReplicaFTI) turns this on so the duplicated message streams arriving
	// at replicated ranks pay realistic queueing delay. Off by default so
	// the checkpoint/restart designs keep the original calibrated timings.
	ModelIngress bool
}

// DefaultConfig mirrors the paper's cluster at §V-A: 32 nodes, 28 cores per
// node, EDR-class interconnect.
func DefaultConfig() Config {
	return Config{
		Nodes:        32,
		CoresPerNode: 28,
		InterLatency: 2 * Microsecond,
		IntraLatency: 500 * Nanosecond,
		InterBWBps:   10e9, // 10 GB/s
		IntraBWBps:   40e9, // 40 GB/s
		SendOverhead: 300 * Nanosecond,
		RecvOverhead: 300 * Nanosecond,
	}
}

// Node is one compute node. Its NIC serializes egress traffic: concurrent
// sends queue behind each other, which is how background protocol traffic
// (e.g. ULFM heartbeats) slows applications down in this model.
type Node struct {
	ID      int
	nicFree Time // time at which the egress NIC becomes idle
	rxFree  Time // time at which the ingress NIC becomes idle (ModelIngress)
	alive   bool
}

// Alive reports whether the node has not suffered a node failure.
func (n *Node) Alive() bool { return n.alive }

// Cluster combines the scheduler, the node set, and the process table.
type Cluster struct {
	cfg    Config
	sched  *Scheduler
	nodes  []*Node
	procs  map[int]*Proc
	next   int // next process id
	tracer *trace.Recorder
}

// NewCluster builds a cluster with cfg (zero fields replaced by defaults).
func NewCluster(cfg Config) *Cluster {
	def := DefaultConfig()
	if cfg.Nodes == 0 {
		cfg.Nodes = def.Nodes
	}
	if cfg.CoresPerNode == 0 {
		cfg.CoresPerNode = def.CoresPerNode
	}
	if cfg.InterLatency == 0 {
		cfg.InterLatency = def.InterLatency
	}
	if cfg.IntraLatency == 0 {
		cfg.IntraLatency = def.IntraLatency
	}
	if cfg.InterBWBps == 0 {
		cfg.InterBWBps = def.InterBWBps
	}
	if cfg.IntraBWBps == 0 {
		cfg.IntraBWBps = def.IntraBWBps
	}
	if cfg.SendOverhead == 0 {
		cfg.SendOverhead = def.SendOverhead
	}
	if cfg.RecvOverhead == 0 {
		cfg.RecvOverhead = def.RecvOverhead
	}
	c := &Cluster{
		cfg:   cfg,
		sched: NewScheduler(),
		procs: make(map[int]*Proc),
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &Node{ID: i, alive: true})
	}
	return c
}

// Config returns the cluster hardware description.
func (c *Cluster) Config() Config { return c.cfg }

// Scheduler exposes the event scheduler (used by runtime components that
// need timers, e.g. heartbeat detectors).
func (c *Cluster) Scheduler() *Scheduler { return c.sched }

// SetTracer attaches a trace recorder to the cluster (and its scheduler).
// Every layer running on the cluster reaches the recorder through
// Tracer(); nil — the default — disables all recording.
func (c *Cluster) SetTracer(r *trace.Recorder) {
	c.tracer = r
	c.sched.tracer = r
}

// Tracer returns the attached trace recorder; nil means tracing is off,
// and a nil *trace.Recorder is safe to emit into.
func (c *Cluster) Tracer() *trace.Recorder { return c.tracer }

// Now returns the current virtual time.
func (c *Cluster) Now() Time { return c.sched.Now() }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// NumNodes returns the number of nodes.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Run drives the simulation to completion and returns the final time.
func (c *Cluster) Run() Time { return c.sched.Run() }

// FailNode marks a node dead and kills every live process on it. RAMFS
// contents on the node are lost by the storage layer, which consults
// Node.Alive.
func (c *Cluster) FailNode(id int) {
	n := c.nodes[id]
	if !n.alive {
		return
	}
	n.alive = false
	if c.tracer.Wants(trace.CatNodeFail) {
		c.tracer.Emit(trace.Span{Cat: trace.CatNodeFail, Rank: -1, Start: int64(c.sched.now), Aux: int64(id)})
	}
	// Deterministic kill order.
	var victims []*Proc
	for _, p := range c.procs {
		if p.node == n && !p.dead {
			victims = append(victims, p)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	for _, p := range victims {
		p.Kill()
	}
}

// transferCost returns the NIC departure and arrival times for a message of
// size bytes from node f to node t, issued at virtual time now. It mutates
// the sender NIC's busy horizon, which is what creates queueing delay.
func (c *Cluster) transferCost(f, t *Node, size int, now Time) (depart, arrive Time) {
	var lat Time
	var bw float64
	if f == t {
		lat, bw = c.cfg.IntraLatency, c.cfg.IntraBWBps
	} else {
		lat, bw = c.cfg.InterLatency, c.cfg.InterBWBps
	}
	xfer := Time(float64(size) / bw * 1e9)
	depart = now
	if f != t {
		if f.nicFree > depart {
			depart = f.nicFree
		}
		f.nicFree = depart + xfer
		if c.cfg.ModelIngress {
			start := depart
			if t.rxFree > start {
				start = t.rxFree
			}
			t.rxFree = start + xfer
			arrive = start + xfer + lat
			return depart, arrive
		}
	}
	arrive = depart + xfer + lat
	return depart, arrive
}

// SendArrival computes (and charges to the sender's NIC) the arrival time of
// a message of size bytes from node from to node to, sent at virtual now.
func (c *Cluster) SendArrival(from, to int, size int, now Time) Time {
	depart, arrive := c.transferCost(c.nodes[from], c.nodes[to], size, now)
	if c.tracer.Wants(trace.CatTransfer) {
		c.tracer.Emit(trace.Span{Cat: trace.CatTransfer, Rank: -1,
			Start: int64(depart), Dur: int64(arrive - depart),
			Level: int32(from), Aux: int64(size)})
	}
	return arrive
}
