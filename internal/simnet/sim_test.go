package simnet

import (
	"testing"
	"testing/quick"
)

func TestSchedulerOrdersEvents(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	end := s.Run()
	if end != 30 {
		t.Fatalf("end time = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSchedulerTieBreakFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(10, func() { fired = true })
	if !s.Cancel(tm) {
		t.Fatal("Cancel reported no event removed")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var hits []Time
	s.At(10, func() {
		hits = append(hits, s.Now())
		s.After(5, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v, want [10 15]", hits)
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	s := NewScheduler()
	var at Time = -1
	s.At(100, func() {
		s.At(10, func() { at = s.Now() }) // in the past; must clamp to now
	})
	s.Run()
	if at != 100 {
		t.Fatalf("past event fired at %v, want clamped to 100", at)
	}
}

func TestSchedulerDeadline(t *testing.T) {
	s := NewScheduler()
	s.SetDeadline(50)
	s.At(100, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadline panic")
		}
	}()
	s.Run()
}

func TestTimeString(t *testing.T) {
	if got := (1500 * Millisecond).String(); got != "1.500s" {
		t.Fatalf("String() = %q", got)
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds conversion wrong")
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	var times []Time
	c.StartProc(0, 0, func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(100)
		times = append(times, p.Now())
		p.Compute(50)
		times = append(times, p.Now())
	})
	c.Run()
	if len(times) != 3 || times[0] != 0 || times[1] != 100 || times[2] != 150 {
		t.Fatalf("times = %v", times)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []int {
		c := NewCluster(Config{Nodes: 2})
		var order []int
		for i := 0; i < 4; i++ {
			i := i
			c.StartProc(i%2, 0, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Time(10 * (i + 1)))
					order = append(order, i)
				}
			})
		}
		c.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 12 {
		t.Fatalf("expected 12 steps, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleaving: %v vs %v", a, b)
		}
	}
}

func TestProcKillWhileSleeping(t *testing.T) {
	c := NewCluster(Config{Nodes: 1})
	reached := false
	p := c.StartProc(0, 0, func(p *Proc) {
		p.Sleep(1000)
		reached = true
	})
	c.Scheduler().At(500, func() { p.Kill() })
	c.Run()
	if reached {
		t.Fatal("killed process kept running")
	}
	if !p.Exited() || p.Status() != ExitKilled {
		t.Fatalf("status = %v, want ExitKilled", p.Status())
	}
}

func TestProcKillBeforeStart(t *testing.T) {
	c := NewCluster(Config{Nodes: 1})
	ran := false
	p := c.StartProc(0, 100, func(p *Proc) { ran = true })
	c.Scheduler().At(10, func() { p.Kill() })
	c.Run()
	if ran {
		t.Fatal("process ran after being killed before start")
	}
	if p.Status() != ExitKilled {
		t.Fatalf("status = %v, want ExitKilled", p.Status())
	}
}

func TestProcDieUnwinds(t *testing.T) {
	c := NewCluster(Config{Nodes: 1})
	after := false
	p := c.StartProc(0, 0, func(p *Proc) {
		p.Sleep(10)
		p.Die()
		after = true
	})
	c.Run()
	if after {
		t.Fatal("Die did not unwind")
	}
	if p.Status() != ExitKilled {
		t.Fatalf("status = %v, want ExitKilled", p.Status())
	}
}

// A runtime signal must unwind the process out of a sleep, and the stale
// sleep timer must NOT later resume the process early from a new park.
func TestSignalCancelsStaleTimer(t *testing.T) {
	c := NewCluster(Config{Nodes: 1})
	type reset struct{}
	var resumedAt Time
	p := c.StartProc(0, 0, func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(reset); !ok {
					panic(r)
				}
				// Recovered: park again until t=300. The stale timer from
				// the interrupted sleep (t=100) must not wake us.
				p.Sleep(300 - p.Now())
				resumedAt = p.Now()
			}
		}()
		p.Sleep(100) // interrupted at t=50
		t.Error("sleep returned normally despite signal")
	})
	p.Signal(50, reset{})
	c.Run()
	if resumedAt != 300 {
		t.Fatalf("resumed at %v, want 300 (stale timer fired?)", resumedAt)
	}
}

func TestSignalDroppedAfterExit(t *testing.T) {
	c := NewCluster(Config{Nodes: 1})
	p := c.StartProc(0, 0, func(p *Proc) { p.Sleep(10) })
	p.Signal(100, "late")
	c.Run()
	if p.Status() != ExitOK {
		t.Fatalf("status = %v, want ExitOK", p.Status())
	}
}

func TestBlockUnblock(t *testing.T) {
	c := NewCluster(Config{Nodes: 1})
	var wokeAt Time
	p := c.StartProc(0, 0, func(p *Proc) {
		p.Block()
		wokeAt = p.Now()
	})
	c.Scheduler().At(70, func() { p.Unblock(90) })
	c.Run()
	if wokeAt != 90 {
		t.Fatalf("woke at %v, want 90", wokeAt)
	}
}

func TestOnExitRuns(t *testing.T) {
	c := NewCluster(Config{Nodes: 1})
	exits := 0
	p := c.StartProc(0, 0, func(p *Proc) { p.Sleep(5) })
	p.OnExit(func(*Proc) { exits++ })
	q := c.StartProc(0, 0, func(p *Proc) { p.Sleep(50) })
	q.OnExit(func(*Proc) { exits++ })
	c.Scheduler().At(20, func() { q.Kill() })
	c.Run()
	if exits != 2 {
		t.Fatalf("exits = %d, want 2 (normal and killed)", exits)
	}
}

func TestNodeFailureKillsResidents(t *testing.T) {
	c := NewCluster(Config{Nodes: 2})
	var survived []int
	for i := 0; i < 4; i++ {
		i := i
		c.StartProc(i%2, 0, func(p *Proc) {
			p.Sleep(1000)
			survived = append(survived, i)
		})
	}
	c.Scheduler().At(100, func() { c.FailNode(0) })
	c.Run()
	if c.Node(0).Alive() {
		t.Fatal("node 0 still alive")
	}
	if len(survived) != 2 {
		t.Fatalf("survivors = %v, want the two procs on node 1", survived)
	}
	for _, i := range survived {
		if i%2 != 1 {
			t.Fatalf("proc %d on failed node survived", i)
		}
	}
}

func TestNICSerializesEgress(t *testing.T) {
	c := NewCluster(Config{Nodes: 2, InterLatency: 10, InterBWBps: 1e9}) // 1 byte/ns
	// Two back-to-back 1000-byte messages from node 0: the second must queue
	// behind the first on the NIC.
	a1 := c.SendArrival(0, 1, 1000, 0)
	a2 := c.SendArrival(0, 1, 1000, 0)
	if a1 != 1010 {
		t.Fatalf("first arrival = %v, want 1010", a1)
	}
	if a2 != 2010 {
		t.Fatalf("second arrival = %v, want 2010 (NIC queueing)", a2)
	}
}

func TestIntraNodeBypassesNIC(t *testing.T) {
	c := NewCluster(Config{Nodes: 1, IntraLatency: 5, IntraBWBps: 1e9})
	a1 := c.SendArrival(0, 0, 1000, 0)
	a2 := c.SendArrival(0, 0, 1000, 0)
	if a1 != 1005 || a2 != 1005 {
		t.Fatalf("intra-node arrivals = %v, %v; want both 1005", a1, a2)
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	c := NewCluster(Config{})
	def := DefaultConfig()
	if c.Config().Nodes != def.Nodes || c.Config().InterBWBps != def.InterBWBps {
		t.Fatalf("defaults not applied: %+v", c.Config())
	}
	if c.NumNodes() != def.Nodes {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
}

// Property: arrival time is monotonic in issue time and size, and never
// before issue + latency.
func TestSendArrivalProperties(t *testing.T) {
	f := func(sz uint16, at uint32) bool {
		c := NewCluster(Config{Nodes: 2})
		now := Time(at)
		arr := c.SendArrival(0, 1, int(sz), now)
		return arr >= now+c.Config().InterLatency
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: virtual clock never goes backwards across arbitrary event sets.
func TestClockMonotonic(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler()
		last := Time(-1)
		ok := true
		for _, off := range offsets {
			s.At(Time(off), func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Stop leaves later events in the queue without firing them — the silent
// drop the Leaked diagnostic exists to surface. Cancelled events are dead
// bookkeeping, not leaks.
func TestSchedulerLeakedAfterStop(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(10, func() {
		fired++
		s.Stop()
	})
	s.At(30, func() { fired++ })
	s.Cancel(s.At(20, func() { fired++ }))
	s.At(40, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Stop should halt the loop)", fired)
	}
	n, earliest := s.Leaked()
	if n != 2 || earliest != 30 {
		t.Fatalf("Leaked() = (%d, %v), want (2, 30): cancelled events must not count", n, earliest)
	}
}

// A drained run leaks nothing.
func TestSchedulerLeakedCleanRun(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.Run()
	if n, _ := s.Leaked(); n != 0 {
		t.Fatalf("Leaked() = %d after a drained run, want 0", n)
	}
}
