package simnet

import "testing"

// BenchmarkSchedulerAtFire measures the host cost of the scheduler's hot
// path: scheduling an event and draining it. This is the per-event floor
// under every simulated message, sleep, and timer; run with -benchmem to
// see the allocation profile (the steady state must be allocation-free).
func BenchmarkSchedulerAtFire(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+Time(i%64+1), fn)
		if i%64 == 63 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkSchedulerAtCancel measures schedule-then-cancel, the timer
// pattern of heartbeats and wakeups that are usually superseded before
// they fire. Cancelled events must leave the queue immediately (eager
// removal), so a long campaign of cancellations keeps the queue empty.
func BenchmarkSchedulerAtCancel(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cancel(s.At(s.Now()+Time(i%64+1), fn))
	}
	s.Run()
}

// BenchmarkProcSleep measures one park/wake round trip through the
// scheduler: the substrate under Compute, the single most frequent call
// the proxy applications make.
func BenchmarkProcSleep(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Nodes: 1})
		c.StartProc(0, 0, func(p *Proc) {
			for k := 0; k < 1000; k++ {
				p.Sleep(10)
			}
		})
		c.Run()
	}
}
