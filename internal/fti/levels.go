package fti

import (
	"fmt"

	"match/internal/enc"
	"match/internal/mpi"
	"match/internal/rs"
	"match/internal/storage"
)

// ---- L1: node-local RAMFS ----

func (f *FTI) writeL1(id int64, payload []byte) error {
	return f.st.Write(f.r.Sim(), storage.RAMFS, f.node, f.ckptPath(id), payload)
}

// ---- L2: L1 plus a copy on the partner node ----

func (f *FTI) writeL2(id int64, payload []byte) error {
	if err := f.writeL1(id, payload); err != nil {
		return err
	}
	return f.st.WriteRemote(f.r.Sim(), storage.RAMFS, f.node, f.partnerNode(),
		"p/"+f.partnerPath(id), payload)
}

func (f *FTI) readL2(id int64) ([]byte, error) {
	if b, err := f.st.Read(f.r.Sim(), storage.RAMFS, f.node, f.ckptPath(id)); err == nil {
		return b, nil
	}
	return f.st.ReadRemote(f.r.Sim(), storage.RAMFS, f.partnerNode(), f.node,
		"p/"+f.partnerPath(id))
}

// ---- L3: Reed–Solomon erasure coding across a group of ranks ----
//
// Ranks are partitioned into contiguous groups of GroupSize. Each member
// stores its own checkpoint (a data shard) plus one parity shard of the
// group's (k=G, m=G) code. Any G of the 2G shards reconstruct every
// member's data, so the group survives the loss of half its members' nodes
// — the property the paper quotes for FTI L3.

// l3Group returns the group communicator and this rank's index within it.
func (f *FTI) l3Group() (*mpi.Comm, int) {
	g := f.cfg.GroupSize
	lo := f.rank - f.rank%g
	hi := lo + g
	if hi > f.comm.Size() {
		hi = f.comm.Size()
	}
	members := f.comm.Members()[lo:hi]
	key := fmt.Sprintf("fti-l3/%s/%d/%d-%d", f.cfg.ExecID, f.comm.Ctx(), lo, hi)
	return f.r.Job().SubComm(key, members), f.rank - lo
}

func (f *FTI) writeL3(id int64, payload []byte) error {
	if err := f.writeL1(id, payload); err != nil {
		return err
	}
	group, me := f.l3Group()
	g := group.Size()
	if g == 1 {
		// Degenerate group: parity is a plain copy.
		return f.st.Write(f.r.Sim(), storage.RAMFS, f.node, f.parityPath(id), payload)
	}
	// Exchange checkpoints within the group (the FTI encoding ring sends
	// equivalent volume), then each member computes its own parity shard.
	all, err := mpi.Allgatherv(f.r, group, payload)
	if err != nil {
		return fmt.Errorf("fti: L3 exchange: %w", err)
	}
	size := 0
	for _, b := range all {
		if len(b) > size {
			size = len(b)
		}
	}
	data := make([][]byte, g)
	for i, b := range all {
		data[i] = rs.Pad(b, size)
	}
	code, err := rs.New(g, g)
	if err != nil {
		return err
	}
	parity, err := code.Encode(data)
	if err != nil {
		return err
	}
	// Record the true payload lengths so reconstruction can un-pad.
	meta := enc.AppendUint64(nil, uint64(size))
	for _, b := range all {
		meta = enc.AppendUint64(meta, uint64(len(b)))
	}
	blob := enc.AppendBytes(meta, parity[me])
	return f.st.Write(f.r.Sim(), storage.RAMFS, f.node, f.parityPath(id), blob)
}

// readL3 is collective over the erasure group: every member must call it
// (which Recover guarantees, since the restart status is agreed
// collectively). If nobody lost data it degenerates to a local read plus
// one tiny allreduce; otherwise the whole group exchanges its surviving
// shards and the losers reconstruct.
func (f *FTI) readL3(id int64) ([]byte, error) {
	group, me := f.l3Group()
	g := group.Size()
	myData, lerr := f.st.Read(f.r.Sim(), storage.RAMFS, f.node, f.ckptPath(id))
	missing := int64(0)
	if lerr != nil {
		missing = 1
	}
	anyMissing, err := mpi.AllreduceI64Scalar(f.r, group, missing, mpi.OpMax)
	if err != nil {
		return nil, fmt.Errorf("fti: L3 status agreement: %w", err)
	}
	if anyMissing == 0 {
		return myData, nil
	}
	// Collect whatever shards the group still has: gather data and parity
	// separately; a missing file contributes an empty payload.
	myParity, _ := f.st.Read(f.r.Sim(), storage.RAMFS, f.node, f.parityPath(id))
	datas, err := mpi.Allgatherv(f.r, group, myData)
	if err != nil {
		return nil, err
	}
	parities, err := mpi.Allgatherv(f.r, group, myParity)
	if err != nil {
		return nil, err
	}
	// Decode the shard-length metadata from any surviving parity blob.
	var size int
	lens := make([]int, g)
	found := false
	shards := make([][]byte, 2*g)
	for i := 0; i < g; i++ {
		if len(datas[i]) > 0 {
			shards[i] = datas[i]
		}
		if len(parities[i]) > 0 {
			meta := parities[i]
			size = int(enc.Uint64(meta))
			rest := meta[8:]
			for j := 0; j < g; j++ {
				lens[j] = int(enc.Uint64(rest))
				rest = rest[8:]
			}
			var pshard []byte
			pshard, _ = enc.NextBytes(rest)
			shards[g+i] = pshard
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("fti: L3 group lost all parity shards")
	}
	for i := 0; i < g; i++ {
		if shards[i] != nil {
			shards[i] = rs.Pad(shards[i], size)
		}
	}
	if lerr == nil {
		// Our own shard survived; we only participated in the exchange.
		return myData, nil
	}
	code, err := rs.New(g, g)
	if err != nil {
		return nil, err
	}
	if err := code.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("fti: L3 reconstruct: %w", err)
	}
	payload := shards[me][:lens[me]]
	// Repopulate our local L1 copy so subsequent recoveries are cheap.
	if err := f.writeL1(id, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ---- L4: parallel file system with differential checkpointing ----

func (f *FTI) writeL4(id int64, payload []byte) error {
	sp := f.r.Sim()
	hashes := hashBlocks(payload, f.cfg.BlockSize)
	var prev []uint64
	if b, err := f.st.Read(sp, storage.PFS, f.node, f.hashPath()); err == nil {
		prev = make([]uint64, len(b)/8)
		for i := range prev {
			prev[i] = enc.Uint64(b[8*i:])
		}
	}
	// Count the blocks that actually changed; only they cross the wire.
	changed := 0
	for i := range hashes {
		if i >= len(prev) || prev[i] != hashes[i] {
			changed++
		}
	}
	dirtyBytes := changed * f.cfg.BlockSize
	if dirtyBytes > len(payload) {
		dirtyBytes = len(payload)
	}
	// Store the full file (simulation keeps state simple) but charge only
	// the differential traffic, which is what the PFS sees.
	if err := f.writeDiff(f.ckptPath(id), payload, dirtyBytes); err != nil {
		return err
	}
	hb := make([]byte, 0, 8*len(hashes))
	for _, h := range hashes {
		hb = enc.AppendUint64(hb, h)
	}
	return f.st.Write(sp, storage.PFS, f.node, f.hashPath(), hb)
}

// writeDiff stores payload at path charging only dirtyBytes of PFS traffic.
func (f *FTI) writeDiff(path string, payload []byte, dirtyBytes int) error {
	sp := f.r.Sim()
	if dirtyBytes >= len(payload) {
		return f.st.Write(sp, storage.PFS, f.node, path, payload)
	}
	// Charge the dirty traffic, then install the full content without
	// further charge.
	if err := f.st.Write(sp, storage.PFS, f.node, path, payload[:dirtyBytes]); err != nil {
		return err
	}
	return f.st.WriteFree(storage.PFS, f.node, path, payload)
}
