package fti

import (
	"match/internal/enc"
)

// F64s protects a float64 slice through a pointer, so Restore can resize it
// (checkpointed slices may have rank-dependent, run-dependent lengths).
type F64s struct{ P *[]float64 }

// Snapshot implements Protected.
func (v F64s) Snapshot() []byte { return enc.Float64sToBytes(*v.P) }

// Restore implements Protected.
func (v F64s) Restore(b []byte) {
	vals := enc.BytesToFloat64s(b)
	*v.P = vals
}

// I64s protects an int64 slice through a pointer.
type I64s struct{ P *[]int64 }

// Snapshot implements Protected.
func (v I64s) Snapshot() []byte { return enc.Int64sToBytes(*v.P) }

// Restore implements Protected.
func (v I64s) Restore(b []byte) { *v.P = enc.BytesToInt64s(b) }

// Ints protects an int slice through a pointer.
type Ints struct{ P *[]int }

// Snapshot implements Protected.
func (v Ints) Snapshot() []byte {
	out := make([]byte, 0, 8*len(*v.P))
	for _, x := range *v.P {
		out = enc.AppendInt64(out, int64(x))
	}
	return out
}

// Restore implements Protected.
func (v Ints) Restore(b []byte) {
	vals := make([]int, len(b)/8)
	for i := range vals {
		vals[i] = int(enc.Int64(b[8*i:]))
	}
	*v.P = vals
}

// Int protects a single int (e.g. the main-loop iteration counter, which
// must be checkpointed so a restart resumes at the right iteration).
type Int struct{ P *int }

// Snapshot implements Protected.
func (v Int) Snapshot() []byte { return enc.AppendInt64(nil, int64(*v.P)) }

// Restore implements Protected.
func (v Int) Restore(b []byte) { *v.P = int(enc.Int64(b)) }

// I64 protects a single int64.
type I64 struct{ P *int64 }

// Snapshot implements Protected.
func (v I64) Snapshot() []byte { return enc.AppendInt64(nil, *v.P) }

// Restore implements Protected.
func (v I64) Restore(b []byte) { *v.P = enc.Int64(b) }

// F64 protects a single float64.
type F64 struct{ P *float64 }

// Snapshot implements Protected.
func (v F64) Snapshot() []byte { return enc.AppendFloat64(nil, *v.P) }

// Restore implements Protected.
func (v F64) Restore(b []byte) { *v.P = enc.Float64(b) }

// Bytes protects a raw byte slice through a pointer.
type Bytes struct{ P *[]byte }

// Snapshot implements Protected.
func (v Bytes) Snapshot() []byte { return append([]byte(nil), *v.P...) }

// Restore implements Protected.
func (v Bytes) Restore(b []byte) { *v.P = append([]byte(nil), b...) }
