package fti

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"match/internal/enc"
	"match/internal/mpi"
	"match/internal/simnet"
	"match/internal/storage"
)

// harness runs an n-rank job where each rank executes body with a ready
// storage system.
func harness(t *testing.T, n int, body func(r *mpi.Rank, st *storage.System)) {
	t.Helper()
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	st := storage.New(c, storage.Config{})
	j := mpi.Launch(c, n, 0, func(r *mpi.Rank) { body(r, st) })
	c.Run()
	for i, p := range j.World().Members() {
		if !p.Failed() && p.GID() >= 0 {
			_ = i
		}
	}
}

func TestProtectHelpersRoundTrip(t *testing.T) {
	fs := []float64{1.5, -2.25, 3e30}
	is := []int64{-1, 2, 1 << 60}
	ints := []int{4, -5}
	iv := 42
	fv := 2.75
	bs := []byte{9, 8, 7}

	objs := []Protected{
		F64s{&fs}, I64s{&is}, Ints{&ints}, Int{&iv}, F64{&fv}, Bytes{&bs},
	}
	snaps := make([][]byte, len(objs))
	for i, o := range objs {
		snaps[i] = o.Snapshot()
	}
	fs[0], is[0], ints[0], iv, fv, bs[0] = 0, 0, 0, 0, 0, 0
	for i, o := range objs {
		o.Restore(snaps[i])
	}
	if fs[0] != 1.5 || is[0] != -1 || ints[0] != 4 || iv != 42 || fv != 2.75 || bs[0] != 9 {
		t.Fatalf("restore mismatch: %v %v %v %v %v %v", fs, is, ints, iv, fv, bs)
	}
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	for _, level := range []Level{L1, L2, L3, L4} {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			results := make([][]float64, 4)
			harness(t, 4, func(r *mpi.Rank, st *storage.System) {
				w := r.Job().World()
				me := r.Rank(w)
				cfg := Config{Level: level, ExecID: "rt-" + level.String(), GroupSize: 2}
				f, err := Init(cfg, r, w, st)
				if err != nil {
					t.Errorf("init: %v", err)
					return
				}
				data := []float64{float64(me), float64(me) * 10}
				iter := 7
				f.Protect(0, F64s{&data})
				f.Protect(1, Int{&iter})
				if f.Status() != StatusFresh {
					t.Errorf("fresh run has status %v", f.Status())
				}
				if err := f.Checkpoint(7); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
				// Clobber state, then recover.
				data = nil
				iter = -1
				f2, err := Init(cfg, r, w, st)
				if err != nil {
					t.Errorf("re-init: %v", err)
					return
				}
				f2.Protect(0, F64s{&data})
				f2.Protect(1, Int{&iter})
				if f2.Status() != StatusRestart {
					t.Errorf("status after ckpt = %v, want restart", f2.Status())
				}
				if err := f2.Recover(); err != nil {
					t.Errorf("recover: %v", err)
					return
				}
				if iter != 7 {
					t.Errorf("iter = %d, want 7", iter)
				}
				results[me] = data
			})
			for me, d := range results {
				if len(d) != 2 || d[0] != float64(me) || d[1] != float64(me)*10 {
					t.Fatalf("rank %d recovered %v", me, d)
				}
			}
		})
	}
}

func TestRecoverWithoutCheckpointFails(t *testing.T) {
	harness(t, 2, func(r *mpi.Rank, st *storage.System) {
		w := r.Job().World()
		f, err := Init(Config{ExecID: "none"}, r, w, st)
		if err != nil {
			t.Errorf("init: %v", err)
			return
		}
		if err := f.Recover(); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("recover = %v, want ErrNoCheckpoint", err)
		}
	})
}

func TestOldCheckpointGarbageCollected(t *testing.T) {
	harness(t, 2, func(r *mpi.Rank, st *storage.System) {
		w := r.Job().World()
		f, _ := Init(Config{ExecID: "gc"}, r, w, st)
		x := 1
		f.Protect(0, Int{&x})
		f.Checkpoint(10)
		p10 := f.ckptPath(10)
		f.Checkpoint(20)
		if st.Exists(storage.RAMFS, r.Process().NodeID(), p10) {
			t.Error("checkpoint 10 not garbage-collected")
		}
		if !st.Exists(storage.RAMFS, r.Process().NodeID(), f.ckptPath(20)) {
			t.Error("checkpoint 20 missing")
		}
		if f.LatestCheckpoint() != 20 {
			t.Errorf("latest = %d", f.LatestCheckpoint())
		}
	})
}

// L1 checkpoints must survive a process failure (files live on the node),
// which is exactly what the paper's process-failure experiments rely on.
func TestL1SurvivesProcessButNotNodeFailure(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	st := storage.New(c, storage.Config{})
	var ckptNode int
	j := mpi.Launch(c, 2, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, _ := Init(Config{ExecID: "surv"}, r, w, st)
		x := r.Rank(w)
		f.Protect(0, Int{&x})
		f.Checkpoint(1)
		if r.Rank(w) == 0 {
			ckptNode = r.Process().NodeID()
		}
	})
	c.Run()
	_ = j
	path := "fti/surv/r00000/ckpt1"
	if !st.Exists(storage.RAMFS, ckptNode, path) {
		t.Fatal("checkpoint missing after process exit")
	}
	c.FailNode(ckptNode)
	if st.Exists(storage.RAMFS, ckptNode, path) {
		t.Fatal("RAMFS checkpoint readable on a dead node")
	}
}

// L2 recovery must work when the original node is down, via the partner.
func TestL2RecoversFromPartnerAfterNodeFailure(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	st := storage.New(c, storage.Config{})
	// Phase 1: write checkpoints.
	j1 := mpi.Launch(c, 4, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, _ := Init(Config{Level: L2, ExecID: "l2nf"}, r, w, st)
		x := 100 + r.Rank(w)
		f.Protect(0, Int{&x})
		if err := f.Checkpoint(5); err != nil {
			t.Errorf("ckpt: %v", err)
		}
	})
	c.Run()
	_ = j1
	// Node 0 dies (hosting rank 0). Relaunch the job with rank 0 relocated
	// to node 1: recovery must find rank 0's state via the partner copy.
	c.FailNode(0)
	recovered := make([]int, 4)
	j2 := mpi.LaunchPlaced(c, []int{1, 1, 2, 3}, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		f, err := Init(Config{Level: L2, ExecID: "l2nf"}, r, w, st)
		if err != nil {
			t.Errorf("rank %d re-init: %v", me, err)
			return
		}
		if f.Status() != StatusRestart {
			t.Errorf("rank %d status %v, want restart", me, f.Status())
			return
		}
		x := -1
		f.Protect(0, Int{&x})
		if err := f.Recover(); err != nil {
			t.Errorf("rank %d recover: %v", me, err)
			return
		}
		recovered[me] = x
	})
	_ = j2
	c.Run()
	for me, x := range recovered {
		if x != 100+me {
			t.Fatalf("rank %d recovered %d, want %d", me, x, 100+me)
		}
	}
}

// L3: erase the local checkpoints of half of each group; Reed-Solomon
// reconstruction must restore them through the group exchange.
func TestL3ReconstructsLostShard(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	st := storage.New(c, storage.Config{})
	var paths []string
	var nodes []int
	phase := 0
	body := func(r *mpi.Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		cfg := Config{Level: L3, ExecID: "l3", GroupSize: 4}
		f, err := Init(cfg, r, w, st)
		if err != nil {
			t.Errorf("init: %v", err)
			return
		}
		data := []float64{float64(me) * 1.5, 99}
		f.Protect(0, F64s{&data})
		if phase == 0 {
			if err := f.Checkpoint(3); err != nil {
				t.Errorf("ckpt: %v", err)
			}
			if me < 2 { // record what to erase: ranks 0 and 1's local copies
				paths = append(paths, f.ckptPath(3))
				nodes = append(nodes, r.Process().NodeID())
			}
			return
		}
		// phase 1: recover
		data = nil
		if f.Status() != StatusRestart {
			t.Errorf("rank %d status %v", me, f.Status())
			return
		}
		if err := f.Recover(); err != nil {
			t.Errorf("rank %d recover: %v", me, err)
			return
		}
		if len(data) != 2 || data[0] != float64(me)*1.5 {
			t.Errorf("rank %d recovered %v", me, data)
		}
	}
	j := mpi.Launch(c, 4, 0, body)
	c.Run()
	_ = j
	// Erase two of the four data shards (half the group).
	for i, p := range paths {
		st.Delete(storage.RAMFS, nodes[i], p)
	}
	phase = 1
	j2 := mpi.Launch(c, 4, 0, body)
	c.Run()
	_ = j2
}

// L4 differential checkpointing: an unchanged payload must cost far less
// PFS time than the first full write. Uses a slow-PFS, fast-everything-else
// configuration so bandwidth (not per-op latency or serialization)
// dominates, making the differential saving observable.
func TestL4DifferentialCheaper(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	st := storage.New(c, storage.Config{PFSBWBps: 1e9, PFSLat: simnet.Microsecond})
	j := mpi.Launch(c, 1, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		cfg := Config{Level: L4, ExecID: "l4diff", SerializeBWBps: 1e15,
			CkptOverhead: simnet.Nanosecond}
		f, _ := Init(cfg, r, w, st)
		data := make([]float64, 1<<20) // 8 MiB -> 8 ms at 1 GB/s
		for i := range data {
			data[i] = float64(i)
		}
		f.Protect(0, F64s{&data})
		t0 := r.Now()
		f.Checkpoint(1)
		full := r.Now() - t0
		t1 := r.Now()
		f.Checkpoint(2) // nothing changed
		diff := r.Now() - t1
		if diff*4 > full {
			t.Errorf("differential ckpt %v not ≪ full ckpt %v", diff, full)
		}
		// Change one block: cost should sit between.
		data[0] = -1
		t2 := r.Now()
		f.Checkpoint(3)
		one := r.Now() - t2
		if one <= diff || one >= full {
			t.Errorf("one-block ckpt %v, want between %v and %v", one, diff, full)
		}
		// And recovery restores the latest content.
		data = nil
		f2, _ := Init(cfg, r, w, st)
		f2.Protect(0, F64s{&data})
		if err := f2.Recover(); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		if data[0] != -1 || data[1] != 1 {
			t.Errorf("recovered data wrong: %v...", data[:2])
		}
	})
	_ = j
	c.Run()
}

func TestCheckpointTimeGrowsWithData(t *testing.T) {
	harness(t, 2, func(r *mpi.Rank, st *storage.System) {
		w := r.Job().World()
		f, _ := Init(Config{ExecID: "scale"}, r, w, st)
		small := make([]float64, 1024)
		f.Protect(0, F64s{&small})
		t0 := r.Now()
		f.Checkpoint(1)
		smallT := r.Now() - t0
		big := make([]float64, 1024*256)
		f.Protect(0, F64s{&big})
		t1 := r.Now()
		f.Checkpoint(2)
		bigT := r.Now() - t1
		if bigT <= smallT {
			t.Errorf("big ckpt %v not slower than small %v", bigT, smallT)
		}
		if f.Stats.CkptCount != 2 || f.Stats.CkptTime <= 0 {
			t.Errorf("stats not recorded: %+v", f.Stats)
		}
	})
}

// Property: serialize/deserialize round-trips arbitrary protected payloads
// bit-exactly, for any number of objects.
func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nobj := 1 + rng.Intn(5)
		ok := true
		harnessQ(nobj, rng, &ok)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func harnessQ(nobj int, rng *rand.Rand, ok *bool) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	st := storage.New(c, storage.Config{})
	vals := make([][]float64, nobj)
	for i := range vals {
		vals[i] = make([]float64, rng.Intn(100))
		for j := range vals[i] {
			vals[i][j] = rng.NormFloat64()
		}
	}
	j := mpi.Launch(c, 1, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, err := Init(Config{ExecID: "prop"}, r, w, st)
		if err != nil {
			*ok = false
			return
		}
		work := make([][]float64, nobj)
		for i := range vals {
			work[i] = append([]float64(nil), vals[i]...)
			f.Protect(i, F64s{&work[i]})
		}
		if f.Checkpoint(1) != nil {
			*ok = false
			return
		}
		for i := range work {
			work[i] = nil
		}
		if f.Recover() != nil {
			*ok = false
			return
		}
		for i := range vals {
			if len(work[i]) != len(vals[i]) {
				*ok = false
				return
			}
			for jx := range vals[i] {
				if work[i][jx] != vals[i][jx] {
					*ok = false
					return
				}
			}
		}
	})
	_ = j
	c.Run()
}

// TestCheckpointAtLevelOverride pins the placement subsystem's FTI hook:
// individual checkpoints can be escalated past the configured level, the
// committed (id, level) metadata round-trips through a re-init, recovery
// restores from the override's tier, and the per-level stats split the
// checkpoint counts accordingly.
func TestCheckpointAtLevelOverride(t *testing.T) {
	harness(t, 2, func(r *mpi.Rank, st *storage.System) {
		w := r.Job().World()
		cfg := Config{Level: L1, ExecID: "override"}
		f, err := Init(cfg, r, w, st)
		if err != nil {
			t.Errorf("init: %v", err)
			return
		}
		v := 1
		f.Protect(0, Int{&v})
		if err := f.Checkpoint(1); err != nil { // plain L1
			t.Errorf("ckpt 1: %v", err)
			return
		}
		v = 2
		if err := f.CheckpointAt(2, L4); err != nil { // escalated to the PFS
			t.Errorf("ckpt 2: %v", err)
			return
		}
		if f.Stats.CkptCountAt[L1] != 1 || f.Stats.CkptCountAt[L4] != 1 {
			t.Errorf("per-level counts = %v", f.Stats.CkptCountAt)
		}
		if f.Stats.CkptBytesAt[L1] == 0 || f.Stats.CkptBytesAt[L4] == 0 {
			t.Errorf("per-level bytes = %v", f.Stats.CkptBytesAt)
		}
		// The L4 payload must really live on the PFS, and the superseded L1
		// file must have been garbage-collected at its own tier.
		if !st.Exists(storage.PFS, r.Process().NodeID(), f.ckptPath(2)) {
			t.Error("escalated checkpoint not on the PFS")
		}
		if st.Exists(storage.RAMFS, r.Process().NodeID(), f.ckptPath(1)) {
			t.Error("old L1 checkpoint not garbage-collected")
		}
		// A re-init agrees on (id=2, level=L4) and recovers from the PFS —
		// even though the configured level is L1.
		v = -1
		f2, err := Init(cfg, r, w, st)
		if err != nil {
			t.Errorf("re-init: %v", err)
			return
		}
		f2.Protect(0, Int{&v})
		if f2.Status() != StatusRestart || f2.LatestCheckpoint() != 2 {
			t.Errorf("status %v latest %d, want restart of 2", f2.Status(), f2.LatestCheckpoint())
		}
		if err := f2.Recover(); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		if v != 2 {
			t.Errorf("recovered v = %d, want 2", v)
		}
		if err := f2.CheckpointAt(3, 0); err != nil { // 0 keeps the configured level
			t.Errorf("ckpt 3: %v", err)
			return
		}
		if f2.Stats.CkptCountAt[L1] != 1 {
			t.Errorf("zero override did not use the configured level: %v", f2.Stats.CkptCountAt)
		}
		if err := f2.CheckpointAt(4, Level(9)); err == nil {
			t.Error("CheckpointAt accepted level 9")
		}
	})
}

// TestMetaPackRoundTrip pins the packed metadata encoding: same 8 bytes as
// the id-only format (so metadata I/O time is unchanged) with the id in
// the high bits (so the init agreement's OpMin still orders by id).
func TestMetaPackRoundTrip(t *testing.T) {
	for _, c := range []struct {
		id    int64
		level Level
	}{{0, L1}, {7, L2}, {12345, L4}, {1 << 40, L3}} {
		id, level := unpackMeta(packMeta(c.id, c.level))
		if id != c.id || level != c.level {
			t.Fatalf("pack(%d,%v) round-tripped to (%d,%v)", c.id, c.level, id, level)
		}
	}
	if packMeta(3, L4) >= packMeta(4, L1) {
		t.Fatal("packing broke id ordering under OpMin")
	}
}

// TestL2PartnerMetaStaysFreshAcrossEscalation is the regression pin for
// escalated commits under an L2 configuration: a checkpoint escalated to
// L4 must still refresh the partner-node metadata mirror, or a node
// failure would make partner-side recovery resurrect the previous —
// garbage-collected — checkpoint id and fail.
func TestL2PartnerMetaStaysFreshAcrossEscalation(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	st := storage.New(c, storage.Config{})
	j1 := mpi.Launch(c, 4, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, _ := Init(Config{Level: L2, ExecID: "l2esc"}, r, w, st)
		x := 0
		f.Protect(0, Int{&x})
		x = 100 + r.Rank(w)
		if err := f.Checkpoint(5); err != nil { // base L2 commit
			t.Errorf("ckpt 5: %v", err)
		}
		x = 200 + r.Rank(w)
		if err := f.CheckpointAt(6, L4); err != nil { // escalated commit
			t.Errorf("ckpt 6: %v", err)
		}
	})
	c.Run()
	_ = j1
	// Rank 0's node dies; the relocated rank must agree on (6, L4) via the
	// partner metadata mirror and restore checkpoint 6 from the PFS — not
	// drag every rank back to the garbage-collected id 5.
	c.FailNode(0)
	recovered := make([]int, 4)
	j2 := mpi.LaunchPlaced(c, []int{1, 1, 2, 3}, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		f, err := Init(Config{Level: L2, ExecID: "l2esc"}, r, w, st)
		if err != nil {
			t.Errorf("rank %d re-init: %v", me, err)
			return
		}
		if f.LatestCheckpoint() != 6 {
			t.Errorf("rank %d agreed on checkpoint %d, want 6", me, f.LatestCheckpoint())
			return
		}
		x := -1
		f.Protect(0, Int{&x})
		if err := f.Recover(); err != nil {
			t.Errorf("rank %d recover: %v", me, err)
			return
		}
		recovered[me] = x
	})
	_ = j2
	c.Run()
	for me, x := range recovered {
		if x != 200+me {
			t.Fatalf("rank %d recovered %d, want %d", me, x, 200+me)
		}
	}
}

// TestL4EscalationSurvivesNodeFailure pins the PFS metadata mirror: an
// L4-escalated commit under a node-local base level must stay reachable
// after the node dies (the README's "periodic durable copies" claim), and
// a later node-local commit must retire the mirror so a node failure can
// never resurrect the garbage-collected L4 id.
func TestL4EscalationSurvivesNodeFailure(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	st := storage.New(c, storage.Config{})
	j1 := mpi.Launch(c, 4, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, _ := Init(Config{Level: L1, ExecID: "l4esc"}, r, w, st)
		x := 0
		f.Protect(0, Int{&x})
		x = 100 + r.Rank(w)
		if err := f.Checkpoint(5); err != nil {
			t.Errorf("ckpt 5: %v", err)
		}
		x = 200 + r.Rank(w)
		if err := f.CheckpointAt(6, L4); err != nil { // durable escalation
			t.Errorf("ckpt 6: %v", err)
		}
	})
	c.Run()
	_ = j1
	c.FailNode(0) // rank 0's RAMFS metadata and L1 files are gone
	recovered := make([]int, 4)
	j2 := mpi.LaunchPlaced(c, []int{1, 1, 2, 3}, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		f, err := Init(Config{Level: L1, ExecID: "l4esc"}, r, w, st)
		if err != nil {
			t.Errorf("rank %d re-init: %v", me, err)
			return
		}
		if f.LatestCheckpoint() != 6 {
			t.Errorf("rank %d agreed on checkpoint %d, want 6 (PFS metadata mirror)", me, f.LatestCheckpoint())
			return
		}
		x := -1
		f.Protect(0, Int{&x})
		if err := f.Recover(); err != nil {
			t.Errorf("rank %d recover: %v", me, err)
			return
		}
		recovered[me] = x
	})
	_ = j2
	c.Run()
	for me, x := range recovered {
		if x != 200+me {
			t.Fatalf("rank %d recovered %d, want %d", me, x, 200+me)
		}
	}
	// Retirement: a node-local commit after the escalation deletes the
	// mirror, so a node failure reports "no checkpoint" (-1) instead of
	// resurrecting the garbage-collected id 6.
	c2 := simnet.NewCluster(simnet.Config{Nodes: 4})
	st2 := storage.New(c2, storage.Config{})
	j3 := mpi.Launch(c2, 4, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, _ := Init(Config{Level: L1, ExecID: "l4ret"}, r, w, st2)
		x := 0
		f.Protect(0, Int{&x})
		if err := f.CheckpointAt(6, L4); err != nil {
			t.Errorf("ckpt 6: %v", err)
		}
		if err := f.Checkpoint(7); err != nil { // back to L1; 6 is gc'd
			t.Errorf("ckpt 7: %v", err)
		}
	})
	c2.Run()
	_ = j3
	c2.FailNode(0)
	j4 := mpi.LaunchPlaced(c2, []int{1, 1, 2, 3}, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, err := Init(Config{Level: L1, ExecID: "l4ret"}, r, w, st2)
		if err != nil {
			t.Errorf("re-init: %v", err)
			return
		}
		if f.Status() != StatusFresh {
			t.Errorf("rank %d resurrected checkpoint %d from a retired mirror", r.Rank(w), f.LatestCheckpoint())
		}
	})
	_ = j4
	c2.Run()
}

// TestL2EscalationSurvivesNodeFailureUnderL1Base pins the partner-node
// metadata mirror for escalations: an L2-escalated commit under an L1
// base configuration must be recoverable via its partner copy after the
// node dies, and a later L1 commit must retire the partner mirror so it
// cannot resurrect the garbage-collected L2 id.
func TestL2EscalationSurvivesNodeFailureUnderL1Base(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	st := storage.New(c, storage.Config{})
	j1 := mpi.Launch(c, 4, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, _ := Init(Config{Level: L1, ExecID: "l2u1"}, r, w, st)
		x := 0
		f.Protect(0, Int{&x})
		x = 100 + r.Rank(w)
		if err := f.Checkpoint(5); err != nil {
			t.Errorf("ckpt 5: %v", err)
		}
		x = 200 + r.Rank(w)
		if err := f.CheckpointAt(6, L2); err != nil { // partner-protected
			t.Errorf("ckpt 6: %v", err)
		}
	})
	c.Run()
	_ = j1
	c.FailNode(0)
	recovered := make([]int, 4)
	j2 := mpi.LaunchPlaced(c, []int{1, 1, 2, 3}, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		me := r.Rank(w)
		f, err := Init(Config{Level: L1, ExecID: "l2u1"}, r, w, st)
		if err != nil {
			t.Errorf("rank %d re-init: %v", me, err)
			return
		}
		if f.LatestCheckpoint() != 6 {
			t.Errorf("rank %d agreed on checkpoint %d, want 6 (partner metadata mirror)", me, f.LatestCheckpoint())
			return
		}
		x := -1
		f.Protect(0, Int{&x})
		if err := f.Recover(); err != nil {
			t.Errorf("rank %d recover: %v", me, err)
			return
		}
		recovered[me] = x
	})
	_ = j2
	c.Run()
	for me, x := range recovered {
		if x != 200+me {
			t.Fatalf("rank %d recovered %d, want %d", me, x, 200+me)
		}
	}
	// Retirement: an L1 commit after the escalation deletes the partner
	// mirror; a node failure then reports no checkpoint instead of the
	// garbage-collected id 6.
	c2 := simnet.NewCluster(simnet.Config{Nodes: 4})
	st2 := storage.New(c2, storage.Config{})
	j3 := mpi.Launch(c2, 4, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, _ := Init(Config{Level: L1, ExecID: "l2ret"}, r, w, st2)
		x := 0
		f.Protect(0, Int{&x})
		if err := f.CheckpointAt(6, L2); err != nil {
			t.Errorf("ckpt 6: %v", err)
		}
		if err := f.Checkpoint(7); err != nil {
			t.Errorf("ckpt 7: %v", err)
		}
	})
	c2.Run()
	_ = j3
	c2.FailNode(0)
	j4 := mpi.LaunchPlaced(c2, []int{1, 1, 2, 3}, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, err := Init(Config{Level: L1, ExecID: "l2ret"}, r, w, st2)
		if err != nil {
			t.Errorf("re-init: %v", err)
			return
		}
		if f.Status() != StatusFresh {
			t.Errorf("rank %d resurrected checkpoint %d from a retired partner mirror", r.Rank(w), f.LatestCheckpoint())
		}
	})
	_ = j4
	c2.Run()
}

// A node holding stale metadata — a dead replica's last commit, with the
// rest of the job long past it — must not drag the init agreement down to
// a checkpoint id the other ranks have garbage-collected. The split commit
// front is detected and the job restarts fresh instead of failing on a
// gc'd checkpoint.
func TestInitRejectsStaleMetadataBehindCommitFront(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	st := storage.New(c, storage.Config{})
	// Phase 1: two ranks on nodes 0,1 commit ckpt 1 then ckpt 2 (gc'ing 1).
	j1 := mpi.Launch(c, 2, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, _ := Init(Config{ExecID: "stale"}, r, w, st)
		x := r.Rank(w)
		f.Protect(0, Int{&x})
		if err := f.Checkpoint(1); err != nil {
			t.Errorf("ckpt 1: %v", err)
		}
		if err := f.Checkpoint(2); err != nil {
			t.Errorf("ckpt 2: %v", err)
		}
	})
	c.Run()
	_ = j1
	// Plant a stale epoch on node 2: metadata (and payload) for ckpt 1,
	// as a replica that died before the ckpt-2 commit would leave behind.
	stale := enc.AppendInt64(nil, packMeta(1, L1))
	if err := st.WriteFree(storage.RAMFS, 2, "fti/stale/r00000/meta", stale); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteFree(storage.RAMFS, 2, "fti/stale/r00000/ckpt1", []byte{1}); err != nil {
		t.Fatal(err)
	}
	// Phase 2: rank 0 relaunches on the stale node. Without the front
	// check the agreement picks ckpt 1, which node 1 has gc'd — and rank 1
	// dies inside Recover. With it, both ranks agree the front is split
	// and restart fresh.
	j2 := mpi.LaunchPlaced(c, []int{2, 1}, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		f, err := Init(Config{ExecID: "stale"}, r, w, st)
		if err != nil {
			t.Errorf("rank %d re-init: %v", r.Rank(w), err)
			return
		}
		if f.Status() != StatusFresh {
			t.Errorf("rank %d status %v, want fresh (no common restorable checkpoint)", r.Rank(w), f.Status())
		}
	})
	_ = j2
	c.Run()
}
