// Package fti reimplements the Fault Tolerance Interface (FTI,
// Bautista-Gomez et al., SC'11): application-level, multi-level
// checkpointing with the API the paper's Figure 1 uses —
// Init / Protect / Status / Checkpoint / Recover / Finalize.
//
// Levels:
//
//	L1  node-local RAMFS (/dev/shm), the mode the paper benchmarks
//	L2  L1 plus a copy on a partner node
//	L3  Reed–Solomon erasure encoding across a group of ranks
//	L4  flush to the parallel file system, with differential writes
//
// A checkpoint is committed by a small collective (all ranks agree the
// checkpoint id is complete) before metadata is updated — the collective
// the paper observes making L1 checkpoint time grow modestly with scale.
package fti

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"match/internal/enc"
	"match/internal/mpi"
	"match/internal/obs"
	"match/internal/simnet"
	"match/internal/storage"
	"match/internal/trace"
)

// Level selects the checkpointing level.
type Level int

// Checkpoint levels, mirroring FTI.
const (
	L1 Level = 1 + iota
	L2
	L3
	L4
)

func (l Level) String() string { return fmt.Sprintf("L%d", int(l)) }

// Status reports whether the execution is fresh or a restart, like
// FTI_Status() in Figure 1 of the paper.
type Status int

const (
	// StatusFresh means no committed checkpoint exists: first execution.
	StatusFresh Status = 0
	// StatusRestart means a committed checkpoint exists and Recover will
	// restore it.
	StatusRestart Status = 1
)

// Config configures an FTI instance.
type Config struct {
	// Level is the checkpointing level (default L1, as in the paper).
	Level Level
	// ExecID identifies the logical execution across job restarts; FTI
	// metadata and checkpoint files are keyed by it.
	ExecID string
	// GroupSize is the L3 erasure-coding group size (default 4).
	GroupSize int
	// BlockSize is the L4 differential-checkpointing block size
	// (default 64 KiB).
	BlockSize int
	// SerializeBWBps models in-memory serialization speed (default 8 GB/s).
	SerializeBWBps float64
	// BytesScale multiplies checkpoint sizes for time accounting only,
	// matching the harness's scaled-down-problem model (DESIGN.md §6).
	BytesScale float64
	// CkptOverhead is the fixed per-checkpoint cost besides raw data
	// movement: FTI's integrity checksums, metadata files, directory
	// management, and buffered-I/O copies (default 100 ms, matching the
	// per-checkpoint costs visible in the paper's breakdowns).
	CkptOverhead simnet.Time
}

func (c *Config) fillDefaults() {
	if c.Level == 0 {
		c.Level = L1
	}
	if c.GroupSize == 0 {
		c.GroupSize = 4
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64 << 10
	}
	if c.SerializeBWBps == 0 {
		c.SerializeBWBps = 8e9
	}
	if c.CkptOverhead == 0 {
		c.CkptOverhead = 100 * simnet.Millisecond
	}
}

// Protected is a checkpointable data object, registered with Protect.
// Snapshot serializes the current value; Restore overwrites it.
type Protected interface {
	Snapshot() []byte
	Restore([]byte)
}

// Stats aggregates per-rank FTI timing, consumed by the harness for the
// paper's "Write Checkpoints" breakdown component.
type Stats struct {
	CkptTime  simnet.Time // total time inside Checkpoint
	CkptCount int
	CkptBytes int64
	// CkptCountAt / CkptBytesAt split CkptCount/CkptBytes by the level each
	// checkpoint was actually written at (index by Level; slot 0 unused) —
	// the multi-level placement policies write different checkpoints at
	// different levels within one run.
	CkptCountAt [5]int
	CkptBytesAt [5]int64
	RecoverTime simnet.Time // total time inside Recover (reading + restoring)
	RecoverOps  int
}

// FTI is a per-rank checkpointing instance.
type FTI struct {
	cfg    Config
	r      *mpi.Rank
	comm   *mpi.Comm
	st     *storage.System
	rank   int
	node   int
	objs   []protEntry
	status Status
	latest int64 // latest committed checkpoint id, -1 if none
	// latestLevel is the level the latest committed checkpoint was written
	// at (placement policies override the configured level per checkpoint);
	// zero falls back to cfg.Level.
	latestLevel Level
	// origNodes is the rank-to-node placement of the first incarnation of
	// this ExecID, persisted to the PFS like FTI's topology metadata; L2
	// partner locations are derived from it so that recovery finds partner
	// copies even when a rank has been respawned on a different node.
	origNodes []int
	Stats     Stats

	// tr/trActor/trJob/trRank/trReplica are the trace identity of this
	// instance, captured at Init: the actor id groups checkpoint spans by
	// FTI instance so the reconciliation can mirror the harness's per-
	// replica stats dedup. tr is nil when tracing is off.
	tr        *trace.Recorder
	trActor   int32
	trJob     int32
	trRank    int32
	trReplica int32

	// m is the metrics registry captured at Init (nil when metrics are
	// off). Checkpoint/restore counts increment at write time, which is
	// the independent path the harness reconciles against its
	// teardown-accumulated Stats.
	m *obs.Registry
}

type protEntry struct {
	id  int
	obj Protected
}

// ErrNoCheckpoint is returned by Recover when no committed checkpoint
// exists.
var ErrNoCheckpoint = errors.New("fti: no committed checkpoint")

// Init creates an FTI instance bound to comm, like FTI_Init(config, comm).
// It probes storage for committed checkpoints from a previous incarnation
// of the same ExecID and agrees the restart status collectively, so every
// rank sees the same Status.
func Init(cfg Config, r *mpi.Rank, comm *mpi.Comm, st *storage.System) (*FTI, error) {
	cfg.fillDefaults()
	f := &FTI{
		cfg:    cfg,
		r:      r,
		comm:   comm,
		st:     st,
		rank:   r.Rank(comm),
		node:   r.Process().NodeID(),
		latest: -1,
	}
	if tr := r.Job().Cluster().Tracer(); tr.Enabled() {
		f.tr = tr
		f.trActor = tr.NewActor()
		f.trJob = tr.JobOf(r.Job())
		f.trRank = int32(f.rank)
		if comm.Replicated() {
			f.trReplica = int32(comm.ReplicaIndexOf(r.Process().GID()))
		}
	}
	f.m = r.Job().Cluster().Metrics()
	f.loadTopology()
	mine := f.readMeta()
	// Agree on the newest checkpoint every rank can restore. The packed
	// (id, level) metadata keeps the id in the high bits, so OpMin still
	// selects the smallest common id — and since the commit is collective,
	// every rank holding that id packed the same level with it.
	agreed, err := mpi.AllreduceI64Scalar(r, comm, mine, mpi.OpMin)
	if err != nil {
		return nil, fmt.Errorf("fti: init agreement: %w", err)
	}
	if agreed >= 0 {
		// The agreed id is only restorable when it is *every* rank's newest
		// commit: commits are collective and garbage-collect what they
		// supersede, so a rank pinned behind the commit front — stale
		// metadata left on a dead replica's node, say, after a relaunch put
		// a fresh rank there — names files its peers have already deleted.
		// One more tiny agreement verifies the front is uniform; a split
		// front means no common checkpoint survives, and the job restarts
		// fresh instead of dying on a gc'd id.
		ok := int64(0)
		if agreed == mine {
			ok = 1
		}
		uniform, err := mpi.AllreduceI64Scalar(r, comm, ok, mpi.OpMin)
		if err != nil {
			return nil, fmt.Errorf("fti: init verification: %w", err)
		}
		if uniform == 1 {
			f.latest, f.latestLevel = unpackMeta(agreed)
			f.status = StatusRestart
		}
	}
	return f, nil
}

// Checkpoint metadata packs the committed id together with the level it
// was written at into one int64 (id in the high bits so the init
// agreement's OpMin orders by id). The encoding is the same 8 bytes the
// id-only metadata occupied, so metadata I/O charges identical time.
const metaLevelBits = 8

func packMeta(id int64, level Level) int64 { return id<<metaLevelBits | int64(level) }

func unpackMeta(v int64) (int64, Level) {
	id, level := v>>metaLevelBits, Level(v&(1<<metaLevelBits-1))
	return id, level
}

// loadTopology reads (or, on the first incarnation, records) the original
// rank-to-node placement.
func (f *FTI) loadTopology() {
	topoPath := fmt.Sprintf("fti/%s/topology", f.cfg.ExecID)
	if b, err := f.st.Read(f.r.Sim(), storage.PFS, f.node, topoPath); err == nil {
		vals := enc.BytesToInt64s(b)
		f.origNodes = make([]int, len(vals))
		for i, v := range vals {
			f.origNodes[i] = int(v)
		}
		return
	}
	f.origNodes = make([]int, f.comm.Size())
	for i, m := range f.comm.Members() {
		f.origNodes[i] = m.NodeID()
	}
	if f.rank == 0 {
		vals := make([]int64, len(f.origNodes))
		for i, n := range f.origNodes {
			vals[i] = int64(n)
		}
		if err := f.st.Write(f.r.Sim(), storage.PFS, f.node, topoPath, enc.Int64sToBytes(vals)); err != nil {
			// PFS writes only fail if the simulation is misconfigured;
			// surface loudly rather than silently losing topology.
			panic(fmt.Sprintf("fti: writing topology: %v", err))
		}
	}
}

// Protect registers a data object for checkpointing, like FTI_Protect(id).
// Objects are serialized and restored in ascending id order. Re-registering
// an id replaces the object (which happens naturally on re-initialization
// after recovery).
func (f *FTI) Protect(id int, obj Protected) {
	for i := range f.objs {
		if f.objs[i].id == id {
			f.objs[i].obj = obj
			return
		}
	}
	f.objs = append(f.objs, protEntry{id, obj})
	sort.Slice(f.objs, func(i, j int) bool { return f.objs[i].id < f.objs[j].id })
}

// Status reports whether this execution is a restart, like FTI_Status().
func (f *FTI) Status() Status { return f.status }

// ProtectedBytes reports the current serialized size of every registered
// data object — the rank's live protected footprint. The hot-spare runtime
// uses it as the state-transfer volume when cloning a survivor onto a
// freshly spawned replica.
func (f *FTI) ProtectedBytes() int64 {
	var n int64
	for _, e := range f.objs {
		n += int64(len(e.obj.Snapshot()))
	}
	return n
}

// LatestCheckpoint returns the id of the newest committed checkpoint, or -1.
func (f *FTI) LatestCheckpoint() int64 { return f.latest }

// Comm returns the communicator FTI is operating on.
func (f *FTI) Comm() *mpi.Comm { return f.comm }

func (f *FTI) base() string {
	return fmt.Sprintf("fti/%s/r%05d/", f.cfg.ExecID, f.rank)
}

func (f *FTI) ckptPath(id int64) string { return fmt.Sprintf("%sckpt%d", f.base(), id) }
func (f *FTI) metaPath() string         { return f.base() + "meta" }
func (f *FTI) partnerPath(id int64) string {
	return fmt.Sprintf("%spartner-ckpt%d", f.base(), id)
}
func (f *FTI) parityPath(id int64) string { return fmt.Sprintf("%sparity%d", f.base(), id) }
func (f *FTI) hashPath() string           { return f.base() + "blockhashes" }

// tier returns the storage tier checkpoint payloads live in for a level.
func tier(level Level) storage.Tier {
	if level == L4 {
		return storage.PFS
	}
	return storage.RAMFS
}

// committedLevel is the level of the latest committed checkpoint.
func (f *FTI) committedLevel() Level {
	if f.latestLevel != 0 {
		return f.latestLevel
	}
	return f.cfg.Level
}

// partnerNode returns the node holding this rank's L2 partner copies: the
// original node of the next rank (in communicator order) living on a
// different original node, so a single node failure never destroys both
// copies. Derived from the persisted topology, so a restarted or respawned
// rank finds its copies regardless of where it now runs.
func (f *FTI) partnerNode() int {
	size := len(f.origNodes)
	mine := f.origNodes[f.rank]
	for k := 1; k < size; k++ {
		cand := f.origNodes[(f.rank+k)%size]
		if cand != mine {
			return cand
		}
	}
	return f.node // single-node job: no real protection possible
}

// readMeta returns the packed (id, level) metadata recorded for this rank,
// or -1. When the local copy is unavailable (e.g. the node rebooted) it
// consults the partner-node mirror an L2 commit leaves behind, then the
// PFS mirror of an L4-escalated commit. Probing a missing path charges no
// time, so fresh starts are unaffected.
func (f *FTI) readMeta() int64 {
	sp := f.r.Sim()
	if b, err := f.st.Read(sp, tier(f.cfg.Level), f.node, f.metaPath()); err == nil && len(b) == 8 {
		return enc.Int64(b)
	}
	if b, err := f.st.ReadRemote(sp, storage.RAMFS, f.partnerNode(), f.node, "p/"+f.metaPath()); err == nil && len(b) == 8 {
		return enc.Int64(b)
	}
	if b, err := f.st.Read(sp, storage.PFS, f.node, "pfs/"+f.metaPath()); err == nil && len(b) == 8 {
		return enc.Int64(b)
	}
	return -1
}

// writeMeta commits (id, level). Besides the local record at the
// configured level's tier, commits whose payload survives this node's
// failure keep a reachable metadata mirror — on the partner node for L2,
// on the PFS for L4 — refreshed or retired on *every* commit, so a stale
// mirror can never resurrect a garbage-collected checkpoint id after a
// node failure (mirror deletes charge no time; an L2 configuration always
// refreshes its partner mirror, as it always did).
func (f *FTI) writeMeta(id int64, level Level) error {
	sp := f.r.Sim()
	b := enc.AppendInt64(nil, packMeta(id, level))
	if err := f.st.Write(sp, tier(f.cfg.Level), f.node, f.metaPath(), b); err != nil {
		return err
	}
	if tier(f.cfg.Level) != storage.PFS {
		if level == L4 {
			if err := f.st.Write(sp, storage.PFS, f.node, "pfs/"+f.metaPath(), b); err != nil {
				return err
			}
		} else {
			f.st.Delete(storage.PFS, f.node, "pfs/"+f.metaPath())
		}
	}
	if level == L2 || f.cfg.Level == L2 {
		return f.st.WriteRemote(sp, storage.RAMFS, f.node, f.partnerNode(), "p/"+f.metaPath(), b)
	}
	f.st.Delete(storage.RAMFS, f.partnerNode(), "p/"+f.metaPath())
	return nil
}

func (f *FTI) scaledLen(n int) float64 {
	b := float64(n)
	if f.cfg.BytesScale > 1 {
		b *= f.cfg.BytesScale
	}
	return b
}

// serialize snapshots all protected objects into one payload and charges
// the serialization CPU time.
func (f *FTI) serialize() []byte {
	out := enc.AppendUint64(nil, uint64(len(f.objs)))
	for _, e := range f.objs {
		snap := e.obj.Snapshot()
		out = enc.AppendUint64(out, uint64(e.id))
		out = enc.AppendBytes(out, snap)
	}
	f.r.Compute(simnet.Time(f.scaledLen(len(out)) / f.cfg.SerializeBWBps * 1e9))
	return out
}

// deserialize restores all protected objects from a payload (charging the
// same CPU model as serialization).
func (f *FTI) deserialize(b []byte) error {
	f.r.Compute(simnet.Time(f.scaledLen(len(b)) / f.cfg.SerializeBWBps * 1e9))
	n := enc.Uint64(b)
	rest := b[8:]
	byID := make(map[int]Protected, len(f.objs))
	for _, e := range f.objs {
		byID[e.id] = e.obj
	}
	for i := uint64(0); i < n; i++ {
		id := int(enc.Uint64(rest))
		rest = rest[8:]
		var payload []byte
		payload, rest = enc.NextBytes(rest)
		obj, ok := byID[id]
		if !ok {
			return fmt.Errorf("fti: checkpoint contains unprotected object id %d", id)
		}
		obj.Restore(payload)
	}
	return nil
}

// Checkpoint writes a checkpoint identified by id (the application
// typically passes its iteration number) at the configured level, like
// FTI_Checkpoint(id, level). The checkpoint becomes visible to recovery
// only after every rank's write has completed (collective commit). Older
// checkpoints are garbage-collected after the commit.
func (f *FTI) Checkpoint(id int64) error { return f.CheckpointAt(id, 0) }

// CheckpointAt is Checkpoint with a per-checkpoint level override (zero
// keeps the configured level) — the hook the multi-level placement
// policies escalate individual checkpoints through. The override is
// collective: every rank must pass the same level, which the placement
// subsystem's memoized decisions guarantee. Recovery restores from
// whatever level the newest committed checkpoint was written at. Restart-
// status metadata stays at the configured level's tier (with the L2
// partner mirror refreshed on every commit of an L2 configuration), so an
// escalated checkpoint protects its payload at the higher level while
// metadata durability still follows the configured base level.
func (f *FTI) CheckpointAt(id int64, level Level) error {
	if level == 0 {
		level = f.cfg.Level
	}
	if level < L1 || level > L4 {
		return fmt.Errorf("fti: unknown level %v", level)
	}
	start := f.r.Now()
	bytes0 := f.Stats.CkptBytes
	defer func() {
		// Runs on every exit — normal return, error, and the Killed-panic
		// unwind of a rank shot mid-checkpoint — so the emitted span always
		// carries exactly the duration added to Stats.CkptTime, which is
		// what lets the trace reconcile against the Breakdown.
		dur := f.r.Now() - start
		f.Stats.CkptTime += dur
		f.Stats.CkptCount++
		f.Stats.CkptCountAt[level]++
		f.m.Ckpt(int(level), f.Stats.CkptBytes-bytes0)
		if f.tr.Wants(trace.CatCkpt) {
			f.tr.Emit(trace.Span{Cat: trace.CatCkpt,
				Rank: f.trRank, Replica: f.trReplica, Job: f.trJob, Actor: f.trActor,
				Start: int64(start), Dur: int64(dur),
				Level: int32(level), Aux: f.Stats.CkptBytes - bytes0})
		}
	}()
	payload := f.serialize()
	f.Stats.CkptBytes += int64(len(payload))
	f.Stats.CkptBytesAt[level] += int64(len(payload))
	f.r.Compute(f.cfg.CkptOverhead)

	var err error
	switch level {
	case L1:
		err = f.writeL1(id, payload)
	case L2:
		err = f.writeL2(id, payload)
	case L3:
		err = f.writeL3(id, payload)
	case L4:
		err = f.writeL4(id, payload)
	}
	if err != nil {
		return err
	}
	// Commit: all ranks must have completed the same checkpoint id before
	// metadata advances; this is the collective that makes L1 checkpoint
	// cost grow modestly with scale (§V-C of the paper).
	agreed, err := mpi.AllreduceI64Scalar(f.r, f.comm, id, mpi.OpMin)
	if err != nil {
		return fmt.Errorf("fti: checkpoint commit: %w", err)
	}
	if agreed != id {
		return fmt.Errorf("fti: commit mismatch: agreed=%d id=%d", agreed, id)
	}
	prev, prevLevel := f.latest, f.committedLevel()
	f.latest, f.latestLevel = id, level
	f.status = StatusFresh // a fresh checkpoint supersedes restart state
	if err := f.writeMeta(id, level); err != nil {
		return err
	}
	if prev >= 0 && prev != id {
		f.gc(prev, prevLevel)
	}
	return nil
}

// gc removes the files of an old checkpoint, at the level it was written.
func (f *FTI) gc(id int64, level Level) {
	f.st.Delete(tier(level), f.node, f.ckptPath(id))
	if level == L2 {
		f.st.Delete(storage.RAMFS, f.partnerNode(), "p/"+f.partnerPath(id))
	}
	if level == L3 {
		f.st.Delete(storage.RAMFS, f.node, f.parityPath(id))
	}
}

// Recover restores all protected objects from the newest committed
// checkpoint, like FTI_Recover(). The caller must have registered the same
// protected ids as when the checkpoint was written.
func (f *FTI) Recover() error {
	start := f.r.Now()
	defer func() {
		dur := f.r.Now() - start
		f.Stats.RecoverTime += dur
		f.Stats.RecoverOps++
		f.m.Inc(obs.CRestores)
		if f.tr.Wants(trace.CatRestore) {
			f.tr.Emit(trace.Span{Cat: trace.CatRestore,
				Rank: f.trRank, Replica: f.trReplica, Job: f.trJob, Actor: f.trActor,
				Start: int64(start), Dur: int64(dur),
				Level: int32(f.committedLevel()), Aux: f.latest})
		}
	}()
	if f.latest < 0 {
		return ErrNoCheckpoint
	}
	level := f.committedLevel()
	var payload []byte
	var err error
	switch level {
	case L1:
		payload, err = f.st.Read(f.r.Sim(), storage.RAMFS, f.node, f.ckptPath(f.latest))
	case L2:
		payload, err = f.readL2(f.latest)
	case L3:
		payload, err = f.readL3(f.latest)
	case L4:
		payload, err = f.st.Read(f.r.Sim(), storage.PFS, f.node, f.ckptPath(f.latest))
	}
	if err != nil {
		return fmt.Errorf("fti: recover %v ckpt %d: %w", level, f.latest, err)
	}
	if err := f.deserialize(payload); err != nil {
		return err
	}
	f.status = StatusFresh
	return nil
}

// Finalize flushes nothing (checkpoints are already durable at their level)
// and keeps files for post-mortem tooling, mirroring FTI_Finalize()'s
// behavior of leaving the last checkpoint on disk.
func (f *FTI) Finalize() error { return nil }

func hashBlocks(b []byte, blockSize int) []uint64 {
	n := (len(b) + blockSize - 1) / blockSize
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		end := (i + 1) * blockSize
		if end > len(b) {
			end = len(b)
		}
		h := fnv.New64a()
		h.Write(b[i*blockSize : end])
		out[i] = h.Sum64()
	}
	return out
}
