// Package replica implements ReplicaFTI, MATCH's fourth fault-tolerance
// design: process replication in the tradition of rMPI and FTHP-MPI, with
// partial replication (PartRePer-MPI) as a performance/resilience knob.
//
// Every logical rank is backed by a replica group (dup-degree 2 by
// default; ReplicaFactor selects which fraction of ranks get replicas).
// All replicas execute the application; the replica-aware communicator in
// internal/mpi duplicates every logical message to the whole destination
// group and suppresses duplicate copies at delivery, so the loss of any
// single replica is absorbed *without rollback*: survivors keep computing,
// and the runtime merely performs a leader election and membership update
// whose cost — not a checkpoint restore — is the recovery time.
//
// Replication is not free: it doubles the processes per node, duplicates
// every message (paying NIC time, including ingress queueing when the
// cluster models it), and adds a small per-operation sequencing overhead.
// That steady-state cost against near-zero recovery time is precisely the
// trade the checkpoint/restart designs make in the opposite direction.
//
// When an entire group is exhausted — only possible for an unreplicated
// rank under partial replication, or a node failure taking out a
// degenerate group — no copy of the rank's state survives, and the
// supervisor falls back to checkpoint-only recovery: it tears the job down
// and relaunches it restart-style, with FTI restoring the last committed
// checkpoint.
package replica

import (
	"fmt"

	"match/internal/detect"
	"match/internal/mpi"
	"match/internal/obs"
	"match/internal/simnet"
	"match/internal/trace"
)

// Config tunes the replication runtime.
type Config struct {
	// DupDegree is the replica-group size for replicated ranks (default 2).
	// An explicit 1 is honored: no rank is replicated and every failure
	// takes the checkpoint-only fallback — the degenerate baseline of a
	// replication sweep.
	DupDegree int
	// ReplicaFactor is the fraction of logical ranks that get a replica
	// group, spread evenly across the rank space (default 1: full
	// replication; PartRePer-style partial replication below 1). Values
	// outside (0,1] are clamped to the default; cmd/match rejects them
	// before they get here.
	ReplicaFactor float64
	// PerOpOverhead is the sequencing/envelope cost the replica layer adds
	// to every point-to-point operation (default 1µs).
	PerOpOverhead simnet.Time
	// FailoverDetect is the time for the runtime daemons to notice a dead
	// replica (SIGCHLD-style, default 5ms). It applies only under the
	// Launcher detection preset; an in-band detector replaces it with its
	// own confirmation latency.
	FailoverDetect simnet.Time
	// ElectionDelay is the leader election plus group-membership update
	// after a replica death (default 15ms). Detection plus election
	// quiesces every survivor once — the runtime's global fault
	// notification — so a failover's recovery time is also what the
	// application actually pays, just without recomputing anything.
	ElectionDelay simnet.Time

	// Checkpoint-only fallback (an exhausted group forces a restart-style
	// relaunch); defaults mirror the restart design's launcher model.
	DetectDelay     simnet.Time
	TeardownDelay   simnet.Time
	RelaunchBase    simnet.Time
	RelaunchPerProc simnet.Time
	// MaxRelaunches bounds fallback loops (default 8).
	MaxRelaunches int

	// HotSpare enables FTHP-MPI-style background respawn: after a failover
	// degrades a replica group, the supervisor spawns a fresh shadow in the
	// background (a ULFM-style dynamic spawn plus a state transfer cloned
	// from the surviving replica's live memory) that restores the group to
	// its configured degree. Once the spare is live the group can absorb
	// another process failure by failover; a failure landing *inside* the
	// respawn window still exhausts the group and takes the checkpoint
	// fallback. Off by default, so degraded groups stay at degree 1 until
	// job restart — the PartRePer-MPI behavior the calibrated numbers
	// assume.
	HotSpare bool
	// SpawnDelay is the dynamic-process-spawn cost paid before the state
	// transfer begins — MPI_Comm_spawn through the launcher plus wiring the
	// new process into the runtime (default 250ms).
	SpawnDelay simnet.Time
	// SpawnBandwidth is the serialization rate of the survivor-to-spare
	// state clone in bytes per second (default 8 GB/s, matching FTI's
	// in-memory serialize rate). The wire leg of the transfer additionally
	// pays NIC time through the cluster model — including ingress queueing
	// at the spare's node when the cluster models it.
	SpawnBandwidth float64
	// StateBytes reports the live protected-state volume of a logical rank
	// in bytes (the respawn transfer size, before BytesScale). The harness
	// feeds it from the application's FTI-protected footprint; nil — or a
	// zero return — falls back to SpawnStateBytes. Runtime wiring, not
	// configuration: excluded from serialization and hashing.
	StateBytes func(rank int) int64 `json:"-"`
	// SpawnStateBytes is the per-rank transfer volume used when no
	// StateBytes feed is installed (default 16 MiB).
	SpawnStateBytes int64
	// Detect overrides the failure-detection strategy (ablation: the
	// OCFTL-style in-band ring the ROADMAP calls for is -detector ring).
	// The zero value keeps the instant launcher preset.
	Detect detect.Config
	// OnLaunch, when set, runs on every job incarnation right after launch
	// (the harness installs per-run job knobs with it). Runtime wiring,
	// not configuration: excluded from serialization and hashing.
	OnLaunch func(*mpi.Job) `json:"-"`
}

// Resolved returns the configuration with every zero field replaced by its
// calibrated default — the exact cost model a run of this configuration
// uses. Canonicalization (core.CellKey) hashes the resolved form, so an
// empty Config and an explicit DefaultConfig() are the same cache entry.
func (c Config) Resolved() Config {
	c.fillDefaults()
	return c
}

// DetectPreset is Replica's detection model: the launcher/daemon SIGCHLD
// chain, i.e. instant out-of-band detection (the runtime then pays
// FailoverDetect to act on it).
func (c Config) DetectPreset() detect.Config { return detect.LauncherConfig() }

// DefaultConfig returns the calibrated replication cost model.
func DefaultConfig() Config {
	return Config{
		DupDegree:       2,
		ReplicaFactor:   1,
		PerOpOverhead:   1 * simnet.Microsecond,
		FailoverDetect:  5 * simnet.Millisecond,
		ElectionDelay:   15 * simnet.Millisecond,
		DetectDelay:     500 * simnet.Millisecond,
		TeardownDelay:   500 * simnet.Millisecond,
		RelaunchBase:    5 * simnet.Second,
		RelaunchPerProc: 4 * simnet.Millisecond,
		MaxRelaunches:   8,
		SpawnDelay:      250 * simnet.Millisecond,
		SpawnBandwidth:  8e9,
		SpawnStateBytes: 16 << 20,
	}
}

func (c *Config) fillDefaults() {
	def := DefaultConfig()
	if c.DupDegree < 1 {
		c.DupDegree = def.DupDegree
	}
	if c.ReplicaFactor <= 0 || c.ReplicaFactor > 1 {
		c.ReplicaFactor = def.ReplicaFactor
	}
	if c.PerOpOverhead == 0 {
		c.PerOpOverhead = def.PerOpOverhead
	}
	if c.FailoverDetect == 0 {
		c.FailoverDetect = def.FailoverDetect
	}
	if c.ElectionDelay == 0 {
		c.ElectionDelay = def.ElectionDelay
	}
	if c.DetectDelay == 0 {
		c.DetectDelay = def.DetectDelay
	}
	if c.TeardownDelay == 0 {
		c.TeardownDelay = def.TeardownDelay
	}
	if c.RelaunchBase == 0 {
		c.RelaunchBase = def.RelaunchBase
	}
	if c.RelaunchPerProc == 0 {
		c.RelaunchPerProc = def.RelaunchPerProc
	}
	if c.MaxRelaunches == 0 {
		c.MaxRelaunches = def.MaxRelaunches
	}
	if c.SpawnDelay == 0 {
		c.SpawnDelay = def.SpawnDelay
	}
	if c.SpawnBandwidth == 0 {
		c.SpawnBandwidth = def.SpawnBandwidth
	}
	if c.SpawnStateBytes == 0 {
		c.SpawnStateBytes = def.SpawnStateBytes
	}
}

// Layout is the replica-group structure of an n-rank job: which ranks are
// replicated, at what degree, and where every replica runs.
type Layout struct {
	Procs  int     // logical rank count
	Degree []int   // replicas per logical rank
	Nodes  [][]int // node of each replica, per logical rank
	Total  int     // physical process count
}

// NewLayout computes the deterministic replica layout for n logical ranks
// on a cluster of numNodes nodes. Primaries follow the block placement of
// mpi.Launch; replica k of a rank lands numNodes/DupDegree nodes away, so
// no two members of a group share a node (when the cluster has more than
// one node) and a node failure can exhaust only degenerate groups.
func NewLayout(n, numNodes int, cfg Config) Layout {
	cfg.fillDefaults()
	l := Layout{Procs: n, Degree: make([]int, n), Nodes: make([][]int, n)}
	offset := numNodes / cfg.DupDegree
	if offset < 1 {
		offset = 1
	}
	for i := 0; i < n; i++ {
		deg := 1
		// Spread the replicated ranks evenly over the rank space.
		if int(cfg.ReplicaFactor*float64(i+1)) > int(cfg.ReplicaFactor*float64(i)) {
			deg = cfg.DupDegree
		}
		l.Degree[i] = deg
		prim := i * numNodes / n
		for k := 0; k < deg; k++ {
			l.Nodes[i] = append(l.Nodes[i], (prim+k*offset)%numNodes)
		}
		l.Total += deg
	}
	return l
}

// DegreeOf reports the replica-group size of a logical rank (the shape
// fault.NewReplicatedPlan needs).
func (l Layout) DegreeOf(rank int) int { return l.Degree[rank] }

// Replicated counts the ranks backed by more than one replica.
func (l Layout) Replicated() int {
	n := 0
	for _, d := range l.Degree {
		if d > 1 {
			n++
		}
	}
	return n
}

// RecoveryKind distinguishes the two recovery paths.
type RecoveryKind int

const (
	// Failover is the rollback-free path: a replica died, a survivor took
	// over after a leader election and membership update.
	Failover RecoveryKind = iota
	// Relaunch is the checkpoint-only fallback: a whole group died and the
	// job was redeployed from the last committed checkpoint.
	Relaunch
)

func (k RecoveryKind) String() string {
	if k == Relaunch {
		return "relaunch"
	}
	return "failover"
}

// Recovery records one recovery event, failover or fallback.
type Recovery struct {
	Kind        RecoveryKind
	Rank        int // logical rank involved
	Replica     int // replica index that died
	FailedAt    simnet.Time
	DetectedAt  simnet.Time // when the runtime learned of the death
	CompletedAt simnet.Time
}

// Duration is the MPI recovery time for this event.
func (r Recovery) Duration() simnet.Time { return r.CompletedAt - r.FailedAt }

// Respawn records one hot-spare spawn: the background respawn scheduled
// after a failover to restore the degraded group to its configured degree.
type Respawn struct {
	Rank    int // logical rank whose group is being refilled
	Replica int // stable index of the replica slot being refilled
	Node    int // node the spare lands on
	// StartedAt is when the spawn was scheduled (the failover's membership
	// update); LiveAt is when the state transfer finished and the spare
	// began counting as protection (valid once Live).
	StartedAt simnet.Time
	LiveAt    simnet.Time
	// Live is set once the spare finished its state transfer; Aborted is
	// set when the incarnation ended (fallback teardown) or the rank
	// completed before the spare went live.
	Live    bool
	Aborted bool
}

// Duration is the spawn latency: dynamic spawn plus state transfer.
func (r Respawn) Duration() simnet.Time { return r.LiveAt - r.StartedAt }

// Supervisor runs an n-rank job under replication: it launches the replica
// groups, absorbs single-replica failures by failover, and relaunches the
// job from checkpoints when a group is exhausted.
type Supervisor struct {
	cluster *simnet.Cluster
	cfg     Config
	dcfg    detect.Config
	layout  Layout
	main    func(r *mpi.Rank, world *mpi.Comm, replica int)

	// Jobs lists every launched incarnation, newest last.
	Jobs []*mpi.Job
	// Detectors lists the per-incarnation failure detectors, parallel to
	// Jobs (the harness sums their confirmed failures' latencies).
	Detectors []detect.Detector
	// Recoveries lists failovers and fallback relaunches in order.
	Recoveries []Recovery
	// RespawnLog lists every hot-spare spawn scheduled, in order (live,
	// in-flight, and aborted alike). Empty unless Config.HotSpare is set.
	RespawnLog []Respawn
	// GaveUp is set when MaxRelaunches was exhausted.
	GaveUp bool

	world      *mpi.Comm
	rankDone   []bool
	restarting bool
	// gidRank/gidIdx map the current incarnation's physical processes back
	// to (logical rank, replica index) for detector-driven recovery.
	gidRank map[int]int
	gidIdx  map[int]int
	// spares tracks the current incarnation's hot spares by logical rank:
	// the index into RespawnLog of the pending or live spawn, and — once
	// live — the virtual member joined to the replica group.
	spares map[int]*spare
	// degradedAt tracks, per logical rank, when its replica group dropped
	// below configured degree — trace-only bookkeeping closed into a
	// CatDegraded span when a respawn restores protection. Nil (never
	// allocated) unless a recorder wants the category.
	degradedAt map[int]simnet.Time
}

// markDegraded opens a below-degree trace window for rank; no-op unless a
// recorder wants CatDegraded spans.
func (s *Supervisor) markDegraded(rank int) {
	if !s.cluster.Tracer().Wants(trace.CatDegraded) {
		return
	}
	if s.degradedAt == nil {
		s.degradedAt = make(map[int]simnet.Time)
	}
	if _, open := s.degradedAt[rank]; !open {
		s.degradedAt[rank] = s.cluster.Now()
	}
}

// closeDegraded emits the rank's open below-degree window, if any.
func (s *Supervisor) closeDegraded(rank, idx int) {
	start, open := s.degradedAt[rank]
	if !open {
		return
	}
	delete(s.degradedAt, rank)
	tr := s.cluster.Tracer()
	if tr.Wants(trace.CatDegraded) {
		tr.Emit(trace.Span{Cat: trace.CatDegraded,
			Rank: int32(rank), Replica: int32(idx), Job: tr.JobOf(s.CurrentJob()),
			Start: int64(start), Dur: int64(s.cluster.Now() - start)})
	}
}

// spare is one in-flight or live hot spare. The spare is a *virtual*
// member: it holds a byte-identical clone of the survivor's state and
// receives the same duplicated message stream, so it tracks the survivor
// in lockstep, but it has no simulated process of its own — a takeover is
// modeled as an identity swap with the executing survivor (see
// AbsorbFailure).
type spare struct {
	log  int          // index into RespawnLog
	proc *mpi.Process // nil until the state transfer completes
}

// Supervise launches n logical ranks under replication and returns the
// supervisor; drive the cluster's scheduler to completion afterwards. main
// runs once per physical replica, with the replica-aware world
// communicator and the replica index (0 = initial primary).
func Supervise(c *simnet.Cluster, cfg Config, n int, main func(*mpi.Rank, *mpi.Comm, int)) *Supervisor {
	cfg.fillDefaults()
	s := &Supervisor{
		cluster:  c,
		cfg:      cfg,
		layout:   NewLayout(n, c.NumNodes(), cfg),
		main:     main,
		rankDone: make([]bool, n),
	}
	s.dcfg = detect.Resolve(cfg.Detect, cfg.DetectPreset())
	s.launch(0)
	return s
}

// Layout returns the replica-group structure in use.
func (s *Supervisor) Layout() Layout { return s.layout }

// World returns the current incarnation's replica-aware world.
func (s *Supervisor) World() *mpi.Comm { return s.world }

// CurrentJob returns the newest incarnation.
func (s *Supervisor) CurrentJob() *mpi.Job { return s.Jobs[len(s.Jobs)-1] }

// Done reports whether every logical rank completed in some incarnation.
func (s *Supervisor) Done() bool {
	for _, d := range s.rankDone {
		if !d {
			return false
		}
	}
	return true
}

// MinLiveDegree reports the smallest live replica-group size across the
// logical ranks of the current incarnation — the protection signal the
// replica-aware checkpoint-placement policy re-arms on. It is 1 (or 0,
// mid-teardown) as soon as any rank's state would not survive a process
// failure: under partial replication from the start, or after a failover
// degrades a group. Members that already exited successfully still count
// as protection — a completed rank's state needs no checkpoint. A virtual
// hot spare counts only while its node is alive: a node failure destroys
// the spare's cloned state even though no simulated process dies with it.
func (s *Supervisor) MinLiveDegree() int {
	min := s.cfg.DupDegree
	for r := 0; r < s.layout.Procs; r++ {
		n := 0
		for _, m := range s.world.ReplicaGroup(r) {
			if s.memberProtects(m) {
				n++
			}
		}
		if n < min {
			min = n
		}
	}
	return min
}

// memberProtects reports whether a group member still protects its rank's
// state: any non-failed executing (or completed) member, or a virtual
// spare whose node survives.
func (s *Supervisor) memberProtects(m *mpi.Process) bool {
	if m.Failed() {
		return false
	}
	if m.SimProc() == nil { // virtual hot spare: state lives on its node
		return s.cluster.Node(m.NodeID()).Alive()
	}
	return true
}

// Respawns counts the hot spares that completed their state transfer and
// went live (restoring their group to its configured degree).
func (s *Supervisor) Respawns() int {
	n := 0
	for _, r := range s.RespawnLog {
		if r.Live {
			n++
		}
	}
	return n
}

// SpawnTime sums the spawn latency (dynamic spawn plus state transfer) of
// every live respawn. Spawning happens in the background, so this is a
// resource metric, not a component of the application's critical path.
func (s *Supervisor) SpawnTime() simnet.Time {
	var t simnet.Time
	for _, r := range s.RespawnLog {
		if r.Live {
			t += r.Duration()
		}
	}
	return t
}

// Failovers counts the rollback-free recoveries performed.
func (s *Supervisor) Failovers() int { return s.count(Failover) }

// Relaunches counts the checkpoint-only fallbacks performed.
func (s *Supervisor) Relaunches() int { return s.count(Relaunch) }

func (s *Supervisor) count(k RecoveryKind) int {
	n := 0
	for _, r := range s.Recoveries {
		if r.Kind == k {
			n++
		}
	}
	return n
}

// launch starts one physical incarnation of the whole replicated job.
func (s *Supervisor) launch(delay simnet.Time) {
	s.restarting = false
	s.spares = make(map[int]*spare)
	job := mpi.NewJob(s.cluster)
	job.PerOpOverhead = s.cfg.PerOpOverhead
	n := s.layout.Procs
	groups := make([][]*mpi.Process, n)
	// Primaries first, then the replica tiers, so primary GIDs mirror the
	// rank order of an unreplicated launch.
	for i := 0; i < n; i++ {
		groups[i] = []*mpi.Process{job.AddProcess(s.layout.Nodes[i][0], nil)}
	}
	for k := 1; k < s.cfg.DupDegree; k++ {
		for i := 0; i < n; i++ {
			if k < s.layout.Degree[i] {
				groups[i] = append(groups[i], job.AddProcess(s.layout.Nodes[i][k], nil))
			}
		}
	}
	world := job.NewReplicaComm(groups)
	job.SetWorld(world)
	if s.cfg.OnLaunch != nil {
		s.cfg.OnLaunch(job)
	}
	s.Jobs = append(s.Jobs, job)
	s.world = world
	s.gidRank = make(map[int]int, s.layout.Total)
	s.gidIdx = make(map[int]int, s.layout.Total)
	var phys []*mpi.Process
	for i := 0; i < n; i++ {
		for k, p := range groups[i] {
			i, k, p := i, k, p
			s.gidRank[p.GID()] = i
			s.gidIdx[p.GID()] = k
			sp := s.cluster.StartProc(p.NodeID(), delay, func(sp *simnet.Proc) {
				s.main(mpi.Bind(job, p, sp), world, k)
			})
			p.SetSimProc(sp)
			sp.OnExit(func(sp *simnet.Proc) {
				s.onExit(job, i, p, sp)
			})
		}
	}
	// The detector watches every physical process — failures of shadow
	// replicas matter as much as leader failures. Under the ring strategy
	// the heartbeat ring (and its interference) therefore spans the
	// physical job, like FTHP-MPI's replica heartbeats.
	for i := 0; i < n; i++ {
		phys = append(phys, groups[i]...)
	}
	det := detect.MustNew(s.dcfg, job, func(f detect.Failure) { s.onFailure(job, world, f) })
	det.SetProcs(phys)
	s.Detectors = append(s.Detectors, det)
}

// onExit is the node daemon's process watcher: it records completions and
// marks deaths in the message layer immediately (copies to a dead replica
// are dropped at delivery). *Reacting* to a death waits for the failure
// detector's confirmation in onFailure.
func (s *Supervisor) onExit(job *mpi.Job, rank int, p *mpi.Process, sp *simnet.Proc) {
	if job != s.CurrentJob() {
		return // stale incarnation
	}
	switch sp.Status() {
	case simnet.ExitOK:
		s.rankDone[rank] = true
	case simnet.ExitKilled:
		job.MarkFailed(p.GID())
	}
}

// onFailure drives recovery once the detector confirms a death: failover
// while the group still has a survivor, checkpoint fallback otherwise.
// Under an in-band detector a second failure landing inside the first's
// observation window is only discovered here — by which time the group may
// already be exhausted, sending the run down the fallback path the instant
// launcher preset would have avoided.
func (s *Supervisor) onFailure(job *mpi.Job, world *mpi.Comm, f detect.Failure) {
	if job != s.CurrentJob() || s.restarting || job.Aborted() {
		return // stale incarnation, or kills caused by our own teardown
	}
	rank, ok := s.gidRank[f.GID]
	if !ok {
		return
	}
	if s.groupAlive(world, rank) {
		s.failover(job, world, rank, s.gidIdx[f.GID], f)
	} else if !s.groupCompleted(world, rank) {
		s.fallback(job, rank, f)
	}
}

// groupAlive reports whether any *executing* member of the rank's group is
// still running. Virtual hot spares (no simulated process of their own)
// are excluded: a spare can only take over through the lockstep identity
// swap of AbsorbFailure, so a group whose last executor died by any other
// means — a node failure, say — is exhausted even if a spare is live.
func (s *Supervisor) groupAlive(world *mpi.Comm, rank int) bool {
	for _, m := range world.ReplicaGroup(rank) {
		sp := m.SimProc()
		if !m.Failed() && sp != nil && !sp.Exited() {
			return true
		}
	}
	return false
}

// groupCompleted reports whether some member of the rank's group already
// finished the application (the rank needs no recovery at all).
func (s *Supervisor) groupCompleted(world *mpi.Comm, rank int) bool {
	for _, m := range world.ReplicaGroup(rank) {
		sp := m.SimProc()
		if !m.Failed() && sp != nil && sp.Exited() && sp.Status() == simnet.ExitOK {
			return true
		}
	}
	return false
}

// failover is the rollback-free path: elect a new leader among the
// survivors, update the group membership everywhere, and keep going. The
// application never re-executes an instruction.
func (s *Supervisor) failover(job *mpi.Job, world *mpi.Comm, rank, idx int, f detect.Failure) {
	// Under the launcher preset the daemons pay FailoverDetect to notice
	// the SIGCHLD; an in-band detector has already paid its own latency.
	detected := f.DetectedAt
	if s.dcfg.Kind == detect.Launcher {
		detected = f.FailedAt + s.cfg.FailoverDetect
	}
	completed := detected + s.cfg.ElectionDelay
	s.Recoveries = append(s.Recoveries, Recovery{
		Kind: Failover, Rank: rank, Replica: idx,
		FailedAt: f.FailedAt, DetectedAt: detected, CompletedAt: completed,
	})
	s.cluster.Scheduler().At(completed, func() {
		if job != s.CurrentJob() || job.Aborted() {
			return
		}
		deadNode := -1
		for _, m := range world.ReplicaGroup(rank) {
			if m.GID() == f.GID {
				deadNode = m.NodeID()
			}
		}
		world.PruneReplica(f.GID)
		world.PromoteLeader(rank)
		s.cluster.Metrics().Inc(obs.CFailovers)
		if lg := s.cluster.Log(); lg.Enabled() {
			lg.Event(int64(completed), "failover", "rank", rank, "replica", idx, "gid", f.GID)
		}
		if tr := s.cluster.Tracer(); tr.Wants(trace.CatFailover) {
			tr.Emit(trace.Span{Cat: trace.CatFailover,
				Rank: int32(rank), Replica: int32(idx), Job: tr.JobOf(job),
				Start: int64(completed), Aux: int64(f.GID)})
		}
		s.markDegraded(rank)
		// The global fault notification quiesces every surviving process
		// for the detection+election window — the whole recovery cost;
		// nothing is rolled back or recomputed.
		quiesce := completed - f.FailedAt
		for r := 0; r < s.layout.Procs; r++ {
			for _, m := range world.ReplicaGroup(r) {
				if !m.Failed() {
					job.Steal(m.GID(), quiesce)
				}
			}
		}
		s.scheduleRespawn(job, world, rank, idx, deadNode)
	})
}

// scheduleRespawn starts the background hot-spare spawn that refills the
// replica slot a failover just emptied: a dynamic spawn (SpawnDelay), then
// a state transfer cloning the surviving leader's live memory to the
// spare's node over the network. The spare lands on the dead replica's
// node when that node is still alive (a process failure leaves it free),
// the next alive node otherwise.
func (s *Supervisor) scheduleRespawn(job *mpi.Job, world *mpi.Comm, rank, idx, deadNode int) {
	if !s.cfg.HotSpare || s.spares[rank] != nil {
		return
	}
	live := 0
	for _, m := range world.ReplicaGroup(rank) {
		if !m.Failed() {
			live++
		}
	}
	if live == 0 || live >= s.layout.Degree[rank] {
		return // exhausted (fallback owns it) or already at full degree
	}
	node := deadNode
	if node < 0 {
		node = s.layout.Nodes[rank][0]
	}
	for probe := 0; !s.cluster.Node(node).Alive() && probe < s.cluster.NumNodes(); probe++ {
		node = (node + 1) % s.cluster.NumNodes()
	}
	start := s.cluster.Now()
	s.RespawnLog = append(s.RespawnLog, Respawn{
		Rank: rank, Replica: idx, Node: node, StartedAt: start,
	})
	sp := &spare{log: len(s.RespawnLog) - 1}
	s.spares[rank] = sp
	// Serialize the survivor's live state after the spawn completes, then
	// put it on the wire; the transfer pays real NIC time (and ingress
	// queueing at the spare, when modeled), so respawns interfere with
	// application traffic the way FTHP-MPI's background clones do.
	bytes := s.cfg.SpawnStateBytes
	if s.cfg.StateBytes != nil {
		if b := s.cfg.StateBytes(rank); b > 0 {
			bytes = b
		}
	}
	wire := bytes
	if job.BytesScale > 1 {
		wire = int64(float64(wire) * job.BytesScale)
	}
	serialize := simnet.Time(float64(wire) / s.cfg.SpawnBandwidth * 1e9)
	s.cluster.Scheduler().After(s.cfg.SpawnDelay+serialize, func() {
		if job != s.CurrentJob() || s.restarting || job.Aborted() {
			s.abortRespawn(rank, sp)
			return
		}
		src := world.Member(rank).NodeID()
		liveAt := s.cluster.SendArrival(src, node, int(wire), s.cluster.Now())
		s.cluster.Scheduler().At(liveAt, func() { s.goLive(job, world, rank, idx, node, sp) })
	})
}

// goLive completes a respawn: the spare holds a byte-identical clone of
// the survivor's state, joins the replica group as a virtual member —
// senders start duplicating onto it, and MinLiveDegree sees the restored
// protection — and from here on tracks the survivor in lockstep.
func (s *Supervisor) goLive(job *mpi.Job, world *mpi.Comm, rank, idx, node int, sp *spare) {
	if job != s.CurrentJob() || s.restarting || job.Aborted() ||
		s.rankDone[rank] || !s.groupAlive(world, rank) ||
		!s.cluster.Node(node).Alive() {
		s.abortRespawn(rank, sp)
		return
	}
	p := job.AddProcess(node, nil)
	world.AddReplica(rank, p, idx)
	s.gidRank[p.GID()] = rank
	s.gidIdx[p.GID()] = idx
	sp.proc = p
	s.RespawnLog[sp.log].Live = true
	s.RespawnLog[sp.log].LiveAt = s.cluster.Now()
	s.cluster.Metrics().Inc(obs.CRespawns)
	if lg := s.cluster.Log(); lg.Enabled() {
		lg.Event(int64(s.cluster.Now()), "respawn", "rank", rank, "replica", idx, "node", node)
	}
	if tr := s.cluster.Tracer(); tr.Wants(trace.CatSpawn) {
		rs := &s.RespawnLog[sp.log]
		tr.Emit(trace.Span{Cat: trace.CatSpawn,
			Rank: int32(rank), Replica: int32(idx), Job: tr.JobOf(job),
			Start: int64(rs.StartedAt), Dur: int64(rs.Duration()), Aux: int64(node)})
	}
	s.closeDegraded(rank, idx)
}

// abortRespawn records that a spawn never went live (teardown beat it, or
// the rank finished first) and frees the rank's spare slot.
func (s *Supervisor) abortRespawn(rank int, sp *spare) {
	s.RespawnLog[sp.log].Aborted = true
	if s.spares[rank] == sp {
		delete(s.spares, rank)
	}
	s.cluster.Metrics().Inc(obs.CRespawnsAborted)
	if tr := s.cluster.Tracer(); tr.Wants(trace.CatSpawn) {
		rs := &s.RespawnLog[sp.log]
		// Level 1 marks an aborted spawn; the span covers schedule-to-abort.
		tr.Emit(trace.Span{Cat: trace.CatSpawn,
			Rank: int32(rank), Replica: int32(rs.Replica), Job: tr.JobOf(s.CurrentJob()),
			Start: int64(rs.StartedAt), Dur: int64(s.cluster.Now() - rs.StartedAt),
			Level: 1, Aux: int64(rs.Node)})
	}
}

// AbsorbFailure is consulted at the instant a process failure is about to
// destroy an executing replica (the fault injector's Redirect hook; tests
// call it directly before Die). It returns true when a live hot spare
// absorbed the failure: the spare — a lockstep clone of the victim — takes
// over the victim's work, so the caller must NOT terminate the process.
// Mechanically the takeover is an identity swap: the executing process
// carries on as the promoted spare while the spare's virtual membership is
// retired in the victim's place, which is observationally equivalent
// because the two are byte-identical twins. The takeover costs one
// detection+election quiesce, exactly like any other failover, and
// schedules a fresh respawn to refill the slot that was consumed.
func (s *Supervisor) AbsorbFailure(r *mpi.Rank, world *mpi.Comm) bool {
	job := r.Job()
	if !s.cfg.HotSpare || job != s.CurrentJob() || s.restarting || job.Aborted() {
		return false
	}
	rank := r.Rank(world)
	if rank < 0 {
		return false
	}
	sp := s.spares[rank]
	if sp == nil || sp.proc == nil || sp.proc.Failed() {
		return false // no spare, or still inside the respawn window
	}
	if !s.cluster.Node(s.RespawnLog[sp.log].Node).Alive() {
		// The spare's node died since it went live, taking the cloned
		// state with it (no simulated process existed to die with the
		// node): retire the spare and let the failure take its course.
		job.MarkFailed(sp.proc.GID())
		world.PruneReplica(sp.proc.GID())
		delete(s.spares, rank)
		return false
	}
	// With another executing twin alive the normal failover path is
	// cheaper and keeps the spare in reserve; only the last executor
	// needs the swap.
	executing := 0
	for _, m := range world.ReplicaGroup(rank) {
		if p := m.SimProc(); !m.Failed() && p != nil && !p.Exited() {
			executing++
		}
	}
	if executing > 1 {
		return false
	}
	victim := r.Process()
	idx := s.gidIdx[victim.GID()]
	now := r.Now()
	// Under the launcher preset the daemons pay FailoverDetect to notice
	// the death; an in-band detector would take its observation timeout.
	// (The swap never kills a simulated process, so the detect subsystem
	// does not see this failure; the latency is charged here instead.)
	detected := now + s.cfg.FailoverDetect
	if s.dcfg.Kind != detect.Launcher {
		detected = now + s.dcfg.DetectTimeout
	}
	completed := detected + s.cfg.ElectionDelay
	s.Recoveries = append(s.Recoveries, Recovery{
		Kind: Failover, Rank: rank, Replica: idx,
		FailedAt: now, DetectedAt: detected, CompletedAt: completed,
	})
	spareProc := sp.proc
	spareNode := s.RespawnLog[sp.log].Node
	delete(s.spares, rank)
	job.MarkFailed(spareProc.GID())
	// The executor carries on as the promoted spare, so it takes over the
	// spare's stable slot; the victim's slot (idx) is the empty one the
	// refill below fills. Without the swap the group would end up with two
	// members in one slot and a vanished index that schedule events could
	// never hit again.
	spareIdx := s.gidIdx[spareProc.GID()]
	s.gidIdx[victim.GID()] = spareIdx
	world.SetReplicaIndex(victim.GID(), spareIdx)
	s.cluster.Metrics().Inc(obs.CAbsorbs)
	if lg := s.cluster.Log(); lg.Enabled() {
		lg.Event(int64(now), "absorb", "rank", rank, "replica", idx, "gid", victim.GID())
	}
	if tr := s.cluster.Tracer(); tr.Wants(trace.CatAbsorb) {
		tr.Emit(trace.Span{Cat: trace.CatAbsorb,
			Rank: int32(rank), Replica: int32(idx), Job: tr.JobOf(job),
			Start: int64(now), Aux: int64(victim.GID())})
	}
	s.cluster.Scheduler().At(completed, func() {
		if job != s.CurrentJob() || job.Aborted() {
			return
		}
		world.PruneReplica(spareProc.GID())
		world.PromoteLeader(rank)
		s.markDegraded(rank)
		quiesce := completed - now
		for rr := 0; rr < s.layout.Procs; rr++ {
			for _, m := range world.ReplicaGroup(rr) {
				if !m.Failed() {
					job.Steal(m.GID(), quiesce)
				}
			}
		}
		// Refill the slot the takeover consumed; the spare's node is free
		// again (the promoted twin executes on the victim's node — links
		// between distinct nodes are identical, so the swap is timing-
		// neutral).
		s.scheduleRespawn(job, world, rank, idx, spareNode)
	})
	return true
}

// fallback is the checkpoint-only path: no copy of the rank's state
// survives, so replication has nothing left to offer — tear the job down
// and redeploy it; FTI then restores the last committed checkpoint.
func (s *Supervisor) fallback(job *mpi.Job, rank int, f detect.Failure) {
	s.restarting = true
	// The incarnation is doomed; stop confirming the teardown kills that
	// follow.
	s.Detectors[len(s.Detectors)-1].Stop()
	// Under the launcher preset the launcher pays DetectDelay before
	// aborting; an in-band detector notifies it at confirmation.
	delay0 := s.cfg.DetectDelay
	if s.dcfg.Kind != detect.Launcher {
		delay0 = 0
	}
	s.cluster.Scheduler().After(delay0, func() {
		abortedAt := s.cluster.Now()
		job.Abort()
		if s.Relaunches() >= s.cfg.MaxRelaunches {
			s.GaveUp = true
			return
		}
		delay := s.cfg.TeardownDelay + s.cfg.RelaunchBase +
			simnet.Time(s.layout.Total)*s.cfg.RelaunchPerProc
		s.Recoveries = append(s.Recoveries, Recovery{
			Kind: Relaunch, Rank: rank,
			// The launcher acts the moment it knows: at confirmation for an
			// in-band detector, DetectDelay after the death otherwise.
			FailedAt: f.FailedAt, DetectedAt: abortedAt, CompletedAt: abortedAt + delay,
		})
		s.cluster.Metrics().Inc(obs.CFallbacks)
		if lg := s.cluster.Log(); lg.Enabled() {
			lg.Event(int64(abortedAt), "fallback", "rank", rank, "gid", f.GID)
		}
		if tr := s.cluster.Tracer(); tr.Wants(trace.CatFallback) {
			tr.Emit(trace.Span{Cat: trace.CatFallback,
				Rank: int32(rank), Job: tr.JobOf(job),
				Start: int64(abortedAt), Aux: int64(f.GID)})
		}
		s.launch(delay)
	})
}

// String summarizes the supervisor state (diagnostics).
func (s *Supervisor) String() string {
	return fmt.Sprintf("replica: %d ranks (%d replicated, %d procs), %d failovers, %d relaunches",
		s.layout.Procs, s.layout.Replicated(), s.layout.Total, s.Failovers(), s.Relaunches())
}
