package replica

import (
	"testing"

	"match/internal/mpi"
	"match/internal/simnet"
)

func TestLayoutFullReplication(t *testing.T) {
	l := NewLayout(8, 4, Config{})
	if l.Total != 16 || l.Replicated() != 8 {
		t.Fatalf("layout = %+v, want 16 procs, 8 replicated ranks", l)
	}
	for i, nodes := range l.Nodes {
		if len(nodes) != 2 {
			t.Fatalf("rank %d has %d replicas, want 2", i, len(nodes))
		}
		if nodes[0] == nodes[1] {
			t.Fatalf("rank %d replicas co-located on node %d", i, nodes[0])
		}
	}
}

func TestLayoutPartialReplication(t *testing.T) {
	l := NewLayout(8, 4, Config{ReplicaFactor: 0.5})
	if l.Replicated() != 4 {
		t.Fatalf("replicated = %d, want 4 of 8", l.Replicated())
	}
	if l.Total != 12 {
		t.Fatalf("total procs = %d, want 12", l.Total)
	}
	// Replicated ranks must be spread, not clustered at the front.
	if l.Degree[0] == l.Degree[1] {
		t.Fatalf("degrees %v not alternating for factor 0.5", l.Degree)
	}
}

// An explicit DupDegree of 1 is the unreplicated baseline, not a typo to
// silently correct.
func TestLayoutDupDegreeOne(t *testing.T) {
	l := NewLayout(8, 4, Config{DupDegree: 1})
	if l.Total != 8 || l.Replicated() != 0 {
		t.Fatalf("layout = %+v, want 8 procs, 0 replicated ranks", l)
	}
}

func TestLayoutDeterministic(t *testing.T) {
	a := NewLayout(64, 32, Config{ReplicaFactor: 0.7, DupDegree: 3})
	b := NewLayout(64, 32, Config{ReplicaFactor: 0.7, DupDegree: 3})
	if a.Total != b.Total {
		t.Fatalf("layouts differ: %d vs %d procs", a.Total, b.Total)
	}
	for i := range a.Nodes {
		for k := range a.Nodes[i] {
			if a.Nodes[i][k] != b.Nodes[i][k] {
				t.Fatalf("placement differs at rank %d replica %d", i, k)
			}
		}
	}
}

// workloop is a minimal SPMD main: iterations of compute + allreduce, with
// an optional kill of one specific (rank, replica) at one iteration.
func workloop(t *testing.T, iters, killRank, killReplica, killIter int) func(*mpi.Rank, *mpi.Comm, int) {
	return func(r *mpi.Rank, world *mpi.Comm, idx int) {
		rank := r.Rank(world)
		for it := 0; it < iters; it++ {
			if it == killIter && rank == killRank && idx == killReplica {
				r.Die()
			}
			r.Compute(100 * simnet.Microsecond)
			sum, err := mpi.AllreduceF64Scalar(r, world, 1, mpi.OpSum)
			if err != nil {
				t.Errorf("rank %d replica %d iter %d: %v", rank, idx, it, err)
				return
			}
			if int(sum) != world.Size() {
				t.Errorf("rank %d replica %d iter %d: sum %v != %d", rank, idx, it, sum, world.Size())
				return
			}
		}
	}
}

// A replica death must be absorbed by one failover: no relaunch, every
// logical rank completes, and the recovery duration is detect + election.
func TestSupervisorFailover(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	sup := Supervise(c, Config{}, 4, workloop(t, 10, 2, 1, 3))
	c.Run()
	if !sup.Done() {
		t.Fatal("not all logical ranks completed")
	}
	if sup.Failovers() != 1 || sup.Relaunches() != 0 {
		t.Fatalf("failovers=%d relaunches=%d, want 1/0", sup.Failovers(), sup.Relaunches())
	}
	rec := sup.Recoveries[0]
	if rec.Kind != Failover || rec.Rank != 2 || rec.Replica != 1 {
		t.Fatalf("recovery = %+v", rec)
	}
	want := DefaultConfig().FailoverDetect + DefaultConfig().ElectionDelay
	if rec.Duration() != want {
		t.Fatalf("failover duration %v, want %v", rec.Duration(), want)
	}
	// After the membership update the dead replica is pruned and the
	// survivor leads the group.
	if d := sup.World().ReplicaDegree(2); d != 1 {
		t.Fatalf("group degree after failover = %d, want 1", d)
	}
	if sup.World().Member(2).Failed() {
		t.Fatal("leader of rank 2 is still the dead replica")
	}
}

// Killing the only replica of an unreplicated rank (partial replication)
// must trigger the checkpoint-only fallback: the whole job relaunches and
// then completes.
func TestSupervisorExhaustionFallsBackToRelaunch(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	cfg := Config{ReplicaFactor: 0.5}
	lay := NewLayout(4, 4, cfg)
	victim := -1
	for i, d := range lay.Degree {
		if d == 1 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no unreplicated rank in layout")
	}
	killed := false
	sup := Supervise(c, cfg, 4, func(r *mpi.Rank, world *mpi.Comm, idx int) {
		// Kill the unreplicated rank once, in the first incarnation only.
		if !killed && r.Rank(world) == victim && idx == 0 {
			killed = true
			r.Die()
		}
		workloop(t, 5, -1, -1, -1)(r, world, idx)
	})
	c.Run()
	if !sup.Done() {
		t.Fatal("job never completed after fallback")
	}
	if sup.Relaunches() != 1 {
		t.Fatalf("relaunches = %d, want 1", sup.Relaunches())
	}
	if len(sup.Jobs) != 2 {
		t.Fatalf("incarnations = %d, want 2", len(sup.Jobs))
	}
	if sup.GaveUp {
		t.Fatal("supervisor gave up")
	}
	// The fallback pays restart-scale costs, far above a failover.
	var rel Recovery
	for _, r := range sup.Recoveries {
		if r.Kind == Relaunch {
			rel = r
		}
	}
	if rel.Duration() < simnet.Second {
		t.Fatalf("relaunch duration %v suspiciously cheap", rel.Duration())
	}
}

// hotSpareConfig keeps respawn windows short enough for the quick test
// workloops (the calibrated 250ms SpawnDelay dwarfs a 40ms loop).
func hotSpareConfig() Config {
	return Config{HotSpare: true, SpawnDelay: simnet.Millisecond, SpawnStateBytes: 1 << 20}
}

// A failover under HotSpare must schedule a background respawn that
// restores the degraded group to its configured degree.
func TestHotSpareRespawnRestoresDegree(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	sup := Supervise(c, hotSpareConfig(), 4, workloop(t, 400, 2, 1, 3))
	c.Run()
	if !sup.Done() {
		t.Fatal("not all logical ranks completed")
	}
	if sup.Failovers() != 1 || sup.Relaunches() != 0 {
		t.Fatalf("failovers=%d relaunches=%d, want 1/0", sup.Failovers(), sup.Relaunches())
	}
	if sup.Respawns() != 1 {
		t.Fatalf("respawns = %d, want 1", sup.Respawns())
	}
	rs := sup.RespawnLog[0]
	if !rs.Live || rs.Aborted || rs.Rank != 2 || rs.Replica != 1 {
		t.Fatalf("respawn record = %+v", rs)
	}
	if rs.Duration() <= simnet.Millisecond {
		t.Fatalf("spawn duration %v does not cover SpawnDelay + state transfer", rs.Duration())
	}
	if sup.SpawnTime() != rs.Duration() {
		t.Fatalf("SpawnTime() = %v, want %v", sup.SpawnTime(), rs.Duration())
	}
	// The spare joined the group: protection is back at full degree.
	if d := sup.World().ReplicaDegree(2); d != 2 {
		t.Fatalf("group degree after respawn = %d, want 2", d)
	}
	if got := sup.MinLiveDegree(); got != 2 {
		t.Fatalf("MinLiveDegree after respawn = %d, want 2", got)
	}
}

// A second failure on the same rank, landing after the spare went live,
// must be absorbed by failover — not the checkpoint fallback.
func TestHotSpareAbsorbsSecondFailure(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	var sup *Supervisor
	sup = Supervise(c, hotSpareConfig(), 4, func(r *mpi.Rank, world *mpi.Comm, idx int) {
		rank := r.Rank(world)
		for it := 0; it < 800; it++ {
			if it == 3 && rank == 2 && idx == 1 {
				r.Die()
			}
			if it == 350 && rank == 2 {
				// Second hit on the surviving replica, well past the
				// respawn window: the live spare absorbs it.
				if !sup.AbsorbFailure(r, world) {
					r.Die()
				}
			}
			r.Compute(100 * simnet.Microsecond)
			if _, err := mpi.AllreduceF64Scalar(r, world, 1, mpi.OpSum); err != nil {
				t.Errorf("rank %d replica %d iter %d: %v", rank, idx, it, err)
				return
			}
		}
	})
	c.Run()
	if !sup.Done() {
		t.Fatal("not all logical ranks completed")
	}
	if sup.Failovers() != 2 || sup.Relaunches() != 0 {
		t.Fatalf("failovers=%d relaunches=%d, want 2/0 (spare takeover must not fall back)",
			sup.Failovers(), sup.Relaunches())
	}
	second := sup.Recoveries[1]
	if second.Kind != Failover || second.Rank != 2 || second.Replica != 0 {
		t.Fatalf("second recovery = %+v, want failover of rank 2 replica 0", second)
	}
	want := DefaultConfig().FailoverDetect + DefaultConfig().ElectionDelay
	if second.Duration() != want {
		t.Fatalf("takeover duration %v, want detect+election %v", second.Duration(), want)
	}
	// The takeover consumed the spare and scheduled a replacement.
	if len(sup.RespawnLog) != 2 {
		t.Fatalf("respawn log = %+v, want 2 spawns (initial + refill)", sup.RespawnLog)
	}
	// Identity swap bookkeeping: the executor carried on in the consumed
	// spare's slot (1, the slot of the first death), and the refill spare
	// occupies the takeover victim's slot (0) — every stable index exists
	// exactly once, so later schedule events can still target both slots.
	world := sup.World()
	if got := world.ReplicaIndexOf(world.Member(2).GID()); got != 1 {
		t.Fatalf("promoted executor occupies slot %d, want 1 (the consumed spare's)", got)
	}
	idx := map[int]int{}
	for _, m := range world.ReplicaGroup(2) {
		idx[world.ReplicaIndexOf(m.GID())]++
	}
	if idx[0] != 1 || idx[1] != 1 {
		t.Fatalf("slot occupancy = %v, want exactly one member per slot", idx)
	}
}

// A node failure destroys a live spare's cloned state even though no
// simulated process dies with it: the spare must stop counting as
// protection, and a subsequent hit on the rank's last executor must take
// the checkpoint fallback instead of being absorbed by a dead spare.
func TestHotSpareInvalidatedByNodeFailure(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	var sup *Supervisor
	nodeKilled, k2 := false, false
	sup = Supervise(c, hotSpareConfig(), 4, func(r *mpi.Rank, world *mpi.Comm, idx int) {
		rank := r.Rank(world)
		for it := 0; it < 400; it++ {
			if it == 3 && rank == 2 && idx == 1 {
				r.Die()
			}
			if !nodeKilled && it == 300 && rank == 0 {
				if len(sup.RespawnLog) > 0 && sup.RespawnLog[0].Live {
					nodeKilled = true
					node := sup.RespawnLog[0].Node
					if got := sup.MinLiveDegree(); got != 2 {
						t.Errorf("degree before node failure = %d, want 2 (spare live)", got)
					}
					c.Scheduler().After(0, func() { c.FailNode(node) })
				}
			}
			if !k2 && it == 350 && rank == 2 {
				k2 = true
				if got := sup.MinLiveDegree(); got >= 2 {
					t.Errorf("degree after spare's node died = %d, want < 2", got)
				}
				if !sup.AbsorbFailure(r, world) {
					r.Die()
				}
			}
			r.Compute(100 * simnet.Microsecond)
			if _, err := mpi.AllreduceF64Scalar(r, world, 1, mpi.OpSum); err != nil {
				t.Errorf("rank %d replica %d iter %d: %v", rank, idx, it, err)
				return
			}
		}
	})
	c.Run()
	if !nodeKilled || !k2 {
		t.Fatalf("scenario did not run: nodeKilled=%v k2=%v", nodeKilled, k2)
	}
	if !sup.Done() {
		t.Fatal("job never completed")
	}
	if sup.Relaunches() != 1 {
		t.Fatalf("relaunches = %d, want 1 (a dead spare must not absorb the hit)", sup.Relaunches())
	}
}

// A second failure landing inside the respawn window — the spare is not
// yet live — must exhaust the group and take the checkpoint fallback.
func TestHotSpareWindowFallsBackToRelaunch(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	cfg := hotSpareConfig()
	cfg.SpawnDelay = 3600 * simnet.Second // spare never ready in this run
	var sup *Supervisor
	k1, k2 := false, false
	sup = Supervise(c, cfg, 4, func(r *mpi.Rank, world *mpi.Comm, idx int) {
		rank := r.Rank(world)
		for it := 0; it < 400; it++ {
			if !k1 && it == 3 && rank == 2 && idx == 1 {
				k1 = true
				r.Die()
			}
			if !k2 && it == 350 && rank == 2 {
				k2 = true
				if !sup.AbsorbFailure(r, world) {
					r.Die()
				}
			}
			r.Compute(100 * simnet.Microsecond)
			if _, err := mpi.AllreduceF64Scalar(r, world, 1, mpi.OpSum); err != nil {
				t.Errorf("rank %d replica %d iter %d: %v", rank, idx, it, err)
				return
			}
		}
	})
	c.Run()
	if !sup.Done() {
		t.Fatal("job never completed after fallback")
	}
	if sup.Failovers() != 1 || sup.Relaunches() != 1 {
		t.Fatalf("failovers=%d relaunches=%d, want 1/1 (in-window hit must fall back)",
			sup.Failovers(), sup.Relaunches())
	}
	if sup.Respawns() != 0 {
		t.Fatalf("respawns = %d, want 0 (the spawn never went live)", sup.Respawns())
	}
	if len(sup.RespawnLog) == 0 || !sup.RespawnLog[0].Aborted {
		t.Fatalf("respawn log = %+v, want the in-flight spawn aborted by teardown", sup.RespawnLog)
	}
}

// Two identical hot-spare runs must produce identical virtual timelines.
func TestHotSpareDeterministic(t *testing.T) {
	run := func() (simnet.Time, int, int) {
		c := simnet.NewCluster(simnet.Config{Nodes: 4, ModelIngress: true})
		sup := Supervise(c, hotSpareConfig(), 4, workloop(t, 400, 1, 0, 4))
		end := c.Run()
		return end, len(sup.Recoveries), sup.Respawns()
	}
	t1, r1, s1 := run()
	t2, r2, s2 := run()
	if t1 != t2 || r1 != r2 || s1 != s2 {
		t.Fatalf("runs diverged: (%v,%d,%d) vs (%v,%d,%d)", t1, r1, s1, t2, r2, s2)
	}
}

// Two identical supervised runs must produce identical virtual timelines.
func TestSupervisorDeterministic(t *testing.T) {
	run := func() (simnet.Time, int) {
		c := simnet.NewCluster(simnet.Config{Nodes: 4, ModelIngress: true})
		sup := Supervise(c, Config{}, 4, workloop(t, 10, 1, 0, 4))
		end := c.Run()
		return end, len(sup.Recoveries)
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("runs diverged: (%v,%d) vs (%v,%d)", t1, r1, t2, r2)
	}
}

// MinLiveDegree is the replica-aware checkpoint policy's protection
// signal: full replication reports the dup degree, partial replication
// reports 1 from the start, and a failover degrades it to 1 the moment a
// group loses a member.
func TestMinLiveDegree(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	sup := Supervise(c, Config{}, 4, workloop(t, 10, 2, 1, 3))
	if got := sup.MinLiveDegree(); got != 2 {
		t.Fatalf("fully replicated degree = %d, want 2", got)
	}
	c.Run()
	if !sup.Done() || sup.Failovers() != 1 {
		t.Fatalf("done=%v failovers=%d", sup.Done(), sup.Failovers())
	}
	if got := sup.MinLiveDegree(); got != 1 {
		t.Fatalf("degree after failover = %d, want 1", got)
	}

	c2 := simnet.NewCluster(simnet.Config{Nodes: 4})
	sup2 := Supervise(c2, Config{ReplicaFactor: 0.5}, 4, workloop(t, 2, -1, -1, -1))
	if got := sup2.MinLiveDegree(); got != 1 {
		t.Fatalf("partial replication degree = %d, want 1 (some rank is unprotected)", got)
	}
	c2.Run()
}
