package restart

import (
	"testing"

	"match/internal/fault"
	"match/internal/fti"
	"match/internal/mpi"
	"match/internal/simnet"
	"match/internal/storage"
)

func reference(n, iters int) float64 {
	total := 0.0
	for it := 0; it < iters; it++ {
		for rk := 0; rk < n; rk++ {
			total += float64(rk + it)
		}
	}
	return total
}

func runRestart(t *testing.T, n, iters, stride int, plan fault.Plan, execID string) (*Supervisor, []float64) {
	t.Helper()
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	c.Scheduler().SetDeadline(10 * 60 * simnet.Second)
	st := storage.New(c, storage.Config{})
	inj := fault.NewInjector(plan)
	sums := make([]float64, n)
	main := func(r *mpi.Rank) {
		world := r.Job().World()
		f, err := fti.Init(fti.Config{ExecID: execID}, r, world, st)
		if err != nil {
			t.Errorf("init: %v", err)
			return
		}
		iter := 0
		sum := 0.0
		f.Protect(0, fti.Int{P: &iter})
		f.Protect(1, fti.F64{P: &sum})
		if f.Status() != fti.StatusFresh {
			if err := f.Recover(); err != nil {
				t.Errorf("recover: %v", err)
				return
			}
		}
		for ; iter < iters; iter++ {
			inj.MaybeFail(r, world, iter)
			if iter%stride == 0 {
				if err := f.Checkpoint(int64(iter)); err != nil {
					return // job is being torn down
				}
			}
			v, err := mpi.AllreduceF64Scalar(r, world, float64(r.Rank(world)+iter), mpi.OpSum)
			if err != nil {
				return // torn down mid-collective
			}
			sum += v
			r.Compute(simnet.Millisecond)
		}
		sums[r.Rank(world)] = sum
	}
	s := Supervise(c, Config{}, n, 0, main)
	c.Run()
	return s, sums
}

func TestRestartNoFailureSingleJob(t *testing.T) {
	s, sums := runRestart(t, 4, 12, 3, fault.Plan{}, "restart-nofail")
	if !s.Done() {
		t.Fatal("job did not complete")
	}
	if len(s.Jobs) != 1 || len(s.Recoveries) != 0 {
		t.Fatalf("jobs=%d recoveries=%d", len(s.Jobs), len(s.Recoveries))
	}
	want := reference(4, 12)
	for i, sum := range sums {
		if sum != want {
			t.Fatalf("rank %d sum %v, want %v", i, sum, want)
		}
	}
}

func TestRestartRelaunchesAndResumes(t *testing.T) {
	plan := fault.Plan{Enabled: true, TargetRank: 2, TargetIter: 7}
	s, sums := runRestart(t, 4, 12, 3, plan, "restart-fail")
	if !s.Done() {
		t.Fatal("job did not complete after relaunch")
	}
	if len(s.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(s.Jobs))
	}
	if len(s.Recoveries) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(s.Recoveries))
	}
	want := reference(4, 12)
	for i, sum := range sums {
		if sum != want {
			t.Fatalf("rank %d sum %v, want %v", i, sum, want)
		}
	}
	rec := s.Recoveries[0]
	if rec.Duration() < DefaultConfig().LaunchBase {
		t.Fatalf("recovery %v cheaper than the launch base %v", rec.Duration(), DefaultConfig().LaunchBase)
	}
	if rec.FailedRanks[0] != 2 {
		t.Fatalf("failed rank %v", rec.FailedRanks)
	}
}

// Restart recovery must be far more expensive than Reinit-style recovery:
// the full redeployment dominates (paper: 16x on average).
func TestRestartRecoveryDominatedByRedeploy(t *testing.T) {
	plan := fault.Plan{Enabled: true, TargetRank: 0, TargetIter: 4}
	s, _ := runRestart(t, 8, 10, 3, plan, "restart-redeploy")
	rec := s.Recoveries[0]
	cfg := DefaultConfig()
	min := cfg.DetectDelay + cfg.TeardownDelay + cfg.LaunchBase
	if rec.Duration() < min {
		t.Fatalf("recovery %v below the redeploy floor %v", rec.Duration(), min)
	}
}

// Per-proc launch cost must make bigger jobs slightly slower to relaunch.
func TestRestartScalesWithJobSize(t *testing.T) {
	var durs []simnet.Time
	for i, n := range []int{4, 16} {
		plan := fault.Plan{Enabled: true, TargetRank: 1, TargetIter: 4}
		s, _ := runRestart(t, n, 10, 3, plan, map[int]string{0: "rs-a", 1: "rs-b"}[i])
		durs = append(durs, s.Recoveries[0].Duration())
	}
	if durs[1] <= durs[0] {
		t.Fatalf("relaunch of 16 ranks (%v) not slower than 4 ranks (%v)", durs[1], durs[0])
	}
}

func TestMaxRelaunchesGivesUp(t *testing.T) {
	// An injector that kills rank 0 at iteration 0 of *every* incarnation.
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	c.Scheduler().SetDeadline(30 * 60 * simnet.Second)
	main := func(r *mpi.Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			r.Die()
		}
		mpi.Barrier(r, w)
	}
	s := Supervise(c, Config{MaxRelaunches: 2}, 2, 0, main)
	c.Run()
	if !s.GaveUp {
		t.Fatal("supervisor never gave up")
	}
	if s.Done() {
		t.Fatal("job reported done despite permanent failure")
	}
	if len(s.Recoveries) != 2 {
		t.Fatalf("recoveries = %d, want 2", len(s.Recoveries))
	}
}
