// Package restart implements the baseline MPI fault-tolerance design: when
// any rank dies, the job launcher (mpirun/srun) tears the whole job down
// and redeploys it from scratch. Application state survives only through
// checkpoints; MPI state is rebuilt by paying the full job-launch cost,
// which is why the paper measures Restart recovery as roughly an order of
// magnitude slower than online recovery (16x Reinit, 2-3x ULFM on average).
//
// Failure detection goes through the shared internal/detect subsystem.
// The preset is the Launcher strategy — the waitpid/SIGCHLD chain sees the
// death instantly and the launcher reacts DetectDelay later. Under an
// in-band detector (ring/tree) the launcher is notified at the detector's
// confirmation instead, so detection latency and heartbeat interference
// become measurable for this design too.
package restart

import (
	"match/internal/detect"
	"match/internal/mpi"
	"match/internal/obs"
	"match/internal/simnet"
	"match/internal/trace"
)

// Config is the job-launcher cost model.
type Config struct {
	// DetectDelay is the time for the launcher to notice a dead rank
	// (waitpid on the orted/slurmstepd chain). It applies only under the
	// Launcher detection preset; an in-band detector replaces it with its
	// own confirmation latency.
	DetectDelay simnet.Time
	// TeardownDelay covers killing surviving ranks and cleaning up.
	TeardownDelay simnet.Time
	// LaunchBase is the fixed redeployment cost (allocation handshake,
	// binary broadcast, wire-up).
	LaunchBase simnet.Time
	// LaunchPerProc is the per-rank start cost (fork/exec, MPI_Init
	// wire-up grows with job size).
	LaunchPerProc simnet.Time
	// MaxRelaunches bounds restart loops (safety against repeated failure).
	MaxRelaunches int
	// Detect overrides the failure-detection strategy (ablation). The zero
	// value keeps the instant launcher preset.
	Detect detect.Config
	// OnLaunch, when set, is invoked on every job incarnation right after
	// launch (the harness uses it to install per-run job knobs). Runtime
	// wiring, not configuration: excluded from serialization and hashing.
	OnLaunch func(*mpi.Job) `json:"-"`
}

// Resolved returns the configuration with every zero cost field replaced
// by its calibrated default — exactly the fill Supervise performs.
// Canonicalization (core.CellKey) hashes the resolved form, so an empty
// Config and an explicit DefaultConfig() are the same cache entry.
func (c Config) Resolved() Config {
	def := DefaultConfig()
	if c.DetectDelay == 0 {
		c.DetectDelay = def.DetectDelay
	}
	if c.TeardownDelay == 0 {
		c.TeardownDelay = def.TeardownDelay
	}
	if c.LaunchBase == 0 {
		c.LaunchBase = def.LaunchBase
	}
	if c.LaunchPerProc == 0 {
		c.LaunchPerProc = def.LaunchPerProc
	}
	if c.MaxRelaunches == 0 {
		c.MaxRelaunches = def.MaxRelaunches
	}
	return c
}

// DefaultConfig reflects typical mpirun redeployment costs on a cluster of
// the paper's scale.
func DefaultConfig() Config {
	return Config{
		DetectDelay:   500 * simnet.Millisecond,
		TeardownDelay: 500 * simnet.Millisecond,
		LaunchBase:    5 * simnet.Second,
		LaunchPerProc: 4 * simnet.Millisecond,
		MaxRelaunches: 8,
	}
}

// DetectPreset is Restart's detection model: the launcher's own SIGCHLD
// chain, i.e. instant out-of-band detection.
func (c Config) DetectPreset() detect.Config { return detect.LauncherConfig() }

// Recovery records one job restart.
type Recovery struct {
	FailedAt    simnet.Time
	DetectedAt  simnet.Time // when the detector confirmed the failure
	AbortedAt   simnet.Time
	RelaunchAt  simnet.Time // when the new job's ranks begin executing
	FailedRanks []int
}

// Duration is the MPI recovery time: from the failure to the moment the
// redeployed ranks start running again.
func (r Recovery) Duration() simnet.Time { return r.RelaunchAt - r.FailedAt }

// Supervisor relaunches a job until it completes without a failure.
type Supervisor struct {
	cluster *simnet.Cluster
	cfg     Config
	dcfg    detect.Config
	n       int
	nodes   []int
	main    func(*mpi.Rank)

	// Jobs lists every launched incarnation, newest last.
	Jobs []*mpi.Job
	// Detectors lists the per-incarnation failure detectors, parallel to
	// Jobs (the harness sums their confirmed failures' latencies).
	Detectors []detect.Detector
	// Recoveries lists the restarts performed.
	Recoveries []Recovery
	// GaveUp is set when MaxRelaunches was exhausted.
	GaveUp bool

	restarting bool
	exitedOK   int
	done       bool
}

// Supervise launches an n-rank job running main under restart supervision
// and returns the supervisor; drive the cluster's scheduler to completion
// afterwards. Block placement mirrors mpi.Launch. An invalid explicit
// detector configuration panics; validate with detect.Config.Validate
// (core.Run does) before constructing.
func Supervise(c *simnet.Cluster, cfg Config, n int, startDelay simnet.Time, main func(*mpi.Rank)) *Supervisor {
	cfg = cfg.Resolved()
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i * c.NumNodes() / n
	}
	s := &Supervisor{cluster: c, cfg: cfg, n: n, nodes: nodes, main: main}
	s.dcfg = detect.Resolve(cfg.Detect, cfg.DetectPreset())
	s.launch(startDelay)
	return s
}

// Done reports whether a job incarnation completed with every rank exiting
// normally.
func (s *Supervisor) Done() bool { return s.done }

// CurrentJob returns the newest incarnation.
func (s *Supervisor) CurrentJob() *mpi.Job { return s.Jobs[len(s.Jobs)-1] }

func (s *Supervisor) launch(delay simnet.Time) {
	s.restarting = false
	s.exitedOK = 0
	job := mpi.LaunchPlaced(s.cluster, s.nodes, delay, s.main)
	if s.cfg.OnLaunch != nil {
		s.cfg.OnLaunch(job)
	}
	s.Jobs = append(s.Jobs, job)
	for _, p := range job.World().Members() {
		p.SimProc().OnExit(func(sp *simnet.Proc) {
			if job == s.CurrentJob() && sp.Status() == simnet.ExitOK {
				s.exitedOK++
				if s.exitedOK == s.n {
					s.done = true
				}
			}
		})
	}
	det := detect.MustNew(s.dcfg, job, func(f detect.Failure) { s.onFailure(job, f) })
	det.SetWorld(job.World())
	s.Detectors = append(s.Detectors, det)
}

// onFailure reacts to a confirmed rank failure: the launcher aborts the
// job and redeploys it.
func (s *Supervisor) onFailure(job *mpi.Job, f detect.Failure) {
	if job != s.CurrentJob() || s.restarting || job.Aborted() {
		return // stale incarnation, or kills caused by our own teardown
	}
	s.restarting = true
	// One failure dooms the incarnation; stop confirming the teardown kills
	// that follow.
	s.Detectors[len(s.Detectors)-1].Stop()
	failedRank := job.World().RankOf(f.GID)
	// Under the launcher preset the waitpid chain needs DetectDelay to act;
	// an in-band detector has already paid its latency and notifies the
	// launcher at confirmation.
	delay := s.cfg.DetectDelay
	if s.dcfg.Kind != detect.Launcher {
		delay = 0
	}
	sched := s.cluster.Scheduler()
	sched.After(delay, func() {
		abortedAt := s.cluster.Now()
		job.Abort()
		if len(s.Recoveries) >= s.cfg.MaxRelaunches {
			s.GaveUp = true
			return
		}
		relaunchDelay := s.cfg.TeardownDelay + s.cfg.LaunchBase +
			simnet.Time(s.n)*s.cfg.LaunchPerProc
		s.Recoveries = append(s.Recoveries, Recovery{
			FailedAt:    f.FailedAt,
			DetectedAt:  f.DetectedAt,
			AbortedAt:   abortedAt,
			RelaunchAt:  abortedAt + relaunchDelay,
			FailedRanks: []int{failedRank},
		})
		s.cluster.Metrics().Inc(obs.CRepairs)
		if tr := s.cluster.Tracer(); tr.Wants(trace.CatRepair) {
			tr.Emit(trace.Span{Cat: trace.CatRepair, Rank: int32(failedRank),
				Job: tr.JobOf(job), Start: int64(abortedAt + relaunchDelay), Aux: 1})
		}
		s.launch(relaunchDelay)
	})
}
