package ulfm

import (
	"fmt"

	"match/internal/mpi"
	"match/internal/obs"
	"match/internal/simnet"
	"match/internal/trace"
)

// CommRevoke is MPIX_Comm_revoke: reliably propagate revocation to every
// member, interrupting all pending communication on the communicator.
// Idempotent; the first caller pays the flood.
func (rt *Runtime) CommRevoke(r *mpi.Rank, c *mpi.Comm) {
	if c.Revoked() {
		return
	}
	cl := rt.job.Cluster()
	now := r.Now()
	// Reliable flood: log2(P) forwarding levels of small control messages,
	// each consuming NIC time on the forwarding nodes.
	levels := log2ceil(c.Size())
	for _, m := range c.AliveMembers() {
		cl.SendArrival(r.Process().NodeID(), m.NodeID(), 32, now)
	}
	r.Compute(rt.cfg.RevokeHop * simnet.Time(levels))
	c.Revoke()
}

// CommShrink is MPIX_Comm_shrink: build a communicator containing only the
// surviving members, agreeing on the failed set on the way. All survivors
// must call it. The daemon-side group rebuild is charged per rank.
func (rt *Runtime) CommShrink(r *mpi.Rank, c *mpi.Comm) (*mpi.Comm, error) {
	survivors := c.AliveMembers()
	key := fmt.Sprintf("ulfm-shrink/%d", c.Ctx())
	shrunk := rt.job.SubComm(key, survivors)
	// Daemon-side bookkeeping: grows linearly with job size.
	r.Compute(rt.cfg.ShrinkBase + rt.cfg.ShrinkPerRank*simnet.Time(c.Size()))
	// Agree on the failed-rank bitmask (real payload, O(P) bits).
	words := (c.Size() + 63) / 64
	mask := make([]int64, words)
	for _, fr := range c.FailedMembers() {
		mask[fr/64] |= 1 << (fr % 64)
	}
	agreed, err := rt.agree(r, shrunk, mask)
	if err != nil {
		return nil, fmt.Errorf("ulfm: shrink agreement: %w", err)
	}
	_ = agreed
	return shrunk, nil
}

// agree is the fault-tolerant agreement core: an all-reduce of the value
// (bitwise OR) plus the multi-round cost the ERA agreement pays.
func (rt *Runtime) agree(r *mpi.Rank, c *mpi.Comm, val []int64) ([]int64, error) {
	r.Compute(rt.cfg.AgreeRound * simnet.Time(log2ceil(c.Size())))
	return mpi.AllreduceI64(r, c, val, mpi.OpBOr)
}

// CommAgree is MPIX_Comm_agree on a single flag value.
func (rt *Runtime) CommAgree(r *mpi.Rank, c *mpi.Comm, flag int64) (int64, error) {
	out, err := rt.agree(r, c, []int64{flag})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// CommSpawn is MPI_Comm_spawn for replacement processes: the root of the
// shrunken communicator launches one replacement per failed rank, on the
// failed rank's node, running the runtime's replacement entry. Returns the
// replacements indexed by failed world rank. Non-roots return nil.
func (rt *Runtime) CommSpawn(r *mpi.Rank, shrunk *mpi.Comm, world *mpi.Comm) map[int]*mpi.Process {
	if r.Rank(shrunk) != 0 {
		return nil
	}
	cl := rt.job.Cluster()
	repls := make(map[int]*mpi.Process)
	for _, fr := range world.FailedMembers() {
		failed := world.Member(fr)
		repl := rt.job.AddProcess(failed.NodeID(), nil)
		repls[fr] = repl
	}
	// Replacement bodies start after the spawn delay; their first act is to
	// synchronize on the repaired world (mirroring the survivors' merge
	// steps), then enter the resilient loop with restarted=true so they too
	// can survive later failures.
	for fr, repl := range repls {
		fr, repl := fr, repl
		sp := cl.StartProc(repl.NodeID(), rt.cfg.SpawnDelay, func(sp *simnet.Proc) {
			rr := mpi.Bind(rt.job, repl, sp)
			round := rt.rounds[world.Ctx()]
			nw := round.newWorld
			if err := rt.joinWorld(rr, nw); err != nil {
				rt.Errs = append(rt.Errs, fmt.Errorf("ulfm: replacement rank %d join: %w", fr, err))
				return
			}
			if err := rt.resilientLoop(rr, nw, true); err != nil {
				rt.Errs = append(rt.Errs, fmt.Errorf("ulfm: replacement rank %d: %w", fr, err))
			}
		})
		repl.SetSimProc(sp)
	}
	return repls
}

// joinWorld performs the new-world synchronization steps every member
// (survivor or replacement) executes in the same order: merge barrier,
// then the final agreement.
func (rt *Runtime) joinWorld(r *mpi.Rank, nw *mpi.Comm) error {
	if err := mpi.Barrier(r, nw); err != nil {
		return err
	}
	_, err := rt.CommAgree(r, nw, 1)
	return err
}

// RepairWorld composes the paper's Figure 3 error-handler sequence:
// revoke the broken world, shrink to survivors, spawn replacements, merge
// into a same-size world (failed slots refilled), and agree. Every
// survivor must call it with the same broken communicator; replacements
// are driven by the runtime. Returns the repaired world.
func (rt *Runtime) RepairWorld(r *mpi.Rank, world *mpi.Comm) (*mpi.Comm, error) {
	round, ok := rt.rounds[world.Ctx()]
	if !ok {
		round = &repairRound{}
		// Record failure timing for the recovery-time breakdown, as the
		// detector saw it: a confirmed failure carries its exact record; one
		// still inside its observation window projects confirmation at the
		// detector's timeout.
		for _, fr := range world.FailedMembers() {
			gid := world.Member(fr).GID()
			if f, seen := rt.det.FailureOf(gid); seen && (round.failedAt == 0 || f.FailedAt < round.failedAt) {
				round.failedAt = f.FailedAt
				round.detected = f.DetectedAt
			} else if t, seen := rt.det.ObservedAt(gid); seen && (round.failedAt == 0 || t < round.failedAt) {
				round.failedAt = t
				round.detected = t + rt.det.Config().DetectTimeout
			}
		}
		if round.failedAt == 0 {
			round.failedAt = r.Now()
			round.detected = r.Now()
		}
		rt.rounds[world.Ctx()] = round
	}

	// 1. Revoke: interrupt all pending communication on the broken world.
	rt.CommRevoke(r, world)

	// 2. Shrink: survivors only.
	shrunk, err := rt.CommShrink(r, world)
	if err != nil {
		return nil, err
	}

	// 3. Spawn (root of the shrunken comm) and build the merged world:
	// original ranking with failed slots refilled by replacements.
	if r.Rank(shrunk) == 0 && round.newWorld == nil {
		repls := rt.CommSpawn(r, shrunk, world)
		members := append([]*mpi.Process(nil), world.Members()...)
		for fr, repl := range repls {
			members[fr] = repl
		}
		round.newWorld = rt.job.NewComm(members)
	}
	// Publish the new world to all survivors: a real broadcast over the
	// shrunken communicator (root already knows it; others learn from the
	// message, like receiving the intercomm handle).
	if _, err := mpi.Bcast(r, shrunk, 0, []byte{1}); err != nil {
		return nil, fmt.Errorf("ulfm: publishing repaired world: %w", err)
	}
	nw := round.newWorld
	if nw == nil {
		return nil, fmt.Errorf("ulfm: repaired world missing after publish")
	}

	// 4. Intercomm merge: daemon-side cost grows with job size; the
	// synchronization with replacements is the join barrier (it completes
	// only once the spawned processes are up, so SpawnDelay is on the
	// critical path, as in real deployments).
	r.Compute(rt.cfg.MergeBase + rt.cfg.MergePerRank*simnet.Time(world.Size()))
	if err := rt.joinWorld(r, nw); err != nil {
		return nil, err
	}

	if !round.completed {
		round.completed = true
		rt.Recoveries = append(rt.Recoveries, Recovery{
			FailedRanks: world.FailedMembers(),
			FailedAt:    round.failedAt,
			DetectedAt:  round.detected,
			CompletedAt: r.Now(),
		})
		rt.job.Cluster().Metrics().Inc(obs.CRepairs)
		if tr := rt.job.Cluster().Tracer(); tr.Wants(trace.CatRepair) {
			tr.Emit(trace.Span{Cat: trace.CatRepair, Rank: -1, Job: tr.JobOf(rt.job),
				Start: int64(r.Now()), Aux: int64(len(world.FailedMembers()))})
		}
	}
	rt.world = nw
	rt.det.SetWorld(nw) // heartbeat the repaired membership (replacements in, failed out)
	return nw, nil
}
