package ulfm

import (
	"fmt"
	"testing"

	"match/internal/fault"
	"match/internal/fti"
	"match/internal/mpi"
	"match/internal/simnet"
	"match/internal/storage"
)

func reference(n, iters int) float64 {
	total := 0.0
	for it := 0; it < iters; it++ {
		for rk := 0; rk < n; rk++ {
			total += float64(rk + it)
		}
	}
	return total
}

// resilientMain builds the Figure 3-style main: FTI on the (possibly
// repaired) world, iterate with injection and checkpoints, propagate MPI
// errors up so RunResilient can repair.
func resilientMain(st *storage.System, execID string, iters, stride int,
	inj *fault.Injector, sums []float64) func(*mpi.Rank, *mpi.Comm, bool) error {
	return func(r *mpi.Rank, world *mpi.Comm, restarted bool) error {
		f, err := fti.Init(fti.Config{ExecID: execID}, r, world, st)
		if err != nil {
			return err
		}
		iter := 0
		sum := 0.0
		f.Protect(0, fti.Int{P: &iter})
		f.Protect(1, fti.F64{P: &sum})
		if f.Status() != fti.StatusFresh {
			if err := f.Recover(); err != nil {
				return err
			}
		}
		for ; iter < iters; iter++ {
			inj.MaybeFail(r, world, iter)
			if iter%stride == 0 {
				if err := f.Checkpoint(int64(iter)); err != nil {
					return err
				}
			}
			v, err := mpi.AllreduceF64Scalar(r, world, float64(r.Rank(world)+iter), mpi.OpSum)
			if err != nil {
				return err
			}
			sum += v
			r.Compute(simnet.Millisecond)
		}
		sums[r.Rank(world)] = sum
		return f.Finalize()
	}
}

func runULFM(t *testing.T, n, iters, stride int, plan fault.Plan, execID string) (*Runtime, []float64) {
	t.Helper()
	c := simnet.NewCluster(simnet.Config{Nodes: 4})
	c.Scheduler().SetDeadline(30 * 60 * simnet.Second)
	st := storage.New(c, storage.Config{})
	inj := fault.NewInjector(plan)
	sums := make([]float64, n)
	main := resilientMain(st, execID, iters, stride, inj, sums)
	var rt *Runtime
	job := mpi.Launch(c, n, 0, func(r *mpi.Rank) {
		if err := rt.RunResilient(r); err != nil {
			t.Errorf("rank: %v", err)
		}
	})
	rt = NewRuntime(job, Config{}, main)
	c.Run()
	for _, e := range rt.Errs {
		t.Errorf("replacement error: %v", e)
	}
	return rt, sums
}

func TestULFMNoFailurePassesThrough(t *testing.T) {
	rt, sums := runULFM(t, 4, 12, 3, fault.Plan{}, "ulfm-nofail")
	want := reference(4, 12)
	for i, s := range sums {
		if s != want {
			t.Fatalf("rank %d sum = %v, want %v", i, s, want)
		}
	}
	if len(rt.Recoveries) != 0 {
		t.Fatalf("unexpected recoveries: %+v", rt.Recoveries)
	}
}

func TestULFMRepairsProcessFailure(t *testing.T) {
	plan := fault.Plan{Enabled: true, TargetRank: 2, TargetIter: 7}
	rt, sums := runULFM(t, 4, 12, 3, plan, "ulfm-fail")
	want := reference(4, 12)
	for i, s := range sums {
		if s != want {
			t.Fatalf("rank %d sum = %v, want %v", i, s, want)
		}
	}
	if len(rt.Recoveries) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(rt.Recoveries))
	}
	rec := rt.Recoveries[0]
	if len(rec.FailedRanks) != 1 || rec.FailedRanks[0] != 2 {
		t.Fatalf("failed ranks %v", rec.FailedRanks)
	}
	if rec.Duration() <= 0 {
		t.Fatal("non-positive recovery duration")
	}
	// ULFM recovery pays detection + revoke + shrink + spawn + merge +
	// agree: with defaults this lands in whole seconds.
	if rec.Duration() < simnet.Second {
		t.Fatalf("ULFM recovery %v suspiciously cheap", rec.Duration())
	}
}

// ULFM recovery must grow with scale (shrink/merge are O(P); agreement is
// O(log P) rounds) — the paper's Figure 7 trend.
func TestULFMRecoveryGrowsWithScale(t *testing.T) {
	var durs []simnet.Time
	for _, n := range []int{4, 16} {
		plan := fault.Plan{Enabled: true, TargetRank: 1, TargetIter: 5}
		rt, _ := runULFM(t, n, 10, 3, plan, fmt.Sprintf("ulfm-scale-%d", n))
		if len(rt.Recoveries) != 1 {
			t.Fatalf("n=%d: recoveries = %d", n, len(rt.Recoveries))
		}
		durs = append(durs, rt.Recoveries[0].Duration())
	}
	if durs[1] <= durs[0] {
		t.Fatalf("recovery did not grow with scale: %v -> %v", durs[0], durs[1])
	}
}

func TestULFMFailureDuringCheckpointCommit(t *testing.T) {
	// Kill on a checkpoint iteration: survivors block inside the commit
	// allreduce until detection, then must unwind and repair.
	plan := fault.Plan{Enabled: true, TargetRank: 0, TargetIter: 6}
	rt, sums := runULFM(t, 4, 12, 3, plan, "ulfm-ckptfail")
	want := reference(4, 12)
	for i, s := range sums {
		if s != want {
			t.Fatalf("rank %d sum = %v, want %v", i, s, want)
		}
	}
	if len(rt.Recoveries) != 1 {
		t.Fatalf("recoveries = %d", len(rt.Recoveries))
	}
}

func TestULFMAppliesRuntimeOverheads(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	job := mpi.Launch(c, 2, 0, func(r *mpi.Rank) {})
	rt := NewRuntime(job, Config{}, func(*mpi.Rank, *mpi.Comm, bool) error { return nil })
	if job.PerOpOverhead == 0 || job.DeliveryFactor == 0 {
		t.Fatal("runtime did not install amended-interface overheads")
	}
	rt.Stop()
	c.Run()
}

func TestCommRevokePrimitives(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	var rt *Runtime
	job := mpi.Launch(c, 4, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		if r.Rank(w) == 0 {
			rt.CommRevoke(r, w)
			if !w.Revoked() {
				t.Error("revoke did not mark the comm")
			}
			rt.CommRevoke(r, w) // idempotent
		} else {
			_, err := mpi.Recv(r, w, 0, 1)
			if !IsFailureError(err) {
				t.Errorf("blocked recv after revoke: %v", err)
			}
		}
	})
	rt = NewRuntime(job, Config{}, nil)
	c.Run()
	rt.Stop()
}

func TestCommShrinkDropsFailed(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	c.Scheduler().SetDeadline(10 * 60 * simnet.Second)
	var rt *Runtime
	sizes := make([]int, 4)
	job := mpi.Launch(c, 4, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		if r.Rank(w) == 3 {
			r.Die()
		}
		// Give the detector time to confirm, then shrink.
		r.Sim().Sleep(simnet.Second)
		sh, err := rt.CommShrink(r, w)
		if err != nil {
			t.Errorf("shrink: %v", err)
			return
		}
		sizes[r.Rank(w)] = sh.Size()
		if got := r.Rank(sh); got != r.Rank(w) {
			t.Errorf("rank changed in shrink: %d -> %d", r.Rank(w), got)
		}
	})
	rt = NewRuntime(job, Config{}, nil)
	c.Run()
	for i := 0; i < 3; i++ {
		if sizes[i] != 3 {
			t.Fatalf("rank %d shrunk size = %d, want 3", i, sizes[i])
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 64: 6, 512: 9, 513: 10}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Fatalf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
