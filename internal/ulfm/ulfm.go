// Package ulfm implements User-Level Fault Mitigation (Bland et al.):
// MPIX-style communicator revocation, shrink, replacement spawning,
// intercommunicator merge, and fault-tolerant agreement, plus the runtime
// side — a ring heartbeat failure detector (Bosilca et al.) and the
// amended, failure-checking communication path.
//
// The package provides both the five ULFM primitives the paper describes
// (CommRevoke, CommShrink, CommSpawn, IntercommMerge, CommAgree) and the
// composed global non-shrinking recovery the paper implements on top of
// them in its Figure 3 (RepairWorld / RunResilient).
//
// Cost model: ULFM recovery executes real protocol steps over the
// simulated network, and the expensive parts (daemon-side shrink
// bookkeeping, agreement rounds, respawn) carry explicit time constants
// taken from the ULFM literature's measured magnitudes. Membership
// payloads are O(P) bytes and agreement runs O(log P) rounds, so recovery
// time grows with scale — the trend the paper reports — while Reinit's
// runtime-internal reset does not.
package ulfm

import (
	"errors"
	"fmt"
	"math/bits"

	"match/internal/mpi"
	"match/internal/simnet"
)

// Config tunes the ULFM runtime.
type Config struct {
	// HeartbeatPeriod is the ring failure detector's emission period.
	HeartbeatPeriod simnet.Time
	// HeartbeatBytes is the size of one heartbeat message on the wire.
	HeartbeatBytes int
	// DetectTimeout is the observation window before a silent peer is
	// declared dead.
	DetectTimeout simnet.Time
	// PerOpOverhead is the amended-interface cost added to every
	// point-to-point operation while ULFM is active.
	PerOpOverhead simnet.Time
	// DeliveryFactor inflates message flight time by this fraction,
	// modeling the interposed progress engine (revoke checks, failure
	// piggybacking) — the source of ULFM's application slowdown, which
	// grows with communication share.
	DeliveryFactor float64
	// InterferenceSteal is per-process CPU time stolen per heartbeat
	// period by runtime-level detector collectives, scaled by log2(P).
	InterferenceSteal simnet.Time

	// RevokeHop is the per-tree-level cost of reliably flooding a revoke.
	RevokeHop simnet.Time
	// ShrinkBase + ShrinkPerRank*P is the daemon-side cost of rebuilding
	// the process group during MPIX_Comm_shrink.
	ShrinkBase    simnet.Time
	ShrinkPerRank simnet.Time
	// AgreeRound is the per-round cost of the fault-tolerant agreement
	// (log2(P) rounds per agreement).
	AgreeRound simnet.Time
	// SpawnDelay is fork/exec plus MPI wire-up of a replacement process.
	SpawnDelay simnet.Time
	// MergeBase + MergePerRank*P is the intercommunicator merge cost.
	MergeBase    simnet.Time
	MergePerRank simnet.Time
}

// DefaultConfig holds the calibrated cost model (see DESIGN.md §5/A4 for
// the ablation that varies these).
func DefaultConfig() Config {
	return Config{
		HeartbeatPeriod:   100 * simnet.Millisecond,
		HeartbeatBytes:    64,
		DetectTimeout:     300 * simnet.Millisecond,
		PerOpOverhead:     2 * simnet.Microsecond,
		DeliveryFactor:    0.25,
		InterferenceSteal: 40 * simnet.Microsecond,
		RevokeHop:         10 * simnet.Millisecond,
		ShrinkBase:        300 * simnet.Millisecond,
		ShrinkPerRank:     5 * simnet.Millisecond,
		AgreeRound:        50 * simnet.Millisecond,
		SpawnDelay:        800 * simnet.Millisecond,
		MergeBase:         200 * simnet.Millisecond,
		MergePerRank:      2 * simnet.Millisecond,
	}
}

// Recovery records one completed world repair.
type Recovery struct {
	FailedRanks []int
	FailedAt    simnet.Time
	DetectedAt  simnet.Time
	CompletedAt simnet.Time
}

// Duration is the MPI recovery time for this event.
func (rec Recovery) Duration() simnet.Time { return rec.CompletedAt - rec.FailedAt }

// repairRound is the shared rendezvous state for repairing one revoked
// communicator (keyed by its context id).
type repairRound struct {
	newWorld  *mpi.Comm
	failedAt  simnet.Time
	detected  simnet.Time
	completed bool
}

// Runtime is the per-job ULFM runtime: detector plus repair coordination.
type Runtime struct {
	job *mpi.Job
	cfg Config
	// entry runs a spawned replacement rank once the repaired world is
	// ready; restarted is always true for replacements.
	entry func(r *mpi.Rank, world *mpi.Comm, restarted bool) error

	world     *mpi.Comm
	rounds    map[int]*repairRound
	firstSeen map[int]simnet.Time
	stopped   bool

	// Recoveries lists completed repairs.
	Recoveries []Recovery
	// Errs collects errors from replacement ranks.
	Errs []error
}

// NewRuntime activates ULFM on the job: installs the amended-interface
// overheads, starts the heartbeat detector, and returns the runtime.
// entry is the resilient main executed by spawned replacement ranks.
func NewRuntime(job *mpi.Job, cfg Config, entry func(*mpi.Rank, *mpi.Comm, bool) error) *Runtime {
	def := DefaultConfig()
	if cfg.HeartbeatPeriod == 0 {
		cfg.HeartbeatPeriod = def.HeartbeatPeriod
	}
	if cfg.HeartbeatBytes == 0 {
		cfg.HeartbeatBytes = def.HeartbeatBytes
	}
	if cfg.DetectTimeout == 0 {
		cfg.DetectTimeout = def.DetectTimeout
	}
	if cfg.PerOpOverhead == 0 {
		cfg.PerOpOverhead = def.PerOpOverhead
	}
	if cfg.DeliveryFactor == 0 {
		cfg.DeliveryFactor = def.DeliveryFactor
	}
	if cfg.InterferenceSteal == 0 {
		cfg.InterferenceSteal = def.InterferenceSteal
	}
	if cfg.RevokeHop == 0 {
		cfg.RevokeHop = def.RevokeHop
	}
	if cfg.ShrinkBase == 0 {
		cfg.ShrinkBase = def.ShrinkBase
	}
	if cfg.ShrinkPerRank == 0 {
		cfg.ShrinkPerRank = def.ShrinkPerRank
	}
	if cfg.AgreeRound == 0 {
		cfg.AgreeRound = def.AgreeRound
	}
	if cfg.SpawnDelay == 0 {
		cfg.SpawnDelay = def.SpawnDelay
	}
	if cfg.MergeBase == 0 {
		cfg.MergeBase = def.MergeBase
	}
	if cfg.MergePerRank == 0 {
		cfg.MergePerRank = def.MergePerRank
	}
	rt := &Runtime{
		job:       job,
		cfg:       cfg,
		entry:     entry,
		world:     job.World(),
		rounds:    make(map[int]*repairRound),
		firstSeen: make(map[int]simnet.Time),
	}
	job.PerOpOverhead = cfg.PerOpOverhead
	job.DeliveryFactor = cfg.DeliveryFactor
	job.Cluster().Scheduler().After(cfg.HeartbeatPeriod, rt.tick)
	return rt
}

// World returns the current (possibly repaired) world communicator.
func (rt *Runtime) World() *mpi.Comm { return rt.world }

// Stop halts the detector.
func (rt *Runtime) Stop() { rt.stopped = true }

// tick runs one heartbeat round: emit ring heartbeats (consuming NIC
// time), steal detector-collective time from every rank, and flag peers
// that have been silent past the timeout.
func (rt *Runtime) tick() {
	if rt.stopped {
		return
	}
	cl := rt.job.Cluster()
	now := cl.Now()
	members := rt.world.Members()
	steal := rt.interferencePerTick(len(members))
	allExited := true
	alive := rt.world.AliveMembers()
	for i, p := range alive {
		succ := alive[(i+1)%len(alive)]
		// Ring heartbeat: consumes sender NIC bandwidth.
		cl.SendArrival(p.NodeID(), succ.NodeID(), rt.cfg.HeartbeatBytes, now)
		rt.job.Steal(p.GID(), steal)
	}
	for _, p := range members {
		sp := p.SimProc()
		if sp == nil || !sp.Exited() {
			allExited = false
		}
		if !p.Failed() || rt.job.Detected(p.GID()) {
			continue
		}
		gid := p.GID()
		first, ok := rt.firstSeen[gid]
		if !ok {
			rt.firstSeen[gid] = now
			first = now
		}
		if now-first >= rt.cfg.DetectTimeout {
			// Failure confirmed: blocked operations involving this process
			// now raise MPIX_ERR_PROC_FAILED.
			rt.job.MarkDetected(gid)
		}
	}
	if allExited {
		return
	}
	cl.Scheduler().After(rt.cfg.HeartbeatPeriod, rt.tick)
}

func (rt *Runtime) interferencePerTick(p int) simnet.Time {
	return rt.cfg.InterferenceSteal * simnet.Time(log2ceil(p))
}

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// IsFailureError reports whether err is one of ULFM's recoverable error
// classes.
func IsFailureError(err error) bool {
	return errors.Is(err, mpi.ErrProcFailed) || errors.Is(err, mpi.ErrRevoked)
}

// RunResilient executes the runtime's resilient main (given to NewRuntime)
// in the setjmp-style loop of the paper's Figure 3: on a failure error, the
// world is repaired (revoke, shrink, spawn, merge, agree) and main
// re-enters with restarted=true; main's FTI recovery then rolls application
// state back to the last checkpoint.
func (rt *Runtime) RunResilient(r *mpi.Rank) error {
	return rt.resilientLoop(r, rt.world, false)
}

func (rt *Runtime) resilientLoop(r *mpi.Rank, world *mpi.Comm, restarted bool) error {
	for {
		err := rt.entry(r, world, restarted)
		if err == nil {
			return nil
		}
		if !IsFailureError(err) {
			return err
		}
		nw, rerr := rt.RepairWorld(r, world)
		if rerr != nil {
			return fmt.Errorf("ulfm: repair failed: %w", rerr)
		}
		world, restarted = nw, true
	}
}
