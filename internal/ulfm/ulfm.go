// Package ulfm implements User-Level Fault Mitigation (Bland et al.):
// MPIX-style communicator revocation, shrink, replacement spawning,
// intercommunicator merge, and fault-tolerant agreement, plus the runtime
// side — failure detection via the shared internal/detect subsystem
// (preset: the Bosilca-style ring heartbeat) and the amended,
// failure-checking communication path.
//
// The package provides both the five ULFM primitives the paper describes
// (CommRevoke, CommShrink, CommSpawn, IntercommMerge, CommAgree) and the
// composed global non-shrinking recovery the paper implements on top of
// them in its Figure 3 (RepairWorld / RunResilient).
//
// Cost model: ULFM recovery executes real protocol steps over the
// simulated network, and the expensive parts (daemon-side shrink
// bookkeeping, agreement rounds, respawn) carry explicit time constants
// taken from the ULFM literature's measured magnitudes. Membership
// payloads are O(P) bytes and agreement runs O(log P) rounds, so recovery
// time grows with scale — the trend the paper reports — while Reinit's
// runtime-internal reset does not.
package ulfm

import (
	"errors"
	"fmt"
	"math/bits"

	"match/internal/detect"
	"match/internal/mpi"
	"match/internal/simnet"
)

// Config tunes the ULFM runtime.
type Config struct {
	// HeartbeatPeriod is the ring failure detector's emission period.
	HeartbeatPeriod simnet.Time
	// HeartbeatBytes is the size of one heartbeat message on the wire.
	HeartbeatBytes int
	// DetectTimeout is the observation window before a silent peer is
	// declared dead.
	DetectTimeout simnet.Time
	// PerOpOverhead is the amended-interface cost added to every
	// point-to-point operation while ULFM is active.
	PerOpOverhead simnet.Time
	// DeliveryFactor inflates message flight time by this fraction,
	// modeling the interposed progress engine (revoke checks, failure
	// piggybacking) — the source of ULFM's application slowdown, which
	// grows with communication share.
	DeliveryFactor float64
	// InterferenceSteal is per-process CPU time stolen per heartbeat
	// period by runtime-level detector collectives, scaled by log2(P).
	InterferenceSteal simnet.Time

	// Detect overrides the failure-detection strategy entirely (ablation:
	// run ULFM recovery under a tree or instant launcher detector). The
	// zero value keeps the calibrated ring preset assembled from the four
	// heartbeat fields above.
	Detect detect.Config

	// RevokeHop is the per-tree-level cost of reliably flooding a revoke.
	RevokeHop simnet.Time
	// ShrinkBase + ShrinkPerRank*P is the daemon-side cost of rebuilding
	// the process group during MPIX_Comm_shrink.
	ShrinkBase    simnet.Time
	ShrinkPerRank simnet.Time
	// AgreeRound is the per-round cost of the fault-tolerant agreement
	// (log2(P) rounds per agreement).
	AgreeRound simnet.Time
	// SpawnDelay is fork/exec plus MPI wire-up of a replacement process.
	SpawnDelay simnet.Time
	// MergeBase + MergePerRank*P is the intercommunicator merge cost.
	MergeBase    simnet.Time
	MergePerRank simnet.Time
}

// DefaultConfig holds the calibrated cost model (see DESIGN.md §5/A4 for
// the ablation that varies these).
func DefaultConfig() Config {
	return Config{
		HeartbeatPeriod:   100 * simnet.Millisecond,
		HeartbeatBytes:    64,
		DetectTimeout:     300 * simnet.Millisecond,
		PerOpOverhead:     2 * simnet.Microsecond,
		DeliveryFactor:    0.25,
		InterferenceSteal: 40 * simnet.Microsecond,
		RevokeHop:         10 * simnet.Millisecond,
		ShrinkBase:        300 * simnet.Millisecond,
		ShrinkPerRank:     5 * simnet.Millisecond,
		AgreeRound:        50 * simnet.Millisecond,
		SpawnDelay:        800 * simnet.Millisecond,
		MergeBase:         200 * simnet.Millisecond,
		MergePerRank:      2 * simnet.Millisecond,
	}
}

// fillDefaults replaces zero fields with the calibrated defaults.
func (c *Config) fillDefaults() {
	def := DefaultConfig()
	if c.HeartbeatPeriod == 0 {
		c.HeartbeatPeriod = def.HeartbeatPeriod
	}
	if c.HeartbeatBytes == 0 {
		c.HeartbeatBytes = def.HeartbeatBytes
	}
	if c.DetectTimeout == 0 {
		c.DetectTimeout = def.DetectTimeout
	}
	if c.PerOpOverhead == 0 {
		c.PerOpOverhead = def.PerOpOverhead
	}
	if c.DeliveryFactor == 0 {
		c.DeliveryFactor = def.DeliveryFactor
	}
	if c.InterferenceSteal == 0 {
		c.InterferenceSteal = def.InterferenceSteal
	}
	if c.RevokeHop == 0 {
		c.RevokeHop = def.RevokeHop
	}
	if c.ShrinkBase == 0 {
		c.ShrinkBase = def.ShrinkBase
	}
	if c.ShrinkPerRank == 0 {
		c.ShrinkPerRank = def.ShrinkPerRank
	}
	if c.AgreeRound == 0 {
		c.AgreeRound = def.AgreeRound
	}
	if c.SpawnDelay == 0 {
		c.SpawnDelay = def.SpawnDelay
	}
	if c.MergeBase == 0 {
		c.MergeBase = def.MergeBase
	}
	if c.MergePerRank == 0 {
		c.MergePerRank = def.MergePerRank
	}
}

// Resolved returns the configuration with every zero field replaced by its
// calibrated default — the exact cost model a run of this configuration
// uses. Canonicalization (core.CellKey) hashes the resolved form, so an
// empty Config and an explicit DefaultConfig() are the same cache entry.
func (c Config) Resolved() Config {
	c.fillDefaults()
	return c
}

// DetectPreset is ULFM's calibrated detection model — the ring heartbeat —
// expressed as a detect.Config, with zero heartbeat fields filled from the
// calibrated defaults. core.Run resolves Config.Detect against this.
func (c Config) DetectPreset() detect.Config {
	c.fillDefaults()
	return detect.Config{
		Kind:              detect.Ring,
		HeartbeatPeriod:   c.HeartbeatPeriod,
		HeartbeatBytes:    c.HeartbeatBytes,
		DetectTimeout:     c.DetectTimeout,
		InterferenceSteal: c.InterferenceSteal,
	}
}

// Recovery records one completed world repair.
type Recovery struct {
	FailedRanks []int
	FailedAt    simnet.Time
	DetectedAt  simnet.Time
	CompletedAt simnet.Time
}

// Duration is the MPI recovery time for this event.
func (rec Recovery) Duration() simnet.Time { return rec.CompletedAt - rec.FailedAt }

// repairRound is the shared rendezvous state for repairing one revoked
// communicator (keyed by its context id).
type repairRound struct {
	newWorld  *mpi.Comm
	failedAt  simnet.Time
	detected  simnet.Time
	completed bool
}

// Runtime is the per-job ULFM runtime: detector plus repair coordination.
type Runtime struct {
	job *mpi.Job
	cfg Config
	det detect.Detector
	// entry runs a spawned replacement rank once the repaired world is
	// ready; restarted is always true for replacements.
	entry func(r *mpi.Rank, world *mpi.Comm, restarted bool) error

	world  *mpi.Comm
	rounds map[int]*repairRound

	// Recoveries lists completed repairs.
	Recoveries []Recovery
	// Errs collects errors from replacement ranks.
	Errs []error
}

// NewRuntime activates ULFM on the job: installs the amended-interface
// overheads, starts the failure detector (cfg.Detect, preset: the ring
// heartbeat), and returns the runtime. entry is the resilient main
// executed by spawned replacement ranks. An invalid explicit detector
// configuration panics; validate with detect.Config.Validate (core.Run
// does) before constructing.
func NewRuntime(job *mpi.Job, cfg Config, entry func(*mpi.Rank, *mpi.Comm, bool) error) *Runtime {
	cfg.fillDefaults()
	rt := &Runtime{
		job:    job,
		cfg:    cfg,
		entry:  entry,
		world:  job.World(),
		rounds: make(map[int]*repairRound),
	}
	job.PerOpOverhead = cfg.PerOpOverhead
	job.DeliveryFactor = cfg.DeliveryFactor
	// Confirmed failures become globally known: blocked operations
	// involving the process now raise MPIX_ERR_PROC_FAILED.
	rt.det = detect.MustNew(detect.Resolve(cfg.Detect, cfg.DetectPreset()), job,
		func(f detect.Failure) { job.MarkDetected(f.GID) })
	rt.det.SetWorld(rt.world)
	return rt
}

// World returns the current (possibly repaired) world communicator.
func (rt *Runtime) World() *mpi.Comm { return rt.world }

// Detector exposes the failure detector (the harness reads its confirmed
// failures for the detection-latency breakdown).
func (rt *Runtime) Detector() detect.Detector { return rt.det }

// Stop halts the detector.
func (rt *Runtime) Stop() { rt.det.Stop() }

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// IsFailureError reports whether err is one of ULFM's recoverable error
// classes.
func IsFailureError(err error) bool {
	return errors.Is(err, mpi.ErrProcFailed) || errors.Is(err, mpi.ErrRevoked)
}

// RunResilient executes the runtime's resilient main (given to NewRuntime)
// in the setjmp-style loop of the paper's Figure 3: on a failure error, the
// world is repaired (revoke, shrink, spawn, merge, agree) and main
// re-enters with restarted=true; main's FTI recovery then rolls application
// state back to the last checkpoint.
func (rt *Runtime) RunResilient(r *mpi.Rank) error {
	return rt.resilientLoop(r, rt.world, false)
}

func (rt *Runtime) resilientLoop(r *mpi.Rank, world *mpi.Comm, restarted bool) error {
	for {
		err := rt.entry(r, world, restarted)
		if err == nil {
			return nil
		}
		if !IsFailureError(err) {
			return err
		}
		nw, rerr := rt.RepairWorld(r, world)
		if rerr != nil {
			return fmt.Errorf("ulfm: repair failed: %w", rerr)
		}
		world, restarted = nw, true
	}
}
