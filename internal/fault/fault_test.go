package fault

import (
	"strings"
	"testing"

	"match/internal/mpi"
	"match/internal/simnet"
)

func TestNewPlanDeterministic(t *testing.T) {
	a := NewPlan(42, 64, 100, ProcessFailure)
	b := NewPlan(42, 64, 100, ProcessFailure)
	if a != b {
		t.Fatalf("same seed gave different plans: %+v vs %+v", a, b)
	}
	c := NewPlan(43, 64, 100, ProcessFailure)
	if a == c {
		t.Fatalf("different seeds gave identical plans (suspicious): %+v", a)
	}
}

// NewReplicatedPlan must target the same (rank, iteration) as NewPlan for
// the same seed — the property that keeps failures comparable across all
// four designs — and only then pick a replica within the target's group.
func TestNewReplicatedPlanMatchesNewPlan(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		base := NewPlan(seed, 16, 100, ProcessFailure)
		repl := NewReplicatedPlan(seed, 16, 100, ProcessFailure, func(int) int { return 2 })
		if repl.TargetRank != base.TargetRank || repl.TargetIter != base.TargetIter {
			t.Fatalf("seed %d: replicated plan targets (%d,%d), base (%d,%d)",
				seed, repl.TargetRank, repl.TargetIter, base.TargetRank, base.TargetIter)
		}
		if repl.TargetReplica < 0 || repl.TargetReplica >= 2 {
			t.Fatalf("seed %d: replica %d out of range", seed, repl.TargetReplica)
		}
		// An unreplicated target keeps replica 0 (the fallback-path case).
		solo := NewReplicatedPlan(seed, 16, 100, ProcessFailure, func(int) int { return 1 })
		if solo.TargetReplica != 0 {
			t.Fatalf("seed %d: degree-1 target got replica %d", seed, solo.TargetReplica)
		}
	}
	// Some seed must pick a non-primary replica, or the draw is broken.
	sawShadow := false
	for seed := int64(0); seed < 30; seed++ {
		if NewReplicatedPlan(seed, 16, 100, ProcessFailure, func(int) int { return 2 }).TargetReplica == 1 {
			sawShadow = true
		}
	}
	if !sawShadow {
		t.Fatal("no seed ever targeted a shadow replica")
	}
}

// A k=1 schedule must be the legacy single-failure draw, for both the
// plain and the replicated variants: this is what keeps every calibrated
// single-failure result byte-identical under the campaign refactor.
func TestScheduleK1EqualsLegacyPlan(t *testing.T) {
	degree2 := func(int) int { return 2 }
	for seed := int64(0); seed < 40; seed++ {
		p := NewPlan(seed, 64, 100, ProcessFailure)
		s := NewSchedule(seed, 1, 64, 100, ProcessFailure)
		if len(s.Events) != 1 {
			t.Fatalf("seed %d: k=1 schedule has %d events", seed, len(s.Events))
		}
		ev := s.Events[0]
		if ev.TargetRank != p.TargetRank || ev.TargetIter != p.TargetIter ||
			ev.Kind != p.Kind || ev.TargetReplica != 0 || ev.AfterRecoveries != 0 {
			t.Fatalf("seed %d: schedule event %+v != plan %+v", seed, ev, p)
		}
		rp := NewReplicatedPlan(seed, 64, 100, ProcessFailure, degree2)
		rs := NewReplicatedSchedule(seed, 1, 64, 100, ProcessFailure, degree2)
		rev := rs.Events[0]
		if rev.TargetRank != rp.TargetRank || rev.TargetIter != rp.TargetIter ||
			rev.TargetReplica != rp.TargetReplica {
			t.Fatalf("seed %d: replicated schedule event %+v != plan %+v", seed, rev, rp)
		}
	}
}

// All four designs must see the identical logical failure sequence: the
// (rank, iteration) draws of a schedule must not depend on whether replica
// indexes were drawn alongside them, and the same seed must always yield
// the same schedule.
func TestScheduleIdenticalAcrossDesigns(t *testing.T) {
	degree2 := func(int) int { return 2 }
	for seed := int64(0); seed < 25; seed++ {
		for _, k := range []int{1, 2, 3, 5} {
			plain := NewSchedule(seed, k, 64, 100, ProcessFailure)
			again := NewSchedule(seed, k, 64, 100, ProcessFailure)
			repl := NewReplicatedSchedule(seed, k, 64, 100, ProcessFailure, degree2)
			if len(plain.Events) != k || len(repl.Events) != k {
				t.Fatalf("seed %d k %d: %d plain / %d replicated events",
					seed, k, len(plain.Events), len(repl.Events))
			}
			for i := range plain.Events {
				if plain.Events[i] != again.Events[i] {
					t.Fatalf("seed %d k %d: schedule not deterministic", seed, k)
				}
				if plain.Events[i].TargetRank != repl.Events[i].TargetRank ||
					plain.Events[i].TargetIter != repl.Events[i].TargetIter {
					t.Fatalf("seed %d k %d event %d: plain targets (%d,%d), replicated (%d,%d)",
						seed, k, i,
						plain.Events[i].TargetRank, plain.Events[i].TargetIter,
						repl.Events[i].TargetRank, repl.Events[i].TargetIter)
				}
				if r := repl.Events[i].TargetReplica; r < 0 || r >= 2 {
					t.Fatalf("seed %d k %d event %d: replica %d out of range", seed, k, i, r)
				}
			}
		}
	}
}

// Events land on distinct iterations so every event can fire even in the
// rollback-free replica design, which never revisits an iteration.
func TestScheduleDistinctIterations(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		s := NewSchedule(seed, 5, 64, 40, ProcessFailure)
		seen := map[int]bool{}
		for _, ev := range s.Events {
			if seen[ev.TargetIter] {
				t.Fatalf("seed %d: duplicate iteration %d in %v", seed, ev.TargetIter, s.Events)
			}
			seen[ev.TargetIter] = true
			if ev.TargetIter < 0 || ev.TargetIter >= 40 {
				t.Fatalf("seed %d: iteration %d out of range", seed, ev.TargetIter)
			}
		}
	}
	// Tiny loops: k equal to the whole iteration range still terminates and
	// covers distinct iterations.
	s := NewSchedule(3, 4, 8, 4, ProcessFailure)
	seen := map[int]bool{}
	for _, ev := range s.Events {
		if seen[ev.TargetIter] {
			t.Fatalf("duplicate iteration in exhaustive schedule %v", s.Events)
		}
		seen[ev.TargetIter] = true
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("3@40, 3@55:after=1:replica=1, 0@10:kind=node")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{TargetRank: 3, TargetIter: 40},
		{TargetRank: 3, TargetIter: 55, AfterRecoveries: 1, TargetReplica: 1},
		{TargetRank: 0, TargetIter: 10, Kind: NodeFailure},
	}
	if len(s.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(s.Events), len(want))
	}
	for i := range want {
		if s.Events[i] != want[i] {
			t.Fatalf("event %d: %+v, want %+v", i, s.Events[i], want[i])
		}
	}
	// The DSL round-trips through String.
	rt, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	for i := range want {
		if rt.Events[i] != want[i] {
			t.Fatalf("round-trip event %d: %+v, want %+v", i, rt.Events[i], want[i])
		}
	}
	if s, err := ParseSchedule(""); err != nil || s.Enabled() {
		t.Fatalf("empty spec: %v %v", s, err)
	}
	for _, bad := range []string{"x@1", "1@", "1@2:extra", "1@2:after=-1", "1@2:kind=meteor", "-1@2"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted", bad)
		}
	}
}

// A multi-event schedule fires each event exactly once, and events gated
// by AfterRecoveries stay dormant until the recovery count reaches their
// threshold.
func TestInjectorMultiFire(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	recoveries := 0
	in := NewScheduleInjector(Schedule{Events: []Event{
		{TargetRank: 1, TargetIter: 2},
		{TargetRank: 3, TargetIter: 4},
		{TargetRank: 0, TargetIter: 1, AfterRecoveries: 1},
	}})
	in.Recoveries = func() int { return recoveries }
	deaths := make([]int, 4) // last iter each rank completed
	j := mpi.Launch(c, 4, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		for it := 0; it < 6; it++ {
			in.MaybeFail(r, w, it)
			deaths[r.Rank(w)] = it
			r.Sim().Sleep(simnet.Millisecond)
		}
	})
	c.Run()
	if got := in.FiredCount(); got != 2 {
		t.Fatalf("fired %d events, want 2 (gated event must stay dormant)", got)
	}
	if deaths[1] != 1 || deaths[3] != 3 {
		t.Fatalf("victims died at iters %d/%d, want 1/3", deaths[1], deaths[3])
	}
	if deaths[0] != 5 {
		t.Fatal("gated event fired with zero recoveries")
	}
	// "Recovery" happens; a relaunched rank 0 replays and now dies at 1.
	recoveries = 1
	r0survived := false
	c.StartProc(0, 0, func(sp *simnet.Proc) {
		r := mpi.Bind(j, j.World().Member(0), sp)
		for it := 0; it < 6; it++ {
			in.MaybeFail(r, j.World(), it)
		}
		r0survived = true
	})
	c.Run()
	if in.FiredCount() != 3 {
		t.Fatalf("fired %d events after recovery, want 3", in.FiredCount())
	}
	if r0survived {
		t.Fatal("rank 0 survived the armed AfterRecoveries event")
	}
}

func TestNewPlanBounds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := NewPlan(seed, 16, 100, ProcessFailure)
		if p.TargetRank < 0 || p.TargetRank >= 16 {
			t.Fatalf("rank %d out of range", p.TargetRank)
		}
		if p.TargetIter < 10 || p.TargetIter >= 90 {
			t.Fatalf("iter %d outside middle 80%%", p.TargetIter)
		}
	}
	// Tiny loops fall back to the whole range.
	p := NewPlan(1, 4, 1, ProcessFailure)
	if p.TargetIter != 0 {
		t.Fatalf("iter %d for 1-iteration loop", p.TargetIter)
	}
}

func TestInjectorKillsExactlyOnce(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	var log strings.Builder
	in := NewInjector(Plan{Enabled: true, TargetRank: 1, TargetIter: 3})
	in.Log = &log
	iterSeen := make([]int, 4)
	j := mpi.Launch(c, 4, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		for it := 0; it < 6; it++ {
			in.MaybeFail(r, w, it)
			iterSeen[r.Rank(w)] = it
			r.Sim().Sleep(simnet.Millisecond)
		}
	})
	c.Run()
	if !in.Fired() {
		t.Fatal("injector never fired")
	}
	if iterSeen[1] != 2 {
		t.Fatalf("rank 1 last completed iter %d, want 2 (killed at 3)", iterSeen[1])
	}
	for _, r := range []int{0, 2, 3} {
		if iterSeen[r] != 5 {
			t.Fatalf("rank %d did not finish (%d)", r, iterSeen[r])
		}
	}
	if !j.World().Member(1).Failed() {
		t.Fatal("rank 1 not marked failed")
	}
	if !strings.Contains(log.String(), "KILL rank 1") {
		t.Fatalf("missing kill log, got %q", log.String())
	}
	// Replay the iteration (as recovery does): must not fire again.
	survived := false
	c.StartProc(0, 0, func(sp *simnet.Proc) {
		r := mpi.Bind(j, j.World().Member(1), sp)
		_ = r
		survived = true
	})
	c.Run()
	if !survived {
		t.Fatal("post-fire rank did not run")
	}
}

func TestInjectorDisabled(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 1})
	in := NewInjector(Plan{Enabled: false, TargetRank: 0, TargetIter: 0})
	finished := false
	mpi.Launch(c, 1, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		in.MaybeFail(r, w, 0)
		finished = true
	})
	c.Run()
	if !finished {
		t.Fatal("disabled injector killed the rank")
	}
}

func TestNodeFailureKillsCoResidents(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	in := NewInjector(Plan{Enabled: true, Kind: NodeFailure, TargetRank: 0, TargetIter: 1})
	finished := make([]bool, 4)
	j := mpi.Launch(c, 4, 0, func(r *mpi.Rank) { // ranks 0,1 on node 0
		w := r.Job().World()
		for it := 0; it < 3; it++ {
			in.MaybeFail(r, w, it)
			r.Sim().Sleep(simnet.Millisecond)
		}
		finished[r.Rank(w)] = true
	})
	c.Run()
	_ = j
	if c.Node(0).Alive() {
		t.Fatal("node 0 still alive")
	}
	if finished[0] || finished[1] {
		t.Fatal("ranks on the failed node finished")
	}
	if !finished[2] || !finished[3] {
		t.Fatal("ranks on the surviving node did not finish")
	}
}
