package fault

import (
	"strings"
	"testing"

	"match/internal/mpi"
	"match/internal/simnet"
)

func TestNewPlanDeterministic(t *testing.T) {
	a := NewPlan(42, 64, 100, ProcessFailure)
	b := NewPlan(42, 64, 100, ProcessFailure)
	if a != b {
		t.Fatalf("same seed gave different plans: %+v vs %+v", a, b)
	}
	c := NewPlan(43, 64, 100, ProcessFailure)
	if a == c {
		t.Fatalf("different seeds gave identical plans (suspicious): %+v", a)
	}
}

// NewReplicatedPlan must target the same (rank, iteration) as NewPlan for
// the same seed — the property that keeps failures comparable across all
// four designs — and only then pick a replica within the target's group.
func TestNewReplicatedPlanMatchesNewPlan(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		base := NewPlan(seed, 16, 100, ProcessFailure)
		repl := NewReplicatedPlan(seed, 16, 100, ProcessFailure, func(int) int { return 2 })
		if repl.TargetRank != base.TargetRank || repl.TargetIter != base.TargetIter {
			t.Fatalf("seed %d: replicated plan targets (%d,%d), base (%d,%d)",
				seed, repl.TargetRank, repl.TargetIter, base.TargetRank, base.TargetIter)
		}
		if repl.TargetReplica < 0 || repl.TargetReplica >= 2 {
			t.Fatalf("seed %d: replica %d out of range", seed, repl.TargetReplica)
		}
		// An unreplicated target keeps replica 0 (the fallback-path case).
		solo := NewReplicatedPlan(seed, 16, 100, ProcessFailure, func(int) int { return 1 })
		if solo.TargetReplica != 0 {
			t.Fatalf("seed %d: degree-1 target got replica %d", seed, solo.TargetReplica)
		}
	}
	// Some seed must pick a non-primary replica, or the draw is broken.
	sawShadow := false
	for seed := int64(0); seed < 30; seed++ {
		if NewReplicatedPlan(seed, 16, 100, ProcessFailure, func(int) int { return 2 }).TargetReplica == 1 {
			sawShadow = true
		}
	}
	if !sawShadow {
		t.Fatal("no seed ever targeted a shadow replica")
	}
}

func TestNewPlanBounds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := NewPlan(seed, 16, 100, ProcessFailure)
		if p.TargetRank < 0 || p.TargetRank >= 16 {
			t.Fatalf("rank %d out of range", p.TargetRank)
		}
		if p.TargetIter < 10 || p.TargetIter >= 90 {
			t.Fatalf("iter %d outside middle 80%%", p.TargetIter)
		}
	}
	// Tiny loops fall back to the whole range.
	p := NewPlan(1, 4, 1, ProcessFailure)
	if p.TargetIter != 0 {
		t.Fatalf("iter %d for 1-iteration loop", p.TargetIter)
	}
}

func TestInjectorKillsExactlyOnce(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	var log strings.Builder
	in := NewInjector(Plan{Enabled: true, TargetRank: 1, TargetIter: 3})
	in.Log = &log
	iterSeen := make([]int, 4)
	j := mpi.Launch(c, 4, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		for it := 0; it < 6; it++ {
			in.MaybeFail(r, w, it)
			iterSeen[r.Rank(w)] = it
			r.Sim().Sleep(simnet.Millisecond)
		}
	})
	c.Run()
	if !in.Fired() {
		t.Fatal("injector never fired")
	}
	if iterSeen[1] != 2 {
		t.Fatalf("rank 1 last completed iter %d, want 2 (killed at 3)", iterSeen[1])
	}
	for _, r := range []int{0, 2, 3} {
		if iterSeen[r] != 5 {
			t.Fatalf("rank %d did not finish (%d)", r, iterSeen[r])
		}
	}
	if !j.World().Member(1).Failed() {
		t.Fatal("rank 1 not marked failed")
	}
	if !strings.Contains(log.String(), "KILL rank 1") {
		t.Fatalf("missing kill log, got %q", log.String())
	}
	// Replay the iteration (as recovery does): must not fire again.
	survived := false
	c.StartProc(0, 0, func(sp *simnet.Proc) {
		r := mpi.Bind(j, j.World().Member(1), sp)
		_ = r
		survived = true
	})
	c.Run()
	if !survived {
		t.Fatal("post-fire rank did not run")
	}
}

func TestInjectorDisabled(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 1})
	in := NewInjector(Plan{Enabled: false, TargetRank: 0, TargetIter: 0})
	finished := false
	mpi.Launch(c, 1, 0, func(r *mpi.Rank) {
		w := r.Job().World()
		in.MaybeFail(r, w, 0)
		finished = true
	})
	c.Run()
	if !finished {
		t.Fatal("disabled injector killed the rank")
	}
}

func TestNodeFailureKillsCoResidents(t *testing.T) {
	c := simnet.NewCluster(simnet.Config{Nodes: 2})
	in := NewInjector(Plan{Enabled: true, Kind: NodeFailure, TargetRank: 0, TargetIter: 1})
	finished := make([]bool, 4)
	j := mpi.Launch(c, 4, 0, func(r *mpi.Rank) { // ranks 0,1 on node 0
		w := r.Job().World()
		for it := 0; it < 3; it++ {
			in.MaybeFail(r, w, it)
			r.Sim().Sleep(simnet.Millisecond)
		}
		finished[r.Rank(w)] = true
	})
	c.Run()
	_ = j
	if c.Node(0).Alive() {
		t.Fatal("node 0 still alive")
	}
	if finished[0] || finished[1] {
		t.Fatal("ranks on the failed node finished")
	}
	if !finished[2] || !finished[3] {
		t.Fatal("ranks on the surviving node did not finish")
	}
}
