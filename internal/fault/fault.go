// Package fault emulates MPI process and node failures by fault injection,
// following the paper's Figure 4: a SIGTERM-style kill of one randomly
// selected rank at one randomly selected iteration of the main computation
// loop. The selection is seeded so every fault-tolerance design sees the
// identical failure, which is what makes the designs comparable.
package fault

import (
	"fmt"
	"io"
	"math/rand"

	"match/internal/mpi"
)

// Kind selects what fails.
type Kind int

const (
	// ProcessFailure kills a single MPI process (the paper's experiments).
	ProcessFailure Kind = iota
	// NodeFailure kills a whole node and every process on it.
	NodeFailure
)

func (k Kind) String() string {
	if k == NodeFailure {
		return "node"
	}
	return "process"
}

// Plan describes one injected failure.
type Plan struct {
	Enabled    bool
	Kind       Kind
	TargetRank int
	TargetIter int
	// TargetReplica selects which replica of TargetRank dies when the rank
	// is backed by a replica group (ReplicaFTI). Zero — the primary — for
	// the unreplicated designs, so their plans are unchanged.
	TargetReplica int
}

// NewPlan draws a random (rank, iteration) target, like the paper's
// SelectedRank/SelectedIter. maxIter should be the application's main-loop
// trip count; the iteration is drawn from its middle 80% so the failure
// lands mid-execution rather than trivially at the start or end.
func NewPlan(seed int64, nranks, maxIter int, kind Kind) Plan {
	rng := rand.New(rand.NewSource(seed))
	return newPlan(rng, nranks, maxIter, kind)
}

// NewReplicatedPlan draws rank and iteration exactly as NewPlan does for
// the same seed (so every design sees the identical logical failure), then
// additionally draws which replica of the target rank dies. degreeOf
// reports the replica-group size of a logical rank; unreplicated targets
// keep replica 0, which is how partial replication (ReplicaFactor < 1)
// exercises the checkpoint-only fallback path.
func NewReplicatedPlan(seed int64, nranks, maxIter int, kind Kind, degreeOf func(rank int) int) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := newPlan(rng, nranks, maxIter, kind)
	if d := degreeOf(p.TargetRank); d > 1 {
		p.TargetReplica = rng.Intn(d)
	}
	return p
}

func newPlan(rng *rand.Rand, nranks, maxIter int, kind Kind) Plan {
	lo := maxIter / 10
	hi := maxIter - maxIter/10
	if hi <= lo {
		lo, hi = 0, maxIter
	}
	iter := lo
	if hi > lo {
		iter = lo + rng.Intn(hi-lo)
	}
	return Plan{
		Enabled:    true,
		Kind:       kind,
		TargetRank: rng.Intn(nranks),
		TargetIter: iter,
	}
}

// Injector fires a Plan at most once per run, shared by all ranks of a job
// (and across restarts of the job, so the failure happens exactly once).
type Injector struct {
	Plan  Plan
	Log   io.Writer // optional: receives the paper's "KILL rank %d" line
	fired bool
}

// NewInjector wraps a plan.
func NewInjector(p Plan) *Injector { return &Injector{Plan: p} }

// Fired reports whether the failure has been injected.
func (in *Injector) Fired() bool { return in != nil && in.fired }

// MaybeFail is called by every rank at the top of every main-loop
// iteration (the paper's Figure 4 check). When the calling rank and
// iteration match the plan, the rank fail-stops. For NodeFailure the whole
// node goes down with it.
func (in *Injector) MaybeFail(r *mpi.Rank, comm *mpi.Comm, iter int) {
	if in == nil || !in.Plan.Enabled || in.fired {
		return
	}
	if iter != in.Plan.TargetIter || r.Rank(comm) != in.Plan.TargetRank {
		return
	}
	if comm.ReplicaIndexOf(r.Process().GID()) != in.Plan.TargetReplica {
		return // a twin replica of the target rank, not the chosen victim
	}
	in.fired = true
	if in.Log != nil {
		if comm.Replicated() {
			fmt.Fprintf(in.Log, "KILL rank %d replica %d\n", r.Rank(comm), in.Plan.TargetReplica)
		} else {
			fmt.Fprintf(in.Log, "KILL rank %d\n", r.Rank(comm))
		}
	}
	if in.Plan.Kind == NodeFailure {
		node := r.Process().NodeID()
		cl := r.Job().Cluster()
		// The node takes down its other residents via a scheduler event;
		// this rank dies immediately.
		cl.Scheduler().After(0, func() { cl.FailNode(node) })
	}
	r.Die()
}
