// Package fault emulates MPI process and node failures by fault injection.
// The paper's Figure 4 injects exactly one failure per run: a SIGTERM-style
// kill of one randomly selected rank at one randomly selected iteration of
// the main computation loop. This package generalizes that single-shot Plan
// into a campaign-style Schedule — an ordered list of failure events drawn
// deterministically from one seed — so the suite can also measure where a
// design's advantage widens as failures accumulate or land during recovery.
// The selection is seeded so every fault-tolerance design sees the
// identical failure sequence, which is what makes the designs comparable.
package fault

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"match/internal/mpi"
	"match/internal/obs"
	"match/internal/trace"
)

// Kind selects what fails.
type Kind int

const (
	// ProcessFailure kills a single MPI process (the paper's experiments).
	ProcessFailure Kind = iota
	// NodeFailure kills a whole node and every process on it.
	NodeFailure
)

func (k Kind) String() string {
	if k == NodeFailure {
		return "node"
	}
	return "process"
}

// Plan describes one injected failure (the paper's single-shot model). It
// survives as the unit a Schedule is built from and as the legacy
// constructor argument of NewInjector.
type Plan struct {
	Enabled    bool
	Kind       Kind
	TargetRank int
	TargetIter int
	// TargetReplica selects which replica of TargetRank dies when the rank
	// is backed by a replica group (ReplicaFTI). Zero — the primary — for
	// the unreplicated designs, so their plans are unchanged.
	TargetReplica int
}

// Event is one failure of a campaign Schedule: kill TargetReplica of
// TargetRank when that process reaches main-loop iteration TargetIter,
// but only once the run has already performed at least AfterRecoveries
// recoveries. AfterRecoveries > 0 expresses failures that land while the
// system is still absorbing an earlier one — e.g. a second hit on a
// replica group that has not regained its redundancy, or a failure during
// the post-restart catch-up replay. TargetReplica selects the victim
// within a replica group (ReplicaFTI) and is ignored by designs without
// replication.
type Event struct {
	Kind            Kind
	TargetRank      int
	TargetIter      int
	TargetReplica   int
	AfterRecoveries int
}

func (e Event) String() string {
	s := fmt.Sprintf("%d@%d", e.TargetRank, e.TargetIter)
	if e.TargetReplica != 0 {
		s += fmt.Sprintf(":replica=%d", e.TargetReplica)
	}
	if e.AfterRecoveries != 0 {
		s += fmt.Sprintf(":after=%d", e.AfterRecoveries)
	}
	if e.Kind == NodeFailure {
		s += ":kind=node"
	}
	return s
}

// Schedule is an ordered list of failure events, all drawn from one seed.
// An empty schedule injects nothing. Events are independent: each fires at
// most once, whenever its own (rank, iteration, recovery-count) condition
// is met, in whatever job incarnation that happens — so an event naturally
// re-arms across restarts until it has fired.
type Schedule struct {
	Events []Event
}

// Enabled reports whether the schedule injects at least one failure.
func (s Schedule) Enabled() bool { return len(s.Events) > 0 }

// String renders the schedule in the DSL accepted by ParseSchedule.
func (s Schedule) String() string {
	parts := make([]string, 0, len(s.Events))
	for _, e := range s.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ",")
}

// ScheduleOf converts a legacy single-failure Plan into a Schedule.
func ScheduleOf(p Plan) Schedule {
	if !p.Enabled {
		return Schedule{}
	}
	return Schedule{Events: []Event{{
		Kind:          p.Kind,
		TargetRank:    p.TargetRank,
		TargetIter:    p.TargetIter,
		TargetReplica: p.TargetReplica,
	}}}
}

// NewPlan draws a random (rank, iteration) target, like the paper's
// SelectedRank/SelectedIter. maxIter should be the application's main-loop
// trip count; the iteration is drawn from its middle 80% so the failure
// lands mid-execution rather than trivially at the start or end.
func NewPlan(seed int64, nranks, maxIter int, kind Kind) Plan {
	rng := rand.New(rand.NewSource(seed))
	return newPlan(rng, nranks, maxIter, kind)
}

// NewReplicatedPlan draws rank and iteration exactly as NewPlan does for
// the same seed (so every design sees the identical logical failure), then
// additionally draws which replica of the target rank dies. degreeOf
// reports the replica-group size of a logical rank; unreplicated targets
// keep replica 0, which is how partial replication (ReplicaFactor < 1)
// exercises the checkpoint-only fallback path.
func NewReplicatedPlan(seed int64, nranks, maxIter int, kind Kind, degreeOf func(rank int) int) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := newPlan(rng, nranks, maxIter, kind)
	if d := degreeOf(p.TargetRank); d > 1 {
		p.TargetReplica = rng.Intn(d)
	}
	return p
}

func newPlan(rng *rand.Rand, nranks, maxIter int, kind Kind) Plan {
	lo := maxIter / 10
	hi := maxIter - maxIter/10
	if hi <= lo {
		lo, hi = 0, maxIter
	}
	iter := lo
	if hi > lo {
		iter = lo + rng.Intn(hi-lo)
	}
	return Plan{
		Enabled:    true,
		Kind:       kind,
		TargetRank: rng.Intn(nranks),
		TargetIter: iter,
	}
}

// Seed salts deriving the independent streams behind events 1..k-1. The
// tail (rank, iteration) stream must not depend on whether event 0 drew a
// replica index, or the four designs would stop seeing the same logical
// failure sequence; replica indexes come from a third stream for the same
// reason.
const (
	tailSeedSalt    = 0x5bd1e995
	replicaSeedSalt = 0x2545f491
)

// NewSchedule draws a deterministic k-failure campaign. Event 0 is drawn
// exactly as NewPlan draws its plan for the same seed, so every calibrated
// single-failure result is reproduced byte-for-byte by a k=1 schedule.
// Later events come from a seed-derived stream and are drawn onto distinct
// iterations and distinct ranks (redrawing on collision while the ranges
// allow it), so each event kills a process that is actually alive at its
// iteration and fires in every design — including the rollback-free ones,
// which never revisit an iteration and never resurrect a dead replica.
func NewSchedule(seed int64, k, nranks, maxIter int, kind Kind) Schedule {
	return NewReplicatedSchedule(seed, k, nranks, maxIter, kind, nil)
}

// NewReplicatedSchedule draws the identical (rank, iteration) sequence as
// NewSchedule for the same seed, then additionally draws which replica of
// each replicated target dies (event 0 exactly as NewReplicatedPlan, so
// calibrated ReplicaFTI results are preserved too). degreeOf may be nil for
// unreplicated designs.
func NewReplicatedSchedule(seed int64, k, nranks, maxIter int, kind Kind, degreeOf func(rank int) int) Schedule {
	if k <= 0 {
		return Schedule{}
	}
	var s Schedule
	rng := rand.New(rand.NewSource(seed))
	first := newPlan(rng, nranks, maxIter, kind)
	ev0 := Event{Kind: first.Kind, TargetRank: first.TargetRank, TargetIter: first.TargetIter}
	if degreeOf != nil {
		if d := degreeOf(ev0.TargetRank); d > 1 {
			ev0.TargetReplica = rng.Intn(d)
		}
	}
	s.Events = append(s.Events, ev0)
	if k == 1 {
		return s
	}
	tail := rand.New(rand.NewSource(seed ^ tailSeedSalt))
	repl := rand.New(rand.NewSource(seed ^ replicaSeedSalt))
	usedIter := map[int]bool{ev0.TargetIter: true}
	usedRank := map[int]bool{ev0.TargetRank: true}
	// Distinctness is best-effort: once k outgrows a range, reuse is
	// unavoidable and the linear probes below keep the draw terminating
	// and deterministic.
	for i := 1; i < k; i++ {
		p := newPlan(tail, nranks, maxIter, kind)
		for tries := 0; (usedIter[p.TargetIter] || usedRank[p.TargetRank]) && tries < 4*(maxIter+nranks); tries++ {
			p = newPlan(tail, nranks, maxIter, kind)
		}
		for probes := 0; usedIter[p.TargetIter] && probes < maxIter; probes++ {
			p.TargetIter = (p.TargetIter + 1) % maxIter
		}
		for probes := 0; usedRank[p.TargetRank] && probes < nranks; probes++ {
			p.TargetRank = (p.TargetRank + 1) % nranks
		}
		usedIter[p.TargetIter] = true
		usedRank[p.TargetRank] = true
		ev := Event{Kind: p.Kind, TargetRank: p.TargetRank, TargetIter: p.TargetIter}
		if degreeOf != nil {
			if d := degreeOf(ev.TargetRank); d > 1 {
				ev.TargetReplica = repl.Intn(d)
			}
		}
		s.Events = append(s.Events, ev)
	}
	return s
}

// ParseSchedule parses the campaign DSL used by cmd/match -fault-schedule:
//
//	schedule := event ("," event)*
//	event    := RANK "@" ITER option*
//	option   := ":after=" N | ":replica=" N | ":kind=" ("process"|"node")
//
// e.g. "3@40,3@55:after=1" kills rank 3 at iteration 40 and again at
// iteration 55 once the first recovery has happened.
func ParseSchedule(spec string) (Schedule, error) {
	var s Schedule
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ",") {
		ev, err := parseEvent(strings.TrimSpace(part))
		if err != nil {
			return Schedule{}, fmt.Errorf("fault: schedule event %q: %w", part, err)
		}
		s.Events = append(s.Events, ev)
	}
	return s, nil
}

func parseEvent(spec string) (Event, error) {
	fields := strings.Split(spec, ":")
	rankIter := strings.Split(fields[0], "@")
	if len(rankIter) != 2 {
		return Event{}, fmt.Errorf(`want "rank@iter", got %q`, fields[0])
	}
	rank, err := parseNonNegative(rankIter[0], "rank")
	if err != nil {
		return Event{}, err
	}
	iter, err := parseNonNegative(rankIter[1], "iter")
	if err != nil {
		return Event{}, err
	}
	ev := Event{TargetRank: rank, TargetIter: iter}
	for _, opt := range fields[1:] {
		kv := strings.SplitN(opt, "=", 2)
		if len(kv) != 2 {
			return Event{}, fmt.Errorf(`want "key=value" option, got %q`, opt)
		}
		switch kv[0] {
		case "after":
			if ev.AfterRecoveries, err = parseNonNegative(kv[1], "after"); err != nil {
				return Event{}, err
			}
		case "replica":
			if ev.TargetReplica, err = parseNonNegative(kv[1], "replica"); err != nil {
				return Event{}, err
			}
		case "kind":
			switch kv[1] {
			case "process":
				ev.Kind = ProcessFailure
			case "node":
				ev.Kind = NodeFailure
			default:
				return Event{}, fmt.Errorf("unknown kind %q (valid: process, node)", kv[1])
			}
		default:
			return Event{}, fmt.Errorf("unknown option %q (valid: after, replica, kind)", kv[0])
		}
	}
	return ev, nil
}

func parseNonNegative(s, what string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", what, s)
	}
	if v < 0 {
		return 0, fmt.Errorf("%s %d negative", what, v)
	}
	return v, nil
}

// Injector fires the events of a Schedule, shared by all ranks of a job
// (and across restarts of the job, so each event happens exactly once no
// matter how many incarnations replay its iteration).
type Injector struct {
	Schedule Schedule
	Log      io.Writer // optional: receives the paper's "KILL rank %d" line
	// Recoveries, when set, reports how many recoveries the run has
	// completed so far; events with AfterRecoveries > 0 stay dormant until
	// it reaches their threshold. The harness points this at the active
	// design's recovery log. When nil, such events never fire.
	Recoveries func() int
	// Redirect, when set, is consulted as a fired process-failure event is
	// about to destroy the executing process. Returning true means the
	// runtime absorbed the failure at the process boundary — a live hot
	// spare in lockstep took over the victim's identity — and execution
	// continues; the event still counts as injected. Node failures are
	// never redirected (the spare cannot resurrect a dead node's executor).
	Redirect func(r *mpi.Rank, comm *mpi.Comm, ev Event) bool

	fired  []bool
	nfired int
}

// NewInjector wraps a legacy single-failure plan.
func NewInjector(p Plan) *Injector { return NewScheduleInjector(ScheduleOf(p)) }

// NewScheduleInjector wraps a campaign schedule.
func NewScheduleInjector(s Schedule) *Injector {
	return &Injector{Schedule: s, fired: make([]bool, len(s.Events))}
}

// Fired reports whether at least one failure has been injected.
func (in *Injector) Fired() bool { return in != nil && in.nfired > 0 }

// FiredCount reports how many of the schedule's events have been injected.
func (in *Injector) FiredCount() int {
	if in == nil {
		return 0
	}
	return in.nfired
}

// MaybeFail is called by every rank at the top of every main-loop
// iteration (the paper's Figure 4 check). When the calling rank and
// iteration match an armed, unfired event — and the event's
// AfterRecoveries threshold has been reached — the rank fail-stops. For
// NodeFailure the whole node goes down with it.
func (in *Injector) MaybeFail(r *mpi.Rank, comm *mpi.Comm, iter int) {
	if in == nil || in.nfired == len(in.Schedule.Events) {
		return
	}
	if in.fired == nil { // zero-value Injector, not built by a constructor
		in.fired = make([]bool, len(in.Schedule.Events))
	}
	for i, ev := range in.Schedule.Events {
		if in.fired[i] || iter != ev.TargetIter {
			continue
		}
		if ev.AfterRecoveries > 0 && (in.Recoveries == nil || in.Recoveries() < ev.AfterRecoveries) {
			continue
		}
		if r.Rank(comm) != ev.TargetRank {
			continue
		}
		// The replica selector only means something under replication; an
		// unreplicated design matches any TargetReplica, so one schedule
		// expresses the same logical failure sequence for every design.
		if comm.Replicated() && comm.ReplicaIndexOf(r.Process().GID()) != ev.TargetReplica {
			continue // a twin replica of the target rank, not the chosen victim
		}
		in.fire(i, ev, r, comm)
		return // Die() unwinds; nothing after this executes anyway
	}
}

func (in *Injector) fire(i int, ev Event, r *mpi.Rank, comm *mpi.Comm) {
	in.fired[i] = true
	in.nfired++
	if in.Log != nil {
		if comm.Replicated() {
			fmt.Fprintf(in.Log, "KILL rank %d replica %d\n", r.Rank(comm), ev.TargetReplica)
		} else {
			fmt.Fprintf(in.Log, "KILL rank %d\n", r.Rank(comm))
		}
	}
	cluster := r.Job().Cluster()
	cluster.Metrics().Inc(obs.CInjections)
	tr := cluster.Tracer()
	lg := cluster.Log()
	emitInject := func(absorbed bool) {
		if lg.Enabled() {
			lg.Event(int64(r.Now()), "inject",
				"rank", r.Rank(comm), "replica", ev.TargetReplica,
				"kind", ev.Kind.String(), "absorbed", absorbed)
		}
		if !tr.Wants(trace.CatInject) {
			return
		}
		s := trace.Span{Cat: trace.CatInject, Rank: int32(r.Rank(comm)),
			Replica: int32(ev.TargetReplica), Job: tr.JobOf(r.Job()),
			Start: int64(r.Now())}
		if ev.Kind == NodeFailure {
			s.Level = 1
		}
		if absorbed {
			s.Aux = 1
		}
		tr.Emit(s)
	}
	if ev.Kind == NodeFailure {
		node := r.Process().NodeID()
		cl := r.Job().Cluster()
		emitInject(false)
		// The node takes down its other residents via a scheduler event;
		// this rank dies immediately.
		cl.Scheduler().After(0, func() { cl.FailNode(node) })
	} else if in.Redirect != nil && in.Redirect(r, comm, ev) {
		emitInject(true)
		return // absorbed: a lockstep twin took over the victim's identity
	} else {
		emitInject(false)
	}
	r.Die()
}
