// Package trace is a deterministic, allocation-conscious event/span
// recorder for the simulator. Every layer — simnet, mpi, fti, detect,
// ckpt, fault, replica, and the four design runtimes — emits spans into
// one Recorder threaded through core.Config.Trace.
//
// A nil *Recorder is the default and is fully inert: every method is
// nil-receiver safe, Wants reports false, and instrumented code guards
// each emission behind a Wants check, so an untraced run takes only a
// nil-compare per potential emission and produces byte-identical output.
//
// Timestamps are virtual nanoseconds (simnet.Time widened to int64, so
// this package stays a leaf with no simulator dependencies). Because the
// simulation is single-threaded in virtual-time order, spans are appended
// chronologically by construction and the Recorder needs no locking.
//
// The recorder is also a correctness oracle: Totals re-derives the
// Breakdown phase sums (Total/App/Ckpt/Recovery/DetectLatency) from raw
// spans by an independent path, and Reconcile errors on any divergence.
package trace

import (
	"fmt"
	"strings"
)

// Cat classifies a recorded span or instant.
type Cat uint8

const (
	catNone Cat = iota

	// Always-on categories (recorded whenever a Recorder is attached).
	// These carry the per-phase timeline and the reconciliation oracle.

	// CatCompute is one application step on one rank (span).
	CatCompute
	// CatCkpt is one FTI checkpoint on one rank (span); Level is the FTI
	// level, Aux the bytes written, Actor the FTI instance.
	CatCkpt
	// CatRestore is one FTI recovery (restart read-back) on one rank (span).
	CatRestore
	// CatRecovery is one design-level recovery — abort+relaunch, Reinit
	// reset, ULFM repair, or replica failover/fallback (span; emitted by
	// the harness from each design's recovery log).
	CatRecovery
	// CatDegraded is the window a replica group ran below its configured
	// degree, from failover prune to hot-spare go-live (span).
	CatDegraded
	// CatSpawn is one hot-spare respawn from schedule to go-live (span).
	CatSpawn
	// CatDetect is one confirmed failure, FailedAt..DetectedAt (span);
	// Aux is the failed process GID.
	CatDetect
	// CatFinish marks a rank completing its main loop (instant).
	CatFinish
	// CatInject is one fired fault injection (instant); Aux is 1 when a
	// replica supervisor absorbed it, Level is 1 for node-failure kind.
	CatInject
	// CatNodeFail is a node failure taking down its processes (instant).
	CatNodeFail
	// CatFailover is a replica leader failover commit (instant).
	CatFailover
	// CatAbsorb is a hot-spare absorbing a failure in place (instant).
	CatAbsorb
	// CatFallback is the replica design giving up on a group and falling
	// back to abort+relaunch (instant).
	CatFallback
	// CatRepair is a design runtime completing a repair in situ (instant;
	// the summed CatRecovery spans are the reconciled figures).
	CatRepair
	// CatPolicyAvoid is a checkpoint the placement policy skipped at a
	// stride boundary (instant); Aux is the iteration.
	CatPolicyAvoid
	// CatPolicyArm is the placement policy re-arming for a new epoch
	// (instant); Aux is the chosen stride.
	CatPolicyArm
	// CatLeak reports events still pending in the scheduler when the run
	// ended (instant); Aux is the count, Start the earliest leaked time.
	CatLeak

	// Detail-gated, high-volume categories (SetDetail to record).

	// CatSend is one point-to-point message (span, send to arrival);
	// Aux is the payload bytes.
	CatSend
	// CatCollective is one collective operation start (instant).
	CatCollective
	// CatDedup is a duplicate message suppressed at a replicated
	// receiver (instant).
	CatDedup
	// CatHeartbeat is one detector heartbeat round (instant); Aux is the
	// number of members pinged.
	CatHeartbeat
	// CatEvent is one scheduler event dispatch (instant).
	CatEvent
	// CatTransfer is one NIC transfer, depart to arrival (span); Aux is
	// the size in bytes.
	CatTransfer

	numCats
)

// Detail selects which high-volume categories are recorded. The always-on
// categories ignore it.
type Detail uint32

const (
	// DetailMessages records per-message traffic: sends, collectives, and
	// replica duplicate suppression.
	DetailMessages Detail = 1 << iota
	// DetailHeartbeats records detector heartbeat rounds.
	DetailHeartbeats
	// DetailSim records scheduler event dispatch and NIC transfers.
	DetailSim

	// DetailAll turns on every high-volume category.
	DetailAll = DetailMessages | DetailHeartbeats | DetailSim
)

// catDetail maps each category to the Detail bit gating it; zero means
// always-on.
var catDetail = [numCats]Detail{
	CatSend:       DetailMessages,
	CatCollective: DetailMessages,
	CatDedup:      DetailMessages,
	CatHeartbeat:  DetailHeartbeats,
	CatEvent:      DetailSim,
	CatTransfer:   DetailSim,
}

// catNames are the Chrome/metrics display names.
var catNames = [numCats]string{
	CatCompute:     "compute",
	CatCkpt:        "checkpoint",
	CatRestore:     "restore",
	CatRecovery:    "recovery",
	CatDegraded:    "degraded",
	CatSpawn:       "spawn",
	CatDetect:      "detect",
	CatFinish:      "finish",
	CatInject:      "inject",
	CatNodeFail:    "node-fail",
	CatFailover:    "failover",
	CatAbsorb:      "absorb",
	CatFallback:    "fallback",
	CatRepair:      "repair",
	CatPolicyAvoid: "ckpt-avoided",
	CatPolicyArm:   "policy-arm",
	CatLeak:        "leaked-events",
	CatSend:        "send",
	CatCollective:  "collective",
	CatDedup:       "dedup-drop",
	CatHeartbeat:   "heartbeat",
	CatEvent:       "event",
	CatTransfer:    "transfer",
}

// String returns the category's display name.
func (c Cat) String() string {
	if c < numCats && catNames[c] != "" {
		return catNames[c]
	}
	return fmt.Sprintf("cat(%d)", uint8(c))
}

// ParseDetail parses a comma-separated detail list: "messages",
// "heartbeats", "sim", or "all" (empty string means none).
func ParseDetail(spec string) (Detail, error) {
	var d Detail
	for _, f := range strings.Split(spec, ",") {
		switch strings.TrimSpace(strings.ToLower(f)) {
		case "":
		case "messages":
			d |= DetailMessages
		case "heartbeats":
			d |= DetailHeartbeats
		case "sim":
			d |= DetailSim
		case "all":
			d |= DetailAll
		default:
			return 0, fmt.Errorf("trace: unknown detail %q (want messages, heartbeats, sim, or all)", f)
		}
	}
	return d, nil
}

// Span is one recorded event. Dur zero renders as an instant. Rank is the
// logical rank, -1 when not rank-scoped; Replica is the replica index
// within a replicated world (0 otherwise); Job is the 1-based job
// incarnation interned by JobOf (0 when unknown); Actor groups checkpoint
// spans by FTI instance (NewActor; 0 otherwise); Level and Aux carry
// per-category detail (FTI level, bytes, GIDs, counts).
type Span struct {
	Start   int64 // virtual ns
	Dur     int64 // virtual ns; 0 for instants
	Aux     int64
	Cat     Cat
	Level   int32
	Rank    int32
	Replica int32
	Job     int32
	Actor   int32
}

// Recorder accumulates spans for one run. One Recorder serves one
// core.Run; it must not be shared across concurrently executing runs.
// The zero of *Recorder — nil — is the inert default.
type Recorder struct {
	detail Detail
	spans  []Span
	jobs   map[any]int32
	actors int32
}

// New returns an empty Recorder with no detail categories enabled.
func New() *Recorder {
	return &Recorder{jobs: make(map[any]int32)}
}

// Enabled reports whether a recorder is attached (r non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// SetDetail selects which high-volume categories to record.
func (r *Recorder) SetDetail(d Detail) {
	if r == nil {
		return
	}
	r.detail = d
}

// Detail returns the active detail mask.
func (r *Recorder) Detail() Detail {
	if r == nil {
		return 0
	}
	return r.detail
}

// Wants reports whether an emission of category c would be recorded.
// Instrumented code guards every Emit (and any argument preparation)
// behind this, so a nil recorder costs one comparison.
func (r *Recorder) Wants(c Cat) bool {
	if r == nil {
		return false
	}
	need := catDetail[c]
	return need == 0 || r.detail&need != 0
}

// Emit appends one span. No-op on a nil recorder.
func (r *Recorder) Emit(s Span) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, s)
}

// JobOf interns a job identity (any pointer-comparable key) and returns
// its stable 1-based index in first-seen order; 0 on a nil recorder or
// nil key.
func (r *Recorder) JobOf(key any) int32 {
	if r == nil || key == nil {
		return 0
	}
	if id, ok := r.jobs[key]; ok {
		return id
	}
	id := int32(len(r.jobs) + 1)
	r.jobs[key] = id
	return id
}

// NewActor allocates a fresh actor id (used to group checkpoint spans by
// FTI instance); 0 on a nil recorder.
func (r *Recorder) NewActor() int32 {
	if r == nil {
		return 0
	}
	r.actors++
	return r.actors
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Spans returns the live internal span slice (not a copy): cheap to scan,
// and mutations are visible to Totals/Reconcile — the reconciliation
// tests corrupt a span through it to prove the self-check fires.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Reset drops all recorded spans and interned ids, keeping the detail
// mask, so one allocation's buffers can be reused across runs.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spans = r.spans[:0]
	r.jobs = make(map[any]int32)
	r.actors = 0
}
