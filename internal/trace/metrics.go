package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Totals are the phase sums a Breakdown reports, re-derived here from raw
// spans by an independent path so the trace doubles as a correctness
// oracle for the breakdown math. All times are virtual nanoseconds.
type Totals struct {
	Total            int64
	App              int64
	Ckpt             int64
	Recovery         int64
	DetectLatency    int64
	DetectedFailures int
}

// Totals re-derives the phase sums from the recorded spans:
//
//   - Total: the latest CatFinish mark per rank, maximized over ranks —
//     mirroring the harness's per-rank finish map where a later replica's
//     mark overwrites an earlier one.
//   - Ckpt: rank-0 CatCkpt spans grouped by (job, FTI instance). With
//     dedupCkpt false (the sequential-relaunch designs) every instance's
//     sum counts, including partial checkpoints cut short by a kill. With
//     dedupCkpt true (ReplicaFTI) each job contributes only its largest
//     instance sum — the replica the harness's dedup keeps — summed
//     across job incarnations.
//   - Recovery: the summed CatRecovery spans.
//   - DetectLatency/DetectedFailures: summed/counted CatDetect spans,
//     emitted at each detector's exactly-once confirmation site.
//   - App: derived as Total - Ckpt - Recovery.
func (r *Recorder) Totals(dedupCkpt bool) Totals {
	var t Totals
	if r == nil {
		return t
	}
	finish := make(map[int32]int64)
	ckpt := make(map[int32]map[int32]int64) // job -> FTI instance -> summed ns
	for i := range r.spans {
		s := &r.spans[i]
		switch s.Cat {
		case CatFinish:
			// Spans are chronological, so the last write per rank is also
			// that rank's latest mark.
			finish[s.Rank] = s.Start
		case CatCkpt:
			if s.Rank == 0 {
				m := ckpt[s.Job]
				if m == nil {
					m = make(map[int32]int64)
					ckpt[s.Job] = m
				}
				m[s.Actor] += s.Dur
			}
		case CatRecovery:
			t.Recovery += s.Dur
		case CatDetect:
			t.DetectLatency += s.Dur
			t.DetectedFailures++
		}
	}
	for _, at := range finish {
		if at > t.Total {
			t.Total = at
		}
	}
	for _, instances := range ckpt {
		if dedupCkpt {
			var best int64
			for _, ns := range instances {
				if ns > best {
					best = ns
				}
			}
			t.Ckpt += best
		} else {
			for _, ns := range instances {
				t.Ckpt += ns
			}
		}
	}
	t.App = t.Total - t.Ckpt - t.Recovery
	return t
}

// Reconcile checks the trace-derived phase sums against the harness's
// Breakdown figures and returns a hard error naming every diverging
// phase. A nil recorder reconciles trivially.
func (r *Recorder) Reconcile(bd Totals, dedupCkpt bool) error {
	if r == nil {
		return nil
	}
	got := r.Totals(dedupCkpt)
	var diffs []string
	check := func(phase string, trace, breakdown int64) {
		if trace != breakdown {
			diffs = append(diffs, fmt.Sprintf("%s: trace %dns != breakdown %dns (delta %dns)",
				phase, trace, breakdown, trace-breakdown))
		}
	}
	check("total", got.Total, bd.Total)
	check("app", got.App, bd.App)
	check("ckpt", got.Ckpt, bd.Ckpt)
	check("recovery", got.Recovery, bd.Recovery)
	check("detect-latency", got.DetectLatency, bd.DetectLatency)
	if got.DetectedFailures != bd.DetectedFailures {
		diffs = append(diffs, fmt.Sprintf("detected-failures: trace %d != breakdown %d",
			got.DetectedFailures, bd.DetectedFailures))
	}
	if len(diffs) > 0 {
		return fmt.Errorf("trace: reconciliation failed over %d spans: %s",
			len(r.spans), strings.Join(diffs, "; "))
	}
	return nil
}

// WriteMetrics renders the aggregated per-phase metrics table — trace
// sums side by side with the Breakdown figures and the reconciliation
// verdict — followed by per-category span counts and times.
func (r *Recorder) WriteMetrics(w io.Writer, bd Totals, dedupCkpt bool) {
	got := r.Totals(dedupCkpt)
	sec := func(ns int64) string { return fmt.Sprintf("%.6f", float64(ns)/1e9) }

	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\ttrace_s\tbreakdown_s")
	fmt.Fprintf(tw, "total\t%s\t%s\n", sec(got.Total), sec(bd.Total))
	fmt.Fprintf(tw, "app\t%s\t%s\n", sec(got.App), sec(bd.App))
	fmt.Fprintf(tw, "ckpt\t%s\t%s\n", sec(got.Ckpt), sec(bd.Ckpt))
	fmt.Fprintf(tw, "recovery\t%s\t%s\n", sec(got.Recovery), sec(bd.Recovery))
	fmt.Fprintf(tw, "detect_latency\t%s\t%s\n", sec(got.DetectLatency), sec(bd.DetectLatency))
	fmt.Fprintf(tw, "detected_failures\t%d\t%d\n", got.DetectedFailures, bd.DetectedFailures)
	tw.Flush()

	if err := r.Reconcile(bd, dedupCkpt); err != nil {
		fmt.Fprintf(w, "reconciliation: FAILED: %v\n", err)
	} else {
		fmt.Fprintln(w, "reconciliation: OK")
	}

	var count [numCats]int
	var dur [numCats]int64
	for i := range r.Spans() {
		s := &r.spans[i]
		count[s.Cat]++
		dur[s.Cat] += s.Dur
	}
	var cats []Cat
	for c := Cat(1); c < numCats; c++ {
		if count[c] > 0 {
			cats = append(cats, c)
		}
	}
	sort.Slice(cats, func(i, j int) bool { return count[cats[i]] > count[cats[j]] })
	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "category\tspans\ttime_s")
	for _, c := range cats {
		fmt.Fprintf(tw, "%s\t%d\t%s\n", c, count[c], sec(dur[c]))
	}
	tw.Flush()
}
