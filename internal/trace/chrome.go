package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Track layout of the Chrome trace: pid 0 is the "runtime" process whose
// threads carry cross-cutting activity (injector, detector, recovery,
// policy, network, scheduler); each job incarnation is a process of its
// own with one thread per (rank, replica).
const (
	tidInjector = iota
	tidDetector
	tidRecovery
	tidPolicy
	tidNetwork
	tidScheduler
)

var runtimeTids = map[int32]string{
	tidInjector:  "fault injector",
	tidDetector:  "detector",
	tidRecovery:  "recovery",
	tidPolicy:    "ckpt policy",
	tidNetwork:   "network",
	tidScheduler: "scheduler",
}

// maxReplicas bounds the replica index folded into a rank thread id.
const maxReplicas = 8

// track maps a span to its Chrome (pid, tid). Rank-scoped phase activity
// lands on the rank's own thread inside its job's process; everything
// cross-cutting lands on a runtime thread.
func track(s *Span) (pid, tid int32) {
	switch s.Cat {
	case CatCompute, CatCkpt, CatRestore, CatFinish, CatDegraded, CatSpawn:
		if s.Rank >= 0 && s.Job > 0 {
			rep := s.Replica
			if rep < 0 {
				rep = 0
			}
			if rep >= maxReplicas {
				rep = maxReplicas - 1
			}
			return s.Job, s.Rank*maxReplicas + rep
		}
		return 0, tidRecovery
	case CatInject, CatNodeFail:
		return 0, tidInjector
	case CatDetect, CatHeartbeat:
		return 0, tidDetector
	case CatRecovery, CatFailover, CatAbsorb, CatFallback, CatRepair:
		return 0, tidRecovery
	case CatPolicyAvoid, CatPolicyArm:
		return 0, tidPolicy
	case CatSend, CatCollective, CatDedup, CatTransfer:
		return 0, tidNetwork
	default: // CatEvent, CatLeak, anything future
		return 0, tidScheduler
	}
}

// WriteChrome serializes the trace in Chrome trace-event JSON (the format
// Perfetto and chrome://tracing load): metadata events naming one process
// per job and one thread per rank, then one "X" complete event per span
// and one "i" instant per zero-duration mark. Timestamps are virtual
// microseconds.
func (r *Recorder) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)

	type threadKey struct{ pid, tid int32 }
	threads := make(map[threadKey]*Span)
	pids := make(map[int32]bool)
	for i := range r.Spans() {
		s := &r.spans[i]
		pid, tid := track(s)
		pids[pid] = true
		if _, ok := threads[threadKey{pid, tid}]; !ok {
			threads[threadKey{pid, tid}] = s
		}
	}
	pids[0] = true // always name the runtime process

	var pidList []int32
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Slice(pidList, func(i, j int) bool { return pidList[i] < pidList[j] })
	var threadList []threadKey
	for k := range threads {
		threadList = append(threadList, k)
	}
	sort.Slice(threadList, func(i, j int) bool {
		if threadList[i].pid != threadList[j].pid {
			return threadList[i].pid < threadList[j].pid
		}
		return threadList[i].tid < threadList[j].tid
	})

	bw.WriteString(`{"traceEvents":[`)
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	for _, pid := range pidList {
		name := "runtime"
		if pid > 0 {
			name = fmt.Sprintf("job %d", pid)
		}
		emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, pid, name)
		emit(`{"name":"process_sort_index","ph":"M","pid":%d,"tid":0,"args":{"sort_index":%d}}`, pid, pid)
	}
	for _, k := range threadList {
		var name string
		if k.pid == 0 {
			name = runtimeTids[k.tid]
			if name == "" {
				name = fmt.Sprintf("runtime %d", k.tid)
			}
		} else {
			s := threads[k]
			if s.Replica > 0 {
				name = fmt.Sprintf("rank %d (replica %d)", s.Rank, s.Replica)
			} else {
				name = fmt.Sprintf("rank %d", s.Rank)
			}
		}
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, k.pid, k.tid, name)
		emit(`{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`, k.pid, k.tid, k.tid)
	}

	us := func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e3) }
	for i := range r.Spans() {
		s := &r.spans[i]
		pid, tid := track(s)
		if s.Dur > 0 {
			emit(`{"name":%q,"cat":%q,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"rank":%d,"level":%d,"aux":%d}}`,
				s.Cat.String(), s.Cat.String(), pid, tid, us(s.Start), us(s.Dur), s.Rank, s.Level, s.Aux)
		} else {
			emit(`{"name":%q,"cat":%q,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"args":{"rank":%d,"level":%d,"aux":%d}}`,
				s.Cat.String(), s.Cat.String(), pid, tid, us(s.Start), s.Rank, s.Level, s.Aux)
		}
	}

	bw.WriteString(`],"displayTimeUnit":"ms"}`)
	bw.WriteByte('\n')
	return bw.Flush()
}
