package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// A nil recorder must be inert: every method safe, nothing recorded.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	if r.Wants(CatCompute) || r.Wants(CatSend) {
		t.Fatal("nil recorder Wants a category")
	}
	r.Emit(Span{Cat: CatCompute})
	r.SetDetail(DetailAll)
	r.Reset()
	if r.JobOf("job") != 0 {
		t.Fatal("nil recorder interned a job")
	}
	if r.NewActor() != 0 {
		t.Fatal("nil recorder allocated an actor")
	}
	if r.Len() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder has spans")
	}
	if err := r.Reconcile(Totals{Total: 123}, false); err != nil {
		t.Fatalf("nil recorder failed reconciliation: %v", err)
	}
}

func TestDetailGating(t *testing.T) {
	r := New()
	if !r.Wants(CatCompute) || !r.Wants(CatDetect) {
		t.Fatal("always-on category not wanted by default")
	}
	if r.Wants(CatSend) || r.Wants(CatHeartbeat) || r.Wants(CatEvent) {
		t.Fatal("detail category wanted without detail set")
	}
	r.SetDetail(DetailMessages)
	if !r.Wants(CatSend) || !r.Wants(CatCollective) || !r.Wants(CatDedup) {
		t.Fatal("DetailMessages did not enable message categories")
	}
	if r.Wants(CatHeartbeat) || r.Wants(CatTransfer) {
		t.Fatal("DetailMessages enabled unrelated categories")
	}
	r.SetDetail(DetailAll)
	for c := Cat(1); c < numCats; c++ {
		if !r.Wants(c) {
			t.Fatalf("DetailAll does not enable %v", c)
		}
	}
}

func TestParseDetail(t *testing.T) {
	d, err := ParseDetail("messages, heartbeats")
	if err != nil || d != DetailMessages|DetailHeartbeats {
		t.Fatalf("ParseDetail = %v, %v", d, err)
	}
	if d, err = ParseDetail("all"); err != nil || d != DetailAll {
		t.Fatalf("ParseDetail(all) = %v, %v", d, err)
	}
	if d, err = ParseDetail(""); err != nil || d != 0 {
		t.Fatalf("ParseDetail(empty) = %v, %v", d, err)
	}
	if _, err = ParseDetail("bogus"); err == nil {
		t.Fatal("ParseDetail accepted bogus flag")
	}
}

// seedRun builds a synthetic two-rank run: two checkpoints and a compute
// span per rank, one detected failure, one recovery, finish marks.
func seedRun(r *Recorder) Totals {
	job := r.JobOf("job-a")
	a0, a1 := r.NewActor(), r.NewActor()
	r.Emit(Span{Cat: CatCompute, Rank: 0, Job: job, Start: 0, Dur: 100})
	r.Emit(Span{Cat: CatCompute, Rank: 1, Job: job, Start: 0, Dur: 100})
	r.Emit(Span{Cat: CatCkpt, Rank: 0, Job: job, Actor: a0, Start: 100, Dur: 10, Level: 1})
	r.Emit(Span{Cat: CatCkpt, Rank: 1, Job: job, Actor: a1, Start: 100, Dur: 10, Level: 1})
	r.Emit(Span{Cat: CatDetect, Rank: -1, Job: job, Start: 150, Dur: 30, Aux: 7})
	r.Emit(Span{Cat: CatRecovery, Rank: 1, Start: 150, Dur: 50})
	r.Emit(Span{Cat: CatCkpt, Rank: 0, Job: job, Actor: a0, Start: 230, Dur: 10, Level: 1})
	r.Emit(Span{Cat: CatFinish, Rank: 0, Job: job, Start: 300})
	r.Emit(Span{Cat: CatFinish, Rank: 1, Job: job, Start: 290})
	return Totals{
		Total:            300,
		Ckpt:             20, // rank 0 only: 10 + 10
		Recovery:         50,
		App:              230,
		DetectLatency:    30,
		DetectedFailures: 1,
	}
}

func TestTotalsAndReconcile(t *testing.T) {
	r := New()
	want := seedRun(r)
	got := r.Totals(false)
	if got != want {
		t.Fatalf("Totals = %+v, want %+v", got, want)
	}
	if err := r.Reconcile(want, false); err != nil {
		t.Fatalf("Reconcile failed on matching totals: %v", err)
	}
	if err := r.Reconcile(Totals{}, false); err == nil {
		t.Fatal("Reconcile passed against zero totals")
	}
}

// Corrupting a single span must trip the self-check.
func TestReconcileDetectsCorruption(t *testing.T) {
	r := New()
	want := seedRun(r)
	spans := r.Spans()
	for i := range spans {
		if spans[i].Cat == CatCkpt && spans[i].Rank == 0 {
			spans[i].Dur++ // live slice: mutation visible to Reconcile
			break
		}
	}
	err := r.Reconcile(want, false)
	if err == nil {
		t.Fatal("Reconcile missed a corrupted checkpoint span")
	}
	if !strings.Contains(err.Error(), "ckpt") {
		t.Fatalf("corruption error does not name the ckpt phase: %v", err)
	}
}

// Replica dedup: per job only the largest FTI-instance sum counts; the
// sequential designs sum every instance.
func TestTotalsCkptDedup(t *testing.T) {
	r := New()
	j1, j2 := r.JobOf("incarnation-1"), r.JobOf("incarnation-2")
	primary, shadow, relaunch := r.NewActor(), r.NewActor(), r.NewActor()
	r.Emit(Span{Cat: CatCkpt, Rank: 0, Job: j1, Actor: primary, Start: 0, Dur: 40})
	r.Emit(Span{Cat: CatCkpt, Rank: 0, Job: j1, Actor: shadow, Start: 0, Dur: 25})
	r.Emit(Span{Cat: CatCkpt, Rank: 0, Job: j2, Actor: relaunch, Start: 100, Dur: 10})
	r.Emit(Span{Cat: CatFinish, Rank: 0, Job: j2, Start: 200})
	if got := r.Totals(true).Ckpt; got != 50 { // max(40,25) + 10
		t.Fatalf("dedup Ckpt = %d, want 50", got)
	}
	if got := r.Totals(false).Ckpt; got != 75 { // 40+25+10
		t.Fatalf("summed Ckpt = %d, want 75", got)
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	r := New()
	r.SetDetail(DetailAll)
	seedRun(r)
	r.Emit(Span{Cat: CatInject, Rank: 1, Start: 140, Aux: 1})
	r.Emit(Span{Cat: CatSend, Rank: 0, Start: 10, Dur: 5, Aux: 64})
	r.Emit(Span{Cat: CatHeartbeat, Rank: -1, Start: 50, Aux: 2})

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  *int            `json:"pid"`
			Tid  *int            `json:"tid"`
			Ts   *float64        `json:"ts"`
			Dur  *float64        `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChrome emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var spans, instants, meta int
	for _, e := range doc.TraceEvents {
		if e.Name == "" || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event missing name/pid/tid: %+v", e)
		}
		switch e.Ph {
		case "X":
			if e.Ts == nil || e.Dur == nil {
				t.Fatalf("complete event missing ts/dur: %+v", e)
			}
			spans++
		case "i":
			if e.Ts == nil {
				t.Fatalf("instant missing ts: %+v", e)
			}
			instants++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if spans == 0 || instants == 0 || meta == 0 {
		t.Fatalf("trace missing event kinds: X=%d i=%d M=%d", spans, instants, meta)
	}
}

func TestWriteMetricsReportsVerdict(t *testing.T) {
	r := New()
	want := seedRun(r)
	var buf bytes.Buffer
	r.WriteMetrics(&buf, want, false)
	out := buf.String()
	if !strings.Contains(out, "reconciliation: OK") {
		t.Fatalf("metrics table missing OK verdict:\n%s", out)
	}
	if !strings.Contains(out, "checkpoint") || !strings.Contains(out, "compute") {
		t.Fatalf("metrics table missing category rows:\n%s", out)
	}
	buf.Reset()
	r.WriteMetrics(&buf, Totals{Total: 1}, false)
	if !strings.Contains(buf.String(), "reconciliation: FAILED") {
		t.Fatalf("metrics table missing FAILED verdict:\n%s", buf.String())
	}
}

func TestResetKeepsDetail(t *testing.T) {
	r := New()
	r.SetDetail(DetailSim)
	seedRun(r)
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset left spans behind")
	}
	if r.Detail() != DetailSim {
		t.Fatal("Reset cleared the detail mask")
	}
	if r.JobOf("fresh") != 1 || r.NewActor() != 1 {
		t.Fatal("Reset did not restart interning")
	}
}
