package enc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrips(t *testing.T) {
	b := AppendUint64(nil, 0xdeadbeefcafef00d)
	if Uint64(b) != 0xdeadbeefcafef00d {
		t.Fatal("uint64 roundtrip")
	}
	b = AppendInt64(nil, -42)
	if Int64(b) != -42 {
		t.Fatal("int64 roundtrip")
	}
	b = AppendFloat64(nil, math.Inf(-1))
	if Float64(b) != math.Inf(-1) {
		t.Fatal("float64 roundtrip")
	}
	// NaN bit pattern preserved.
	nan := math.Float64frombits(0x7ff8000000000001)
	b = AppendFloat64(nil, nan)
	if math.Float64bits(Float64(b)) != 0x7ff8000000000001 {
		t.Fatal("NaN bits not preserved")
	}
}

func TestLengthPrefixedRoundTrips(t *testing.T) {
	b := AppendBytes(nil, []byte("abc"))
	b = AppendString(b, "xyz")
	p, rest := NextBytes(b)
	if string(p) != "abc" {
		t.Fatalf("bytes = %q", p)
	}
	s, rest := NextString(rest)
	if s != "xyz" || len(rest) != 0 {
		t.Fatalf("string = %q rest = %d", s, len(rest))
	}
}

func TestFillInPlace(t *testing.T) {
	src := []float64{1, 2, 3}
	buf := Float64sToBytes(src)
	dst := make([]float64, 3)
	FillFloat64s(dst, buf)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatal("FillFloat64s mismatch")
		}
	}
	is := []int64{-5, 9}
	ib := Int64sToBytes(is)
	id := make([]int64, 2)
	FillInt64s(id, ib)
	if id[0] != -5 || id[1] != 9 {
		t.Fatal("FillInt64s mismatch")
	}
}

func TestEmptySlices(t *testing.T) {
	if len(Float64sToBytes(nil)) != 0 {
		t.Fatal("nil encode")
	}
	if len(BytesToFloat64s(nil)) != 0 {
		t.Fatal("nil decode")
	}
}

// Property: mixed sequences of appends decode in order.
func TestMixedStreamProperty(t *testing.T) {
	f := func(a uint64, b int64, c float64, s string) bool {
		buf := AppendUint64(nil, a)
		buf = AppendInt64(buf, b)
		buf = AppendFloat64(buf, c)
		buf = AppendString(buf, s)
		if Uint64(buf) != a {
			return false
		}
		rest := buf[8:]
		if Int64(rest) != b {
			return false
		}
		rest = rest[8:]
		if math.Float64bits(Float64(rest)) != math.Float64bits(c) {
			return false
		}
		rest = rest[8:]
		got, rest := NextString(rest)
		return got == s && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
