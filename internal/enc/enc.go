// Package enc provides fast, allocation-conscious binary encoding helpers
// shared by the MPI message layer and the FTI checkpoint serializer. All
// encodings are little-endian.
package enc

import (
	"encoding/binary"
	"math"
)

// AppendUint64 appends v to b.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// Uint64 reads a uint64 from the front of b.
func Uint64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// AppendInt64 appends v to b.
func AppendInt64(b []byte, v int64) []byte {
	return AppendUint64(b, uint64(v))
}

// Int64 reads an int64 from the front of b.
func Int64(b []byte) int64 { return int64(Uint64(b)) }

// AppendFloat64 appends v to b.
func AppendFloat64(b []byte, v float64) []byte {
	return AppendUint64(b, math.Float64bits(v))
}

// Float64 reads a float64 from the front of b.
func Float64(b []byte) float64 { return math.Float64frombits(Uint64(b)) }

// Float64sToBytes encodes a float64 slice.
func Float64sToBytes(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// BytesToFloat64s decodes a float64 slice (len(b) must be a multiple of 8).
func BytesToFloat64s(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	FillFloat64s(v, b)
	return v
}

// FillFloat64s decodes into an existing slice; len(b) must equal 8*len(v).
func FillFloat64s(v []float64, b []byte) {
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// Int64sToBytes encodes an int64 slice.
func Int64sToBytes(v []int64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
	return b
}

// BytesToInt64s decodes an int64 slice.
func BytesToInt64s(b []byte) []int64 {
	v := make([]int64, len(b)/8)
	FillInt64s(v, b)
	return v
}

// FillInt64s decodes into an existing slice; len(b) must equal 8*len(v).
func FillInt64s(v []int64, b []byte) {
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(b, p []byte) []byte {
	b = AppendUint64(b, uint64(len(p)))
	return append(b, p...)
}

// NextBytes reads a length-prefixed byte slice and returns it along with
// the remainder of b.
func NextBytes(b []byte) (p, rest []byte) {
	n := Uint64(b)
	return b[8 : 8+n], b[8+n:]
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	return AppendBytes(b, []byte(s))
}

// NextString reads a length-prefixed string.
func NextString(b []byte) (s string, rest []byte) {
	p, rest := NextBytes(b)
	return string(p), rest
}
