// SweepMeter aggregates per-cell registries during a live sweep and
// serves them over HTTP: OpenMetrics on /metrics (per-design label sets
// plus sweep progress gauges) and a compact JSON summary on /status.
// Unlike the per-run Registry it is mutex-guarded, because sweep cells
// finish concurrently on the worker pool and Prometheus scrapes from yet
// another goroutine.

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// SweepMeter accumulates finished cells. A nil *SweepMeter is inert:
// every method is nil-receiver safe, so sweep plumbing calls it
// unconditionally.
type SweepMeter struct {
	mu      sync.Mutex
	start   time.Time
	total   int
	done    int
	byName  map[string]*designAgg
	designs []*designAgg     // insertion order, for deterministic exposition
	now     func() time.Time // test hook; time.Now when nil
}

type designAgg struct {
	name string
	done int
	reg  *Registry
}

// NewSweepMeter returns an empty meter; elapsed time is measured from
// this call.
func NewSweepMeter() *SweepMeter {
	return &SweepMeter{start: time.Now(), byName: make(map[string]*designAgg)}
}

// Enabled reports whether a meter is attached (s non-nil).
func (s *SweepMeter) Enabled() bool { return s != nil }

// AddTotal raises the expected cell count by n (cumulative across the
// sweeps of one invocation, e.g. matchsuite -all).
func (s *SweepMeter) AddTotal(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.total += n
	s.mu.Unlock()
}

// CellDone merges one finished cell's registry under its design name.
func (s *SweepMeter) CellDone(design string, r *Registry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done++
	agg := s.byName[design]
	if agg == nil {
		agg = &designAgg{name: design, reg: New()}
		s.byName[design] = agg
		s.designs = append(s.designs, agg)
	}
	agg.done++
	agg.reg.Merge(r)
}

// Status is the /status JSON document.
type Status struct {
	CellsDone   int            `json:"cells_done"`
	CellsTotal  int            `json:"cells_total"`
	ElapsedS    float64        `json:"elapsed_s"`
	CellsPerSec float64        `json:"cells_per_sec"`
	EtaS        float64        `json:"eta_s"`
	Designs     []DesignStatus `json:"designs"`
}

// DesignStatus is one design's slice of the sweep.
type DesignStatus struct {
	Design      string `json:"design"`
	CellsDone   int    `json:"cells_done"`
	Recoveries  int64  `json:"recoveries"`
	Failovers   int64  `json:"failovers"`
	Respawns    int64  `json:"respawns"`
	Checkpoints int64  `json:"checkpoints"`
	Restores    int64  `json:"restores"`
	Injections  int64  `json:"injections"`
	Messages    int64  `json:"messages"`
}

// Snapshot returns the current sweep status. Rates use host wall-clock
// since NewSweepMeter; ETA is 0 until at least one cell finished.
func (s *SweepMeter) Snapshot() Status {
	if s == nil {
		return Status{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{CellsDone: s.done, CellsTotal: s.total}
	nowFn := s.now
	if nowFn == nil {
		nowFn = time.Now
	}
	st.ElapsedS = nowFn().Sub(s.start).Seconds()
	if st.ElapsedS > 0 {
		st.CellsPerSec = float64(s.done) / st.ElapsedS
	}
	if s.done > 0 && s.total > s.done {
		st.EtaS = st.ElapsedS / float64(s.done) * float64(s.total-s.done)
	}
	for _, agg := range s.designs {
		st.Designs = append(st.Designs, DesignStatus{
			Design:      agg.name,
			CellsDone:   agg.done,
			Recoveries:  agg.reg.Get(CRecoveries),
			Failovers:   agg.reg.Get(CFailovers),
			Respawns:    agg.reg.Get(CRespawns),
			Checkpoints: agg.reg.Get(CCheckpoints),
			Restores:    agg.reg.Get(CRestores),
			Injections:  agg.reg.Get(CInjections),
			Messages:    agg.reg.Get(CMessages),
		})
	}
	return st
}

// WriteStatus writes the status document as indented JSON.
func (s *SweepMeter) WriteStatus(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Snapshot())
}

// WriteOpenMetrics writes sweep progress gauges plus every design's
// merged registry (labeled design="NAME") as one OpenMetrics stream.
func (s *SweepMeter) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var groups []LabeledRegistry
	var st Status
	if s != nil {
		st = s.Snapshot()
		s.mu.Lock()
		for _, agg := range s.designs {
			groups = append(groups, LabeledRegistry{Labels: fmt.Sprintf("design=%q", agg.name), R: agg.reg})
		}
		s.mu.Unlock()
	}
	header(bw, "match_cells", "gauge", "Sweep cells by state.")
	sample(bw, "match_cells", `state="done"`, "", int64(st.CellsDone))
	sample(bw, "match_cells", `state="total"`, "", int64(st.CellsTotal))
	header(bw, "match_cells_per_sec", "gauge", "Finished cells per host wall-clock second.")
	fmt.Fprintf(bw, "match_cells_per_sec %g\n", st.CellsPerSec)
	header(bw, "match_sweep_elapsed_seconds", "gauge", "Host wall-clock seconds since the sweep started.")
	fmt.Fprintf(bw, "match_sweep_elapsed_seconds %g\n", st.ElapsedS)
	header(bw, "match_sweep_eta_seconds", "gauge", "Estimated host seconds to completion (0 until a cell finishes).")
	fmt.Fprintf(bw, "match_sweep_eta_seconds %g\n", st.EtaS)
	writeRegistries(bw, groups)
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// MetricsHandler serves WriteOpenMetrics.
func (s *SweepMeter) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		s.WriteOpenMetrics(w)
	})
}

// StatusHandler serves WriteStatus.
func (s *SweepMeter) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.WriteStatus(w)
	})
}
