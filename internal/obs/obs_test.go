package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/name, rewriting the file under
// -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverges from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// fill populates a registry with a deterministic mix of every metric kind.
func fill() *Registry {
	r := New()
	r.Add(CEventsScheduled, 100)
	r.Add(CEventsFired, 97)
	r.Inc(CEventsCancelled)
	r.Add(CMessages, 42)
	r.Add(CMsgBytes, 42*1024)
	r.Inc(CCollectives)
	r.Inc(CInjections)
	r.Inc(CDetections)
	r.Inc(CRecoveries)
	r.SetMax(GHeapHighWater, 17)
	r.SetMax(GHeapHighWater, 9) // must not lower the high-water mark
	r.Observe(HMsgBytes, 512)
	r.Observe(HMsgBytes, 8<<10)
	r.Observe(HDetectNs, 2_500_000)
	r.Ckpt(1, 4096)
	r.Ckpt(1, 4096)
	r.Ckpt(4, 1<<20)
	r.Inc(CRestores)
	r.EnsureRanks(3)
	r.IncRankSend(0)
	r.IncRankSend(2)
	r.IncRankSend(2)
	return r
}

// Every method must be a no-op (and every getter zero-valued) on nil
// receivers: the instrumentation calls them unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Inc(CMessages)
	r.Add(CMsgBytes, 10)
	r.SetMax(GHeapHighWater, 5)
	r.Observe(HMsgBytes, 100)
	r.Ckpt(1, 64)
	r.EnsureRanks(4)
	r.IncRankSend(0)
	r.Merge(fill())
	r.Reset()
	if r.Enabled() || r.Get(CMessages) != 0 || r.Gauge(GHeapHighWater) != 0 {
		t.Error("nil registry is not inert")
	}
	if n, b := r.CkptAt(1); n != 0 || b != 0 || r.RankSends() != nil {
		t.Error("nil registry getters are not zero-valued")
	}
	if err := r.Reconcile(Expect{Messages: 99}); err != nil {
		t.Errorf("nil registry must reconcile trivially: %v", err)
	}

	var l *Log
	l.Event(100, "inject", "rank", 3)
	l.HostEvent("cell_start")
	if l.Enabled() || l.With("cell", 1) != nil {
		t.Error("nil log is not inert")
	}

	var s *SweepMeter
	s.AddTotal(10)
	s.CellDone("restart", fill())
	if st := s.Snapshot(); s.Enabled() || st.CellsTotal != 0 || st.Designs != nil {
		t.Error("nil sweep meter is not inert")
	}
	var buf bytes.Buffer
	if err := s.WriteOpenMetrics(&buf); err != nil {
		t.Errorf("nil meter exposition: %v", err)
	}
	if !strings.HasSuffix(buf.String(), "# EOF\n") {
		t.Error("nil meter exposition is not a terminated stream")
	}
}

// The registry exposition is deterministic, so it is pinned byte-for-byte.
func TestOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fill().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "registry.om", buf.Bytes())
	validateOpenMetrics(t, buf.String())
}

// The sweep meter exposition (per-design labels plus progress gauges) is
// pinned with an injected clock.
func TestSweepMeterGolden(t *testing.T) {
	s := NewSweepMeter()
	s.start = time.Unix(1000, 0)
	s.now = func() time.Time { return time.Unix(1010, 0) }
	s.AddTotal(8)
	s.CellDone("restart", fill())
	s.CellDone("replica", fill())
	s.CellDone("replica", fill())

	var buf bytes.Buffer
	if err := s.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "sweep.om", buf.Bytes())
	validateOpenMetrics(t, buf.String())

	buf.Reset()
	if err := s.WriteStatus(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "status.json", buf.Bytes())
	var st Status
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		t.Fatalf("status is not valid JSON: %v", err)
	}
	if st.CellsDone != 3 || st.CellsTotal != 8 {
		t.Errorf("status cells = %d/%d, want 3/8", st.CellsDone, st.CellsTotal)
	}
	if st.CellsPerSec != 0.3 {
		t.Errorf("cells/sec = %v, want 0.3 (3 cells / 10 s)", st.CellsPerSec)
	}
	if len(st.Designs) != 2 || st.Designs[1].CellsDone != 2 {
		t.Errorf("per-design status wrong: %+v", st.Designs)
	}
}

// validateOpenMetrics structurally checks an exposition stream: every
// sample belongs to a declared family, counter samples carry _total,
// histogram buckets are cumulative, and the stream terminates with # EOF.
func validateOpenMetrics(t *testing.T, text string) {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	if lines[len(lines)-1] != "# EOF" {
		t.Fatal("stream does not end with # EOF")
	}
	types := map[string]string{}
	for _, ln := range lines[:len(lines)-1] {
		if strings.HasPrefix(ln, "# TYPE ") {
			f := strings.Fields(ln)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", ln)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(ln, "#") {
			continue
		}
		name := ln
		if i := strings.IndexAny(ln, "{ "); i >= 0 {
			name = ln[:i]
		}
		family := name
		for _, suf := range []string{"_total", "_bucket", "_count", "_sum"} {
			if f, ok := types[strings.TrimSuffix(name, suf)]; ok && strings.HasSuffix(name, suf) {
				family = strings.TrimSuffix(name, suf)
				_ = f
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			t.Errorf("sample %q has no TYPE declaration", name)
			continue
		}
		if typ == "counter" && family == name {
			t.Errorf("counter sample %q lacks the _total suffix", name)
		}
	}
}

// The slog event schema is pinned with the host timestamp stripped.
func TestLogSchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	h := slog.NewJSONHandler(&buf, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	})
	l := NewLogWithHandler(h)
	l.Event(2_500_000_000, "inject", "rank", 3, "replica", 0, "kind", "crash", "absorbed", false)
	l.Event(2_600_000_000, "detect", "gid", 12, "latency_s", 0.1)
	l.With("cell", 7).HostEvent("cell_start", "app", "HPCCG", "design", "ulfm")
	golden(t, "events.jsonl", buf.Bytes())

	for i, ln := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("event %d is not valid JSON: %v", i, err)
		}
		if ev["msg"] == "" || ev["level"] != "INFO" {
			t.Errorf("event %d: missing msg/level: %v", i, ev)
		}
	}
}

// Merge sums counters and histograms, keeps gauge maxima, and grows the
// per-rank table; Reset clears everything.
func TestMergeAndReset(t *testing.T) {
	a, b := fill(), fill()
	b.SetMax(GHeapHighWater, 40)
	a.Merge(b)
	if got := a.Get(CMessages); got != 84 {
		t.Errorf("merged messages = %d, want 84", got)
	}
	if got := a.Gauge(GHeapHighWater); got != 40 {
		t.Errorf("merged gauge = %d, want max 40", got)
	}
	if got := a.RankSends()[2]; got != 4 {
		t.Errorf("merged rank-2 sends = %d, want 4", got)
	}
	if n, bts := a.CkptAt(1); n != 4 || bts != 16384 {
		t.Errorf("merged L1 ckpts = (%d, %d), want (4, 16384)", n, bts)
	}
	a.Reset()
	if a.Get(CMessages) != 0 || a.Gauge(GHeapHighWater) != 0 {
		t.Error("Reset left residue")
	}
	for rank, v := range a.RankSends() { // table stays allocated, zeroed
		if v != 0 {
			t.Errorf("Reset left rank %d sends = %d", rank, v)
		}
	}
	if n, _ := a.CkptAt(1); n != 0 {
		t.Error("Reset left per-level residue")
	}
}

// Reconcile accepts exactly-matching expectations and names every
// diverging figure otherwise.
func TestReconcile(t *testing.T) {
	r := fill()
	exp := Expect{
		Messages:   42,
		MsgBytes:   42 * 1024,
		Injections: 1, Detections: 1, Recoveries: 1,
		Checkpoints: 3, CkptBytes: 4096*2 + 1<<20,
		Restores: 1,
	}
	exp.CkptCountAt[1], exp.CkptBytesAt[1] = 2, 8192
	exp.CkptCountAt[4], exp.CkptBytesAt[4] = 1, 1<<20
	if err := r.Reconcile(exp); err != nil {
		t.Fatalf("exact expectation rejected: %v", err)
	}
	bad := exp
	bad.Messages = 41
	bad.CkptCountAt[1] = 3
	err := r.Reconcile(bad)
	if err == nil {
		t.Fatal("divergent expectation accepted")
	}
	for _, want := range []string{"messages", "ckpt-count-l1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("divergence error does not name %s: %v", want, err)
		}
	}
}

// Histogram buckets are cumulative in exposition but exact in storage:
// observations land in the first bucket whose bound is >= the value, and
// +Inf catches the rest.
func TestHistogramBuckets(t *testing.T) {
	r := New()
	r.Observe(HMsgBytes, 1)     // <= 256
	r.Observe(HMsgBytes, 256)   // <= 256 (inclusive)
	r.Observe(HMsgBytes, 257)   // <= 1Ki
	r.Observe(HMsgBytes, 1<<30) // +Inf
	h := &r.hists[HMsgBytes]
	if h.counts[0] != 2 || h.counts[1] != 1 {
		t.Errorf("bucket counts = %v", h.counts)
	}
	if h.counts[len(byteBounds)] != 1 {
		t.Errorf("overflow bucket = %d, want 1", h.counts[len(byteBounds)])
	}
	if h.n != 4 || h.sum != 1+256+257+1<<30 {
		t.Errorf("n/sum = %d/%d", h.n, h.sum)
	}
}
