// Structured lifecycle event log, backed by log/slog with a JSON handler.
// Off by default; a nil *Log is fully inert. When enabled it emits one
// JSON object per lifecycle event — inject, detect, failover, respawn,
// fallback, node-fail, cell start/finish — with a stable schema:
//
//	{"time":"...","level":"INFO","msg":"<event>","vt_s":1.234,...}
//
// "msg" is the event name; "vt_s" is virtual seconds within the run
// (absent on host-side events like cell_start); remaining keys are
// event-specific. The log is a pure observer: nothing in the simulation
// reads it, so log-on runs stay byte-identical on stdout.
//
// The handler serializes internally, so one Log may be shared by
// concurrent sweep cells; derived per-cell Logs (With) tag every event
// with its cell.

package obs

import (
	"io"
	"log/slog"
)

// Log wraps a slog.Logger with nil-receiver-safe emission helpers.
type Log struct {
	l *slog.Logger
}

// NewLog returns a Log writing JSON events to w.
func NewLog(w io.Writer) *Log {
	return &Log{l: slog.New(slog.NewJSONHandler(w, nil))}
}

// NewLogWithHandler returns a Log over a caller-built handler (tests use
// this to strip the host timestamp for golden comparisons).
func NewLogWithHandler(h slog.Handler) *Log {
	return &Log{l: slog.New(h)}
}

// Enabled reports whether events will be recorded (l non-nil).
func (l *Log) Enabled() bool { return l != nil }

// With returns a derived Log whose events all carry the given attrs
// (slog key-value pairs); nil stays nil.
func (l *Log) With(args ...any) *Log {
	if l == nil {
		return nil
	}
	return &Log{l: l.l.With(args...)}
}

// Event emits one in-run lifecycle event at virtual time vt (nanoseconds),
// rendered as a vt_s seconds attribute, followed by event-specific
// key-value pairs. No-op on a nil Log.
func (l *Log) Event(vt int64, name string, args ...any) {
	if l == nil {
		return
	}
	l.l.Info(name, append([]any{slog.Float64("vt_s", float64(vt)/1e9)}, args...)...)
}

// HostEvent emits one host-side lifecycle event (cell start/finish) with
// no virtual timestamp. No-op on a nil Log.
func (l *Log) HostEvent(name string, args ...any) {
	if l == nil {
		return
	}
	l.l.Info(name, args...)
}
