// OpenMetrics text exposition for the registry. The format follows the
// OpenMetrics spec: one `# TYPE` declaration per metric family, counter
// samples carry the `_total` suffix, histograms expose `_bucket{le=}` /
// `_count` / `_sum`, and the stream terminates with `# EOF`. Output is
// deterministic (fixed family order, fixed label order), so goldens can
// assert on it byte for byte.

package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// ContentType is the HTTP Content-Type for the exposition format.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// counterMeta names each counter's metric family (without the _total
// suffix) and help text.
var counterMeta = [numCounters]struct{ name, help string }{
	CEventsScheduled:  {"match_sim_events_scheduled", "Events pushed onto the scheduler heap."},
	CEventsFired:      {"match_sim_events_fired", "Events dispatched by the scheduler drain loop."},
	CEventsCancelled:  {"match_sim_events_cancelled", "Events eagerly removed by Cancel."},
	CSlotsReused:      {"match_sim_slots_reused", "Timer slots reused from the free list."},
	CSlotsGrown:       {"match_sim_slots_grown", "Timer slots newly appended to the slot table."},
	CLeakedEvents:     {"match_sim_leaked_events", "Events still pending when the run ended."},
	CMessages:         {"match_mpi_messages", "Point-to-point messages sent (each replica copy counts)."},
	CMsgBytes:         {"match_mpi_bytes", "Point-to-point payload bytes sent."},
	CCollectives:      {"match_mpi_collectives", "Collective rounds."},
	CDedupDrops:       {"match_mpi_dedup_dropped", "Duplicate messages suppressed at replicated receivers."},
	CDeliveriesPooled: {"match_mpi_deliveries_pooled", "Delivery records reused from the free list."},
	CDeliveriesAlloc:  {"match_mpi_deliveries_alloc", "Delivery records newly allocated."},
	CInjections:       {"match_fault_injections", "Fired fault injections."},
	CNodeFailures:     {"match_fault_node_failures", "Node failures."},
	CDetections:       {"match_detect_confirmed", "Confirmed failure detections."},
	CHeartbeats:       {"match_detect_heartbeat_rounds", "Detector heartbeat rounds."},
	CCheckpoints:      {"match_fti_checkpoints", "Committed checkpoint writes across all ranks and levels."},
	CCkptBytes:        {"match_fti_checkpoint_bytes", "Checkpoint bytes written."},
	CRestores:         {"match_fti_restores", "FTI recovery read-backs."},
	CPolicyArms:       {"match_ckpt_policy_arms", "Checkpoint-placement policy re-arms."},
	CPolicyAvoids:     {"match_ckpt_policy_avoided", "Checkpoints skipped by the placement policy."},
	CRecoveries:       {"match_recoveries", "Design-level recoveries."},
	CFailovers:        {"match_failovers", "Replica leader failover commits."},
	CAbsorbs:          {"match_absorbs", "Failures absorbed in place by a hot spare."},
	CFallbacks:        {"match_fallbacks", "Replica groups exhausted to checkpoint fallback."},
	CRepairs:          {"match_repairs", "In-situ repairs completed by restart/reinit/ULFM runtimes."},
	CRespawns:         {"match_respawns", "Hot spares gone live."},
	CRespawnsAborted:  {"match_respawns_aborted", "Hot-spare respawns aborted before go-live."},
}

var gaugeMeta = [numGauges]struct{ name, help string }{
	GHeapHighWater: {"match_sim_heap_high_water", "Maximum scheduler heap length observed."},
}

var histMeta = [numHists]struct{ name, help string }{
	HMsgBytes:   {"match_mpi_msg_size_bytes", "Point-to-point payload size distribution."},
	HCkptBytes:  {"match_fti_ckpt_size_bytes", "Per-checkpoint size distribution."},
	HDetectNs:   {"match_detect_latency_ns", "Failure detection latency distribution (virtual ns)."},
	HRecoveryNs: {"match_recovery_duration_ns", "Design-level recovery duration distribution (virtual ns)."},
}

// LabeledRegistry pairs a registry with a pre-rendered label set (the
// content between braces, e.g. `design="REPLICA-FTI"`; empty for none).
type LabeledRegistry struct {
	Labels string
	R      *Registry
}

// sample writes one exposition sample line.
func sample(bw *bufio.Writer, name, labels, extra string, v int64) {
	bw.WriteString(name)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(v, 10))
	bw.WriteByte('\n')
}

func header(bw *bufio.Writer, name, typ, help string) {
	fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
	fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
}

// writeRegistries writes every registry metric family, one TYPE header per
// family followed by one sample per labeled group.
func writeRegistries(bw *bufio.Writer, groups []LabeledRegistry) {
	for c := Counter(0); c < numCounters; c++ {
		m := counterMeta[c]
		header(bw, m.name, "counter", m.help)
		for _, g := range groups {
			sample(bw, m.name+"_total", g.Labels, "", g.R.Get(c))
		}
	}

	header(bw, "match_fti_level_checkpoints", "counter", "Committed checkpoints per FTI level.")
	for _, g := range groups {
		for lvl := 1; lvl < FTILevels; lvl++ {
			n, _ := g.R.CkptAt(lvl)
			sample(bw, "match_fti_level_checkpoints_total", g.Labels, fmt.Sprintf("level=%q", strconv.Itoa(lvl)), n)
		}
	}
	header(bw, "match_fti_level_checkpoint_bytes", "counter", "Checkpoint bytes per FTI level.")
	for _, g := range groups {
		for lvl := 1; lvl < FTILevels; lvl++ {
			_, b := g.R.CkptAt(lvl)
			sample(bw, "match_fti_level_checkpoint_bytes_total", g.Labels, fmt.Sprintf("level=%q", strconv.Itoa(lvl)), b)
		}
	}

	header(bw, "match_mpi_rank_sends", "counter", "Point-to-point sends issued per rank.")
	for _, g := range groups {
		for rank, v := range g.R.RankSends() {
			sample(bw, "match_mpi_rank_sends_total", g.Labels, fmt.Sprintf("rank=%q", strconv.Itoa(rank)), v)
		}
	}

	for gg := Gauge(0); gg < numGauges; gg++ {
		m := gaugeMeta[gg]
		header(bw, m.name, "gauge", m.help)
		for _, g := range groups {
			sample(bw, m.name, g.Labels, "", g.R.Gauge(gg))
		}
	}

	for h := Hist(0); h < numHists; h++ {
		m := histMeta[h]
		header(bw, m.name, "histogram", m.help)
		bounds := histBounds[h]
		for _, g := range groups {
			var hs *hist
			if g.R != nil {
				hs = &g.R.hists[h]
			} else {
				hs = &hist{}
			}
			cum := int64(0)
			for i, b := range bounds {
				cum += hs.counts[i]
				sample(bw, m.name+"_bucket", g.Labels, fmt.Sprintf("le=%q", strconv.FormatInt(b, 10)), cum)
			}
			cum += hs.counts[len(bounds)]
			sample(bw, m.name+"_bucket", g.Labels, `le="+Inf"`, cum)
			sample(bw, m.name+"_count", g.Labels, "", hs.n)
			sample(bw, m.name+"_sum", g.Labels, "", hs.sum)
		}
	}
}

// WriteOpenMetrics writes the registry as a complete OpenMetrics stream
// (terminated by # EOF). A nil registry writes an all-zero stream.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeRegistries(bw, []LabeledRegistry{{R: r}})
	bw.WriteString("# EOF\n")
	return bw.Flush()
}
