// Package obs is the aggregate-metrics side of the observability stack:
// an allocation-conscious registry of counters, gauges, and fixed-bucket
// histograms threaded through every simulator layer, plus OpenMetrics
// exposition, a live sweep meter with /metrics and /status HTTP handlers,
// and a structured slog-backed event log.
//
// Where internal/trace answers "what happened inside one run" with a span
// timeline, obs answers "how much, across how many runs" with totals that
// are cheap enough to keep during a 10k-cell campaign and scrapeable while
// it runs.
//
// The discipline matches trace: a nil *Registry is the inert default —
// every method is nil-receiver safe, instrumented code pays one branch per
// potential increment, and a metrics-off run is byte-identical to an
// uninstrumented one. A metrics-on run self-checks: core.Run reconciles
// the registry totals against the Breakdown (and the trace span counts
// when tracing is also on) and fails hard on divergence.
//
// The registry records plain int64s with no locking: one Registry serves
// one core.Run, which is single-threaded in virtual time. Sweeps give
// every cell a fresh Registry and Merge the finished cell into a
// SweepMeter under its own lock.
package obs

import (
	"fmt"
	"strings"
)

// Counter enumerates the monotonically increasing totals. The registry
// stores them in a fixed array, so incrementing is an index and an add.
type Counter uint8

const (
	// Scheduler (simnet).

	// CEventsScheduled counts events pushed onto the scheduler heap.
	CEventsScheduled Counter = iota
	// CEventsFired counts events dispatched by the drain loop.
	CEventsFired
	// CEventsCancelled counts events eagerly removed by Cancel.
	CEventsCancelled
	// CSlotsReused counts timer slots taken from the free list.
	CSlotsReused
	// CSlotsGrown counts timer slots newly appended to the slot table.
	CSlotsGrown
	// CLeakedEvents counts events still pending when the run ended.
	CLeakedEvents

	// Message path (mpi).

	// CMessages counts point-to-point sends (each replica copy is one).
	CMessages
	// CMsgBytes sums payload bytes over CMessages.
	CMsgBytes
	// CCollectives counts collective rounds.
	CCollectives
	// CDedupDrops counts duplicate messages suppressed at replicated
	// receivers.
	CDedupDrops
	// CDeliveriesPooled counts delivery records reused from the free list.
	CDeliveriesPooled
	// CDeliveriesAlloc counts delivery records newly allocated.
	CDeliveriesAlloc

	// Faults and detection.

	// CInjections counts fired fault injections.
	CInjections
	// CNodeFailures counts node failures.
	CNodeFailures
	// CDetections counts confirmed failure detections.
	CDetections
	// CHeartbeats counts detector heartbeat rounds.
	CHeartbeats

	// Checkpointing (fti + ckpt policy).

	// CCheckpoints counts committed checkpoint writes across all ranks
	// and levels (per-level splits live in the CkptCountAt array).
	CCheckpoints
	// CCkptBytes sums bytes over CCheckpoints.
	CCkptBytes
	// CRestores counts FTI recovery read-backs.
	CRestores
	// CPolicyArms counts checkpoint-placement policy re-arms.
	CPolicyArms
	// CPolicyAvoids counts checkpoints the policy skipped at a stride
	// boundary.
	CPolicyAvoids

	// Designs.

	// CRecoveries counts design-level recoveries (relaunch, reinit reset,
	// ULFM repair, replica failover/fallback).
	CRecoveries
	// CFailovers counts replica leader failover commits.
	CFailovers
	// CAbsorbs counts failures absorbed in place by a hot spare.
	CAbsorbs
	// CFallbacks counts replica groups exhausted to checkpoint fallback.
	CFallbacks
	// CRepairs counts in-situ repairs completed by the restart, reinit,
	// and ULFM runtimes.
	CRepairs
	// CRespawns counts hot spares that went live.
	CRespawns
	// CRespawnsAborted counts hot-spare respawns aborted before go-live.
	CRespawnsAborted

	numCounters
)

// Gauge enumerates the level-style figures (non-monotonic; the registry
// keeps the maximum observed value for high-water semantics).
type Gauge uint8

const (
	// GHeapHighWater is the maximum scheduler heap length observed.
	GHeapHighWater Gauge = iota

	numGauges
)

// Hist enumerates the fixed-bucket histograms.
type Hist uint8

const (
	// HMsgBytes is the point-to-point payload size distribution (bytes).
	HMsgBytes Hist = iota
	// HCkptBytes is the per-checkpoint size distribution (bytes).
	HCkptBytes
	// HDetectNs is the failure detection latency distribution (virtual ns).
	HDetectNs
	// HRecoveryNs is the design-level recovery duration distribution
	// (virtual ns).
	HRecoveryNs

	numHists
)

// FTILevels bounds the per-level checkpoint arrays (levels 1..4; index 0
// unused), matching core.Breakdown.CkptCountAt.
const FTILevels = 5

// histBuckets is the largest bucket count any histogram uses; histogram
// state is fixed arrays sized by it, so a Registry is one allocation.
const histBuckets = 12

// byteBounds and nsBounds are the shared upper bucket bounds (inclusive,
// power-of-4-ish). The final +Inf bucket is implicit.
var (
	byteBounds = [...]int64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
	nsBounds   = [...]int64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11}
)

// histBounds maps each histogram to its bucket bounds.
var histBounds = [numHists][]int64{
	HMsgBytes:   byteBounds[:],
	HCkptBytes:  byteBounds[:],
	HDetectNs:   nsBounds[:],
	HRecoveryNs: nsBounds[:],
}

// hist is one fixed-bucket histogram: counts[i] is the number of
// observations <= bounds[i]; counts[len(bounds)] is the overflow (+Inf)
// bucket.
type hist struct {
	counts [histBuckets + 1]int64
	sum    int64
	n      int64
}

func (h *hist) observe(bounds []int64, v int64) {
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Registry accumulates one run's metrics. The zero value of *Registry —
// nil — is the inert default; New returns a live one.
type Registry struct {
	counters  [numCounters]int64
	gauges    [numGauges]int64
	ckptCount [FTILevels]int64
	ckptBytes [FTILevels]int64
	hists     [numHists]hist
	rankSends []int64 // per-rank point-to-point send counts
}

// New returns an empty live registry.
func New() *Registry { return &Registry{} }

// Enabled reports whether a registry is attached (r non-nil).
func (r *Registry) Enabled() bool { return r != nil }

// Inc adds one to counter c. No-op on a nil registry.
func (r *Registry) Inc(c Counter) {
	if r == nil {
		return
	}
	r.counters[c]++
}

// Add adds v to counter c. No-op on a nil registry.
func (r *Registry) Add(c Counter, v int64) {
	if r == nil {
		return
	}
	r.counters[c] += v
}

// Get returns counter c's value; 0 on a nil registry.
func (r *Registry) Get(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c]
}

// SetMax raises gauge g to v if v exceeds the recorded maximum.
func (r *Registry) SetMax(g Gauge, v int64) {
	if r == nil {
		return
	}
	if v > r.gauges[g] {
		r.gauges[g] = v
	}
}

// Gauge returns gauge g's value; 0 on a nil registry.
func (r *Registry) Gauge(g Gauge) int64 {
	if r == nil {
		return 0
	}
	return r.gauges[g]
}

// Observe records v into histogram h. No-op on a nil registry.
func (r *Registry) Observe(h Hist, v int64) {
	if r == nil {
		return
	}
	r.hists[h].observe(histBounds[h], v)
}

// Ckpt records one committed checkpoint of size bytes at FTI level
// (1..4): the total counters, the per-level split, and the size
// histogram. No-op on a nil registry.
func (r *Registry) Ckpt(level int, bytes int64) {
	if r == nil {
		return
	}
	r.counters[CCheckpoints]++
	r.counters[CCkptBytes] += bytes
	if level > 0 && level < FTILevels {
		r.ckptCount[level]++
		r.ckptBytes[level] += bytes
	}
	r.hists[HCkptBytes].observe(histBounds[HCkptBytes], bytes)
}

// CkptAt returns the per-level checkpoint (count, bytes) for level.
func (r *Registry) CkptAt(level int) (count, bytes int64) {
	if r == nil || level < 0 || level >= FTILevels {
		return 0, 0
	}
	return r.ckptCount[level], r.ckptBytes[level]
}

// EnsureRanks grows the per-rank send table to cover n ranks. Called once
// per run from the harness, so steady-state IncRankSend never grows.
func (r *Registry) EnsureRanks(n int) {
	if r == nil || n <= len(r.rankSends) {
		return
	}
	grown := make([]int64, n)
	copy(grown, r.rankSends)
	r.rankSends = grown
}

// IncRankSend counts one point-to-point send issued by rank. Out-of-range
// ranks (or a nil registry) are ignored.
func (r *Registry) IncRankSend(rank int) {
	if r == nil || rank < 0 || rank >= len(r.rankSends) {
		return
	}
	r.rankSends[rank]++
}

// RankSends returns the live per-rank send table (not a copy).
func (r *Registry) RankSends() []int64 {
	if r == nil {
		return nil
	}
	return r.rankSends
}

// Merge adds o's totals into r: counters and histograms sum, gauges take
// the max, and the per-rank table grows to cover both. Used by
// RunAveraged (across reps) and the SweepMeter (across cells).
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	for i := range r.counters {
		r.counters[i] += o.counters[i]
	}
	for i := range r.gauges {
		if o.gauges[i] > r.gauges[i] {
			r.gauges[i] = o.gauges[i]
		}
	}
	for i := range r.ckptCount {
		r.ckptCount[i] += o.ckptCount[i]
		r.ckptBytes[i] += o.ckptBytes[i]
	}
	for i := range r.hists {
		dst, src := &r.hists[i], &o.hists[i]
		for b := range dst.counts {
			dst.counts[b] += src.counts[b]
		}
		dst.sum += src.sum
		dst.n += src.n
	}
	r.EnsureRanks(len(o.rankSends))
	for i, v := range o.rankSends {
		r.rankSends[i] += v
	}
}

// Reset zeroes every figure, keeping allocated storage for reuse.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.counters = [numCounters]int64{}
	r.gauges = [numGauges]int64{}
	r.ckptCount = [FTILevels]int64{}
	r.ckptBytes = [FTILevels]int64{}
	for i := range r.hists {
		r.hists[i] = hist{}
	}
	for i := range r.rankSends {
		r.rankSends[i] = 0
	}
}

// Expect is the harness-side view the registry reconciles against: the
// Breakdown figures plus raw (un-deduplicated, all-rank) FTI sums the
// recorder accumulates by an independent path — the registry counts at
// write time inside each layer, the Breakdown counts at teardown from
// each design's own accounting.
type Expect struct {
	Messages     int64
	MsgBytes     int64
	Injections   int64
	Detections   int64
	Recoveries   int64
	Respawns     int64
	PolicyAvoids int64
	LeakedEvents int64
	Checkpoints  int64
	CkptBytes    int64
	CkptCountAt  [FTILevels]int64
	CkptBytesAt  [FTILevels]int64
	Restores     int64
}

// Reconcile compares the registry totals against e and returns an error
// naming every diverging figure; nil when everything matches exactly. A
// nil registry reconciles trivially.
func (r *Registry) Reconcile(e Expect) error {
	if r == nil {
		return nil
	}
	var diffs []string
	check := func(name string, got, want int64) {
		if got != want {
			diffs = append(diffs, fmt.Sprintf("%s: registry %d != expected %d", name, got, want))
		}
	}
	check("messages", r.counters[CMessages], e.Messages)
	check("msg-bytes", r.counters[CMsgBytes], e.MsgBytes)
	check("injections", r.counters[CInjections], e.Injections)
	check("detections", r.counters[CDetections], e.Detections)
	check("recoveries", r.counters[CRecoveries], e.Recoveries)
	check("respawns", r.counters[CRespawns], e.Respawns)
	check("policy-avoids", r.counters[CPolicyAvoids], e.PolicyAvoids)
	check("leaked-events", r.counters[CLeakedEvents], e.LeakedEvents)
	check("checkpoints", r.counters[CCheckpoints], e.Checkpoints)
	check("ckpt-bytes", r.counters[CCkptBytes], e.CkptBytes)
	check("restores", r.counters[CRestores], e.Restores)
	for lvl := 1; lvl < FTILevels; lvl++ {
		check(fmt.Sprintf("ckpt-count-l%d", lvl), r.ckptCount[lvl], e.CkptCountAt[lvl])
		check(fmt.Sprintf("ckpt-bytes-l%d", lvl), r.ckptBytes[lvl], e.CkptBytesAt[lvl])
	}
	if diffs != nil {
		return fmt.Errorf("obs: registry/breakdown divergence: %s", strings.Join(diffs, "; "))
	}
	return nil
}
