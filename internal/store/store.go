// Package store is a content-addressed result cache: opaque values keyed
// by the hex SHA-256 of their canonicalized configuration. The caller owns
// both sides of the contract — it derives keys (core.CellKey canonicalizes
// and hashes a run configuration, version-stamped so simulator changes
// invalidate cleanly) and encodes/decodes values (the campaign runner
// stores JSON-encoded Breakdowns) — so the store itself stays free of any
// simulation dependency.
//
// The store layers an in-memory LRU front over an optional on-disk object
// directory. Every entry written while a directory is configured persists
// across process restarts; the LRU only bounds resident memory, so an
// evicted entry is still a (disk) hit. A nil *Store is inert: Get always
// misses and Put is a no-op, which lets runners consult it
// unconditionally.
package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// DefaultMaxEntries bounds the in-memory LRU when the caller passes 0.
const DefaultMaxEntries = 4096

// Store is a content-addressed byte store with an in-memory LRU front and
// an optional on-disk backing directory. All methods are safe for
// concurrent use.
type Store struct {
	mu      sync.Mutex
	dir     string // "" = memory-only
	max     int    // LRU capacity in entries
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64      // resident value bytes
	stats   Stats
}

type entry struct {
	key string
	val []byte
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
// Hits = MemHits + DiskHits; a warm rerun of a fully cached sweep shows
// Misses and Puts unchanged while Hits grows by the cell count.
type Stats struct {
	Hits      int64 `json:"hits"`
	MemHits   int64 `json:"mem_hits"`
	DiskHits  int64 `json:"disk_hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	// Entries and Bytes describe the resident LRU front, not the disk
	// population (disk entries are unbounded and survive restarts).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// HitRate is the fraction of lookups served from cache (0 when idle).
func (s Stats) HitRate() float64 {
	if n := s.Hits + s.Misses; n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Open returns a store backed by dir (created if missing; "" keeps the
// store memory-only). maxEntries bounds the in-memory LRU front; 0 selects
// DefaultMaxEntries, negative is an error.
func Open(dir string, maxEntries int) (*Store, error) {
	if maxEntries < 0 {
		return nil, fmt.Errorf("store: negative LRU capacity %d", maxEntries)
	}
	if maxEntries == 0 {
		maxEntries = DefaultMaxEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{
		dir:     dir,
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}, nil
}

// NewMemory returns a memory-only store (no persistence).
func NewMemory(maxEntries int) *Store {
	s, err := Open("", maxEntries)
	if err != nil {
		panic(err) // only reachable with a negative capacity
	}
	return s
}

// Enabled reports whether a store is attached (s non-nil).
func (s *Store) Enabled() bool { return s != nil }

// Dir reports the backing directory ("" for a memory-only store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// validKey guards the disk path: keys are lowercase hex digests, so a
// malformed key can never escape the object directory.
func validKey(key string) error {
	if len(key) < 16 {
		return fmt.Errorf("store: key %q too short (want a hex digest)", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: key %q is not lowercase hex", key)
		}
	}
	return nil
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Get returns the value stored under key. A memory hit promotes the entry
// to most-recently-used; a disk hit additionally re-populates the LRU
// front. A nil store, an invalid key, and an absent entry all miss.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil || validKey(key) != nil {
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		s.stats.MemHits++
		val := el.Value.(*entry).val
		s.mu.Unlock()
		return val, true
	}
	s.mu.Unlock()
	if s.dir == "" {
		s.miss()
		return nil, false
	}
	val, err := os.ReadFile(s.path(key))
	if err != nil {
		s.miss()
		return nil, false
	}
	s.mu.Lock()
	// Re-check under the lock: a concurrent Get may have re-populated it.
	if _, ok := s.entries[key]; !ok {
		s.insertLocked(key, val)
	}
	s.stats.Hits++
	s.stats.DiskHits++
	s.mu.Unlock()
	return val, true
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// Put stores val under key, writing through to disk (atomic temp+rename)
// when a directory is configured. Storing under an existing key replaces
// the value. A nil store silently drops the write.
func (s *Store) Put(key string, val []byte) error {
	if s == nil {
		return nil
	}
	if err := validKey(key); err != nil {
		return err
	}
	if s.dir != "" {
		dir := filepath.Dir(s.path(key))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		tmp, err := os.CreateTemp(dir, key+".tmp*")
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := tmp.Write(val); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("store: %w", err)
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("store: %w", err)
		}
		if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("store: %w", err)
		}
	}
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		old := el.Value.(*entry)
		s.bytes += int64(len(val)) - int64(len(old.val))
		old.val = val
		s.lru.MoveToFront(el)
	} else {
		s.insertLocked(key, val)
	}
	s.stats.Puts++
	s.mu.Unlock()
	return nil
}

// insertLocked adds a fresh entry at the LRU front and evicts past the
// capacity. Callers hold s.mu.
func (s *Store) insertLocked(key string, val []byte) {
	s.entries[key] = s.lru.PushFront(&entry{key: key, val: val})
	s.bytes += int64(len(val))
	for s.lru.Len() > s.max {
		back := s.lru.Back()
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.bytes -= int64(len(e.val))
		s.stats.Evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.Bytes = s.bytes
	return st
}
