package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func keyOf(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestMemoryRoundTrip(t *testing.T) {
	s := NewMemory(0)
	k := keyOf("a")
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store hit")
	}
	if err := s.Put(k, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get(k)
	if !ok || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.MemHits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Entries != 1 || st.Bytes != 5 {
		t.Fatalf("residency = %+v", st)
	}
}

func TestPutReplaces(t *testing.T) {
	s := NewMemory(0)
	k := keyOf("a")
	s.Put(k, []byte("one"))
	s.Put(k, []byte("longer-two"))
	v, ok := s.Get(k)
	if !ok || string(v) != "longer-two" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes != int64(len("longer-two")) {
		t.Fatalf("residency after replace = %+v", st)
	}
}

func TestInvalidKeys(t *testing.T) {
	s := NewMemory(0)
	for _, k := range []string{"", "short", "ZZZZZZZZZZZZZZZZZZZZ", "../../../../etc/passwd0"} {
		if err := s.Put(k, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", k)
		}
		if _, ok := s.Get(k); ok {
			t.Errorf("Get(%q) hit", k)
		}
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("persist")
	if err := s1.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory serves the entry from disk.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s2.Get(k)
	if !ok || string(v) != "payload" {
		t.Fatalf("reopen Get = %q, %v", v, ok)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("want a disk hit, got %+v", st)
	}
	// The disk hit re-populated the LRU front: the next Get is a mem hit.
	if _, ok := s2.Get(k); !ok {
		t.Fatal("second Get missed")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("want a mem hit after promotion, got %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s := NewMemory(2)
	keys := []string{keyOf("1"), keyOf("2"), keyOf("3")}
	for i, k := range keys {
		s.Put(k, []byte(fmt.Sprintf("v%d", i)))
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after overflow = %+v", st)
	}
	// The oldest entry is gone (memory-only store: a real miss).
	if _, ok := s.Get(keys[0]); ok {
		t.Fatal("evicted entry still resident")
	}
	if _, ok := s.Get(keys[2]); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestEvictedEntryIsDiskHit(t *testing.T) {
	s, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{keyOf("1"), keyOf("2"), keyOf("3")}
	for i, k := range keys {
		s.Put(k, []byte(fmt.Sprintf("v%d", i)))
	}
	// Evicted from memory, but the write-through copy survives.
	v, ok := s.Get(keys[0])
	if !ok || string(v) != "v0" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if st := s.Stats(); st.DiskHits != 1 || st.Evictions < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetRecency(t *testing.T) {
	s := NewMemory(2)
	a, b, c := keyOf("a"), keyOf("b"), keyOf("c")
	s.Put(a, []byte("A"))
	s.Put(b, []byte("B"))
	s.Get(a) // promote a over b
	s.Put(c, []byte("C"))
	if _, ok := s.Get(b); ok {
		t.Fatal("b should have been evicted (a was touched more recently)")
	}
	if _, ok := s.Get(a); !ok {
		t.Fatal("a evicted despite recency")
	}
}

func TestNilStore(t *testing.T) {
	var s *Store
	if s.Enabled() {
		t.Fatal("nil store enabled")
	}
	if err := s.Put(keyOf("x"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyOf("x")); ok {
		t.Fatal("nil store hit")
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

func TestHitRate(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Fatalf("idle hit rate = %g", r)
	}
	if r := (Stats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Fatalf("hit rate = %g", r)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keyOf(fmt.Sprintf("key-%d", i%16))
				want := []byte(fmt.Sprintf("val-%d", i%16))
				s.Put(k, want)
				if v, ok := s.Get(k); ok && !bytes.Equal(v, want) {
					t.Errorf("g%d: Get = %q, want %q", g, v, want)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Puts != 8*50 {
		t.Fatalf("puts = %+v", st)
	}
}

func TestDiskLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("layout")
	s.Put(k, []byte("x"))
	// Objects shard under the first two hex digits of the key.
	if _, err := os.Stat(filepath.Join(dir, k[:2], k)); err != nil {
		t.Fatal(err)
	}
	// No stray temp files survive a completed Put.
	m, _ := filepath.Glob(filepath.Join(dir, k[:2], "*.tmp*"))
	if len(m) != 0 {
		t.Fatalf("temp files left behind: %v", m)
	}
}
