// Package detect is MATCH's unified in-band failure-detection subsystem.
//
// The paper's cost decomposition — detection + recovery + steady-state
// interference — needs detection to be a first-class, swept parameter, yet
// each fault-tolerance design historically carried its own ad-hoc model:
// ULFM a private ring heartbeat, Reinit a private daemon tree, and
// Restart/Replica an implicit "the launcher sees the SIGCHLD". This
// package factors all of that into one Detector interface with three
// strategies, so any design can run under any detector and the
// detection-latency/interference trade-off becomes measurable everywhere:
//
//   - Launcher: the out-of-band baseline. Process deaths are observed the
//     instant they happen (waitpid/SIGCHLD through the launcher chain);
//     detection latency is exactly zero and no detector traffic exists.
//   - Ring: an OCFTL-style in-band ring heartbeat (Bosilca et al.): every
//     alive member emits a heartbeat to its ring successor each period,
//     paying NIC time and a per-period CPU interference steal; a silent
//     peer is declared dead after an observation timeout.
//   - Tree: a daemon supervision tree (Reinit++'s model): node-local
//     daemons see exact death times and confirm them after a timeout at
//     the supervision period's granularity; optional heartbeat bytes flow
//     child-to-parent along a binomial tree.
//
// A detector observes failures and reports them; what to *do* about a
// confirmed failure (revoke, global-restart, abort, failover) stays with
// the consuming runtime, passed in as the onDetect callback.
package detect

import (
	"fmt"
	"math/bits"
	"strings"

	"match/internal/mpi"
	"match/internal/obs"
	"match/internal/simnet"
	"match/internal/trace"
)

// Kind selects a detection strategy.
type Kind int

const (
	// Preset defers to the consuming design's calibrated default: ring for
	// ULFM, tree for Reinit, launcher for Restart and Replica. It is the
	// zero value so untouched configurations reproduce calibrated results.
	Preset Kind = iota
	// Launcher is instant SIGCHLD-style detection through the job launcher.
	Launcher
	// Ring is the OCFTL-style in-band ring heartbeat.
	Ring
	// Tree is the daemon supervision tree.
	Tree
)

func (k Kind) String() string {
	switch k {
	case Preset:
		return "preset"
	case Launcher:
		return "launcher"
	case Ring:
		return "ring"
	case Tree:
		return "tree"
	}
	return fmt.Sprintf("detect.Kind(%d)", int(k))
}

// Kinds lists every strategy, Preset first.
func Kinds() []Kind { return []Kind{Preset, Launcher, Ring, Tree} }

// ParseKind resolves a strategy name case-insensitively ("" means Preset).
func ParseKind(name string) (Kind, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	if want == "" {
		return Preset, nil
	}
	for _, k := range Kinds() {
		if want == k.String() {
			return k, nil
		}
	}
	names := make([]string, 0, len(Kinds()))
	for _, k := range Kinds() {
		names = append(names, k.String())
	}
	return 0, fmt.Errorf("detect: unknown detector %q (valid: %s)", name, strings.Join(names, ", "))
}

// Config tunes a detector. Zero fields of an explicit (non-Preset) kind are
// filled by Resolve from that kind's defaults; New itself is strict and
// rejects configurations that could never detect.
type Config struct {
	Kind Kind
	// HeartbeatPeriod is the emission/supervision period (ring and tree).
	HeartbeatPeriod simnet.Time
	// HeartbeatBytes is the wire size of one heartbeat message. Ring
	// heartbeats travel the ring; tree heartbeats (when non-zero) travel
	// child-to-parent. Zero sends nothing.
	HeartbeatBytes int
	// DetectTimeout is the observation window before a silent (ring) or
	// dead (tree) peer is declared failed.
	DetectTimeout simnet.Time
	// InterferenceSteal is CPU time stolen from every process per period by
	// detector-level collectives: scaled by log2(P) for the ring (whose
	// runtime agreement grows with scale), flat for the tree.
	InterferenceSteal simnet.Time
}

// RingDefaults is the generic ring detector (matching ULFM's calibrated
// heartbeat): 100ms period, 64-byte heartbeats, 3x-period timeout, 40µs
// per-period interference steal.
func RingDefaults() Config {
	return Config{
		Kind:              Ring,
		HeartbeatPeriod:   100 * simnet.Millisecond,
		HeartbeatBytes:    64,
		DetectTimeout:     300 * simnet.Millisecond,
		InterferenceSteal: 40 * simnet.Microsecond,
	}
}

// TreeDefaults is the generic tree detector (matching Reinit's calibrated
// daemon supervision): 25ms period, 100ms confirmation timeout, no
// heartbeat traffic or steal.
func TreeDefaults() Config {
	return Config{
		Kind:            Tree,
		HeartbeatPeriod: 25 * simnet.Millisecond,
		DetectTimeout:   100 * simnet.Millisecond,
	}
}

// LauncherConfig is the instant out-of-band detector.
func LauncherConfig() Config { return Config{Kind: Launcher} }

// Resolve merges a user-supplied configuration with a design's preset:
// Preset kind returns the preset unchanged; an explicit kind has its zero
// fields filled from the kind's defaults, except that an explicitly set
// period derives an unset timeout as 3x the period (so a period sweep keeps
// a sane, monotonic timeout without the caller spelling both out).
func Resolve(user, preset Config) Config {
	if user.Kind == Preset {
		return preset
	}
	out := user
	var def Config
	switch user.Kind {
	case Ring:
		def = RingDefaults()
	case Tree:
		def = TreeDefaults()
	default:
		return out // Launcher has no tunables
	}
	if out.HeartbeatPeriod == 0 {
		out.HeartbeatPeriod = def.HeartbeatPeriod
	}
	if out.DetectTimeout == 0 {
		if user.HeartbeatPeriod != 0 {
			out.DetectTimeout = 3 * out.HeartbeatPeriod
		} else {
			out.DetectTimeout = def.DetectTimeout
		}
	}
	if out.HeartbeatBytes == 0 {
		out.HeartbeatBytes = def.HeartbeatBytes
	}
	if out.InterferenceSteal == 0 {
		out.InterferenceSteal = def.InterferenceSteal
	}
	return out
}

// Validate rejects configurations that could never detect or are
// internally inconsistent. It is strict: call it (or New, which calls it)
// only on resolved configurations.
func (c Config) Validate() error {
	switch c.Kind {
	case Preset:
		return fmt.Errorf("detect: Preset must be resolved against a design preset before use (see Resolve)")
	case Launcher:
		return nil
	case Ring, Tree:
		if c.HeartbeatPeriod <= 0 {
			return fmt.Errorf("detect: %s detector with heartbeat period %v would never detect (want > 0)", c.Kind, c.HeartbeatPeriod)
		}
		if c.DetectTimeout < c.HeartbeatPeriod {
			return fmt.Errorf("detect: %s detector timeout %v < heartbeat period %v would declare every peer dead on the first silent period (want timeout >= period)",
				c.Kind, c.DetectTimeout, c.HeartbeatPeriod)
		}
		if c.HeartbeatBytes < 0 || c.InterferenceSteal < 0 {
			return fmt.Errorf("detect: %s detector with negative heartbeat bytes (%d) or interference steal (%v)",
				c.Kind, c.HeartbeatBytes, c.InterferenceSteal)
		}
		return nil
	}
	return fmt.Errorf("detect: unknown detector kind %d", int(c.Kind))
}

// String renders the configuration for tables and CLI output.
func (c Config) String() string {
	switch c.Kind {
	case Ring, Tree:
		return fmt.Sprintf("%s(p=%v,t=%v)", c.Kind, c.HeartbeatPeriod, c.DetectTimeout)
	default:
		return c.Kind.String()
	}
}

// Failure is one confirmed process failure as the detector saw it.
type Failure struct {
	// GID is the failed process's id within its job.
	GID int
	// FailedAt is when the failure became observable to this detector: the
	// exact death time for Launcher and Tree (the local daemon sees the
	// SIGCHLD), the first heartbeat round after the death for Ring (an
	// in-band detector cannot see the death itself).
	FailedAt simnet.Time
	// DetectedAt is when the detector confirmed the failure and invoked
	// onDetect: equal to FailedAt for Launcher, FailedAt + DetectTimeout
	// for Ring, the confirming supervision round for Tree.
	DetectedAt simnet.Time
}

// Latency is the detector-attributable delay for this failure.
func (f Failure) Latency() simnet.Time { return f.DetectedAt - f.FailedAt }

// Detector watches a set of processes and reports each confirmed failure
// exactly once. Implementations run entirely on the simulated cluster's
// scheduler; they are not goroutine-safe.
type Detector interface {
	// Kind reports the strategy.
	Kind() Kind
	// Config returns the resolved configuration in use.
	Config() Config
	// SetProcs replaces the watch set (e.g. after a recovery rebuilt the
	// world with replacement processes). Observation state for already-seen
	// failures is retained.
	SetProcs(ps []*mpi.Process)
	// SetWorld is SetProcs over the communicator's member processes.
	SetWorld(w *mpi.Comm)
	// ObservedAt reports when the detector first observed gid's failure,
	// which may precede confirmation (ring repairs consult this for
	// failures still inside their observation window).
	ObservedAt(gid int) (simnet.Time, bool)
	// FailureOf returns the confirmed failure record for gid.
	FailureOf(gid int) (Failure, bool)
	// Failures lists confirmed failures in confirmation order.
	Failures() []Failure
	// Stop halts monitoring; no further confirmations are delivered.
	Stop()
}

// New builds a detector on job delivering confirmed failures to onDetect
// (nil for observe-only use). The configuration must be resolved: Preset is
// rejected, as are never-detecting ring/tree configurations.
func New(cfg Config, job *mpi.Job, onDetect func(Failure)) (Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if onDetect == nil {
		onDetect = func(Failure) {}
	}
	b := base{cfg: cfg, job: job, onDetect: onDetect,
		observed: make(map[int]simnet.Time), confirmed: make(map[int]bool),
		watched: make(map[int]bool)}
	switch cfg.Kind {
	case Launcher:
		return &launcherDetector{base: b}, nil
	case Ring:
		d := &ringDetector{base: b}
		job.Cluster().Scheduler().AfterFunc(cfg.HeartbeatPeriod, ringTick, d, 0)
		return d, nil
	default: // Tree; Validate rejected everything else
		d := &treeDetector{base: b}
		job.Cluster().Scheduler().AfterFunc(cfg.HeartbeatPeriod, treeTick, d, 0)
		return d, nil
	}
}

// ringTick and treeTick are the static heartbeat event bodies: scheduling
// a method value (d.tick) allocates a bound-method closure per round, and
// heartbeats fire every period for the whole run, so the periodic
// detectors ride the scheduler's closure-free path instead.
func ringTick(a any, _ int64) { a.(*ringDetector).tick() }
func treeTick(a any, _ int64) { a.(*treeDetector).tick() }

// MustNew is New for contexts where the configuration was already
// validated (core.Run validates before launching); it panics on error.
func MustNew(cfg Config, job *mpi.Job, onDetect func(Failure)) Detector {
	d, err := New(cfg, job, onDetect)
	if err != nil {
		panic(err)
	}
	return d
}

// Totals sums the detection latency over every confirmed failure of the
// given detectors (a run under Restart/Replica owns one detector per job
// incarnation) and reports the confirmed-failure count. These are the
// quantities Breakdown.DetectLatency/DetectedFailures report.
func Totals(ds ...Detector) (latency simnet.Time, failures int) {
	for _, d := range ds {
		if d == nil {
			continue
		}
		for _, f := range d.Failures() {
			latency += f.Latency()
			failures++
		}
	}
	return latency, failures
}

// base is the state shared by all strategies.
type base struct {
	cfg       Config
	job       *mpi.Job
	onDetect  func(Failure)
	procs     []*mpi.Process
	observed  map[int]simnet.Time
	confirmed map[int]bool
	watched   map[int]bool
	failures  []Failure
	stopped   bool
}

// watchNew registers onExit once per newly seen process — the node
// daemon's per-child watch. Processes not yet bound to a simnet process
// are skipped; a later SetProcs re-checks them.
func (b *base) watchNew(ps []*mpi.Process, onExit func(*mpi.Process, *simnet.Proc)) {
	for _, p := range ps {
		gid := p.GID()
		if b.watched[gid] {
			continue
		}
		sp := p.SimProc()
		if sp == nil {
			continue
		}
		b.watched[gid] = true
		p := p
		sp.OnExit(func(sp *simnet.Proc) { onExit(p, sp) })
	}
}

func (b *base) Config() Config { return b.cfg }
func (b *base) Kind() Kind     { return b.cfg.Kind }
func (b *base) Stop()          { b.stopped = true }

func (b *base) ObservedAt(gid int) (simnet.Time, bool) {
	t, ok := b.observed[gid]
	return t, ok
}

func (b *base) FailureOf(gid int) (Failure, bool) {
	for _, f := range b.failures {
		if f.GID == gid {
			return f, true
		}
	}
	return Failure{}, false
}

func (b *base) Failures() []Failure { return b.failures }

// confirm records and delivers a failure exactly once. The CatDetect span
// emitted here (FailedAt..DetectedAt) is the trace-side oracle the
// harness reconciles against detect.Totals: one span per confirmed
// failure, at the single site every strategy funnels through.
func (b *base) confirm(f Failure) {
	if b.confirmed[f.GID] {
		return
	}
	b.confirmed[f.GID] = true
	b.failures = append(b.failures, f)
	if m := b.job.Cluster().Metrics(); m != nil {
		m.Inc(obs.CDetections)
		m.Observe(obs.HDetectNs, int64(f.Latency()))
	}
	if lg := b.job.Cluster().Log(); lg.Enabled() {
		lg.Event(int64(f.DetectedAt), "detect",
			"gid", f.GID, "latency_s", f.Latency().Seconds())
	}
	if tr := b.job.Cluster().Tracer(); tr.Wants(trace.CatDetect) {
		tr.Emit(trace.Span{Cat: trace.CatDetect, Rank: -1, Job: tr.JobOf(b.job),
			Start: int64(f.FailedAt), Dur: int64(f.Latency()),
			Level: int32(b.cfg.Kind), Aux: int64(f.GID)})
	}
	b.onDetect(f)
}

// log2ceil returns ceil(log2(n)), at least 1 — the round/level count of the
// binomial structures the detectors model.
func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// aliveOf filters the watch set down to processes not (yet) failed, in
// watch order — the ring membership and the interference-paying set.
func aliveOf(ps []*mpi.Process) []*mpi.Process {
	var out []*mpi.Process
	for _, p := range ps {
		if !p.Failed() {
			out = append(out, p)
		}
	}
	return out
}
