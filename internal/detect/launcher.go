package detect

import (
	"match/internal/mpi"
	"match/internal/simnet"
)

// launcherDetector is the out-of-band baseline: the job launcher's
// waitpid/SIGCHLD chain observes every process death the instant it
// happens, so detection latency is exactly zero and no detector traffic or
// interference exists. This is the implicit model Restart and Replica
// supervision always had; any launcher-side reaction delay (the time for
// mpirun to act on what it saw) belongs to the consuming design's cost
// model, not to detection.
type launcherDetector struct {
	base
}

func (d *launcherDetector) SetWorld(w *mpi.Comm) { d.SetProcs(w.Members()) }

func (d *launcherDetector) SetProcs(ps []*mpi.Process) {
	d.procs = ps
	d.watchNew(ps, d.onExit)
}

func (d *launcherDetector) onExit(p *mpi.Process, sp *simnet.Proc) {
	if d.stopped || sp.Status() != simnet.ExitKilled {
		return
	}
	gid := p.GID()
	now := sp.Now()
	if _, ok := d.observed[gid]; !ok {
		d.observed[gid] = now
	}
	d.confirm(Failure{GID: gid, FailedAt: now, DetectedAt: now})
}
