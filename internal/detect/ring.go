package detect

import (
	"match/internal/mpi"
	"match/internal/obs"
	"match/internal/simnet"
	"match/internal/trace"
)

// ringDetector is the OCFTL-style in-band ring heartbeat (Bosilca et al.),
// extracted from the ULFM runtime so every design can run under it. Each
// period, every alive member of the watch set emits one heartbeat to its
// ring successor — consuming sender NIC time, which is how background
// detection slows applications down — and pays an interference steal
// scaled by log2(P), modeling the detector's runtime-level collectives. A
// member observed failed stays under observation for DetectTimeout before
// the failure is confirmed; being purely in-band, the ring's FailedAt is
// the first round that *observed* the death, not the death itself.
type ringDetector struct {
	base
}

func (d *ringDetector) SetWorld(w *mpi.Comm) { d.SetProcs(w.Members()) }

// SetProcs swaps the ring membership (e.g. to a repaired world with
// replacement processes); observation state is retained.
func (d *ringDetector) SetProcs(ps []*mpi.Process) { d.procs = ps }

// tick runs one heartbeat round: emit ring heartbeats, steal detector
// time from every alive member, and confirm peers silent past the timeout.
func (d *ringDetector) tick() {
	if d.stopped {
		return
	}
	cl := d.job.Cluster()
	now := cl.Now()
	steal := d.cfg.InterferenceSteal * simnet.Time(log2ceil(len(d.procs)))
	alive := aliveOf(d.procs)
	for i, p := range alive {
		succ := alive[(i+1)%len(alive)]
		// Ring heartbeat: consumes sender NIC bandwidth.
		cl.SendArrival(p.NodeID(), succ.NodeID(), d.cfg.HeartbeatBytes, now)
		d.job.Steal(p.GID(), steal)
	}
	cl.Metrics().Inc(obs.CHeartbeats)
	if tr := cl.Tracer(); tr.Wants(trace.CatHeartbeat) {
		tr.Emit(trace.Span{Cat: trace.CatHeartbeat, Rank: -1, Job: tr.JobOf(d.job),
			Start: int64(now), Aux: int64(len(alive))})
	}
	allExited := true
	for _, p := range d.procs {
		sp := p.SimProc()
		if sp == nil || !sp.Exited() {
			allExited = false
		}
		if !p.Failed() || d.confirmed[p.GID()] {
			continue
		}
		gid := p.GID()
		first, ok := d.observed[gid]
		if !ok {
			d.observed[gid] = now
			first = now
		}
		if now-first >= d.cfg.DetectTimeout {
			// Failure confirmed: the consuming runtime reacts (ULFM marks it
			// detected so blocked operations raise MPIX_ERR_PROC_FAILED).
			d.confirm(Failure{GID: gid, FailedAt: first, DetectedAt: first + d.cfg.DetectTimeout})
		}
	}
	if allExited {
		return
	}
	cl.Scheduler().AfterFunc(d.cfg.HeartbeatPeriod, ringTick, d, 0)
}
