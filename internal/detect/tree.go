package detect

import (
	"match/internal/mpi"
	"match/internal/simnet"
)

// treeDetector is the daemon supervision tree, extracted from the Reinit
// runtime (Reinit++'s model) and generalized. Node-local runtime daemons
// see the exact death time of their children (SIGCHLD), so FailedAt is the
// true death; confirmation happens at the supervision period's granularity
// once DetectTimeout has elapsed. When HeartbeatBytes or InterferenceSteal
// are non-zero, each period additionally sends one heartbeat from every
// alive member to its parent in a binomial tree and steals a flat slice of
// CPU per member — the knobs that make the tree's interference comparable
// to the ring's in ablation sweeps (Reinit's calibrated preset keeps both
// at zero).
type treeDetector struct {
	base
}

func (d *treeDetector) SetWorld(w *mpi.Comm) { d.SetProcs(w.Members()) }

func (d *treeDetector) SetProcs(ps []*mpi.Process) {
	d.procs = ps
	d.watchNew(ps, d.recordDeath)
}

// recordDeath is the local daemon seeing the SIGCHLD: the exact death time
// is noted; confirmation waits for the supervision loop.
func (d *treeDetector) recordDeath(p *mpi.Process, sp *simnet.Proc) {
	if sp.Status() != simnet.ExitKilled {
		return
	}
	if _, ok := d.observed[p.GID()]; !ok {
		d.observed[p.GID()] = sp.Now()
	}
}

// tick is the daemon supervision loop.
func (d *treeDetector) tick() {
	if d.stopped {
		return
	}
	cl := d.job.Cluster()
	now := cl.Now()
	if d.cfg.HeartbeatBytes > 0 || d.cfg.InterferenceSteal > 0 {
		alive := aliveOf(d.procs)
		for i, p := range alive {
			if d.cfg.HeartbeatBytes > 0 && i > 0 {
				parent := alive[(i-1)/2]
				cl.SendArrival(p.NodeID(), parent.NodeID(), d.cfg.HeartbeatBytes, now)
			}
			d.job.Steal(p.GID(), d.cfg.InterferenceSteal)
		}
	}
	allExited := true
	// Snapshot: onDetect may swap the watch set mid-scan (Reinit's global
	// restart rebuilds the world); the rest of this round still inspects
	// the membership it started with, like the original runtime loop did.
	procs := d.procs
	for _, p := range procs {
		sp := p.SimProc()
		if sp == nil || !sp.Exited() {
			allExited = false
		}
		if !p.Failed() || d.confirmed[p.GID()] {
			continue
		}
		gid := p.GID()
		failed, ok := d.observed[gid]
		if !ok {
			failed = now
			d.observed[gid] = now
		}
		if now-failed >= d.cfg.DetectTimeout {
			d.confirm(Failure{GID: gid, FailedAt: failed, DetectedAt: now})
			allExited = false
		}
	}
	if allExited {
		return // job finished; let the scheduler drain
	}
	cl.Scheduler().AfterFunc(d.cfg.HeartbeatPeriod, treeTick, d, 0)
}
