package detect

import (
	"strings"
	"testing"

	"match/internal/mpi"
	"match/internal/simnet"
)

// TestValidateRejectsDegenerateConfigs pins the construction-time
// validation contract: configurations that could never detect fail loudly
// instead of hanging a run forever.
func TestValidateRejectsDegenerateConfigs(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string
	}{
		{"zero-period ring", Config{Kind: Ring, DetectTimeout: 300 * simnet.Millisecond}, "would never detect"},
		{"negative-period ring", Config{Kind: Ring, HeartbeatPeriod: -1, DetectTimeout: simnet.Second}, "would never detect"},
		{"zero-period tree", Config{Kind: Tree, DetectTimeout: 100 * simnet.Millisecond}, "would never detect"},
		{"timeout below period", Config{Kind: Ring, HeartbeatPeriod: 100 * simnet.Millisecond, DetectTimeout: 50 * simnet.Millisecond}, "timeout"},
		{"unresolved preset", Config{}, "resolved"},
		{"negative steal", Config{Kind: Tree, HeartbeatPeriod: simnet.Millisecond, DetectTimeout: simnet.Millisecond, InterferenceSteal: -1}, "negative"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted %+v", tc.name, tc.cfg)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
		cl := simnet.NewCluster(simnet.Config{Nodes: 2})
		if _, nerr := New(tc.cfg, mpi.NewJob(cl), nil); nerr == nil {
			t.Fatalf("%s: New accepted %+v", tc.name, tc.cfg)
		}
	}
	if err := (Config{Kind: Launcher}).Validate(); err != nil {
		t.Fatalf("launcher rejected: %v", err)
	}
	if err := RingDefaults().Validate(); err != nil {
		t.Fatalf("ring defaults rejected: %v", err)
	}
	if err := TreeDefaults().Validate(); err != nil {
		t.Fatalf("tree defaults rejected: %v", err)
	}
}

// TestResolve pins the preset/default merging rules, including the
// 3x-period derived timeout that keeps period sweeps valid.
func TestResolve(t *testing.T) {
	preset := Config{Kind: Ring, HeartbeatPeriod: 7, DetectTimeout: 21}
	if got := Resolve(Config{}, preset); got != preset {
		t.Fatalf("preset passthrough: got %+v", got)
	}
	got := Resolve(Config{Kind: Ring, HeartbeatPeriod: 200 * simnet.Millisecond}, preset)
	if got.DetectTimeout != 600*simnet.Millisecond {
		t.Fatalf("derived timeout = %v, want 3x period", got.DetectTimeout)
	}
	if got.HeartbeatBytes != RingDefaults().HeartbeatBytes {
		t.Fatalf("bytes = %d, want ring default", got.HeartbeatBytes)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("resolved config invalid: %v", err)
	}
	if got := Resolve(Config{Kind: Tree}, preset); got != TreeDefaults() {
		t.Fatalf("tree fill = %+v, want defaults", got)
	}
	if got := Resolve(Config{Kind: Launcher}, preset); got.Kind != Launcher {
		t.Fatalf("launcher resolve = %+v", got)
	}
}

// harness starts an n-proc job whose ranks just compute, kills victim at
// killAt, and returns the detector's confirmed failures at drain.
func harness(t *testing.T, cfg Config, n, victim int, killAt simnet.Time) []Failure {
	t.Helper()
	cl := simnet.NewCluster(simnet.Config{Nodes: 4})
	cl.Scheduler().SetDeadline(1000 * simnet.Second)
	job := mpi.Launch(cl, n, 0, func(r *mpi.Rank) {
		for r.Now() < 5*simnet.Second {
			r.Compute(10 * simnet.Millisecond)
		}
	})
	det, err := New(cfg, job, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	det.SetWorld(job.World())
	vp := job.World().Member(victim)
	cl.Scheduler().At(killAt, func() { vp.SimProc().Kill() })
	cl.Run()
	return det.Failures()
}

// TestLauncherDetectsInstantly pins the out-of-band baseline: detection
// latency is exactly zero, at the exact death time.
func TestLauncherDetectsInstantly(t *testing.T) {
	kill := 1*simnet.Second + 3*simnet.Millisecond
	fs := harness(t, LauncherConfig(), 4, 2, kill)
	if len(fs) != 1 {
		t.Fatalf("failures = %+v, want 1", fs)
	}
	f := fs[0]
	if f.FailedAt != kill || f.DetectedAt != kill || f.Latency() != 0 {
		t.Fatalf("launcher failure %+v, want instant at %v", f, kill)
	}
}

// TestRingLatencyMonotonicInPeriod sweeps the heartbeat period (timeout
// derived as 3x period) and requires the end-to-end detection delay —
// death to confirmation — to be monotonically nondecreasing, and each
// reported latency to equal the configured timeout exactly (the ring can
// only ever attribute observation-to-confirmation to itself).
func TestRingLatencyMonotonicInPeriod(t *testing.T) {
	kill := 1*simnet.Second + 3*simnet.Millisecond
	var lastDelay simnet.Time = -1
	for _, period := range []simnet.Time{10 * simnet.Millisecond, 50 * simnet.Millisecond, 200 * simnet.Millisecond} {
		cfg := Resolve(Config{Kind: Ring, HeartbeatPeriod: period}, Config{})
		fs := harness(t, cfg, 4, 2, kill)
		if len(fs) != 1 {
			t.Fatalf("period %v: failures = %+v, want 1", period, fs)
		}
		f := fs[0]
		if f.Latency() != cfg.DetectTimeout {
			t.Fatalf("period %v: latency %v != timeout %v", period, f.Latency(), cfg.DetectTimeout)
		}
		if f.FailedAt < kill {
			t.Fatalf("period %v: observed %v before the death %v", period, f.FailedAt, kill)
		}
		delay := f.DetectedAt - kill
		if delay < lastDelay {
			t.Fatalf("period %v: death-to-confirmation %v shrank below %v", period, delay, lastDelay)
		}
		lastDelay = delay
	}
}

// TestTreeConfirmsAfterTimeout pins the daemon-tree semantics: the exact
// death time is observed (SIGCHLD), confirmation lands on the first
// supervision round at least DetectTimeout later.
func TestTreeConfirmsAfterTimeout(t *testing.T) {
	kill := 1*simnet.Second + 3*simnet.Millisecond
	cfg := TreeDefaults()
	fs := harness(t, cfg, 4, 1, kill)
	if len(fs) != 1 {
		t.Fatalf("failures = %+v, want 1", fs)
	}
	f := fs[0]
	if f.FailedAt != kill {
		t.Fatalf("tree observed %v, want exact death %v", f.FailedAt, kill)
	}
	if f.Latency() < cfg.DetectTimeout || f.Latency() >= cfg.DetectTimeout+cfg.HeartbeatPeriod {
		t.Fatalf("tree latency %v outside [timeout, timeout+period) = [%v, %v)",
			f.Latency(), cfg.DetectTimeout, cfg.DetectTimeout+cfg.HeartbeatPeriod)
	}
}

// TestRingHeartbeatsConsumeNICTime pins the interference mechanism: a run
// under a chatty ring detector finishes later than the identical run under
// the silent launcher, because heartbeats serialize on egress NICs and the
// steal preempts the application.
func TestRingHeartbeatsConsumeNICTime(t *testing.T) {
	run := func(cfg Config) simnet.Time {
		cl := simnet.NewCluster(simnet.Config{Nodes: 4})
		cl.Scheduler().SetDeadline(1000 * simnet.Second)
		var job *mpi.Job
		job = mpi.Launch(cl, 4, 0, func(r *mpi.Rank) {
			for i := 0; i < 100; i++ {
				if _, err := mpi.AllreduceF64Scalar(r, job.World(), 1, mpi.OpSum); err != nil {
					t.Errorf("allreduce: %v", err)
					return
				}
				r.Compute(simnet.Millisecond)
			}
		})
		det, err := New(cfg, job, nil)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		det.SetWorld(job.World())
		return cl.Run()
	}
	quiet := run(LauncherConfig())
	noisy := run(Resolve(Config{Kind: Ring, HeartbeatPeriod: 5 * simnet.Millisecond}, Config{}))
	if noisy <= quiet {
		t.Fatalf("ring run (%v) not slower than launcher run (%v)", noisy, quiet)
	}
}

// TestDetectorConfirmsEachFailureOnce kills two ranks and expects exactly
// two confirmations, in death order, with no duplicates across later
// rounds.
func TestDetectorConfirmsEachFailureOnce(t *testing.T) {
	for _, cfg := range []Config{LauncherConfig(), RingDefaults(), TreeDefaults()} {
		cl := simnet.NewCluster(simnet.Config{Nodes: 4})
		cl.Scheduler().SetDeadline(1000 * simnet.Second)
		job := mpi.Launch(cl, 4, 0, func(r *mpi.Rank) {
			for r.Now() < 5*simnet.Second {
				r.Compute(10 * simnet.Millisecond)
			}
		})
		det, err := New(cfg, job, nil)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		det.SetWorld(job.World())
		w := job.World()
		cl.Scheduler().At(1*simnet.Second, func() { w.Member(1).SimProc().Kill() })
		cl.Scheduler().At(2*simnet.Second, func() { w.Member(3).SimProc().Kill() })
		cl.Run()
		fs := det.Failures()
		if len(fs) != 2 {
			t.Fatalf("%s: failures = %+v, want 2", cfg.Kind, fs)
		}
		if fs[0].GID != w.Member(1).GID() || fs[1].GID != w.Member(3).GID() {
			t.Fatalf("%s: confirmation order %+v", cfg.Kind, fs)
		}
	}
}

// TestParseKind pins the CLI spellings.
func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if got, err := ParseKind(""); err != nil || got != Preset {
		t.Fatalf("ParseKind(\"\") = %v, %v", got, err)
	}
	if _, err := ParseKind("nope"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("ParseKind(nope) err = %v", err)
	}
}
