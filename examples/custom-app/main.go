// Custom-app: extend MATCH with a new application, as §V-E of the paper
// invites ("we encourage programmers to add new HPC applications ... to
// MATCH"). The app below is a 2D Jacobi heat solver written against the
// appkit contract; once registered it runs under any of the four
// fault-tolerance designs, fault injection and all.
package main

import (
	"fmt"
	"log"

	"match"
	"match/internal/apps/appkit"
	"match/internal/fti"
)

// heat is a distributed 2D Jacobi iteration (decomposed with the same
// toolkit the built-in apps use, one layer thick in z).
type heat struct {
	d      *appkit.Decomp3D
	t, tn  *appkit.Field3D
	flat   []float64
	change float64
}

func (h *heat) Name() string { return "Heat2D" }

func (h *heat) Init(ctx *appkit.Context) error {
	n := ctx.Params.NX
	h.d = appkit.NewDecomp3D(ctx.Rank(), ctx.Size(), n, n, 1)
	h.t = appkit.NewField3D(h.d)
	h.tn = appkit.NewField3D(h.d)
	// Hot spot in the global center.
	cx, cy := n/2, n/2
	if cx >= h.d.OX && cx < h.d.OX+h.d.LX && cy >= h.d.OY && cy < h.d.OY+h.d.LY {
		h.t.Set(cx-h.d.OX+1, cy-h.d.OY+1, 1, 100)
	}
	h.flat = h.t.Interior()
	ctx.FTI.Protect(1, fti.F64s{P: &h.flat})
	ctx.FTI.Protect(2, fti.F64{P: &h.change})
	return nil
}

func (h *heat) Step(ctx *appkit.Context, iter int) error {
	h.t.SetInterior(h.flat)
	if err := h.t.Exchange(ctx); err != nil {
		return err
	}
	local := 0.0
	for y := 1; y <= h.d.LY; y++ {
		for x := 1; x <= h.d.LX; x++ {
			v := 0.25 * (h.t.At(x-1, y, 1) + h.t.At(x+1, y, 1) + h.t.At(x, y-1, 1) + h.t.At(x, y+1, 1))
			// Keep the hot spot pinned (Dirichlet source).
			if h.t.At(x, y, 1) == 100 {
				v = 100
			}
			h.tn.Set(x, y, 1, v)
			d := v - h.t.At(x, y, 1)
			local += d * d
		}
	}
	ctx.Charge(float64(h.d.LX*h.d.LY) * 6)
	h.t, h.tn = h.tn, h.t
	h.flat = h.t.Interior()
	var err error
	h.change, err = appkit.SumAll(ctx, local)
	return err
}

func (h *heat) Signature(ctx *appkit.Context) (float64, error) {
	local := 0.0
	for _, v := range h.flat {
		local += v
	}
	total, err := appkit.SumAll(ctx, local)
	if err != nil {
		return 0, err
	}
	return total + h.change, nil
}

func main() {
	if err := match.RegisterApp("Heat2D", func() match.App { return &heat{} }); err != nil {
		log.Fatal(err)
	}
	for _, d := range []match.Design{match.RestartFTI, match.ReinitFTI, match.UlfmFTI} {
		bd, err := match.Run(match.Config{
			App:         "Heat2D",
			Design:      d,
			Procs:       16,
			Nodes:       8,
			InjectFault: true,
			FaultSeed:   3,
			Params:      match.Params{NX: 64, MaxIter: 30, WorkScale: 50, CkptStride: 5},
		})
		if err != nil {
			log.Fatalf("%v: %v", d, err)
		}
		fmt.Printf("%-12s survived a process failure: recovery %.3fs, total %.3fs, answer %.6f\n",
			d, bd.Recovery.Seconds(), bd.Total.Seconds(), bd.Signature)
	}
}
