// Dependency-analysis: use the paper's Algorithm 1 to discover which data
// objects a kernel must checkpoint. A small instrumented stencil kernel
// emits a dynamic trace (the role LLVM-Tracer plays in the paper); the
// analyzer then applies the three principles of §III-A.
package main

import (
	"fmt"
	"os"

	"match"
	"match/internal/depanal"
)

func main() {
	tc := match.NewTracer()

	// An instrumented kernel: u is iterated on, f is a read-only source,
	// scratch is loop-local, and step counts iterations.
	const n = 6
	const (
		aU    = 0x1000
		aF    = 0x2000
		aStep = 0x3000
		aTmp  = 0x4000
	)
	u := make([]float64, n)
	f := make([]float64, n)
	for i := range f {
		f[i] = float64(i)
		u[i] = 1
	}
	bits := func(v float64) uint64 { return uint64(int64(v * 4096)) }

	tc.Alloc("u", aU, n*8, 11)
	tc.Alloc("f", aF, n*8, 12)
	tc.Alloc("step", aStep, 8, 13)
	tc.LoopBegin(20)
	for step := 0; step < 5; step++ {
		tc.NextIter(step)
		tc.Alloc("scratch", aTmp, n*8, 21)
		scratch := make([]float64, n)
		for i := 1; i < n-1; i++ {
			tc.Load(aU+uint64(i*8), bits(u[i]), 22)
			tc.Load(aF+uint64(i*8), bits(f[i]), 23)
			scratch[i] = 0.5*(u[i-1]+u[i+1]) + 0.1*f[i]
			tc.Store(aTmp+uint64(i*8), bits(scratch[i]), 24)
		}
		for i := 1; i < n-1; i++ {
			u[i] = scratch[i]
			tc.Store(aU+uint64(i*8), bits(u[i]), 26)
		}
		tc.Load(aStep, uint64(step), 27)
		tc.Store(aStep, uint64(step+1), 27)
	}
	tc.LoopEnd()

	res := match.AnalyzeTrace(tc)
	depanal.WriteReport(os.Stdout, res)
	fmt.Println("\nExpected: checkpoint {u, step}; f is rebuildable (constant values,")
	fmt.Println("principle 3) and scratch is loop-local (principle 1).")
}
