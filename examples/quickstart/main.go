// Quickstart: run one benchmark configuration — HPCCG under REINIT-FTI at
// the paper's default scale — and print the execution-time breakdown.
package main

import (
	"fmt"
	"log"

	"match"
)

func main() {
	bd, err := match.Run(match.Config{
		App:    "HPCCG",
		Design: match.ReinitFTI,
		Procs:  64,
		Input:  match.Small,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("HPCCG / REINIT-FTI / 64 procs / small input")
	fmt.Printf("  application  %8.3f s\n", bd.App.Seconds())
	fmt.Printf("  checkpoints  %8.3f s (%d written)\n", bd.Ckpt.Seconds(), bd.CkptCount)
	fmt.Printf("  total        %8.3f s\n", bd.Total.Seconds())
	fmt.Printf("  answer       %g\n", bd.Signature)
	fmt.Println("\nAvailable applications:", match.Apps())
}
