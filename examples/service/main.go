// Service: the campaign-as-a-service surface from the library side. A
// campaign is described as a CampaignRequest — pure data whose canonical
// encoding is its identity — and executed by a CampaignRunner over a
// content-addressed ResultStore. The same request JSON can be POSTed to a
// matchserve instance (cmd/matchserve) and produces identical results;
// this example stays in-process and shows what the cache buys: the warm
// rerun simulates nothing, and an overlapping sweep only simulates the
// cells it adds.
package main

import (
	"fmt"
	"log"
	"os"

	"match"
)

func main() {
	req := match.CampaignRequest{
		Apps:      []string{"HPCCG"},
		Designs:   []match.Design{match.ReinitFTI, match.ReplicaFTI},
		Procs:     8,
		MaxFaults: 1,
		Seed:      7,
	}
	if err := req.Validate(); err != nil {
		log.Fatal(err)
	}
	id, err := req.Hash()
	if err != nil {
		log.Fatal(err)
	}
	// The hash is the campaign's identity: a matchserve instance uses it as
	// the campaign ID, so resubmitting an equivalent request — defaults
	// spelled out or left zero — is idempotent.
	fmt.Printf("campaign %.12s…: %d cells\n\n", id, len(req.Configs()))

	st := match.NewMemoryResultStore(0) // OpenResultStore(dir, 0) persists across processes
	runner := match.CampaignRunner{Workers: 4, Store: st}

	if _, err := runner.Run(req, nil); err != nil {
		log.Fatal(err)
	}
	report("cold run", st)

	// Warm rerun of the identical campaign: every cell is a cache hit,
	// nothing is simulated, and the output (had we written it) is
	// byte-identical to the cold run's.
	if _, err := runner.Run(req, nil); err != nil {
		log.Fatal(err)
	}
	report("warm rerun", st)

	// An overlapping sweep — same axes plus one more design — simulates
	// only the cells it adds.
	wider := req
	wider.Designs = append(wider.Designs, match.UlfmFTI)
	results, err := runner.Run(wider, nil)
	if err != nil {
		log.Fatal(err)
	}
	report("overlapping sweep", st)

	fmt.Println()
	match.WriteCampaign(os.Stdout, results)
}

func report(label string, st *match.ResultStore) {
	cs := st.Stats()
	fmt.Printf("%-18s hits=%-3d misses=%-3d simulated=%-3d hit-rate=%.0f%%\n",
		label+":", cs.Hits, cs.Misses, cs.Puts, 100*cs.HitRate())
}
