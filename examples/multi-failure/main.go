// Multi-failure: what the paper's single-failure protocol (Figure 4)
// cannot measure. A campaign schedules k failures per run, drawn
// deterministically from one seed — the same (rank, iteration) sequence
// for every design — and sweeps k to find where replication's
// rollback-free failover pulls away from checkpoint/restart: each extra
// failure costs the rollback designs another restore-and-replay, while
// ReplicaFTI absorbs it with a leader election.
//
// The example runs a k = 0..3 campaign for one app on the sweep worker
// pool, prints the per-design growth curves, then demonstrates an explicit
// schedule: a second failure that lands on the already-degraded replica
// group *after* the first recovery, forcing the checkpoint-only fallback.
package main

import (
	"fmt"
	"log"
	"os"

	"match"
)

func main() {
	// 1. Random campaign: recovery time and total overhead vs failure
	// count, every design, one seed. Workers: 0 = one worker per core.
	results, err := match.RunCampaign(match.CampaignOptions{
		Apps:      []string{"HPCCG"},
		MaxFaults: 3,
		Seed:      7,
	}, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The headline: from how many failures on does replication win
	// end-to-end, duplication overhead included?
	match.ComputeCrossover(results).Write(os.Stdout)

	// 3. Explicit schedule via the DSL: kill rank 3's shadow replica at
	// iteration 20, then its primary at iteration 35 — but only after the
	// first recovery, so the second hit lands on a group that has not
	// regained redundancy. No copy of rank 3 survives; the run must fall
	// back to restoring the last checkpoint.
	sched, err := match.ParseFaultSchedule("3@20:replica=1,3@35:after=1")
	if err != nil {
		log.Fatal(err)
	}
	cfg := match.Config{
		App:      "HPCCG",
		Design:   match.ReplicaFTI,
		Procs:    64,
		Input:    match.Small,
		Schedule: &sched,
	}
	bd, err := match.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Second hit on a degraded replica group (checkpoint-only fallback) ==")
	fmt.Printf("schedule            %s\n", sched)
	fmt.Printf("faults fired        %d\n", bd.FaultsInjected)
	fmt.Printf("recoveries          %d  (failover, then fallback relaunch)\n", bd.Recoveries)
	fmt.Printf("recovery time       %.3f s  (the relaunch dominates: rollback is back)\n", bd.Recovery.Seconds())
	fmt.Printf("total               %.3f s\n", bd.Total.Seconds())
}
