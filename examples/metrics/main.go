// Metrics: count a run instead of just timing it. The breakdown is the
// paper's figure — seconds per phase; the metrics registry is the
// engineering view underneath — how many messages, bytes, checkpoints
// per FTI level, injections, detections, recoveries, and failovers the
// simulator actually performed, exported in OpenMetrics text any
// Prometheus stack can ingest.
//
// The registry is a pure observer with a built-in lie detector: Run
// reconciles the registry's write-time totals exactly against the
// breakdown (and against the trace's span counts when a recorder runs
// alongside), so a metered run that returns at all is a run where three
// independent accountings agreed to the last event. The example meters
// a multi-failure replica run, prints the headline counters, streams
// the structured event log, and ends with the full exposition — the
// same text `cmd/matchsuite -pprof-http` serves live on /metrics during
// a sweep (with /status next to it for a JSON summary).
package main

import (
	"fmt"
	"log"
	"os"

	"match"
)

func main() {
	// 1. One registry per run (RunAveraged meters reps itself: each rep
	// reconciles a fresh registry, the caller's gets the merged totals).
	// The event log is independent — attach either, both, or neither.
	reg := match.NewMetricsRegistry()
	elog := match.NewEventLog(os.Stderr)

	sched, err := match.ParseFaultSchedule("3@20:replica=0,3@45:replica=1")
	if err != nil {
		log.Fatal(err)
	}
	cfg := match.Config{
		App:      "HPCCG",
		Design:   match.ReplicaFTI,
		Procs:    64,
		Input:    match.Small,
		Schedule: &sched,
		Replica:  match.ReplicaConfig{HotSpare: true},
		Metrics:  reg,
		Log:      elog, // inject/detect/failover/spawn events as JSON lines
	}
	bd, err := match.Run(cfg)
	if err != nil {
		log.Fatal(err) // includes registry/breakdown reconciliation failures
	}

	fmt.Println("== Metered hot-spare replica run, two failures on rank 3's group ==")
	fmt.Printf("total               %.2fs  (app %.2fs, ckpt %.2fs, recovery %.2fs)\n",
		bd.Total.Seconds(), bd.App.Seconds(), bd.Ckpt.Seconds(), bd.Recovery.Seconds())

	// 2. Headline counters, straight off the registry. Every Get is a
	// plain array read — the registry costs one branch per event when
	// attached and nothing when nil.
	fmt.Printf("messages            %d (%d bytes on the wire)\n",
		reg.Get(match.CounterMessages), reg.Get(match.CounterMsgBytes))
	fmt.Printf("checkpoints         %d", reg.Get(match.CounterCheckpoints))
	for lvl := 1; lvl <= 4; lvl++ {
		if n, _ := reg.CkptAt(lvl); n > 0 {
			fmt.Printf("  L%d=%d", lvl, n)
		}
	}
	fmt.Println()
	fmt.Printf("failures            %d injected, %d detected\n",
		reg.Get(match.CounterInjections), reg.Get(match.CounterDetections))
	fmt.Printf("replica response    %d failover(s), %d absorb(s), %d respawn(s)\n",
		reg.Get(match.CounterFailovers), reg.Get(match.CounterAbsorbs), reg.Get(match.CounterRespawns))

	// 3. The full OpenMetrics exposition — counters with _total, byte
	// histograms with cumulative buckets, per-FTI-level checkpoint
	// counts, terminated by # EOF. Pipe it anywhere Prometheus text is
	// understood; matchsuite serves the sweep-level aggregate of exactly
	// this on /metrics while a campaign runs:
	//
	//	go run ./cmd/matchsuite -campaign -max-faults 3 -pprof-http :6060 &
	//	curl -s localhost:6060/metrics
	//	curl -s localhost:6060/status
	fmt.Println()
	if err := reg.WriteOpenMetrics(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
