// Example replication runs the same failing HPCCG configuration under the
// replication-based ReplicaFTI design and under REINIT-FTI (the fastest
// rollback design), showing the trade replication makes: near-zero
// recovery — the survivor replica keeps computing, nothing is rolled back
// — bought with duplicated processes and messages. It then lowers
// ReplicaFactor so the injected failure hits an unreplicated rank and the
// design falls back to checkpoint-only recovery, PartRePer-style.
package main

import (
	"fmt"
	"log"

	"match"
)

func main() {
	base := match.Config{
		App:         "HPCCG",
		Procs:       16,
		Nodes:       8,
		Input:       match.Small,
		InjectFault: true,
		FaultSeed:   3,
	}

	fmt.Println("== failure recovery: replication vs global restart ==")
	for _, d := range []match.Design{match.ReplicaFTI, match.ReinitFTI} {
		cfg := base
		cfg.Design = d
		bd, err := match.Run(cfg)
		if err != nil {
			log.Fatalf("%v: %v", d, err)
		}
		fmt.Printf("%-12s total %7.3fs  app %7.3fs  recovery %6.3fs (%d recoveries)  %d msgs\n",
			d, bd.Total.Seconds(), bd.App.Seconds(), bd.Recovery.Seconds(),
			bd.Recoveries, bd.Messages)
	}

	// Partial replication: protect only 1 in 4 ranks. Depending on where the
	// failure lands, recovery is either a cheap failover (replicated rank)
	// or the checkpoint-only fallback relaunch (unreplicated rank).
	fmt.Println("\n== partial replication (ReplicaFactor 0.25), sweeping fault seeds ==")
	for seed := int64(1); seed <= 4; seed++ {
		cfg := base
		cfg.Design = match.ReplicaFTI
		cfg.FaultSeed = seed
		cfg.Replica = match.ReplicaConfig{ReplicaFactor: 0.25}
		bd, err := match.Run(cfg)
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		mode := "failover (no rollback)"
		if bd.Recovery.Seconds() > 1 {
			mode = "checkpoint fallback (relaunch)"
		}
		fmt.Printf("seed %d: recovery %6.3fs  -> %s\n", seed, bd.Recovery.Seconds(), mode)
	}
}
