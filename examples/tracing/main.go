// Tracing: watch a run instead of just measuring it. The breakdown says
// *how much* time went to checkpoints and recovery; the trace shows
// *when* — every rank's compute/checkpoint/recovery spans on its own
// timeline, with the fault injector, detector, and runtime bookkeeping on
// tracks of their own, exported as Chrome trace-event JSON that Perfetto
// renders directly.
//
// The example traces the replica design's full failure repertoire end to
// end: hot-spare respawn under two failures aimed at the same rank's
// group. The first kill takes the primary — failover instant, degraded
// span, background spawn span refilling the group. The second kill takes
// a shadow and is absorbed without rollback. All of it lands on the
// timeline — then the trace is cross-checked against the breakdown: Run
// reconciles the two accountings exactly and fails hard if they drift.
package main

import (
	"fmt"
	"log"
	"os"

	"match"
)

func main() {
	// 1. One recorder per run. The default detail keeps phase spans —
	// compute, checkpoint, recovery, failover — which is what a timeline
	// needs; ParseTraceDetail("all") would add per-message and heartbeat
	// events for protocol-level debugging.
	rec := match.NewTraceRecorder()

	sched, err := match.ParseFaultSchedule("3@20:replica=0,3@45:replica=1")
	if err != nil {
		log.Fatal(err)
	}
	cfg := match.Config{
		App:      "HPCCG",
		Design:   match.ReplicaFTI,
		Procs:    64,
		Input:    match.Small,
		Schedule: &sched,
		Replica:  match.ReplicaConfig{HotSpare: true},
		Trace:    rec,
	}
	bd, err := match.Run(cfg)
	if err != nil {
		log.Fatal(err) // includes trace/breakdown reconciliation failures
	}

	fmt.Println("== Hot-spare replica run, two failures on rank 3's group ==")
	fmt.Printf("schedule            %s\n", sched)
	fmt.Printf("total               %.2fs  (app %.2fs, ckpt %.2fs, recovery %.2fs)\n",
		bd.Total.Seconds(), bd.App.Seconds(), bd.Ckpt.Seconds(), bd.Recovery.Seconds())
	fmt.Printf("spans recorded      %d\n", rec.Len())

	// 2. The per-phase metrics table: the trace's own sums next to the
	// breakdown's, reconciled column by column. Run already self-checked
	// this; printing it shows *what* agreed.
	fmt.Println()
	rec.WriteMetrics(os.Stdout, match.TraceTotalsOf(bd), cfg.Design == match.ReplicaFTI)

	// 3. Perfetto export. Open https://ui.perfetto.dev and drop the file
	// in: one track per rank (shadows as "rank N (replica M)"), plus
	// "fault injector", "detector", and "recovery" tracks. Around t=20
	// virtual seconds, look for the failover instant on rank 3, the
	// degraded span that follows, the spawn span on the hot spare, and
	// the absorb that ends it.
	f, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.WriteChrome(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote trace.json — open it at https://ui.perfetto.dev\n")
}
