// Checkpoint-levels: compare FTI's four checkpointing levels (L1 local
// RAMFS, L2 partner copy, L3 Reed-Solomon group encoding, L4 parallel file
// system) on miniFE — the ablation the paper defers to the FTI paper
// (§V-B: "we use its L1 mode ... the comparison between the four FTI
// checkpointing modes has been thoroughly studied").
package main

import (
	"fmt"
	"log"

	"match"
	"match/internal/fti"
)

func main() {
	fmt.Printf("%-6s %14s %14s %10s\n", "level", "ckpt time(s)", "total(s)", "overhead")
	var base float64
	for _, level := range []fti.Level{fti.L1, fti.L2, fti.L3, fti.L4} {
		bd, err := match.Run(match.Config{
			App:      "miniFE",
			Design:   match.ReinitFTI,
			Procs:    64,
			Input:    match.Medium,
			FTILevel: level,
		})
		if err != nil {
			log.Fatalf("%v: %v", level, err)
		}
		if level == fti.L1 {
			base = bd.Total.Seconds()
		}
		fmt.Printf("%-6s %14.3f %14.3f %9.1f%%\n",
			level, bd.Ckpt.Seconds(), bd.Total.Seconds(),
			100*(bd.Total.Seconds()-base)/base)
	}
	fmt.Println("\nHigher levels buy stronger failure coverage (partner/node-group/PFS)")
	fmt.Println("at increasing checkpoint cost; the paper's experiments use L1.")
}
