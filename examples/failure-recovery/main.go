// Failure-recovery: inject the same process failure (Figure 4 of the
// paper) into CoMD under all four fault-tolerance designs and compare how
// long each takes to bring MPI back — the experiment behind Figure 7.
// The recovered answer is verified against a failure-free run.
package main

import (
	"fmt"
	"log"

	"match"
)

func main() {
	base := match.Config{App: "CoMD", Procs: 64, Input: match.Small}

	ref, err := match.Run(withDesign(base, match.ReinitFTI))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free reference answer: %g\n\n", ref.Signature)
	fmt.Printf("%-12s %12s %12s %12s %8s\n", "design", "recovery(s)", "app(s)", "total(s)", "answer")

	for _, d := range []match.Design{match.RestartFTI, match.ReinitFTI, match.UlfmFTI} {
		cfg := withDesign(base, d)
		cfg.InjectFault = true
		cfg.FaultSeed = 7 // same rank, same iteration for every design
		bd, err := match.Run(cfg)
		if err != nil {
			log.Fatalf("%v: %v", d, err)
		}
		verdict := "OK"
		if bd.Signature != ref.Signature {
			verdict = "CORRUPTED"
		}
		fmt.Printf("%-12s %12.3f %12.3f %12.3f %8s\n",
			d, bd.Recovery.Seconds(), bd.App.Seconds(), bd.Total.Seconds(), verdict)
	}
	fmt.Println("\nExpected ordering (the paper's central finding): Reinit < ULFM < Restart.")
}

func withDesign(cfg match.Config, d match.Design) match.Config {
	cfg.Design = d
	return cfg
}
