package match_test

import (
	"reflect"
	"strings"
	"testing"

	"match"
)

func TestFacadeRun(t *testing.T) {
	bd, err := match.Run(match.Config{
		App:    "miniVite",
		Design: match.ReinitFTI,
		Procs:  16,
		Nodes:  8,
		Params: match.Params{NVerts: 512, MaxIter: 6, WorkScale: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bd.Completed || bd.Total <= 0 {
		t.Fatalf("bad breakdown: %+v", bd)
	}
}

func TestFacadeApps(t *testing.T) {
	apps := match.Apps()
	if len(apps) < 6 {
		t.Fatalf("apps = %v", apps)
	}
	for _, want := range []string{"AMG", "CoMD", "HPCCG", "LULESH", "miniFE", "miniVite"} {
		found := false
		for _, a := range apps {
			if a == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing %s in %v", want, apps)
		}
	}
}

func TestFacadeRegisterRejectsDuplicates(t *testing.T) {
	if err := match.RegisterApp("HPCCG", nil); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestFacadeTableI(t *testing.T) {
	var sb strings.Builder
	match.WriteTableI(&sb)
	if !strings.Contains(sb.String(), "-problem 2 -n 20 20 20") {
		t.Fatalf("Table I missing the paper's AMG input:\n%s", sb.String())
	}
}

func TestFacadeTracer(t *testing.T) {
	tc := match.NewTracer()
	tc.Alloc("v", 64, 16, 1)
	tc.LoopBegin(2)
	tc.NextIter(0)
	tc.Load(64, 1, 3)
	tc.NextIter(1)
	tc.Load(64, 2, 3)
	tc.LoopEnd()
	res := match.AnalyzeTrace(tc)
	if len(res.Checkpoint) != 1 || res.Checkpoint[0].Name != "v" {
		t.Fatalf("analysis = %+v", res)
	}
}

func TestFacadeCkptPolicy(t *testing.T) {
	k, err := match.ParseCkptPolicyKind("replica-aware")
	if err != nil || k != match.ReplicaAwarePlacement {
		t.Fatalf("ParseCkptPolicyKind = %v, %v", k, err)
	}
	bd, err := match.Run(match.Config{
		App:        "miniVite",
		Design:     match.ReplicaFTI,
		Procs:      16,
		Nodes:      8,
		Params:     match.Params{NVerts: 512, MaxIter: 25, WorkScale: 10, CkptStride: 5},
		CkptPolicy: match.CkptPolicyConfig{Kind: match.ReplicaAwarePlacement},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bd.CkptAvoided == 0 {
		t.Fatalf("replica-aware placement avoided nothing: %+v", bd)
	}
	if _, err := match.Run(match.Config{
		App: "HPCCG", Procs: 8, Nodes: 4,
		Params:     match.Params{NX: 4, NY: 4, NZ: 4, MaxIter: 4, WorkScale: 1},
		CkptPolicy: match.CkptPolicyConfig{Kind: match.FixedPlacement, Stride: -1},
	}); err == nil {
		t.Fatal("facade accepted a negative placement stride")
	}
}

// The campaign-as-a-service surface: a CampaignRequest run by a
// CampaignRunner over a ResultStore, with RunCampaign as the compatibility
// wrapper producing identical results.
func TestFacadeCampaignService(t *testing.T) {
	req := match.CampaignRequest{
		Apps:    []string{"HPCCG"},
		Designs: []match.Design{match.ReinitFTI},
		Procs:   8, MaxFaults: 1, Seed: 7,
	}
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	id, err := req.Hash()
	if err != nil || len(id) != 64 {
		t.Fatalf("Hash = %q, %v", id, err)
	}

	st := match.NewMemoryResultStore(0)
	rn := match.CampaignRunner{Workers: 2, Store: st}
	cold, err := rn.Run(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := rn.Run(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	var cs match.CacheStats = st.Stats()
	if cs.Misses != int64(len(cold)) || cs.Hits != int64(len(warm)) {
		t.Fatalf("cache stats after cold+warm: %+v", cs)
	}
	if cs.HitRate() != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", cs.HitRate())
	}

	// The deprecated options path must agree with the request/runner pair.
	viaOpts, err := match.RunCampaign(match.CampaignOptions{
		Apps: req.Apps, Designs: req.Designs,
		Procs: req.Procs, MaxFaults: req.MaxFaults, Seed: req.Seed,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaOpts, cold) {
		t.Fatal("CampaignOptions path diverges from CampaignRequest/CampaignRunner")
	}

	key, err := match.CellKey(match.Config{App: "HPCCG", Procs: 8, Design: match.ReinitFTI}, 1)
	if err != nil || len(key) != 64 {
		t.Fatalf("CellKey = %q, %v", key, err)
	}

	if sz, err := match.ParseInputSize("medium"); err != nil || sz != match.Medium {
		t.Fatalf("ParseInputSize = %v, %v", sz, err)
	}
}

func TestFacadeTraceRecorder(t *testing.T) {
	detail, err := match.ParseTraceDetail("messages,sim")
	if err != nil {
		t.Fatal(err)
	}
	rec := match.NewTraceRecorder()
	rec.SetDetail(detail)
	bd, err := match.Run(match.Config{
		App:    "miniVite",
		Design: match.UlfmFTI,
		Procs:  8,
		Nodes:  4,
		Params: match.Params{NVerts: 512, MaxIter: 8, WorkScale: 10, CkptStride: 3},
		Trace:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("traced facade run recorded no spans")
	}
	if err := rec.Reconcile(match.TraceTotalsOf(bd), false); err != nil {
		t.Fatalf("facade trace failed reconciliation: %v", err)
	}
	var sb strings.Builder
	if err := rec.WriteChrome(&sb); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !strings.Contains(sb.String(), `"displayTimeUnit"`) {
		t.Fatal("Chrome export missing displayTimeUnit")
	}
}
