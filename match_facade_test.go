package match_test

import (
	"strings"
	"testing"

	"match"
)

func TestFacadeRun(t *testing.T) {
	bd, err := match.Run(match.Config{
		App:    "miniVite",
		Design: match.ReinitFTI,
		Procs:  16,
		Nodes:  8,
		Params: match.Params{NVerts: 512, MaxIter: 6, WorkScale: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bd.Completed || bd.Total <= 0 {
		t.Fatalf("bad breakdown: %+v", bd)
	}
}

func TestFacadeApps(t *testing.T) {
	apps := match.Apps()
	if len(apps) < 6 {
		t.Fatalf("apps = %v", apps)
	}
	for _, want := range []string{"AMG", "CoMD", "HPCCG", "LULESH", "miniFE", "miniVite"} {
		found := false
		for _, a := range apps {
			if a == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing %s in %v", want, apps)
		}
	}
}

func TestFacadeRegisterRejectsDuplicates(t *testing.T) {
	if err := match.RegisterApp("HPCCG", nil); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestFacadeTableI(t *testing.T) {
	var sb strings.Builder
	match.WriteTableI(&sb)
	if !strings.Contains(sb.String(), "-problem 2 -n 20 20 20") {
		t.Fatalf("Table I missing the paper's AMG input:\n%s", sb.String())
	}
}

func TestFacadeTracer(t *testing.T) {
	tc := match.NewTracer()
	tc.Alloc("v", 64, 16, 1)
	tc.LoopBegin(2)
	tc.NextIter(0)
	tc.Load(64, 1, 3)
	tc.NextIter(1)
	tc.Load(64, 2, 3)
	tc.LoopEnd()
	res := match.AnalyzeTrace(tc)
	if len(res.Checkpoint) != 1 || res.Checkpoint[0].Name != "v" {
		t.Fatalf("analysis = %+v", res)
	}
}
