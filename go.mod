module match

go 1.21
