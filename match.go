// Package match is the public facade of MATCH-Go, a reproduction of
// "MATCH: An MPI Fault Tolerance Benchmark Suite" (IISWC 2020) as a pure
// Go library: six HPC proxy applications wired to four MPI fault-
// tolerance designs — the paper's three (FTI checkpointing combined with
// Restart, Reinit, or ULFM recovery) plus ReplicaFTI, a replication-based
// design in the spirit of the paper's §V-E extension invitation — running
// on a deterministic discrete-event cluster simulation.
//
// Typical use:
//
//	bd, err := match.Run(match.Config{
//		App:    "HPCCG",
//		Design: match.ReinitFTI,
//		Procs:  64,
//		Input:  match.Small,
//	})
//
// See cmd/match for the CLI, cmd/matchsuite for regenerating every table
// and figure of the paper, and cmd/matchdep for the checkpoint data-object
// analysis (Algorithm 1).
package match

import (
	"io"

	"match/internal/apps"
	"match/internal/apps/appkit"
	"match/internal/ckpt"
	"match/internal/core"
	"match/internal/depanal"
	"match/internal/detect"
	"match/internal/fault"
	"match/internal/obs"
	"match/internal/replica"
	"match/internal/store"
	"match/internal/trace"
)

// Re-exported harness types.
type (
	// Config describes one benchmark run.
	Config = core.Config
	// Breakdown is the measured execution-time breakdown.
	Breakdown = core.Breakdown
	// Design selects the fault-tolerance composition.
	Design = core.Design
	// InputSize selects Small/Medium/Large from Table I.
	InputSize = core.InputSize
	// Result pairs a config with its breakdown.
	Result = core.Result
	// SuiteOptions shapes figure sweeps.
	SuiteOptions = core.SuiteOptions
	// Ratios holds the paper's §V-C headline comparisons.
	Ratios = core.Ratios
	// Params configures a custom application run.
	Params = appkit.Params
	// App is the application contract for extending the suite.
	App = appkit.App
	// Context is the per-rank execution context handed to applications.
	Context = appkit.Context
	// ReplicaConfig tunes the replication design (dup degree, partial
	// replication factor, failover and fallback cost model, hot-spare
	// respawn); set it as Config.Replica.
	ReplicaConfig = replica.Config
	// Respawn records one hot-spare spawn of the replica design's
	// supervisor (background respawn after a failover; Config.HotSpare).
	Respawn = replica.Respawn
	// FaultSchedule is an ordered multi-failure injection schedule; set it
	// as Config.Schedule for explicit campaigns, or let Config.Faults draw
	// one deterministically from the seed.
	FaultSchedule = fault.Schedule
	// FaultEvent is one failure of a FaultSchedule.
	FaultEvent = fault.Event
	// CampaignOptions shapes a multi-failure sweep (k = 0..MaxFaults
	// failures per run, per app and design).
	//
	// Deprecated: CampaignOptions bundles campaign identity with execution
	// environment. New code should describe the sweep as a CampaignRequest
	// (pure data; its canonical encoding is the campaign's cache identity)
	// and run it with a CampaignRunner. CampaignOptions keeps working —
	// RunCampaign splits it into exactly that pair.
	CampaignOptions = core.CampaignOptions
	// CampaignRequest is the canonical, serializable campaign description:
	// the sweep axes as pure data. Its version-stamped canonical JSON
	// (defaults filled) is the campaign's identity — the cache key, and the
	// campaign ID on a matchserve instance. The zero value is the full
	// default campaign.
	CampaignRequest = core.CampaignRequest
	// CampaignRunner is the execution environment a CampaignRequest runs
	// in: worker pool size, progress/metering/logging observers, and an
	// optional content-addressed ResultStore that memoizes cells across
	// campaigns. The zero value runs in-process with no observers.
	CampaignRunner = core.CampaignRunner
	// ResultStore is a content-addressed cell cache (in-memory LRU front,
	// optional disk backing); share one across campaigns — or attach it to
	// matchserve — so overlapping sweeps skip already-simulated cells.
	ResultStore = store.Store
	// CacheStats summarizes a ResultStore's traffic (hits, misses,
	// simulated-and-stored cells, evictions).
	CacheStats = store.Stats
	// Crossover is the campaign-level Replica-vs-Reinit analysis.
	Crossover = core.Crossover
	// DetectorConfig selects and tunes the failure-detection strategy any
	// design runs under (launcher / ring heartbeat / daemon tree); set it
	// as Config.Detector, or sweep a list via CampaignOptions.Detectors.
	DetectorConfig = detect.Config
	// DetectorKind names a detection strategy.
	DetectorKind = detect.Kind
	// DetectionTradeoff is one point of the campaign-level detection
	// latency vs steady-state interference curve.
	DetectionTradeoff = core.DetectionTradeoff
	// CkptPolicyConfig selects and tunes the checkpoint-placement policy
	// any design runs under (fixed stride / multi-level interleaving /
	// replica-aware stretching / adaptive Young–Daly); set it as
	// Config.CkptPolicy, or sweep a list via CampaignOptions.Policies.
	CkptPolicyConfig = ckpt.Config
	// CkptPolicyKind names a checkpoint-placement strategy.
	CkptPolicyKind = ckpt.Kind
	// ReplicaTradeoff is one point of the campaign-level combined
	// overhead-vs-ReplicaFactor curve (the PartRePer trade-off).
	ReplicaTradeoff = core.ReplicaTradeoff
	// Progress observes sweep execution cell by cell; set it as
	// SuiteOptions.Progress or CampaignOptions.Progress. Write to stderr —
	// stdout of deterministic sweeps is diffed by the CI determinism gate.
	Progress = core.Progress
)

// The detection strategies (Config.Detector.Kind). PresetDetector — the
// zero value — keeps each design's calibrated default.
const (
	PresetDetector   = detect.Preset
	LauncherDetector = detect.Launcher
	RingDetector     = detect.Ring
	TreeDetector     = detect.Tree
)

// ParseDetectorKind resolves a detector name ("launcher", "ring", "tree",
// "preset") case-insensitively.
func ParseDetectorKind(name string) (DetectorKind, error) { return detect.ParseKind(name) }

// The checkpoint-placement strategies (Config.CkptPolicy.Kind).
// FixedPlacement — the zero value — keeps the classic stride placement.
const (
	FixedPlacement        = ckpt.Fixed
	MultiLevelPlacement   = ckpt.MultiLevel
	ReplicaAwarePlacement = ckpt.ReplicaAware
	AdaptivePlacement     = ckpt.Adaptive
	NeverPlacement        = ckpt.Never
)

// ParseCkptPolicyKind resolves a placement-policy name ("fixed",
// "multi-level", "replica-aware", "adaptive", "never") case-insensitively.
func ParseCkptPolicyKind(name string) (CkptPolicyKind, error) { return ckpt.ParseKind(name) }

// ComputeReplicaTradeoff derives the combined overhead-vs-ReplicaFactor
// curve from campaign results that swept the replication axis
// (CampaignOptions.ReplicaFactors).
func ComputeReplicaTradeoff(results []Result) []ReplicaTradeoff {
	return core.ComputeReplicaTradeoff(results)
}

// WriteReplicaTradeoff renders the overhead-vs-ReplicaFactor curve.
func WriteReplicaTradeoff(w io.Writer, rows []ReplicaTradeoff) {
	core.WriteReplicaTradeoff(w, rows)
}

// ComputeDetectionTradeoff derives the per-design detection-latency vs
// interference curve from campaign results that swept the detection axis.
func ComputeDetectionTradeoff(results []Result) []DetectionTradeoff {
	return core.ComputeDetectionTradeoff(results)
}

// WriteDetectionTradeoff renders the detection-vs-interference curve.
func WriteDetectionTradeoff(w io.Writer, rows []DetectionTradeoff) {
	core.WriteDetectionTradeoff(w, rows)
}

// The four fault-tolerance designs.
const (
	RestartFTI = core.RestartFTI
	ReinitFTI  = core.ReinitFTI
	UlfmFTI    = core.UlfmFTI
	ReplicaFTI = core.ReplicaFTI
)

// The three input problem sizes.
const (
	Small  = core.Small
	Medium = core.Medium
	Large  = core.Large
)

// Run executes one configuration and returns its breakdown.
func Run(cfg Config) (Breakdown, error) { return core.Run(cfg) }

// Designs lists the fault-tolerance designs in plotting order.
func Designs() []Design { return core.Designs() }

// ParseDesign resolves a design name case-insensitively ("replica",
// "ULFM-FTI", ...), with an error listing valid names on a typo.
func ParseDesign(name string) (Design, error) { return core.ParseDesign(name) }

// RunAveraged repeats a configuration (the paper averaged five runs) and
// returns the mean breakdown plus individual results.
func RunAveraged(cfg Config, reps int) (Breakdown, []Result, error) {
	return core.RunAveraged(cfg, reps)
}

// RunFigure regenerates one of the paper's evaluation figures (5-10),
// writing the series to w and returning the raw results.
func RunFigure(fig int, opts SuiteOptions, w io.Writer) ([]Result, error) {
	return core.RunFigure(fig, opts, w)
}

// RunCampaign executes a multi-failure campaign sweep on the worker pool,
// writing per-app tables of recovery time and total overhead vs failure
// count to w and returning the raw results. It is the compatibility
// wrapper over the CampaignRequest/CampaignRunner split.
func RunCampaign(opts CampaignOptions, w io.Writer) ([]Result, error) {
	return core.RunCampaign(opts, w)
}

// OpenResultStore returns a content-addressed cell cache backed by dir
// (created if missing; "" keeps it memory-only). maxEntries bounds the
// in-memory LRU front; 0 selects the default. Attach it as
// CampaignRunner.Store; a warm rerun of a cached campaign simulates
// nothing and produces byte-identical output.
func OpenResultStore(dir string, maxEntries int) (*ResultStore, error) {
	return store.Open(dir, maxEntries)
}

// NewMemoryResultStore returns a memory-only result store (tests, or
// sharing cells between campaigns within one process).
func NewMemoryResultStore(maxEntries int) *ResultStore { return store.NewMemory(maxEntries) }

// CellKey is the content address of one campaign cell: the hex SHA-256 of
// the configuration's canonical encoding (defaults filled, observers and
// inactive designs excluded, version-stamped). Two configs that Run
// identically share a key.
func CellKey(cfg Config, reps int) (string, error) { return core.CellKey(cfg, reps) }

// ParseInputSize resolves a problem-size name ("Small", "medium", "L")
// case-insensitively.
func ParseInputSize(name string) (InputSize, error) { return core.ParseInputSize(name) }

// RunConfigs executes arbitrary configurations on a bounded worker pool
// (workers <= 0 means GOMAXPROCS) with deterministic result ordering.
func RunConfigs(cfgs []Config, reps, workers int) ([]Result, error) {
	return core.RunConfigs(cfgs, reps, workers)
}

// ParseFaultSchedule parses the campaign DSL, e.g. "3@40,3@55:after=1"
// (rank@iter[:after=N][:replica=R][:kind=node]).
func ParseFaultSchedule(spec string) (FaultSchedule, error) {
	return fault.ParseSchedule(spec)
}

// ComputeCrossover derives the Replica-vs-Reinit crossover analysis from
// campaign results: the failure count from which replication wins
// end-to-end.
func ComputeCrossover(results []Result) Crossover {
	return core.ComputeCrossover(results)
}

// HotSpareCrossovers splits a campaign that swept the respawn axis
// (CampaignOptions.HotSpares) into one crossover per hot-spare variant.
func HotSpareCrossovers(results []Result) (off, on Crossover, swept bool) {
	return core.HotSpareCrossovers(results)
}

// HotSpareOf reports whether a configuration runs the replica design with
// hot-spare respawn enabled.
func HotSpareOf(c Config) bool { return core.HotSpareOf(c) }

// WriteTableI renders the paper's Table I with the reproduction's
// scaled-down equivalents.
func WriteTableI(w io.Writer) { core.WriteTableI(w) }

// WriteCSV emits results as CSV.
func WriteCSV(w io.Writer, results []Result) { core.WriteCSV(w, results) }

// WriteCampaign renders the per-app campaign tables (recovery time and
// total overhead vs failure count) from raw results — the same rendering a
// CampaignRunner applies, usable on results fetched from a matchserve
// instance.
func WriteCampaign(w io.Writer, results []Result) { core.WriteCampaign(w, results) }

// ComputeRatios derives the §V-C headline ratios from with-failure runs.
func ComputeRatios(results []Result) Ratios { return core.ComputeRatios(results) }

// Apps lists the registered proxy applications.
func Apps() []string { return apps.Names() }

// RegisterApp adds a custom application to the suite (§V-E: MATCH is meant
// to be extended with new applications and designs).
func RegisterApp(name string, factory func() App) error {
	return apps.Register(name, func() appkit.App { return factory() })
}

// Execution-trace re-exports (internal/trace). Distinct from the
// dependency-analysis Tracer below: a TraceRecorder captures the
// simulation's own timeline — per-rank compute/checkpoint/recovery spans
// plus injector/detector/runtime events — for Perfetto export and
// Breakdown reconciliation.
type (
	// TraceRecorder collects spans from a run; allocate with
	// NewTraceRecorder and set it as Config.Trace (one recorder per run).
	TraceRecorder = trace.Recorder
	// TraceSpan is one recorded event or interval.
	TraceSpan = trace.Span
	// TraceDetail selects which high-volume categories are recorded.
	TraceDetail = trace.Detail
	// TraceTotals are the phase sums a trace reconciles against.
	TraceTotals = trace.Totals
)

// NewTraceRecorder returns an enabled execution-trace recorder.
func NewTraceRecorder() *TraceRecorder { return trace.New() }

// ParseTraceDetail resolves a detail spec — a comma list of "messages",
// "heartbeats", "sim", "all" — case-insensitively; the empty spec keeps
// phase spans only.
func ParseTraceDetail(spec string) (TraceDetail, error) { return trace.ParseDetail(spec) }

// TraceTotalsOf converts a breakdown into the totals a trace recorder
// reconciles against (Run already self-checks this when tracing).
func TraceTotalsOf(bd Breakdown) TraceTotals { return core.TraceTotalsOf(bd) }

// Observability re-exports (internal/obs). A MetricsRegistry is a pure
// observer of one run: set it as Config.Metrics and Run self-checks the
// write-time totals against the returned Breakdown (and against the
// trace span counts when a TraceRecorder runs alongside), failing hard
// on divergence. An EventLog streams structured JSON events; a
// SweepMeter aggregates finished sweep cells for the /metrics and
// /status endpoints (see cmd/matchsuite -pprof-http).
type (
	// MetricsRegistry counts simulator activity; allocate with
	// NewMetricsRegistry and set it as Config.Metrics. Unlike a
	// TraceRecorder it survives RunAveraged: each rep reconciles a fresh
	// registry and the caller's receives the merged totals.
	MetricsRegistry = obs.Registry
	// MetricsCounter indexes one registry counter (obs.CMessages, ...).
	MetricsCounter = obs.Counter
	// EventLog emits structured JSON events (log/slog); set it as
	// Config.Log.
	EventLog = obs.Log
	// SweepMeter merges per-cell registries during a live sweep and
	// serves OpenMetrics plus a JSON status document over HTTP.
	SweepMeter = obs.SweepMeter
	// SweepStatus is the /status JSON document of a SweepMeter.
	SweepStatus = obs.Status
)

// OpenMetricsContentType is the Content-Type of the exposition format
// written by MetricsRegistry.WriteOpenMetrics and the /metrics endpoint.
const OpenMetricsContentType = obs.ContentType

// The headline registry counters (MetricsRegistry.Get). The full set —
// scheduler internals, dedup drops, policy arms, per-level checkpoint
// splits — is in the exposition; these are the ones library callers
// typically assert on.
const (
	CounterMessages     = obs.CMessages
	CounterMsgBytes     = obs.CMsgBytes
	CounterCollectives  = obs.CCollectives
	CounterCheckpoints  = obs.CCheckpoints
	CounterRestores     = obs.CRestores
	CounterInjections   = obs.CInjections
	CounterDetections   = obs.CDetections
	CounterRecoveries   = obs.CRecoveries
	CounterFailovers    = obs.CFailovers
	CounterAbsorbs      = obs.CAbsorbs
	CounterRespawns     = obs.CRespawns
	CounterLeakedEvents = obs.CLeakedEvents
)

// NewMetricsRegistry returns an empty, enabled metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// NewEventLog returns an event log writing JSON lines to w.
func NewEventLog(w io.Writer) *EventLog { return obs.NewLog(w) }

// NewSweepMeter returns an empty sweep meter; rates are measured from
// this call.
func NewSweepMeter() *SweepMeter { return obs.NewSweepMeter() }

// Dependency-analysis re-exports (Algorithm 1).
type (
	// Tracer records dynamic execution traces from instrumented kernels.
	Tracer = depanal.Tracer
	// TraceResult is the outcome of the checkpoint-object analysis.
	TraceResult = depanal.Result
)

// NewTracer returns an empty execution tracer.
func NewTracer() *Tracer { return depanal.NewTracer() }

// AnalyzeTrace runs Algorithm 1 over a recorded trace.
func AnalyzeTrace(t *Tracer) TraceResult { return depanal.Analyze(t.Trace()) }
