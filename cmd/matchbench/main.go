// Command matchbench turns `go test -bench` output into a benchmark-
// trajectory gate. The suite's benchmarks report figure-level series —
// per-design breakdown components, headline overhead ratios, ablation
// curves — as custom metrics in *virtual* seconds, so they are
// deterministic: any drift between two runs of the same code is exactly
// zero, and any drift against a checked-in baseline is a real change to
// the modeled figures, never machine noise. CI runs the benchmarks once
// per push, extracts the figures, and fails when any of them moved more
// than the tolerance from BENCH_baseline.json.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -json . | matchbench -out BENCH_ci.json -baseline BENCH_baseline.json
//	go test -run='^$' -bench=. -benchtime=1x . | matchbench -out BENCH_baseline.json   # (re)seed the baseline
//
// Both the `go test -json` stream and raw benchmark output are accepted.
// Host-dependent metrics (ns/op, B/op, allocs/op, MB/s) are excluded from
// the extraction; everything else a benchmark reports is virtual-time
// derived and gated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// hostUnits are benchmark metrics measured in host time or host memory —
// noisy by nature, excluded from the deterministic figure set.
var hostUnits = map[string]bool{
	"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": true,
}

// benchLine matches a benchmark result line: name, iteration count, then
// the metric list. The -<procs> GOMAXPROCS suffix is stripped from the
// name so the figure keys are machine-independent.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(-\d+)?\s+\d+\s+(.+)$`)

// testEvent is the subset of the `go test -json` stream we consume.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// baseline is the on-disk format: one flat, sorted map of figure keys
// ("Benchmark/metric") to their deterministic values, plus the per-
// benchmark host wall-clock. Wall-clock is machine-dependent, so it is
// recorded as a trend — reported on comparison, never gated.
type baseline struct {
	Comment string             `json:"comment,omitempty"`
	Figures map[string]float64 `json:"figures"`
	WallMs  map[string]float64 `json:"wall_ms,omitempty"`
}

func main() {
	in := flag.String("in", "-", `benchmark output to read ("-" = stdin); go test -json or raw`)
	out := flag.String("out", "", "write the extracted figures as JSON (e.g. BENCH_ci.json)")
	basePath := flag.String("baseline", "", "compare against this baseline JSON and fail on drift")
	tol := flag.Float64("tol", 0.10, "allowed relative drift per figure before failing")
	flag.Parse()
	if *tol < 0 {
		fmt.Fprintf(os.Stderr, "matchbench: -tol %g invalid (want >= 0)\n", *tol)
		os.Exit(2)
	}

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	figures, wallMs, err := extract(r)
	if err != nil {
		fatal(err)
	}
	if len(figures) == 0 {
		fatal(fmt.Errorf("no benchmark figures found in input (did the bench run emit custom metrics?)"))
	}
	fmt.Printf("matchbench: extracted %d figures from %d benchmarks\n", len(figures), benchCount(figures))

	if *out != "" {
		b, err := json.MarshalIndent(baseline{
			Comment: "deterministic figure-level benchmark metrics (virtual seconds/ratios); wall_ms is host wall-clock, a trend only; regenerate with: go test -run='^$' -bench=. -benchtime=1x . | go run ./cmd/matchbench -out BENCH_baseline.json",
			Figures: figures,
			WallMs:  wallMs,
		}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("matchbench: wrote %s\n", *out)
	}

	if *basePath == "" {
		return
	}
	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *basePath, err))
	}
	reportWallTrend(base.WallMs, wallMs)
	if code := compare(base.Figures, figures, *tol); code != 0 {
		os.Exit(code)
	}
	fmt.Printf("matchbench: all %d baseline figures within %.0f%% of %s\n",
		len(base.Figures), 100**tol, *basePath)
}

// extract pulls the figure map out of benchmark output, accepting both the
// go test -json event stream and raw text. The event stream splits one
// result line across several output events (the name fragment carries no
// newline), so fragments are reassembled per test before parsing. The
// second map is per-benchmark host wall-clock (ns/op rendered as ms) —
// kept apart from the figures because it is machine noise, not a gate.
func extract(r io.Reader) (map[string]float64, map[string]float64, error) {
	figures := map[string]float64{}
	wallMs := map[string]float64{}
	partial := map[string]string{} // per (package, test): unterminated output fragment
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				key := ev.Package + "\x00" + ev.Test
				buf := partial[key] + ev.Output
				for {
					nl := strings.IndexByte(buf, '\n')
					if nl < 0 {
						break
					}
					parseLine(figures, wallMs, buf[:nl])
					buf = buf[nl+1:]
				}
				partial[key] = buf
				continue
			}
		}
		parseLine(figures, wallMs, line)
	}
	for _, rest := range partial {
		parseLine(figures, wallMs, rest)
	}
	return figures, wallMs, sc.Err()
}

// parseLine records the custom metrics of one benchmark result line, and
// its ns/op as the wall_ms trend entry.
func parseLine(figures, wallMs map[string]float64, line string) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return
	}
	name, rest := m[1], m[3]
	fields := strings.Fields(rest)
	for i := 0; i+1 < len(fields); i += 2 {
		unit := fields[i+1]
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if unit == "ns/op" {
			wallMs[name] = v / 1e6
			continue
		}
		if hostUnits[unit] {
			continue
		}
		figures[name+"/"+unit] = v
	}
}

// reportWallTrend prints per-benchmark host wall-clock movement against
// the baseline. Informational only: wall-clock varies by machine and load,
// so it never fails the gate — it exists to make slow drifts visible in CI
// logs before they become painful.
func reportWallTrend(base, cur map[string]float64) {
	if len(base) == 0 || len(cur) == 0 {
		return
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		if _, ok := cur[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		was, now := base[k], cur[k]
		pct := ""
		if was > 0 {
			pct = fmt.Sprintf(" (%+.0f%%)", 100*(now-was)/was)
		}
		fmt.Printf("wall %-60s %.1fms -> %.1fms%s [trend, not gated]\n", k, was, now, pct)
	}
}

func benchCount(figures map[string]float64) int {
	seen := map[string]bool{}
	for k := range figures {
		seen[k[:strings.LastIndex(k, "/")]] = true
	}
	return len(seen)
}

// compare reports drift of current figures against the baseline. Missing
// figures fail (a benchmark or metric silently disappeared); new figures
// only warn (they need a baseline reseed, not a red build).
func compare(base, cur map[string]float64, tol float64) int {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := 0
	for _, k := range keys {
		want := base[k]
		got, ok := cur[k]
		if !ok {
			fmt.Printf("FAIL %-60s baseline %.6g, missing from this run\n", k, want)
			failed++
			continue
		}
		drift := relDrift(want, got)
		if drift > tol {
			fmt.Printf("FAIL %-60s baseline %.6g, got %.6g (drift %.1f%%)\n", k, want, got, 100*drift)
			failed++
		}
	}
	var news []string
	for k := range cur {
		if _, ok := base[k]; !ok {
			news = append(news, k)
		}
	}
	sort.Strings(news)
	for _, k := range news {
		fmt.Printf("note %-60s new figure %.6g (not in baseline; reseed to gate it)\n", k, cur[k])
	}
	if failed > 0 {
		fmt.Printf("matchbench: %d figure(s) drifted beyond %.0f%% — if the change is intended, reseed the baseline\n",
			failed, 100*tol)
		return 1
	}
	return 0
}

// relDrift is |got-want| relative to the baseline magnitude; tiny baseline
// values fall back to absolute drift so zero-valued figures can't divide
// by zero (and can't drift invisibly).
func relDrift(want, got float64) float64 {
	d := math.Abs(got - want)
	if m := math.Abs(want); m > 1e-9 {
		return d / m
	}
	return d
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "matchbench:", err)
	os.Exit(1)
}
