// Command matchbench turns `go test -bench` output into a benchmark-
// trajectory gate. The suite's benchmarks report figure-level series —
// per-design breakdown components, headline overhead ratios, ablation
// curves — as custom metrics in *virtual* seconds, so they are
// deterministic: any drift between two runs of the same code is exactly
// zero, and any drift against a checked-in baseline is a real change to
// the modeled figures, never machine noise. CI runs the benchmarks once
// per push, extracts the figures, and fails when any of them moved more
// than the tolerance from BENCH_baseline.json.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -json . | matchbench -out BENCH_ci.json -baseline BENCH_baseline.json
//	go test -run='^$' -bench=. -benchtime=1x . | matchbench -out BENCH_baseline.json   # (re)seed the baseline
//
// Both the `go test -json` stream and raw benchmark output are accepted.
// Host-dependent metrics (ns/op, B/op, allocs/op, MB/s) are excluded from
// the extraction; everything else a benchmark reports is virtual-time
// derived and gated. Two host-speed series ride along without being part
// of the deterministic gate: per-benchmark wall-clock (wall_ms, from
// ns/op) and throughput metrics (cells/sec). Both are reported as trends
// on every comparison, can be appended to a JSONL trajectory with -trend
// (bounded to the newest N entries with -trend-max), and are soft-gated — failing only on egregious regressions — when
// -wall-tol is set (e.g. -wall-tol 2.0 fails on a 2x slowdown). Subset
// runs (a single benchmark against the full baseline) pass -allow-missing
// so absent figures warn instead of fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// hostUnits are benchmark metrics measured in host time or host memory —
// noisy by nature, excluded from the deterministic figure set.
var hostUnits = map[string]bool{
	"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": true,
}

// throughputUnits are host-dependent like hostUnits, but tracked as named
// trend series (and soft-gated by -wall-tol) rather than dropped: they are
// the suite's simulator-speed headline numbers.
var throughputUnits = map[string]bool{
	"cells/sec": true,
}

// benchLine matches a benchmark result line: name, iteration count, then
// the metric list. The -<procs> GOMAXPROCS suffix is stripped from the
// name so the figure keys are machine-independent.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(-\d+)?\s+\d+\s+(.+)$`)

// testEvent is the subset of the `go test -json` stream we consume.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// baseline is the on-disk format: one flat, sorted map of figure keys
// ("Benchmark/metric") to their deterministic values, plus the per-
// benchmark host wall-clock. Wall-clock is machine-dependent, so it is
// recorded as a trend — reported on comparison, never gated.
type baseline struct {
	Comment string             `json:"comment,omitempty"`
	Figures map[string]float64 `json:"figures"`
	WallMs  map[string]float64 `json:"wall_ms,omitempty"`
	// Throughput holds host-speed trend series ("Benchmark/cells/sec").
	// Like WallMs it is machine-dependent; unlike the figures it is only
	// soft-gated, and only when -wall-tol is set.
	Throughput map[string]float64 `json:"throughput,omitempty"`
}

func main() {
	in := flag.String("in", "-", `benchmark output to read ("-" = stdin); go test -json or raw`)
	out := flag.String("out", "", "write the extracted figures as JSON (e.g. BENCH_ci.json)")
	basePath := flag.String("baseline", "", "compare against this baseline JSON and fail on drift")
	tol := flag.Float64("tol", 0.10, "allowed relative drift per figure before failing")
	wallTol := flag.Float64("wall-tol", 0, "soft host-speed gate: fail when wall_ms grows, or throughput drops, by more than this factor (e.g. 2.0 = 2x); 0 disables")
	allowMissing := flag.Bool("allow-missing", false, "warn instead of fail on baseline figures absent from this run (for subset bench runs)")
	trendPath := flag.String("trend", "", "append this run's wall_ms and throughput as one JSON line to the given file (host-speed trajectory record)")
	trendMax := flag.Int("trend-max", 0, "with -trend, keep only the newest N entries in the trajectory file (0 = unbounded)")
	flag.Parse()
	if *tol < 0 {
		fmt.Fprintf(os.Stderr, "matchbench: -tol %g invalid (want >= 0)\n", *tol)
		os.Exit(2)
	}
	if *wallTol != 0 && *wallTol < 1 {
		fmt.Fprintf(os.Stderr, "matchbench: -wall-tol %g invalid (want 0 to disable, or >= 1)\n", *wallTol)
		os.Exit(2)
	}
	if *trendMax < 0 {
		fmt.Fprintf(os.Stderr, "matchbench: -trend-max %d invalid (want >= 0)\n", *trendMax)
		os.Exit(2)
	}

	r := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	figures, wallMs, thrpt, err := extract(r)
	if err != nil {
		fatal(err)
	}
	if len(figures) == 0 {
		fatal(fmt.Errorf("no benchmark figures found in input (did the bench run emit custom metrics?)"))
	}
	fmt.Printf("matchbench: extracted %d figures from %d benchmarks\n", len(figures), benchCount(figures))

	if *out != "" {
		b, err := json.MarshalIndent(baseline{
			Comment:    "deterministic figure-level benchmark metrics (virtual seconds/ratios); wall_ms and throughput are host speed, trends only; regenerate with: go test -run='^$' -bench=. -benchtime=1x . | go run ./cmd/matchbench -out BENCH_baseline.json",
			Figures:    figures,
			WallMs:     wallMs,
			Throughput: thrpt,
		}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("matchbench: wrote %s\n", *out)
	}
	if *trendPath != "" {
		if err := appendTrend(*trendPath, wallMs, thrpt); err != nil {
			fatal(err)
		}
		fmt.Printf("matchbench: appended host-speed trend entry to %s\n", *trendPath)
		if *trendMax > 0 {
			dropped, err := capTrend(*trendPath, *trendMax)
			if err != nil {
				fatal(err)
			}
			if dropped > 0 {
				fmt.Printf("matchbench: trimmed %d old trend entr(ies), keeping newest %d\n", dropped, *trendMax)
			}
		}
	}

	if *basePath == "" {
		return
	}
	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *basePath, err))
	}
	reportWallTrend(base.WallMs, wallMs)
	reportThroughputTrend(base.Throughput, thrpt)
	code := compare(base.Figures, figures, *tol, *allowMissing)
	if *wallTol > 0 {
		code += hostSpeedGate(base, wallMs, thrpt, *wallTol)
	}
	if code != 0 {
		os.Exit(1)
	}
	fmt.Printf("matchbench: all %d baseline figures within %.0f%% of %s\n",
		len(base.Figures), 100**tol, *basePath)
}

// appendTrend records one JSON line of host-speed numbers per invocation,
// building the throughput trajectory across CI runs. The file is
// append-only JSONL so concurrent-ish CI jobs and local runs interleave
// without a merge step.
func appendTrend(path string, wallMs, thrpt map[string]float64) error {
	entry := struct {
		Time       string             `json:"time"`
		WallMs     map[string]float64 `json:"wall_ms,omitempty"`
		Throughput map[string]float64 `json:"throughput,omitempty"`
	}{Time: time.Now().UTC().Format(time.RFC3339), WallMs: wallMs, Throughput: thrpt}
	b, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(b, '\n'))
	return err
}

// capTrend bounds the trajectory file to the newest max lines, returning
// how many were dropped. The rewrite goes through a temp file + rename so
// a crash mid-trim cannot truncate the history. Blank lines are skipped
// so hand edits don't inflate the count.
func capTrend(path string, max int) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var lines []string
	for _, ln := range strings.Split(string(raw), "\n") {
		if strings.TrimSpace(ln) != "" {
			lines = append(lines, ln)
		}
	}
	if len(lines) <= max {
		return 0, nil
	}
	dropped := len(lines) - max
	kept := strings.Join(lines[dropped:], "\n") + "\n"
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(kept), 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return dropped, nil
}

// hostSpeedGate is the soft wall-clock gate: unlike the figure gate it
// tolerates ordinary machine variance (the factor should be generous, e.g.
// 2.0) and only fails on egregious regressions — wall time growing, or
// throughput shrinking, past factor x baseline. Benchmarks present in only
// one side are ignored; -allow-missing semantics are implicit here.
func hostSpeedGate(base baseline, wallMs, thrpt map[string]float64, factor float64) int {
	failed := 0
	for _, k := range sortedCommonKeys(base.WallMs, wallMs) {
		was, now := base.WallMs[k], wallMs[k]
		if was > 0 && now > was*factor {
			fmt.Printf("FAIL %-60s wall %.1fms -> %.1fms, beyond the %gx soft gate\n", k, was, now, factor)
			failed++
		}
	}
	for _, k := range sortedCommonKeys(base.Throughput, thrpt) {
		was, now := base.Throughput[k], thrpt[k]
		if was > 0 && now < was/factor {
			fmt.Printf("FAIL %-60s throughput %.4g -> %.4g, beyond the %gx soft gate\n", k, was, now, factor)
			failed++
		}
	}
	if failed > 0 {
		fmt.Printf("matchbench: %d host-speed serie(s) regressed beyond %gx — investigate or reseed the baseline on this machine\n", failed, factor)
	}
	return failed
}

// extract pulls the figure map out of benchmark output, accepting both the
// go test -json event stream and raw text. The event stream splits one
// result line across several output events (the name fragment carries no
// newline), so fragments are reassembled per test before parsing. The
// second map is per-benchmark host wall-clock (ns/op rendered as ms) and
// the third is the throughput series — both kept apart from the figures
// because they are machine speed, not deterministic model output.
func extract(r io.Reader) (map[string]float64, map[string]float64, map[string]float64, error) {
	figures := map[string]float64{}
	wallMs := map[string]float64{}
	thrpt := map[string]float64{}
	partial := map[string]string{} // per (package, test): unterminated output fragment
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action != "output" {
					continue
				}
				key := ev.Package + "\x00" + ev.Test
				buf := partial[key] + ev.Output
				for {
					nl := strings.IndexByte(buf, '\n')
					if nl < 0 {
						break
					}
					parseLine(figures, wallMs, thrpt, buf[:nl])
					buf = buf[nl+1:]
				}
				partial[key] = buf
				continue
			}
		}
		parseLine(figures, wallMs, thrpt, line)
	}
	for _, rest := range partial {
		parseLine(figures, wallMs, thrpt, rest)
	}
	return figures, wallMs, thrpt, sc.Err()
}

// parseLine records the custom metrics of one benchmark result line, its
// ns/op as the wall_ms trend entry, and any throughput units as the
// throughput trend entry.
func parseLine(figures, wallMs, thrpt map[string]float64, line string) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return
	}
	name, rest := m[1], m[3]
	fields := strings.Fields(rest)
	for i := 0; i+1 < len(fields); i += 2 {
		unit := fields[i+1]
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		if unit == "ns/op" {
			wallMs[name] = v / 1e6
			continue
		}
		if throughputUnits[unit] {
			thrpt[name+"/"+unit] = v
			continue
		}
		if hostUnits[unit] {
			continue
		}
		figures[name+"/"+unit] = v
	}
}

// reportWallTrend prints per-benchmark host wall-clock movement against
// the baseline. Informational only: wall-clock varies by machine and load,
// so it never fails the gate — it exists to make slow drifts visible in CI
// logs before they become painful.
func reportWallTrend(base, cur map[string]float64) {
	for _, k := range sortedCommonKeys(base, cur) {
		was, now := base[k], cur[k]
		pct := ""
		if was > 0 {
			pct = fmt.Sprintf(" (%+.0f%%)", 100*(now-was)/was)
		}
		fmt.Printf("wall %-60s %.1fms -> %.1fms%s [trend, not gated]\n", k, was, now, pct)
	}
}

// reportThroughputTrend is the throughput analogue of reportWallTrend:
// cells/sec movement against the baseline, informational unless -wall-tol
// turns on the soft gate.
func reportThroughputTrend(base, cur map[string]float64) {
	for _, k := range sortedCommonKeys(base, cur) {
		was, now := base[k], cur[k]
		pct := ""
		if was > 0 {
			pct = fmt.Sprintf(" (%+.0f%%)", 100*(now-was)/was)
		}
		fmt.Printf("thrpt %-59s %.4g -> %.4g%s [trend]\n", k, was, now, pct)
	}
}

// sortedCommonKeys returns the sorted keys present in both maps.
func sortedCommonKeys(a, b map[string]float64) []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		if _, ok := b[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func benchCount(figures map[string]float64) int {
	seen := map[string]bool{}
	for k := range figures {
		seen[k[:strings.LastIndex(k, "/")]] = true
	}
	return len(seen)
}

// compare reports drift of current figures against the baseline. Missing
// figures fail (a benchmark or metric silently disappeared) unless
// allowMissing is set — subset runs like the throughput-only CI job
// legitimately skip most of the suite; new figures only warn (they need a
// baseline reseed, not a red build).
func compare(base, cur map[string]float64, tol float64, allowMissing bool) int {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := 0
	for _, k := range keys {
		want := base[k]
		got, ok := cur[k]
		if !ok {
			if allowMissing {
				continue
			}
			fmt.Printf("FAIL %-60s baseline %.6g, missing from this run\n", k, want)
			failed++
			continue
		}
		drift := relDrift(want, got)
		if drift > tol {
			fmt.Printf("FAIL %-60s baseline %.6g, got %.6g (drift %.1f%%)\n", k, want, got, 100*drift)
			failed++
		}
	}
	var news []string
	for k := range cur {
		if _, ok := base[k]; !ok {
			news = append(news, k)
		}
	}
	sort.Strings(news)
	for _, k := range news {
		fmt.Printf("note %-60s new figure %.6g (not in baseline; reseed to gate it)\n", k, cur[k])
	}
	if failed > 0 {
		fmt.Printf("matchbench: %d figure(s) drifted beyond %.0f%% — if the change is intended, reseed the baseline\n",
			failed, 100*tol)
		return 1
	}
	return 0
}

// relDrift is |got-want| relative to the baseline magnitude; tiny baseline
// values fall back to absolute drift so zero-valued figures can't divide
// by zero (and can't drift invisibly).
func relDrift(want, got float64) float64 {
	d := math.Abs(got - want)
	if m := math.Abs(want); m > 1e-9 {
		return d / m
	}
	return d
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "matchbench:", err)
	os.Exit(1)
}
