package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// appendTrend grows the JSONL trajectory one valid line per call, and
// capTrend keeps exactly the newest N of them.
func TestTrendAppendAndCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.jsonl")
	for i := 0; i < 5; i++ {
		wall := map[string]float64{"BenchmarkCampaign": float64(100 + i)}
		thrpt := map[string]float64{"BenchmarkCampaign/cells/sec": float64(i)}
		if err := appendTrend(path, wall, thrpt); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	dropped, err := capTrend(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Errorf("cap above current size dropped %d entries, want 0", dropped)
	}

	dropped, err = capTrend(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Errorf("dropped = %d, want 3", dropped)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("kept %d lines, want 2: %q", len(lines), lines)
	}
	// The survivors must be the NEWEST two entries, still valid JSON.
	for i, ln := range lines {
		var e struct {
			WallMs map[string]float64 `json:"wall_ms"`
		}
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("kept line %d is not JSON: %v", i, err)
		}
		if want := float64(103 + i); e.WallMs["BenchmarkCampaign"] != want {
			t.Errorf("kept line %d wall = %g, want %g (newest entries)", i, e.WallMs["BenchmarkCampaign"], want)
		}
	}
}

// extract accepts both raw benchmark text and the go test -json stream,
// routing host-speed units into wall/throughput and everything else into
// the deterministic figure set.
func TestExtractRoutesUnits(t *testing.T) {
	raw := strings.NewReader(strings.Join([]string{
		"BenchmarkCampaign-8   1   2000000 ns/op   512 B/op   7 allocs/op   3.5 cells/sec   1.25 overhead-ratio",
		"not a benchmark line",
	}, "\n"))
	figures, wallMs, thrpt, err := extract(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := figures["BenchmarkCampaign/overhead-ratio"]; got != 1.25 {
		t.Errorf("figure = %g, want 1.25", got)
	}
	if _, ok := figures["BenchmarkCampaign/B/op"]; ok {
		t.Error("host unit B/op leaked into the figure set")
	}
	if got := wallMs["BenchmarkCampaign"]; got != 2.0 {
		t.Errorf("wall_ms = %g, want 2 (from 2e6 ns/op)", got)
	}
	if got := thrpt["BenchmarkCampaign/cells/sec"]; got != 3.5 {
		t.Errorf("throughput = %g, want 3.5", got)
	}
}
