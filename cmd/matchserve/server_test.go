package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"match/internal/core"
	"match/internal/store"
)

func testServer(t *testing.T, cfg serverConfig, executors int) (*server, *httptest.Server) {
	t.Helper()
	if cfg.store == nil {
		cfg.store = store.NewMemory(0)
	}
	srv := newServer(cfg)
	if executors > 0 {
		srv.start(executors)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, req core.CampaignRequest) (statusView, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v statusView
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) statusView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var v statusView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitDone(t *testing.T, ts *httptest.Server, id string) statusView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		v := getStatus(t, ts, id)
		if v.State == stateDone || v.State == stateFailed {
			return v
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", id)
	return statusView{}
}

func fetch(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func tinyRequest() core.CampaignRequest {
	return core.CampaignRequest{
		Apps:    []string{"HPCCG"},
		Designs: []core.Design{core.RestartFTI, core.UlfmFTI},
		Procs:   8, MaxFaults: 1, Seed: 7,
	}
}

// The service must hand back exactly what an in-process run of the same
// request produces: equal results, and a byte-identical table and CSV.
func TestServeCampaignEndToEnd(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2}, 1)
	req := tinyRequest()

	v, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if want := len(req.Configs()); v.CellsTotal != want {
		t.Fatalf("cells_total = %d, want %d", v.CellsTotal, want)
	}
	final := waitDone(t, ts, v.ID)
	if final.State != stateDone {
		t.Fatalf("campaign failed: %s", final.Error)
	}
	if final.CellsDone != final.CellsTotal {
		t.Fatalf("done with %d/%d cells", final.CellsDone, final.CellsTotal)
	}
	if final.ResultsURL == "" {
		t.Fatal("done campaign has no results URL")
	}

	// The same request, run in-process, is the reference.
	var localTable bytes.Buffer
	localRes, err := core.CampaignRunner{Workers: 2}.Run(req, &localTable)
	if err != nil {
		t.Fatal(err)
	}

	code, body := fetch(t, ts.URL+final.ResultsURL)
	if code != http.StatusOK {
		t.Fatalf("results: HTTP %d: %s", code, body)
	}
	var remoteRes []core.Result
	if err := json.Unmarshal(body, &remoteRes); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remoteRes, localRes) {
		t.Fatal("remote results diverge from the in-process run")
	}

	code, table := fetch(t, ts.URL+final.ResultsURL+"?format=table")
	if code != http.StatusOK || !bytes.Equal(table, localTable.Bytes()) {
		t.Fatalf("remote table diverges (HTTP %d):\n--- remote ---\n%s--- local ---\n%s",
			code, table, &localTable)
	}

	var localCSV bytes.Buffer
	core.WriteCSV(&localCSV, localRes)
	code, csv := fetch(t, ts.URL+final.ResultsURL+"?format=csv")
	if code != http.StatusOK || !bytes.Equal(csv, localCSV.Bytes()) {
		t.Fatalf("remote CSV diverges (HTTP %d)", code)
	}

	// Every cell was simulated once and cached.
	code, cache := fetch(t, ts.URL+"/cache")
	if code != http.StatusOK {
		t.Fatalf("cache: HTTP %d", code)
	}
	var cs cacheStats
	if err := json.Unmarshal(cache, &cs); err != nil {
		t.Fatal(err)
	}
	if !cs.Enabled || cs.Puts != int64(final.CellsTotal) {
		t.Fatalf("cache stats after one campaign: %+v", cs)
	}

	// Resubmitting the equivalent request is idempotent: 200, same ID, no
	// second run (the registry already holds the campaign).
	again, code := submit(t, ts, req)
	if code != http.StatusOK || again.ID != v.ID {
		t.Fatalf("resubmit: HTTP %d, id %s (want %s)", code, again.ID, v.ID)
	}

	// A request spelling the defaults out hashes to the same campaign.
	explicit := req
	explicit.Reps = 1
	explicit.Input = core.Small
	spelled, code := submit(t, ts, explicit)
	if code != http.StatusOK || spelled.ID != v.ID {
		t.Fatalf("explicit-defaults resubmit: HTTP %d, id %s (want %s)", code, spelled.ID, v.ID)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t, serverConfig{}, 1)
	for name, body := range map[string]string{
		"garbage":       "{not json",
		"unknown field": `{"appz": ["HPCCG"]}`,
		"unknown app":   `{"apps": ["NotAnApp"], "max_faults": 0}`,
		"bad factor":    `{"replica_factors": [2.0], "max_faults": 0}`,
	} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
}

// With no executors started, submissions stay queued — which makes the
// per-client limit deterministic to test.
func TestServePerClientLimit(t *testing.T) {
	_, ts := testServer(t, serverConfig{maxPerClient: 1}, 0)
	a := core.CampaignRequest{Apps: []string{"HPCCG"}, MaxFaults: 0}
	b := core.CampaignRequest{Apps: []string{"CoMD"}, MaxFaults: 0}

	va, code := submit(t, ts, a)
	if code != http.StatusAccepted || va.State != stateQueued {
		t.Fatalf("first submit: HTTP %d, state %s", code, va.State)
	}
	if _, code = submit(t, ts, b); code != http.StatusTooManyRequests {
		t.Fatalf("second distinct submit: HTTP %d, want 429", code)
	}
	// Resubmitting the queued campaign is not a new campaign: no 429.
	if again, code := submit(t, ts, a); code != http.StatusOK || again.ID != va.ID {
		t.Fatalf("resubmit while queued: HTTP %d, id %s", code, again.ID)
	}
}

func TestServeRouting(t *testing.T) {
	_, ts := testServer(t, serverConfig{}, 1)
	if code, _ := fetch(t, ts.URL+"/campaigns/deadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown campaign: HTTP %d, want 404", code)
	}
	if code, _ := fetch(t, ts.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path: HTTP %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /campaigns: HTTP %d, want 405", resp.StatusCode)
	}
	for _, p := range []string{"/metrics", "/status", "/healthz", "/cache", "/campaigns"} {
		if code, _ := fetch(t, ts.URL+p); code != http.StatusOK {
			t.Errorf("GET %s: HTTP %d, want 200", p, code)
		}
	}
}

// Watching a finished campaign yields a single terminal SSE event; an
// unfinished one streams progress until done.
func TestServeWatchSSE(t *testing.T) {
	_, ts := testServer(t, serverConfig{workers: 2}, 1)
	req := core.CampaignRequest{Apps: []string{"HPCCG"},
		Designs: []core.Design{core.RestartFTI}, Procs: 8, MaxFaults: 0}
	v, code := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + v.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type %q", ct)
	}
	var last statusView
	events := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		events++
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events == 0 || last.State != stateDone {
		t.Fatalf("watch ended after %d events in state %q", events, last.State)
	}
	if last.CellsDone != last.CellsTotal {
		t.Fatalf("terminal event at %d/%d cells", last.CellsDone, last.CellsTotal)
	}
}

// A second, overlapping campaign served warm from the shared store returns
// results identical to its own cold in-process run.
func TestServeWarmOverlap(t *testing.T) {
	st := store.NewMemory(0)
	_, ts := testServer(t, serverConfig{workers: 2, store: st}, 1)

	first := tinyRequest()
	v1, _ := submit(t, ts, first)
	if final := waitDone(t, ts, v1.ID); final.State != stateDone {
		t.Fatalf("first campaign failed: %s", final.Error)
	}
	base := st.Stats()

	// Superset: same cells plus the reinit design's.
	second := first
	second.Designs = []core.Design{core.RestartFTI, core.UlfmFTI, core.ReinitFTI}
	v2, code := submit(t, ts, second)
	if code != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d", code)
	}
	if final := waitDone(t, ts, v2.ID); final.State != stateDone {
		t.Fatalf("second campaign failed: %s", final.Error)
	}
	cs := st.Stats()
	if wantHits := base.Puts; cs.Hits-base.Hits != wantHits {
		t.Fatalf("overlap reused %d cells, want %d: %+v", cs.Hits-base.Hits, wantHits, cs)
	}

	code, body := fetch(t, ts.URL+"/campaigns/"+v2.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("results: HTTP %d", code)
	}
	var remote []core.Result
	if err := json.Unmarshal(body, &remote); err != nil {
		t.Fatal(err)
	}
	local, err := core.CampaignRunner{Workers: 2}.Run(second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remote, local) {
		t.Fatal("warm overlapping campaign diverges from a cold in-process run")
	}
}
