package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"match/internal/core"
	"match/internal/obs"
	"match/internal/store"
)

// serverConfig is the execution environment shared by every campaign the
// service runs: one result store, one sweep meter, one event log.
type serverConfig struct {
	store        *store.Store
	workers      int // per-campaign worker pool (0 = GOMAXPROCS)
	maxPerClient int // queued+running campaigns per client (0 = unlimited)
	log          *obs.Log
}

const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// campaign is one submitted request and everything its execution produces.
// The ID is the request hash, so an equivalent resubmission maps to the
// same campaign instead of a second run.
type campaign struct {
	id     string
	req    core.CampaignRequest
	client string

	mu         sync.Mutex
	state      string
	errMsg     string
	cellsDone  int
	cellsTotal int
	wall       time.Duration
	results    []core.Result
	table      []byte // the campaign table, byte-identical to RunCampaign's
	subs       map[chan statusView]bool
	done       chan struct{} // closed on done/failed
}

// statusView is the wire form of a campaign's status.
type statusView struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Error      string `json:"error,omitempty"`
	CellsDone  int    `json:"cells_done"`
	CellsTotal int    `json:"cells_total"`
	WallMS     int64  `json:"wall_ms,omitempty"`
	ResultsURL string `json:"results_url,omitempty"`
}

func (c *campaign) view() statusView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viewLocked()
}

func (c *campaign) viewLocked() statusView {
	v := statusView{
		ID:         c.id,
		State:      c.state,
		Error:      c.errMsg,
		CellsDone:  c.cellsDone,
		CellsTotal: c.cellsTotal,
		WallMS:     c.wall.Milliseconds(),
	}
	if c.state == stateDone {
		v.ResultsURL = "/campaigns/" + c.id + "/results"
	}
	return v
}

func (c *campaign) subscribe() chan statusView {
	ch := make(chan statusView, 64)
	c.mu.Lock()
	if c.subs == nil {
		c.subs = map[chan statusView]bool{}
	}
	c.subs[ch] = true
	c.mu.Unlock()
	return ch
}

func (c *campaign) unsubscribe(ch chan statusView) {
	c.mu.Lock()
	delete(c.subs, ch)
	c.mu.Unlock()
}

// broadcast pushes the current status to every watcher. Slow watchers drop
// intermediate events rather than stalling the sweep.
func (c *campaign) broadcast() {
	c.mu.Lock()
	v := c.viewLocked()
	for ch := range c.subs {
		select {
		case ch <- v:
		default:
		}
	}
	c.mu.Unlock()
}

// server is the matchserve HTTP backend: a campaign registry plus a
// bounded pool of campaign executors.
type server struct {
	cfg   serverConfig
	meter *obs.SweepMeter

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string // submission order, for listing
	perClient map[string]int
	queue     chan *campaign
}

func newServer(cfg serverConfig) *server {
	return &server{
		cfg:       cfg,
		meter:     obs.NewSweepMeter(),
		campaigns: map[string]*campaign{},
		perClient: map[string]int{},
		queue:     make(chan *campaign, 1024),
	}
}

// start launches n campaign executors. Submissions beyond n concurrent
// campaigns wait in the queue.
func (s *server) start(n int) {
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		go func() {
			for c := range s.queue {
				s.runCampaign(c)
			}
		}()
	}
}

func (s *server) runCampaign(c *campaign) {
	start := time.Now()
	c.mu.Lock()
	c.state = stateRunning
	c.mu.Unlock()
	c.broadcast()

	rn := core.CampaignRunner{
		Workers: s.cfg.workers,
		Meter:   s.meter,
		Log:     s.cfg.log,
		Store:   s.cfg.store,
		Progress: func(done, total int, _ core.Result, _ time.Duration) {
			c.mu.Lock()
			c.cellsDone, c.cellsTotal = done, total
			c.mu.Unlock()
			c.broadcast()
		},
	}
	var table bytes.Buffer
	results, err := rn.Run(c.req, &table)

	c.mu.Lock()
	c.wall = time.Since(start)
	if err != nil {
		c.state = stateFailed
		c.errMsg = err.Error()
	} else {
		c.state = stateDone
		c.results = results
		c.table = table.Bytes()
	}
	close(c.done)
	c.mu.Unlock()
	s.release(c.client)
}

func (s *server) release(client string) {
	s.mu.Lock()
	if s.perClient[client]--; s.perClient[client] <= 0 {
		delete(s.perClient, client)
	}
	s.mu.Unlock()
}

func (s *server) lookup(id string) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// ServeHTTP routes by hand: go.mod pins Go 1.21, which predates ServeMux
// wildcard patterns.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/campaigns":
		switch r.Method {
		case http.MethodPost:
			s.handleSubmit(w, r)
		case http.MethodGet:
			s.handleList(w)
		default:
			httpError(w, http.StatusMethodNotAllowed, "use POST to submit or GET to list")
		}
	case strings.HasPrefix(r.URL.Path, "/campaigns/"):
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "campaign resources are read-only")
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/campaigns/")
		parts := strings.Split(rest, "/")
		c := s.lookup(parts[0])
		if c == nil {
			httpError(w, http.StatusNotFound, "unknown campaign %q", parts[0])
			return
		}
		switch {
		case len(parts) == 1:
			s.handleStatus(w, r, c)
		case len(parts) == 2 && parts[1] == "results":
			s.handleResults(w, r, c)
		default:
			httpError(w, http.StatusNotFound, "unknown campaign resource %q", rest)
		}
	case r.URL.Path == "/cache":
		writeJSON(w, http.StatusOK, cacheView(s.cfg.store))
	case r.URL.Path == "/metrics":
		s.meter.MetricsHandler().ServeHTTP(w, r)
	case r.URL.Path == "/status":
		s.meter.StatusHandler().ServeHTTP(w, r)
	case r.URL.Path == "/healthz":
		w.Write([]byte("ok\n"))
	default:
		httpError(w, http.StatusNotFound, "no such resource %q", r.URL.Path)
	}
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req core.CampaignRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad campaign request: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid campaign: %v", err)
		return
	}
	id, err := req.Hash()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "hash: %v", err)
		return
	}
	client := clientKey(r)

	s.mu.Lock()
	if c, ok := s.campaigns[id]; ok {
		s.mu.Unlock()
		// Idempotent resubmit: same canonical request, same campaign.
		writeJSON(w, http.StatusOK, c.view())
		return
	}
	if s.cfg.maxPerClient > 0 && s.perClient[client] >= s.cfg.maxPerClient {
		s.mu.Unlock()
		httpError(w, http.StatusTooManyRequests,
			"client %s already has %d campaigns in flight", client, s.cfg.maxPerClient)
		return
	}
	c := &campaign{
		id:         id,
		req:        req,
		client:     client,
		state:      stateQueued,
		cellsTotal: len(req.Configs()),
		done:       make(chan struct{}),
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.perClient[client]++
	s.mu.Unlock()

	select {
	case s.queue <- c:
	default:
		c.mu.Lock()
		c.state = stateFailed
		c.errMsg = "campaign queue full"
		close(c.done)
		c.mu.Unlock()
		s.release(client)
		httpError(w, http.StatusServiceUnavailable, "campaign queue full")
		return
	}
	writeJSON(w, http.StatusAccepted, c.view())
}

func (s *server) handleList(w http.ResponseWriter) {
	s.mu.Lock()
	views := make([]statusView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.campaigns[id].view())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request, c *campaign) {
	if r.URL.Query().Get("watch") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.watchCampaign(w, r, c)
		return
	}
	writeJSON(w, http.StatusOK, c.view())
}

// watchCampaign streams progress as server-sent events until the campaign
// finishes or the client goes away.
func (s *server) watchCampaign(w http.ResponseWriter, r *http.Request, c *campaign) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	send := func(v statusView) {
		b, _ := json.Marshal(v)
		fmt.Fprintf(w, "data: %s\n\n", b)
		fl.Flush()
	}
	sub := c.subscribe()
	defer c.unsubscribe(sub)
	v0 := c.view()
	send(v0)
	if v0.State == stateDone || v0.State == stateFailed {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case v := <-sub:
			if v.State == stateDone || v.State == stateFailed {
				continue // the done channel delivers the terminal event once
			}
			send(v)
		case <-c.done:
			send(c.view())
			return
		}
	}
}

func (s *server) handleResults(w http.ResponseWriter, r *http.Request, c *campaign) {
	c.mu.Lock()
	state, errMsg, results, table := c.state, c.errMsg, c.results, c.table
	c.mu.Unlock()
	switch state {
	case stateFailed:
		httpError(w, http.StatusInternalServerError, "campaign failed: %s", errMsg)
		return
	case stateDone:
	default:
		httpError(w, http.StatusConflict, "campaign is %s; results not ready", state)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, results)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		core.WriteCSV(w, results)
	case "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(table)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (valid: json, csv, table)", format)
	}
}

// cacheStats is store.Stats plus the derived hit rate and whether a cache
// is attached at all.
type cacheStats struct {
	Enabled bool `json:"enabled"`
	store.Stats
	HitRate float64 `json:"hit_rate"`
}

func cacheView(st *store.Store) cacheStats {
	v := cacheStats{Enabled: st.Enabled()}
	if st.Enabled() {
		v.Stats = st.Stats()
		v.HitRate = v.Stats.HitRate()
	}
	return v
}

// clientKey identifies a client for the per-client concurrency limit: the
// host part of the remote address.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
