// Command matchserve runs MATCH campaigns as a service: clients POST a
// canonical CampaignRequest, the server executes it on a bounded worker
// pool backed by the content-addressed result cache, and the results come
// back as the same table, CSV, and JSON the in-process harness produces —
// byte-identical, because the rendering code is shared.
//
// Usage:
//
//	matchserve -addr localhost:8080 -cache /var/cache/match -j 8
//
// API:
//
//	POST /campaigns                  submit a CampaignRequest (JSON body)
//	GET  /campaigns                  list campaigns (JSON)
//	GET  /campaigns/{id}             status (JSON); ?watch=1 streams SSE
//	GET  /campaigns/{id}/results     results: ?format=json|csv|table
//	GET  /cache                      result-cache statistics (JSON)
//	GET  /metrics                    live sweep counters (OpenMetrics)
//	GET  /status                     live sweep status (JSON)
//
// A campaign's ID is its request hash, so resubmitting an equivalent
// request — defaults spelled out or not — returns the existing campaign
// instead of running it twice, and the cell cache makes even distinct
// overlapping sweeps skip already-simulated cells.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"match/internal/obs"
	"match/internal/store"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	cacheDir := flag.String("cache", "", "content-addressed result cache directory (empty: in-memory only)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory cache capacity in cells (0 = default)")
	workers := flag.Int("j", 0, "worker pool size per campaign (default GOMAXPROCS)")
	campaigns := flag.Int("campaigns", 2, "campaigns executed concurrently (further submissions queue)")
	maxPerClient := flag.Int("max-per-client", 4, "max queued+running campaigns per client (0 = unlimited)")
	logDest := flag.String("log", "", `structured JSON event log destination: "stderr" or a file path`)
	flag.Parse()

	st, err := store.Open(*cacheDir, *cacheEntries)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var elog *obs.Log
	switch *logDest {
	case "":
	case "stderr":
		elog = obs.NewLog(os.Stderr)
	default:
		f, err := os.Create(*logDest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "log:", err)
			os.Exit(1)
		}
		defer f.Close()
		elog = obs.NewLog(f)
	}

	srv := newServer(serverConfig{
		store:        st,
		workers:      *workers,
		maxPerClient: *maxPerClient,
		log:          elog,
	})
	srv.start(*campaigns)

	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "matchserve: result cache at %s\n", *cacheDir)
	}
	fmt.Fprintf(os.Stderr, "matchserve: listening on http://%s\n", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
