// Command matchsuite regenerates the paper's evaluation: Table I and every
// figure (5-10), plus the §V-C headline ratios and a correctness
// verification pass.
//
// Usage:
//
//	matchsuite -list                 # print Table I
//	matchsuite -fig 7                # regenerate one figure
//	matchsuite -all -reps 5          # the full paper evaluation
//	matchsuite -ratios               # headline ratios from Fig. 6 data
//	matchsuite -verify               # recovered-answer correctness matrix
//	matchsuite -csv out.csv -fig 5   # raw series for plotting
//	matchsuite -campaign -max-faults 3 -j 8   # multi-failure sweep, k=0..3
//	matchsuite -campaign -detector ring -hb-period 50ms,150ms   # detection-axis sweep
//	matchsuite -campaign -ckpt-policy fixed,replica-aware,adaptive   # placement-axis sweep
//	matchsuite -replica-sweep 0,0.25,0.5,1.0   # PartRePer overhead-vs-ReplicaFactor curve
//	matchsuite -hot-spare-sweep -max-faults 2   # respawn axis: crossover per hot-spare variant
//	matchsuite -campaign -cache ~/.cache/match   # memoize cells; warm reruns simulate nothing
//	matchsuite -campaign -server http://host:8080   # run the campaign on a matchserve instance
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"match/internal/ckpt"
	"match/internal/core"
	"match/internal/detect"
	"match/internal/obs"
	"match/internal/simnet"
	"match/internal/store"
)

func main() {
	list := flag.Bool("list", false, "print Table I and exit")
	fig := flag.Int("fig", 0, "regenerate one figure (5-10)")
	all := flag.Bool("all", false, "regenerate every figure")
	ratios := flag.Bool("ratios", false, "compute §V-C headline ratios (runs Fig. 6 matrix)")
	verify := flag.Bool("verify", false, "verify recovered answers equal failure-free answers")
	campaign := flag.Bool("campaign", false, "run the multi-failure campaign sweep (k = 0..-max-faults failures per run)")
	maxFaults := flag.Int("max-faults", 3, "campaign mode: largest failure count per run")
	procs := flag.Int("procs", 0, "campaign mode: process count (default 64)")
	appsFlag := flag.String("apps", "", "comma-separated app filter")
	scalesFlag := flag.String("scales", "", "comma-separated process-count filter")
	reps := flag.Int("reps", 1, "repetitions per configuration (paper: 5)")
	workers := flag.Int("j", 0, "sweep worker pool size (default GOMAXPROCS); result order is unaffected")
	csvPath := flag.String("csv", "", "also write raw results as CSV")
	seed := flag.Int64("seed", 1, "base fault seed")
	detector := flag.String("detector", "preset", "failure-detection strategy for every run: preset, launcher, ring, tree")
	hbPeriods := flag.String("hb-period", "", "detector heartbeat period(s); campaign mode sweeps a comma-separated list (e.g. 50ms,150ms)")
	hbTimeout := flag.Duration("hb-timeout", 0, "detector observation timeout (0 = 3x period)")
	ckptPolicies := flag.String("ckpt-policy", "", "checkpoint-placement policy for every run (fixed, multi-level, replica-aware, adaptive, never); campaign mode sweeps a comma-separated list")
	ckptL2 := flag.Int("ckpt-l2-every", 0, "multi-level placement: escalate every Nth checkpoint to L2 (0 = policy default)")
	ckptL3 := flag.Int("ckpt-l3-every", 0, "multi-level placement: escalate every Nth checkpoint to L3 (0 = off)")
	ckptL4 := flag.Int("ckpt-l4-every", 0, "multi-level placement: escalate every Nth checkpoint to L4 (0 = policy default)")
	ckptStretch := flag.Int("ckpt-stretch", 0, "replica-aware placement: stride multiplier while every rank is replica-protected (0 = default 4)")
	ckptSkip := flag.Bool("ckpt-skip-protected", false, "replica-aware placement: skip checkpoints entirely while protected")
	replicaSweep := flag.String("replica-sweep", "", "campaign the replica design over these ReplicaFactors (e.g. 0,0.25,0.5,1.0; 0 = replication off) and print the combined overhead-vs-ReplicaFactor curve")
	hotSpareSweep := flag.Bool("hot-spare-sweep", false, "campaign the replica design with hot-spare respawn off and on and print the Replica-vs-Reinit crossover per variant")
	modelIngress := flag.Bool("model-ingress", false, "serialize receiver NICs too (richer network model; shifts calibrated timings)")
	serverURL := flag.String("server", "", "campaign mode: submit the request to a matchserve instance at this base URL instead of simulating in-process; output stays byte-identical")
	cacheDir := flag.String("cache", "", "campaign mode: content-addressed result cache directory; cached cells are reused, simulated cells are stored")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory cache capacity in cells (0 = default)")
	progress := flag.Bool("progress", true, "report per-cell completion, wall-clock, and throughput on stderr while a sweep runs (stdout stays byte-stable)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (inspect with go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile at sweep end to this file")
	pprofHTTP := flag.String("pprof-http", "", "serve net/http/pprof plus live /metrics (OpenMetrics) and /status (JSON) on this address (e.g. localhost:6060)")
	logDest := flag.String("log", "", `write structured JSON lifecycle events (cell start/finish, inject, detect, failover, ...) to this destination: "stderr" or a file path`)
	flag.Parse()

	if *maxFaults < 0 {
		fmt.Fprintf(os.Stderr, "-max-faults %d invalid (want >= 0; 0 runs the failure-free baseline only)\n", *maxFaults)
		os.Exit(2)
	}
	// A ReplicaFactor sweep is a campaign over the replication axis.
	var factors []float64
	if *replicaSweep != "" {
		for _, s := range strings.Split(*replicaSweep, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			// The negated comparison also rejects NaN, which would sail
			// through "f < 0 || f > 1".
			if err != nil || !(f >= 0 && f <= 1) {
				fmt.Fprintf(os.Stderr, "bad -replica-sweep entry %q (want factors in [0,1])\n", s)
				os.Exit(2)
			}
			factors = append(factors, f)
		}
		*campaign = true
	}
	// The hot-spare sweep is a campaign over the respawn axis; it needs
	// the unreplicated designs as comparison, so it cannot combine with
	// -replica-sweep (which restricts the matrix to the replica design).
	if *hotSpareSweep {
		if *replicaSweep != "" {
			fmt.Fprintln(os.Stderr, "-hot-spare-sweep and -replica-sweep are mutually exclusive")
			os.Exit(2)
		}
		*campaign = true
	}
	if *campaign {
		if *fig != 0 || *all || *ratios || *verify || *list {
			fmt.Fprintln(os.Stderr, "-campaign/-replica-sweep are exclusive with -fig/-all/-ratios/-verify/-list")
			os.Exit(2)
		}
		if *scalesFlag != "" {
			fmt.Fprintln(os.Stderr, "-campaign runs at a single scale: use -procs instead of -scales")
			os.Exit(2)
		}
	} else if *procs != 0 {
		fmt.Fprintln(os.Stderr, "-procs only applies to -campaign; figure sweeps take -scales")
		os.Exit(2)
	}
	if *serverURL != "" && !*campaign {
		fmt.Fprintln(os.Stderr, "-server only applies to -campaign (the service speaks CampaignRequest)")
		os.Exit(2)
	}
	if *cacheDir != "" && !*campaign {
		fmt.Fprintln(os.Stderr, "-cache only applies to -campaign (cells are the cache unit)")
		os.Exit(2)
	}
	if *serverURL != "" && *cacheDir != "" {
		fmt.Fprintln(os.Stderr, "-server and -cache are mutually exclusive: a remote campaign uses the server's cache")
		os.Exit(2)
	}
	dkind, err := detect.ParseKind(*detector)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tunable := dkind == detect.Ring || dkind == detect.Tree
	if !tunable && *hbTimeout != 0 {
		fmt.Fprintf(os.Stderr, "-hb-timeout only applies to -detector ring or tree (got %s)\n", dkind)
		os.Exit(2)
	}
	var periods []simnet.Time
	if *hbPeriods != "" {
		if !tunable {
			fmt.Fprintf(os.Stderr, "-hb-period only applies to -detector ring or tree (got %s)\n", dkind)
			os.Exit(2)
		}
		for _, s := range strings.Split(*hbPeriods, ",") {
			d, err := time.ParseDuration(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -hb-period:", err)
				os.Exit(2)
			}
			periods = append(periods, simnet.Time(d.Nanoseconds()))
		}
	}
	// The detection sweep list: one config per heartbeat period (a single
	// config when only the kind or timeout is set).
	var detectors []detect.Config
	if dkind != detect.Preset {
		if len(periods) == 0 {
			periods = []simnet.Time{0}
		}
		for _, p := range periods {
			// Resolve now so tables and CSV label the sweep with the actual
			// derived values (e.g. the 3x-period timeout).
			detectors = append(detectors, detect.Resolve(detect.Config{
				Kind:            dkind,
				HeartbeatPeriod: p,
				DetectTimeout:   simnet.Time(hbTimeout.Nanoseconds()),
			}, detect.Config{}))
		}
	}
	if len(detectors) > 1 && !*campaign {
		fmt.Fprintln(os.Stderr, "multiple -hb-period values sweep the detection axis; that needs -campaign")
		os.Exit(2)
	}

	// The placement sweep list: one config per named policy.
	var policies []ckpt.Config
	if *ckptPolicies != "" {
		for _, s := range strings.Split(*ckptPolicies, ",") {
			kind, err := ckpt.ParseKind(s)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			pc := ckpt.Config{Kind: kind}
			if kind == ckpt.MultiLevel {
				pc.L2Every, pc.L3Every, pc.L4Every = *ckptL2, *ckptL3, *ckptL4
			}
			if kind == ckpt.ReplicaAware {
				pc.Stretch, pc.SkipProtected = *ckptStretch, *ckptSkip
			}
			// Resolve now so tables and CSV label the sweep with the actual
			// derived values (stride, default escalation periods), and
			// validate at flag-parse time with the authoritative rule set.
			pc = ckpt.Resolve(pc, 0)
			if err := pc.Validate(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			policies = append(policies, pc)
		}
	}
	hasKind := func(k ckpt.Kind) bool {
		for _, p := range policies {
			if p.Kind == k {
				return true
			}
		}
		return false
	}
	if (*ckptL2 != 0 || *ckptL3 != 0 || *ckptL4 != 0) && !hasKind(ckpt.MultiLevel) {
		fmt.Fprintln(os.Stderr, "-ckpt-l2/l3/l4-every only apply with -ckpt-policy multi-level")
		os.Exit(2)
	}
	if (*ckptStretch != 0 || *ckptSkip) && !hasKind(ckpt.ReplicaAware) {
		fmt.Fprintln(os.Stderr, "-ckpt-stretch/-ckpt-skip-protected only apply with -ckpt-policy replica-aware")
		os.Exit(2)
	}
	if len(policies) > 1 && !*campaign {
		fmt.Fprintln(os.Stderr, "multiple -ckpt-policy values sweep the placement axis; that needs -campaign")
		os.Exit(2)
	}

	// Profiling, progress, metering, and the event log are pure
	// observability: they write to stderr, files, or HTTP only, so the
	// deterministic stdout/CSV streams stay byte-stable. The sweep meter —
	// and with it the per-cell metric registries and their reconciliation
	// self-checks — is armed only when an HTTP address serves it, keeping
	// the default sweep's hot path at the one-branch metrics-off cost.
	var meter *obs.SweepMeter
	if *pprofHTTP != "" {
		meter = obs.NewSweepMeter()
		http.Handle("/metrics", meter.MetricsHandler())
		http.Handle("/status", meter.StatusHandler())
	}
	var elog *obs.Log
	if *logDest != "" {
		switch *logDest {
		case "stderr":
			elog = obs.NewLog(os.Stderr)
			// Structured cell_finish events carry what the ad-hoc progress
			// line reports; don't interleave both on stderr.
			*progress = false
		default:
			f, err := os.Create(*logDest)
			if err != nil {
				fmt.Fprintln(os.Stderr, "log:", err)
				os.Exit(1)
			}
			defer f.Close()
			elog = obs.NewLog(f)
		}
	}
	stopProf := startProfiling(*cpuprofile, *memprofile, *pprofHTTP)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		stopProf()
		os.Exit(1)
	}
	sweepStart := time.Now()
	cellsDone := 0
	var cellWall time.Duration
	prog := func(done, total int, r core.Result, wall time.Duration) {
		cellsDone, cellWall = done, cellWall+wall
		if *progress {
			rate := float64(done) / time.Since(sweepStart).Seconds()
			fmt.Fprintf(os.Stderr, "[%d/%d] %s faults=%d  %6.2fs wall  (%.2f cells/s)\n",
				done, total, r.Key(), r.Config.FaultCount(), wall.Seconds(), rate)
		}
	}

	opts := core.SuiteOptions{Reps: *reps, Seed: *seed, Workers: *workers,
		ModelIngress: *modelIngress, Progress: prog, Meter: meter, Log: elog}
	if len(detectors) == 1 {
		opts.Detector = detectors[0]
	}
	if len(policies) == 1 {
		opts.CkptPolicy = policies[0]
	}
	if *appsFlag != "" {
		opts.Apps = strings.Split(*appsFlag, ",")
	}
	if *scalesFlag != "" {
		for _, s := range strings.Split(*scalesFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -scales:", err)
				os.Exit(2)
			}
			opts.Scales = append(opts.Scales, v)
		}
	}

	switch {
	case *list:
		core.WriteTableI(os.Stdout)
	case *campaign:
		copts := core.CampaignOptions{
			Apps:           opts.Apps,
			Procs:          *procs,
			MaxFaults:      *maxFaults,
			Reps:           *reps,
			Seed:           *seed,
			Workers:        *workers,
			Detectors:      detectors,
			Policies:       policies,
			ReplicaFactors: factors,
			ModelIngress:   *modelIngress,
			Progress:       prog,
			Meter:          meter,
			Log:            elog,
		}
		if *hotSpareSweep {
			copts.HotSpares = []bool{false, true}
		}
		// Local and remote campaigns share every rendering path below, so a
		// -server run is byte-identical to the in-process run of the same
		// request: the service returns raw results and the table, analyses,
		// and CSV are produced by the exact same code either way.
		var results []core.Result
		var err error
		if *serverURL != "" {
			results, err = runRemoteCampaign(*serverURL, copts.Request(), *progress)
			if err != nil {
				fail(err)
			}
			core.WriteCampaign(os.Stdout, results)
		} else {
			rn := copts.Runner()
			if *cacheDir != "" {
				st, serr := store.Open(*cacheDir, *cacheEntries)
				if serr != nil {
					fail(serr)
				}
				rn.Store = st
			}
			results, err = rn.Run(copts.Request(), os.Stdout)
			if err != nil {
				fail(err)
			}
			if rn.Store.Enabled() {
				cs := rn.Store.Stats()
				fmt.Fprintf(os.Stderr, "cache: hits=%d misses=%d puts=%d evictions=%d (%.0f%% hit rate)\n",
					cs.Hits, cs.Misses, cs.Puts, cs.Evictions, 100*cs.HitRate())
			}
		}
		if len(detectors) > 0 {
			core.WriteDetectionTradeoff(os.Stdout, core.ComputeDetectionTradeoff(results))
		}
		switch {
		case len(factors) > 0:
			core.WriteReplicaTradeoff(os.Stdout, core.ComputeReplicaTradeoff(results))
		case *hotSpareSweep:
			off, on, swept := core.HotSpareCrossovers(results)
			if swept {
				fmt.Println("-- hot-spare off --")
				off.Write(os.Stdout)
				fmt.Println("-- hot-spare on --")
				on.Write(os.Stdout)
			} else {
				core.ComputeCrossover(results).Write(os.Stdout)
			}
		default:
			core.ComputeCrossover(results).Write(os.Stdout)
		}
		writeCSV(*csvPath, results)
	case *verify:
		if err := runVerify(opts); err != nil {
			fail(err)
		}
	case *ratios:
		results, err := core.RunFigure(6, opts, os.Stdout)
		if err != nil {
			fail(err)
		}
		core.ComputeRatios(results).Write(os.Stdout)
		writeCSV(*csvPath, results)
	case *all:
		var everything []core.Result
		for _, f := range []int{5, 6, 7, 8, 9, 10} {
			// Figures 7/10 replot the recovery component of 6/9; rerunning
			// keeps each figure's output self-contained.
			results, err := core.RunFigure(f, opts, os.Stdout)
			if err != nil {
				fail(err)
			}
			everything = append(everything, results...)
		}
		core.ComputeRatios(everything).Write(os.Stdout)
		writeCSV(*csvPath, everything)
	case *fig != 0:
		results, err := core.RunFigure(*fig, opts, os.Stdout)
		if err != nil {
			fail(err)
		}
		writeCSV(*csvPath, results)
	default:
		flag.Usage()
		os.Exit(2)
	}
	// Final sweep summary (stderr side channel, like progress): cumulative
	// per-cell wall is the worker-pool aggregate, mean cells/sec is against
	// host wall-clock, and peak heap is the runtime's high-water mark.
	if cellsDone > 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		elapsed := time.Since(sweepStart)
		fmt.Fprintf(os.Stderr, "sweep summary: %d cells, %.2fs wall (%.2fs cumulative cell time), %.2f cells/s mean, peak heap %.1f MiB\n",
			cellsDone, elapsed.Seconds(), cellWall.Seconds(),
			float64(cellsDone)/elapsed.Seconds(), float64(ms.HeapSys)/(1<<20))
	}
	stopProf()
}

// campaignStatus mirrors matchserve's status JSON.
type campaignStatus struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Error      string `json:"error"`
	CellsDone  int    `json:"cells_done"`
	CellsTotal int    `json:"cells_total"`
	ResultsURL string `json:"results_url"`
}

// runRemoteCampaign submits the request to a matchserve instance, polls it
// to completion (progress on stderr, like a local sweep), and returns the
// raw results for the caller to render through the local code paths.
func runRemoteCampaign(base string, req core.CampaignRequest, progress bool) ([]core.Result, error) {
	base = strings.TrimSuffix(base, "/")
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var st campaignStatus
	if err := decodeRemote(resp, &st); err != nil {
		return nil, err
	}
	if progress {
		fmt.Fprintf(os.Stderr, "remote campaign %.12s: %d cells on %s (%s)\n",
			st.ID, st.CellsTotal, base, st.State)
	}
	lastDone := -1
	for st.State != "done" && st.State != "failed" {
		time.Sleep(250 * time.Millisecond)
		resp, err := http.Get(base + "/campaigns/" + st.ID)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		if err := decodeRemote(resp, &st); err != nil {
			return nil, err
		}
		if progress && st.CellsDone != lastDone {
			lastDone = st.CellsDone
			fmt.Fprintf(os.Stderr, "[%d/%d] remote\n", st.CellsDone, st.CellsTotal)
		}
	}
	if st.State == "failed" {
		return nil, fmt.Errorf("remote campaign failed: %s", st.Error)
	}
	resp, err = http.Get(base + st.ResultsURL + "?format=json")
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var results []core.Result
	if err := decodeRemote(resp, &results); err != nil {
		return nil, err
	}
	return results, nil
}

// decodeRemote decodes a matchserve JSON response, turning error statuses
// into errors carrying the server's message.
func decodeRemote(resp *http.Response, v interface{}) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// startProfiling arms the requested host-side profilers and returns the
// teardown that flushes them; every exit path of a profiled sweep must run
// it (os.Exit skips defers), or the CPU profile ends up truncated.
func startProfiling(cpu, mem, httpAddr string) func() {
	var stops []func()
	if httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof-http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: live profiles at http://%s/debug/pprof/\n", httpAddr)
	}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if mem != "" {
		stops = append(stops, func() {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		})
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}
}

func writeCSV(path string, results []core.Result) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		os.Exit(1)
	}
	defer f.Close()
	core.WriteCSV(f, results)
}

// runVerify checks, for every app and design at a small scale, that a run
// with an injected failure produces the same answer as a failure-free run.
func runVerify(opts core.SuiteOptions) error {
	opts.Reps = 1
	appsList := opts.Apps
	if len(appsList) == 0 {
		appsList = core.TableIApps()
	}
	fmt.Println("== Recovery correctness verification ==")
	for _, app := range appsList {
		ref, err := core.Run(core.Config{App: app, Design: core.ReinitFTI, Procs: 64, Input: core.Small})
		if err != nil {
			return fmt.Errorf("%s reference: %w", app, err)
		}
		for _, d := range core.Designs() {
			bd, err := core.Run(core.Config{App: app, Design: d, Procs: 64, Input: core.Small,
				InjectFault: true, FaultSeed: opts.Seed})
			if err != nil {
				return fmt.Errorf("%s/%s: %w", app, d, err)
			}
			status := "OK (bitwise equal)"
			if bd.Signature != ref.Signature {
				status = fmt.Sprintf("MISMATCH %g != %g", bd.Signature, ref.Signature)
			}
			fmt.Printf("  %-10s %-12s recoveries=%d  %s\n", app, d, bd.Recoveries, status)
			if bd.Signature != ref.Signature {
				return fmt.Errorf("%s/%s: recovered answer differs", app, d)
			}
		}
	}
	fmt.Println("all designs recover to the failure-free answer")
	return nil
}
