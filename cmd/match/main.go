// Command match runs a single MATCH benchmark configuration and prints the
// execution-time breakdown.
//
// Usage:
//
//	match -app HPCCG -design reinit -procs 64 -input small -fault
//	match -design replica -replica-factor 0.5 -fault
//	match -design ulfm -faults 3                      # multi-failure campaign
//	match -fault-schedule "3@40,3@55:after=1"         # explicit schedule
//	match -design replica -fault -detector ring -hb-period 50ms   # in-band detection
//	match -ckpt-policy multi-level -ckpt-l2-every 3 -ckpt-l4-every 10
//	match -design replica -fault -ckpt-policy replica-aware       # stretch while protected
//	match -design replica -hot-spare -fault-schedule "3@20:replica=0,3@45:replica=1"
//	match -fault -metrics -log stderr                 # OpenMetrics dump + JSON event log
//	match -list-designs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"match/internal/ckpt"
	"match/internal/core"
	"match/internal/detect"
	"match/internal/fault"
	"match/internal/fti"
	"match/internal/obs"
	"match/internal/replica"
	"match/internal/simnet"
	"match/internal/trace"
)

func main() {
	app := flag.String("app", "HPCCG", "application: AMG, CoMD, HPCCG, LULESH, miniFE, miniVite")
	design := flag.String("design", "reinit", "fault-tolerance design (see -list-designs); case-insensitive")
	listDesigns := flag.Bool("list-designs", false, "print the available fault-tolerance designs and exit")
	procs := flag.Int("procs", 64, "number of logical MPI processes (64, 128, 256, 512)")
	nodes := flag.Int("nodes", 32, "number of compute nodes")
	input := flag.String("input", "small", "input problem size: small, medium, large")
	faultOn := flag.Bool("fault", false, "inject one random process failure (Figure 4)")
	faults := flag.Int("faults", 0, "inject this many scheduled failures (campaign mode; implies -fault)")
	faultSchedule := flag.String("fault-schedule", "",
		`explicit failure schedule, e.g. "3@40,3@55:after=1" (rank@iter[:after=N][:replica=R][:kind=node])`)
	seed := flag.Int64("seed", 1, "fault-injection seed")
	level := flag.Int("level", 1, "FTI checkpoint level (1-4)")
	stride := flag.Int("stride", 10, "checkpoint every N iterations")
	reps := flag.Int("reps", 1, "repetitions to average (the paper used 5)")
	dupDegree := flag.Int("dup-degree", 0, "replica design: replicas per protected rank (default 2)")
	replicaFactor := flag.Float64("replica-factor", 0, "replica design: fraction of ranks replicated (default 1; <1 = partial replication)")
	hotSpare := flag.Bool("hot-spare", false, "replica design: respawn a fresh shadow in the background after a failover, restoring the group to full degree")
	spawnDelay := flag.Duration("spawn-delay", 0, "hot-spare: dynamic-process-spawn cost before the state transfer (0 = default 250ms)")
	spawnBW := flag.Float64("spawn-bw", 0, "hot-spare: state-clone serialization bandwidth in bytes/s (0 = default 8e9)")
	ckptPolicy := flag.String("ckpt-policy", "fixed", "checkpoint-placement policy: fixed, multi-level, replica-aware, adaptive, never")
	ckptL2 := flag.Int("ckpt-l2-every", 0, "multi-level placement: escalate every Nth checkpoint to L2 (0 = policy default)")
	ckptL3 := flag.Int("ckpt-l3-every", 0, "multi-level placement: escalate every Nth checkpoint to L3 (0 = off)")
	ckptL4 := flag.Int("ckpt-l4-every", 0, "multi-level placement: escalate every Nth checkpoint to L4 (0 = policy default)")
	ckptStretch := flag.Int("ckpt-stretch", 0, "replica-aware placement: stride multiplier while every rank is replica-protected (0 = default 4)")
	ckptSkip := flag.Bool("ckpt-skip-protected", false, "replica-aware placement: skip checkpoints entirely (not just stretch) while protected")
	detector := flag.String("detector", "preset", "failure-detection strategy: preset, launcher, ring, tree")
	hbPeriod := flag.Duration("hb-period", 0, "ring/tree detector: heartbeat/supervision period (0 = strategy default)")
	hbTimeout := flag.Duration("hb-timeout", 0, "ring/tree detector: observation timeout before a silent peer is declared dead (0 = 3x period)")
	hbBytes := flag.Int("hb-bytes", 0, "ring/tree detector: heartbeat wire size in bytes (0 = strategy default)")
	modelIngress := flag.Bool("model-ingress", false, "serialize receiver NICs too (richer network model; shifts calibrated timings)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this file (open in Perfetto; implies -reps 1)")
	traceMetrics := flag.Bool("trace-metrics", false, "print the trace's per-phase metrics table reconciled against the breakdown (implies -reps 1)")
	traceDetail := flag.String("trace-detail", "", `extra trace detail: comma-separated from "messages", "heartbeats", "sim", or "all" (high-volume; default off)`)
	metricsOn := flag.Bool("metrics", false, "print the run's metrics registry as OpenMetrics text after the breakdown (self-checked against it)")
	logDest := flag.String("log", "", `write structured JSON lifecycle events (inject, detect, failover, ...) to this destination: "stderr" or a file path`)
	flag.Parse()

	if *listDesigns {
		fmt.Println("available fault-tolerance designs:")
		for _, d := range core.Designs() {
			fmt.Printf("  %-10s (%s)\n", d.ShortName(), d)
		}
		return
	}
	if *level < 1 || *level > 4 {
		fmt.Fprintf(os.Stderr, "-level %d invalid (FTI checkpoint levels are 1-4: L1 local, L2 partner copy, L3 Reed-Solomon, L4 PFS)\n", *level)
		os.Exit(2)
	}
	if *stride < 1 {
		fmt.Fprintf(os.Stderr, "-stride %d invalid (want >= 1; use -ckpt-policy never to disable checkpointing)\n", *stride)
		os.Exit(2)
	}
	if *faults < 0 {
		fmt.Fprintf(os.Stderr, "-faults %d invalid (want >= 0)\n", *faults)
		os.Exit(2)
	}
	if *faults > 0 && *faultSchedule != "" {
		fmt.Fprintln(os.Stderr, "-faults and -fault-schedule are mutually exclusive (the schedule already fixes the failure count)")
		os.Exit(2)
	}
	if *dupDegree < 0 {
		fmt.Fprintf(os.Stderr, "-dup-degree %d invalid (want >= 1, or 0 for the default)\n", *dupDegree)
		os.Exit(2)
	}
	if *replicaFactor < 0 || *replicaFactor > 1 {
		fmt.Fprintf(os.Stderr, "-replica-factor %g invalid (want 0 < f <= 1, or 0 for the default)\n", *replicaFactor)
		os.Exit(2)
	}
	// The spawn knobs are validated at flag-parse time (matching the
	// -stride fix): an explicit bad value must error, not silently fall
	// back to the calibrated default inside the replica runtime.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["spawn-delay"] && *spawnDelay <= 0 {
		fmt.Fprintf(os.Stderr, "-spawn-delay %v invalid (want > 0; omit the flag for the calibrated 250ms default)\n", *spawnDelay)
		os.Exit(2)
	}
	if set["spawn-bw"] && *spawnBW <= 0 {
		fmt.Fprintf(os.Stderr, "-spawn-bw %g invalid (want > 0 bytes/s; omit the flag for the 8e9 default)\n", *spawnBW)
		os.Exit(2)
	}
	if (set["spawn-delay"] || set["spawn-bw"]) && !*hotSpare {
		fmt.Fprintln(os.Stderr, "-spawn-delay/-spawn-bw only apply with -hot-spare")
		os.Exit(2)
	}
	dkind, err := detect.ParseKind(*detector)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if dkind != detect.Ring && dkind != detect.Tree && (*hbPeriod != 0 || *hbTimeout != 0 || *hbBytes != 0) {
		fmt.Fprintf(os.Stderr, "-hb-period/-hb-timeout/-hb-bytes only apply to -detector ring or tree (got %s)\n", dkind)
		os.Exit(2)
	}
	pkind, err := ckpt.ParseKind(*ckptPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pcfg := ckpt.Config{
		Kind:          pkind,
		L2Every:       *ckptL2,
		L3Every:       *ckptL3,
		L4Every:       *ckptL4,
		Stretch:       *ckptStretch,
		SkipProtected: *ckptSkip,
	}
	// ckpt.Validate is the authoritative rule set (knob/policy pairing,
	// negative interleaves, bad stretch, ...); applying it at flag-parse
	// time gives a clean usage error instead of a mid-run failure.
	if err := ckpt.Resolve(pcfg, *stride).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := core.Config{
		App:         *app,
		Procs:       *procs,
		Nodes:       *nodes,
		InjectFault: *faultOn || *faults > 0,
		Faults:      *faults,
		FaultSeed:   *seed,
		FTILevel:    fti.Level(*level),
		CkptStride:  *stride,
		CkptPolicy:  pcfg,
		HotSpare:    *hotSpare,
		Replica: replica.Config{
			DupDegree:      *dupDegree,
			ReplicaFactor:  *replicaFactor,
			SpawnDelay:     simnet.Time(spawnDelay.Nanoseconds()),
			SpawnBandwidth: *spawnBW,
		},
		// Resolved now (for explicit kinds) so the report shows the actual
		// derived values; Preset stays zero and core resolves it per design.
		Detector: detect.Resolve(detect.Config{
			Kind:            dkind,
			HeartbeatPeriod: simnet.Time(hbPeriod.Nanoseconds()),
			DetectTimeout:   simnet.Time(hbTimeout.Nanoseconds()),
			HeartbeatBytes:  *hbBytes,
		}, detect.Config{}),
		ModelIngress: *modelIngress,
	}
	if *faultSchedule != "" {
		sched, err := fault.ParseSchedule(*faultSchedule)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Schedule = &sched
	}
	tracing := *traceOut != "" || *traceMetrics || *traceDetail != ""
	if tracing {
		if *reps > 1 {
			fmt.Fprintf(os.Stderr, "-trace/-trace-metrics trace exactly one run; drop -reps %d (a recorder cannot interleave repetitions)\n", *reps)
			os.Exit(2)
		}
		detail, err := trace.ParseDetail(*traceDetail)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Trace = trace.New()
		cfg.Trace.SetDetail(detail)
	}
	d, err := core.ParseDesign(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Design = d
	if *hotSpare && d != core.ReplicaFTI {
		fmt.Fprintf(os.Stderr, "-hot-spare only applies to -design replica (got %s)\n", d.ShortName())
		os.Exit(2)
	}
	switch strings.ToLower(*input) {
	case "small":
		cfg.Input = core.Small
	case "medium":
		cfg.Input = core.Medium
	case "large":
		cfg.Input = core.Large
	default:
		fmt.Fprintf(os.Stderr, "unknown input %q (valid: small, medium, large)\n", *input)
		os.Exit(2)
	}

	if *metricsOn {
		cfg.Metrics = obs.New()
	}
	if *logDest != "" {
		switch *logDest {
		case "stderr":
			cfg.Log = obs.NewLog(os.Stderr)
		default:
			f, err := os.Create(*logDest)
			if err != nil {
				fmt.Fprintln(os.Stderr, "log:", err)
				os.Exit(1)
			}
			defer f.Close()
			cfg.Log = obs.NewLog(f)
		}
	}

	bd, _, err := core.RunAveraged(cfg, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	fmt.Printf("%s / %s / %d procs on %d nodes / %s input / faults=%d (avg of %d)\n",
		cfg.App, cfg.Design, cfg.Procs, cfg.Nodes, cfg.Input, cfg.FaultCount(), *reps)
	fmt.Printf("  application     %10.3f s\n", bd.App.Seconds())
	// Label with the placement the run actually used, splitting the count
	// by level when the policy escalated any checkpoint past the base.
	resolvedPol, _ := core.ResolvedCkptPolicy(cfg) // Run already validated it
	levels := ""
	for l := 1; l <= 4; l++ {
		if n := bd.CkptCountAt[l]; n > 0 && n != bd.CkptCount {
			levels += fmt.Sprintf(" L%d=%d", l, n)
		}
	}
	if levels != "" {
		levels = ";" + levels
	}
	fmt.Printf("  write ckpts     %10.3f s  (%d checkpoints%s; placement %s, %d avoided)\n",
		bd.Ckpt.Seconds(), bd.CkptCount, levels, resolvedPol, bd.CkptAvoided)
	fmt.Printf("  recovery        %10.3f s  (%d recoveries, %d faults fired)\n",
		bd.Recovery.Seconds(), bd.Recoveries, bd.FaultsInjected)
	// Label with the strategy the run actually used (a default run's
	// "preset" resolves to the design's calibrated detector).
	resolved, _ := core.ResolvedDetector(cfg) // Run already validated it
	fmt.Printf("  detection       %10.3f s  (detector %s)\n",
		bd.DetectLatency.Seconds(), resolved)
	if *hotSpare {
		fmt.Printf("  hot spare       %10.3f s  (%d respawns, background)\n",
			bd.SpawnTime.Seconds(), bd.Respawns)
	}
	fmt.Printf("  total           %10.3f s\n", bd.Total.Seconds())
	fmt.Printf("  signature       %g\n", bd.Signature)
	fmt.Printf("  traffic         %d messages, %d bytes\n", bd.Messages, bd.NetBytes)
	if bd.LeakedEvents > 0 {
		leaked := ""
		if cfg.Metrics.Enabled() {
			leaked = fmt.Sprintf("; match_sim_leaked_events_total=%d", cfg.Metrics.Get(obs.CLeakedEvents))
		}
		fmt.Printf("  WARNING: %d scheduler events never fired (leaked past completion%s)\n", bd.LeakedEvents, leaked)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		if err := cfg.Trace.WriteChrome(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("  trace           %d spans -> %s (open at https://ui.perfetto.dev)\n",
			cfg.Trace.Len(), *traceOut)
	}
	if *traceMetrics {
		fmt.Println()
		cfg.Trace.WriteMetrics(os.Stdout, core.TraceTotalsOf(bd), d == core.ReplicaFTI)
	}
	if *metricsOn {
		fmt.Println()
		if err := cfg.Metrics.WriteOpenMetrics(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
	}
}
