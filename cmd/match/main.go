// Command match runs a single MATCH benchmark configuration and prints the
// execution-time breakdown.
//
// Usage:
//
//	match -app HPCCG -design reinit -procs 64 -input small -fault
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"match/internal/core"
	"match/internal/fti"
)

func main() {
	app := flag.String("app", "HPCCG", "application: AMG, CoMD, HPCCG, LULESH, miniFE, miniVite")
	design := flag.String("design", "reinit", "fault-tolerance design: restart, reinit, ulfm")
	procs := flag.Int("procs", 64, "number of MPI processes (64, 128, 256, 512)")
	nodes := flag.Int("nodes", 32, "number of compute nodes")
	input := flag.String("input", "small", "input problem size: small, medium, large")
	faultOn := flag.Bool("fault", false, "inject one random process failure (Figure 4)")
	seed := flag.Int64("seed", 1, "fault-injection seed")
	level := flag.Int("level", 1, "FTI checkpoint level (1-4)")
	stride := flag.Int("stride", 10, "checkpoint every N iterations")
	reps := flag.Int("reps", 1, "repetitions to average (the paper used 5)")
	flag.Parse()

	cfg := core.Config{
		App:         *app,
		Procs:       *procs,
		Nodes:       *nodes,
		InjectFault: *faultOn,
		FaultSeed:   *seed,
		FTILevel:    fti.Level(*level),
		CkptStride:  *stride,
	}
	switch strings.ToLower(*design) {
	case "restart":
		cfg.Design = core.RestartFTI
	case "reinit":
		cfg.Design = core.ReinitFTI
	case "ulfm":
		cfg.Design = core.UlfmFTI
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}
	switch strings.ToLower(*input) {
	case "small":
		cfg.Input = core.Small
	case "medium":
		cfg.Input = core.Medium
	case "large":
		cfg.Input = core.Large
	default:
		fmt.Fprintf(os.Stderr, "unknown input %q\n", *input)
		os.Exit(2)
	}

	bd, _, err := core.RunAveraged(cfg, *reps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	fmt.Printf("%s / %s / %d procs on %d nodes / %s input / fault=%t (avg of %d)\n",
		cfg.App, cfg.Design, cfg.Procs, cfg.Nodes, cfg.Input, cfg.InjectFault, *reps)
	fmt.Printf("  application     %10.3f s\n", bd.App.Seconds())
	fmt.Printf("  write ckpts     %10.3f s  (%d checkpoints)\n", bd.Ckpt.Seconds(), bd.CkptCount)
	fmt.Printf("  recovery        %10.3f s  (%d recoveries)\n", bd.Recovery.Seconds(), bd.Recoveries)
	fmt.Printf("  total           %10.3f s\n", bd.Total.Seconds())
	fmt.Printf("  signature       %g\n", bd.Signature)
	fmt.Printf("  traffic         %d messages, %d bytes\n", bd.Messages, bd.NetBytes)
}
