package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func writeFile(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o644)
}

func entry(ts string, wall, thrpt float64) trendEntry {
	return trendEntry{
		Time:       ts,
		WallMs:     map[string]float64{"BenchmarkCampaign": wall},
		Throughput: map[string]float64{"BenchmarkCampaign/cells/sec": thrpt},
	}
}

// The latest-vs-baseline table flags wall growth and throughput
// shrinkage beyond the threshold — and only beyond it.
func TestTrendReportRegressionFlags(t *testing.T) {
	base := benchBaseline{
		WallMs:     map[string]float64{"BenchmarkCampaign": 100},
		Throughput: map[string]float64{"BenchmarkCampaign/cells/sec": 10},
	}
	var buf bytes.Buffer
	n := writeTrendReport(&buf, []trendEntry{
		entry("t0", 90, 11),
		entry("t1", 150, 9), // within 2x both ways
	}, base, 2.0)
	if n != 0 {
		t.Errorf("within-threshold run flagged %d regressions", n)
	}
	if strings.Contains(buf.String(), "REGRESSION") {
		t.Error("report contains a REGRESSION flag for an in-threshold run")
	}

	buf.Reset()
	n = writeTrendReport(&buf, []trendEntry{
		entry("t2", 250, 4), // wall 2.5x up, throughput 2.5x down
	}, base, 2.0)
	if n != 2 {
		t.Errorf("flagged %d regressions, want 2 (wall and throughput)", n)
	}
	out := buf.String()
	if strings.Count(out, "REGRESSION") != 2 {
		t.Errorf("report does not flag both series:\n%s", out)
	}
	if !strings.Contains(out, "+150.0%") {
		t.Errorf("wall delta missing from report:\n%s", out)
	}
}

// The trajectory section folds every entry into per-series first/last/
// min/max rows.
func TestTrajectory(t *testing.T) {
	rows := trajectory([]trendEntry{
		entry("t0", 100, 10),
		entry("t1", 80, 12),
		entry("t2", 120, 11),
	}, func(e trendEntry) map[string]float64 { return e.WallMs })
	if len(rows) != 1 {
		t.Fatalf("got %d series, want 1", len(rows))
	}
	r := rows[0]
	if r.n != 3 || r.first != 100 || r.last != 120 || r.min != 80 || r.max != 120 {
		t.Errorf("trajectory row = %+v", r)
	}
}

const campaignA = `app,design,procs,input,faults,detector,ckpt_policy,rfactor,hot_spare,app_s,ckpt_s,recovery_s,detect_s,total_s,recoveries,respawns,spawn_s,ckpts,ckpt_l1,ckpt_l2,ckpt_l3,ckpt_l4,ckpt_avoided,messages,net_bytes
HPCCG,reinit,8,25x25x25,2,ring,fixed,1,0,10,1,2,0.1,13,2,0,0,5,3,1,0,1,0,100,4096
HPCCG,replica,8,25x25x25,2,ring,fixed,2,0,10,0,4,0.1,14,2,0,0,0,0,0,0,0,0,200,8192
HPCCG,reinit,8,25x25x25,6,ring,fixed,1,0,10,3,9,0.3,22,6,0,0,5,3,1,0,1,0,100,4096
HPCCG,replica,8,25x25x25,6,ring,fixed,2,0,10,0,8,0.3,18,6,0,0,0,0,0,0,0,0,200,8192
`

// Same cells, but the k=6 winner flips from replica back to reinit.
const campaignB = `app,design,procs,input,faults,detector,ckpt_policy,rfactor,hot_spare,app_s,ckpt_s,recovery_s,detect_s,total_s,recoveries,respawns,spawn_s,ckpts,ckpt_l1,ckpt_l2,ckpt_l3,ckpt_l4,ckpt_avoided,messages,net_bytes
HPCCG,reinit,8,25x25x25,2,ring,fixed,1,0,10,1,2,0.1,13,2,0,0,5,3,1,0,1,0,100,4096
HPCCG,replica,8,25x25x25,2,ring,fixed,2,0,10,0,4,0.1,14,2,0,0,0,0,0,0,0,0,200,8192
HPCCG,reinit,8,25x25x25,6,ring,fixed,1,0,10,3,4,0.3,17,6,0,0,5,3,1,0,1,0,100,4096
HPCCG,replica,8,25x25x25,6,ring,fixed,2,0,10,0,8,0.3,18,6,0,0,0,0,0,0,0,0,200,8192
`

func parseCSV(t *testing.T, body string) []cell {
	t.Helper()
	f := t.TempDir() + "/c.csv"
	if err := writeFile(f, body); err != nil {
		t.Fatal(err)
	}
	cells, err := readCampaign(f)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// The single-campaign table picks the lowest-total design per cell.
func TestCampaignWinners(t *testing.T) {
	cells := parseCSV(t, campaignA)
	var buf bytes.Buffer
	writeWinners(&buf, "a.csv", cells)
	out := buf.String()
	if !strings.Contains(out, "| HPCCG | 25x25x25 | 8 | 2 | reinit | 13.000 | replica |") {
		t.Errorf("k=2 winner row wrong:\n%s", out)
	}
	if !strings.Contains(out, "| HPCCG | 25x25x25 | 8 | 6 | replica | 18.000 | reinit |") {
		t.Errorf("k=6 winner row wrong:\n%s", out)
	}
}

// The two-campaign diff reports the crossover flip at k=6 and leaves the
// unchanged k=2 cell unflagged.
func TestCampaignDiff(t *testing.T) {
	a, b := parseCSV(t, campaignA), parseCSV(t, campaignB)
	var buf bytes.Buffer
	writeCampaignDiff(&buf, "a.csv", "b.csv", a, b)
	out := buf.String()
	if strings.Count(out, "**winner changed**") != 1 {
		t.Errorf("want exactly one winner-change flag:\n%s", out)
	}
	if !strings.Contains(out, "| replica | reinit |") {
		t.Errorf("k=6 flip not shown as replica -> reinit:\n%s", out)
	}
	if !strings.Contains(out, "1 of 2 shared cells changed winning design") {
		t.Errorf("summary line wrong:\n%s", out)
	}
}

// Malformed campaign input fails loudly rather than producing an empty
// report section.
func TestCampaignRejectsWrongCSV(t *testing.T) {
	f := t.TempDir() + "/bad.csv"
	if err := writeFile(f, "a,b,c\n1,2,3\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := readCampaign(f); err == nil || !strings.Contains(err.Error(), "missing column") {
		t.Errorf("wrong-schema CSV accepted: %v", err)
	}
}
