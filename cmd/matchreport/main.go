// Command matchreport turns the suite's machine-oriented observability
// artifacts into one human-oriented markdown report: the host-speed
// trajectory that matchbench appends to BENCH_trend.jsonl, the latest
// run's wall_ms / cells/sec deltas against BENCH_baseline.json (with
// regression flags at the same soft threshold matchbench gates on), and
// — given one or two campaign CSVs — the per-cell design winner table
// and the crossover diff between two campaign runs. CI uploads the
// output as a build artifact so throughput drift is readable without
// spelunking job logs.
//
// Usage:
//
//	matchreport -trend BENCH_trend.jsonl -baseline BENCH_baseline.json -out report.md
//	matchreport -campaign before.csv -campaign2 after.csv   # crossover diff to stdout
//	matchreport -campaign http://host:8080/campaigns/<id>/results   # straight off matchserve
//
// A -campaign argument may be a matchserve results URL instead of a local
// CSV; the report then also includes the server's result-cache hit rate.
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
)

// trendEntry is one matchbench -trend line.
type trendEntry struct {
	Time       string             `json:"time"`
	WallMs     map[string]float64 `json:"wall_ms"`
	Throughput map[string]float64 `json:"throughput"`
}

// benchBaseline mirrors matchbench's on-disk baseline; only the
// host-speed series matter here (the deterministic figures have their
// own hard gate).
type benchBaseline struct {
	WallMs     map[string]float64 `json:"wall_ms"`
	Throughput map[string]float64 `json:"throughput"`
}

// cell is one campaign CSV row, keyed by the axes that identify a sweep
// cell across runs and carrying the figures the report compares.
type cell struct {
	App, Design, Input string
	Procs, Faults      int
	TotalS             float64
}

func (c cell) key() string {
	return fmt.Sprintf("%s|%s|%d|%d", c.App, c.Input, c.Procs, c.Faults)
}

func main() {
	trendPath := flag.String("trend", "", "BENCH_trend.jsonl trajectory from matchbench -trend")
	basePath := flag.String("baseline", "", "BENCH_baseline.json for latest-vs-baseline deltas")
	campA := flag.String("campaign", "", "campaign CSV (matchsuite -campaign -csv)")
	campB := flag.String("campaign2", "", "second campaign CSV to diff against -campaign")
	outPath := flag.String("out", "-", `markdown output path ("-" = stdout)`)
	wallTol := flag.Float64("wall-tol", 2.0, "flag wall_ms growth, or throughput shrinkage, beyond this factor as a regression")
	flag.Parse()
	if *wallTol < 1 {
		fmt.Fprintf(os.Stderr, "matchreport: -wall-tol %g invalid (want >= 1)\n", *wallTol)
		os.Exit(2)
	}
	if *trendPath == "" && *campA == "" {
		fmt.Fprintln(os.Stderr, "matchreport: nothing to report (need -trend and/or -campaign)")
		flag.Usage()
		os.Exit(2)
	}
	if *campB != "" && *campA == "" {
		fmt.Fprintln(os.Stderr, "matchreport: -campaign2 requires -campaign")
		os.Exit(2)
	}

	w := io.Writer(os.Stdout)
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	fmt.Fprintln(bw, "# MATCH trend report")
	fmt.Fprintln(bw)

	if *trendPath != "" {
		entries, err := readTrend(*trendPath)
		if err != nil {
			fatal(err)
		}
		var base benchBaseline
		if *basePath != "" {
			raw, err := os.ReadFile(*basePath)
			if err != nil {
				fatal(err)
			}
			if err := json.Unmarshal(raw, &base); err != nil {
				fatal(fmt.Errorf("parsing %s: %w", *basePath, err))
			}
		}
		if regress := writeTrendReport(bw, entries, base, *wallTol); regress > 0 {
			fmt.Fprintf(os.Stderr, "matchreport: %d host-speed serie(s) beyond the %gx threshold (report only; matchbench -wall-tol gates)\n", regress, *wallTol)
		}
	}

	if *campA != "" {
		a, err := readCampaign(*campA)
		if err != nil {
			fatal(err)
		}
		if *campB == "" {
			writeWinners(bw, *campA, a)
		} else {
			b, err := readCampaign(*campB)
			if err != nil {
				fatal(err)
			}
			writeCampaignDiff(bw, *campA, *campB, a, b)
		}
		// Campaigns fetched from a matchserve instance bring the server's
		// result-cache statistics along (one section per distinct server).
		seen := map[string]bool{}
		for _, p := range []string{*campA, *campB} {
			if base := serverBase(p); base != "" && !seen[base] {
				seen[base] = true
				writeCacheSection(bw, base)
			}
		}
	}
}

// isURL reports whether a -campaign argument names a matchserve resource
// rather than a local CSV file.
func isURL(p string) bool {
	return strings.HasPrefix(p, "http://") || strings.HasPrefix(p, "https://")
}

// serverBase extracts the matchserve base URL from a results URL ("" when
// the argument is a local path).
func serverBase(p string) string {
	if !isURL(p) {
		return ""
	}
	if i := strings.Index(p, "/campaigns/"); i > 0 {
		return p[:i]
	}
	return ""
}

// cacheStats mirrors matchserve's GET /cache payload.
type cacheStats struct {
	Enabled  bool    `json:"enabled"`
	Hits     int64   `json:"hits"`
	MemHits  int64   `json:"mem_hits"`
	DiskHits int64   `json:"disk_hits"`
	Misses   int64   `json:"misses"`
	Puts     int64   `json:"puts"`
	HitRate  float64 `json:"hit_rate"`
}

// writeCacheSection renders the server's result-cache hit rate. The cache
// endpoint being unreachable degrades to a note, not a failed report.
func writeCacheSection(w io.Writer, base string) {
	fmt.Fprintf(w, "## Result cache (%s)\n\n", base)
	resp, err := http.Get(base + "/cache")
	if err != nil {
		fmt.Fprintf(w, "_cache stats unavailable: %v_\n\n", err)
		return
	}
	defer resp.Body.Close()
	var cs cacheStats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil || resp.StatusCode != http.StatusOK {
		fmt.Fprintf(w, "_cache stats unavailable (HTTP %d)_\n\n", resp.StatusCode)
		return
	}
	if !cs.Enabled {
		fmt.Fprintln(w, "_The server runs without a result cache._")
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintln(w, "| lookups | hits (mem/disk) | misses | simulated cells | hit rate |")
	fmt.Fprintln(w, "|---:|---:|---:|---:|---:|")
	fmt.Fprintf(w, "| %d | %d (%d/%d) | %d | %d | %.1f%% |\n",
		cs.Hits+cs.Misses, cs.Hits, cs.MemHits, cs.DiskHits, cs.Misses, cs.Puts, 100*cs.HitRate)
	fmt.Fprintln(w)
}

// readTrend loads the JSONL trajectory, skipping blank lines; malformed
// lines are an error (the file is machine-written).
func readTrend(path string) ([]trendEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var entries []trendEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		ln := strings.TrimSpace(sc.Text())
		if ln == "" {
			continue
		}
		var e trendEntry
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, len(entries)+1, err)
		}
		entries = append(entries, e)
	}
	return entries, sc.Err()
}

// writeTrendReport renders the latest-vs-baseline tables and the
// per-series trajectory, returning how many series tripped the
// regression threshold.
func writeTrendReport(w io.Writer, entries []trendEntry, base benchBaseline, tol float64) int {
	if len(entries) == 0 {
		fmt.Fprintln(w, "_Trend file is empty — run `matchbench -trend` to start the trajectory._")
		fmt.Fprintln(w)
		return 0
	}
	latest := entries[len(entries)-1]
	regress := 0

	fmt.Fprintf(w, "## Latest run vs baseline (%d trend entries, newest %s)\n\n", len(entries), latest.Time)
	if base.WallMs == nil && base.Throughput == nil {
		fmt.Fprintln(w, "_No baseline given (-baseline); showing trajectory only._")
		fmt.Fprintln(w)
	} else {
		fmt.Fprintln(w, "| series | baseline | latest | delta | flag |")
		fmt.Fprintln(w, "|---|---:|---:|---:|---|")
		for _, k := range sortedCommonKeys(base.WallMs, latest.WallMs) {
			was, now := base.WallMs[k], latest.WallMs[k]
			flag := ""
			if was > 0 && now > was*tol {
				flag = "**REGRESSION**"
				regress++
			}
			fmt.Fprintf(w, "| %s wall_ms | %.1f | %.1f | %s | %s |\n", k, was, now, pct(was, now), flag)
		}
		for _, k := range sortedCommonKeys(base.Throughput, latest.Throughput) {
			was, now := base.Throughput[k], latest.Throughput[k]
			flag := ""
			if was > 0 && now < was/tol {
				flag = "**REGRESSION**"
				regress++
			}
			fmt.Fprintf(w, "| %s | %.4g | %.4g | %s | %s |\n", k, was, now, pct(was, now), flag)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "Regression flags use the %gx soft threshold (`matchbench -wall-tol %g`): wall time growing, or throughput dropping, past factor x baseline.\n\n", tol, tol)
	}

	fmt.Fprintln(w, "## Trajectory")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| series | entries | oldest | newest | delta | min | max |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|")
	for _, row := range trajectory(entries, func(e trendEntry) map[string]float64 { return e.WallMs }) {
		fmt.Fprintf(w, "| %s wall_ms | %d | %.1f | %.1f | %s | %.1f | %.1f |\n",
			row.name, row.n, row.first, row.last, pct(row.first, row.last), row.min, row.max)
	}
	for _, row := range trajectory(entries, func(e trendEntry) map[string]float64 { return e.Throughput }) {
		fmt.Fprintf(w, "| %s | %d | %.4g | %.4g | %s | %.4g | %.4g |\n",
			row.name, row.n, row.first, row.last, pct(row.first, row.last), row.min, row.max)
	}
	fmt.Fprintln(w)
	return regress
}

type series struct {
	name                  string
	n                     int
	first, last, min, max float64
}

// trajectory folds the trend entries into one row per series name.
func trajectory(entries []trendEntry, sel func(trendEntry) map[string]float64) []series {
	byName := map[string]*series{}
	for _, e := range entries {
		for k, v := range sel(e) {
			s := byName[k]
			if s == nil {
				s = &series{name: k, first: v, min: v, max: v}
				byName[k] = s
			}
			s.n++
			s.last = v
			s.min = math.Min(s.min, v)
			s.max = math.Max(s.max, v)
		}
	}
	rows := make([]series, 0, len(byName))
	for _, s := range byName {
		rows = append(rows, *s)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

// readCampaign loads the cells of a matchsuite campaign CSV, from a local
// file or straight off a matchserve results URL. Columns are located by
// header name so the report survives column additions.
func readCampaign(path string) ([]cell, error) {
	f, err := openCampaign(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("%s: no data rows", path)
	}
	col := map[string]int{}
	for i, h := range rows[0] {
		col[h] = i
	}
	for _, need := range []string{"app", "design", "input", "procs", "faults", "total_s"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("%s: missing column %q (not a campaign CSV?)", path, need)
		}
	}
	cells := make([]cell, 0, len(rows)-1)
	for i, row := range rows[1:] {
		procs, err1 := strconv.Atoi(row[col["procs"]])
		faults, err2 := strconv.Atoi(row[col["faults"]])
		total, err3 := strconv.ParseFloat(row[col["total_s"]], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%s row %d: bad numeric field", path, i+2)
		}
		cells = append(cells, cell{
			App: row[col["app"]], Design: row[col["design"]], Input: row[col["input"]],
			Procs: procs, Faults: faults, TotalS: total,
		})
	}
	return cells, nil
}

// openCampaign opens a local CSV, or fetches a matchserve results URL in
// CSV form (?format=csv is appended unless the URL already picks one).
func openCampaign(path string) (io.ReadCloser, error) {
	if !isURL(path) {
		return os.Open(path)
	}
	u := path
	if !strings.Contains(u, "format=") {
		if strings.Contains(u, "?") {
			u += "&format=csv"
		} else {
			u += "?format=csv"
		}
	}
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return resp.Body, nil
}

// winners reduces a campaign to, per cell key, the design with the lowest
// mean total time (designs can appear several times per key when other
// axes — rfactor, hot spares, detectors — are swept; the mean keeps the
// comparison stable across such variants).
func winners(cells []cell) map[string]map[string]float64 {
	sums := map[string]map[string]struct{ sum, n float64 }{}
	for _, c := range cells {
		k := c.key()
		if sums[k] == nil {
			sums[k] = map[string]struct{ sum, n float64 }{}
		}
		agg := sums[k][c.Design]
		agg.sum += c.TotalS
		agg.n++
		sums[k][c.Design] = agg
	}
	out := map[string]map[string]float64{}
	for k, designs := range sums {
		out[k] = map[string]float64{}
		for d, agg := range designs {
			out[k][d] = agg.sum / agg.n
		}
	}
	return out
}

// best returns the winning design (lowest mean total_s) of one cell.
func best(designs map[string]float64) (string, float64) {
	name, t := "", math.Inf(1)
	for d, v := range designs {
		if v < t || (v == t && d < name) {
			name, t = d, v
		}
	}
	return name, t
}

// writeWinners renders the single-campaign winner table.
func writeWinners(w io.Writer, path string, cells []cell) {
	fmt.Fprintf(w, "## Campaign winners (%s)\n\n", path)
	fmt.Fprintln(w, "| app | input | procs | faults | winner | total_s | runner-up | margin |")
	fmt.Fprintln(w, "|---|---|---:|---:|---|---:|---|---:|")
	wins := winners(cells)
	for _, k := range sortedCellKeys(wins) {
		designs := wins[k]
		win, t := best(designs)
		rest := map[string]float64{}
		for d, v := range designs {
			if d != win {
				rest[d] = v
			}
		}
		second, t2 := best(rest)
		margin := "—"
		if second != "" && t > 0 {
			margin = fmt.Sprintf("%.2fx", t2/t)
		} else {
			second = "—"
		}
		app, input, procs, faults := splitKey(k)
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %.3f | %s | %s |\n",
			app, input, procs, faults, win, t, second, margin)
	}
	fmt.Fprintln(w)
}

// writeCampaignDiff renders the crossover diff between two campaign runs:
// every cell present in both, flagging winner changes and total-time
// movement of the shared winner.
func writeCampaignDiff(w io.Writer, pathA, pathB string, a, b []cell) {
	fmt.Fprintf(w, "## Campaign diff: %s vs %s\n\n", pathA, pathB)
	winsA, winsB := winners(a), winners(b)
	var keys []string
	for k := range winsA {
		if _, ok := winsB[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		fmt.Fprintln(w, "_The two campaigns share no cells (different apps/inputs/fault counts)._")
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintln(w, "| app | input | procs | faults | winner A | winner B | total A | total B | delta | note |")
	fmt.Fprintln(w, "|---|---|---:|---:|---|---|---:|---:|---:|---|")
	changed := 0
	for _, k := range keys {
		winA, tA := best(winsA[k])
		winB, tB := best(winsB[k])
		note := ""
		if winA != winB {
			note = "**winner changed**"
			changed++
		}
		app, input, procs, faults := splitKey(k)
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %.3f | %.3f | %s | %s |\n",
			app, input, procs, faults, winA, winB, tA, tB, pct(tA, tB), note)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%d of %d shared cells changed winning design. Totals are modeled (virtual) seconds of the winning design, so deltas are figure drift, not machine noise.\n\n", changed, len(keys))
}

func sortedCellKeys(m map[string]map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func splitKey(k string) (app, input, procs, faults string) {
	p := strings.SplitN(k, "|", 4)
	return p[0], p[1], p[2], p[3]
}

// sortedCommonKeys returns the sorted keys present in both maps.
func sortedCommonKeys(a, b map[string]float64) []string {
	var keys []string
	for k := range a {
		if _, ok := b[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// pct renders the relative movement from was to now.
func pct(was, now float64) string {
	if was == 0 {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", 100*(now-was)/was)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "matchreport:", err)
	os.Exit(1)
}
