// Command matchdep is the paper's data-dependency analysis tool
// (Algorithm 1): it reads a dynamic execution trace and reports the data
// objects that must be checkpointed.
//
// Usage:
//
//	matchdep trace.txt        # analyze a recorded trace
//	matchdep -demo            # trace a built-in CG kernel and analyze it
package main

import (
	"flag"
	"fmt"
	"os"

	"match/internal/depanal"
)

func main() {
	demo := flag.Bool("demo", false, "instrument a built-in CG-like kernel, dump its trace, and analyze it")
	dump := flag.String("dump", "", "with -demo: also write the generated trace to this file")
	flag.Parse()

	var tr *depanal.Trace
	switch {
	case *demo:
		tr = demoTrace()
		if *dump != "" {
			f, err := os.Create(*dump)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := depanal.WriteTrace(f, tr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Println("trace written to", *dump)
		}
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err = depanal.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	depanal.WriteReport(os.Stdout, depanal.Analyze(tr))
}

// demoTrace executes a real (tiny) conjugate-gradient iteration with
// instrumentation, producing the trace Algorithm 1 consumes. The expected
// answer: x, r, p, rho, and the iteration counter must be checkpointed;
// the matrix stencil and b are rebuilt by initialization; loop-local
// temporaries are excluded.
func demoTrace() *depanal.Trace {
	tc := depanal.NewTracer()
	const n = 8
	// Simulated address space.
	const (
		aX    = 0x1000
		aR    = 0x2000
		aP    = 0x3000
		aB    = 0x4000
		aRho  = 0x5000
		aIter = 0x5100
		aTmp  = 0x9000
	)
	x := make([]float64, n)
	r := make([]float64, n)
	p := make([]float64, n)
	b := make([]float64, n)
	tc.Alloc("x", aX, n*8, 31)
	tc.Alloc("r", aR, n*8, 32)
	tc.Alloc("p", aP, n*8, 33)
	tc.Alloc("b", aB, n*8, 34)
	tc.Alloc("rho", aRho, 8, 35)
	tc.Alloc("iter", aIter, 8, 36)
	for i := range b {
		b[i] = float64(i + 1)
		r[i], p[i] = b[i], b[i]
	}
	rho := 0.0
	for _, v := range r {
		rho += v * v
	}
	bits := func(f float64) uint64 { return uint64(int64(f * 1024)) }
	tc.LoopBegin(40)
	for it := 0; it < 4; it++ {
		tc.NextIter(it)
		tc.Alloc("ap", aTmp, n*8, 41) // loop-local temporary
		ap := make([]float64, n)
		pap := 0.0
		for i := 0; i < n; i++ {
			tc.Load(aB+uint64(i*8), bits(b[i]), 42) // read-only: constant values
			tc.Load(aP+uint64(i*8), bits(p[i]), 43)
			ap[i] = 2*p[i] + b[i]*0 // toy SPD action
			tc.Store(aTmp+uint64(i*8), bits(ap[i]), 44)
			pap += p[i] * ap[i]
		}
		alpha := rho / pap
		rhoNew := 0.0
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			tc.Store(aX+uint64(i*8), bits(x[i]), 50)
			tc.Store(aR+uint64(i*8), bits(r[i]), 51)
			rhoNew += r[i] * r[i]
		}
		beta := rhoNew / rho
		rho = rhoNew
		tc.Load(aRho, bits(rho), 54)
		tc.Store(aRho, bits(rho), 54)
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
			tc.Store(aP+uint64(i*8), bits(p[i]), 56)
		}
		tc.Load(aIter, uint64(it), 57)
		tc.Store(aIter, uint64(it+1), 57)
	}
	tc.LoopEnd()
	return tc.Trace()
}
