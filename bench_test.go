// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V). Each benchmark runs the corresponding experiment matrix
// and reports the headline series as custom metrics; the full printed
// tables come from `go run ./cmd/matchsuite -all`.
//
// Defaults keep the matrices small enough for routine benchmarking (two
// representative applications, two scaling points). Set MATCH_BENCH_FULL=1
// to run the complete paper matrix (all six applications, all four scales,
// all three inputs), and MATCH_BENCH_PRINT=1 to print the paper-style
// tables while benchmarking.
package match_test

import (
	"io"
	"os"
	"testing"

	"match/internal/ckpt"
	"match/internal/core"
	"match/internal/fault"
	"match/internal/fti"
	"match/internal/mpi"
	"match/internal/simnet"
	"match/internal/ulfm"
)

func benchOpts(scaleSweep bool) core.SuiteOptions {
	if os.Getenv("MATCH_BENCH_FULL") != "" {
		return core.SuiteOptions{Reps: 1}
	}
	opts := core.SuiteOptions{
		Apps: []string{"HPCCG", "miniVite"},
		Reps: 1,
	}
	if scaleSweep {
		opts.Scales = []int{64, 128}
	}
	return opts
}

func benchOut() io.Writer {
	if os.Getenv("MATCH_BENCH_PRINT") != "" {
		return os.Stdout
	}
	return io.Discard
}

// summarize attaches per-design mean component metrics to the benchmark.
func summarize(b *testing.B, results []core.Result) {
	type agg struct {
		app, ckpt, rec float64
		n              int
	}
	per := map[core.Design]*agg{}
	for _, r := range results {
		a := per[r.Config.Design]
		if a == nil {
			a = &agg{}
			per[r.Config.Design] = a
		}
		a.app += r.Breakdown.App.Seconds()
		a.ckpt += r.Breakdown.Ckpt.Seconds()
		a.rec += r.Breakdown.Recovery.Seconds()
		a.n++
	}
	for d, a := range per {
		n := float64(a.n)
		b.ReportMetric(a.app/n, d.String()+"_app_s")
		b.ReportMetric(a.rec/n, d.String()+"_recovery_s")
		_ = a.ckpt
	}
}

func benchFigure(b *testing.B, fig int, scaleSweep bool) {
	b.Helper()
	opts := benchOpts(scaleSweep)
	var last []core.Result
	for i := 0; i < b.N; i++ {
		results, err := core.RunFigure(fig, opts, benchOut())
		if err != nil {
			b.Fatal(err)
		}
		last = results
	}
	summarize(b, last)
}

// BenchmarkTableI regenerates Table I (configuration resolution for every
// app x input x design cell).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.WriteTableI(benchOut())
		for _, e := range core.TableI() {
			if _, _, err := core.ResolveParams(core.Config{App: e.App, Input: e.Input}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: execution-time breakdown across
// scaling sizes without failures.
func BenchmarkFig5_BreakdownScaling_NoFailure(b *testing.B) { benchFigure(b, 5, true) }

// BenchmarkFig6 regenerates Figure 6: breakdown across scaling sizes while
// recovering from an injected process failure.
func BenchmarkFig6_BreakdownScaling_Failure(b *testing.B) { benchFigure(b, 6, true) }

// BenchmarkFig7 regenerates Figure 7: MPI recovery time vs. scale.
func BenchmarkFig7_RecoveryTime_Scaling(b *testing.B) { benchFigure(b, 7, true) }

// BenchmarkFig8 regenerates Figure 8: breakdown across input sizes without
// failures.
func BenchmarkFig8_BreakdownInputs_NoFailure(b *testing.B) { benchFigure(b, 8, false) }

// BenchmarkFig9 regenerates Figure 9: breakdown across input sizes with an
// injected failure.
func BenchmarkFig9_BreakdownInputs_Failure(b *testing.B) { benchFigure(b, 9, false) }

// BenchmarkFig10 regenerates Figure 10: recovery time vs. input size.
func BenchmarkFig10_RecoveryTime_Inputs(b *testing.B) { benchFigure(b, 10, false) }

// BenchmarkHeadlineRatios reproduces the §V-C ratio computation from the
// Figure 6 matrix (Reinit vs ULFM vs Restart recovery).
func BenchmarkHeadlineRatios(b *testing.B) {
	opts := benchOpts(true)
	for i := 0; i < b.N; i++ {
		results, err := core.RunFigure(6, opts, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		r := core.ComputeRatios(results)
		b.ReportMetric(r.UlfmOverReinitAvg, "ulfm_over_reinit")
		b.ReportMetric(r.RestartOverReinitAvg, "restart_over_reinit")
		b.ReportMetric(100*r.CkptShareAvg, "ckpt_share_pct")
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationCkptStride varies the checkpoint interval the paper
// fixes at 10, quantifying the protection/overhead trade-off (A2).
func BenchmarkAblationCkptStride(b *testing.B) {
	for _, stride := range []int{2, 5, 10, 25} {
		stride := stride
		b.Run(map[int]string{2: "stride2", 5: "stride5", 10: "stride10", 25: "stride25"}[stride], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bd, err := core.Run(core.Config{
					App: "HPCCG", Design: core.ReinitFTI, Procs: 64,
					Input: core.Small, CkptStride: stride,
					InjectFault: true, FaultSeed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bd.Total.Seconds(), "total_s")
				b.ReportMetric(bd.Ckpt.Seconds(), "ckpt_s")
			}
		})
	}
}

// BenchmarkAblationCkptPolicy compares the checkpoint-placement policies
// on the replica design, where placement interacts with replication: the
// replica-aware policy trades checkpoint spend against fallback exposure.
func BenchmarkAblationCkptPolicy(b *testing.B) {
	for _, kind := range []ckpt.Kind{ckpt.Fixed, ckpt.MultiLevel, ckpt.ReplicaAware, ckpt.Adaptive} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bd, err := core.Run(core.Config{
					App: "HPCCG", Design: core.ReplicaFTI, Procs: 64,
					Input: core.Small, CkptPolicy: ckpt.Config{Kind: kind},
					InjectFault: true, FaultSeed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bd.Total.Seconds(), "total_s")
				b.ReportMetric(bd.Ckpt.Seconds(), "ckpt_s")
				b.ReportMetric(float64(bd.CkptAvoided), "ckpt_avoided")
			}
		})
	}
}

// BenchmarkAblationHotSpare measures what background respawn buys the
// replica design on a repeat failure: the same double hit on one replica
// group absorbed by the spare's failover (on) vs the checkpoint fallback
// (off).
func BenchmarkAblationHotSpare(b *testing.B) {
	sched, err := fault.ParseSchedule("5@20:replica=1,5@45:replica=0")
	if err != nil {
		b.Fatal(err)
	}
	for _, hs := range []bool{false, true} {
		hs := hs
		b.Run(map[bool]string{false: "off", true: "on"}[hs], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bd, err := core.Run(core.Config{
					App: "HPCCG", Design: core.ReplicaFTI, Procs: 64,
					Input: core.Small, Schedule: &sched, HotSpare: hs,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bd.Recovery.Seconds(), "recovery_s")
				b.ReportMetric(bd.Total.Seconds(), "total_s")
				b.ReportMetric(float64(bd.Respawns), "respawns")
			}
		})
	}
}

// BenchmarkAblationFTILevels compares the four checkpoint levels (A3).
func BenchmarkAblationFTILevels(b *testing.B) {
	for _, level := range []fti.Level{fti.L1, fti.L2, fti.L3, fti.L4} {
		level := level
		b.Run(level.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bd, err := core.Run(core.Config{
					App: "CoMD", Design: core.ReinitFTI, Procs: 64,
					Input: core.Small, FTILevel: level,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bd.Ckpt.Seconds(), "ckpt_s")
			}
		})
	}
}

// BenchmarkAblationHeartbeat varies the ULFM failure detector period (A4):
// faster detection shortens recovery but raises steady-state interference.
func BenchmarkAblationHeartbeat(b *testing.B) {
	for _, period := range []simnet.Time{25 * simnet.Millisecond, 100 * simnet.Millisecond, 400 * simnet.Millisecond} {
		period := period
		b.Run(period.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bd, err := core.Run(core.Config{
					App: "HPCCG", Design: core.UlfmFTI, Procs: 64,
					Input: core.Small, InjectFault: true, FaultSeed: 5,
					Ulfm: ulfm.Config{HeartbeatPeriod: period, DetectTimeout: 3 * period},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bd.Recovery.Seconds(), "recovery_s")
				b.ReportMetric(bd.App.Seconds(), "app_s")
			}
		})
	}
}

// BenchmarkAblationUlfmProgressFactor isolates ULFM's interposed-progress
// slowdown (A1): with the factor off, ULFM's steady-state application time
// approaches the baseline.
func BenchmarkAblationUlfmProgressFactor(b *testing.B) {
	for _, f := range []float64{-1, 0.25, 0.5} { // -1 disables (sentinel for 0)
		name := map[float64]string{-1: "off", 0.25: "x0.25", 0.5: "x0.50"}[f]
		cfgF := f
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u := ulfm.Config{}
				if cfgF > 0 {
					u.DeliveryFactor = cfgF
				} else {
					u.DeliveryFactor = 1e-9
				}
				bd, err := core.Run(core.Config{
					App: "HPCCG", Design: core.UlfmFTI, Procs: 128,
					Input: core.Small, Ulfm: u,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bd.App.Seconds(), "app_s")
			}
		})
	}
}

// BenchmarkCampaignThroughput measures end-to-end simulator throughput on
// a representative multi-design, multi-axis campaign sweep: two
// applications, all four designs, k = 0..2 scheduled failures, and the
// hot-spare axis on the replica design (30 cells). It reports cells/sec —
// host campaign cells simulated per wall-clock second, the suite's
// headline throughput number — alongside campaign_virt_s, the summed
// virtual time of every cell, which is deterministic and gated like any
// other figure. cells/sec is recorded by matchbench as a trend, never
// gated on absolute value (machines differ), but CI soft-gates egregious
// regressions via -wall-tol.
func BenchmarkCampaignThroughput(b *testing.B) {
	opts := core.CampaignOptions{
		Apps:      []string{"HPCCG", "miniVite"},
		MaxFaults: 2,
		Seed:      7,
		HotSpares: []bool{false, true},
	}
	cells := len(core.CampaignConfigs(opts))
	var virt float64
	for i := 0; i < b.N; i++ {
		results, err := core.RunCampaign(opts, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		virt = 0
		for _, r := range results {
			virt += r.Breakdown.Total.Seconds()
		}
	}
	b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/sec")
	b.ReportMetric(virt, "campaign_virt_s")
}

// --- Substrate micro-benchmarks ---

// BenchmarkMPIAllreduce measures the simulated collective path (host cost
// of simulating one 64-rank allreduce).
func BenchmarkMPIAllreduce64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := simnet.NewCluster(simnet.Config{Nodes: 8})
		mpi.Launch(c, 64, 0, func(r *mpi.Rank) {
			w := r.Job().World()
			for k := 0; k < 10; k++ {
				if _, err := mpi.AllreduceF64Scalar(r, w, 1.0, mpi.OpSum); err != nil {
					b.Error(err)
					return
				}
			}
		})
		c.Run()
	}
}
